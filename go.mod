module fesia

go 1.22
