# Common workflows for the FESIA reproduction.

GO ?= go

.PHONY: all build test race cover check lint bench benchcheck batchbench planbench servebench tracebench ablation fuzz fuzzsmoke kernels experiments examples clean

all: build test

# Full hygiene gate: static checks, formatting drift, and the race suite.
check:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) test -race ./...

# Static analysis: formatting drift, go vet, and staticcheck — required, not
# optional. The binary is resolved from PATH first, then GOPATH/bin, so the
# CI lint job's plain `go install` works without PATH surgery; a missing
# binary fails the target with the install command instead of silently
# skipping the strictest linter.
STATICCHECK := $(shell command -v staticcheck 2>/dev/null || echo "$$(go env GOPATH)/bin/staticcheck")

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	@if [ ! -x "$(STATICCHECK)" ]; then \
		echo "error: staticcheck not found; install it with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@latest"; \
		exit 1; \
	fi
	$(STATICCHECK) ./...

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One testing.B benchmark per paper table/figure, plus micro and ablation
# benches (the deliverable artifact: bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Benchmark regression gate, five parts:
#   1. strategy micro-benchmarks vs the committed baseline (>15% ns/op fails);
#   2. SIMD backend pairing — every asm routine vs its pure-Go reference,
#      with built-in structural gates (fused filter >= 1.5x, end-to-end merge
#      must win) and BENCH_simd.json regenerated;
#   3. the batch cutover scenario — batch-parallel must not be meaningfully
#      slower than serial batch on any scenario (built-in gate in -batchjson);
#   4. hybrid representations vs all-segmented — >= 3x bytes/element on the
#      sparse-heavy corpus and >= 1.2x CountMany throughput on the
#      dense-heavy corpus (built-in gates in -hybridjson, BENCH_hybrid.json
#      regenerated);
#   5. the adaptive planner vs the static heuristics — learned mode must beat
#      static by >= 1.10x on the mispriced crossover corpus and stay within
#      noise of it on the uniform corpus (built-in gates in -planjson,
#      BENCH_planner.json regenerated);
#   6. the serving-tier saturation ramp — essentially no overload outcomes
#      below saturation, push-back engaged with bounded admitted p99 (not
#      collapse) under 4x-concurrency overload, and hot swaps under that
#      storm with zero failed in-flight queries (built-in gates in
#      -servejson, BENCH_serve.json regenerated);
#   7. the trace-overhead pairing — a tier with tracing at the default
#      1-in-64 sampling vs an identical untraced tier on the same query
#      stream, interleaved rounds; the on/off ratio of median serve latency
#      must stay within 1.05x (built-in gate in -tracejson, BENCH_trace.json
#      regenerated).
# Regenerate the micro baseline after intentional performance changes with:
#   $(GO) run ./cmd/fesiabench -json -quick && cp BENCH_intersect.json BENCH_baseline.json
benchcheck:
	$(GO) run ./cmd/fesiabench -json -quick -baseline BENCH_baseline.json
	$(GO) run ./cmd/fesiabench -simdjson -quick
	$(GO) run ./cmd/fesiabench -batchjson -quick
	$(GO) run ./cmd/fesiabench -hybridjson -quick
	$(GO) run ./cmd/fesiabench -planjson -quick
	$(GO) run ./cmd/fesiabench -servejson -quick
	$(GO) run ./cmd/fesiabench -tracejson -quick

# Adaptive planner vs static heuristics at full scale (writes BENCH_planner.json).
planbench:
	$(GO) run ./cmd/fesiabench -planjson

# One-vs-many batch engine vs pairwise loop (writes BENCH_batch.json).
batchbench:
	$(GO) run ./cmd/fesiabench -batchjson

# SIMD backend vs pure-Go pairing (writes BENCH_simd.json).
simdbench:
	$(GO) run ./cmd/fesiabench -simdjson

# Serving-tier saturation ramp at full scale (writes BENCH_serve.json).
servebench:
	$(GO) run ./cmd/fesiabench -servejson

# Trace-overhead pairing at full scale (writes BENCH_trace.json).
tracebench:
	$(GO) run ./cmd/fesiabench -tracejson

ablation:
	$(GO) test -bench=Ablation -benchmem .

# Short differential fuzzing session for the intersection strategies (both
# segmented-only and the cross-representation dispatch matrix), the snapshot
# deserializers, and the ISA-ladder parity targets (every tier vs pure Go,
# including forced-AVX2 on AVX-512 hardware).
fuzz:
	$(GO) test ./internal/core -fuzz=FuzzIntersect -fuzztime=30s
	$(GO) test ./internal/core -fuzz=FuzzHybridIntersect -fuzztime=30s
	$(GO) test ./internal/core -fuzz=FuzzReadSet -fuzztime=30s
	$(GO) test ./internal/core -fuzz=FuzzReadCorpus -fuzztime=30s
	$(GO) test ./internal/kernels -fuzz=FuzzTableCount -fuzztime=30s
	$(GO) test ./internal/simd -fuzz=FuzzIntersectSmallParity -fuzztime=30s
	$(GO) test ./internal/simd -fuzz=FuzzProbeStageParity -fuzztime=30s

# CI-sized fuzz smoke: every fuzz target for 30s each (same set as `fuzz`;
# kept as a separate name so CI and local long runs can diverge later).
fuzzsmoke: fuzz

# Regenerate the specialized kernel library after editing internal/kernels/kernelgen.
kernels:
	$(GO) run ./cmd/genkernels
	$(GO) test ./internal/kernels/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/fesiabench -all | tee experiments_full.txt

experiments-quick:
	$(GO) run ./cmd/fesiabench -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewadaptive
	$(GO) run ./examples/keywordsearch
	$(GO) run ./examples/trianglecounting
	$(GO) run ./examples/offlinebuild

clean:
	rm -f cover.out
