package fesia

import (
	"context"
	"slices"
	"sync"

	"fesia/internal/core"
)

// Executor is a reusable query-execution context: it owns all scratch state
// the online intersection phase needs (k-way chain buffers, segment staging,
// parallel per-worker buffers), so that warm queries perform zero heap
// allocations. Build sets once offline, then route every online query through
// an Executor.
//
// An Executor is not safe for concurrent use — give each query goroutine its
// own (they are cheap: buffers grow on demand and are retained). The
// package-level functions (IntersectCount, Intersect, IntersectK, ...) remain
// available as compatibility wrappers over an internal pool of executors.
//
// Ordering contract: methods suffixed Into/Append and the Visit methods
// produce results in segment order — ascending within each segment, segments
// in bitmap order of the driving set — not in ascending value order. This is
// the natural output order of the two-step algorithm; sorting is deferred to
// the caller (or skipped entirely, e.g. when feeding an aggregation).
// Intersect and IntersectK sort before returning, matching the package-level
// functions.
type Executor struct {
	inner *core.Executor
	sets  []*core.Set // k-way unwrapping scratch
}

// NewExecutor returns an empty Executor attached to the shared worker pool.
func NewExecutor() *Executor {
	return &Executor{inner: core.NewExecutor()}
}

// unwrap fills the executor's scratch slice with the inner sets.
func (e *Executor) unwrap(sets []*Set) []*core.Set {
	e.sets = e.sets[:0]
	for _, s := range sets {
		e.sets = append(e.sets, s.inner)
	}
	return e.sets
}

// IntersectCount returns |a ∩ b|, choosing between the two-step merge and
// the hash-probe strategy by input skew (Section VI). Zero heap allocations.
func (e *Executor) IntersectCount(a, b *Set) int { return e.inner.Count(a.inner, b.inner) }

// MergeCount forces the two-step FESIAmerge strategy (Algorithm 1).
func (e *Executor) MergeCount(a, b *Set) int { return e.inner.CountMerge(a.inner, b.inner) }

// HashCount forces the per-element FESIAhash strategy, O(min(n1, n2)).
func (e *Executor) HashCount(a, b *Set) int { return e.inner.CountHash(a.inner, b.inner) }

// Intersect returns a ∩ b in ascending order. The result slice is freshly
// allocated for the caller; use IntersectInto or Visit on allocation-free hot
// paths.
func (e *Executor) Intersect(a, b *Set) []uint32 {
	dst := make([]uint32, min(a.Len(), b.Len()))
	n := e.inner.Intersect(dst, a.inner, b.inner)
	out := dst[:n]
	slices.Sort(out)
	return out
}

// IntersectInto writes a ∩ b into dst and returns the number of elements
// written. dst must have room for min(a.Len(), b.Len()) elements. Results are
// in segment order (see the Executor ordering contract), NOT ascending; sort
// them if value order matters. This is the allocation-free fast path: a warm
// executor performs zero heap allocations here.
func (e *Executor) IntersectInto(dst []uint32, a, b *Set) int {
	return e.inner.Intersect(dst, a.inner, b.inner)
}

// IntersectAppend appends a ∩ b to dst and returns the extended slice, in
// segment order. It allocates only when dst lacks capacity, so an amortized
// caller loop (dst = dst[:0] between queries) is allocation-free.
func (e *Executor) IntersectAppend(dst []uint32, a, b *Set) []uint32 {
	need := min(a.Len(), b.Len())
	dst = slices.Grow(dst, need)
	n := e.inner.Intersect(dst[len(dst):len(dst)+need], a.inner, b.inner)
	return dst[:len(dst)+n]
}

// Visit streams a ∩ b through fn as matches are found, in segment order,
// without materializing a result. The only allocation is the caller's fn
// closure, if any.
func (e *Executor) Visit(a, b *Set, fn func(uint32)) {
	e.inner.Visit(a.inner, b.inner, core.Visitor(fn))
}

// IntersectCountK returns |s1 ∩ ... ∩ sk| with the k-way algorithm of
// Section VI, O(kn/√w + r). Zero heap allocations when warm.
func (e *Executor) IntersectCountK(sets ...*Set) int {
	return e.inner.CountK(e.unwrap(sets)...)
}

// IntersectK returns the k-way intersection in ascending order (freshly
// allocated; use IntersectKInto on hot paths).
func (e *Executor) IntersectK(sets ...*Set) []uint32 {
	inner := e.unwrap(sets)
	minLen := inner[0].Len()
	for _, s := range inner[1:] {
		minLen = min(minLen, s.Len())
	}
	dst := make([]uint32, minLen)
	n := e.inner.IntersectK(dst, inner...)
	out := dst[:n]
	slices.Sort(out)
	return out
}

// IntersectKInto writes the k-way intersection into dst and returns the
// count, in segment order of the largest-bitmap set. dst must have room for
// the smallest set's length. Zero heap allocations when warm.
func (e *Executor) IntersectKInto(dst []uint32, sets ...*Set) int {
	return e.inner.IntersectK(dst, e.unwrap(sets)...)
}

// VisitK streams the k-way intersection through fn, in segment order of the
// largest-bitmap set.
func (e *Executor) VisitK(fn func(uint32), sets ...*Set) {
	e.inner.VisitK(core.Visitor(fn), e.unwrap(sets)...)
}

// IntersectCountMany fills out[i] with |q ∩ candidates[i]| for every
// candidate — the one-vs-many batch engine. Per-candidate results match a
// loop of IntersectCount (including the adaptive strategy switch), but the
// query's bitmap words, memoized hash positions and dispatch scratch stay
// hot across the whole candidate list. out must have at least
// len(candidates) entries. Zero heap allocations once warm.
func (e *Executor) IntersectCountMany(q *Set, candidates []*Set, out []int) {
	e.inner.CountMany(q.inner, e.unwrap(candidates), out)
}

// IntersectManyInto writes q ∩ candidates[i] for every candidate into dst
// back to back, in segment order per candidate (see the ordering contract),
// recording each candidate's count in counts[i] and returning the total
// written. dst must have room for the sum over candidates of
// min(q.Len(), candidate.Len()). Zero heap allocations once warm.
func (e *Executor) IntersectManyInto(dst []uint32, counts []int, q *Set, candidates []*Set) int {
	return e.inner.IntersectManyInto(dst, counts, q.inner, e.unwrap(candidates))
}

// VisitMany streams every q ∩ candidates[i] through fn as (candidate index,
// element) pairs without materializing results, in the order
// IntersectManyInto would write them.
func (e *Executor) VisitMany(q *Set, candidates []*Set, fn func(candidate int, v uint32)) {
	e.inner.VisitMany(q.inner, e.unwrap(candidates), fn)
}

// IntersectCountManyParallel is IntersectCountMany with the candidate list
// partitioned across `workers` parts of the persistent worker pool,
// scheduled in descending candidate size order for balance.
func (e *Executor) IntersectCountManyParallel(q *Set, candidates []*Set, out []int, workers int) {
	e.inner.CountManyParallel(q.inner, e.unwrap(candidates), out, workers)
}

// IntersectCountParallel runs the two-step intersection across `workers`
// parts of the persistent worker pool (Section VI, multicore). No goroutines
// are spawned per call.
func (e *Executor) IntersectCountParallel(a, b *Set, workers int) int {
	return e.inner.CountMergeParallel(a.inner, b.inner, workers)
}

// IntersectCountKParallel runs the k-way intersection across `workers` parts
// of the persistent worker pool.
func (e *Executor) IntersectCountKParallel(workers int, sets ...*Set) int {
	return e.inner.CountKParallel(workers, e.unwrap(sets)...)
}

// Context-aware variants. Serving systems need runaway queries to be
// deadline-bounded and cancellable; these methods check ctx cooperatively at
// coarse checkpoints (per bitmap-word block, per staged-segment block, per
// candidate) and return ctx.Err() as soon as one observes the context done.
// The plain methods above share none of these checkpoints and keep their
// zero-allocation, branch-predictable hot paths. On cancellation, counts are
// zero, destination buffers hold unspecified partial data, and the Executor
// remains valid for further queries.

// IntersectCountCtx is IntersectCount with cooperative cancellation.
func (e *Executor) IntersectCountCtx(ctx context.Context, a, b *Set) (int, error) {
	return e.inner.CountCtx(ctx, a.inner, b.inner)
}

// IntersectIntoCtx is IntersectInto with cooperative cancellation. On
// cancellation it returns (0, ctx.Err()) and dst holds unspecified partial
// data.
func (e *Executor) IntersectIntoCtx(ctx context.Context, dst []uint32, a, b *Set) (int, error) {
	return e.inner.IntersectIntoCtx(ctx, dst, a.inner, b.inner)
}

// IntersectCountKCtx is IntersectCountK with cooperative cancellation.
func (e *Executor) IntersectCountKCtx(ctx context.Context, sets ...*Set) (int, error) {
	return e.inner.CountKCtx(ctx, e.unwrap(sets)...)
}

// IntersectCountManyCtx is IntersectCountMany with cooperative cancellation,
// checked once per candidate: out[i] holds |q ∩ candidates[i]| for every
// candidate processed before the context fired.
func (e *Executor) IntersectCountManyCtx(ctx context.Context, q *Set, candidates []*Set, out []int) error {
	return e.inner.CountManyCtx(ctx, q.inner, e.unwrap(candidates), out)
}

// IntersectCountManyParallelCtx is IntersectCountManyParallel with
// cooperative cancellation: every worker checks the context once per
// candidate, so a cancelled batch over thousands of candidates unwinds within
// one candidate's worth of work per worker.
func (e *Executor) IntersectCountManyParallelCtx(ctx context.Context, q *Set, candidates []*Set, out []int, workers int) error {
	return e.inner.CountManyParallelCtx(ctx, q.inner, e.unwrap(candidates), out, workers)
}

// executors recycles default executors behind the package-level
// compatibility wrappers, so even one-shot calls reuse warm scratch state.
var executors = sync.Pool{New: func() any { return NewExecutor() }}

func getExecutor() *Executor  { return executors.Get().(*Executor) }
func putExecutor(e *Executor) { executors.Put(e) }
