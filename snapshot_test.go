package fesia

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func randElems(rng *rand.Rand, n int, universe uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % universe
	}
	return out
}

func TestSetFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	dir := t.TempDir()
	path := filepath.Join(dir, "set.fesia")
	orig := MustBuild(randElems(rng, 2000, 1<<20))
	if err := WriteSetFile(path, orig); err != nil {
		t.Fatalf("WriteSetFile: %v", err)
	}
	got, err := ReadSetFile(path)
	if err != nil {
		t.Fatalf("ReadSetFile: %v", err)
	}
	if got.Len() != orig.Len() || IntersectCount(got, orig) != orig.Len() {
		t.Fatal("file round trip changed the set")
	}
	// No stray temp files after a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want just the snapshot", len(ents))
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	path := filepath.Join(t.TempDir(), "corpus.fesia")
	lists := make([][]uint32, 6)
	for i := range lists {
		lists[i] = randElems(rng, 50+rng.Intn(300), 1<<16)
	}
	orig, err := BuildBatch(lists)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpusFile(path, orig); err != nil {
		t.Fatalf("WriteCorpusFile: %v", err)
	}
	got, err := ReadCorpusFile(path)
	if err != nil {
		t.Fatalf("ReadCorpusFile: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("loaded %d sets, want %d", len(got), len(orig))
	}
	for i := range orig {
		if IntersectCount(got[i], orig[i]) != orig[i].Len() {
			t.Fatalf("set %d changed across the corpus round trip", i)
		}
	}
}

// TestWriteFileAtomicPreservesOldSnapshot: when the write callback fails, the
// previous snapshot must survive untouched and no temp litter may remain.
func TestWriteFileAtomicPreservesOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good snapshot"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial gar"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "good snapshot" {
		t.Fatalf("old snapshot clobbered: %q", data)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("failed write left %d entries in dir, want 1", len(ents))
	}
}

func TestReadSetFileMissing(t *testing.T) {
	if _, err := ReadSetFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing snapshot loaded successfully")
	}
	if _, err := ReadCorpusFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing corpus loaded successfully")
	}
}

// TestExecutorCtxAPI exercises the public context-aware mirrors end to end:
// parity with the plain methods when uncancelled, prompt context.Canceled
// when pre-cancelled.
func TestExecutorCtxAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := MustBuild(randElems(rng, 3000, 1<<18))
	b := MustBuild(randElems(rng, 3000, 1<<18))
	c := MustBuild(randElems(rng, 300, 1<<18))
	cands := []*Set{a, b, c, a, b, c}
	e := NewExecutor()
	ctx := context.Background()

	if n, err := e.IntersectCountCtx(ctx, a, b); err != nil || n != IntersectCount(a, b) {
		t.Fatalf("IntersectCountCtx = %d, %v; want %d", n, err, IntersectCount(a, b))
	}
	if n, err := e.IntersectCountKCtx(ctx, a, b, c); err != nil || n != IntersectCountK(a, b, c) {
		t.Fatalf("IntersectCountKCtx = %d, %v; want %d", n, err, IntersectCountK(a, b, c))
	}
	dst := make([]uint32, min(a.Len(), b.Len()))
	n, err := e.IntersectIntoCtx(ctx, dst, a, b)
	if err != nil || n != IntersectCount(a, b) {
		t.Fatalf("IntersectIntoCtx wrote %d (%v), want %d", n, err, IntersectCount(a, b))
	}
	want := make([]int, len(cands))
	e.IntersectCountMany(c, cands, want)
	out := make([]int, len(cands))
	if err := e.IntersectCountManyCtx(ctx, c, cands, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("IntersectCountManyCtx[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	clear(out)
	if err := e.IntersectCountManyParallelCtx(ctx, c, cands, out, 3); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("IntersectCountManyParallelCtx[%d] = %d, want %d", i, out[i], want[i])
		}
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.IntersectCountCtx(cancelled, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled IntersectCountCtx err = %v", err)
	}
	if err := e.IntersectCountManyParallelCtx(cancelled, c, cands, out, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled IntersectCountManyParallelCtx err = %v", err)
	}
	// The executor stays usable after cancellation.
	if got := e.IntersectCount(a, b); got != IntersectCount(a, b) {
		t.Fatal("executor corrupted by cancelled query")
	}
}
