package fesia

import (
	"io"

	"fesia/internal/core"
	"fesia/internal/simd"
)

// Width selects the emulated vector ISA a set is built for.
type Width = simd.Width

// Supported ISA widths.
const (
	SSE    = simd.WidthSSE
	AVX    = simd.WidthAVX
	AVX512 = simd.WidthAVX512
)

// Rep identifies a set's physical representation. A corpus may freely mix
// representations: every intersection entry point accepts any pair.
type Rep = core.Rep

// Supported representations (see WithRepresentation).
const (
	// RepAuto picks the representation per set by a density/size heuristic:
	// tiny sets become sorted arrays, sets dense in their value span become
	// plain bitmaps, everything else gets the paper's segmented bitmap.
	RepAuto = core.RepAuto
	// RepSegmented forces the FESIA segmented-bitmap structure (Fig. 1) —
	// the default, and the historical behavior.
	RepSegmented = core.RepSegmented
	// RepArray forces the sorted-array representation: 4 bytes per element,
	// intersected with SIMD jump-table kernels.
	RepArray = core.RepArray
	// RepDense forces the dense-bitmap representation: one bit per value in
	// the set's span, intersected by word-AND + popcount. Empty sets fall
	// back to arrays (the dense form has no empty encoding).
	RepDense = core.RepDense
)

// Set is an immutable FESIA set: a segmented bitmap plus the reordered
// element array (Fig. 1 of the paper). Build once, intersect many times;
// Sets are safe for concurrent use.
type Set struct {
	inner *core.Set
}

// Option customizes Build.
type Option func(*core.Config)

// WithWidth selects the emulated vector ISA (SSE, AVX, AVX512).
// Default: AVX.
func WithWidth(w Width) Option {
	return func(c *core.Config) { c.Width = w }
}

// WithSegmentBits sets the segment size s in bits (8, 16 or 32). Smaller
// segments shift work from the kernels to the bitmap scan (Fig. 14).
// Default: 8.
func WithSegmentBits(s int) Option {
	return func(c *core.Config) { c.SegBits = s }
}

// WithBitmapScale overrides the bitmap bits-per-element factor (default √w,
// the paper's m = n·√w). Larger bitmaps reduce false-positive segment
// matches at the cost of a longer bitmap scan.
func WithBitmapScale(scale float64) Option {
	return func(c *core.Config) { c.Scale = scale }
}

// WithSeed salts the hash function. Sets intersected together must share a
// seed.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithKernelStride samples the specialized-kernel sizes at the given stride
// (1, 4 or 8), shrinking the kernel jump table as in Section VI / Table II.
// Strides above 1 require AVX512.
func WithKernelStride(stride int) Option {
	return func(c *core.Config) { c.Stride = stride }
}

// WithRepresentation selects the physical representation: RepSegmented (the
// default), RepArray, RepDense, or RepAuto to pick per set by the
// density/size heuristic. Sets of different representations intersect freely
// with each other — the knob trades memory for intersection strategy, not
// compatibility.
func WithRepresentation(r Rep) Option {
	return func(c *core.Config) { c.Rep = r }
}

// Build preprocesses elems (unsorted, duplicates allowed) into a Set.
func Build(elems []uint32, opts ...Option) (*Set, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	s, err := core.NewSet(elems, cfg)
	if err != nil {
		return nil, err
	}
	return &Set{inner: s}, nil
}

// MustBuild is Build for known-good options; it panics on error.
func MustBuild(elems []uint32, opts ...Option) *Set {
	s, err := Build(elems, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// BuildBatch builds one Set per input list with all backing arrays packed
// into shared arenas. Prefer it when constructing many small sets that will
// be intersected against each other — per-vertex neighbor sets, per-keyword
// posting lists — for better query-time memory locality.
func BuildBatch(lists [][]uint32, opts ...Option) ([]*Set, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := core.NewSetBatch(lists, cfg)
	if err != nil {
		return nil, err
	}
	sets := make([]*Set, len(inner))
	for i, s := range inner {
		sets[i] = &Set{inner: s}
	}
	return sets, nil
}

// Len returns the number of distinct elements in the set.
func (s *Set) Len() int { return s.inner.Len() }

// Contains reports membership via a single bitmap probe plus one segment
// scan — O(1) expected.
func (s *Set) Contains(x uint32) bool { return s.inner.Contains(x) }

// Elements returns the distinct elements in ascending order.
func (s *Set) Elements() []uint32 { return s.inner.Elements() }

// BitmapBits returns m, the size of the set's bitmap in bits (0 for array
// sets; the span cover for dense sets).
func (s *Set) BitmapBits() uint64 { return s.inner.BitmapBits() }

// Representation returns the set's physical representation — what RepAuto
// actually chose, or the representation that was forced at build time.
func (s *Set) Representation() Rep { return s.inner.Rep() }

// MemoryBytes returns the approximate footprint of the structure.
func (s *Set) MemoryBytes() int { return s.inner.MemoryBytes() }

// Stats reports segmented-bitmap layout statistics (segment occupancy,
// bit density) — the quantities to inspect when tuning WithBitmapScale and
// WithSegmentBits.
type SetStats = core.Stats

// Stats computes layout statistics for the set.
func (s *Set) Stats() SetStats { return s.inner.Stats() }

// WriteTo serializes the set (construction is the expensive offline step;
// the serialized form can be shipped to query servers and loaded with
// ReadSet). It implements io.WriterTo.
func (s *Set) WriteTo(w io.Writer) (int64, error) { return s.inner.WriteTo(w) }

// ReadSet deserializes a Set written by Set.WriteTo, validating structural
// invariants; corrupted input yields an error.
func ReadSet(r io.Reader) (*Set, error) {
	inner, err := core.ReadSet(r)
	if err != nil {
		return nil, err
	}
	return &Set{inner: inner}, nil
}

// WriteCorpus serializes a whole corpus of sets — typically a BuildBatch
// result — into one stream with a trailing whole-file CRC32C checksum. All
// sets must share one build configuration. The corresponding loader is
// ReadCorpus.
func WriteCorpus(w io.Writer, sets []*Set) (int64, error) {
	inner := make([]*core.Set, len(sets))
	for i, s := range sets {
		inner[i] = s.inner
	}
	return core.WriteCorpus(w, inner)
}

// ReadCorpus deserializes a corpus written by WriteCorpus, verifying the
// whole-file checksum before any structural interpretation and rebuilding the
// sets into one contiguous arena (the BuildBatch memory layout). Corruption —
// truncation, bit flips, forged headers — yields an error, never a panic or a
// silently wrong set.
func ReadCorpus(r io.Reader) ([]*Set, error) {
	inner, err := core.ReadCorpus(r)
	if err != nil {
		return nil, err
	}
	sets := make([]*Set, len(inner))
	for i, s := range inner {
		sets[i] = &Set{inner: s}
	}
	return sets, nil
}

// IntersectCount returns |a ∩ b|, choosing between the two-step merge and
// the hash-probe strategy based on the input size ratio (Section VI).
// Compatibility wrapper over a pooled default Executor.
func IntersectCount(a, b *Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectCount(a, b)
}

// Intersect returns a ∩ b in ascending order, as a fresh slice. Callers that
// do not need value order (or a fresh slice) should use IntersectInto or an
// Executor, which skip both the allocation and the sort.
func Intersect(a, b *Set) []uint32 {
	e := getExecutor()
	defer putExecutor(e)
	return e.Intersect(a, b)
}

// IntersectInto writes a ∩ b into dst and returns the number of elements
// written, skipping the allocation and sort of Intersect. dst must have room
// for min(a.Len(), b.Len()) elements. Results are in segment order
// (ascending within each segment, segments in bitmap order of the
// larger-bitmap set for the merge strategy, of the smaller set for the hash
// strategy) — NOT in ascending value order. Compatibility wrapper over a
// pooled default Executor; warm calls perform zero heap allocations.
func IntersectInto(dst []uint32, a, b *Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectInto(dst, a, b)
}

// MergeCount forces the two-step FESIAmerge strategy (Algorithm 1).
func MergeCount(a, b *Set) int { return core.CountMerge(a.inner, b.inner) }

// HashCount forces the per-element FESIAhash strategy, O(min(n1, n2)).
func HashCount(a, b *Set) int { return core.CountHash(a.inner, b.inner) }

// IntersectCountK returns |s1 ∩ ... ∩ sk| with the k-way algorithm of
// Section VI, O(kn/√w + r). Compatibility wrapper over a pooled default
// Executor.
func IntersectCountK(sets ...*Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectCountK(sets...)
}

// IntersectK returns the k-way intersection in ascending order.
// Compatibility wrapper over a pooled default Executor.
func IntersectK(sets ...*Set) []uint32 {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectK(sets...)
}

// IntersectCountParallel runs the two-step intersection across `workers`
// parts of the persistent shared worker pool by partitioning the bitmap
// (Section VI, multicore). Compatibility wrapper over a pooled default
// Executor.
func IntersectCountParallel(a, b *Set, workers int) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectCountParallel(a, b, workers)
}

// IntersectCountKParallel runs the k-way intersection across `workers` parts
// of the persistent shared worker pool. Compatibility wrapper over a pooled
// default Executor.
func IntersectCountKParallel(workers int, sets ...*Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectCountKParallel(workers, sets...)
}

// Breakdown reports per-step timing of one merge intersection (Fig. 14).
type Breakdown = core.Breakdown

// IntersectCountBreakdown runs MergeCount with per-step instrumentation.
func IntersectCountBreakdown(a, b *Set) Breakdown {
	return core.CountMergeBreakdown(a.inner, b.inner)
}

// HashBreakdown reports per-phase timing of one hash-strategy intersection —
// the skewed-input counterpart of Breakdown.
type HashBreakdown = core.HashBreakdown

// IntersectCountHashBreakdown runs HashCount with per-phase instrumentation
// (branch-free probe staging, read-ahead touch pass, survivor segment scans).
func IntersectCountHashBreakdown(a, b *Set) HashBreakdown {
	return core.CountHashBreakdown(a.inner, b.inner)
}
