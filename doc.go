// Package fesia is a Go implementation of FESIA, the fast and SIMD-efficient
// set intersection approach of Zhang, Lu, Spampinato and Franchetti
// (ICDE 2020).
//
// FESIA targets the common case where the intersection of two sets is much
// smaller than the sets themselves (keyword search, common-neighbor queries).
// Each set is preprocessed into a segmented bitmap: elements are hashed into
// an m-bit bitmap (m ≈ n·√w for SIMD width w), every s bits form a segment,
// and elements are stored segment-by-segment in a reordered array.
// Intersection then runs in two steps — a wide bitwise AND over the bitmaps
// prunes segments that cannot intersect, and small specialized kernels
// (dispatched by exact segment sizes through a jump table) intersect the few
// surviving segment pairs. The expected cost is O(n/√w + r) instead of the
// O(n1 + n2) of merge-based methods.
//
// Because Go has no SIMD intrinsics, the kernels execute the paper's exact
// comparison streams as branchless scalar code (one op per element
// comparison — the same currency every baseline in this repository uses),
// validated against an emulated vector ISA that serves as their executable
// specification (see internal/simd); the bitmap filter runs on native
// 64-bit words, which is genuine data parallelism. The algorithmic
// behaviour — work proportional to intersection size, strategy crossovers,
// kernel specialization — is faithfully reproduced; the V-fold throughput
// of real vector instructions is not claimed.
//
// # Quick start
//
//	a, _ := fesia.Build([]uint32{1, 4, 15, 21, 32, 34})
//	b, _ := fesia.Build([]uint32{2, 6, 12, 16, 21, 23})
//	common := fesia.Intersect(a, b) // [21]
//
// Sets that will be intersected together must be built with the same
// options (width, segment bits, seed, kernel stride); bitmap sizes adapt to
// each set's cardinality and are reconciled automatically.
//
// # Choosing a strategy
//
// IntersectCount picks between the two-step merge (FESIAmerge) and a
// per-element hash probe (FESIAhash) based on the size ratio of the inputs,
// mirroring the crossover at skew ≈ 1/4 in Fig. 11 of the paper. The
// specific strategies are available as MergeCount/HashCount when the
// adaptive choice needs overriding.
//
// # Reproduction harness
//
// cmd/fesiabench regenerates every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package fesia
