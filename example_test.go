package fesia_test

import (
	"fmt"

	"fesia"
)

func ExampleBuild() {
	set, err := fesia.Build([]uint32{3, 1, 4, 1, 5, 9, 2, 6})
	if err != nil {
		panic(err)
	}
	fmt.Println(set.Len(), set.Contains(5), set.Contains(7))
	// Output: 7 true false
}

func ExampleIntersect() {
	a := fesia.MustBuild([]uint32{1, 4, 15, 21, 32, 34})
	b := fesia.MustBuild([]uint32{2, 6, 12, 16, 21, 23})
	fmt.Println(fesia.Intersect(a, b))
	// Output: [21]
}

func ExampleIntersectK() {
	a := fesia.MustBuild([]uint32{1, 2, 3, 4, 5})
	b := fesia.MustBuild([]uint32{2, 3, 4, 5, 6})
	c := fesia.MustBuild([]uint32{3, 4, 5, 6, 7})
	fmt.Println(fesia.IntersectK(a, b, c))
	// Output: [3 4 5]
}

func ExampleHashCount() {
	// When one set is much smaller, the hash-probe strategy touches only
	// the small set's elements: O(min(n1, n2)).
	small := fesia.MustBuild([]uint32{10, 501, 900})
	large := fesia.MustBuild(rangeSet(0, 1000, 2)) // evens below 1000
	fmt.Println(fesia.HashCount(small, large))
	// Output: 2
}

func ExampleBuildBatch() {
	sets, err := fesia.BuildBatch([][]uint32{
		{1, 2, 3},
		{2, 3, 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(fesia.IntersectCount(sets[0], sets[1]))
	// Output: 2
}

func rangeSet(lo, hi, step uint32) []uint32 {
	var out []uint32
	for v := lo; v < hi; v += step {
		out = append(out, v)
	}
	return out
}
