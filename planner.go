package fesia

import (
	"fesia/internal/core"
	"fesia/internal/planner"
)

// Adaptive strategy planner. The engine's dispatch points — merge vs hash for
// segmented pairs, which side probes in the cross-representation paths, which
// set seeds the k-way chain — default to the paper's static size heuristics
// (Section VI's skew cutover, smallest-set-first). The planner replaces those
// fixed thresholds with a live cost model: per (size-bucket, strategy) cell
// it maintains an EWMA of measured nanoseconds-per-element, seeded from the
// static heuristics so a cold planner decides exactly like them, and refined
// online from sampled query latencies on this machine's actual kernels. An
// epsilon-exploration knob keeps the road not taken measured.
//
// Typical serving setup:
//
//	fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerLearned)) // once, at startup
//	...
//	// executors created afterwards consult the model automatically;
//	// /metrics exports fesia_planner_info, decision counters, and the
//	// learned cost table.
//
// The hot-path cost is one table lookup per dispatch (a nil check when the
// planner is off), and the warm query paths stay allocation-free.

// PlannerMode selects how much the planner is allowed to do.
type PlannerMode = planner.Mode

const (
	// PlannerOff disables the planner: every dispatch point uses the static
	// size heuristics. This is the process default.
	PlannerOff = planner.ModeOff
	// PlannerPrior consults the planner's cost table but never measures or
	// updates it, so decisions are bit-identical to the static heuristics —
	// the escape hatch for verifying the wiring costs nothing.
	PlannerPrior = planner.ModePrior
	// PlannerLearned measures sampled query latencies and re-fits the cost
	// table online; decisions follow the learned costs.
	PlannerLearned = planner.ModeLearned
)

// PlannerOption configures EnablePlanner.
type PlannerOption = planner.Option

// WithPlanner sets the planner mode (default PlannerLearned).
func WithPlanner(m PlannerMode) PlannerOption { return planner.WithMode(m) }

// WithPlannerExploration sets the epsilon-exploration period: one decision in
// everyN deliberately takes the currently-dispreferred strategy (and measures
// it), so both arms of every cell keep fresh cost estimates. 0 disables
// exploration; the default is one in 64.
func WithPlannerExploration(everyN int) PlannerOption { return planner.WithExploreEvery(everyN) }

// WithPlannerSampling sets the measurement period: one in everyN non-explored
// decisions is timed and fed back into the model. Lower values learn faster
// at slightly higher clock-read overhead; the default is one in 16.
func WithPlannerSampling(everyN int) PlannerOption { return planner.WithSampleEvery(everyN) }

// EnablePlanner builds an adaptive planner model (PlannerLearned unless
// overridden with WithPlanner) and installs it process-wide. Executors created
// afterwards — including the internal pool behind the package-level wrappers —
// consult it automatically; executors created before keep their static
// heuristics unless attached directly with (*Executor).EnablePlanner.
// Calling it with WithPlanner(PlannerOff) deactivates the planner for future
// executors.
func EnablePlanner(opts ...PlannerOption) {
	core.EnablePlanner(planner.New(opts...))
}

// ActivePlannerMode reports the process-wide planner mode as a string ("off",
// "prior" or "learned") — the same value /metrics exports as the
// fesia_planner_info gauge's mode label.
func ActivePlannerMode() string { return planner.ActiveMode().String() }

// EnablePlanner attaches this executor (and its parallel worker slots) to the
// process-wide planner model, if one is active. Use for executors created
// before the global EnablePlanner call; newer executors attach on
// construction.
func (e *Executor) EnablePlanner() {
	if m := core.PlannerModel(); m != nil {
		e.inner.EnablePlanner(m)
	}
}

// DisablePlanner detaches this executor from the planner: its dispatch points
// revert to the static size heuristics.
func (e *Executor) DisablePlanner() { e.inner.DisablePlanner() }
