package kernels

import "fesia/internal/simd"

// Jump-table patching for the assembly backend. The generated kernels emulate
// the paper's vector ISA scalar-wise; when the real AVX2 backend is available,
// the count entries for small nominal sizes (1..8 on both sides — one ymm
// register of lanes) are rerouted to the broadcast-compare-count kernel in
// internal/simd, which is the hardware form of the same Fig. 2 comparison
// stream. Entries are patched in place, so every Dispatcher previously handed
// out (internal/core caches slice headers per Set) picks up the fast routines
// with no re-wiring and no allocation on the query path.
//
// Only count entries are patched: the materializing (Intersect/Visit) kernels
// must emit elements in order, which the lane-parallel compare does not
// produce without a compress step — see ROADMAP "Open items".

// asmPatchMax is the largest nominal size (per side) routed to the assembly
// kernel: 8 lanes = one ymm register for the masked-loaded side.
const asmPatchMax = 8

type savedCountEntry struct {
	table *Table
	ctrl  int
	orig  CountFunc
}

var (
	asmKernelsOn bool
	asmSaved     []savedCountEntry
)

// UseAsmKernels switches the small-size count entries of every generated
// table to the assembly broadcast-compare kernel (on=true) or restores the
// original generated bodies (on=false). Enabling is a no-op when the backend
// is not compiled in or the CPU lacks support. Like simd.SetAsmEnabled it is
// test/benchmark plumbing: not synchronized, and must not race with queries.
// It returns the previous state.
func UseAsmKernels(on bool) bool {
	prev := asmKernelsOn
	if on == prev {
		return prev
	}
	if on {
		if !simd.HasAsm() {
			return prev
		}
		for _, t := range Tables() {
			patchTable(t)
		}
		asmKernelsOn = true
		return prev
	}
	for _, s := range asmSaved {
		s.table.count[s.ctrl] = s.orig
	}
	asmSaved = asmSaved[:0]
	asmKernelsOn = false
	return prev
}

// AsmKernelsActive reports whether the jump tables currently route small
// count entries to the assembly kernel.
func AsmKernelsActive() bool { return asmKernelsOn }

func patchTable(t *Table) {
	maxN := asmPatchMax
	if t.cap < maxN {
		maxN = t.cap
	}
	for na := 1; na <= maxN; na++ {
		for nb := 1; nb <= maxN; nb++ {
			ctrl := na<<t.bits | nb
			if ctrl >= len(t.count) || t.count[ctrl] == nil {
				continue
			}
			orig := t.count[ctrl]
			asmSaved = append(asmSaved, savedCountEntry{t, ctrl, orig})
			// The wrapper re-checks AsmActive so simd.SetAsmEnabled(false)
			// (benchmark pairing) falls back to the original generated body,
			// not merely a scalar merge.
			t.count[ctrl] = func(a, b []uint32) int {
				if simd.AsmActive() {
					return simd.CountSmall(a, b)
				}
				return orig(a, b)
			}
		}
	}
}

func init() {
	if simd.HasAsm() {
		UseAsmKernels(true)
	}
}
