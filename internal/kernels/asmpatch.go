package kernels

import "fesia/internal/simd"

// Jump-table patching for the assembly backend ladder. The generated kernels
// emulate the paper's vector ISA scalar-wise; when a real backend is
// available, small-size entries are rerouted in place to the hardware
// routines in internal/simd, so every Dispatcher previously handed out
// (internal/core caches slice headers per Set) picks up the fast routines
// with no re-wiring and no allocation on the query path.
//
// The ladder patches two classes of entry:
//
//   - Count entries with both sides ≤ 8 route to simd.CountSmall, whose own
//     dispatch climbs the ladder (16-lane AVX-512 broadcast when the top
//     rung is live, 8-lane AVX2 otherwise — one register of lanes either
//     way, the hardware form of the same Fig. 2 comparison stream).
//   - On AVX-512 hardware only: count entries with a side in 9..16 (AVX2's
//     register cannot hold them) and *intersect* entries with both sides
//     ≤ 16 route to simd.CountSmall / simd.IntersectSmall. The intersect
//     entries are the compress-store materialize path — VPCOMPRESSD emits
//     the matching lanes in order, which no AVX2 instruction can do, so the
//     materializing kernels (IntersectInto/IntersectManyInto/Visit) get real
//     SIMD output instead of count-only.
//
// Every wrapper re-checks the live dispatch switch it needs and falls back
// to the original generated body, so simd.SetAsmEnabled(false) /
// simd.SetAvx512Enabled(false) (benchmark pairing, forced-AVX2 tier) restore
// the exact pre-patch behavior without touching the tables.

// asmPatchMax is the largest nominal size (per side) routed to the AVX2
// count kernel: 8 lanes = one ymm register for the masked-loaded side.
const asmPatchMax = 8

// asmPatchMax512 is the largest nominal size (per side) routed to the
// AVX-512 kernels: 16 lanes = one zmm register.
const asmPatchMax512 = 16

type savedCountEntry struct {
	table *Table
	ctrl  int
	orig  CountFunc
}

type savedInterEntry struct {
	table *Table
	ctrl  int
	orig  IntersectFunc
}

var (
	asmKernelsOn  bool
	asmSaved      []savedCountEntry
	asmSavedInter []savedInterEntry
)

// UseAsmKernels switches the small-size entries of every generated table to
// the assembly kernels (on=true) or restores the original generated bodies
// (on=false). Enabling is a no-op when the backend is not compiled in or the
// CPU lacks support; the AVX-512-only entries are patched only when that
// rung is available. Like simd.SetAsmEnabled it is test/benchmark plumbing:
// not synchronized, and must not race with queries. It returns the previous
// state.
func UseAsmKernels(on bool) bool {
	prev := asmKernelsOn
	if on == prev {
		return prev
	}
	if on {
		if !simd.HasAsm() {
			return prev
		}
		for _, t := range Tables() {
			patchTable(t)
		}
		asmKernelsOn = true
		return prev
	}
	for _, s := range asmSaved {
		s.table.count[s.ctrl] = s.orig
	}
	asmSaved = asmSaved[:0]
	for _, s := range asmSavedInter {
		s.table.inter[s.ctrl] = s.orig
	}
	asmSavedInter = asmSavedInter[:0]
	asmKernelsOn = false
	return prev
}

// AsmKernelsActive reports whether the jump tables currently route small
// entries to the assembly kernels.
func AsmKernelsActive() bool { return asmKernelsOn }

func patchTable(t *Table) {
	maxN := asmPatchMax512
	if !simd.HasAVX512() {
		maxN = asmPatchMax
	}
	if t.cap < maxN {
		maxN = t.cap
	}
	for na := 1; na <= maxN; na++ {
		for nb := 1; nb <= maxN; nb++ {
			ctrl := na<<t.bits | nb
			if ctrl >= len(t.count) {
				continue
			}
			patchCountEntry(t, ctrl, na, nb)
			if simd.HasAVX512() {
				// Ordered output needs compress-store; without the top rung
				// the wrapper could only ever fall back, so leave the
				// generated body unwrapped.
				patchInterEntry(t, ctrl)
			}
		}
	}
}

func patchCountEntry(t *Table, ctrl, na, nb int) {
	if t.count[ctrl] == nil {
		return
	}
	orig := t.count[ctrl]
	asmSaved = append(asmSaved, savedCountEntry{t, ctrl, orig})
	if na <= asmPatchMax && nb <= asmPatchMax {
		// Both sides fit a ymm register: any rung of the ladder can count
		// this entry, and CountSmall dispatches the widest live one.
		t.count[ctrl] = func(a, b []uint32) int {
			if simd.AsmActive() {
				return simd.CountSmall(a, b)
			}
			return orig(a, b)
		}
		return
	}
	// A side in 9..16: only the 16-lane AVX-512 register holds it.
	t.count[ctrl] = func(a, b []uint32) int {
		if simd.Avx512Active() {
			return simd.CountSmall(a, b)
		}
		return orig(a, b)
	}
}

func patchInterEntry(t *Table, ctrl int) {
	if t.inter[ctrl] == nil {
		return
	}
	orig := t.inter[ctrl]
	asmSavedInter = append(asmSavedInter, savedInterEntry{t, ctrl, orig})
	// The wrapper falls back to the generated body on the lower rungs
	// (forced-AVX2 tier, benchmark pairing).
	t.inter[ctrl] = func(dst, a, b []uint32) int {
		if simd.Avx512Active() {
			return simd.IntersectSmall(dst, a, b)
		}
		return orig(dst, a, b)
	}
}

func init() {
	if simd.HasAsm() {
		UseAsmKernels(true)
	}
}
