package kernels

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fesia/internal/simd"
)

// randomSortedSet returns n distinct sorted uint32 values drawn from
// [0, universe).
func randomSortedSet(rng *rand.Rand, n int, universe uint32) []uint32 {
	if n == 0 {
		return nil
	}
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := rng.Uint32() % universe
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// overlappingPair returns two sorted distinct sets of sizes na and nb that
// share roughly `share` elements, to exercise both hit and miss lanes.
func overlappingPair(rng *rand.Rand, na, nb, share int, universe uint32) (a, b []uint32) {
	if share > na {
		share = na
	}
	if share > nb {
		share = nb
	}
	common := randomSortedSet(rng, share, universe)
	inCommon := make(map[uint32]bool, share)
	for _, v := range common {
		inCommon[v] = true
	}
	fill := func(n int) []uint32 {
		s := append([]uint32(nil), common...)
		seen := make(map[uint32]bool, n)
		for _, v := range common {
			seen[v] = true
		}
		for len(s) < n {
			v := rng.Uint32() % universe
			if !seen[v] {
				seen[v] = true
				s = append(s, v)
			}
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s
	}
	a, b = fill(na), fill(nb)
	// The two fills may have accidentally created extra overlap; that is
	// fine — GenericCount defines ground truth.
	_ = inCommon
	return a, b
}

func TestGenericCountAndIntersect(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9}
	b := []uint32{3, 4, 5, 9, 10, 11}
	if got := GenericCount(a, b); got != 3 {
		t.Errorf("GenericCount = %d, want 3", got)
	}
	dst := make([]uint32, 5)
	n := GenericIntersect(dst, a, b)
	if n != 3 || dst[0] != 3 || dst[1] != 5 || dst[2] != 9 {
		t.Errorf("GenericIntersect = %v (n=%d)", dst[:n], n)
	}
	if GenericCount(nil, b) != 0 || GenericCount(a, nil) != 0 {
		t.Error("GenericCount with empty input should be 0")
	}
}

// TestAllTablesExhaustive checks every kernel in every table against the
// scalar generic kernel, over every size pair up to the table cap, with
// random overlapping inputs. This covers all generated bodies, swap aliases,
// zero kernels, and the strided dispatch rounding.
func TestAllTablesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tbl := range Tables() {
		tbl := tbl
		name := tbl.Width().String()
		if tbl.Stride() > 1 {
			name += "-stride" + string(rune('0'+tbl.Stride()))
		}
		t.Run(name, func(t *testing.T) {
			for sa := 0; sa <= tbl.Cap(); sa++ {
				for sb := 0; sb <= tbl.Cap(); sb++ {
					for trial := 0; trial < 3; trial++ {
						// Small universes force collisions; large ones force misses.
						universe := uint32(1) << uint(4+trial*10)
						if universe < uint32(sa+sb+1) {
							universe = uint32(sa + sb + 1)
						}
						a, b := overlappingPair(rng, sa, sb, trial*min(sa, sb)/2, universe)
						want := GenericCount(a, b)
						if got := tbl.Count(a, b); got != want {
							t.Fatalf("%s Count(%dx%d trial %d) = %d, want %d\na=%v\nb=%v",
								name, sa, sb, trial, got, want, a, b)
						}
						dst := make([]uint32, min(sa, sb)+1)
						n := tbl.Intersect(dst, a, b)
						if n != want {
							t.Fatalf("%s Intersect(%dx%d) count = %d, want %d", name, sa, sb, n, want)
						}
						wantSet := make([]uint32, want)
						GenericIntersect(wantSet, a, b)
						got := append([]uint32(nil), dst[:n]...)
						sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
						for i := range wantSet {
							if got[i] != wantSet[i] {
								t.Fatalf("%s Intersect(%dx%d) values = %v, want %v", name, sa, sb, got, wantSet)
							}
						}
					}
				}
			}
		})
	}
}

// TestIntersectOutputSorted verifies the documented ordering contract: exact
// kernels emit matches in ascending order.
func TestIntersectOutputSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tbl := range []*Table{TableSSE, TableAVX, TableAVX512} {
		for trial := 0; trial < 200; trial++ {
			sa := rng.Intn(tbl.Cap() + 1)
			sb := rng.Intn(tbl.Cap() + 1)
			a, b := overlappingPair(rng, sa, sb, min(sa, sb), 64)
			dst := make([]uint32, min(sa, sb)+1)
			n := tbl.Intersect(dst, a, b)
			for i := 1; i < n; i++ {
				if dst[i-1] >= dst[i] {
					t.Fatalf("%v Intersect(%dx%d) output not ascending: %v", tbl.Width(), sa, sb, dst[:n])
				}
			}
		}
	}
}

// TestOverCapFallback: sizes beyond the table cap must route to the generic
// kernel and stay correct.
func TestOverCapFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tbl := range Tables() {
		a, b := overlappingPair(rng, tbl.Cap()+5, tbl.Cap()+9, 6, 512)
		want := GenericCount(a, b)
		if got := tbl.Count(a, b); got != want {
			t.Errorf("%v over-cap Count = %d, want %d", tbl.Width(), got, want)
		}
		dst := make([]uint32, tbl.Cap()+6)
		if got := tbl.Intersect(dst, a, b); got != want {
			t.Errorf("%v over-cap Intersect = %d, want %d", tbl.Width(), got, want)
		}
	}
}

func TestGeneralKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512} {
		for trial := 0; trial < 300; trial++ {
			sa := rng.Intn(2*w.Lanes() + 1)
			sb := rng.Intn(2*w.Lanes() + 1)
			a, b := overlappingPair(rng, sa, sb, rng.Intn(min(sa, sb)+1), 128)
			want := GenericCount(a, b)
			if got := GeneralCount(w, a, b); got != want {
				t.Fatalf("GeneralCount(%v, %dx%d) = %d, want %d\na=%v\nb=%v", w, sa, sb, got, want, a, b)
			}
		}
	}
}

// Property test: for arbitrary random sets within cap, every table agrees
// with scalar ground truth.
func TestTablesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seedA, seedB uint32) bool {
		sa := int(seedA % 32)
		sb := int(seedB % 32)
		a, b := overlappingPair(rng, sa, sb, int(seedA%8), 256)
		want := GenericCount(a, b)
		for _, tbl := range Tables() {
			if sa > tbl.Cap() || sb > tbl.Cap() {
				continue
			}
			if tbl.Count(a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableMetadata(t *testing.T) {
	full := ForStride(1)
	s4 := ForStride(4)
	s8 := ForStride(8)
	if !(full.CodeSize() > s4.CodeSize() && s4.CodeSize() > s8.CodeSize()) {
		t.Errorf("code sizes not monotone: full=%d s4=%d s8=%d",
			full.CodeSize(), s4.CodeSize(), s8.CodeSize())
	}
	if !(full.NumKernels() > s4.NumKernels() && s4.NumKernels() > s8.NumKernels()) {
		t.Errorf("kernel counts not monotone: full=%d s4=%d s8=%d",
			full.NumKernels(), s4.NumKernels(), s8.NumKernels())
	}
	// Table II reports ~90% and ~98% code-size reduction for strides 4 and 8.
	r4 := 1 - float64(s4.CodeSize())/float64(full.CodeSize())
	r8 := 1 - float64(s8.CodeSize())/float64(full.CodeSize())
	if r4 < 0.80 || r8 < 0.95 {
		t.Errorf("stride reductions too small: r4=%.2f r8=%.2f", r4, r8)
	}
}

func TestKernelBytes(t *testing.T) {
	tbl := TableSSE
	b, ctrl, ok := tbl.KernelBytes(2, 3)
	if !ok || b <= 0 {
		t.Fatalf("KernelBytes(2,3) = %d, ok=%v", b, ok)
	}
	if ctrl != 2<<3|3 {
		t.Errorf("ctrl = %d, want %d (Listing 2 encoding)", ctrl, 2<<3|3)
	}
	if _, _, ok := tbl.KernelBytes(8, 3); ok {
		t.Error("KernelBytes beyond cap should report ok=false")
	}
	// Strided tables round up: sizes 1..4 share the stride-4 nominal kernel.
	s4 := ForStride(4)
	b1, c1, _ := s4.KernelBytes(1, 1)
	b4, c4, _ := s4.KernelBytes(4, 4)
	if c1 != c4 || b1 != b4 {
		t.Errorf("stride-4 rounding: (1,1)->ctrl %d bytes %d, (4,4)->ctrl %d bytes %d", c1, b1, c4, b4)
	}
}

func TestForWidth(t *testing.T) {
	if ForWidth(simd.WidthSSE) != TableSSE ||
		ForWidth(simd.WidthAVX) != TableAVX ||
		ForWidth(simd.WidthAVX512) != TableAVX512 {
		t.Error("ForWidth returned wrong table")
	}
	defer func() {
		if recover() == nil {
			t.Error("ForWidth(0) should panic")
		}
	}()
	ForWidth(0)
}

func TestForStridePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ForStride(3) should panic")
		}
	}()
	ForStride(3)
}

func TestHelpers(t *testing.T) {
	dst := make([]uint32, 4)
	src := []uint32{10, 20, 30, 40}
	if zeroCount(src, src) != 0 || zeroIntersect(dst, src, src) != 0 {
		t.Error("zero kernels must return 0")
	}
	// eqbit is branch-free equality over the full uint32 domain.
	cases := []struct {
		x, y uint32
		want uint32
	}{
		{0, 0, 1}, {1, 1, 1}, {0, 1, 0}, {^uint32(0), ^uint32(0), 1},
		{1 << 31, 1 << 31, 1}, {1 << 31, 0, 0}, {0x7FFFFFFF, 0xFFFFFFFF, 0},
	}
	for _, c := range cases {
		if got := eqbit(c.x, c.y); got != c.want {
			t.Errorf("eqbit(%#x, %#x) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	if scanEq(src, 30) != 1 || scanEq(src, 31) != 0 || scanEq(nil, 5) != 0 {
		t.Error("scanEq wrong")
	}
}

// Property: eqbit agrees with == everywhere.
func TestEqbitProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		want := uint32(0)
		if x == y {
			want = 1
		}
		return eqbit(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
