// Package kernels implements FESIA's specialized segment-intersection kernels
// (Sections V and VI of the paper) on the emulated vector ISA from
// internal/simd.
//
// A kernel is a small function block that intersects two tiny sorted sets
// whose sizes are known (exactly, or as a rounded-up nominal size). Kernels
// are generated ahead of time by cmd/genkernels — the analogue of the paper's
// precompiled kernel library — and dispatched through a flat jump table
// indexed by the control code of Listing 2:
//
//	ctrl = Sa << bits | Sb
//
// Five tables are generated:
//
//	TableSSE        exact kernels, sizes 0..7   (V = 4,  64 entries)
//	TableAVX        exact kernels, sizes 0..15  (V = 8,  256 entries)
//	TableAVX512     exact kernels, sizes 0..31  (V = 16, 1024 entries)
//	TableAVX512S4   stride-4 sampled kernels (Section VI, Table II)
//	TableAVX512S8   stride-8 sampled kernels
//
// Sizes beyond a table's capacity fall through to the scalar generic kernel,
// mirroring the paper's "default: GeneralIntersection()" switch arm.
package kernels

import (
	"fmt"

	"fesia/internal/simd"
)

// CountFunc counts the intersection of two small sorted sets.
type CountFunc func(a, b []uint32) int

// IntersectFunc writes the common elements of two small sorted sets into dst
// and returns how many were written. dst must have room for
// min(len(a), len(b)) elements. Output is in ascending order.
type IntersectFunc func(dst, a, b []uint32) int

// kernelEntry describes one generated kernel for table registration.
type kernelEntry struct {
	sa, sb int
	count  CountFunc
	inter  IntersectFunc
	bytes  int // modelled machine-code size (see cmd/genkernels cost model)
	alias  bool
}

// Table is a jump table of specialized kernels for one ISA width and one
// sampling stride. The zero Table is not usable; tables are built by the
// generated init functions.
type Table struct {
	width  simd.Width
	stride int
	cap    int // maximum true segment size handled (inclusive)
	bits   uint
	round  []uint8 // round[s] = nominal kernel size for true size s
	count  []CountFunc
	inter  []IntersectFunc
	bytes  []int

	numKernels int // real bodies, excluding swap aliases
	codeSize   int // modelled bytes across all entries
}

// Width returns the emulated ISA width the table was generated for.
func (t *Table) Width() simd.Width { return t.width }

// Stride returns the kernel sampling stride (1 = every size pair).
func (t *Table) Stride() int { return t.stride }

// Cap returns the largest true segment size the table handles before falling
// back to the generic kernel.
func (t *Table) Cap() int { return t.cap }

// NumKernels returns the number of distinct kernel bodies (swap aliases,
// which are single jumps, are excluded).
func (t *Table) NumKernels() int { return t.numKernels }

// CodeSize returns the modelled machine-code footprint of the kernel library
// in bytes. See DESIGN.md: this stands in for the paper's Table II "code
// size" column.
func (t *Table) CodeSize() int { return t.codeSize }

// KernelBytes returns the modelled code size of the kernel that true sizes
// (sa, sb) dispatch to, and the nominal control code. It reports ok=false
// when the pair falls through to the generic kernel.
func (t *Table) KernelBytes(sa, sb int) (bytes, ctrl int, ok bool) {
	if sa > t.cap || sb > t.cap {
		return 0, 0, false
	}
	ctrl = int(t.round[sa])<<t.bits | int(t.round[sb])
	return t.bytes[ctrl], ctrl, true
}

// Count returns |a ∩ b| via the specialized kernel for the two sizes, or the
// generic kernel when either exceeds the table capacity.
func (t *Table) Count(a, b []uint32) int {
	sa, sb := len(a), len(b)
	if sa > t.cap || sb > t.cap {
		return GenericCount(a, b)
	}
	return t.count[int(t.round[sa])<<t.bits|int(t.round[sb])](a, b)
}

// Intersect writes a ∩ b into dst (ascending) and returns the count, using
// the specialized kernel for the two sizes. dst needs room for
// min(len(a), len(b)) elements.
func (t *Table) Intersect(dst, a, b []uint32) int {
	sa, sb := len(a), len(b)
	if sa > t.cap || sb > t.cap {
		return GenericIntersect(dst, a, b)
	}
	return t.inter[int(t.round[sa])<<t.bits|int(t.round[sb])](dst, a, b)
}

// Visit streams a ∩ b (ascending) through emit instead of materializing a
// result slice — the sink end of the allocation-free query path. Pairs inside
// the table capacity run the specialized materializing kernel into the
// caller-owned scratch buffer (which needs room for min(len(a), len(b))
// elements) and replay it element-wise; larger pairs stream directly from the
// generic two-pointer merge without touching scratch.
func (t *Table) Visit(scratch, a, b []uint32, emit func(uint32)) {
	sa, sb := len(a), len(b)
	if sa > t.cap || sb > t.cap {
		GenericVisit(a, b, emit)
		return
	}
	n := t.inter[int(t.round[sa])<<t.bits|int(t.round[sb])](scratch, a, b)
	for _, v := range scratch[:n] {
		emit(v)
	}
}

// build populates the table from generated kernel entries. It is called from
// generated init functions.
func (t *Table) build(width simd.Width, capSize, stride int, entries []kernelEntry) {
	t.width = width
	t.cap = capSize
	t.stride = stride

	maxNominal := 0
	for _, e := range entries {
		if e.sa > maxNominal {
			maxNominal = e.sa
		}
		if e.sb > maxNominal {
			maxNominal = e.sb
		}
	}
	t.bits = 0
	for 1<<t.bits <= maxNominal {
		t.bits++
	}

	size := (maxNominal<<t.bits | maxNominal) + 1
	t.count = make([]CountFunc, size)
	t.inter = make([]IntersectFunc, size)
	t.bytes = make([]int, size)
	for _, e := range entries {
		ctrl := e.sa<<t.bits | e.sb
		t.count[ctrl] = e.count
		t.inter[ctrl] = e.inter
		t.bytes[ctrl] = e.bytes
		t.codeSize += e.bytes
		if !e.alias {
			t.numKernels++
		}
	}

	t.round = make([]uint8, capSize+1)
	for s := 0; s <= capSize; s++ {
		n := s
		if stride > 1 {
			n = (s + stride - 1) / stride * stride
		}
		t.round[s] = uint8(n)
		ctrl := n<<t.bits | n
		if t.count[ctrl] == nil {
			panic(fmt.Sprintf("kernels: table %v stride %d missing nominal size %d", width, stride, n))
		}
	}
}

// ForWidth returns the exact (stride-1) kernel table for an ISA width.
func ForWidth(w simd.Width) *Table {
	switch w {
	case simd.WidthSSE:
		return TableSSE
	case simd.WidthAVX:
		return TableAVX
	case simd.WidthAVX512:
		return TableAVX512
	default:
		panic(fmt.Sprintf("kernels: unsupported width %d", w))
	}
}

// ForStride returns the AVX512 table with the given kernel sampling stride
// (1, 4 or 8), reproducing the three configurations of Table II.
func ForStride(stride int) *Table {
	switch stride {
	case 1:
		return TableAVX512
	case 4:
		return TableAVX512S4
	case 8:
		return TableAVX512S8
	default:
		panic(fmt.Sprintf("kernels: no AVX512 table generated for stride %d", stride))
	}
}

// Tables returns every generated table, for exhaustive testing.
func Tables() []*Table {
	return []*Table{TableSSE, TableAVX, TableAVX512, TableAVX512S4, TableAVX512S8}
}

// Dispatcher exposes the raw jump table for hot loops that cannot afford a
// call through Table.Count per segment pair (the bitmap word loop in
// internal/core dispatches millions of times per intersection). Callers are
// responsible for routing sizes above Cap to GenericCount/GenericIntersect.
type Dispatcher struct {
	Count []CountFunc
	Inter []IntersectFunc
	Round []uint8
	Bits  uint
	Cap   int
}

// Dispatcher returns the raw dispatch components of the table.
func (t *Table) Dispatcher() Dispatcher {
	return Dispatcher{
		Count: t.count,
		Inter: t.inter,
		Round: t.round,
		Bits:  t.bits,
		Cap:   t.cap,
	}
}

// ---------------------------------------------------------------------------
// Helpers shared by generated kernels.
// ---------------------------------------------------------------------------

// eqbit returns 1 when x == y and 0 otherwise, without a branch: for
// d = x^y != 0, d|-d has its sign bit set, so the arithmetic shift produces
// all-ones, whose complement's low bit is 0. This is the one-op-per-
// comparison currency every intersection method in this repository uses
// (see the kernelgen package comment).
func eqbit(x, y uint32) uint32 {
	d := x ^ y
	return ^uint32(int32(d|-d)>>31) & 1
}

// scanEq reports (as 0/1) whether x occurs in a, comparing against every
// element branch-free. Strided (sampled) kernels use it for their
// bounds-safe sweep over the smaller side, whose true size is only known at
// run time (Section VI).
func scanEq(a []uint32, x uint32) uint32 {
	var acc uint32
	for _, v := range a {
		acc |= eqbit(v, x)
	}
	return acc
}

// zeroCount is the shared 0-by-anything kernel.
func zeroCount(_, _ []uint32) int { return 0 }

// zeroIntersect is the shared 0-by-anything materializing kernel.
func zeroIntersect(_, _, _ []uint32) int { return 0 }

// ---------------------------------------------------------------------------
// Generic fallback (the paper's "default: GeneralIntersection()" arm).
// ---------------------------------------------------------------------------

// GenericCount counts |a ∩ b| for sorted sets of any size with a scalar
// two-pointer merge.
func GenericCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av < bv {
			i++
		} else if av > bv {
			j++
		} else {
			i++
			j++
			n++
		}
	}
	return n
}

// GenericIntersect merges a ∩ b into dst (ascending) for sets of any size.
func GenericIntersect(dst, a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av < bv {
			i++
		} else if av > bv {
			j++
		} else {
			dst[n] = av
			n++
			i++
			j++
		}
	}
	return n
}

// GenericVisit streams a ∩ b (ascending) through emit with a scalar
// two-pointer merge, no destination buffer required.
func GenericVisit(a, b []uint32, emit func(uint32)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av < bv {
			i++
		} else if av > bv {
			j++
		} else {
			emit(av)
			i++
			j++
		}
	}
}

// ---------------------------------------------------------------------------
// General (non-specialized) kernels — the left-hand side of Fig. 2. These are
// the baselines for Figures 4-6: a general V-by-V kernel pads both inputs up
// to multiples of V and performs the complete all-pairs block comparison that
// a specialized kernel would avoid.
// ---------------------------------------------------------------------------

// GeneralCount runs the general (padded, all-pairs) kernel at the given
// width. It produces the same result as GenericCount but performs the
// padded comparison stream of Fig. 2's left-hand side: both inputs are
// rounded up to whole registers of V lanes (short blocks repeat their last
// element) and every block pair undergoes the complete V-by-V comparison.
// Like the specialized kernels, each element comparison costs one branchless
// op, so the specialized/general ratio reflects the comparison counts.
func GeneralCount(w simd.Width, a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	v := w.Lanes()
	if !w.Valid() {
		panic("kernels: unsupported width")
	}
	n := 0
	for jb := 0; jb < len(b); jb += v {
		bEnd := min(jb+v, len(b))
		for ia := 0; ia < len(a); ia += v {
			aEnd := min(ia+v, len(a))
			// Complete V-by-V block comparison, padded slots duplicating
			// the block's last element (matches are OR-idempotent, padded
			// b slots are discarded below).
			for j := jb; j < jb+v; j++ {
				jj := min(j, bEnd-1)
				x := b[jj]
				var acc uint32
				for i := ia; i < ia+v; i++ {
					acc |= eqbit(a[min(i, aEnd-1)], x)
				}
				if j < bEnd {
					n += int(acc)
				}
			}
		}
	}
	return n
}
