package kernels

import (
	"encoding/binary"
	"sort"
	"testing"

	"fesia/internal/simd"
)

// FuzzTableCount differentially tests every kernel table (all widths, all
// strides) against the scalar generic kernel on fuzzer-chosen segment
// contents and sizes, including the over-cap fallback boundary.
func FuzzTableCount(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 1, 2, 3, 4})
	f.Add([]byte{0})
	f.Add(make([]byte, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte splits the remainder into the two sets.
		cut := int(data[0])
		data = data[1:]
		if len(data) > 400 {
			data = data[:400]
		}
		if cut > len(data) {
			cut = len(data)
		}
		a := toSortedSet(data[:cut])
		b := toSortedSet(data[cut:])
		want := GenericCount(a, b)
		dst := make([]uint32, min(len(a), len(b))+1)
		wantDst := make([]uint32, min(len(a), len(b))+1)
		GenericIntersect(wantDst, a, b)
		// Each dispatch tier must agree: the patched jump-table wrappers
		// re-check the live switches, so forcing a tier exercises its
		// kernels (including forced-AVX2 on AVX-512 hardware).
		forEachTier(t, func(t *testing.T, _ string) {
			for _, tbl := range Tables() {
				if got := tbl.Count(a, b); got != want {
					t.Fatalf("%v stride %d Count = %d, want %d\na=%v\nb=%v",
						tbl.Width(), tbl.Stride(), got, want, a, b)
				}
				n := tbl.Intersect(dst, a, b)
				if n != want {
					t.Fatalf("%v stride %d Intersect = %d, want %d", tbl.Width(), tbl.Stride(), n, want)
				}
				for i, v := range dst[:n] {
					if v != wantDst[i] {
						t.Fatalf("%v stride %d Intersect elem %d = %d, want %d (ordered output)",
							tbl.Width(), tbl.Stride(), i, v, wantDst[i])
					}
				}
			}
		})
		// The general kernels must agree at every width too.
		for _, w := range []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512} {
			if got := GeneralCount(w, a, b); got != want {
				t.Fatalf("GeneralCount(%v) = %d, want %d", w, got, want)
			}
		}
	})
}

func toSortedSet(data []byte) []uint32 {
	var out []uint32
	for i := 0; i+1 < len(data); i += 2 {
		// Small universe: frequent collisions and matches.
		out = append(out, uint32(binary.LittleEndian.Uint16(data[i:]))%512)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}
