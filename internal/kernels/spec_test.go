package kernels

import (
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

// The emulated vector ISA in internal/simd serves as the executable
// specification of what the paper's kernels compute: broadcast one element,
// compare it against a register of the other set, OR the masks, movemask,
// popcount (Fig. 2). The generated scalar-currency kernels must agree with
// that vector-semantics reference bit for bit. These tests pin that
// equivalence for every size the vector model expresses directly.

// specCount4 is the Fig. 2 kernel over the Vec4 model: count elements of b
// (sb ≤ 4) matched by any element of a, via broadcast/compare/OR/movemask.
func specCount4(a, b []uint32) int {
	vb := simd.LoadPartial4(b, 0)
	var acc simd.Vec4
	for _, x := range a {
		acc = simd.Or4(acc, simd.CmpEq4(simd.Broadcast4(x), vb))
	}
	mask := simd.MoveMask4(acc)
	if len(b) < 4 {
		mask &= 1<<uint(len(b)) - 1 // discard pad lanes
	}
	return simd.Popcount32(mask)
}

func specCount8(a, b []uint32) int {
	vb := simd.LoadPartial8(b, 0)
	var acc simd.Vec8
	for _, x := range a {
		acc = simd.Or8(acc, simd.CmpEq8(simd.Broadcast8(x), vb))
	}
	mask := simd.MoveMask8(acc)
	if len(b) < 8 {
		mask &= 1<<uint(len(b)) - 1
	}
	return simd.Popcount32(mask)
}

func specCount16(a, b []uint32) int {
	vb := simd.LoadPartial16(b, 0)
	var acc simd.Vec16
	for _, x := range a {
		acc = simd.Or16(acc, simd.CmpEq16(simd.Broadcast16(x), vb))
	}
	mask := simd.MoveMask16(acc)
	if len(b) < 16 {
		mask &= 1<<uint(len(b)) - 1
	}
	return simd.Popcount32(mask)
}

// TestKernelsMatchVectorSpec cross-validates every in-register kernel
// (Sa, Sb ≤ V) against the vector-model reference at its own width.
func TestKernelsMatchVectorSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	specs := []struct {
		tbl  *Table
		spec func(a, b []uint32) int
	}{
		{TableSSE, specCount4},
		{TableAVX, specCount8},
		{TableAVX512, specCount16},
	}
	for _, s := range specs {
		v := s.tbl.Width().Lanes()
		for sa := 1; sa <= v; sa++ {
			for sb := 1; sb <= v; sb++ {
				for trial := 0; trial < 5; trial++ {
					a, b := overlappingPair(rng, sa, sb, rng.Intn(min(sa, sb)+1),
						uint32(4*(sa+sb)+8))
					want := s.spec(a, b)
					if got := s.tbl.Count(a, b); got != want {
						t.Fatalf("%v kernel %dx%d = %d, vector spec = %d\na=%v\nb=%v",
							s.tbl.Width(), sa, sb, got, want, a, b)
					}
				}
			}
		}
	}
}

// TestGeneralMatchesVectorSpec: the padded general kernel of Figures 4-6
// must agree with the vector model too (zero can be a real element; the
// spec's pad-lane masking and the general kernel's padded block comparison
// must both handle it).
func TestGeneralMatchesVectorSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 300; trial++ {
		sa := 1 + rng.Intn(8)
		sb := 1 + rng.Intn(8)
		a, b := overlappingPair(rng, sa, sb, rng.Intn(min(sa, sb)+1), 24)
		want := specCount8(a, b)
		if got := GeneralCount(simd.WidthAVX, a, b); got != want {
			t.Fatalf("GeneralCount %dx%d = %d, spec = %d\na=%v\nb=%v", sa, sb, got, want, a, b)
		}
	}
}
