package kernels

import (
	"math/rand"
	"slices"
	"testing"
)

// TestVisitMatchesIntersect checks the streaming entry points against the
// materializing ones: Table.Visit must emit exactly what Table.Intersect
// writes, in the same order, across every table (width/stride) including the
// over-capacity generic fallback.
func TestVisitMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tbl := range Tables() {
		sizes := []int{0, 1, 2, tbl.Cap() / 2, tbl.Cap(), tbl.Cap() + 5}
		scratch := make([]uint32, tbl.Cap())
		for _, sa := range sizes {
			for _, sb := range sizes {
				a, b := overlappingPair(rng, sa, sb, min(sa, sb)/2, 1<<10)
				dst := make([]uint32, min(sa, sb)+1)
				n := tbl.Intersect(dst, a, b)
				var got []uint32
				tbl.Visit(scratch, a, b, func(v uint32) { got = append(got, v) })
				if !slices.Equal(got, dst[:n]) {
					t.Fatalf("%s Visit(%dx%d) emitted %v, Intersect wrote %v",
						tbl.Width(), sa, sb, got, dst[:n])
				}
			}
		}
	}
}

// TestGenericVisit checks the streaming scalar merge against GenericIntersect.
func TestGenericVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randomSortedSet(rng, rng.Intn(100), 1<<9)
		b := randomSortedSet(rng, rng.Intn(100), 1<<9)
		want := make([]uint32, min(len(a), len(b)))
		n := GenericIntersect(want, a, b)
		var got []uint32
		GenericVisit(a, b, func(v uint32) { got = append(got, v) })
		if !slices.Equal(got, want[:n]) {
			t.Fatalf("trial %d: GenericVisit emitted %v, want %v", trial, got, want[:n])
		}
	}
}
