package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

var benchSink int

func benchPairs(sa, sb, count int) (as, bs [][]uint32) {
	rng := rand.New(rand.NewSource(int64(sa*100 + sb)))
	as = make([][]uint32, count)
	bs = make([][]uint32, count)
	for i := range as {
		as[i], bs[i] = overlappingPair(rng, sa, sb, min(sa, sb)/2, uint32(8*(sa+sb+2)))
	}
	return as, bs
}

// BenchmarkDispatch measures the full Table.Count path (round, ctrl
// computation, indirect call, kernel) on the segment-size mix the bitmap
// filter typically produces.
func BenchmarkDispatch(b *testing.B) {
	for _, tbl := range []*Table{TableSSE, TableAVX, TableAVX512, TableAVX512S4} {
		name := tbl.Width().String()
		if tbl.Stride() > 1 {
			name = fmt.Sprintf("%s-s%d", name, tbl.Stride())
		}
		as, bs := benchPairs(2, 3, 256)
		b.Run(name+"/2x3", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += tbl.Count(as[i%256], bs[i%256])
			}
		})
	}
}

// BenchmarkKernelSizes covers the three structural kernel shapes.
func BenchmarkKernelSizes(b *testing.B) {
	tbl := TableAVX
	for _, sz := range []struct{ sa, sb int }{{1, 1}, {4, 8}, {4, 15}, {12, 14}} {
		as, bs := benchPairs(sz.sa, sz.sb, 256)
		b.Run(fmt.Sprintf("%dx%d", sz.sa, sz.sb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += tbl.Count(as[i%256], bs[i%256])
			}
		})
	}
}

func BenchmarkGeneralVsSpecialized2x3(b *testing.B) {
	as, bs := benchPairs(2, 3, 256)
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += GeneralCount(simd.WidthAVX, as[i%256], bs[i%256])
		}
	})
	b.Run("specialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += TableAVX.Count(as[i%256], bs[i%256])
		}
	})
}

func BenchmarkGenericFallback(b *testing.B) {
	as, bs := benchPairs(40, 45, 64)
	for i := 0; i < b.N; i++ {
		benchSink += TableAVX.Count(as[i%64], bs[i%64]) // over cap -> generic
	}
}

func BenchmarkIntersectMaterialize(b *testing.B) {
	as, bs := benchPairs(6, 7, 256)
	dst := make([]uint32, 8)
	for i := 0; i < b.N; i++ {
		benchSink += TableAVX.Intersect(dst, as[i%256], bs[i%256])
	}
}
