package kernels

import (
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

// randSmall builds a sorted duplicate-free set of length n from a small span,
// so intersections are non-trivial.
func randSmall(rng *rand.Rand, n int, span uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := rng.Uint32() % span
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// forEachTier runs f once per available dispatch tier with the ladder forced
// to exactly that rung — including forced-AVX2 on AVX-512 hardware —
// restoring the dispatch state afterwards.
func forEachTier(t *testing.T, f func(t *testing.T, tier string)) {
	run := func(tier string, asm, avx512 bool) {
		t.Run(tier, func(t *testing.T) {
			prevAsm := simd.SetAsmEnabled(asm)
			prevAvx512 := simd.SetAvx512Enabled(avx512)
			defer func() {
				simd.SetAsmEnabled(prevAsm)
				simd.SetAvx512Enabled(prevAvx512)
			}()
			f(t, tier)
		})
	}
	run("scalar", false, false)
	if simd.HasAsm() {
		run("avx2", true, false)
	}
	if simd.HasAVX512() {
		run("avx512", true, true)
	}
}

// TestAsmKernelsParity drives every table's Count through the patched jump
// table and compares with the original generated kernels across all size
// pairs the patch covers (plus a margin beyond, to check fall-through).
func TestAsmKernelsParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	prevPatch := UseAsmKernels(true)
	prevAsm := simd.SetAsmEnabled(true)
	defer func() {
		simd.SetAsmEnabled(prevAsm)
		UseAsmKernels(prevPatch)
	}()

	rng := rand.New(rand.NewSource(11))
	for _, tab := range Tables() {
		limit := tab.Cap()
		if limit > 12 {
			limit = 12
		}
		for sa := 0; sa <= limit; sa++ {
			for sb := 0; sb <= limit; sb++ {
				for trial := 0; trial < 20; trial++ {
					span := uint32(4 + rng.Intn(28))
					if int(span) < sa || int(span) < sb {
						span = uint32(max(sa, sb) + 1)
					}
					a := randSmall(rng, sa, span)
					b := randSmall(rng, sb, span)
					got := tab.Count(a, b)
					want := GenericCount(a, b)
					if got != want {
						t.Fatalf("table(w=%v stride=%d) sa=%d sb=%d a=%v b=%v: patched=%d want=%d",
							tab.Width(), tab.Stride(), sa, sb, a, b, got, want)
					}
				}
			}
		}
	}
}

// TestAsmKernelsInterParity drives every table's Intersect through the
// patched jump table on every tier: count AND emitted elements (ordered)
// must match the generic merge across the full patch domain (sizes to 16,
// the AVX-512 register) plus a margin beyond for fall-through. On the
// scalar and avx2 tiers the wrappers must route back to the generated
// bodies bit-identically — the fallback half of the acceptance criteria.
func TestAsmKernelsInterParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	prevPatch := UseAsmKernels(true)
	defer UseAsmKernels(prevPatch)

	forEachTier(t, func(t *testing.T, tier string) {
		rng := rand.New(rand.NewSource(13))
		for _, tab := range Tables() {
			limit := tab.Cap()
			if limit > 18 {
				limit = 18
			}
			for sa := 0; sa <= limit; sa++ {
				for sb := 0; sb <= limit; sb++ {
					for trial := 0; trial < 4; trial++ {
						span := uint32(sa + sb + 4 + rng.Intn(28))
						a := randSmall(rng, sa, span)
						b := randSmall(rng, sb, span)
						dst := make([]uint32, min(sa, sb)+1)
						want := make([]uint32, min(sa, sb)+1)
						got := tab.Intersect(dst, a, b)
						wn := GenericIntersect(want, a, b)
						if got != wn {
							t.Fatalf("tier=%s table(w=%v stride=%d) sa=%d sb=%d a=%v b=%v: patched=%d want=%d",
								tier, tab.Width(), tab.Stride(), sa, sb, a, b, got, wn)
						}
						for i := 0; i < wn; i++ {
							if dst[i] != want[i] {
								t.Fatalf("tier=%s table(w=%v stride=%d) sa=%d sb=%d elem %d: got=%d want=%d",
									tier, tab.Width(), tab.Stride(), sa, sb, i, dst[i], want[i])
							}
						}
					}
				}
			}
		}
	})
}

// TestUseAsmKernelsRestores checks that disabling the patch restores the
// original function values and that toggling is idempotent.
func TestUseAsmKernelsRestores(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	prev := UseAsmKernels(true)
	defer UseAsmKernels(prev)
	if !AsmKernelsActive() {
		t.Fatal("UseAsmKernels(true) did not activate")
	}
	UseAsmKernels(false)
	if AsmKernelsActive() {
		t.Fatal("UseAsmKernels(false) did not deactivate")
	}
	// After restore the tables still count correctly.
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 9}
	for _, tab := range Tables() {
		if got := tab.Count(a, b); got != 2 {
			t.Fatalf("restored table(w=%v stride=%d).Count = %d, want 2", tab.Width(), tab.Stride(), got)
		}
	}
	// Double-enable / double-disable are no-ops.
	UseAsmKernels(false)
	UseAsmKernels(true)
	UseAsmKernels(true)
	for _, tab := range Tables() {
		if got := tab.Count(a, b); got != 2 {
			t.Fatalf("re-patched table(w=%v stride=%d).Count = %d, want 2", tab.Width(), tab.Stride(), got)
		}
	}
}

// TestPatchedTablesFallBackWhenAsmOff checks the wrapper honors
// simd.SetAsmEnabled(false) by routing back to the generated kernels.
func TestPatchedTablesFallBackWhenAsmOff(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	prevPatch := UseAsmKernels(true)
	prevAsm := simd.SetAsmEnabled(false)
	defer func() {
		simd.SetAsmEnabled(prevAsm)
		UseAsmKernels(prevPatch)
	}()
	a := []uint32{2, 4, 6}
	b := []uint32{1, 4, 6, 8}
	for _, tab := range Tables() {
		if got := tab.Count(a, b); got != 2 {
			t.Fatalf("asm-off table(w=%v stride=%d).Count = %d, want 2", tab.Width(), tab.Stride(), got)
		}
	}
}
