package kernelgen

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("Specs() = %d entries, want 5", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.FileName] {
			t.Errorf("duplicate output file %s", s.FileName)
		}
		seen[s.FileName] = true
		if s.Cap < 2*s.ISA.V-1 {
			t.Errorf("%s: cap %d below 2V-1=%d", s.FileName, s.Cap, 2*s.ISA.V-1)
		}
	}
}

// TestGenerateParses ensures every spec generates syntactically valid Go.
func TestGenerateParses(t *testing.T) {
	for _, s := range Specs() {
		src, err := Generate(s)
		if err != nil {
			t.Fatalf("Generate(%s): %v", s.FileName, err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, s.FileName, src, 0); err != nil {
			t.Errorf("generated %s does not parse: %v", s.FileName, err)
		}
	}
}

// TestGeneratedFilesCurrent verifies the checked-in zz_gen_*.go files match
// what the generator produces today, so the generator and the library cannot
// drift apart silently.
func TestGeneratedFilesCurrent(t *testing.T) {
	for _, s := range Specs() {
		want, err := Generate(s)
		if err != nil {
			t.Fatalf("Generate(%s): %v", s.FileName, err)
		}
		got, err := os.ReadFile(filepath.Join("..", s.FileName))
		if err != nil {
			t.Fatalf("reading checked-in %s: %v (run `go run ./cmd/genkernels`)", s.FileName, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s is stale; run `go run ./cmd/genkernels`", s.FileName)
		}
	}
}

// TestStrideSampling checks the sampled size ladders of Section VI.
func TestStrideSampling(t *testing.T) {
	g := &gen{isa: AVX512, stride: 4}
	sizes := g.nominalSizes(Spec{ISA: AVX512, Cap: 31, Stride: 4})
	want := []int{0, 4, 8, 12, 16, 20, 24, 28, 32}
	if len(sizes) != len(want) {
		t.Fatalf("stride-4 sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("stride-4 sizes = %v, want %v", sizes, want)
		}
	}
	g8 := &gen{isa: AVX512, stride: 8}
	sizes8 := g8.nominalSizes(Spec{ISA: AVX512, Cap: 31, Stride: 8})
	if len(sizes8) != 5 || sizes8[4] != 32 {
		t.Fatalf("stride-8 sizes = %v", sizes8)
	}
}

// TestKernelShapeSelection pins the generated kernel shapes against the
// paper's Section V-C structure: small-by-small kernels are fully unrolled
// with the smaller set held in locals; small-by-large kernels hoist the
// locals and stream the larger set (Fig. 3 left, register reuse); 6x6
// decomposes into 4x4 plus a runtime-selected remainder (Fig. 3 right);
// swapped sizes delegate to their mirror kernel.
func TestKernelShapeSelection(t *testing.T) {
	src, err := Generate(Specs()[0]) // SSE
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	k2x3 := extractFunc(t, text, "func cSSE_2x3")
	if !strings.Contains(k2x3, "a0 := a[0]") || !strings.Contains(k2x3, "eqbit(a0, b[2]) | eqbit(a1, b[2])") {
		t.Errorf("2x3 should be a fully unrolled all-pairs kernel:\n%s", k2x3)
	}
	if strings.Contains(k2x3, "for ") {
		t.Errorf("2x3 must be straight-line (no loops):\n%s", k2x3)
	}
	k2x7 := extractFunc(t, text, "func cSSE_2x7")
	if !strings.Contains(k2x7, "a1 := a[1]") || !strings.Contains(k2x7, "for _, x := range b") {
		t.Errorf("2x7 should hoist A's elements and stream B:\n%s", k2x7)
	}
	k6x6 := extractFunc(t, text, "func cSSE_6x6")
	if !strings.Contains(k6x6, "cSSE_4x4(a, b)") ||
		!strings.Contains(k6x6, "if a[3] <= b[3]") ||
		!strings.Contains(k6x6, "cSSE_2x6(a[4:], b)") ||
		!strings.Contains(k6x6, "cSSE_2x6(b[4:], a)") {
		t.Errorf("6x6 should decompose per Fig. 3 right:\n%s", k6x6)
	}
	// Swap aliases delegate with arguments exchanged.
	k7x2 := extractFunc(t, text, "func cSSE_7x2")
	if !strings.Contains(k7x2, "cSSE_2x7(b, a)") {
		t.Errorf("7x2 should delegate to 2x7 swapped:\n%s", k7x2)
	}
	// Strided kernels are guard-unrolled over the nominal larger side.
	s4, err := Generate(Specs()[3])
	if err != nil {
		t.Fatal(err)
	}
	k8x16 := extractFunc(t, string(s4), "func cA512s4_8x16")
	if !strings.Contains(k8x16, "if nb > 15 {") || !strings.Contains(k8x16, "scanEq(a, b[15])") {
		t.Errorf("strided 8x16 should guard-unroll 16 nominal positions:\n%s", k8x16)
	}
}

func extractFunc(t *testing.T, src, header string) string {
	t.Helper()
	i := strings.Index(src, header)
	if i < 0 {
		t.Fatalf("missing %q in generated source", header)
	}
	j := strings.Index(src[i:], "\n}\n")
	if j < 0 {
		t.Fatalf("unterminated %q", header)
	}
	return src[i : i+j]
}
