package testutil

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestShortReader(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 100)
	got, err := io.ReadAll(&ShortReader{R: bytes.NewReader(src), N: 37})
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 37 {
		t.Fatalf("ShortReader delivered %d bytes, want 37", len(got))
	}
}

func TestFlakyReader(t *testing.T) {
	src := bytes.Repeat([]byte{9}, 100)
	r := &FlakyReader{R: bytes.NewReader(src), FailAt: 37}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(got) != 37 {
		t.Fatalf("FlakyReader delivered %d bytes before failing, want 37", len(got))
	}
}

func TestFailingWriter(t *testing.T) {
	var sink bytes.Buffer
	w := &FailingWriter{W: &sink, FailAt: 10}
	if n, err := w.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	if n, err := w.Write([]byte("world!!")); n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("overflowing write = %d, %v; want 5, ErrInjected", n, err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write err = %v, want ErrInjected", err)
	}
	if sink.String() != "helloworld" {
		t.Fatalf("sink holds %q, want the first 10 bytes", sink.String())
	}
}

func TestForEachTruncation(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	var lens []int
	ForEachTruncation(data, func(n int, trunc []byte) {
		if len(trunc) != n {
			t.Fatalf("prefix %d has length %d", n, len(trunc))
		}
		if cap(trunc) != n {
			t.Fatalf("prefix %d leaks capacity %d", n, cap(trunc))
		}
		lens = append(lens, n)
	})
	if len(lens) != len(data) {
		t.Fatalf("visited %d prefixes, want %d", len(lens), len(data))
	}
}

func TestForEachByteFlip(t *testing.T) {
	data := []byte{0x00, 0xFF, 0x5A}
	seen := 0
	ForEachByteFlip(data, func(pos int, c []byte) {
		if bytes.Equal(c, data) {
			t.Fatalf("flip at %d produced identical data", pos)
		}
		if c[pos] != data[pos]^0xFF {
			t.Fatalf("flip at %d: got %#x, want %#x", pos, c[pos], data[pos]^0xFF)
		}
		for i := range data {
			if i != pos && c[i] != data[i] {
				t.Fatalf("flip at %d disturbed byte %d", pos, i)
			}
		}
		seen++
	})
	if seen != len(data) {
		t.Fatalf("visited %d flips, want %d", seen, len(data))
	}
}

func TestForEachBitFlip(t *testing.T) {
	data := []byte{0xA5, 0x3C}
	seen := 0
	ForEachBitFlip(data, func(bytePos, bit int, c []byte) {
		if c[bytePos] != data[bytePos]^(1<<bit) {
			t.Fatalf("bit flip (%d,%d) wrong", bytePos, bit)
		}
		seen++
	})
	if seen != 8*len(data) {
		t.Fatalf("visited %d flips, want %d", seen, 8*len(data))
	}
}
