// Package testutil provides fault-injection I/O fakes and corruption drivers
// for exercising the durability layer: short reads, mid-stream failures,
// truncate-at-every-offset, and flip-every-byte sweeps. Snapshot readers are
// expected to turn every injected fault into an error — never a panic, hang,
// or silently wrong result.
package testutil

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// ErrInjected is the sentinel error produced by the failing fakes, so tests
// can tell an injected fault apart from a genuine bug via errors.Is.
var ErrInjected = errors.New("testutil: injected fault")

// ShortReader delivers at most N bytes from R, then reports io.EOF. It models
// a snapshot whose tail was lost (a crashed copy, a partial download).
type ShortReader struct {
	R io.Reader
	N int
}

func (s *ShortReader) Read(p []byte) (int, error) {
	if s.N <= 0 {
		return 0, io.EOF
	}
	if len(p) > s.N {
		p = p[:s.N]
	}
	n, err := s.R.Read(p)
	s.N -= n
	return n, err
}

// FlakyReader delivers FailAt bytes from R, then fails every subsequent read
// with ErrInjected. It models a medium that dies mid-stream (NFS timeout,
// yanked disk) rather than ending cleanly.
type FlakyReader struct {
	R      io.Reader
	FailAt int
}

func (f *FlakyReader) Read(p []byte) (int, error) {
	if f.FailAt <= 0 {
		return 0, ErrInjected
	}
	if len(p) > f.FailAt {
		p = p[:f.FailAt]
	}
	n, err := f.R.Read(p)
	f.FailAt -= n
	return n, err
}

// FailingWriter accepts FailAt bytes (forwarding them to W when W is non-nil),
// then fails with ErrInjected. It models a full disk or a dropped connection
// during snapshot writing.
type FailingWriter struct {
	W      io.Writer
	FailAt int
}

func (w *FailingWriter) Write(p []byte) (int, error) {
	if w.FailAt <= 0 {
		return 0, ErrInjected
	}
	take := len(p)
	if take > w.FailAt {
		take = w.FailAt
	}
	if w.W != nil {
		if n, err := w.W.Write(p[:take]); err != nil {
			w.FailAt -= n
			return n, err
		}
	}
	w.FailAt -= take
	if take < len(p) {
		return take, ErrInjected
	}
	return take, nil
}

// ForEachTruncation invokes fn with every strict prefix of data, including the
// empty prefix. The slice passed to fn has full capacity clipped so appends in
// the code under test cannot see the suffix.
func ForEachTruncation(data []byte, fn func(n int, truncated []byte)) {
	for n := 0; n < len(data); n++ {
		fn(n, data[:n:n])
	}
}

// ForEachByteFlip invokes fn once per byte of data with a copy in which that
// byte has been inverted. The copy is reused across calls; fn must not retain
// it.
func ForEachByteFlip(data []byte, fn func(pos int, corrupted []byte)) {
	c := make([]byte, len(data))
	for i := range data {
		copy(c, data)
		c[i] ^= 0xFF
		fn(i, c)
	}
}

// ForEachReadFault drives fn once per injected read fault over data: for
// every sampled offset n it presents both a stream that ends cleanly after n
// bytes (lost tail) and one that errors mid-read after n bytes (dying
// medium). stride samples every stride-th offset (minimum 1) so long streams
// stay affordable; offset 0 and the final byte are always covered. desc
// names the fault for test failure messages. Readers that survive every
// fault with an error — old state intact — are what the hot-swap chaos tests
// pin down.
func ForEachReadFault(data []byte, stride int, fn func(desc string, r io.Reader)) {
	if stride < 1 {
		stride = 1
	}
	for n := 0; n < len(data); n += stride {
		fn(fmt.Sprintf("eof@%d", n), &ShortReader{R: bytes.NewReader(data), N: n})
		fn(fmt.Sprintf("err@%d", n), &FlakyReader{R: bytes.NewReader(data), FailAt: n})
	}
	if last := len(data) - 1; last > 0 && last%stride != 0 {
		fn(fmt.Sprintf("eof@%d", last), &ShortReader{R: bytes.NewReader(data), N: last})
		fn(fmt.Sprintf("err@%d", last), &FlakyReader{R: bytes.NewReader(data), FailAt: last})
	}
}

// ForEachBitFlip is the finer-grained sibling of ForEachByteFlip: it invokes
// fn once per bit of data with that single bit toggled. Use it on short
// streams (8x the iterations of the byte sweep).
func ForEachBitFlip(data []byte, fn func(bytePos, bit int, corrupted []byte)) {
	c := make([]byte, len(data))
	for i := range data {
		for b := 0; b < 8; b++ {
			copy(c, data)
			c[i] ^= 1 << b
			fn(i, b, c)
		}
	}
}
