package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{63, 64}, {64, 64}, {65, 128},
		{1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21},
		{1 << 62, 1 << 62}, {1<<62 + 1, 1 << 63}, {1 << 63, 1 << 63},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for v > 2^63")
		}
	}()
	NextPow2(1<<63 + 1)
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 8, 1 << 20, 1 << 63} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 5, 6, 7, 1<<20 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

// Property: NextPow2 returns a power of two >= v, and the previous power of
// two (if any) is < v.
func TestNextPow2Property(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<63 - 1 // stay in-range
		p := NextPow2(v)
		if !IsPow2(p) || p < v {
			return false
		}
		return p == 1 || p/2 < v || v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	h1 := New(7)
	h2 := New(7)
	h3 := New(8)
	same, diff := 0, 0
	for x := uint32(0); x < 1000; x++ {
		if h1.Hash(x) != h2.Hash(x) {
			t.Fatalf("same-seed hashers disagree at %d", x)
		}
		if h1.Hash(x) == h3.Hash(x) {
			same++
		} else {
			diff++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide on %d/1000 inputs", same)
	}
}

// Nesting property (Section III-C): for power-of-two m2 | m1,
// Pos(x, m2) == Pos(x, m1) mod m2.
func TestPosNesting(t *testing.T) {
	h := New(99)
	f := func(x uint32, e1, e2 uint8) bool {
		l1 := uint(e1%30) + 1
		l2 := uint(e2) % (l1 + 1)
		m1 := uint64(1) << l1
		m2 := uint64(1) << l2
		return h.Pos(x, m2) == h.Pos(x, m1)%m2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Uniformity: chi-squared over 256 buckets for sequential keys must be sane.
// Sequential keys are the adversarial case for weak hashes and the common
// case for graph vertex IDs.
func TestHashUniformity(t *testing.T) {
	const buckets = 256
	const n = 1 << 16
	h := New(12345)
	var counts [buckets]int
	for x := uint32(0); x < n; x++ {
		counts[h.Pos(x, buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ~22.6. Allow 6 sigma.
	if chi2 > 255+6*math.Sqrt(2*255) {
		t.Errorf("chi-squared = %.1f, too high for uniform hash", chi2)
	}
}

// Avalanche sanity: flipping one input bit flips roughly half the output bits.
func TestHashAvalanche(t *testing.T) {
	h := New(1)
	total, flips := 0, 0
	for x := uint32(0); x < 512; x++ {
		base := h.Hash(x)
		for b := uint(0); b < 32; b++ {
			d := base ^ h.Hash(x^(1<<b))
			flips += popcount64(d)
			total += 64
		}
	}
	ratio := float64(flips) / float64(total)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("avalanche ratio = %.3f, want ~0.5", ratio)
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
