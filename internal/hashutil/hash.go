// Package hashutil provides the universal hash family FESIA uses to map set
// elements into bitmap positions (Section III-B).
//
// Two properties matter to the data structure:
//
//  1. Uniformity: the false-positive analysis in Proposition 1 assumes the
//     hash distributes elements uniformly over the m bitmap bits, so that
//     E[false positives] ≈ n(n-1)/2m.
//  2. Nesting: bitmap sizes are rounded to powers of two, and when two sets
//     have bitmaps of sizes m1 > m2 (m2 | m1), segment i of the larger set
//     is compared with segment i mod (m2/s) of the smaller (Section III-C).
//     That scheme is only correct when the position in a small bitmap is the
//     low-bit truncation of the position in a large one:
//     h(x) mod m2 == (h(x) mod m1) mod m2.
//
// Both hold when positions are taken as the low log2(m) bits of a single
// strong 64-bit mix of the element. We use the splitmix64 finalizer, a
// well-studied mixing permutation with full avalanche, salted by a seed so
// tests can exercise independent hash functions.
package hashutil

// Hasher maps 32-bit set elements to 64-bit hash values. Bitmap positions are
// taken as the low bits of the returned value, so nested power-of-two bitmap
// sizes stay mutually consistent.
type Hasher struct {
	seed uint64
}

// New returns a Hasher salted with seed. Two Hashers with the same seed are
// identical; sets that will be intersected against each other must be built
// with the same seed.
func New(seed uint64) Hasher { return Hasher{seed: seed} }

// Hash returns the full 64-bit mix of x.
func (h Hasher) Hash(x uint32) uint64 {
	z := uint64(x) + h.seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed returns the salt, so vectorized probe stages (internal/simd's gathered
// AVX-512 hash probe) can replicate the splitmix64 mix lane-wise. The asm
// routine must match Hash bit for bit; the parity fuzz tests assert it.
func (h Hasher) Seed() uint64 { return h.seed }

// Pos returns the bitmap position of x in a bitmap of m bits. m must be a
// power of two.
func (h Hasher) Pos(x uint32, m uint64) uint64 {
	return h.Hash(x) & (m - 1)
}

// NextPow2 returns the smallest power of two >= v, with a minimum of 1.
// It panics if v exceeds 2^63 (no representable power of two).
func NextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	if v > 1<<63 {
		panic("hashutil: NextPow2 overflow")
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	return v + 1
}

// IsPow2 reports whether v is a power of two (v > 0).
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }
