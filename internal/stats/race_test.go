package stats

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWritersAndReaders hammers one sink from many goroutines —
// each with its own single-writer shard, plus writers on the shared shard —
// while snapshots and prometheus renders run concurrently. Run under -race
// (make check) this proves the relaxed single-writer protocol and the shared
// atomic shard are data-race free, and the final snapshot proves no update
// was lost.
func TestConcurrentWritersAndReaders(t *testing.T) {
	k := New()
	const writers = 8
	const iters = 20_000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		s := k.NewShard()
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Inc(CtrQueriesMerge)
				s.Add(CtrSegPairs, 3)
				s.Kernel(i&7, (i>>3)&7)
				s.Observe(LatMerge, time.Duration(i)*time.Nanosecond)
			}
		}(s)
	}
	// Multi-writer shard from several goroutines at once.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k.Inc(CtrPoolDo)
				k.Inc(CtrPoolDoDone)
			}
		}()
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := k.Snapshot()
					_ = snap.PoolInFlight()
					_ = k.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	snap := k.Snapshot()
	if got, want := snap.Counter(CtrQueriesMerge), uint64(writers*iters); got != want {
		t.Errorf("QueriesMerge = %d, want %d (lost updates)", got, want)
	}
	if got, want := snap.Counter(CtrSegPairs), uint64(writers*iters*3); got != want {
		t.Errorf("SegPairs = %d, want %d", got, want)
	}
	if got, want := snap.Counter(CtrPoolDo), uint64(4*iters); got != want {
		t.Errorf("PoolDo = %d, want %d", got, want)
	}
	var kernelTotal uint64
	for _, kb := range snap.Kernels {
		kernelTotal += kb.Count
	}
	if want := uint64(writers * iters); kernelTotal != want {
		t.Errorf("kernel dispatches = %d, want %d", kernelTotal, want)
	}
	if got, want := snap.Latency(LatMerge).Count, uint64(writers*iters); got != want {
		t.Errorf("latency count = %d, want %d", got, want)
	}
}
