package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeMatrixSnapshotMergesSlots(t *testing.T) {
	m := NewServeMatrix(2, 3)
	// Shard 0: one part per slot; shard 1: parts on slot 0 only, one error.
	for slot := 0; slot < 3; slot++ {
		m.Enter(0, slot)
		m.ExitOK(0, slot, time.Duration(slot+1)*time.Millisecond)
	}
	m.Enter(1, 0)
	m.ExitErr(1, 0)
	m.Enter(1, 0) // left in flight

	rows := m.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("snapshot has %d rows, want 2", len(rows))
	}
	r0, r1 := rows[0], rows[1]
	if r0.Shard != 0 || r0.Queries != 3 || r0.Errors != 0 || r0.InFlight != 0 {
		t.Fatalf("shard 0 row mismatch: %+v", r0)
	}
	if r0.Latency.Count != 3 || r0.Latency.SumNanos != uint64(6*time.Millisecond) {
		t.Fatalf("shard 0 latency mismatch: %+v", r0.Latency)
	}
	if r1.Queries != 0 || r1.Errors != 1 || r1.InFlight != 1 {
		t.Fatalf("shard 1 row mismatch: %+v", r1)
	}
}

// TestServeMatrixConcurrentSingleWriters exercises the full (shard × slot)
// matrix under its intended contract — one goroutine per slot, each writing
// every shard's cell of its own column — with snapshot readers merging
// concurrently. Run under -race this validates the relaxed load/store
// discipline end to end.
func TestServeMatrixConcurrentSingleWriters(t *testing.T) {
	const (
		shards  = 4
		slots   = 8
		perSlot = 2000
	)
	m := NewServeMatrix(shards, slots)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Snapshot readers race the writers. A mid-flight snapshot may observe
	// a query whose latency is not yet recorded (or vice versa) — the
	// equality only holds at quiescence — but every per-shard counter must
	// be monotone across consecutive snapshots, and never overshoot the
	// final totals.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			prev := make([]ServeShardStats, shards)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, row := range m.Snapshot() {
					p := prev[i]
					if row.Queries < p.Queries || row.Errors < p.Errors || row.Latency.Count < p.Latency.Count {
						t.Errorf("shard %d: counters went backwards: %+v after %+v", row.Shard, row, p)
					}
					prev[i] = row
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for slot := 0; slot < slots; slot++ {
		writers.Add(1)
		go func(slot int) {
			defer writers.Done()
			for i := 0; i < perSlot; i++ {
				for sh := 0; sh < shards; sh++ {
					m.Enter(sh, slot)
					if i%7 == 3 {
						m.ExitErr(sh, slot)
					} else {
						m.ExitOK(sh, slot, time.Duration(i%100)*time.Microsecond)
					}
				}
			}
		}(slot)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	rows := m.Snapshot()
	wantErr := uint64(0)
	wantOK := uint64(0)
	for i := 0; i < perSlot; i++ {
		if i%7 == 3 {
			wantErr++
		} else {
			wantOK++
		}
	}
	for _, row := range rows {
		if row.Queries != wantOK*slots || row.Errors != wantErr*slots {
			t.Fatalf("shard %d: queries=%d errors=%d, want %d/%d",
				row.Shard, row.Queries, row.Errors, wantOK*slots, wantErr*slots)
		}
		if row.InFlight != 0 {
			t.Fatalf("shard %d: inflight=%d after all parts exited", row.Shard, row.InFlight)
		}
	}
}

func TestServeMatrixWriteZeroAlloc(t *testing.T) {
	m := NewServeMatrix(2, 2)
	allocs := testing.AllocsPerRun(100, func() {
		m.Enter(1, 1)
		m.ExitOK(1, 1, time.Millisecond)
		m.Enter(0, 0)
		m.ExitErr(0, 0)
	})
	if allocs != 0 {
		t.Fatalf("matrix writes allocate %.1f per part, want 0", allocs)
	}
}

func TestExemplarStore(t *testing.T) {
	x := NewExemplarStore()
	if _, _, ok := x.Get(5); ok {
		t.Fatal("empty store returned an exemplar")
	}
	x.Put(7, 3*time.Millisecond)
	x.Put(9, 100*time.Microsecond)
	x.Put(11, 3500*time.Microsecond) // same bucket as 3ms: last writer wins
	snap := x.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d exemplars, want 2", len(snap))
	}
	// Bucket order: the 100µs exemplar first.
	if snap[0].TraceID != 9 || snap[0].Dur != 100*time.Microsecond {
		t.Fatalf("first exemplar mismatch: %+v", snap[0])
	}
	if snap[1].TraceID != 11 || snap[1].Dur != 3500*time.Microsecond {
		t.Fatalf("overwritten exemplar mismatch: %+v", snap[1])
	}
	allocs := testing.AllocsPerRun(100, func() { x.Put(3, time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("Put allocates %.1f, want 0", allocs)
	}
}

func TestSinkSnapshotCarriesServeMatrixAndExemplars(t *testing.T) {
	k := New()
	m := NewServeMatrix(2, 1)
	m.Enter(1, 0)
	m.ExitOK(1, 0, time.Millisecond)
	k.SetServeMatrix(m)
	x := NewExemplarStore()
	x.Put(0xabc, 2*time.Millisecond)
	k.SetServeExemplars(x)

	snap := k.Snapshot()
	if len(snap.ServeShards) != 2 || snap.ServeShards[1].Queries != 1 {
		t.Fatalf("snapshot serve shards mismatch: %+v", snap.ServeShards)
	}
	if len(snap.ServeExemplars) != 1 || snap.ServeExemplars[0].TraceID != 0xabc {
		t.Fatalf("snapshot exemplars mismatch: %+v", snap.ServeExemplars)
	}

	var sb strings.Builder
	if err := k.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`fesia_serve_shard_queries_total{shard="1"} 1`,
		`fesia_serve_shard_queries_total{shard="0"} 0`,
		`fesia_serve_shard_inflight{shard="0"} 0`,
		`fesia_serve_latency_exemplar{`,
		`trace_id="0000000000000abc"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	mp := snap.Map()
	if _, ok := mp["serve_shards"]; !ok {
		t.Fatalf("expvar map missing serve_shards: %v", mp)
	}
	if _, ok := mp["serve_exemplars"]; !ok {
		t.Fatalf("expvar map missing serve_exemplars: %v", mp)
	}
}
