package stats

import (
	"fmt"
	"io"
	"strconv"

	"fesia/internal/planner"
	"fesia/internal/simd"
)

// promCounter maps a Counter to its Prometheus series. Counters sharing a
// family are exported with distinguishing labels.
type promSeries struct {
	family string
	labels string // rendered label set including braces, "" for none
	help   string
}

var promCounters = [NumCounters]promSeries{
	CtrQueriesMerge:            {"fesia_queries_total", `{strategy="merge"}`, "Queries answered, by intersection strategy."},
	CtrQueriesHash:             {"fesia_queries_total", `{strategy="hash"}`, ""},
	CtrQueriesKWay:             {"fesia_queries_total", `{strategy="kway"}`, ""},
	CtrQueriesBatch:            {"fesia_queries_total", `{strategy="batch"}`, ""},
	CtrQueriesCross:            {"fesia_queries_total", `{strategy="cross"}`, ""},
	CtrBuildSegmented:          {"fesia_sets_built_total", `{rep="segmented"}`, "Sets built, by physical representation."},
	CtrBuildArray:              {"fesia_sets_built_total", `{rep="array"}`, ""},
	CtrBuildDense:              {"fesia_sets_built_total", `{rep="dense"}`, ""},
	CtrDispSegSeg:              {"fesia_rep_dispatch_total", `{pair="seg_seg"}`, "Pair queries routed through the cross-representation dispatch matrix, by unordered representation pair."},
	CtrDispSegArray:            {"fesia_rep_dispatch_total", `{pair="seg_array"}`, ""},
	CtrDispSegDense:            {"fesia_rep_dispatch_total", `{pair="seg_dense"}`, ""},
	CtrDispArrayArray:          {"fesia_rep_dispatch_total", `{pair="array_array"}`, ""},
	CtrDispArrayDense:          {"fesia_rep_dispatch_total", `{pair="array_dense"}`, ""},
	CtrDispDenseDense:          {"fesia_rep_dispatch_total", `{pair="dense_dense"}`, ""},
	CtrBatchCandidates:         {"fesia_batch_candidates_total", "", "Candidates processed by one-vs-many batch queries."},
	CtrSegmentsScanned:         {"fesia_segments_scanned_total", "", "Segments examined by the bitmap word-AND pass (merge strategy)."},
	CtrSegPairs:                {"fesia_segment_pairs_total", "", "Segment pairs surviving the bitmap filter and dispatched to kernels."},
	CtrHashProbes:              {"fesia_hash_probes_total", "", "Elements probed by the hash strategy."},
	CtrHashSurvivors:           {"fesia_hash_probe_survivors_total", "", "Hash probes whose bitmap bit was set (entered the segment scan)."},
	CtrPlanSegSegMerge:         {"fesia_planner_decisions_total", `{decision="seg_seg",arm="merge"}`, "Adaptive-planner dispatch decisions, by decision kind and chosen arm."},
	CtrPlanSegSegHash:          {"fesia_planner_decisions_total", `{decision="seg_seg",arm="hash"}`, ""},
	CtrPlanSegDenseFromDense:   {"fesia_planner_decisions_total", `{decision="seg_dense",arm="probe_from_dense"}`, ""},
	CtrPlanSegDenseFromSeg:     {"fesia_planner_decisions_total", `{decision="seg_dense",arm="probe_from_seg"}`, ""},
	CtrPlanArrayDenseFromArray: {"fesia_planner_decisions_total", `{decision="array_dense",arm="probe_from_array"}`, ""},
	CtrPlanArrayDenseFromDense: {"fesia_planner_decisions_total", `{decision="array_dense",arm="probe_from_dense"}`, ""},
	CtrPlanExplored:            {"fesia_planner_explored_total", "", "Planner decisions that deliberately took the non-preferred arm (epsilon exploration)."},
	CtrPlanOverrides:           {"fesia_planner_overrides_total", "", "Planner decisions that disagreed with the static heuristic."},
	CtrCancellations:           {"fesia_query_cancellations_total", "", "Queries that returned ctx.Err() at a cooperative checkpoint."},
	CtrPoolDo:                  {"fesia_pool_do_total", "", "Parallel Do calls entered on the worker pool."},
	CtrPoolDoDone:              {"fesia_pool_do_done_total", "", "Parallel Do calls completed on the worker pool."},
	CtrPoolPartsPooled:         {"fesia_pool_parts_total", `{mode="pooled"}`, "Task parts, by whether a parked worker took them or they ran inline."},
	CtrPoolPartsInline:         {"fesia_pool_parts_total", `{mode="inline"}`, ""},
	CtrPoolPanics:              {"fesia_pool_task_panics_total", "", "Panics contained by the worker pool."},
	CtrSnapshotWrites:          {"fesia_snapshot_ops_total", `{op="write",outcome="ok"}`, "Snapshot codec operations, by direction and outcome."},
	CtrSnapshotWriteErrors:     {"fesia_snapshot_ops_total", `{op="write",outcome="error"}`, ""},
	CtrSnapshotReads:           {"fesia_snapshot_ops_total", `{op="read",outcome="ok"}`, ""},
	CtrSnapshotReadErrors:      {"fesia_snapshot_ops_total", `{op="read",outcome="error"}`, ""},
	CtrServeAdmitted:           {"fesia_serve_requests_total", `{outcome="admitted"}`, "Serving-tier requests, by admission outcome."},
	CtrServeRejected:           {"fesia_serve_requests_total", `{outcome="rejected"}`, ""},
	CtrServeShed:               {"fesia_serve_requests_total", `{outcome="shed"}`, ""},
	CtrServeDeadline:           {"fesia_serve_deadline_expiries_total", "", "Admitted serving-tier queries that expired their deadline (HTTP 504s)."},
	CtrServeQueueEnter:         {"fesia_serve_queue_events_total", `{event="enter"}`, "Admission-queue entries and exits (difference = live queue depth)."},
	CtrServeQueueExit:          {"fesia_serve_queue_events_total", `{event="exit"}`, ""},
	CtrServeSwaps:              {"fesia_serve_swaps_total", `{outcome="ok"}`, "Hot corpus snapshot swaps, by outcome."},
	CtrServeSwapErrors:         {"fesia_serve_swaps_total", `{outcome="error"}`, ""},
	CtrServeRejQueueFull:       {"fesia_serve_rejections_total", `{reason="queue_full"}`, "Admission-queue rejections by overload flavor (the shed flavor is fesia_serve_requests_total{outcome=\"shed\"})."},
	CtrServeRejQueueWait:       {"fesia_serve_rejections_total", `{reason="queue_wait"}`, ""},
	CtrTraceSampled:            {"fesia_trace_captured_total", `{reason="sampled"}`, "Queries retained by the tracing layer, by capture reason."},
	CtrTraceSlow:               {"fesia_trace_captured_total", `{reason="slow"}`, ""},
	CtrTraceForced:             {"fesia_trace_captured_total", `{reason="forced"}`, ""},
}

// WritePrometheus renders a snapshot in the Prometheus text exposition format
// (version 0.0.4), with no external dependencies. Latency histograms use the
// native power-of-two buckets as cumulative `le` buckets in seconds; the
// kernel-dispatch histogram is exported as a labelled counter family.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	// Build-info gauge: a constant 1 whose labels identify the ladder rung
	// actually dispatching in this process ("avx512" when the compress-store
	// kernels and gathered probe are active, "avx2" for the AVX2 assembly
	// tier, "scalar" for the pure-Go reference). Scrapers join it against the
	// query counters to attribute performance shifts to the backend in play.
	if _, err := fmt.Fprintf(w, "# HELP fesia_build_info Constant 1, labelled with the active intersection backend.\n# TYPE fesia_build_info gauge\nfesia_build_info{backend=%q} 1\n", simd.Backend()); err != nil {
		return err
	}

	// Planner-info gauge, the planner's counterpart of fesia_build_info: a
	// constant 1 labelled with the process-wide adaptive-planner mode, so
	// load-test runs are attributable to the dispatch policy in play.
	if _, err := fmt.Fprintf(w, "# HELP fesia_planner_info Constant 1, labelled with the active adaptive-planner mode.\n# TYPE fesia_planner_info gauge\nfesia_planner_info{mode=%q} 1\n", planner.ActiveMode()); err != nil {
		return err
	}

	// Counters, grouped so each family's HELP/TYPE header appears once.
	lastFamily := ""
	for c := Counter(0); c < NumCounters; c++ {
		ps := promCounters[c]
		if ps.family != lastFamily {
			if ps.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ps.family, ps.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", ps.family); err != nil {
				return err
			}
			lastFamily = ps.family
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", ps.family, ps.labels, s.Counters[c]); err != nil {
			return err
		}
	}

	// Pool in-flight gauge, derived from the Do counter pair.
	if _, err := fmt.Fprintf(w, "# HELP fesia_pool_inflight Parallel Do calls currently in flight.\n# TYPE fesia_pool_inflight gauge\nfesia_pool_inflight %d\n", s.PoolInFlight()); err != nil {
		return err
	}

	// Serving-tier queue-depth gauge, derived from the enter/exit counter pair.
	if _, err := fmt.Fprintf(w, "# HELP fesia_serve_queue_depth Requests currently waiting in the admission queue.\n# TYPE fesia_serve_queue_depth gauge\nfesia_serve_queue_depth %d\n", s.ServeQueueDepth()); err != nil {
		return err
	}

	// Per-shard serving rows (slots merged away): counts, the in-flight
	// gauge, and latency sum/count plus a p99 gauge per shard — enough to
	// spot a straggler shard on a dashboard without tracing enabled.
	if len(s.ServeShards) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_shard_queries_total Scatter parts completed, by document shard.\n# TYPE fesia_serve_shard_queries_total counter\n"); err != nil {
			return err
		}
		for _, r := range s.ServeShards {
			if _, err := fmt.Fprintf(w, "fesia_serve_shard_queries_total{shard=\"%d\"} %d\n", r.Shard, r.Queries); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_shard_errors_total Scatter parts that returned an error, by document shard.\n# TYPE fesia_serve_shard_errors_total counter\n"); err != nil {
			return err
		}
		for _, r := range s.ServeShards {
			if _, err := fmt.Fprintf(w, "fesia_serve_shard_errors_total{shard=\"%d\"} %d\n", r.Shard, r.Errors); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_shard_inflight Scatter parts currently executing, by document shard.\n# TYPE fesia_serve_shard_inflight gauge\n"); err != nil {
			return err
		}
		for _, r := range s.ServeShards {
			if _, err := fmt.Fprintf(w, "fesia_serve_shard_inflight{shard=\"%d\"} %d\n", r.Shard, r.InFlight); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_shard_latency_seconds_sum Total scatter-part latency, by document shard.\n# TYPE fesia_serve_shard_latency_seconds_sum counter\n"); err != nil {
			return err
		}
		for _, r := range s.ServeShards {
			if _, err := fmt.Fprintf(w, "fesia_serve_shard_latency_seconds_sum{shard=\"%d\"} %g\n", r.Shard, float64(r.Latency.SumNanos)/1e9); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_shard_p99_seconds Upper-bound p99 of scatter-part latency, by document shard.\n# TYPE fesia_serve_shard_p99_seconds gauge\n"); err != nil {
			return err
		}
		for _, r := range s.ServeShards {
			if _, err := fmt.Fprintf(w, "fesia_serve_shard_p99_seconds{shard=\"%d\"} %g\n", r.Shard, r.Latency.Quantile(0.99).Seconds()); err != nil {
				return err
			}
		}
	}

	// LatServe exemplars: one recent retained trace ID per occupied latency
	// bucket, the histogram-to-trace pivot. Exported as a labelled gauge (a
	// valid 0.0.4 family) rather than OpenMetrics inline exemplars, so the
	// hand-rolled text format stays parseable by classic scrapers.
	if len(s.ServeExemplars) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP fesia_serve_latency_exemplar Recent retained trace per serve-latency bucket; value is that trace's latency in seconds.\n# TYPE fesia_serve_latency_exemplar gauge\n"); err != nil {
			return err
		}
		for _, ex := range s.ServeExemplars {
			le := float64(uint64(1)<<uint(ex.Bucket)) / 1e9
			if _, err := fmt.Fprintf(w, "fesia_serve_latency_exemplar{le=%q,trace_id=\"%016x\"} %g\n",
				strconv.FormatFloat(le, 'g', -1, 64), ex.TraceID, ex.Dur.Seconds()); err != nil {
				return err
			}
		}
	}

	// Latency histograms.
	const latFamily = "fesia_query_latency_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Query latency, by intersection strategy.\n# TYPE %s histogram\n", latFamily, latFamily); err != nil {
		return err
	}
	for h := LatHist(0); h < NumLatHists; h++ {
		l := s.Latencies[h]
		var cum uint64
		for b := 0; b < LatBuckets-1; b++ {
			cum += l.Buckets[b]
			if l.Buckets[b] == 0 && b > 0 {
				continue // keep the exposition compact: only emit buckets that changed the sum
			}
			le := float64(uint64(1)<<uint(b)) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket{strategy=%q,le=%q} %d\n",
				latFamily, h.Name(), strconv.FormatFloat(le, 'g', -1, 64), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{strategy=%q,le=\"+Inf\"} %d\n", latFamily, h.Name(), l.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{strategy=%q} %g\n", latFamily, h.Name(), float64(l.SumNanos)/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{strategy=%q} %d\n", latFamily, h.Name(), l.Count); err != nil {
			return err
		}
	}

	// Kernel-dispatch histogram (sparse).
	const kFamily = "fesia_kernel_dispatch_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Kernel dispatches by true segment-size pair (%d = that size and above).\n# TYPE %s counter\n", kFamily, KernelDim-1, kFamily); err != nil {
		return err
	}
	for _, kb := range s.Kernels {
		if _, err := fmt.Fprintf(w, "%s{size_a=\"%d\",size_b=\"%d\"} %d\n", kFamily, kb.SizeA, kb.SizeB, kb.Count); err != nil {
			return err
		}
	}

	// Adaptive-planner cost table (sparse: only cells with recorded samples),
	// plus the re-fit counter. Emitted only while a planner model is active.
	if m := planner.Active(); m != nil {
		ps := m.Snapshot()
		if _, err := fmt.Fprintf(w, "# HELP fesia_planner_refits_total Completed online re-fit passes of the planner cost model.\n# TYPE fesia_planner_refits_total counter\nfesia_planner_refits_total %d\n", ps.Refits); err != nil {
			return err
		}
		const costFamily = "fesia_planner_cost_ns_per_unit"
		if _, err := fmt.Fprintf(w, "# HELP %s Fitted per-unit strategy cost (ns per element merged/probed), by decision cell and arm; only cells with recorded samples.\n# TYPE %s gauge\n", costFamily, costFamily); err != nil {
			return err
		}
		for _, c := range ps.Cells {
			if _, err := fmt.Fprintf(w, "%s{decision=%q,arm=%q,bucket_a=\"%d\",bucket_b=\"%d\"} %g\n",
				costFamily, c.Decision, c.Arm, c.BucketA, c.BucketB, c.CostNs); err != nil {
				return err
			}
		}
		for _, kp := range ps.KProbe {
			if _, err := fmt.Fprintf(w, "%s{decision=\"kway_probe\",arm=%q,bucket_a=\"0\",bucket_b=\"0\"} %g\n",
				costFamily, kp.Rep, kp.CostNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the sink's current state; see the free function.
func (k *Sink) WritePrometheus(w io.Writer) error {
	snap := k.Snapshot()
	return WritePrometheus(w, &snap)
}
