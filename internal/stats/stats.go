// Package stats is the observability substrate of the FESIA serving stack:
// sharded, allocation-free counters and power-of-two-bucket histograms for
// the online intersection phase, merged lazily on read.
//
// The design follows the query engine's ownership model. An Executor (and
// each worker of its parallel paths) is single-goroutine by contract, so each
// one owns a private Shard and updates it with relaxed atomics — a plain
// load/add/store pair, which on x86 compiles to two MOVs and an ADD, with no
// LOCK prefix and no contention ever. Shards are padded so two workers'
// hot words never share a cache line. Sources without single-writer
// discipline (the worker pool, the snapshot codecs) use the Sink's shared
// multi-writer shard with real atomic adds; those events are per-query or
// per-file, not per-element, so the LOCK'd add is invisible.
//
// Readers (Snapshot, WritePrometheus, the expvar publisher) walk every shard
// with atomic loads and sum. A snapshot is therefore a consistent-enough
// point-in-time view: individual cells are exact monotonic counters, but the
// set of cells is read without a global lock, the price of keeping writers
// free of one.
//
// Everything here is stdlib-only; the Prometheus exposition is hand-written
// text format (no client_golang dependency).
package stats

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonic event counter.
type Counter int

// Counter IDs. The observability layer is deliberately enumerated — a fixed
// array indexed by small constants keeps the write path free of maps, hashes
// and interface calls.
const (
	// Per-strategy query counts (one increment per query routed to the
	// strategy; the adaptive dispatcher's live merge-vs-hash split).
	CtrQueriesMerge Counter = iota
	CtrQueriesHash
	CtrQueriesKWay
	CtrQueriesBatch // one-vs-many batch calls (CountMany and friends)
	CtrQueriesCross // pair queries routed to a cross-representation path

	// Per-representation build counts (one increment per set built).
	CtrBuildSegmented
	CtrBuildArray
	CtrBuildDense

	// Cross-representation dispatch matrix: one increment per pair query,
	// keyed by the unordered representation pair it was routed to. SegSeg
	// counts only queries that took the hybrid dispatcher's seg×seg entry
	// (the classic merge/hash strategies keep their own counters above).
	CtrDispSegSeg
	CtrDispSegArray
	CtrDispSegDense
	CtrDispArrayArray
	CtrDispArrayDense
	CtrDispDenseDense

	// Batch shape.
	CtrBatchCandidates // candidates processed across batch calls

	// Bitmap-pass segment survival (merge strategy): segments examined by
	// the word-AND pass vs segment pairs that survived it and reached a
	// kernel. Survived/scanned tracks selectivity (paper Fig. 9/14).
	CtrSegmentsScanned
	CtrSegPairs

	// Hash-probe compaction (hash strategy): elements probed vs probes whose
	// bitmap bit was set (block compaction rate of the staged probe).
	CtrHashProbes
	CtrHashSurvivors

	// Planner decisions: one increment per dispatch decision resolved by the
	// adaptive cost model, keyed by decision kind and chosen arm, plus the
	// epsilon-exploration and static-disagreement tallies. Zero while the
	// planner is off (the static heuristics don't count decisions).
	CtrPlanSegSegMerge
	CtrPlanSegSegHash
	CtrPlanSegDenseFromDense
	CtrPlanSegDenseFromSeg
	CtrPlanArrayDenseFromArray
	CtrPlanArrayDenseFromDense
	CtrPlanExplored  // decisions that deliberately took the non-preferred arm
	CtrPlanOverrides // decisions disagreeing with the static heuristic

	// Cooperative cancellation: queries that returned ctx.Err().
	CtrCancellations

	// Worker pool: Do calls entered/finished (difference = in-flight gauge),
	// parts handed to a parked worker vs run inline because no worker was
	// free (the saturation signal of the unbuffered handoff), and panics
	// contained by the pool.
	CtrPoolDo
	CtrPoolDoDone
	CtrPoolPartsPooled
	CtrPoolPartsInline
	CtrPoolPanics

	// Snapshot codec outcomes (set + corpus serialization).
	CtrSnapshotWrites
	CtrSnapshotWriteErrors
	CtrSnapshotReads
	CtrSnapshotReadErrors

	// Serving tier (internal/serve): admission, shedding, deadline and hot
	// snapshot-swap outcomes. Enter/exit form the live queue-depth gauge
	// (see Snapshot.ServeQueueDepth), the same derived-gauge idiom as the
	// pool's in-flight pair.
	CtrServeAdmitted   // requests admitted past the concurrency limiter
	CtrServeRejected   // admission rejections (queue full or wait budget blown)
	CtrServeShed       // requests dropped by the latency-driven load shedder
	CtrServeDeadline   // admitted queries that expired their deadline (HTTP 504s)
	CtrServeQueueEnter // requests that entered the bounded admission queue
	CtrServeQueueExit  // requests that left the queue (admitted, timed out or cancelled)
	CtrServeSwaps      // hot corpus swaps completed (pointer flipped, old drained)
	CtrServeSwapErrors // swaps aborted with the old corpus left serving

	// Overload rejections broken out by flavor, so dashboards can tell a
	// depth-bounded queue (queue_full: burst arrival) from a time-bounded one
	// (queue_wait: sustained slowness) without parsing error bodies. The
	// shed flavor keeps its own CtrServeShed counter above; CtrServeRejected
	// stays the queue-side aggregate.
	CtrServeRejQueueFull // rejections with reason queue_full
	CtrServeRejQueueWait // rejections with reason queue_wait

	// Query tracing (internal/trace): retained traces by capture reason —
	// head-sampled 1-in-N, tail-captured past the slow threshold, or forced
	// by a client's X-Fesia-Trace header.
	CtrTraceSampled
	CtrTraceSlow
	CtrTraceForced

	NumCounters // number of counters; keep last
)

// counterNames maps Counter IDs to their stable external names (expvar keys;
// Prometheus names are derived in prometheus.go).
var counterNames = [NumCounters]string{
	CtrQueriesMerge:            "queries_merge",
	CtrQueriesHash:             "queries_hash",
	CtrQueriesKWay:             "queries_kway",
	CtrQueriesBatch:            "queries_batch",
	CtrQueriesCross:            "queries_cross",
	CtrBuildSegmented:          "build_segmented",
	CtrBuildArray:              "build_array",
	CtrBuildDense:              "build_dense",
	CtrDispSegSeg:              "dispatch_seg_seg",
	CtrDispSegArray:            "dispatch_seg_array",
	CtrDispSegDense:            "dispatch_seg_dense",
	CtrDispArrayArray:          "dispatch_array_array",
	CtrDispArrayDense:          "dispatch_array_dense",
	CtrDispDenseDense:          "dispatch_dense_dense",
	CtrBatchCandidates:         "batch_candidates",
	CtrSegmentsScanned:         "segments_scanned",
	CtrSegPairs:                "segment_pairs",
	CtrHashProbes:              "hash_probes",
	CtrHashSurvivors:           "hash_probe_survivors",
	CtrPlanSegSegMerge:         "plan_segseg_merge",
	CtrPlanSegSegHash:          "plan_segseg_hash",
	CtrPlanSegDenseFromDense:   "plan_segdense_from_dense",
	CtrPlanSegDenseFromSeg:     "plan_segdense_from_seg",
	CtrPlanArrayDenseFromArray: "plan_arraydense_from_array",
	CtrPlanArrayDenseFromDense: "plan_arraydense_from_dense",
	CtrPlanExplored:            "plan_explored",
	CtrPlanOverrides:           "plan_overrides",
	CtrCancellations:           "query_cancellations",
	CtrPoolDo:                  "pool_do",
	CtrPoolDoDone:              "pool_do_done",
	CtrPoolPartsPooled:         "pool_parts_pooled",
	CtrPoolPartsInline:         "pool_parts_inline",
	CtrPoolPanics:              "pool_task_panics",
	CtrSnapshotWrites:          "snapshot_writes",
	CtrSnapshotWriteErrors:     "snapshot_write_errors",
	CtrSnapshotReads:           "snapshot_reads",
	CtrSnapshotReadErrors:      "snapshot_read_errors",
	CtrServeAdmitted:           "serve_admitted",
	CtrServeRejected:           "serve_rejected",
	CtrServeShed:               "serve_shed",
	CtrServeDeadline:           "serve_deadline_expiries",
	CtrServeQueueEnter:         "serve_queue_enter",
	CtrServeQueueExit:          "serve_queue_exit",
	CtrServeSwaps:              "serve_swaps",
	CtrServeSwapErrors:         "serve_swap_errors",
	CtrServeRejQueueFull:       "serve_rejected_queue_full",
	CtrServeRejQueueWait:       "serve_rejected_queue_wait",
	CtrTraceSampled:            "trace_sampled",
	CtrTraceSlow:               "trace_slow",
	CtrTraceForced:             "trace_forced",
}

// Name returns the counter's stable external name.
func (c Counter) Name() string { return counterNames[c] }

// LatHist identifies one latency histogram.
type LatHist int

// Latency histograms, one per query strategy.
const (
	LatMerge LatHist = iota
	LatHash
	LatKWay
	LatBatch
	LatCross    // cross-representation pair queries
	LatServe    // serving tier: end-to-end latency of admitted queries
	NumLatHists // keep last
)

var latNames = [NumLatHists]string{
	LatMerge: "merge",
	LatHash:  "hash",
	LatKWay:  "kway",
	LatBatch: "batch",
	LatCross: "cross",
	LatServe: "serve",
}

// Name returns the histogram's strategy label.
func (h LatHist) Name() string { return latNames[h] }

// LatBuckets is the number of power-of-two latency buckets. Bucket i counts
// observations with bits.Len64(nanoseconds) == i, i.e. durations in
// [2^(i-1), 2^i) ns; bucket 0 is exactly 0 ns and the last bucket absorbs
// everything at or above 2^(LatBuckets-2) ns (~9 minutes).
const LatBuckets = 40

// KernelDim bounds the kernel-dispatch histogram: segment sizes 0..KernelDim-2
// are recorded exactly (the generated kernel tables cap at 31, Table II), and
// KernelDim-1 aggregates every larger size (generic-kernel territory).
const KernelDim = 34

// KernelSampleRate is the query-level sampling rate of the kernel-dispatch
// histogram: the engine records per-pair kernel dispatches for 1 in
// KernelSampleRate merge queries. Per-pair recording on every query costs
// ~10% on kernel-bound merge workloads — far over the <3% enabled-overhead
// budget — while the dispatch *distribution* is stable across queries, so
// sampling preserves the signal. All scalar counters (segment pairs, probes,
// latencies) remain exact; only the (sizeA, sizeB) histogram is sampled.
const KernelSampleRate = 8

// latBucket returns the histogram bucket of a duration.
func latBucket(d time.Duration) int {
	b := bits.Len64(uint64(d))
	if b >= LatBuckets {
		b = LatBuckets - 1
	}
	return b
}

// kernelSlot returns the dispatch-histogram slot of a true segment-size pair.
func kernelSlot(sizeA, sizeB int) int {
	if sizeA >= KernelDim {
		sizeA = KernelDim - 1
	}
	if sizeB >= KernelDim {
		sizeB = KernelDim - 1
	}
	return sizeA*KernelDim + sizeB
}

// Shard is one writer's private slice of a Sink. A Shard must only ever be
// written by one goroutine at a time (the executor that owns it, or the one
// pool worker running that executor's part); under that discipline its
// relaxed load/store updates are exact, race-free and unlocked. Readers may
// snapshot concurrently from any goroutine.
type Shard struct {
	c      [NumCounters]uint64
	latSum [NumLatHists]uint64
	lat    [NumLatHists][LatBuckets]uint64
	disp   [KernelDim * KernelDim]uint64
	_      [8]uint64 // pad the tail so the next shard's hot words start on a fresh line
}

// relaxedAdd is the single-writer update: an atomic load+store pair instead
// of a LOCK'd read-modify-write. The atomics are for the race detector and
// cross-goroutine visibility to readers, not for mutual exclusion — the
// single-writer contract provides that.
func relaxedAdd(p *uint64, n uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+n)
}

// Inc adds 1 to a counter.
func (s *Shard) Inc(c Counter) { relaxedAdd(&s.c[c], 1) }

// Add adds n to a counter.
func (s *Shard) Add(c Counter, n uint64) { relaxedAdd(&s.c[c], n) }

// Observe records one query latency into the strategy's histogram.
func (s *Shard) Observe(h LatHist, d time.Duration) {
	if d < 0 {
		d = 0
	}
	relaxedAdd(&s.latSum[h], uint64(d))
	relaxedAdd(&s.lat[h][latBucket(d)], 1)
}

// Kernel records one kernel dispatch for a true segment-size pair — the live
// version of the paper's Table II stride-sampling analysis.
func (s *Shard) Kernel(sizeA, sizeB int) {
	relaxedAdd(&s.disp[kernelSlot(sizeA, sizeB)], 1)
}

// Sink is a collector of Shards: the process- or executor-scoped aggregation
// point the read-side APIs snapshot. The zero value is not usable; construct
// with New.
type Sink struct {
	mu     sync.Mutex
	shards []*Shard
	multi  Shard // shared multi-writer shard (real atomic adds)

	// Optional serving-tier attachments, registered by internal/serve: the
	// per-(shard × slot) serve matrix and the tracing layer's latency
	// exemplars. Atomic pointers so registration never races a snapshot;
	// when several tiers share one sink, the last registration wins.
	serveMatrix    atomic.Pointer[ServeMatrix]
	serveExemplars atomic.Pointer[ExemplarStore]
}

// SetServeMatrix attaches a per-shard serving-metrics matrix; its rows ride
// along in every Snapshot and in the Prometheus/expvar output.
func (k *Sink) SetServeMatrix(m *ServeMatrix) { k.serveMatrix.Store(m) }

// ServeMatrix returns the attached matrix, or nil.
func (k *Sink) ServeMatrix() *ServeMatrix { return k.serveMatrix.Load() }

// SetServeExemplars attaches the tracing layer's LatServe exemplar store.
func (k *Sink) SetServeExemplars(x *ExemplarStore) { k.serveExemplars.Store(x) }

// ServeExemplars returns the attached exemplar store, or nil.
func (k *Sink) ServeExemplars() *ExemplarStore { return k.serveExemplars.Load() }

// New returns an empty Sink.
func New() *Sink { return &Sink{} }

// NewShard registers and returns a fresh single-writer Shard. Shards are
// never unregistered; an executor holds its shards for its whole life, and a
// shard's counts survive the executor (they are part of the sink's history).
func (k *Sink) NewShard() *Shard {
	s := &Shard{}
	k.mu.Lock()
	k.shards = append(k.shards, s)
	k.mu.Unlock()
	return s
}

// NumShards returns the number of registered single-writer shards.
func (k *Sink) NumShards() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.shards)
}

// Inc adds 1 to a counter on the shared multi-writer shard. Safe from any
// goroutine; used by sources without single-writer discipline (worker pool,
// snapshot codecs).
func (k *Sink) Inc(c Counter) { atomic.AddUint64(&k.multi.c[c], 1) }

// Add adds n to a counter on the shared multi-writer shard.
func (k *Sink) Add(c Counter, n uint64) { atomic.AddUint64(&k.multi.c[c], n) }

// Observe records a latency on the shared multi-writer shard.
func (k *Sink) Observe(h LatHist, d time.Duration) {
	if d < 0 {
		d = 0
	}
	atomic.AddUint64(&k.multi.latSum[h], uint64(d))
	atomic.AddUint64(&k.multi.lat[h][latBucket(d)], 1)
}

// ---------------------------------------------------------------------------
// Read side.
// ---------------------------------------------------------------------------

// KernelBucket is one non-zero cell of the kernel-dispatch histogram.
type KernelBucket struct {
	SizeA, SizeB int    // true segment sizes (KernelDim-1 = "and above")
	Count        uint64 // dispatches observed
}

// LatencyStats is one strategy's merged latency histogram.
type LatencyStats struct {
	Count    uint64             // observations
	SumNanos uint64             // total observed nanoseconds
	Buckets  [LatBuckets]uint64 // power-of-two buckets (see LatBuckets)
}

// Mean returns the mean observed latency (0 when empty).
func (l LatencyStats) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return time.Duration(l.SumNanos / l.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the power-of-two bucket holding the q-th observation.
// Within a factor of two of the true value by construction.
func (l LatencyStats) Quantile(q float64) time.Duration {
	if l.Count == 0 {
		return 0
	}
	target := uint64(q * float64(l.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range l.Buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(uint64(1) << uint(LatBuckets-1))
}

// Snapshot is a merged point-in-time view of a Sink. Counters are exact
// monotonic sums across all shards; the kernel histogram is reported sparsely
// (non-zero cells only), ordered by descending count.
type Snapshot struct {
	Counters  [NumCounters]uint64
	Latencies [NumLatHists]LatencyStats
	Kernels   []KernelBucket
	NumShards int // single-writer shards merged (excludes the shared shard)

	// ServeShards is the per-document-shard serving view (one row per shard,
	// slots merged away); empty unless a ServeMatrix is attached to the sink.
	ServeShards []ServeShardStats
	// ServeExemplars links LatServe buckets to recent retained trace IDs;
	// empty unless the tracing layer attached an ExemplarStore.
	ServeExemplars []LatencyExemplar
}

// Counter returns one merged counter value.
func (s *Snapshot) Counter(c Counter) uint64 { return s.Counters[c] }

// Latency returns one strategy's merged latency histogram.
func (s *Snapshot) Latency(h LatHist) LatencyStats { return s.Latencies[h] }

// PoolInFlight returns the pool's current in-flight Do gauge, derived from
// the entered/finished counter pair.
func (s *Snapshot) PoolInFlight() uint64 {
	d, f := s.Counters[CtrPoolDo], s.Counters[CtrPoolDoDone]
	if d < f {
		return 0 // torn read across the two cells; clamp
	}
	return d - f
}

// ServeQueueDepth returns the serving tier's current admission-queue depth,
// derived from the enter/exit counter pair.
func (s *Snapshot) ServeQueueDepth() uint64 {
	in, out := s.Counters[CtrServeQueueEnter], s.Counters[CtrServeQueueExit]
	if in < out {
		return 0 // torn read across the two cells; clamp
	}
	return in - out
}

// Snapshot merges every shard (and the shared multi-writer shard) into a
// consistent-enough point-in-time view. It allocates only the sparse kernel
// list; safe to call concurrently with writers.
func (k *Sink) Snapshot() Snapshot {
	k.mu.Lock()
	shards := k.shards[:len(k.shards):len(k.shards)]
	k.mu.Unlock()

	var snap Snapshot
	snap.NumShards = len(shards)
	var disp [KernelDim * KernelDim]uint64
	merge := func(s *Shard) {
		for i := range s.c {
			snap.Counters[i] += atomic.LoadUint64(&s.c[i])
		}
		for h := 0; h < int(NumLatHists); h++ {
			snap.Latencies[h].SumNanos += atomic.LoadUint64(&s.latSum[h])
			for b := range s.lat[h] {
				n := atomic.LoadUint64(&s.lat[h][b])
				snap.Latencies[h].Buckets[b] += n
				snap.Latencies[h].Count += n
			}
		}
		for i := range s.disp {
			disp[i] += atomic.LoadUint64(&s.disp[i])
		}
	}
	merge(&k.multi)
	for _, s := range shards {
		merge(s)
	}
	for slot, n := range disp {
		if n != 0 {
			snap.Kernels = append(snap.Kernels,
				KernelBucket{SizeA: slot / KernelDim, SizeB: slot % KernelDim, Count: n})
		}
	}
	// Descending count order: dumps and dashboards want the hot kernels first.
	for i := 1; i < len(snap.Kernels); i++ {
		for j := i; j > 0 && snap.Kernels[j].Count > snap.Kernels[j-1].Count; j-- {
			snap.Kernels[j], snap.Kernels[j-1] = snap.Kernels[j-1], snap.Kernels[j]
		}
	}
	if m := k.serveMatrix.Load(); m != nil {
		snap.ServeShards = m.Snapshot()
	}
	if x := k.serveExemplars.Load(); x != nil {
		snap.ServeExemplars = x.Snapshot()
	}
	return snap
}
