package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestShardedMergeCorrectness drives a deterministic pattern of updates
// through many shards plus the shared shard and checks the merged snapshot
// is the exact sum — the aggregation the read-side APIs depend on.
func TestShardedMergeCorrectness(t *testing.T) {
	k := New()
	const shards = 7
	for w := 0; w < shards; w++ {
		s := k.NewShard()
		for i := 0; i <= w; i++ {
			s.Inc(CtrQueriesMerge)
			s.Add(CtrSegPairs, uint64(10*(w+1)))
			s.Kernel(w, w+1)
			s.Observe(LatMerge, time.Duration(1)<<uint(w)*time.Microsecond)
		}
	}
	k.Inc(CtrPoolPanics)
	k.Add(CtrSnapshotReads, 3)
	k.Observe(LatMerge, time.Millisecond)

	snap := k.Snapshot()
	if snap.NumShards != shards {
		t.Fatalf("NumShards = %d, want %d", snap.NumShards, shards)
	}
	// sum over w of (w+1) increments = shards*(shards+1)/2
	wantQ := uint64(shards * (shards + 1) / 2)
	if got := snap.Counter(CtrQueriesMerge); got != wantQ {
		t.Errorf("QueriesMerge = %d, want %d", got, wantQ)
	}
	var wantPairs uint64
	for w := 0; w < shards; w++ {
		wantPairs += uint64((w + 1) * 10 * (w + 1))
	}
	if got := snap.Counter(CtrSegPairs); got != wantPairs {
		t.Errorf("SegPairs = %d, want %d", got, wantPairs)
	}
	if got := snap.Counter(CtrPoolPanics); got != 1 {
		t.Errorf("PoolPanics = %d, want 1", got)
	}
	if got := snap.Counter(CtrSnapshotReads); got != 3 {
		t.Errorf("SnapshotReads = %d, want 3", got)
	}

	lat := snap.Latency(LatMerge)
	if lat.Count != wantQ+1 {
		t.Errorf("latency count = %d, want %d", lat.Count, wantQ+1)
	}
	var wantSum uint64
	for w := 0; w < shards; w++ {
		wantSum += uint64(w+1) * uint64(time.Duration(1)<<uint(w)*time.Microsecond)
	}
	wantSum += uint64(time.Millisecond)
	if lat.SumNanos != wantSum {
		t.Errorf("latency sum = %d, want %d", lat.SumNanos, wantSum)
	}

	// Kernel histogram: shard w recorded (w, w+1) w+1 times.
	got := make(map[[2]int]uint64)
	for _, kb := range snap.Kernels {
		got[[2]int{kb.SizeA, kb.SizeB}] = kb.Count
	}
	for w := 0; w < shards; w++ {
		if got[[2]int{w, w + 1}] != uint64(w+1) {
			t.Errorf("kernel (%d,%d) = %d, want %d", w, w+1, got[[2]int{w, w + 1}], w+1)
		}
	}
	// Descending order.
	for i := 1; i < len(snap.Kernels); i++ {
		if snap.Kernels[i].Count > snap.Kernels[i-1].Count {
			t.Errorf("kernel list not in descending count order at %d", i)
		}
	}
}

func TestLatBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Duration(1) << 62, LatBuckets - 1},
	}
	for _, c := range cases {
		if got := latBucket(c.d); got != c.want {
			t.Errorf("latBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestKernelSlotClamp(t *testing.T) {
	s := &Shard{}
	s.Kernel(5, 1000) // sizeB far past the clamp
	s.Kernel(KernelDim+7, KernelDim-1)
	k := New()
	k.mu.Lock()
	k.shards = append(k.shards, s)
	k.mu.Unlock()
	snap := k.Snapshot()
	got := make(map[[2]int]uint64)
	for _, kb := range snap.Kernels {
		got[[2]int{kb.SizeA, kb.SizeB}] = kb.Count
	}
	if got[[2]int{5, KernelDim - 1}] != 1 {
		t.Errorf("clamped (5, big) missing: %v", snap.Kernels)
	}
	if got[[2]int{KernelDim - 1, KernelDim - 1}] != 1 {
		t.Errorf("clamped (big, big) missing: %v", snap.Kernels)
	}
}

func TestQuantile(t *testing.T) {
	var l LatencyStats
	if l.Quantile(0.5) != 0 || l.Mean() != 0 {
		t.Fatal("empty histogram should report zero")
	}
	// 90 observations in bucket 10 ([512, 1024) ns), 10 in bucket 20.
	l.Buckets[10] = 90
	l.Buckets[20] = 10
	l.Count = 100
	l.SumNanos = 90*700 + 10*600_000
	if got := l.Quantile(0.5); got != time.Duration(1<<10) {
		t.Errorf("p50 = %v, want %v", got, time.Duration(1<<10))
	}
	if got := l.Quantile(0.99); got != time.Duration(1<<20) {
		t.Errorf("p99 = %v, want %v", got, time.Duration(1<<20))
	}
	if got := l.Quantile(0.90); got != time.Duration(1<<10) {
		t.Errorf("p90 = %v, want %v", got, time.Duration(1<<10))
	}
	wantMean := time.Duration(l.SumNanos / 100)
	if got := l.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}
}

func TestWritePrometheus(t *testing.T) {
	k := New()
	s := k.NewShard()
	s.Inc(CtrQueriesMerge)
	s.Inc(CtrQueriesMerge)
	s.Inc(CtrQueriesHash)
	s.Add(CtrSegPairs, 42)
	s.Kernel(3, 5)
	s.Observe(LatMerge, 800*time.Nanosecond)
	s.Observe(LatMerge, 3*time.Microsecond)
	k.Inc(CtrSnapshotWriteErrors)

	var b strings.Builder
	if err := k.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fesia_queries_total{strategy="merge"} 2`,
		`fesia_queries_total{strategy="hash"} 1`,
		"fesia_segment_pairs_total 42",
		`fesia_kernel_dispatch_total{size_a="3",size_b="5"} 1`,
		`fesia_snapshot_ops_total{op="write",outcome="error"} 1`,
		`fesia_query_latency_seconds_count{strategy="merge"} 2`,
		`fesia_query_latency_seconds_bucket{strategy="merge",le="+Inf"} 2`,
		"# TYPE fesia_query_latency_seconds histogram",
		"# TYPE fesia_queries_total counter",
		"fesia_pool_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative le buckets must be monotonically non-decreasing.
	var prev, nbuckets int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `fesia_query_latency_seconds_bucket{strategy="merge"`) {
			var v int
			if _, err := fmtSscanLast(line, &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("non-monotonic cumulative bucket: %q after %d", line, prev)
			}
			prev = v
			nbuckets++
		}
	}
	if nbuckets < 2 {
		t.Errorf("expected at least 2 merge latency buckets, got %d", nbuckets)
	}
}

// fmtSscanLast parses the trailing integer of a prometheus sample line.
func fmtSscanLast(line string, v *int) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	n, err := parseInt(line[i+1:])
	*v = n
	return 1, err
}

func parseInt(s string) (int, error) {
	var n int
	_, err := jsonUnmarshalInt(s, &n)
	return n, err
}

func jsonUnmarshalInt(s string, n *int) (bool, error) {
	return true, json.Unmarshal([]byte(s), n)
}

func TestExpvarMap(t *testing.T) {
	k := New()
	s := k.NewShard()
	s.Inc(CtrQueriesBatch)
	s.Add(CtrBatchCandidates, 128)
	s.Observe(LatBatch, 2*time.Millisecond)
	s.Kernel(1, 2)

	payload := k.ExpvarFunc().Value()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("expvar payload not marshalable: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["queries_batch"].(float64) != 1 {
		t.Errorf("queries_batch = %v, want 1", m["queries_batch"])
	}
	if m["batch_candidates"].(float64) != 128 {
		t.Errorf("batch_candidates = %v, want 128", m["batch_candidates"])
	}
	lat := m["latency"].(map[string]any)
	if _, ok := lat["batch"]; !ok {
		t.Errorf("latency.batch missing: %v", lat)
	}
	if len(m["kernel_dispatch"].([]any)) != 1 {
		t.Errorf("kernel_dispatch = %v, want one entry", m["kernel_dispatch"])
	}
}
