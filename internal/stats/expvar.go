package stats

import (
	"expvar"
	"fmt"
)

// Map renders the snapshot as a JSON-marshalable tree — the expvar payload.
// Counters appear under their stable names; latency histograms report count,
// mean and coarse percentiles per strategy; the kernel histogram is a sparse
// list of [sizeA, sizeB, count] triples in descending count order.
func (s *Snapshot) Map() map[string]any {
	m := make(map[string]any, int(NumCounters)+2)
	for c := Counter(0); c < NumCounters; c++ {
		m[c.Name()] = s.Counters[c]
	}
	m["pool_inflight"] = s.PoolInFlight()
	m["serve_queue_depth"] = s.ServeQueueDepth()
	lat := make(map[string]any, NumLatHists)
	for h := LatHist(0); h < NumLatHists; h++ {
		l := s.Latencies[h]
		if l.Count == 0 {
			continue
		}
		lat[h.Name()] = map[string]any{
			"count":     l.Count,
			"sum_ns":    l.SumNanos,
			"mean_ns":   uint64(l.Mean()),
			"p50_ns":    uint64(l.Quantile(0.50)),
			"p90_ns":    uint64(l.Quantile(0.90)),
			"p99_ns":    uint64(l.Quantile(0.99)),
			"p999_ns":   uint64(l.Quantile(0.999)),
			"max_le_ns": uint64(l.Quantile(1.0)),
		}
	}
	m["latency"] = lat
	if len(s.ServeShards) > 0 {
		rows := make([]map[string]any, 0, len(s.ServeShards))
		for _, r := range s.ServeShards {
			rows = append(rows, map[string]any{
				"shard":    r.Shard,
				"queries":  r.Queries,
				"errors":   r.Errors,
				"inflight": r.InFlight,
				"mean_ns":  uint64(r.Latency.Mean()),
				"p99_ns":   uint64(r.Latency.Quantile(0.99)),
			})
		}
		m["serve_shards"] = rows
	}
	if len(s.ServeExemplars) > 0 {
		exs := make([]map[string]any, 0, len(s.ServeExemplars))
		for _, ex := range s.ServeExemplars {
			exs = append(exs, map[string]any{
				"bucket":   ex.Bucket,
				"trace_id": fmt.Sprintf("%016x", ex.TraceID),
				"dur_ns":   uint64(ex.Dur),
			})
		}
		m["serve_exemplars"] = exs
	}
	kernels := make([][3]uint64, 0, len(s.Kernels))
	for _, kb := range s.Kernels {
		kernels = append(kernels, [3]uint64{uint64(kb.SizeA), uint64(kb.SizeB), kb.Count})
	}
	m["kernel_dispatch"] = kernels
	return m
}

// ExpvarFunc returns an expvar.Func that snapshots the sink on every render,
// so `GET /debug/vars` always shows live values.
func (k *Sink) ExpvarFunc() expvar.Func {
	return expvar.Func(func() any {
		snap := k.Snapshot()
		return snap.Map()
	})
}

// Publish registers the sink under the given expvar name. Like
// expvar.Publish it must be called at most once per name per process.
func (k *Sink) Publish(name string) {
	expvar.Publish(name, k.ExpvarFunc())
}
