package stats

import (
	"sync/atomic"
	"time"
)

// Per-shard serving metrics. The tier's aggregate LatServe histogram answers
// "how slow is the tier?" but cannot answer "which shard is dragging it?" —
// a straggler shard hides inside the scatter-gather max. The ServeMatrix
// breaks the serve-side counters out per document shard, following the same
// single-writer discipline as the executor matrix it mirrors: cell (shard s,
// slot c) is written only by the scatter part of the one admitted query
// holding slot c while it runs on shard s, so updates are relaxed
// load/store pairs with no locks and no contention. Readers merge the slot
// dimension away lazily, leaving one row per shard for the `shard`-labelled
// Prometheus/expvar series.

// serveCell is one (shard × slot) cell of the matrix: query/error/deadline
// counts, the enter/exit pair deriving the per-shard in-flight gauge, and a
// latency histogram of that shard's part executions. Padded so neighbouring
// slots' hot words never share a cache line.
type serveCell struct {
	queries  uint64
	errors   uint64
	enter    uint64
	exit     uint64
	sumNanos uint64
	lat      [LatBuckets]uint64
	_        [3]uint64 // pad to a multiple of 64 bytes (45 words -> 48)
}

// ServeMatrix is the per-(shard × slot) serving-metrics matrix. Construct
// with NewServeMatrix and register it on the tier's Sink with
// SetServeMatrix; safe for concurrent use under the single-writer-per-cell
// contract.
type ServeMatrix struct {
	shards int
	slots  int
	cells  []serveCell
}

// NewServeMatrix returns a zeroed matrix for `shards` document shards and
// `slots` admission slots.
func NewServeMatrix(shards, slots int) *ServeMatrix {
	return &ServeMatrix{
		shards: shards,
		slots:  slots,
		cells:  make([]serveCell, shards*slots),
	}
}

// NumShards returns the matrix's shard dimension.
func (m *ServeMatrix) NumShards() int { return m.shards }

// NumSlots returns the matrix's slot dimension.
func (m *ServeMatrix) NumSlots() int { return m.slots }

func (m *ServeMatrix) cell(shard, slot int) *serveCell {
	return &m.cells[shard*m.slots+slot]
}

// Enter marks one scatter part starting on (shard, slot) — the increment
// half of the per-shard in-flight gauge.
func (m *ServeMatrix) Enter(shard, slot int) {
	relaxedAdd(&m.cell(shard, slot).enter, 1)
}

// ExitOK marks one scatter part finishing successfully on (shard, slot),
// recording its latency into the shard's histogram.
func (m *ServeMatrix) ExitOK(shard, slot int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	c := m.cell(shard, slot)
	relaxedAdd(&c.exit, 1)
	relaxedAdd(&c.queries, 1)
	relaxedAdd(&c.sumNanos, uint64(d))
	relaxedAdd(&c.lat[latBucket(d)], 1)
}

// ExitErr marks one scatter part finishing with an error (cancellation,
// deadline, fault) on (shard, slot).
func (m *ServeMatrix) ExitErr(shard, slot int) {
	c := m.cell(shard, slot)
	relaxedAdd(&c.exit, 1)
	relaxedAdd(&c.errors, 1)
}

// ServeShardStats is one shard's row of the matrix, merged across slots.
type ServeShardStats struct {
	Shard    int
	Queries  uint64 // scatter parts completed successfully on this shard
	Errors   uint64 // scatter parts that returned an error
	InFlight uint64 // parts currently executing (derived enter/exit gauge)
	Latency  LatencyStats
}

// Snapshot merges the slot dimension away, returning one row per shard.
// Safe to call concurrently with writers; allocates the result rows only.
func (m *ServeMatrix) Snapshot() []ServeShardStats {
	rows := make([]ServeShardStats, m.shards)
	for s := 0; s < m.shards; s++ {
		r := &rows[s]
		r.Shard = s
		var enter, exit uint64
		for c := 0; c < m.slots; c++ {
			cell := m.cell(s, c)
			r.Queries += atomic.LoadUint64(&cell.queries)
			r.Errors += atomic.LoadUint64(&cell.errors)
			enter += atomic.LoadUint64(&cell.enter)
			exit += atomic.LoadUint64(&cell.exit)
			r.Latency.SumNanos += atomic.LoadUint64(&cell.sumNanos)
			for b := range cell.lat {
				n := atomic.LoadUint64(&cell.lat[b])
				r.Latency.Buckets[b] += n
				r.Latency.Count += n
			}
		}
		if enter > exit { // torn read across cells; clamp like PoolInFlight
			r.InFlight = enter - exit
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Histogram exemplars.
// ---------------------------------------------------------------------------

// ExemplarStore links latency-histogram buckets to recent trace IDs: when the
// tracing layer retains a query, it stamps the query's trace ID into the
// bucket its end-to-end latency landed in. A dashboard reader going "what is
// sitting in that slow bucket?" can then jump straight from the histogram to
// a concrete retained trace on /debug/traces. Cells are plain atomics — last
// writer wins, which is exactly the "a recent example" contract.
type ExemplarStore struct {
	ids  [LatBuckets]atomic.Uint64 // trace ID per bucket; 0 = none yet
	durs [LatBuckets]atomic.Uint64 // the exemplar's observed nanoseconds
}

// NewExemplarStore returns an empty store.
func NewExemplarStore() *ExemplarStore { return &ExemplarStore{} }

// Put records trace id as the exemplar of the bucket holding d.
func (x *ExemplarStore) Put(id uint64, d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := latBucket(d)
	x.durs[b].Store(uint64(d))
	x.ids[b].Store(id)
}

// Get returns the exemplar of one bucket, or ok=false when none was recorded.
func (x *ExemplarStore) Get(bucket int) (id uint64, d time.Duration, ok bool) {
	id = x.ids[bucket].Load()
	if id == 0 {
		return 0, 0, false
	}
	return id, time.Duration(x.durs[bucket].Load()), true
}

// LatencyExemplar is one bucket's exemplar in a snapshot.
type LatencyExemplar struct {
	Bucket  int           // power-of-two bucket index (see LatBuckets)
	TraceID uint64        // retained trace whose latency landed in the bucket
	Dur     time.Duration // that trace's observed end-to-end latency
}

// Snapshot returns every recorded exemplar, in bucket order.
func (x *ExemplarStore) Snapshot() []LatencyExemplar {
	var out []LatencyExemplar
	for b := 0; b < LatBuckets; b++ {
		if id, d, ok := x.Get(b); ok {
			out = append(out, LatencyExemplar{Bucket: b, TraceID: id, Dur: d})
		}
	}
	return out
}
