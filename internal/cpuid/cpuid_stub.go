//go:build !amd64 || noasm

package cpuid

// No probe: every feature flag keeps its false zero value and Backend()
// reports "scalar". This file is the whole of the `noasm` escape hatch at the
// cpuid layer — internal/simd keys all dispatch off these flags.
