package cpuid

import (
	"runtime"
	"testing"
)

func TestBackendConsistent(t *testing.T) {
	b := Backend()
	if b != "avx2" && b != "scalar" {
		t.Fatalf("Backend() = %q, want avx2 or scalar", b)
	}
	if b == "avx2" && !(HasAVX2 && HasBMI2 && HasPOPCNT) {
		t.Fatalf("Backend avx2 but flags AVX2=%v BMI2=%v POPCNT=%v", HasAVX2, HasBMI2, HasPOPCNT)
	}
	if runtime.GOARCH != "amd64" && b != "scalar" {
		t.Fatalf("non-amd64 must report scalar, got %q", b)
	}
	t.Logf("backend=%s AVX2=%v BMI2=%v POPCNT=%v", b, HasAVX2, HasBMI2, HasPOPCNT)
}
