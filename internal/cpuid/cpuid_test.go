package cpuid

import (
	"runtime"
	"testing"
)

func TestBackendConsistent(t *testing.T) {
	b := Backend()
	if b != "avx512" && b != "avx2" && b != "scalar" {
		t.Fatalf("Backend() = %q, want avx512, avx2 or scalar", b)
	}
	if (b == "avx2" || b == "avx512") && !(HasAVX2 && HasBMI2 && HasPOPCNT) {
		t.Fatalf("Backend %s but flags AVX2=%v BMI2=%v POPCNT=%v", b, HasAVX2, HasBMI2, HasPOPCNT)
	}
	if b == "avx512" && !AVX512() {
		t.Fatalf("Backend avx512 but AVX512() false (F=%v VL=%v CD=%v DQ=%v)",
			HasAVX512F, HasAVX512VL, HasAVX512CD, HasAVX512DQ)
	}
	if b != "avx512" && AVX512() && HasAVX2 && HasBMI2 && HasPOPCNT {
		t.Fatalf("AVX512() true with full AVX2 rung but Backend() = %q", b)
	}
	if runtime.GOARCH != "amd64" && b != "scalar" {
		t.Fatalf("non-amd64 must report scalar, got %q", b)
	}
	t.Logf("backend=%s AVX2=%v BMI2=%v POPCNT=%v AVX512 F=%v VL=%v CD=%v DQ=%v",
		b, HasAVX2, HasBMI2, HasPOPCNT, HasAVX512F, HasAVX512VL, HasAVX512CD, HasAVX512DQ)
}

// TestAVX512FlagsLadder pins the ladder invariant: the AVX-512 flags are only
// ever set together with the lower rung's features (they are gated on a
// superset of the same XCR0 state), so the rungs never fork.
func TestAVX512FlagsLadder(t *testing.T) {
	anyAVX512 := HasAVX512F || HasAVX512VL || HasAVX512CD || HasAVX512DQ
	if anyAVX512 && !HasAVX2 {
		t.Fatal("AVX-512 flags set without AVX2: XCR0 gating is broken")
	}
}
