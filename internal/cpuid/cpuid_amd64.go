//go:build amd64 && !noasm

package cpuid

// cpuid executes the CPUID instruction for (leaf, subleaf).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	HasPOPCNT = ecx1&(1<<23) != 0
	const osxsaveAVX = 1<<27 | 1<<28 // OSXSAVE | AVX
	if ecx1&osxsaveAVX != osxsaveAVX {
		return // no AVX, or the OS has not enabled XSAVE
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/ymm) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	if maxLeaf < 7 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	HasAVX2 = ebx7&(1<<5) != 0
	HasBMI2 = ebx7&(1<<8) != 0
}
