//go:build amd64 && !noasm

package cpuid

import "os"

// cpuid executes the CPUID instruction for (leaf, subleaf).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	HasPOPCNT = ecx1&(1<<23) != 0
	const osxsaveAVX = 1<<27 | 1<<28 // OSXSAVE | AVX
	if ecx1&osxsaveAVX != osxsaveAVX {
		return // no AVX, or the OS has not enabled XSAVE
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/ymm) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	if maxLeaf < 7 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	HasAVX2 = ebx7&(1<<5) != 0
	HasBMI2 = ebx7&(1<<8) != 0

	// AVX-512 eligibility needs more than the CPUID feature leaves: the OS
	// must have enabled the opmask (k0-k7), ZMM_Hi256 and Hi16_ZMM state
	// components in XCR0 (bits 5, 6, 7) on top of SSE+AVX, or the EVEX
	// routines would #UD/#NM at runtime even though CPUID advertises them.
	const xcr0AVX512 = 0x6 | 1<<5 | 1<<6 | 1<<7 // SSE|AVX|opmask|ZMM_Hi256|Hi16_ZMM
	if xcr0&xcr0AVX512 != xcr0AVX512 {
		return
	}
	// FESIA_DISABLE_AVX512 (any non-empty value) caps the ladder at AVX2,
	// mirroring the -tags=noasm hatch one rung down. Applied at probe time
	// so every consumer of these flags sees the same capability.
	if os.Getenv("FESIA_DISABLE_AVX512") != "" {
		return
	}
	HasAVX512F = ebx7&(1<<16) != 0
	HasAVX512DQ = ebx7&(1<<17) != 0
	HasAVX512CD = ebx7&(1<<28) != 0
	HasAVX512VL = ebx7&(1<<31) != 0
}
