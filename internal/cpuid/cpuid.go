// Package cpuid probes, once at process start, the CPU features the real
// SIMD backend needs (internal/simd's AVX2 and AVX-512 assembly routines).
// The probe is the runtime-dispatch half of the pattern production bitmap
// libraries use: hand-written vector kernels selected once at init, with a
// portable scalar fallback that is the only path on non-amd64 architectures
// or under the `noasm` build tag.
//
// Feature detection follows the Intel SDM rules: a feature is usable only
// when the CPU reports it AND the OS has enabled the matching register state
// (OSXSAVE + XCR0 bits 1-2 for the ymm registers AVX2 uses; additionally
// XCR0 bits 5-7 — opmask, ZMM_Hi256, Hi16_ZMM — for the k-registers and zmm
// state the AVX-512 routines use). A kernel that leaves ZMM state disabled
// must not let us advertise AVX-512, or dispatch would fault on the first
// EVEX instruction.
package cpuid

// Feature flags, filled by the amd64 init (cpuid_amd64.go) and permanently
// false elsewhere. They are written once before main and never mutated, so
// reads need no synchronization.
var (
	// HasAVX2 reports AVX2 instructions with OS ymm-state support.
	HasAVX2 bool
	// HasBMI2 reports the BMI2 scalar bit-manipulation extension (PEXT).
	HasBMI2 bool
	// HasPOPCNT reports the POPCNT instruction.
	HasPOPCNT bool

	// HasAVX512F reports the AVX-512 foundation instructions (zmm, k-masks,
	// VPCOMPRESSD, VPGATHERDD) with full OS zmm/opmask state support.
	HasAVX512F bool
	// HasAVX512VL reports the 128/256-bit EVEX encodings (masked ymm loads).
	HasAVX512VL bool
	// HasAVX512CD reports the conflict-detection extension (VPCONFLICTD).
	HasAVX512CD bool
	// HasAVX512DQ reports the doubleword/quadword extension (VPMULLQ, which
	// the gathered splitmix64 hash probe needs).
	HasAVX512DQ bool
)

// AVX512 reports whether every AVX-512 subset the assembly routines use is
// present and OS-enabled. The four flags are only ever set together with the
// XCR0 opmask/ZMM state check, so this is the single eligibility predicate
// for the top rung of the ladder.
func AVX512() bool {
	return HasAVX512F && HasAVX512VL && HasAVX512CD && HasAVX512DQ
}

// Backend names the kernel backend the probe selects, as a ladder:
// "avx512" when the AVX-512 routines are eligible, "avx2" when only the
// AVX2 routines are, "scalar" otherwise (non-amd64, the `noasm` build tag,
// or a CPU/OS without AVX2+BMI2 support). The FESIA_DISABLE_AVX512
// environment escape hatch is applied here at probe time, so cpuid and
// internal/simd always agree on the static capability. internal/simd
// re-exports this through its own Backend, which additionally reflects
// test-time toggling.
func Backend() string {
	if !HasAVX2 || !HasBMI2 || !HasPOPCNT {
		return "scalar"
	}
	if AVX512() {
		return "avx512"
	}
	return "avx2"
}
