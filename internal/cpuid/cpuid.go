// Package cpuid probes, once at process start, the CPU features the real
// SIMD backend needs (internal/simd's AVX2 assembly routines). The probe is
// the runtime-dispatch half of the pattern production bitmap libraries use:
// hand-written vector kernels selected once at init, with a portable scalar
// fallback that is the only path on non-amd64 architectures or under the
// `noasm` build tag.
//
// Feature detection follows the Intel SDM rules: a feature is usable only
// when the CPU reports it AND the OS has enabled the matching register state
// (OSXSAVE + XCR0 bits 1-2 for the ymm registers AVX2 uses).
package cpuid

// Feature flags, filled by the amd64 init (cpuid_amd64.go) and permanently
// false elsewhere. They are written once before main and never mutated, so
// reads need no synchronization.
var (
	// HasAVX2 reports AVX2 instructions with OS ymm-state support.
	HasAVX2 bool
	// HasBMI2 reports the BMI2 scalar bit-manipulation extension (PEXT).
	HasBMI2 bool
	// HasPOPCNT reports the POPCNT instruction.
	HasPOPCNT bool
)

// Backend names the kernel backend the probe selects: "avx2" when the
// assembly routines are eligible, "scalar" otherwise (non-amd64, the `noasm`
// build tag, or a CPU/OS without AVX2+BMI2 support). internal/simd re-exports
// this through its own Backend, which additionally reflects test-time
// toggling.
func Backend() string {
	if HasAVX2 && HasBMI2 && HasPOPCNT {
		return "avx2"
	}
	return "scalar"
}
