package experiments

import (
	"fmt"
	"math/rand"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// KernelSpeedups reproduces Figures 4-6: for every segment size pair up to
// 2V-1, the speedup of the specialized kernel over the general (padded,
// all-pairs) kernel at the same width. Rows are Sa, columns Sb.
func KernelSpeedups(w simd.Width, figID string) *Table {
	tbl := kernels.ForWidth(w)
	capSize := tbl.Cap()
	rng := rand.New(rand.NewSource(77))

	const batch = 32
	t := &Table{
		ID:    figID,
		Title: fmt.Sprintf("Speedups of %s specialized kernels vs general kernel (rows Sa, cols Sb)", w),
	}
	t.Header = append(t.Header, "Sa\\Sb")
	for sb := 1; sb <= capSize; sb++ {
		t.Header = append(t.Header, fmt.Sprintf("%d", sb))
	}
	for sa := 1; sa <= capSize; sa++ {
		row := []string{fmt.Sprintf("%d", sa)}
		for sb := 1; sb <= capSize; sb++ {
			as := make([][]uint32, batch)
			bs := make([][]uint32, batch)
			for i := range as {
				as[i], bs[i] = segmentPair(rng, sa, sb)
			}
			general := timeOp(func() int {
				n := 0
				for i := range as {
					n += kernels.GeneralCount(w, as[i], bs[i])
				}
				return n
			})
			specialized := timeOp(func() int {
				n := 0
				for i := range as {
					n += tbl.Count(as[i], bs[i])
				}
				return n
			})
			row = append(row, speedup(general, specialized))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// segmentPair builds one pair of sorted distinct segment lists with some
// overlap, the inputs a surviving segment pair would hand a kernel.
func segmentPair(rng *rand.Rand, sa, sb int) (a, b []uint32) {
	universe := uint32(4 * (sa + sb + 2))
	return datasets.GenPair(rng, sa, sb, rng.Intn(min(sa, sb)+1), universe)
}

// VaryInputSize reproduces Fig. 7: intersection time as the input size grows
// (equal-size inputs, selectivity 1%). fesiaWidths selects which FESIA
// variants run — {SSE, AVX} mirrors the Haswell platform (Fig. 7a),
// {SSE, AVX, AVX512} the Skylake one (Fig. 7b). The baseline methods run at
// the widest ISA in fesiaWidths.
func VaryInputSize(figID string, sizes []int, fesiaWidths []simd.Width) *Table {
	rng := rand.New(rand.NewSource(7))
	widest := fesiaWidths[len(fesiaWidths)-1]

	methods := BaselineMethods(widest)
	for _, w := range fesiaWidths {
		methods = append(methods, FESIAMethod("FESIA"+wTag(w), core.Config{Width: w}))
	}

	t := &Table{
		ID:     figID,
		Title:  "Intersection time (ms) vs input size, selectivity 1%",
		Header: append([]string{"Size"}, methodNames(methods)...),
		Notes:  []string{"paper reports million cycles; this reproduction reports milliseconds"},
	}
	for _, n := range sizes {
		a, b := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range methods {
			op := m.Prepare(a, b)
			row = append(row, ms(timeOp(op)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SelectivitySweep reproduces Figures 8-9: speedup over Scalar as the
// selectivity r/n varies at fixed input size.
func SelectivitySweep(figID string, n int, sels []float64, fesiaWidths []simd.Width) *Table {
	rng := rand.New(rand.NewSource(8))
	widest := fesiaWidths[len(fesiaWidths)-1]
	methods := BaselineMethods(widest)[1:] // Scalar is the baseline itself
	for _, w := range fesiaWidths {
		methods = append(methods, FESIAMethod("FESIA"+wTag(w), core.Config{Width: w}))
	}
	scalar := ScalarMethod()

	t := &Table{
		ID:     figID,
		Title:  fmt.Sprintf("Speedup over Scalar vs selectivity (n = %d)", n),
		Header: append([]string{"Selectivity"}, methodNames(methods)...),
	}
	for _, sel := range sels {
		a, b := datasets.GenPairSelectivity(rng, n, n, sel, uint32(16*n))
		base := timeOp(scalar.Prepare(a, b))
		row := []string{fmt.Sprintf("%.2f", sel)}
		for _, m := range methods {
			row = append(row, speedup(base, timeOp(m.Prepare(a, b))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ThreeWayDensity reproduces Fig. 10: 3-way intersection speedup over the
// scalar method as set density varies.
func ThreeWayDensity(figID string, n int, densities []float64, w simd.Width) *Table {
	rng := rand.New(rand.NewSource(10))
	kmethods := BaselineKMethods(w)[1:]
	kmethods = append(kmethods, FESIAKMethod("FESIA", core.Config{Width: w}))
	scalar := BaselineKMethods(w)[0]

	t := &Table{
		ID:     figID,
		Title:  fmt.Sprintf("3-way intersection speedup over Scalar vs density (n = %d)", n),
		Header: append([]string{"Density"}, kMethodNames(kmethods)...),
	}
	for _, d := range densities {
		sets := datasets.GenGroup(rng, 3, n, d)
		base := timeOp(scalar.Prepare(sets))
		row := []string{fmt.Sprintf("%.2f", d)}
		for _, m := range kmethods {
			row = append(row, speedup(base, timeOp(m.Prepare(sets))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SkewSweep reproduces Fig. 11: speedup over Scalar as the size ratio
// n1/n2 varies, with both FESIA strategies reported so the crossover at
// skew ≈ 1/4 is visible.
func SkewSweep(figID string, n2 int, skews []float64, w simd.Width, selectivity float64) *Table {
	rng := rand.New(rand.NewSource(11))
	cfg := core.Config{Width: w}
	methods := BaselineMethods(w)[1:]
	methods = append(methods,
		FESIAMethod("FESIAmerge", cfg),
		FESIAHashMethod("FESIAhash", cfg))
	scalar := ScalarMethod()

	t := &Table{
		ID:     figID,
		Title:  fmt.Sprintf("Speedup over Scalar vs skew n1/n2 (n2 = %d, selectivity %.2f)", n2, selectivity),
		Header: append([]string{"Skew"}, methodNames(methods)...),
	}
	for _, sk := range skews {
		n1 := int(float64(n2) * sk)
		if n1 < 1 {
			n1 = 1
		}
		r := int(selectivity * float64(n1))
		a, b := datasets.GenPair(rng, n1, n2, r, uint32(16*n2))
		base := timeOp(scalar.Prepare(a, b))
		row := []string{fmt.Sprintf("%d/%d", n1, n2)}
		for _, m := range methods {
			row = append(row, speedup(base, timeOp(m.Prepare(a, b))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func wTag(w simd.Width) string {
	switch w {
	case simd.WidthSSE:
		return "sse"
	case simd.WidthAVX:
		return "avx"
	default:
		return "avx512"
	}
}

func methodNames(ms []PairMethod) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

func kMethodNames(ms []KMethod) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}
