package experiments

import (
	"strings"
	"testing"

	"fesia/internal/datasets"
	"fesia/internal/simd"
)

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Rows:   [][]string{{"longvalue", "1"}, {"x", "22"}},
		Notes:  []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"demo", "LongHeader", "longvalue", "note: a note", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestSpeedupFormat(t *testing.T) {
	if got := speedup(200, 100); got != "2.00" {
		t.Errorf("speedup = %s", got)
	}
	if got := speedup(100, 0); got != "inf" {
		t.Errorf("speedup(x, 0) = %s", got)
	}
	if ms(1500000) != "1.500" {
		t.Error("ms format")
	}
	if us(1500) != "1.50" {
		t.Error("us format")
	}
}

// The driver smoke tests run each experiment at miniature scale and verify
// table shape; timing values just need to be present and parseable.

func TestKernelSpeedupsDriver(t *testing.T) {
	tbl := KernelSpeedups(simd.WidthSSE, "fig4")
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tbl.Rows))
	}
	if len(tbl.Header) != 8 || len(tbl.Rows[0]) != 8 {
		t.Fatalf("header/row width wrong: %d/%d", len(tbl.Header), len(tbl.Rows[0]))
	}
}

func TestVaryInputSizeDriver(t *testing.T) {
	tbl := VaryInputSize("fig7a", []int{2000, 4000}, []simd.Width{simd.WidthSSE, simd.WidthAVX})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Scalar + ScalarGalloping + SIMDGalloping + BMiss + Shuffling + 2 FESIA.
	if len(tbl.Header) != 1+7 {
		t.Fatalf("header = %v", tbl.Header)
	}
}

func TestSelectivitySweepDriver(t *testing.T) {
	tbl := SelectivitySweep("fig8", 3000, []float64{0, 0.5}, []simd.Width{simd.WidthAVX})
	if len(tbl.Rows) != 2 || len(tbl.Header) != 1+5 {
		t.Fatalf("shape: %d rows, header %v", len(tbl.Rows), tbl.Header)
	}
}

func TestThreeWayDensityDriver(t *testing.T) {
	tbl := ThreeWayDensity("fig10", 2000, []float64{0, 0.5}, simd.WidthAVX)
	if len(tbl.Rows) != 2 || len(tbl.Header) != 1+4 {
		t.Fatalf("shape: %d rows, header %v", len(tbl.Rows), tbl.Header)
	}
}

func TestSkewSweepDriver(t *testing.T) {
	tbl := SkewSweep("fig11", 4000, []float64{1.0 / 32, 1}, simd.WidthAVX, 0.1)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	found := false
	for _, h := range tbl.Header {
		if h == "FESIAhash" {
			found = true
		}
	}
	if !found {
		t.Error("SkewSweep must report FESIAhash")
	}
}

func TestDatabaseQueryTaskDriver(t *testing.T) {
	tbl, build := DatabaseQueryTask(datasets.CorpusConfig{
		NumDocs: 4000, NumItems: 2500, MeanLen: 30, Seed: 9,
	}, 5, simd.WidthAVX)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 scenarios", len(tbl.Rows))
	}
	if build <= 0 {
		t.Error("build time not measured")
	}
	labels := []string{"2 sets", "3 sets", "skew=0.1", "skew=0.05"}
	for i, want := range labels {
		if tbl.Rows[i][0] != want {
			t.Errorf("row %d label = %q, want %q", i, tbl.Rows[i][0], want)
		}
	}
}

func TestTriangleCountingTaskDriver(t *testing.T) {
	tbl := TriangleCountingTask(simd.WidthAVX, 0.02)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 graphs", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] == "0" {
			t.Errorf("graph %s has zero triangles", row[0])
		}
	}
}

func TestBreakdownSweepDriver(t *testing.T) {
	tbl := BreakdownSweep(5000, []float64{4, 16}, []int{8, 16}, simd.WidthAVX)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTable2Driver(t *testing.T) {
	tbl := Table2(20000)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "AVX512" || tbl.Rows[2][0] != "AVX512-stride8" {
		t.Errorf("row labels: %v", tbl.Rows)
	}
}

func TestTable3Driver(t *testing.T) {
	tbl := Table3(0.02)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 3 graphs + corpus", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "WebDocs-like" {
		t.Errorf("last row = %v", tbl.Rows[3])
	}
}
