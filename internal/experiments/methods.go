package experiments

import (
	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/simd"
)

// PairMethod is one intersection method prepared for a specific input pair.
// Prepare performs any offline work (FESIA set construction, hash table
// build) and returns a closure that executes one counting intersection —
// matching the paper's methodology of excluding construction from query
// time (Section VII-A, "the data structure of our approach is built offline").
type PairMethod struct {
	Name    string
	Prepare func(a, b []uint32) func() int
}

// ScalarMethod is the baseline all speedups are normalized against.
func ScalarMethod() PairMethod {
	return PairMethod{
		Name: "Scalar",
		Prepare: func(a, b []uint32) func() int {
			return func() int { return baselines.CountScalar(a, b) }
		},
	}
}

// BaselineMethods returns the paper's comparison methods at one ISA width:
// Scalar, ScalarGalloping, SIMDGalloping, BMiss, Shuffling (Section VII-A).
func BaselineMethods(w simd.Width) []PairMethod {
	return []PairMethod{
		ScalarMethod(),
		{
			Name: "ScalarGalloping",
			Prepare: func(a, b []uint32) func() int {
				return func() int { return baselines.CountScalarGalloping(a, b) }
			},
		},
		{
			Name: "SIMDGalloping",
			Prepare: func(a, b []uint32) func() int {
				return func() int { return baselines.CountSIMDGalloping(w, a, b) }
			},
		},
		{
			Name: "BMiss",
			Prepare: func(a, b []uint32) func() int {
				return func() int { return baselines.CountBMiss(a, b) }
			},
		},
		{
			Name: "Shuffling",
			Prepare: func(a, b []uint32) func() int {
				return func() int { return baselines.CountShuffling(w, a, b) }
			},
		},
	}
}

// FastMethod returns the Fast [4] bitmap intersection — FESIA's non-SIMD
// predecessor with the same O(n/√w + r) complexity. The paper lists it in
// Table I but omits it from the measured figures; it is used here in the
// ablation benchmarks to isolate the contribution of FESIA's SIMD design
// (segment transformation + specialized kernels) over the shared
// bitmap-pruning idea.
func FastMethod() PairMethod {
	return PairMethod{
		Name: "Fast",
		Prepare: func(a, b []uint32) func() int {
			fa := baselines.NewFastSet(a)
			fb := baselines.NewFastSet(b)
			return func() int { return baselines.CountFast(fa, fb) }
		},
	}
}

// FESIAMethod returns the two-step FESIA intersection (FESIAmerge) at a
// given configuration; construction happens in Prepare, and the measured
// closure runs on a per-method executor so query timings exclude scratch
// allocation.
func FESIAMethod(name string, cfg core.Config) PairMethod {
	return PairMethod{
		Name: name,
		Prepare: func(a, b []uint32) func() int {
			sa := core.MustNewSet(a, cfg)
			sb := core.MustNewSet(b, cfg)
			ex := core.NewExecutor()
			return func() int { return ex.CountMerge(sa, sb) }
		},
	}
}

// FESIAHashMethod returns the skewed-input strategy (FESIAhash).
func FESIAHashMethod(name string, cfg core.Config) PairMethod {
	return PairMethod{
		Name: name,
		Prepare: func(a, b []uint32) func() int {
			sa := core.MustNewSet(a, cfg)
			sb := core.MustNewSet(b, cfg)
			ex := core.NewExecutor()
			return func() int { return ex.CountHash(sa, sb) }
		},
	}
}

// FESIAWidthConfigs returns the named FESIA configurations evaluated in
// Fig. 7: one per emulated ISA.
func FESIAWidthConfigs() []struct {
	Name string
	Cfg  core.Config
} {
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"FESIAsse", core.Config{Width: simd.WidthSSE}},
		{"FESIAavx", core.Config{Width: simd.WidthAVX}},
		{"FESIAavx512", core.Config{Width: simd.WidthAVX512}},
	}
}

// KMethod is a k-way counting method over plain sorted sets.
type KMethod struct {
	Name    string
	Prepare func(sets [][]uint32) func() int
}

// BaselineKMethods returns the k-way baselines of Fig. 10.
func BaselineKMethods(w simd.Width) []KMethod {
	return []KMethod{
		{
			Name: "Scalar",
			Prepare: func(sets [][]uint32) func() int {
				return func() int { return baselines.CountScalarK(sets) }
			},
		},
		{
			Name: "ScalarGalloping",
			Prepare: func(sets [][]uint32) func() int {
				return func() int { return baselines.CountScalarGallopingK(sets) }
			},
		},
		{
			Name: "BMiss",
			Prepare: func(sets [][]uint32) func() int {
				return func() int { return baselines.CountBMissK(sets) }
			},
		},
		{
			Name: "Shuffling",
			Prepare: func(sets [][]uint32) func() int {
				return func() int { return baselines.CountShufflingK(w, sets) }
			},
		},
	}
}

// FESIAKMethod returns FESIA's k-way intersection with prebuilt sets. The
// measured closure holds its own executor, so the k-way chain buffers are
// allocated once during Prepare warm-up rather than inside the timed loop.
func FESIAKMethod(name string, cfg core.Config) KMethod {
	return KMethod{
		Name: name,
		Prepare: func(sets [][]uint32) func() int {
			built := make([]*core.Set, len(sets))
			for i, s := range sets {
				built[i] = core.MustNewSet(s, cfg)
			}
			ex := core.NewExecutor()
			return func() int { return ex.CountK(built...) }
		},
	}
}
