package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/graph"
	"fesia/internal/invindex"
	"fesia/internal/simd"
)

// DatabaseQueryTask reproduces Fig. 12: conjunctive keyword queries over a
// WebDocs-like corpus, with 2-set and 3-set queries (top panel) and skewed
// 2-set queries at size ratios 0.1 and 0.05 (bottom panel). Reported values
// are speedups over the Scalar method, averaged over the query batch.
func DatabaseQueryTask(corpusCfg datasets.CorpusConfig, nQueries int, w simd.Width) (*Table, time.Duration) {
	start := time.Now()
	corpus := datasets.NewCorpus(corpusCfg)
	ix, err := invindex.FromCorpus(corpus, core.Config{Width: w})
	if err != nil {
		panic(err)
	}
	buildTime := time.Since(start)

	rng := rand.New(rand.NewSource(12))
	t := &Table{
		ID:     "fig12",
		Title:  "Database query task: speedup over Scalar (WebDocs-like corpus)",
		Header: []string{"Scenario", "Shuffling", "BMiss", "SIMDGalloping", "FESIA"},
		Notes: []string{
			fmt.Sprintf("corpus: %d docs, %d distinct items, index build %.2fs",
				corpus.NumDocs, corpus.DistinctItems(), buildTime.Seconds()),
		},
	}

	scenario := func(label string, queries []datasets.Query) {
		itemLists := make([][][]uint32, len(queries))
		itemIDs := make([][]uint32, len(queries))
		for i, q := range queries {
			itemLists[i] = q.Postings
			itemIDs[i] = q.Items
		}
		base := timeOp(func() int {
			n := 0
			for _, lists := range itemLists {
				n += baselines.CountScalarK(lists)
			}
			return n
		})
		shuf := timeOp(func() int {
			n := 0
			for _, lists := range itemLists {
				n += baselines.CountShufflingK(w, lists)
			}
			return n
		})
		bmiss := timeOp(func() int {
			n := 0
			for _, lists := range itemLists {
				n += baselines.CountBMissK(lists)
			}
			return n
		})
		gallop := timeOp(func() int {
			n := 0
			for _, lists := range itemLists {
				if len(lists) == 2 {
					n += baselines.CountSIMDGalloping(w, lists[0], lists[1])
				} else {
					n += baselines.CountScalarGallopingK(lists)
				}
			}
			return n
		})
		fesiaT := timeOp(func() int {
			n := 0
			for _, items := range itemIDs {
				n += ix.QueryCount(items...)
			}
			return n
		})
		t.Rows = append(t.Rows, []string{
			label,
			speedup(base, shuf),
			speedup(base, bmiss),
			speedup(base, gallop),
			speedup(base, fesiaT),
		})
	}

	scenario("2 sets", corpus.SampleQueries(rng, nQueries, 2, 64, 0.2, 0))
	scenario("3 sets", corpus.SampleQueries(rng, nQueries, 3, 64, 0.2, 0))
	scenario("skew=0.1", corpus.SampleQueries(rng, nQueries, 2, 32, 0.2, 0.1))
	scenario("skew=0.05", corpus.SampleQueries(rng, nQueries, 2, 32, 0.2, 0.05))
	return t, buildTime
}

// TriangleCountingTask reproduces Fig. 13: triangle counting speedup over
// the Scalar method on the three standard graphs, including FESIA's
// multicore scaling at 4 and 8 cores.
func TriangleCountingTask(w simd.Width, scale float64) *Table {
	t := &Table{
		ID:    "fig13",
		Title: "Triangle counting: speedup over Scalar",
		Header: []string{"Graph", "Nodes", "Edges", "Triangles",
			"Shuffling", "FESIA", "FESIA4core", "FESIA8core", "BuildTime"},
	}
	for _, sg := range datasets.StandardGraphs() {
		cfg := sg.Cfg
		if scale != 1 {
			cfg.Nodes = int(float64(cfg.Nodes) * scale)
			if cfg.Nodes < 100 {
				cfg.Nodes = 100
			}
		}
		g := datasets.NewGraph(cfg)
		csr := graph.FromEdges(g.Nodes, g.Edges)
		oriented := csr.Oriented()

		buildStart := time.Now()
		fg, err := graph.BuildFesia(oriented, core.Config{Width: w})
		if err != nil {
			panic(err)
		}
		buildTime := time.Since(buildStart)

		var triangles int64
		base := timeOp(func() int {
			triangles = graph.CountTriangles(oriented, baselines.CountScalar)
			return int(triangles)
		})
		shuf := timeOp(func() int {
			return int(graph.CountTriangles(oriented, func(a, b []uint32) int {
				return baselines.CountShuffling(w, a, b)
			}))
		})
		fesia1 := timeOp(func() int { return int(fg.CountTriangles(1)) })
		fesia4 := timeOp(func() int { return int(fg.CountTriangles(4)) })
		fesia8 := timeOp(func() int { return int(fg.CountTriangles(8)) })

		t.Rows = append(t.Rows, []string{
			sg.Name,
			fmt.Sprintf("%d", g.Nodes),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", triangles),
			speedup(base, shuf),
			speedup(base, fesia1),
			speedup(base, fesia4),
			speedup(base, fesia8),
			fmt.Sprintf("%.3fs", buildTime.Seconds()),
		})
	}
	return t
}
