// Package experiments contains the drivers that regenerate every table and
// figure of the FESIA paper's evaluation (Section VII). Each driver returns
// a formatted Table whose rows mirror the series the paper plots; the
// cmd/fesiabench binary prints them, and the repository-root benchmarks
// reuse the same workload builders.
//
// Absolute numbers are not expected to match the paper (the vector ISA is
// emulated — see DESIGN.md); the shapes are: which method wins, how speedups
// move with selectivity, skew, density and core count, and where the
// FESIAmerge/FESIAhash crossover falls.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig7a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Sink receives benchmark results so the compiler cannot eliminate the
// measured work.
var Sink int64

// timeOp measures one call of f in nanoseconds, growing the iteration count
// until the sample is long enough to be stable.
func timeOp(f func() int) time.Duration {
	Sink += int64(f()) // warm-up
	iters := 1
	for {
		start := time.Now()
		acc := 0
		for i := 0; i < iters; i++ {
			acc += f()
		}
		elapsed := time.Since(start)
		Sink += int64(acc)
		if elapsed >= 20*time.Millisecond || iters >= 1<<22 {
			return elapsed / time.Duration(iters)
		}
		iters *= 2
	}
}

// speedup formats t_base / t_method with two decimals.
func speedup(base, method time.Duration) string {
	if method <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(base)/float64(method))
}

// ms formats a duration as milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// us formats a duration as microseconds with two decimals.
func us(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3)
}
