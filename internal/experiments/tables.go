package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/icachesim"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// BreakdownSweep reproduces Fig. 14: how time splits between step 1 (bitmap
// intersection) and step 2 (segment intersection) as the bitmap size m and
// segment size s vary. Inputs are two equal sets with selectivity zero, as
// in the paper (input set size 200 kB ≈ 50K uint32 elements).
func BreakdownSweep(n int, scales []float64, segBits []int, w simd.Width) *Table {
	rng := rand.New(rand.NewSource(14))
	a, b := datasets.GenPairSelectivity(rng, n, n, 0, uint32(64*n))

	t := &Table{
		ID:    "fig14",
		Title: fmt.Sprintf("Performance breakdown vs bitmap size (m = scale*n) and segment size (n = %d, selectivity 0)", n),
		Header: []string{"Scale", "SegBits", "BitmapBits", "Step1(us)", "Step2(us)",
			"Step1%", "SegPairs"},
	}
	for _, scale := range scales {
		for _, s := range segBits {
			cfg := core.Config{Width: w, Scale: scale, SegBits: s}
			sa := core.MustNewSet(a, cfg)
			sb := core.MustNewSet(b, cfg)
			// Median-of-several to stabilize the split.
			var bd core.Breakdown
			var best time.Duration
			for i := 0; i < 5; i++ {
				cur := core.CountMergeBreakdown(sa, sb)
				total := cur.BitmapTime + cur.SegmentTime
				if i == 0 || total < best {
					best = total
					bd = cur
				}
			}
			total := bd.BitmapTime + bd.SegmentTime
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(bd.BitmapTime) / float64(total)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", scale),
				fmt.Sprintf("%d", s),
				fmt.Sprintf("%d", sa.BitmapBits()),
				us(bd.BitmapTime),
				us(bd.SegmentTime),
				fmt.Sprintf("%.1f", pct),
				fmt.Sprintf("%d", bd.SegPairs),
			})
		}
	}
	return t
}

// Table2 reproduces Table II: modelled code size and simulated L1
// instruction-cache misses for the full, stride-4 and stride-8 AVX512
// kernel libraries, replaying the dispatch traces of several synthetic
// intersection workloads.
//
// The workloads use a dense bitmap (few bits per element) so segments hold
// many elements and dispatches spread across the whole range of kernel
// sizes — the regime where the full kernel library overflows the L1i, which
// is exactly the situation Section VI's stride sampling addresses.
func Table2(n int) *Table {
	rng := rand.New(rand.NewSource(2))
	cfg := core.Config{Width: simd.WidthAVX512, Scale: 1.5}
	var trace [][2]int
	for pair := 0; pair < 4; pair++ {
		a, b := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
		sa := core.MustNewSet(a, cfg)
		sb := core.MustNewSet(b, cfg)
		trace = append(trace, core.DispatchTrace(sa, sb)...)
	}

	t := &Table{
		ID:     "table2",
		Title:  "L1 instruction cache model: AVX512 kernel libraries (synthetic trace)",
		Header: []string{"SIMD Kernels", "Kernels", "CodeSize(bytes)", "L1i misses", "MissReduction"},
		Notes: []string{
			fmt.Sprintf("trace: %d kernel dispatches from a %d-element pair; 32KiB/64B/8-way LRU model", len(trace), n),
			"code sizes come from the generator's instruction cost model (DESIGN.md)",
		},
	}
	var fullMisses int
	for _, row := range []struct {
		name   string
		stride int
	}{
		{"AVX512", 1},
		{"AVX512-stride4", 4},
		{"AVX512-stride8", 8},
	} {
		tbl := kernels.ForStride(row.stride)
		layout := icachesim.NewLayout(tbl)
		cache := icachesim.New(32*1024, 64, 8)
		misses := layout.Replay(cache, trace)
		if row.stride == 1 {
			fullMisses = misses
		}
		reduction := "-"
		if row.stride != 1 && fullMisses > 0 {
			reduction = fmt.Sprintf("%.0f%%", 100*(1-float64(misses)/float64(fullMisses)))
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", layout.NumKernels()),
			fmt.Sprintf("%d", layout.CodeBytes()),
			fmt.Sprintf("%d", misses),
			reduction,
		})
	}
	return t
}

// Table3 reproduces Table III: the graph datasets with node/edge counts and
// FESIA construction time, plus the corpus row from the database task.
func Table3(scale float64) *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Dataset details and construction time",
		Header: []string{"Dataset", "Nodes/Docs", "Edges/Items", "ConstructionTime"},
	}
	for _, sg := range datasets.StandardGraphs() {
		cfg := sg.Cfg
		if scale != 1 {
			cfg.Nodes = int(float64(cfg.Nodes) * scale)
			if cfg.Nodes < 100 {
				cfg.Nodes = 100
			}
		}
		g := datasets.NewGraph(cfg)
		start := time.Now()
		sets := make([]*core.Set, 0, g.Nodes)
		adj := adjacency(g)
		for v := 0; v < g.Nodes; v++ {
			sets = append(sets, core.MustNewSet(adj[v], core.DefaultConfig()))
		}
		el := time.Since(start)
		Sink += int64(len(sets))
		t.Rows = append(t.Rows, []string{
			sg.Name,
			fmt.Sprintf("%d", g.Nodes),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%.3fs", el.Seconds()),
		})
	}
	corpusCfg := datasets.CorpusConfig{
		NumDocs:  int(20000 * scale),
		NumItems: int(50000 * scale),
		MeanLen:  30,
		Seed:     3,
	}
	start := time.Now()
	corpus := datasets.NewCorpus(corpusCfg)
	built := 0
	for _, lst := range corpus.Postings {
		core.MustNewSet(lst, core.DefaultConfig())
		built++
	}
	el := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"WebDocs-like",
		fmt.Sprintf("%d", corpus.NumDocs),
		fmt.Sprintf("%d", corpus.DistinctItems()),
		fmt.Sprintf("%.3fs", el.Seconds()),
	})
	return t
}

func adjacency(g *datasets.Graph) [][]uint32 {
	adj := make([][]uint32, g.Nodes)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}
