package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestOverloadErrorIs(t *testing.T) {
	for _, e := range []error{errQueueFull, errQueueWait, errShed} {
		if !errors.Is(e, ErrOverload) {
			t.Errorf("%v does not match ErrOverload", e)
		}
	}
	if errors.Is(ErrShuttingDown, ErrOverload) {
		t.Error("ErrShuttingDown must not match ErrOverload")
	}
	var oe *OverloadError
	if !errors.As(errQueueWait, &oe) || oe.Reason != ReasonQueueWait {
		t.Errorf("errQueueWait reason = %v", oe)
	}
}

func TestLimiterFastPath(t *testing.T) {
	l := newLimiter(2, 4, time.Second)
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		s, err := l.acquire(context.Background(), nil)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if s < 0 || s >= 2 || seen[s] {
			t.Fatalf("acquire %d: slot %d invalid or reused", i, s)
		}
		seen[s] = true
	}
	l.release(0)
	if s, err := l.acquire(context.Background(), nil); err != nil || s != 0 {
		t.Fatalf("re-acquire: slot %d err %v", s, err)
	}
}

func TestLimiterQueueFull(t *testing.T) {
	l := newLimiter(1, 1, time.Minute)
	if _, err := l.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := l.acquire(context.Background(), nil)
		errc <- err
	}()
	for i := 0; l.queued.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.acquire(context.Background(), nil); !errors.Is(err, ErrOverload) {
		t.Fatalf("over-depth acquire: err = %v, want overload", err)
	}
	l.release(0)
	wg.Wait()
	if err := <-errc; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestLimiterQueueWait(t *testing.T) {
	l := newLimiter(1, 4, 20*time.Millisecond)
	if _, err := l.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	_, err := l.acquire(context.Background(), nil)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQueueWait {
		t.Fatalf("err = %v, want queue_wait", err)
	}
	if got := l.queued.Load(); got != 0 {
		t.Fatalf("queued gauge after timeout = %d, want 0", got)
	}
}

func TestLimiterCtxCancel(t *testing.T) {
	l := newLimiter(1, 4, time.Minute)
	if _, err := l.acquire(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := l.acquire(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

func TestLimiterDrain(t *testing.T) {
	l := newLimiter(3, 4, time.Minute)
	s, err := l.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- l.drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a slot held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	l.release(s)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("drain never finished after release")
	}
	// After drain, nothing is admitted.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := l.acquire(ctx, nil); err == nil {
		t.Fatal("acquire succeeded after drain")
	}
}
