package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fesia/internal/core"
	"fesia/internal/stats"
	"fesia/internal/testutil"
)

// corpusSnapshot serializes lists through the real snapshot writer, so the
// chaos tests inject faults into exactly the bytes a production swap reads.
func corpusSnapshot(t *testing.T, lists [][]uint32) []byte {
	t.Helper()
	sets, err := core.NewSetBatch(lists, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := core.WriteCorpus(&buf, sets); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSwapFaultsLeaveOldCorpusServing is the all-or-nothing contract: a
// snapshot stream that truncates or dies at ANY offset must fail the swap
// with an error, leave the generation unbumped, and keep the old corpus
// answering queries exactly as before.
func TestSwapFaultsLeaveOldCorpusServing(t *testing.T) {
	a := genLists(8, 200, 0.2, 20)
	b := genLists(8, 200, 0.2, 21)
	tier, err := NewTier(a, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Shutdown(context.Background())
	q := []uint32{1, 2}
	want := bruteCount(a, q)
	snap := corpusSnapshot(t, b)

	faults := 0
	testutil.ForEachReadFault(snap, 97, func(desc string, r io.Reader) {
		faults++
		if _, err := tier.SwapFromReader(context.Background(), r); err == nil {
			t.Fatalf("%s: faulty swap reported success", desc)
		}
		if gen := tier.Generation(); gen != 0 {
			t.Fatalf("%s: generation bumped to %d by a failed swap", desc, gen)
		}
		got, err := tier.QueryCount(context.Background(), q...)
		if err != nil || got != want {
			t.Fatalf("%s: old corpus damaged: got %d (err %v), want %d", desc, got, err, want)
		}
	})
	if faults == 0 {
		t.Fatal("fault sweep ran zero cases")
	}
	if got := ctr(tier, stats.CtrServeSwapErrors); got != uint64(faults) {
		t.Fatalf("swap_errors = %d, want %d", got, faults)
	}

	// Corruption (flipped byte) must also fail closed. Sample positions.
	testutil.ForEachByteFlip(snap, func(pos int, corrupted []byte) {
		if pos%131 != 0 {
			return
		}
		if _, err := tier.SwapFromReader(context.Background(), bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("flip@%d: corrupted swap reported success", pos)
		}
	})

	// The intact snapshot still swaps cleanly afterwards.
	if _, err := tier.SwapFromReader(context.Background(), bytes.NewReader(snap)); err != nil {
		t.Fatalf("clean swap after fault sweep: %v", err)
	}
	if got, _ := tier.QueryCount(context.Background(), q...); got != bruteCount(b, q) {
		t.Fatalf("after clean swap: got %d, want %d", got, bruteCount(b, q))
	}
}

// TestTierChaosStress is the -race stress: concurrent queries, hot swaps
// between two corpora, and aggressive deadlines, all at once. Every
// successful count must match one of the two corpora; the only acceptable
// errors are overload, deadline/cancel, and shutdown.
func TestTierChaosStress(t *testing.T) {
	a := genLists(16, 400, 0.2, 22)
	b := genLists(16, 400, 0.2, 23)
	tier, err := NewTier(a, Config{
		Shards:        3,
		MaxConcurrent: 4,
		MaxQueue:      4,
		MaxQueueWait:  5 * time.Millisecond,
		ShedInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := []uint32{1, 2}
	wantA, wantB := bruteCount(a, q), bruteCount(b, q)
	if wantA == wantB {
		t.Fatalf("corpora indistinguishable for %v", q)
	}

	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	var ok, overloaded, expired atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				got, err := tier.QueryCount(ctx, q...)
				cancel()
				switch {
				case err == nil:
					if got != wantA && got != wantB {
						t.Errorf("count %d matches neither corpus (%d / %d)", got, wantA, wantB)
					}
					ok.Add(1)
				case errors.Is(err, ErrOverload):
					overloaded.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					expired.Add(1)
				case errors.Is(err, ErrShuttingDown):
					return
				default:
					t.Errorf("unexpected query error: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			src := a
			if i%2 == 0 {
				src = b
			}
			if _, err := tier.Swap(context.Background(), src); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no query ever succeeded under chaos")
	}
	t.Logf("chaos: %d ok, %d overloaded, %d expired, gen %d",
		ok.Load(), overloaded.Load(), expired.Load(), tier.Generation())
	if err := tier.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after chaos: %v", err)
	}
}
