package serve

import (
	"context"
	"fmt"

	"fesia/internal/core"
)

// Sharding. The corpus — posting list per item, document IDs as elements —
// is partitioned by *document*: shard k of N owns every document with
// id % N == k, holding its own FESIA set per item built over just those
// documents. A conjunctive query is then embarrassingly parallel: every
// shard answers the full query over its document subset independently and
// the gather step sums the counts. (Partitioning by item would instead
// scatter one query's sets across shards and force cross-shard
// intersection.) Each shard's sets are built with core.NewSetBatch, so a
// shard is one contiguous arena — the scatter parts touch disjoint memory.
//
// Executors are NOT part of a shard: they carry only query scratch, so the
// tier owns a fixed (shard × admission-slot) matrix of them that survives
// hot swaps. An admitted query holds slot s exclusively and part p of its
// scatter touches only executor [p][s] — single-writer discipline by
// construction, extending the PR-4 stats-shard ownership model to the
// serving layer with zero locks on the query path.

// shardSets is one shard's immutable data: the per-item FESIA sets over the
// shard's document subset. Index = item id; every item has a set (possibly
// empty), so the query path is a bounds check away from its set.
type shardSets struct {
	sets []*core.Set
}

// epoch is one generation of the corpus: the sharded sets plus the drain
// group that lets the swap path retire it only after in-flight queries
// finish. Executors live on the tier, not here — an epoch is pure data.
type epoch struct {
	shards []*shardSets
	drain  *core.DrainGroup
	gen    uint64
}

// buildEpoch partitions lists (posting list per item, sorted doc IDs) into
// nshards document shards and builds every shard's sets. Any build error
// aborts the whole epoch — the swap path's all-or-nothing contract.
func buildEpoch(lists [][]uint32, nshards int, cfg core.Config, gen uint64) (*epoch, error) {
	e := &epoch{
		shards: make([]*shardSets, nshards),
		drain:  core.NewDrainGroup(),
		gen:    gen,
	}
	// Partition every posting list once, appending each doc to its shard's
	// copy. Sorted inputs stay sorted per shard.
	parts := make([][][]uint32, nshards)
	for k := range parts {
		parts[k] = make([][]uint32, len(lists))
	}
	for item, docs := range lists {
		for _, d := range docs {
			k := int(d) % nshards
			parts[k][item] = append(parts[k][item], d)
		}
	}
	for k := range parts {
		sets, err := core.NewSetBatch(parts[k], cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: building shard %d/%d: %w", k, nshards, err)
		}
		e.shards[k] = &shardSets{sets: sets}
	}
	return e, nil
}

// queryShard answers one conjunctive query over a single shard's documents,
// on the executor pinned to (shard, slot). setsBuf is that pin's reusable
// set-pointer scratch. The dispatch mirrors invindex.QueryCountExecCtx:
// two-keyword queries take the adaptive merge/hash pair path, larger ones
// the k-way chain, and both propagate the deadline into the *Ctx
// checkpoints.
func queryShard(ctx context.Context, sd *shardSets, ex *core.Executor, setsBuf *[]*core.Set, items []uint32) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sets := (*setsBuf)[:0]
	for _, it := range items {
		if int(it) >= len(sd.sets) {
			return 0, nil // unknown item: conjunctive count is zero
		}
		sets = append(sets, sd.sets[it])
	}
	*setsBuf = sets
	switch len(sets) {
	case 0:
		return 0, nil
	case 1:
		return sets[0].Len(), nil
	case 2:
		return ex.CountCtx(ctx, sets[0], sets[1])
	default:
		return ex.CountKCtx(ctx, sets...)
	}
}
