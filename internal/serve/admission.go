package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fesia/internal/stats"
)

// Admission control. The tier bounds concurrent query execution with a slot
// semaphore: an admitted query holds one slot id in [0, MaxConcurrent) for
// its whole execution, and the slot id doubles as the index pinning the
// query to one executor per shard (see shard.go) — admission is what makes
// the single-writer executor discipline hold without locks.
//
// Requests beyond the concurrency limit wait in a bounded queue. Two budgets
// cut the queue off: depth (more than MaxQueue waiters => immediate reject)
// and time (a waiter that cannot get a slot within MaxQueueWait is rejected
// rather than serving a reply nobody is still waiting for). Both reject with
// a typed *OverloadError so the HTTP layer can map overload to 503 +
// Retry-After while real failures stay 5xx.

// ErrOverload is the sentinel matched by errors.Is for every admission or
// shedding rejection. Inspect the *OverloadError for the specific reason.
var ErrOverload = errors.New("serve: overloaded")

// ErrShuttingDown is returned for queries arriving after Shutdown began.
var ErrShuttingDown = errors.New("serve: shutting down")

// Overload reasons.
const (
	ReasonQueueFull = "queue_full" // admission queue at MaxQueue depth
	ReasonQueueWait = "queue_wait" // queued longer than MaxQueueWait
	ReasonShed      = "shed"       // dropped by the latency-driven shedder
)

// OverloadError is the typed rejection of the admission and shedding layers.
// errors.Is(err, ErrOverload) matches every variant.
type OverloadError struct {
	Reason string // ReasonQueueFull, ReasonQueueWait or ReasonShed
}

func (e *OverloadError) Error() string { return fmt.Sprintf("serve: overloaded (%s)", e.Reason) }

// Is makes every OverloadError match the ErrOverload sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// Pre-allocated rejections: the overload path must not allocate per request —
// that is exactly when allocation pressure hurts most.
var (
	errQueueFull = &OverloadError{Reason: ReasonQueueFull}
	errQueueWait = &OverloadError{Reason: ReasonQueueWait}
	errShed      = &OverloadError{Reason: ReasonShed}
)

// limiter is the slot semaphore plus bounded wait queue.
type limiter struct {
	slots    chan int // buffered with every slot id; receive = admit
	queued   atomic.Int64
	maxQueue int64
	maxWait  time.Duration

	drainMu   sync.Mutex // serializes drain; guards reclaimed
	reclaimed int        // slots already collected by drain
}

func newLimiter(slots, maxQueue int, maxWait time.Duration) *limiter {
	l := &limiter{
		slots:    make(chan int, slots),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
	for i := 0; i < slots; i++ {
		l.slots <- i
	}
	return l
}

func (l *limiter) capacity() int { return cap(l.slots) }

// acquire admits the caller, returning its exclusive slot id. It fails with
// *OverloadError when the queue is full or the wait budget expires, and with
// ctx.Err() when the request's own deadline fires first. sink (nil ok)
// receives the queue-depth gauge pair and is written from arbitrary
// goroutines, so it uses the multi-writer shard.
func (l *limiter) acquire(ctx context.Context, sink *stats.Sink) (int, error) {
	select {
	case s := <-l.slots:
		return s, nil
	default:
	}
	// Slow path: join the bounded queue.
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return 0, errQueueFull
	}
	if sink != nil {
		sink.Inc(stats.CtrServeQueueEnter)
	}
	defer func() {
		l.queued.Add(-1)
		if sink != nil {
			sink.Inc(stats.CtrServeQueueExit)
		}
	}()
	timer := time.NewTimer(l.maxWait)
	defer timer.Stop()
	select {
	case s := <-l.slots:
		return s, nil
	case <-timer.C:
		return 0, errQueueWait
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// release returns a slot to the semaphore.
func (l *limiter) release(slot int) { l.slots <- slot }

// drain collects every slot, so no query is in flight once it returns; used
// by Shutdown. Slots are not returned — after drain the limiter admits
// nothing, which is exactly the shut-down state. Resumable: a drain cut off
// by ctx keeps what it collected, and the next call only waits for the rest.
func (l *limiter) drain(ctx context.Context) error {
	l.drainMu.Lock()
	defer l.drainMu.Unlock()
	for l.reclaimed < cap(l.slots) {
		select {
		case <-l.slots:
			l.reclaimed++
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
