package serve

import (
	"math"
	"testing"
	"time"

	"fesia/internal/stats"
)

// addObs appends n observations in the bucket whose upper edge is d to a
// cumulative histogram, mimicking what the sink's Observe would record.
func addObs(l *stats.LatencyStats, n uint64, d time.Duration) {
	bucket := 0
	for time.Duration(uint64(1)<<uint(bucket)) < d {
		bucket++
	}
	l.Buckets[bucket] += n
	l.Count += n
	l.SumNanos += n * uint64(d.Nanoseconds())
}

func TestShedderGrowsOnBreachAndDecays(t *testing.T) {
	s := newShedder(time.Millisecond, 0.95, 10)
	var cum stats.LatencyStats
	s.tick(cum) // establish baseline
	if s.fraction() != 0 {
		t.Fatalf("initial fraction = %v", s.fraction())
	}

	// Sustained breach: 100 slow queries per window, far above target.
	for i := 0; i < 10; i++ {
		addObs(&cum, 100, 10*time.Millisecond)
		s.tick(cum)
	}
	if got := s.fraction(); got != 0.95 {
		t.Fatalf("fraction after sustained breach = %v, want cap 0.95", got)
	}

	// Recovery: fast queries well under 0.8x target.
	for i := 0; i < 40 && s.fraction() > 0; i++ {
		addObs(&cum, 100, 100*time.Microsecond)
		s.tick(cum)
	}
	if got := s.fraction(); got != 0 {
		t.Fatalf("fraction after recovery = %v, want 0", got)
	}
}

func TestShedderIgnoresSparseWindows(t *testing.T) {
	s := newShedder(time.Millisecond, 0.95, 50)
	var cum stats.LatencyStats
	s.tick(cum)
	// 5 slow observations < minSamples: must not trigger growth.
	addObs(&cum, 5, 10*time.Millisecond)
	s.tick(cum)
	if got := s.fraction(); got != 0 {
		t.Fatalf("fraction grew on a sparse window: %v", got)
	}
}

func TestShedderSparseWindowsDecayActiveShedding(t *testing.T) {
	s := newShedder(time.Millisecond, 0.95, 50)
	var cum stats.LatencyStats
	s.tick(cum)
	addObs(&cum, 100, 10*time.Millisecond)
	s.tick(cum)
	start := s.fraction()
	if start == 0 {
		t.Fatal("breach did not start shedding")
	}
	// Silence (no admitted queries) must slowly release the brake.
	for i := 0; i < 200 && s.fraction() > 0; i++ {
		s.tick(cum)
	}
	if got := s.fraction(); got != 0 {
		t.Fatalf("fraction never decayed through silent windows: %v", got)
	}
}

func TestShouldShedRespectsFraction(t *testing.T) {
	s := newShedder(time.Millisecond, 0.95, 10)
	for i := 0; i < 1000; i++ {
		if s.shouldShed() {
			t.Fatal("shed at fraction 0")
		}
	}
	s.frac.Store(math.Float64bits(1.0))
	for i := 0; i < 1000; i++ {
		if !s.shouldShed() {
			t.Fatal("passed at fraction 1")
		}
	}
	// At 0.5 both outcomes must occur.
	s.frac.Store(math.Float64bits(0.5))
	shed, passed := 0, 0
	for i := 0; i < 2000; i++ {
		if s.shouldShed() {
			shed++
		} else {
			passed++
		}
	}
	if shed == 0 || passed == 0 {
		t.Fatalf("fraction 0.5: shed=%d passed=%d, want both > 0", shed, passed)
	}
}

func TestDeltaLatency(t *testing.T) {
	var prev, cur stats.LatencyStats
	addObs(&prev, 10, time.Millisecond)
	cur = prev
	addObs(&cur, 5, 4*time.Millisecond)
	d := deltaLatency(prev, cur)
	if d.Count != 5 {
		t.Fatalf("delta count = %d, want 5", d.Count)
	}
	if q := d.Quantile(0.99); q < 4*time.Millisecond {
		t.Fatalf("window p99 = %v, want >= 4ms", q)
	}
	// Torn read (cur < prev) clamps to zero, never underflows.
	d = deltaLatency(cur, prev)
	if d.Count != 0 {
		t.Fatalf("torn delta count = %d, want 0", d.Count)
	}
}
