package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"fesia/internal/stats"
	"fesia/internal/trace"
)

// traceTier builds a tier over a moderate corpus with tracing enabled.
func traceTier(t *testing.T, shards int, cfg Config) (*Tier, [][]uint32) {
	t.Helper()
	lists := genLists(48, 4000, 0.2, 7)
	cfg.Shards = shards
	tier, err := NewTier(lists, cfg)
	if err != nil {
		t.Fatalf("NewTier: %v", err)
	}
	t.Cleanup(func() { tier.Shutdown(context.Background()) })
	return tier, lists
}

func TestTracerNilWhenDisabled(t *testing.T) {
	tier, _ := traceTier(t, 2, Config{})
	if tier.Tracer() != nil {
		t.Fatal("tracing off by default, but tier has a tracer")
	}
	n, capd, err := tier.QueryCountTraced(context.Background(), 1, 2)
	if err != nil {
		t.Fatalf("QueryCountTraced without tracer: %v", err)
	}
	if capd != nil {
		t.Fatalf("capture without tracer: %+v", capd)
	}
	if ctr(tier, stats.CtrTraceForced) != 0 {
		t.Fatal("forced counter bumped without tracer")
	}
	_ = n
}

// TestForcedCaptureBreakdown is the acceptance-criteria test: a forced
// capture returns a span breakdown whose stage durations (queue + scatter)
// sum to within 10% of the root span's end-to-end latency, and the
// per-shard spans carry the executor-level strategy detail.
func TestForcedCaptureBreakdown(t *testing.T) {
	tier, lists := traceTier(t, 3, Config{TraceSample: 0, SlowQuery: time.Hour})
	items := []uint32{2, 5, 9}
	want := bruteCount(lists, items)

	var capd *trace.Captured
	// Warm up, then capture a steady-state query (the first queries pay
	// build/warm-up noise that has nothing to do with stage attribution).
	for i := 0; i < 50; i++ {
		n, c, err := tier.QueryCountTraced(context.Background(), items...)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if n != want {
			t.Fatalf("query %d: count %d, want %d", i, n, want)
		}
		capd = c
	}
	if capd == nil || capd.Reason != "forced" {
		t.Fatalf("no forced capture: %+v", capd)
	}

	var root, queue, scatter *trace.Span
	shardSpans := 0
	strategySpans := 0
	for i := range capd.Spans {
		sp := &capd.Spans[i]
		switch sp.Kind {
		case "query":
			root = sp
		case "queue":
			queue = sp
		case "scatter":
			scatter = sp
		case "shard":
			shardSpans++
		case "strategy":
			strategySpans++
		}
	}
	if root == nil || queue == nil || scatter == nil {
		t.Fatalf("missing tier spans: %+v", capd.Spans)
	}
	if shardSpans != 3 {
		t.Fatalf("%d shard spans, want 3", shardSpans)
	}
	if strategySpans == 0 {
		t.Fatalf("no strategy spans in capture: %+v", capd.Spans)
	}
	if root.V1 != uint64(len(items)) || root.V2 != uint64(want) {
		t.Fatalf("root payload mismatch: %+v", root)
	}
	stages := queue.DurNs + scatter.DurNs
	if root.DurNs == 0 {
		t.Fatal("root span has zero duration")
	}
	diff := float64(root.DurNs) - float64(stages)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(root.DurNs) > 0.10 {
		t.Fatalf("stage sum %dns vs end-to-end %dns: gap %.1f%% > 10%%",
			stages, root.DurNs, 100*diff/float64(root.DurNs))
	}
}

// TestSlowShardForensics is the second acceptance-criteria test: one shard
// is deliberately slowed, and the straggler must be identifiable from the
// /debug/slow output — its shard span dominates the breakdown.
func TestSlowShardForensics(t *testing.T) {
	const laggard = 1
	tier, _ := traceTier(t, 3, Config{SlowQuery: 3 * time.Millisecond})
	tier.partDelay = func(shard int) {
		if shard == laggard {
			time.Sleep(8 * time.Millisecond)
		}
	}
	if _, err := tier.QueryCount(context.Background(), 2, 5); err != nil {
		t.Fatalf("query: %v", err)
	}

	rec := httptest.NewRecorder()
	tier.Tracer().SlowHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	var body struct {
		Slow []trace.SlowEntry `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/slow not JSON: %v", err)
	}
	if len(body.Slow) == 0 {
		t.Fatal("/debug/slow empty after a slow query")
	}
	e := body.Slow[0]
	if e.Reason != "slow" {
		t.Fatalf("slow entry reason %q, want slow", e.Reason)
	}
	// Find the slowest shard span; it must be the laggard, by a wide margin.
	slowest, slowestDur := -1, uint64(0)
	var otherMax uint64
	for _, sp := range e.Spans {
		if sp.Kind != "shard" {
			continue
		}
		if sp.DurNs > slowestDur {
			if slowest >= 0 && slowestDur > otherMax {
				otherMax = slowestDur
			}
			slowest, slowestDur = sp.Shard, sp.DurNs
		} else if sp.DurNs > otherMax {
			otherMax = sp.DurNs
		}
	}
	if slowest != laggard {
		t.Fatalf("slowest shard in /debug/slow is %d, want %d (spans: %+v)", slowest, laggard, e.Spans)
	}
	if slowestDur < uint64(8*time.Millisecond) || slowestDur < 2*otherMax {
		t.Fatalf("laggard shard %d not clearly identifiable: %dns vs next %dns",
			laggard, slowestDur, otherMax)
	}
	// And the per-shard matrix shows the same straggler without tracing.
	rows := tier.Stats().ServeShards
	if len(rows) != 3 {
		t.Fatalf("stats carry %d serve shards, want 3", len(rows))
	}
	if m := rows[laggard].Latency.Mean(); m < 8*time.Millisecond {
		t.Fatalf("shard matrix mean %v does not show the injected 8ms delay", m)
	}
}

func TestTraceRetentionCountersAndExemplars(t *testing.T) {
	tier, _ := traceTier(t, 2, Config{TraceSample: 4, SlowQuery: time.Hour})
	for i := 0; i < 32; i++ {
		if _, err := tier.QueryCount(context.Background(), 1, 3); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	snap := tier.Stats()
	// Sampling is per slot; with sequential queries all land on one slot —
	// but slot choice is whichever the semaphore hands out. Accept any
	// positive sample count bounded by total/4 rounded across slots.
	if got := ctr(tier, stats.CtrTraceSampled); got == 0 || got > 8 {
		t.Fatalf("sampled counter %d after 32 queries at 1-in-4", got)
	}
	if len(snap.ServeExemplars) == 0 {
		t.Fatal("no latency exemplars after sampled queries")
	}
	// Forced capture bumps its own counter.
	if _, _, err := tier.QueryCountTraced(context.Background(), 1, 3); err != nil {
		t.Fatalf("traced query: %v", err)
	}
	if got := ctr(tier, stats.CtrTraceForced); got != 1 {
		t.Fatalf("forced counter %d, want 1", got)
	}
}

func TestOverloadFlavorCounters(t *testing.T) {
	lists := genLists(16, 200, 0.2, 3)
	tier, err := NewTier(lists, Config{
		Shards: 1, MaxConcurrent: 1, MaxQueue: 1,
		MaxQueueWait: 5 * time.Millisecond, ShedTargetP99: -1,
	})
	if err != nil {
		t.Fatalf("NewTier: %v", err)
	}
	defer tier.Shutdown(context.Background())

	// Occupy the only slot.
	slot, err := tier.lim.acquire(context.Background(), nil)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// First waiter joins the queue and times out -> queue_wait.
	waitErr := make(chan error, 1)
	go func() {
		_, err := tier.QueryCount(context.Background(), 1)
		waitErr <- err
	}()
	// Give the waiter time to enter the queue, then overflow it -> queue_full.
	time.Sleep(2 * time.Millisecond)
	_, fullErr := tier.QueryCount(context.Background(), 1)
	var oe *OverloadError
	if !errors.As(fullErr, &oe) || oe.Reason != ReasonQueueFull {
		t.Fatalf("overflow rejection = %v, want queue_full", fullErr)
	}
	if err := <-waitErr; !errors.As(err, &oe) || oe.Reason != ReasonQueueWait {
		t.Fatalf("queued rejection = %v, want queue_wait", err)
	}
	tier.lim.release(slot)

	if got := ctr(tier, stats.CtrServeRejQueueFull); got != 1 {
		t.Fatalf("queue_full counter %d, want 1", got)
	}
	if got := ctr(tier, stats.CtrServeRejQueueWait); got != 1 {
		t.Fatalf("queue_wait counter %d, want 1", got)
	}
	if got := ctr(tier, stats.CtrServeRejected); got != 2 {
		t.Fatalf("aggregate rejected counter %d, want 2", got)
	}
}

// TestTraceZeroAllocWarm pins the tracing layer's warm allocation count on
// the whole serve path: a tier with tracing at default sampling must allocate
// exactly as much per warm query as a tier with tracing off (the baseline
// carries a few fixed allocations from the variadic query API and the pool
// join, none of which this PR added).
func TestTraceZeroAllocWarm(t *testing.T) {
	measure := func(cfg Config) float64 {
		lists := genLists(32, 2000, 0.2, 5)
		tier, err := NewTier(lists, cfg)
		if err != nil {
			t.Fatalf("NewTier: %v", err)
		}
		defer tier.Shutdown(context.Background())
		ctx := context.Background()
		for i := 0; i < 200; i++ { // warm executors, rings, slow log
			if _, err := tier.QueryCount(ctx, 2, 7); err != nil {
				t.Fatalf("warm-up query: %v", err)
			}
		}
		return testing.AllocsPerRun(300, func() {
			if _, err := tier.QueryCount(ctx, 2, 7); err != nil {
				t.Fatalf("query: %v", err)
			}
		})
	}
	off := measure(Config{Shards: 2, ShedTargetP99: -1})
	on := measure(Config{Shards: 2, ShedTargetP99: -1, TraceSample: 64, SlowQuery: 20 * time.Millisecond})
	if on != off {
		t.Fatalf("tracing on allocates %.2f per warm query vs %.2f off; tracing must add 0", on, off)
	}
}

func TestTracedQueryMatchesBrute(t *testing.T) {
	tier, lists := traceTier(t, 4, Config{TraceSample: 2, SlowQuery: time.Millisecond})
	queries := [][]uint32{{1}, {2, 6}, {3, 8, 12}, {4, 9, 14, 21}}
	for _, q := range queries {
		n, _, err := tier.QueryCountTraced(context.Background(), q...)
		if err != nil {
			t.Fatalf("query %v: %v", q, err)
		}
		if want := bruteCount(lists, q); n != want {
			t.Fatalf("query %v: count %d, want %d", q, n, want)
		}
	}
	// Every forced query is retained; /debug/traces must assemble them.
	traces := tier.Tracer().Traces(0)
	if len(traces) < len(queries) {
		t.Fatalf("assembled %d traces, want >= %d", len(traces), len(queries))
	}
}
