package serve

import (
	"math"
	"sync/atomic"
	"time"

	"fesia/internal/stats"
)

// Load shedding. Admission control bounds *concurrency*, but a workload
// shift (bigger queries, slower machine) can saturate the slots themselves:
// every query then pays the full queue wait and tail latency climbs toward
// the wait budget. The shedder closes that loop with the PR-4 latency
// histograms: a background tick computes the p99 of admitted queries over
// the last window (the delta between two cumulative LatServe snapshots) and
// steers a drop probability — multiplicative increase while the target is
// breached, multiplicative decay once latency recovers, never exceeding
// MaxShedFraction so a trickle of traffic keeps probing the true latency.
// Shed requests are rejected before admission (no slot, no queue entry) with
// *OverloadError{ReasonShed}.
type shedder struct {
	target     time.Duration // p99 objective for admitted queries
	maxShed    float64       // ceiling on the drop fraction, < 1
	minSamples uint64        // windows with fewer admitted queries don't steer

	frac atomic.Uint64 // math.Float64bits of the current drop fraction
	rng  atomic.Uint64 // xorshift64 state for the per-request drop draw

	// prev is the cumulative LatServe histogram at the last tick. Owned by
	// the tick goroutine; no lock needed.
	prev stats.LatencyStats
}

func newShedder(target time.Duration, maxShed float64, minSamples int) *shedder {
	s := &shedder{target: target, maxShed: maxShed, minSamples: uint64(minSamples)}
	s.rng.Store(0x9E3779B97F4A7C15)
	return s
}

// fraction returns the current drop probability.
func (s *shedder) fraction() float64 { return math.Float64frombits(s.frac.Load()) }

// shouldShed draws one drop decision at the current fraction. Safe from any
// goroutine; the xorshift state is advanced with a CAS-free racy update —
// losing an occasional draw to a race only re-uses a random value, which is
// still random.
func (s *shedder) shouldShed() bool {
	f := s.fraction()
	if f <= 0 {
		return false
	}
	x := s.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng.Store(x)
	return float64(x>>11)/(1<<53) < f
}

// tick steers the drop fraction from the cumulative LatServe histogram. It
// subtracts the previous snapshot to get the last window's distribution and
// applies the increase/decay rule to its p99. Call from one goroutine.
func (s *shedder) tick(cur stats.LatencyStats) {
	window := deltaLatency(s.prev, cur)
	s.prev = cur
	if window.Count < s.minSamples {
		// Too few admitted queries to estimate a p99. If we are shedding
		// hard, that silence is itself a signal to keep probing: decay
		// slowly so traffic comes back after the overload passes.
		s.decay(0.9)
		return
	}
	p99 := window.Quantile(0.99)
	switch {
	case p99 > s.target:
		s.grow()
	case p99 < s.target*8/10:
		s.decay(0.7)
	}
}

// grow raises the drop fraction: doubling from a 5% floor reaches heavy
// shedding within a few windows of a sustained breach.
func (s *shedder) grow() {
	f := s.fraction()
	f = math.Max(0.05, f*2)
	if f > s.maxShed {
		f = s.maxShed
	}
	s.frac.Store(math.Float64bits(f))
}

// decay lowers the drop fraction by the given factor, snapping to zero below
// 1% so the steady state is exactly "no shedding".
func (s *shedder) decay(factor float64) {
	f := s.fraction() * factor
	if f < 0.01 {
		f = 0
	}
	s.frac.Store(math.Float64bits(f))
}

// deltaLatency returns cur - prev bucket-wise: the latency distribution of
// the window between two cumulative snapshots. Counters are monotonic, so
// saturating subtraction only triggers on torn reads, where clamping to zero
// is the safe reading.
func deltaLatency(prev, cur stats.LatencyStats) stats.LatencyStats {
	var d stats.LatencyStats
	d.Count = satSub(cur.Count, prev.Count)
	d.SumNanos = satSub(cur.SumNanos, prev.SumNanos)
	for i := range d.Buckets {
		d.Buckets[i] = satSub(cur.Buckets[i], prev.Buckets[i])
	}
	return d
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
