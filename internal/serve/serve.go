// Package serve is the sharded serving tier over the FESIA query engine:
// the robustness layer that turns per-query speed (PAPER.md Section VII-F)
// into served throughput that survives overload and reload.
//
// A Tier partitions the corpus into document shards, each with pinned
// executors and stats shards (extending the engine's single-writer
// discipline), and answers conjunctive queries by scatter-gather on the
// shared worker pool with deadline propagation into the cancellable query
// paths. Around that core sit four robustness mechanisms:
//
//   - admission control: a slot semaphore with a bounded wait queue,
//     rejecting with a typed *OverloadError once depth or wait budget is
//     exceeded (admission.go);
//   - load shedding: when the p99 of admitted queries breaches the target,
//     a growing fraction of incoming traffic is dropped before admission,
//     recovering when latency does (shed.go);
//   - hot snapshot swap: an atomic pointer flip to a freshly built corpus
//     epoch, the old one retired only after in-flight queries drain
//     (core.DrainGroup); a failed load leaves the old epoch serving;
//   - graceful shutdown: stop admitting, drain in-flight queries, leave the
//     stats sink consistent for a final flush.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fesia/internal/core"
	"fesia/internal/stats"
	"fesia/internal/trace"
)

// Config shapes a Tier. The zero value of every field selects a sensible
// default (see each field); the zero Config is usable.
type Config struct {
	// Shards is the number of document shards. Default: min(4, GOMAXPROCS).
	Shards int
	// MaxConcurrent bounds queries executing at once (the admission slots).
	// Default: 2 × GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; the MaxQueue+1st waiter
	// is rejected immediately. Default: 2 × MaxConcurrent.
	MaxQueue int
	// MaxQueueWait bounds how long one request may wait for a slot.
	// Default: 50ms.
	MaxQueueWait time.Duration
	// ShedTargetP99 is the latency objective steering the load shedder: the
	// windowed p99 of admitted queries above it grows the drop fraction.
	// Default: 25ms. Negative disables shedding.
	ShedTargetP99 time.Duration
	// ShedInterval is the shedder's control-loop period. Default: 100ms.
	ShedInterval time.Duration
	// ShedMinSamples is the fewest admitted queries per window that still
	// steer the shedder. Default: 32.
	ShedMinSamples int
	// MaxShedFraction caps the drop probability so some traffic always
	// probes the true latency. Default: 0.95.
	MaxShedFraction float64
	// Build is the FESIA build configuration for every shard's sets.
	// Zero value: core.DefaultConfig().
	Build core.Config
	// Pool runs the scatter parts. Default: core.SharedPool().
	Pool *core.Pool
	// TraceSample enables per-query tracing with head sampling: one query
	// in TraceSample per admission slot is retained into the trace rings.
	// 0 disables head sampling. Tracing as a whole is active when either
	// TraceSample or SlowQuery is set; when both are zero (the default) the
	// tier carries no tracer and every trace seam costs one nil check.
	TraceSample int
	// SlowQuery is the tail-capture threshold: every query whose
	// end-to-end latency (including admission wait) reaches it is retained
	// in full and appended to the bounded slow-query log. 0 disables tail
	// capture.
	SlowQuery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(4, runtime.GOMAXPROCS(0))
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 50 * time.Millisecond
	}
	if c.ShedTargetP99 == 0 {
		c.ShedTargetP99 = 25 * time.Millisecond
	}
	if c.ShedInterval <= 0 {
		c.ShedInterval = 100 * time.Millisecond
	}
	if c.ShedMinSamples <= 0 {
		c.ShedMinSamples = 32
	}
	if c.MaxShedFraction <= 0 || c.MaxShedFraction >= 1 {
		c.MaxShedFraction = 0.95
	}
	if c.Pool == nil {
		c.Pool = core.SharedPool()
	}
	return c
}

// gather is one admission slot's scatter-gather scratch: per-shard counts
// and errors, written only by the parts of the one query holding the slot.
type gather struct {
	counts []int
	errs   []error
}

// Tier is the sharded serving layer. Construct with NewTier; safe for
// concurrent use.
type Tier struct {
	cfg  Config
	lim  *limiter
	shed *shedder
	sink *stats.Sink

	// current corpus epoch, hot-swappable; see Swap.
	epoch atomic.Pointer[epoch]

	// exs[shard*MaxConcurrent+slot] is the executor pinned to that (shard,
	// slot) pair; setsBufs is its set-pointer scratch. Both survive swaps —
	// they hold query scratch, never corpus data.
	exs      []*core.Executor
	setsBufs [][]*core.Set
	gathers  []gather // per-slot scatter scratch

	// slotStats[slot] is the single-writer stats shard of the one query
	// holding that admission slot.
	slotStats []*stats.Shard

	// matrix is the per-(shard × slot) serve-metrics matrix behind the
	// `shard`-labelled Prometheus/expvar series; always on.
	matrix *stats.ServeMatrix

	// tracer is the per-query tracing layer; nil unless Config enabled it.
	// exemplars links LatServe buckets to retained trace IDs.
	tracer    *trace.Tracer
	exemplars *stats.ExemplarStore

	// partDelay is a test hook injecting latency into one scatter part —
	// how the slow-shard forensics tests fabricate a straggler.
	partDelay func(shard int)

	swapMu sync.Mutex // serializes Swap; gen is owned by it
	gen    uint64

	closed atomic.Bool
	stop   chan struct{} // closes the shed control loop
	tickWG sync.WaitGroup
}

// NewTier builds a tier over lists, the corpus as one sorted posting list of
// document IDs per item (index = item id; empty lists are fine). The global
// stats sink is used when enabled (fesia.EnableStats), so the tier's
// counters ride the process /metrics; otherwise a private sink still drives
// the load shedder.
func NewTier(lists [][]uint32, cfg Config) (*Tier, error) {
	cfg = cfg.withDefaults()
	t := &Tier{cfg: cfg, stop: make(chan struct{})}
	t.sink = core.StatsSink()
	if t.sink == nil {
		t.sink = stats.New()
	}
	e, err := buildEpoch(lists, cfg.Shards, cfg.Build, 0)
	if err != nil {
		return nil, err
	}
	t.epoch.Store(e)
	t.lim = newLimiter(cfg.MaxConcurrent, cfg.MaxQueue, cfg.MaxQueueWait)
	t.shed = newShedder(cfg.ShedTargetP99, cfg.MaxShedFraction, cfg.ShedMinSamples)
	t.exs = make([]*core.Executor, cfg.Shards*cfg.MaxConcurrent)
	t.setsBufs = make([][]*core.Set, len(t.exs))
	for i := range t.exs {
		ex := core.NewExecutor()
		ex.EnableStats(t.sink)
		t.exs[i] = ex
	}
	t.gathers = make([]gather, cfg.MaxConcurrent)
	t.slotStats = make([]*stats.Shard, cfg.MaxConcurrent)
	for s := range t.gathers {
		t.gathers[s] = gather{
			counts: make([]int, cfg.Shards),
			errs:   make([]error, cfg.Shards),
		}
		t.slotStats[s] = t.sink.NewShard()
	}
	t.matrix = stats.NewServeMatrix(cfg.Shards, cfg.MaxConcurrent)
	t.sink.SetServeMatrix(t.matrix)
	if cfg.TraceSample > 0 || cfg.SlowQuery > 0 {
		t.tracer = trace.New(trace.Config{
			Shards:  cfg.Shards,
			Slots:   cfg.MaxConcurrent,
			SampleN: cfg.TraceSample,
			Slow:    cfg.SlowQuery,
		})
		t.exemplars = stats.NewExemplarStore()
		t.sink.SetServeExemplars(t.exemplars)
		for shard := 0; shard < cfg.Shards; shard++ {
			for slot := 0; slot < cfg.MaxConcurrent; slot++ {
				t.exs[shard*cfg.MaxConcurrent+slot].SetTraceCell(t.tracer.ShardCell(shard, slot))
			}
		}
	}
	if cfg.ShedTargetP99 > 0 {
		t.tickWG.Add(1)
		go t.shedLoop()
	}
	return t, nil
}

// shedLoop is the shedder's control loop: every ShedInterval it feeds the
// cumulative LatServe histogram to the shedder, which differences it into
// the last window and steers the drop fraction.
func (t *Tier) shedLoop() {
	defer t.tickWG.Done()
	ticker := time.NewTicker(t.cfg.ShedInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			snap := t.sink.Snapshot()
			t.shed.tick(snap.Latency(stats.LatServe))
		}
	}
}

// acquireEpoch takes a drain reference on the current epoch, with the
// pointer-recheck loop that makes the swap's flip-then-retire safe (see
// core.DrainGroup).
func (t *Tier) acquireEpoch() *epoch {
	for {
		e := t.epoch.Load()
		e.drain.Acquire()
		if t.epoch.Load() == e {
			return e
		}
		e.drain.Release()
	}
}

// QueryCount answers one conjunctive query — the number of documents
// containing every item — through the full serving path: shed check,
// admission, scatter-gather over the shards, deadline propagation. It
// returns *OverloadError (matching ErrOverload) on shed or admission
// rejection, ErrShuttingDown after Shutdown, and the context error when the
// deadline expires first.
func (t *Tier) QueryCount(ctx context.Context, items ...uint32) (int, error) {
	n, _, err := t.queryCount(ctx, false, items)
	return n, err
}

// QueryCountTraced is QueryCount with forced trace capture: the query's
// trace is retained regardless of sampling, and its rendered span breakdown
// is returned alongside the count (the X-Fesia-Trace: 1 path). The breakdown
// is nil when the tier has no tracer, or when the query was rejected before
// admission (there is nothing to attribute yet).
func (t *Tier) QueryCountTraced(ctx context.Context, items ...uint32) (int, *trace.Captured, error) {
	return t.queryCount(ctx, true, items)
}

func (t *Tier) queryCount(ctx context.Context, forced bool, items []uint32) (int, *trace.Captured, error) {
	if t.closed.Load() {
		return 0, nil, ErrShuttingDown
	}
	if t.shed.shouldShed() {
		t.sink.Inc(stats.CtrServeShed)
		return 0, nil, errShed
	}
	tr := t.tracer
	var arrival time.Time
	if tr != nil {
		arrival = time.Now()
	}
	slot, err := t.lim.acquire(ctx, t.sink)
	if err != nil {
		var oe *OverloadError
		if errors.As(err, &oe) {
			t.sink.Inc(stats.CtrServeRejected)
			switch oe.Reason {
			case ReasonQueueFull:
				t.sink.Inc(stats.CtrServeRejQueueFull)
			case ReasonQueueWait:
				t.sink.Inc(stats.CtrServeRejQueueWait)
			}
		}
		return 0, nil, err
	}
	defer t.lim.release(slot)
	st := t.slotStats[slot]
	st.Inc(stats.CtrServeAdmitted)
	start := time.Now()
	if tr != nil {
		tr.Begin(slot, arrival)
		tr.TierCell(slot).Span(trace.KindQueue, trace.ArmNone, 0,
			arrival, start.Sub(arrival), 0, 0)
	}
	n, err := t.scatter(ctx, slot, items)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			st.Inc(stats.CtrServeDeadline)
		}
		// Failed queries still commit their trace — a deadline expiry is
		// exactly the slow query the tail capture exists for.
		capd := t.commitTrace(tr, st, slot, forced, trace.FlagError, len(items), 0, arrival, start, time.Since(start))
		return 0, capd, err
	}
	// Only successful queries steer the shedder: a deadline expiry's
	// latency measures the deadline, not the service. The one clock read
	// here closes the latency observation AND the trace's scatter/root
	// spans — tracing must not add reads of its own past the arrival stamp.
	el := time.Since(start)
	st.Observe(stats.LatServe, el)
	capd := t.commitTrace(tr, st, slot, forced, 0, len(items), n, arrival, start, el)
	return n, capd, nil
}

// commitTrace closes the tier-level spans (scatter and root, off the clock
// reads the stats path already paid for), decides retention and (for forced
// captures) renders the breakdown. Called by the slot owner before release;
// no-op without a tracer, allocation-free unless forced.
func (t *Tier) commitTrace(tr *trace.Tracer, st *stats.Shard, slot int, forced bool, flags uint8, nitems, count int, arrival, start time.Time, el time.Duration) *trace.Captured {
	if tr == nil {
		return nil
	}
	d := el + start.Sub(arrival)
	cell := tr.TierCell(slot)
	if cell.Truncated() {
		flags |= trace.FlagTruncated
	}
	cell.Span(trace.KindScatter, trace.ArmNone, flags&trace.FlagError,
		start, el, uint64(t.cfg.Shards), 0)
	cell.Span(trace.KindQuery, trace.ArmNone, flags,
		arrival, d, uint64(nitems), uint64(count))
	v := tr.Finish(slot, d, forced)
	switch v.Reason {
	case trace.ReasonSampled:
		st.Inc(stats.CtrTraceSampled)
	case trace.ReasonSlow:
		st.Inc(stats.CtrTraceSlow)
	case trace.ReasonForced:
		st.Inc(stats.CtrTraceForced)
	default:
		return nil
	}
	t.exemplars.Put(v.ID, d)
	if forced {
		return tr.Capture(slot, v)
	}
	return nil
}

// scatter fans the query out to every shard on the pool and sums the counts.
// Parts write only their own cells of the slot's gather scratch (and their
// own (shard × slot) cells of the serve matrix and trace topology); the
// first error (by shard order) wins, matching the deterministic
// single-shard path. The tier-level scatter span is closed by commitTrace
// off the caller's clock reads — this function reads no clocks of its own.
func (t *Tier) scatter(ctx context.Context, slot int, items []uint32) (int, error) {
	e := t.acquireEpoch()
	defer e.drain.Release()
	ns := len(e.shards)
	if ns == 1 {
		return t.queryPart(ctx, e, 0, slot, slot, items)
	}
	g := &t.gathers[slot]
	t.cfg.Pool.Do(ns, func(part int) {
		i := part*t.cfg.MaxConcurrent + slot
		g.counts[part], g.errs[part] = t.queryPart(ctx, e, part, slot, i, items)
	})
	total := 0
	for p := 0; p < ns; p++ {
		if perr := g.errs[p]; perr != nil {
			return 0, perr
		}
		total += g.counts[p]
	}
	return total, nil
}

// queryPart runs one scatter part: the query against document shard `part`
// on the executor pinned to (part, slot) — index i in the executor matrix.
// It records the part into the per-shard serve matrix and, when tracing,
// arms the (shard × slot) staging cell before the executor runs and appends
// the part's span after.
func (t *Tier) queryPart(ctx context.Context, e *epoch, part, slot, i int, items []uint32) (int, error) {
	tr := t.tracer
	if tr != nil {
		tr.ShardCell(part, slot).Reset(tr.TierCell(slot).Base())
	}
	ps := time.Now()
	t.matrix.Enter(part, slot)
	if d := t.partDelay; d != nil {
		d(part)
	}
	n, err := queryShard(ctx, e.shards[part], t.exs[i], &t.setsBufs[i], items)
	el := time.Since(ps)
	if err != nil {
		t.matrix.ExitErr(part, slot)
	} else {
		t.matrix.ExitOK(part, slot, el)
	}
	if tr != nil {
		var flags uint8
		if err != nil {
			flags = trace.FlagError
		}
		tr.ShardCell(part, slot).Span(trace.KindShard, trace.ArmNone, flags,
			ps, el, uint64(n), 0)
	}
	return n, err
}

// Swap atomically replaces the corpus with one built from lists (the same
// shape NewTier takes). The fresh epoch is fully built and validated before
// the pointer flips — any build error leaves the old corpus serving
// untouched — and the old epoch is retired only after every in-flight query
// on it has drained. Returns the new generation number. ctx bounds the
// drain wait: on expiry the swap is already published and the error reports
// the unfinished drain.
func (t *Tier) Swap(ctx context.Context, lists [][]uint32) (uint64, error) {
	t.swapMu.Lock()
	defer t.swapMu.Unlock()
	if t.closed.Load() {
		return 0, ErrShuttingDown
	}
	gen := t.gen + 1
	fresh, err := buildEpoch(lists, t.cfg.Shards, t.cfg.Build, gen)
	if err != nil {
		t.sink.Inc(stats.CtrServeSwapErrors)
		return 0, err
	}
	t.gen = gen
	old := t.epoch.Swap(fresh)
	old.drain.Retire()
	select {
	case <-old.drain.Drained():
	case <-ctx.Done():
		return gen, fmt.Errorf("serve: swap to generation %d published, but the old epoch has not drained: %w", gen, ctx.Err())
	}
	t.sink.Inc(stats.CtrServeSwaps)
	return gen, nil
}

// SwapFromReader is Swap loading the corpus from a snapshot stream written
// by fesia.WriteCorpus / core.WriteCorpus: set i is item i's posting set.
// The stream is fully read, checksummed and rebuilt before anything flips;
// a truncated or corrupted snapshot counts a swap error and leaves the old
// corpus serving — the all-or-nothing contract the chaos tests pin down.
func (t *Tier) SwapFromReader(ctx context.Context, r io.Reader) (uint64, error) {
	sets, err := core.ReadCorpus(r)
	if err != nil {
		t.sink.Inc(stats.CtrServeSwapErrors)
		return 0, fmt.Errorf("serve: loading corpus snapshot: %w", err)
	}
	lists := make([][]uint32, len(sets))
	for i, s := range sets {
		lists[i] = s.Elements()
	}
	return t.Swap(ctx, lists)
}

// SwapFromFile is SwapFromReader over a snapshot file.
func (t *Tier) SwapFromFile(ctx context.Context, path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		t.sink.Inc(stats.CtrServeSwapErrors)
		return 0, fmt.Errorf("serve: opening corpus snapshot: %w", err)
	}
	defer f.Close()
	return t.SwapFromReader(ctx, f)
}

// Shutdown gracefully stops the tier: new queries fail fast with
// ErrShuttingDown, the shed control loop stops, and Shutdown blocks until
// every in-flight query has finished (all admission slots reclaimed) or ctx
// expires. The stats sink is left consistent for a final flush by the
// caller. Idempotent; concurrent calls race the drain harmlessly.
func (t *Tier) Shutdown(ctx context.Context) error {
	if t.closed.CompareAndSwap(false, true) {
		close(t.stop)
	}
	t.tickWG.Wait()
	return t.lim.drain(ctx)
}

// Generation returns the current corpus generation (0 at construction,
// bumped by every successful Swap).
func (t *Tier) Generation() uint64 { return t.epoch.Load().gen }

// NumShards returns the tier's shard count.
func (t *Tier) NumShards() int { return t.cfg.Shards }

// MaxConcurrent returns the admission slot count.
func (t *Tier) MaxConcurrent() int { return t.cfg.MaxConcurrent }

// ShedFraction returns the shedder's current drop probability — 0 in the
// healthy steady state.
func (t *Tier) ShedFraction() float64 { return t.shed.fraction() }

// Tracer returns the tier's tracing layer, or nil when tracing was not
// enabled in the Config. The HTTP layer mounts its Handler/SlowHandler as
// the /debug/traces and /debug/slow admin endpoints.
func (t *Tier) Tracer() *trace.Tracer { return t.tracer }

// Stats returns a merged snapshot of the sink the tier records into (the
// global sink when stats were enabled at construction).
func (t *Tier) Stats() stats.Snapshot { return t.sink.Snapshot() }
