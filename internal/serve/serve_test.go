package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"fesia/internal/core"
	"fesia/internal/stats"
)

// genLists builds a random corpus: items posting lists over [0, docs), each
// doc included with probability p.
func genLists(items, docs int, p float64, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]uint32, items)
	for i := range lists {
		for d := 0; d < docs; d++ {
			if rng.Float64() < p {
				lists[i] = append(lists[i], uint32(d))
			}
		}
	}
	return lists
}

// bruteCount is the reference conjunctive count over the unsharded lists.
func bruteCount(lists [][]uint32, items []uint32) int {
	present := func(l []uint32, d uint32) bool {
		for _, x := range l {
			if x == d {
				return true
			}
		}
		return false
	}
	if len(items) == 0 {
		return 0
	}
	for _, it := range items {
		if int(it) >= len(lists) {
			return 0
		}
	}
	n := 0
	for _, d := range lists[items[0]] {
		all := true
		for _, it := range items[1:] {
			if !present(lists[it], d) {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// ctr reads one merged counter from the tier's sink.
func ctr(tier *Tier, c stats.Counter) uint64 {
	snap := tier.Stats()
	return snap.Counter(c)
}

func TestTierQueryCountMatchesBrute(t *testing.T) {
	lists := genLists(32, 500, 0.15, 1)
	for _, shards := range []int{1, 2, 3, 4, 7} {
		tier, err := NewTier(lists, Config{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: NewTier: %v", shards, err)
		}
		queries := [][]uint32{
			{}, {3}, {0, 1}, {5, 9}, {2, 4, 8}, {1, 3, 5, 7, 9, 11},
			{31}, {0, 31}, {99}, {4, 99},
		}
		for _, q := range queries {
			got, err := tier.QueryCount(context.Background(), q...)
			if err != nil {
				t.Fatalf("shards=%d query %v: %v", shards, q, err)
			}
			if want := bruteCount(lists, q); got != want {
				t.Errorf("shards=%d query %v: got %d, want %d", shards, q, got, want)
			}
		}
		if err := tier.Shutdown(context.Background()); err != nil {
			t.Fatalf("shards=%d: Shutdown: %v", shards, err)
		}
	}
}

func TestTierSwap(t *testing.T) {
	a := genLists(16, 300, 0.2, 2)
	b := genLists(16, 300, 0.2, 3)
	tier, err := NewTier(a, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Shutdown(context.Background())
	q := []uint32{1, 2, 3}
	wantA, wantB := bruteCount(a, q), bruteCount(b, q)
	if wantA == wantB {
		t.Fatalf("test corpora indistinguishable for %v (both %d)", q, wantA)
	}
	if got, _ := tier.QueryCount(context.Background(), q...); got != wantA {
		t.Fatalf("before swap: got %d, want %d", got, wantA)
	}
	gen, err := tier.Swap(context.Background(), b)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if gen != 1 || tier.Generation() != 1 {
		t.Fatalf("generation = %d / %d, want 1", gen, tier.Generation())
	}
	if got, _ := tier.QueryCount(context.Background(), q...); got != wantB {
		t.Fatalf("after swap: got %d, want %d", got, wantB)
	}
	snap := tier.Stats()
	if snap.Counter(stats.CtrServeSwaps) != 1 {
		t.Fatalf("swap counter = %d, want 1", snap.Counter(stats.CtrServeSwaps))
	}
}

func TestNewTierRejectsBadBuildConfig(t *testing.T) {
	_, err := NewTier(genLists(4, 50, 0.2, 4), Config{Build: core.Config{SegBits: 7}})
	if err == nil {
		t.Fatal("NewTier accepted an invalid build config")
	}
}

func TestTierShutdown(t *testing.T) {
	tier, err := NewTier(genLists(8, 100, 0.2, 5), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := tier.QueryCount(context.Background(), 1, 2); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("query after shutdown: err = %v, want ErrShuttingDown", err)
	}
	if _, err := tier.Swap(context.Background(), genLists(8, 100, 0.2, 6)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("swap after shutdown: err = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := tier.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestTierShutdownWaitsForInFlight(t *testing.T) {
	tier, err := NewTier(genLists(8, 100, 0.2, 7), Config{Shards: 2, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Steal a slot to simulate an in-flight query.
	slot, err := tier.lim.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tier.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with a held slot: err = %v, want deadline", err)
	}
	tier.lim.release(slot)
	if err := tier.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after release: %v", err)
	}
}

func TestTierShedRejects(t *testing.T) {
	tier, err := NewTier(genLists(8, 100, 0.2, 8), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Shutdown(context.Background())
	tier.shed.frac.Store(math.Float64bits(1.0)) // force full shedding
	_, err = tier.QueryCount(context.Background(), 1, 2)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonShed {
		t.Fatalf("err = %#v, want *OverloadError{shed}", err)
	}
	if got := ctr(tier, stats.CtrServeShed); got == 0 {
		t.Fatal("shed counter not incremented")
	}
	if tier.ShedFraction() != 1.0 {
		t.Fatalf("ShedFraction = %v, want 1", tier.ShedFraction())
	}
}

func TestTierDeadlinePropagation(t *testing.T) {
	tier, err := NewTier(genLists(8, 2000, 0.3, 9), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Shutdown(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before the query starts
	if _, err := tier.QueryCount(ctx, 1, 2, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := tier.QueryCount(dctx, 1, 2, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if got := ctr(tier, stats.CtrServeDeadline); got == 0 {
		t.Fatal("deadline counter not incremented")
	}
}

func TestTierQueueFullRejects(t *testing.T) {
	tier, err := NewTier(genLists(8, 100, 0.2, 10),
		Config{Shards: 2, MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only slot so every query queues.
	slot, err := tier.lim.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := tier.QueryCount(context.Background(), 1, 2)
		queued <- err
	}()
	// Wait until the goroutine occupies the queue's single seat.
	for i := 0; tier.lim.queued.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("first query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = tier.QueryCount(context.Background(), 1, 2)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQueueFull {
		t.Fatalf("second query err = %v, want queue_full", err)
	}
	if got := ctr(tier, stats.CtrServeRejected); got == 0 {
		t.Fatal("rejected counter not incremented")
	}
	tier.lim.release(slot)
	if err := <-queued; err != nil {
		t.Fatalf("queued query failed after release: %v", err)
	}
	tier.Shutdown(context.Background())
}

// TestTierQueryDuringSwapSeesOneEpoch pins the swap consistency contract:
// under continuous swapping between two corpora, every successful query
// returns the exact answer of one corpus or the other — never a blend, never
// a failure.
func TestTierQueryDuringSwapSeesOneEpoch(t *testing.T) {
	a := genLists(16, 400, 0.2, 11)
	b := genLists(16, 400, 0.2, 12)
	tier, err := NewTier(a, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Shutdown(context.Background())
	q := []uint32{1, 2}
	wantA, wantB := bruteCount(a, q), bruteCount(b, q)
	if wantA == wantB {
		t.Fatalf("corpora indistinguishable for %v", q)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			src := a
			if i%2 == 0 {
				src = b
			}
			if _, err := tier.Swap(context.Background(), src); err != nil {
				t.Errorf("swap %d: %v", i, err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		got, err := tier.QueryCount(context.Background(), q...)
		if err != nil {
			if errors.Is(err, ErrOverload) {
				continue // admission pressure is fine; wrong answers are not
			}
			t.Fatalf("query during swaps: %v", err)
		}
		if got != wantA && got != wantB {
			t.Fatalf("query during swaps: got %d, want %d or %d", got, wantA, wantB)
		}
	}
}
