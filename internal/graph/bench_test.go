package graph

import (
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/simd"
)

var benchSink int64

func benchGraph(b *testing.B) *CSR {
	b.Helper()
	g := datasets.NewGraph(datasets.GraphConfig{
		Nodes: 20_000, EdgesPer: 8, Clustering: 0.5, Seed: 7,
	})
	return FromEdges(g.Nodes, g.Edges).Oriented()
}

func BenchmarkTriangleScalar(b *testing.B) {
	o := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += CountTriangles(o, baselines.CountScalar)
	}
}

func BenchmarkTriangleShuffling(b *testing.B) {
	o := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += CountTriangles(o, func(x, y []uint32) int {
			return baselines.CountShuffling(simd.WidthAVX, x, y)
		})
	}
}

func BenchmarkTriangleFesia(b *testing.B) {
	o := benchGraph(b)
	fg, err := BuildFesia(o, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += fg.CountTriangles(1)
	}
}

func BenchmarkBuildFesiaGraph(b *testing.B) {
	o := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg, err := BuildFesia(o, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchSink += int64(fg.sets[0].Len())
	}
}

func BenchmarkOrient(b *testing.B) {
	g := datasets.NewGraph(datasets.GraphConfig{
		Nodes: 20_000, EdgesPer: 8, Clustering: 0.5, Seed: 7,
	})
	csr := FromEdges(g.Nodes, g.Edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += int64(csr.Oriented().NumDirectedEdges())
	}
}
