package graph

import (
	"math/rand"
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
)

// bruteTriangles counts triangles by enumerating all vertex triples over an
// adjacency map — ground truth for small graphs.
func bruteTriangles(nodes int, edges [][2]uint32) int64 {
	adj := make([]map[uint32]bool, nodes)
	for i := range adj {
		adj[i] = map[uint32]bool{}
	}
	for _, e := range edges {
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	var n int64
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			if !adj[a][uint32(b)] {
				continue
			}
			for c := b + 1; c < nodes; c++ {
				if adj[a][uint32(c)] && adj[b][uint32(c)] {
					n++
				}
			}
		}
	}
	return n
}

func TestCSRBasics(t *testing.T) {
	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	g := FromEdges(4, edges)
	if g.NumVertices() != 4 || g.NumDirectedEdges() != 8 {
		t.Fatalf("vertices=%d directed=%d", g.NumVertices(), g.NumDirectedEdges())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(2), g.Degree(3))
	}
	nb := g.Neighbors(2)
	want := []uint32{0, 1, 3}
	for i := range want {
		if nb[i] != want[i] {
			t.Errorf("Neighbors(2) = %v", nb)
		}
	}
}

func TestFromEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge should panic")
		}
	}()
	FromEdges(2, [][2]uint32{{0, 5}})
}

func TestOrientedProperties(t *testing.T) {
	g := FromEdges(5, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	o := g.Oriented()
	if o.NumDirectedEdges() != g.NumDirectedEdges()/2 {
		t.Errorf("oriented edges = %d, want half of %d", o.NumDirectedEdges(), g.NumDirectedEdges())
	}
	for v := 0; v < o.n; v++ {
		nb := o.Neighbors(v)
		for i, w := range nb {
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("oriented neighbors of %d not sorted: %v", v, nb)
			}
			// Rank must strictly increase along the edge.
			dv, dw := g.Degree(v), g.Degree(int(w))
			if dw < dv || (dw == dv && w <= uint32(v)) {
				t.Fatalf("edge %d->%d violates rank order", v, w)
			}
		}
	}
}

func TestTriangleCountKnown(t *testing.T) {
	// Two triangles sharing edge 1-2, plus a pendant.
	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	g := FromEdges(5, edges)
	o := g.Oriented()
	if got := CountTriangles(o, baselines.CountScalar); got != 2 {
		t.Errorf("CountTriangles = %d, want 2", got)
	}
	// Complete graph K5 has C(5,3) = 10 triangles.
	var k5 [][2]uint32
	for a := uint32(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			k5 = append(k5, [2]uint32{a, b})
		}
	}
	o5 := FromEdges(5, k5).Oriented()
	if got := CountTriangles(o5, baselines.CountScalar); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
}

func TestTriangleCountRandomAllIntersectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		nodes := 20 + rng.Intn(30)
		var edges [][2]uint32
		seen := map[[2]uint32]bool{}
		for i := 0; i < nodes*3; i++ {
			a := uint32(rng.Intn(nodes))
			b := uint32(rng.Intn(nodes))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]uint32{a, b}] {
				continue
			}
			seen[[2]uint32{a, b}] = true
			edges = append(edges, [2]uint32{a, b})
		}
		want := bruteTriangles(nodes, edges)
		o := FromEdges(nodes, edges).Oriented()
		if got := CountTriangles(o, baselines.CountScalar); got != want {
			t.Fatalf("scalar triangles = %d, want %d", got, want)
		}
		if got := CountTriangles(o, baselines.CountBMiss); got != want {
			t.Fatalf("bmiss triangles = %d, want %d", got, want)
		}
		if got := CountTrianglesParallel(o, baselines.CountScalar, 4); got != want {
			t.Fatalf("parallel triangles = %d, want %d", got, want)
		}
		fg, err := BuildFesia(o, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got := fg.CountTriangles(1); got != want {
			t.Fatalf("FESIA triangles = %d, want %d", got, want)
		}
		if got := fg.CountTriangles(4); got != want {
			t.Fatalf("FESIA parallel triangles = %d, want %d", got, want)
		}
	}
}

func TestTriangleCountGeneratedGraph(t *testing.T) {
	g := datasets.NewGraph(datasets.GraphConfig{Nodes: 2000, EdgesPer: 4, Clustering: 0.6, Seed: 2})
	csr := FromEdges(g.Nodes, g.Edges)
	o := csr.Oriented()
	want := CountTriangles(o, baselines.CountScalar)
	if want == 0 {
		t.Fatal("generated graph should contain triangles")
	}
	fg, err := BuildFesia(o, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := fg.CountTriangles(1); got != want {
		t.Errorf("FESIA = %d, scalar = %d", got, want)
	}
	if got := fg.CountTriangles(8); got != want {
		t.Errorf("FESIA 8 workers = %d, scalar = %d", got, want)
	}
	if got := CountTrianglesParallel(o, baselines.CountScalar, 8); got != want {
		t.Errorf("parallel scalar = %d, want %d", got, want)
	}
}

func TestBuildFesiaPropagatesError(t *testing.T) {
	g := FromEdges(3, [][2]uint32{{0, 1}})
	if _, err := BuildFesia(g.Oriented(), core.Config{SegBits: 3}); err == nil {
		t.Error("bad config should surface an error")
	}
}
