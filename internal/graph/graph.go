// Package graph provides the graph-analytics substrate for the FESIA
// evaluation: a CSR adjacency structure and triangle counting by neighbor
// set intersection (the task of Fig. 13 and reference [6]).
//
// Triangle counting uses the standard degree-ordered orientation: vertices
// are ranked by (degree, id); each undirected edge becomes a directed edge
// from lower to higher rank, and the triangle count is the sum of
// |N⁺(u) ∩ N⁺(v)| over directed edges (u, v). The intersection routine is
// pluggable, so the same driver runs scalar merge, shuffling, or FESIA.
package graph

import (
	"fmt"
	"slices"

	"fesia/internal/core"
)

// CSR is an adjacency structure with sorted neighbor lists.
type CSR struct {
	n       int
	offsets []uint32
	nbrs    []uint32
}

// FromEdges builds a CSR from an undirected simple edge list. Edges must be
// duplicate-free with both endpoints below nodes (datasets.NewGraph
// guarantees this); each edge appears in both endpoints' lists.
func FromEdges(nodes int, edges [][2]uint32) *CSR {
	deg := make([]uint32, nodes)
	for _, e := range edges {
		if int(e[0]) >= nodes || int(e[1]) >= nodes {
			panic(fmt.Sprintf("graph: edge %v out of range", e))
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	g := &CSR{
		n:       nodes,
		offsets: make([]uint32, nodes+1),
		nbrs:    make([]uint32, 2*len(edges)),
	}
	sum := uint32(0)
	for v, d := range deg {
		g.offsets[v] = sum
		sum += d
	}
	g.offsets[nodes] = sum
	next := append([]uint32(nil), g.offsets[:nodes]...)
	for _, e := range edges {
		g.nbrs[next[e[0]]] = e[1]
		next[e[0]]++
		g.nbrs[next[e[1]]] = e[0]
		next[e[1]]++
	}
	for v := 0; v < nodes; v++ {
		nb := g.nbrs[g.offsets[v]:g.offsets[v+1]]
		slices.Sort(nb)
	}
	return g
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return g.n }

// NumDirectedEdges returns the total adjacency length (2x undirected edges).
func (g *CSR) NumDirectedEdges() int { return len(g.nbrs) }

// Neighbors returns v's sorted neighbor list (a view; do not modify).
func (g *CSR) Neighbors(v int) []uint32 {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *CSR) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Oriented returns the forward-neighbor DAG under (degree, id) ranking:
// each vertex keeps only neighbors of strictly higher rank. Every triangle
// of the undirected graph appears exactly once as u→v, u→w, v→w.
func (g *CSR) Oriented() *CSR {
	rankLess := func(a, b uint32) bool {
		da, db := g.Degree(int(a)), g.Degree(int(b))
		if da != db {
			return da < db
		}
		return a < b
	}
	out := &CSR{n: g.n, offsets: make([]uint32, g.n+1)}
	// Every undirected edge contributes exactly one forward edge, so the
	// final length is known up front: no append growth, one allocation.
	nbrs := make([]uint32, 0, len(g.nbrs)/2)
	for v := 0; v < g.n; v++ {
		out.offsets[v] = uint32(len(nbrs))
		for _, w := range g.Neighbors(v) {
			if rankLess(uint32(v), w) {
				nbrs = append(nbrs, w)
			}
		}
		// Neighbor lists are sorted by id; forward lists must stay sorted
		// by id too (they are a subsequence). ✓
	}
	out.offsets[g.n] = uint32(len(nbrs))
	out.nbrs = nbrs
	return out
}

// Intersector counts the intersection of two sorted neighbor lists.
type Intersector func(a, b []uint32) int

// CountTriangles counts triangles by summing |N⁺(u) ∩ N⁺(v)| over the
// directed edges of the oriented graph, using the supplied intersector.
// Pass the result of Oriented(), not the undirected CSR.
func CountTriangles(oriented *CSR, intersect Intersector) int64 {
	var total int64
	for u := 0; u < oriented.n; u++ {
		nu := oriented.Neighbors(u)
		if len(nu) == 0 {
			continue
		}
		for _, v := range nu {
			nv := oriented.Neighbors(int(v))
			if len(nv) == 0 {
				continue
			}
			total += int64(intersect(nu, nv))
		}
	}
	return total
}

// CountTrianglesParallel partitions vertices across workers of the shared
// persistent pool (core.SharedPool). Triangle counting parallelizes
// trivially because every directed edge contributes an independent
// intersection (Section VI, multicore); no goroutines are spawned per call.
func CountTrianglesParallel(oriented *CSR, intersect Intersector, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	if workers > oriented.n {
		workers = oriented.n
	}
	if workers == 1 {
		return CountTriangles(oriented, intersect)
	}
	totals := make([]int64, workers)
	chunk := (oriented.n + workers - 1) / workers
	core.SharedPool().Do(workers, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, oriented.n)
		var local int64
		for u := lo; u < hi; u++ {
			nu := oriented.Neighbors(u)
			if len(nu) == 0 {
				continue
			}
			for _, v := range nu {
				nv := oriented.Neighbors(int(v))
				if len(nv) == 0 {
					continue
				}
				local += int64(intersect(nu, nv))
			}
		}
		totals[w] = local
	})
	var total int64
	for _, t := range totals {
		total += t
	}
	return total
}

// FesiaGraph holds a prebuilt FESIA set per vertex's forward neighbor list,
// the offline preprocessing the paper's triangle-counting experiment
// assumes (construction time is reported separately, Table III).
type FesiaGraph struct {
	oriented *CSR
	sets     []*core.Set
	maxDeg   int // maximum forward degree, sizing the batch scratch
}

// BuildFesia preprocesses an oriented CSR into per-vertex FESIA sets. The
// sets are arena-backed (core.NewSetBatch) so the per-edge intersections of
// triangle counting walk contiguous memory.
func BuildFesia(oriented *CSR, cfg core.Config) (*FesiaGraph, error) {
	lists := make([][]uint32, oriented.n)
	for v := 0; v < oriented.n; v++ {
		lists[v] = oriented.Neighbors(v)
	}
	sets, err := core.NewSetBatch(lists, cfg)
	if err != nil {
		return nil, err
	}
	maxDeg := 0
	for v := 0; v < oriented.n; v++ {
		maxDeg = max(maxDeg, oriented.Degree(v))
	}
	return &FesiaGraph{oriented: oriented, sets: sets, maxDeg: maxDeg}, nil
}

// CountTriangles counts triangles with FESIA set intersections across
// `workers` parts of the shared persistent pool (1 = sequential on the
// caller).
func (fg *FesiaGraph) CountTriangles(workers int) int64 {
	g := fg.oriented
	if workers < 1 {
		workers = 1
	}
	if workers > g.n {
		workers = g.n
	}
	run := func(lo, hi int) int64 {
		// One batch query per vertex: u's forward set is the pinned query,
		// its forward neighbors' sets the candidate list. The batch engine
		// keeps the adaptive merge/hash switch per edge (degree skew between
		// hubs and leaves, Section VI) while holding u's bitmap words and
		// dispatch scratch hot across the whole neighbor list. Scratch is
		// pre-sized from the maximum forward degree, so the edge loop never
		// reallocates.
		ex := core.NewExecutor()
		cands := make([]*core.Set, 0, fg.maxDeg)
		counts := make([]int, fg.maxDeg)
		var local int64
		for u := lo; u < hi; u++ {
			su := fg.sets[u]
			if su.Len() == 0 {
				continue
			}
			cands = cands[:0]
			for _, v := range g.Neighbors(u) {
				if sv := fg.sets[v]; sv.Len() > 0 {
					cands = append(cands, sv)
				}
			}
			if len(cands) == 0 {
				continue
			}
			ex.CountMany(su, cands, counts)
			for _, c := range counts[:len(cands)] {
				local += int64(c)
			}
		}
		return local
	}
	if workers == 1 {
		return run(0, g.n)
	}
	totals := make([]int64, workers)
	chunk := (g.n + workers - 1) / workers
	core.SharedPool().Do(workers, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, g.n)
		totals[w] = run(lo, hi)
	})
	var total int64
	for _, t := range totals {
		total += t
	}
	return total
}
