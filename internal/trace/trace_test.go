package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCellStagingAndTruncation(t *testing.T) {
	var c Cell
	base := time.Now()
	c.Reset(base)
	c.Event(KindPlan, ArmMerge, PlanFlags(0, true), 10, 20)
	c.Span(KindStrategy, ArmHash, 0, base.Add(time.Microsecond), 2*time.Microsecond, 5, 6)
	if c.n != 2 {
		t.Fatalf("staged %d records, want 2", c.n)
	}
	ev, sp := c.recs[0], c.recs[1]
	if ev.Kind != KindPlan || ev.Start != 0 || ev.Dur != 0 || ev.V1 != 10 || ev.V2 != 20 {
		t.Fatalf("event record mismatch: %+v", ev)
	}
	if ev.Flags&FlagExplored == 0 || DecisionOf(ev.Flags) != 0 {
		t.Fatalf("plan flags mismatch: %#x", ev.Flags)
	}
	if sp.Kind != KindStrategy || sp.Arm != ArmHash {
		t.Fatalf("span record mismatch: %+v", sp)
	}
	if sp.Start != uint64(time.Microsecond) || sp.Dur != uint64(2*time.Microsecond) {
		t.Fatalf("span timing mismatch: start=%d dur=%d", sp.Start, sp.Dur)
	}
	for i := 0; i < 2*MaxSpans; i++ {
		c.Event(KindKernel, ArmMerge, 0, 0, 0)
	}
	if c.n != MaxSpans || !c.Truncated() {
		t.Fatalf("overflow not truncated: n=%d trunc=%v", c.n, c.Truncated())
	}
	c.Reset(base)
	if c.n != 0 || c.Truncated() {
		t.Fatalf("reset did not clear the cell")
	}
}

func TestSpanClampsNegativeOffsets(t *testing.T) {
	var c Cell
	base := time.Now()
	c.Reset(base)
	c.Span(KindQueue, ArmNone, 0, base.Add(-time.Second), -time.Second, 0, 0)
	if c.recs[0].Start != 0 || c.recs[0].Dur != 0 {
		t.Fatalf("negative offsets not clamped: %+v", c.recs[0])
	}
}

func TestRingPublishSnapshot(t *testing.T) {
	var r ring
	r.init(8)
	recs := []Rec{
		{Kind: KindQuery, Arm: ArmNone, Start: 1, Dur: 100, V1: 2, V2: 3},
		{Kind: KindShard, Arm: ArmNone, Start: 5, Dur: 50, V1: 7},
	}
	r.publish(42, 1, recs)
	var got []Rec
	var ids []uint64
	var shards []int
	r.snapshot(func(id uint64, shard int, rec Rec) {
		ids = append(ids, id)
		shards = append(shards, shard)
		got = append(got, rec)
	})
	if len(got) != 2 {
		t.Fatalf("snapshot returned %d records, want 2", len(got))
	}
	for i := range got {
		if ids[i] != 42 || shards[i] != 1 {
			t.Fatalf("record %d: id=%d shard=%d", i, ids[i], shards[i])
		}
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	var r ring
	r.init(4)
	for i := 0; i < 10; i++ {
		r.publish(uint64(i+1), -1, []Rec{{Kind: KindQuery, V1: uint64(i)}})
	}
	var v1s []uint64
	r.snapshot(func(id uint64, shard int, rec Rec) { v1s = append(v1s, rec.V1) })
	if len(v1s) != 4 {
		t.Fatalf("snapshot returned %d records, want 4", len(v1s))
	}
	for i, v := range v1s {
		if v != uint64(6+i) {
			t.Fatalf("record %d: v1=%d, want %d (newest 4, oldest first)", i, v, 6+i)
		}
	}
}

// TestRingConcurrentReaders hammers one ring with a writer and two readers;
// under -race this pins the atomic word discipline, and every record a
// reader accepts must be internally consistent (id == v1 by construction).
func TestRingConcurrentReaders(t *testing.T) {
	var r ring
	r.init(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.snapshot(func(id uint64, shard int, rec Rec) {
					if rec.V1 != id || rec.V2 != id {
						t.Errorf("torn record escaped: id=%d v1=%d v2=%d", id, rec.V1, rec.V2)
					}
				})
			}
		}()
	}
	for i := uint64(1); i <= 5000; i++ {
		r.publish(i, 0, []Rec{{Kind: KindQuery, V1: i, V2: i}})
	}
	close(stop)
	wg.Wait()
}

func newTestTracer(sampleN int, slow time.Duration) *Tracer {
	return New(Config{Shards: 2, Slots: 2, SampleN: sampleN, Slow: slow, RingRecs: 32, SlowCap: 4})
}

// stage fakes one query's staging on a slot: tier row + both shard rows.
func stage(tr *Tracer, slot int, base time.Time, d time.Duration) {
	tr.Begin(slot, base)
	tr.TierCell(slot).Span(KindQueue, ArmNone, 0, base, time.Microsecond, 0, 0)
	for sh := 0; sh < 2; sh++ {
		c := tr.ShardCell(sh, slot)
		c.Reset(base)
		c.Span(KindShard, ArmNone, 0, base.Add(time.Microsecond), d, 1, 0)
	}
	tr.TierCell(slot).Span(KindQuery, ArmNone, 0, base, d, 2, 9)
}

func TestFinishHeadSampling(t *testing.T) {
	tr := newTestTracer(4, 0)
	base := time.Now()
	retained := 0
	for i := 0; i < 16; i++ {
		stage(tr, 0, base, time.Millisecond)
		v := tr.Finish(0, time.Millisecond, false)
		if v.Retained() {
			retained++
			if v.Reason != ReasonSampled {
				t.Fatalf("reason %v, want sampled", v.Reason)
			}
		}
	}
	if retained != 4 {
		t.Fatalf("retained %d of 16 at 1-in-4, want 4", retained)
	}
}

func TestFinishTailCapture(t *testing.T) {
	tr := newTestTracer(0, 10*time.Millisecond)
	base := time.Now()
	stage(tr, 1, base, time.Millisecond)
	if v := tr.Finish(1, time.Millisecond, false); v.Retained() {
		t.Fatalf("fast query retained: %+v", v)
	}
	stage(tr, 1, base, 20*time.Millisecond)
	v := tr.Finish(1, 20*time.Millisecond, false)
	if v.Reason != ReasonSlow {
		t.Fatalf("slow query reason %v, want slow", v.Reason)
	}
	slow := tr.SlowQueries()
	if len(slow) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(slow))
	}
	e := slow[0]
	if e.Reason != "slow" || e.DurNs != uint64(20*time.Millisecond) {
		t.Fatalf("slow entry mismatch: %+v", e)
	}
	// Tier row (queue + query) plus two shard rows with one span each.
	if len(e.Spans) != 4 {
		t.Fatalf("slow entry has %d spans, want 4", len(e.Spans))
	}
	shardsSeen := map[int]bool{}
	for _, sp := range e.Spans {
		shardsSeen[sp.Shard] = true
	}
	for _, want := range []int{-1, 0, 1} {
		if !shardsSeen[want] {
			t.Fatalf("slow entry missing shard %d rows: %+v", want, e.Spans)
		}
	}
}

func TestFinishForcedWinsAndCaptures(t *testing.T) {
	tr := newTestTracer(1, time.Nanosecond) // everything also samples + slow
	base := time.Now()
	stage(tr, 0, base, time.Millisecond)
	v := tr.Finish(0, time.Millisecond, true)
	if v.Reason != ReasonForced {
		t.Fatalf("reason %v, want forced", v.Reason)
	}
	capd := tr.Capture(0, v)
	if capd.TraceID != formatID(v.ID) || capd.Reason != "forced" {
		t.Fatalf("capture header mismatch: %+v", capd)
	}
	if len(capd.Spans) != 4 {
		t.Fatalf("capture has %d spans, want 4", len(capd.Spans))
	}
	for i := 1; i < len(capd.Spans); i++ {
		if capd.Spans[i].StartNs < capd.Spans[i-1].StartNs {
			t.Fatalf("spans not sorted by start: %+v", capd.Spans)
		}
	}
}

func TestSlowLogBoundedMostRecentFirst(t *testing.T) {
	tr := newTestTracer(0, time.Nanosecond)
	base := time.Now()
	for i := 0; i < 10; i++ {
		stage(tr, 0, base, time.Duration(i+1)*time.Millisecond)
		tr.Finish(0, time.Duration(i+1)*time.Millisecond, false)
	}
	slow := tr.SlowQueries()
	if len(slow) != 4 { // SlowCap in newTestTracer
		t.Fatalf("slow log has %d entries, want 4", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].DurNs > slow[i-1].DurNs {
			t.Fatalf("slow log not most-recent-first: %+v", slow)
		}
	}
	if slow[0].DurNs != uint64(10*time.Millisecond) {
		t.Fatalf("newest slow entry dur %d, want 10ms", slow[0].DurNs)
	}
}

func TestTracesMergesRings(t *testing.T) {
	tr := newTestTracer(1, 0) // sample every query
	base := time.Now()
	for i := 0; i < 3; i++ {
		stage(tr, i%2, base, time.Millisecond)
		tr.Finish(i%2, time.Millisecond, false)
	}
	traces := tr.Traces(0)
	if len(traces) != 3 {
		t.Fatalf("assembled %d traces, want 3", len(traces))
	}
	// Most recent first: IDs are monotonic.
	if traces[0].TraceID <= traces[1].TraceID {
		t.Fatalf("traces not most-recent-first: %s then %s", traces[0].TraceID, traces[1].TraceID)
	}
	for _, trc := range traces {
		if len(trc.Spans) != 4 {
			t.Fatalf("trace %s has %d spans, want 4", trc.TraceID, len(trc.Spans))
		}
	}
	if got := tr.Traces(2); len(got) != 2 {
		t.Fatalf("Traces(2) returned %d traces", len(got))
	}
}

func TestHandlersServeJSON(t *testing.T) {
	tr := newTestTracer(1, time.Nanosecond)
	base := time.Now()
	stage(tr, 0, base, time.Millisecond)
	tr.Finish(0, time.Millisecond, false)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	var body struct {
		Traces []TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("/debug/traces returned %d traces, want 1", len(body.Traces))
	}

	rec = httptest.NewRecorder()
	tr.SlowHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	var slowBody struct {
		Slow []SlowEntry `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slowBody); err != nil {
		t.Fatalf("/debug/slow not JSON: %v", err)
	}
	if len(slowBody.Slow) != 1 {
		t.Fatalf("/debug/slow returned %d entries, want 1", len(slowBody.Slow))
	}
}

// TestFinishZeroAllocWarm pins the commit path's allocation-free contract —
// staging, retention, ring publication and slow-log push all run on
// pre-allocated storage.
func TestFinishZeroAllocWarm(t *testing.T) {
	tr := newTestTracer(2, time.Nanosecond) // alternate sampling; everything slow-logged
	base := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		stage(tr, 0, base, time.Millisecond)
		tr.Finish(0, time.Millisecond, false)
	})
	if allocs != 0 {
		t.Fatalf("stage+Finish allocates %.1f per query, want 0", allocs)
	}
}

func TestMetaPackRoundTrip(t *testing.T) {
	rec := Rec{Kind: KindStrategy, Arm: ArmKWay, Flags: FlagError | FlagTruncated}
	for _, shard := range []int{-1, 0, 1, 255, 32767} {
		kind, arm, sh, flags := unpackMeta(packMeta(rec, shard))
		if kind != rec.Kind || arm != rec.Arm || sh != shard || flags != rec.Flags {
			t.Fatalf("meta round-trip failed for shard %d: %v %d %d %#x", shard, kind, arm, sh, flags)
		}
	}
}
