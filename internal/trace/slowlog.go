package trace

import (
	"sync"
	"time"
)

// The slow-query log: a bounded ring of fully-captured traces for every
// query retained by tail capture or forced capture. Unlike the rings —
// which interleave many queries and age out record by record — a slow-log
// entry holds one query's complete span set, so /debug/slow can show "the
// last 32 slow queries, each with its full breakdown" long after the rings
// have churned past them.
//
// Pushes happen only for slow or forced queries, so a mutex is fine here:
// the lock is never touched on the fast path, and all entry storage is
// pre-allocated at construction — a push copies records into place and
// allocates nothing.

// slowEntryRec is one record of a slow-log entry, with the shard stamped in
// (the staging cells carry it implicitly by row).
type slowEntryRec struct {
	shard int16
	rec   Rec
}

type slowEntry struct {
	id     uint64
	seq    uint64 // push order, for most-recent-first rendering
	when   time.Time
	dur    time.Duration
	reason Reason
	trunc  bool
	n      int
	recs   []slowEntryRec // cap fixed at init
}

type slowLog struct {
	mu      sync.Mutex
	entries []slowEntry
	next    int    // ring position of the next push
	total   uint64 // entries ever pushed
}

func (l *slowLog) init(capEntries, recsPerEntry int) {
	l.entries = make([]slowEntry, capEntries)
	for i := range l.entries {
		l.entries[i].recs = make([]slowEntryRec, recsPerEntry)
	}
}

// push captures the slot's staged rows into the log. Called by the slot
// owner from Finish; allocation-free (copies into pre-sized storage).
func (l *slowLog) push(t *Tracer, slot int, v Verdict, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := &l.entries[l.next]
	l.next = (l.next + 1) % len(l.entries)
	l.total++
	e.id = v.ID
	e.seq = l.total
	e.when = time.Now()
	e.dur = d
	e.reason = v.Reason
	e.trunc = false
	e.n = 0
	for row := 0; row < t.rows; row++ {
		c := t.cell(row, slot)
		if c.trunc {
			e.trunc = true
		}
		for i := 0; i < c.n && e.n < len(e.recs); i++ {
			e.recs[e.n] = slowEntryRec{shard: int16(row - 1), rec: c.recs[i]}
			e.n++
		}
	}
}

// SlowEntry is one slow-log entry rendered for JSON output.
type SlowEntry struct {
	TraceID      string `json:"trace_id"`
	CapturedUnix int64  `json:"captured_unix_ns"`
	DurNs        uint64 `json:"dur_ns"`
	Reason       string `json:"reason"`
	Truncated    bool   `json:"truncated,omitempty"`
	Spans        []Span `json:"spans"`
}

// SlowQueries returns the slow log's entries, most recent first. Allocates;
// admin-endpoint and test path only.
func (t *Tracer) SlowQueries() []SlowEntry {
	l := &t.log
	l.mu.Lock()
	defer l.mu.Unlock()
	live := make([]*slowEntry, 0, len(l.entries))
	for i := range l.entries {
		if l.entries[i].id != 0 {
			live = append(live, &l.entries[i])
		}
	}
	// Sort by seq descending (insertion sort; the log is small).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].seq > live[j-1].seq; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	out := make([]SlowEntry, 0, len(live))
	for _, e := range live {
		se := SlowEntry{
			TraceID:      formatID(e.id),
			CapturedUnix: e.when.UnixNano(),
			DurNs:        uint64(e.dur),
			Reason:       e.reason.String(),
			Truncated:    e.trunc,
			Spans:        make([]Span, 0, e.n),
		}
		for i := 0; i < e.n; i++ {
			se.Spans = append(se.Spans, renderSpan(e.recs[i].rec, int(e.recs[i].shard)))
		}
		sortSpans(se.Spans)
		out = append(out, se)
	}
	return out
}
