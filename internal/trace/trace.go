// Package trace is the per-query tracing layer of the serving tier: the
// forensic complement to the stats package's aggregates. Histograms answer
// "how slow is the tier?"; a trace answers "why was *this* query slow?" by
// attributing a single query's latency to admission wait, the scatter
// fan-out, each shard's part, the strategy the engine picked there, the
// planner decision behind that pick (with its predicted costs), and the
// kernel-level work the strategy dispatched.
//
// The design extends the single-writer slot discipline end to end. While a
// query executes, its records are staged with plain writes into fixed-size
// Cells owned exclusively by its admission slot — row 0 for tier-level
// records, row 1+k for document shard k, each row written only by the one
// goroutine executing there (the slot owner, or the scatter part running
// shard k; the Pool.Do join orders the parts' writes before the owner's
// commit). At commit the owner decides retention — head sampling (one in
// SampleN per slot), tail capture (latency at or above Slow), or a forced
// capture — and only retained queries pay for publication: records are
// copied into per-(row × slot) ring buffers as atomic words (readers merge
// the rings lazily and discard records lapped mid-read), slow and forced
// queries additionally land in a bounded slow-query log, and everything else
// costs nothing beyond the staging writes.
//
// With no Tracer installed the serving tier and engine pay exactly one
// predictable nil-check branch per seam, and the warm paths stay
// allocation-free either way (enforced by AllocsPerRun tests and the
// benchcheck overhead gate).
package trace

import (
	"sync/atomic"
	"time"

	"fesia/internal/planner"
)

// Kind classifies one trace record.
type Kind uint8

const (
	// KindQuery is the root span: the whole query from arrival (before any
	// admission wait) to reply. V1 = query item count, V2 = result count.
	KindQuery Kind = iota
	// KindQueue is the admission span: time spent waiting for a slot.
	KindQueue
	// KindScatter covers the scatter-gather fan-out across document shards.
	KindScatter
	// KindShard is one scatter part executing on one shard. V1 = the part's
	// count result.
	KindShard
	// KindStrategy is one strategy execution inside the engine (Arm names
	// which). V1, V2 = the input set sizes (V1 = set count for ArmKWay).
	KindStrategy
	// KindPlan is a planner decision event: Arm = the chosen arm, V1/V2 = the
	// model's predicted nanoseconds for arm 0/arm 1, and the flag byte packs
	// the decision kind plus the exploration marker (PlanFlags).
	KindPlan
	// KindKernel is a kernel-level dispatch event. Merge: V1 = staged segment
	// pairs, V2 = segments scanned. Hash: V1 = elements probed, V2 = build
	// side size.
	KindKernel
	numKinds
)

var kindNames = [numKinds]string{
	"query", "queue", "scatter", "shard", "strategy", "plan", "kernel",
}

// String returns the kind's stable external name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Strategy arms recorded on KindStrategy spans and KindPlan events.
const (
	ArmMerge = 0 // two-step merge (segment-pair staging + kernels)
	ArmHash  = 1 // per-element hash probe
	ArmKWay  = 2 // k-way chain (3+ sets)
	ArmCross = 3 // cross-representation pair route
	ArmNone  = 0xFF
)

// ArmName returns the stable external name of a strategy arm ("" for
// ArmNone — records without one).
func ArmName(a uint8) string {
	switch a {
	case ArmMerge:
		return "merge"
	case ArmHash:
		return "hash"
	case ArmKWay:
		return "kway"
	case ArmCross:
		return "cross"
	}
	return ""
}

// Record flag bits. The high nibble of the flag byte carries the planner
// decision kind on KindPlan records (PlanFlags / DecisionOf).
const (
	// FlagExplored marks a KindPlan record whose decision deliberately took
	// the non-preferred arm (epsilon exploration).
	FlagExplored = 1 << 0
	// FlagError marks a span that finished with an error (cancellation,
	// deadline, shard fault).
	FlagError = 1 << 1
	// FlagTruncated marks a root span whose query staged more records than a
	// cell holds; the overflow was dropped.
	FlagTruncated = 1 << 2
)

// PlanFlags packs a planner decision kind and the exploration marker into a
// record flag byte.
func PlanFlags(decision int, explored bool) uint8 {
	f := uint8(decision&0x0F) << 4
	if explored {
		f |= FlagExplored
	}
	return f
}

// DecisionOf unpacks the planner decision kind from a KindPlan flag byte.
func DecisionOf(flags uint8) int { return int(flags >> 4) }

// Rec is one staged trace record. Staging writes are plain stores (the cell
// is single-writer); the ring stores records packed to six atomic words —
// id, kind|arm|shard|flags, start, dur, v1, v2.
type Rec struct {
	Kind  Kind
	Arm   uint8
	Flags uint8
	Start uint64 // offset from the query's arrival, nanoseconds
	Dur   uint64 // span duration, nanoseconds; 0 for events
	V1    uint64 // kind-specific payload (see the Kind constants)
	V2    uint64
}

// MaxSpans bounds the records one (row × slot) cell stages per query. A pair
// query writes 3 tier records and at most 4 per shard row; overflow sets the
// cell's truncation marker and drops the extras rather than growing.
const MaxSpans = 8

// Cell is one (row × slot) staging area: a fixed record array written with
// plain stores by the single goroutine executing there. The serving tier
// resets the cell at the start of every query (Reset), the engine and tier
// append records (Event, Span), and the slot owner reads it back at commit —
// the Pool.Do join provides the happens-before edge for shard rows.
type Cell struct {
	base  time.Time
	n     int
	trunc bool
	recs  [MaxSpans]Rec
}

// Reset arms the cell for a new query arriving at base. Must be called by
// the goroutine owning the cell for this query before any Event/Span.
func (c *Cell) Reset(base time.Time) {
	c.base = base
	c.n = 0
	c.trunc = false
}

// Base returns the arrival time the cell was last armed with. Scatter parts
// use it to arm their shard cells off the slot's tier cell without re-reading
// the clock (the dispatch into the pool orders the Reset before them).
func (c *Cell) Base() time.Time { return c.base }

// Event appends a zero-duration record without reading the clock — the
// no-cost form for planner decisions and kernel dispatch marks.
func (c *Cell) Event(kind Kind, arm uint8, flags uint8, v1, v2 uint64) {
	if c.n >= MaxSpans {
		c.trunc = true
		return
	}
	c.recs[c.n] = Rec{Kind: kind, Arm: arm, Flags: flags, V1: v1, V2: v2}
	c.n++
}

// Span appends a timed record: start is an absolute time at or after the
// query's arrival, d its duration.
func (c *Cell) Span(kind Kind, arm uint8, flags uint8, start time.Time, d time.Duration, v1, v2 uint64) {
	if c.n >= MaxSpans {
		c.trunc = true
		return
	}
	off := start.Sub(c.base)
	if off < 0 {
		off = 0
	}
	if d < 0 {
		d = 0
	}
	c.recs[c.n] = Rec{Kind: kind, Arm: arm, Flags: flags,
		Start: uint64(off), Dur: uint64(d), V1: v1, V2: v2}
	c.n++
}

// Truncated reports whether the cell overflowed since its last Reset.
func (c *Cell) Truncated() bool { return c.trunc }

// Reason says why a query's trace was retained.
type Reason uint8

const (
	// NotRetained: the query fell outside every retention rule; its staged
	// records were simply abandoned.
	NotRetained Reason = iota
	// ReasonSampled: head sampling picked it (one in SampleN per slot).
	ReasonSampled
	// ReasonSlow: tail capture — latency at or above the Slow threshold.
	ReasonSlow
	// ReasonForced: the caller forced capture (X-Fesia-Trace: 1).
	ReasonForced
)

var reasonNames = [...]string{"", "sampled", "slow", "forced"}

// String returns the reason's stable external name ("" for NotRetained).
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return ""
}

// Verdict is Finish's retention decision for one query.
type Verdict struct {
	ID     uint64 // trace ID; 0 when not retained
	Reason Reason
}

// Retained reports whether the query's records were published.
func (v Verdict) Retained() bool { return v.Reason != NotRetained }

// Config shapes a Tracer.
type Config struct {
	// Shards is the document shard count; Slots the admission slot count.
	Shards int
	Slots  int
	// SampleN is the head-sampling period: one query in SampleN per slot is
	// retained. <= 0 disables head sampling (tail capture still applies).
	SampleN int
	// Slow is the tail-capture threshold: every query at or above it is
	// retained in full and logged. <= 0 disables tail capture.
	Slow time.Duration
	// RingRecs is each (row × slot) ring's capacity in records.
	// Default: 64.
	RingRecs int
	// SlowCap bounds the slow-query log. Default: 32 entries.
	SlowCap int
}

// slotState is one admission slot's private commit bookkeeping, padded so
// neighbouring slots' counters never share a cache line.
type slotState struct {
	seq uint64 // queries finished on this slot (head-sampling counter)
	_   [7]uint64
}

// Tracer owns the staging cells, rings and slow log for one serving tier.
// Construct with New; the tier wires cells to executors at build time.
type Tracer struct {
	shards  int
	slots   int
	rows    int // 1 + shards: row 0 is the tier row
	sampleN uint64
	slow    time.Duration

	cells []Cell
	rings []ring
	seqs  []slotState
	idGen atomic.Uint64
	log   slowLog
}

// New returns a Tracer for a tier with the given geometry. All memory — the
// cells, every ring, the slow log's record storage — is allocated here;
// nothing on the per-query path allocates.
func New(cfg Config) *Tracer {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.RingRecs <= 0 {
		cfg.RingRecs = 64
	}
	if cfg.SlowCap <= 0 {
		cfg.SlowCap = 32
	}
	t := &Tracer{
		shards: cfg.Shards,
		slots:  cfg.Slots,
		rows:   1 + cfg.Shards,
		slow:   cfg.Slow,
	}
	if cfg.SampleN > 0 {
		t.sampleN = uint64(cfg.SampleN)
	}
	t.cells = make([]Cell, t.rows*t.slots)
	t.rings = make([]ring, t.rows*t.slots)
	for i := range t.rings {
		t.rings[i].init(cfg.RingRecs)
	}
	t.seqs = make([]slotState, t.slots)
	t.log.init(cfg.SlowCap, t.rows*MaxSpans)
	return t
}

// SampleN returns the head-sampling period (0 = disabled).
func (t *Tracer) SampleN() int { return int(t.sampleN) }

// SlowThreshold returns the tail-capture latency threshold (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration { return t.slow }

func (t *Tracer) cell(row, slot int) *Cell { return &t.cells[row*t.slots+slot] }
func (t *Tracer) ringAt(row, slot int) *ring {
	return &t.rings[row*t.slots+slot]
}

// TierCell returns the tier-level staging cell of one admission slot.
func (t *Tracer) TierCell(slot int) *Cell { return t.cell(0, slot) }

// ShardCell returns the staging cell of (document shard, admission slot) —
// the cell wired to that pair's pinned executor.
func (t *Tracer) ShardCell(shard, slot int) *Cell { return t.cell(1+shard, slot) }

// Begin arms the slot's tier row for a query arriving at base. Shard rows
// are armed by the scatter parts that execute them.
func (t *Tracer) Begin(slot int, base time.Time) {
	t.cell(0, slot).Reset(base)
}

// Finish commits the query that just ran on slot: it decides retention
// (forced > slow > sampled), and for retained queries stamps a fresh trace
// ID, publishes every staged row into its (row × slot) ring, and appends
// slow or forced queries to the slow log. Must be called by the slot owner
// after every scatter part has joined; allocation-free.
func (t *Tracer) Finish(slot int, d time.Duration, forced bool) Verdict {
	s := &t.seqs[slot]
	s.seq++
	var v Verdict
	switch {
	case forced:
		v.Reason = ReasonForced
	case t.slow > 0 && d >= t.slow:
		v.Reason = ReasonSlow
	case t.sampleN > 0 && s.seq%t.sampleN == 0:
		v.Reason = ReasonSampled
	default:
		return v
	}
	v.ID = t.idGen.Add(1)
	for row := 0; row < t.rows; row++ {
		c := t.cell(row, slot)
		if c.n == 0 {
			continue
		}
		t.ringAt(row, slot).publish(v.ID, row-1, c.recs[:c.n])
	}
	if v.Reason != ReasonSampled {
		t.log.push(t, slot, v, d)
	}
	return v
}

// Span is one trace record rendered for JSON output (admin endpoints and
// forced-capture responses).
type Span struct {
	Kind     string `json:"kind"`
	Arm      string `json:"arm,omitempty"`
	Shard    int    `json:"shard"` // -1 for tier-level records
	StartNs  uint64 `json:"start_ns"`
	DurNs    uint64 `json:"dur_ns"`
	V1       uint64 `json:"v1"`
	V2       uint64 `json:"v2"`
	Decision string `json:"decision,omitempty"` // KindPlan: decision kind
	Explored bool   `json:"explored,omitempty"`
	Error    bool   `json:"error,omitempty"`
}

func renderSpan(r Rec, shard int) Span {
	s := Span{
		Kind:    r.Kind.String(),
		Shard:   shard,
		StartNs: r.Start,
		DurNs:   r.Dur,
		V1:      r.V1,
		V2:      r.V2,
		Error:   r.Flags&FlagError != 0,
	}
	if r.Arm != ArmNone {
		s.Arm = ArmName(r.Arm)
	}
	if r.Kind == KindPlan {
		if d := DecisionOf(r.Flags); d < int(planner.NumDecisions) {
			s.Decision = planner.Decision(d).String()
		}
		s.Explored = r.Flags&FlagExplored != 0
	}
	return s
}

// Captured is a forced capture's rendered breakdown, returned in the HTTP
// response of an X-Fesia-Trace request.
type Captured struct {
	TraceID   string `json:"trace_id"`
	Reason    string `json:"reason"`
	Truncated bool   `json:"truncated,omitempty"`
	Spans     []Span `json:"spans"`
}

// Capture renders the slot's staged records for the query Finish just
// committed. Must be called while the slot is still owned (before release);
// allocates, so it is reserved for the forced-capture path.
func (t *Tracer) Capture(slot int, v Verdict) *Captured {
	out := &Captured{
		TraceID: formatID(v.ID),
		Reason:  v.Reason.String(),
	}
	for row := 0; row < t.rows; row++ {
		c := t.cell(row, slot)
		if c.trunc {
			out.Truncated = true
		}
		for i := 0; i < c.n; i++ {
			out.Spans = append(out.Spans, renderSpan(c.recs[i], row-1))
		}
	}
	sortSpans(out.Spans)
	return out
}

// sortSpans orders spans by start offset, stable, so a breakdown reads in
// execution order (insertion sort — span lists are tiny).
func sortSpans(s []Span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].StartNs < s[j-1].StartNs; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
