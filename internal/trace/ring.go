package trace

import "sync/atomic"

// Lock-free trace-record rings. Each (row × slot) pair owns one ring written
// exclusively by whichever goroutine holds that admission slot at commit
// time — the same single-writer contract as the staging cells — so writes
// need no locks. Readers (the /debug/traces handler) run concurrently with
// writers; every word is accessed atomically, and a reservation cursor
// advanced *before* a slot's words are rewritten lets a reader detect and
// discard records it caught mid-overwrite, seqlock-style:
//
//	writer: head = n+1; store 6 words of record n; tail = n+1
//	reader: load tail; load record idx < tail; valid iff head <= idx + cap
//
// A record index below tail is fully committed; if head has moved past
// idx+cap the slot was reserved for rewrite while the reader was inside it,
// so the read may be torn and is dropped. Rings hold the most recent
// cap records per (row × slot) — retention is bounded by design.

// recWords is the packed record size: id, kind|arm|shard|flags, start, dur,
// v1, v2.
const recWords = 6

type ring struct {
	words []uint64
	cap   uint64
	head  atomic.Uint64 // records reserved (advanced before the words)
	tail  atomic.Uint64 // records committed (advanced after)
}

func (r *ring) init(capRecs int) {
	r.cap = uint64(capRecs)
	r.words = make([]uint64, capRecs*recWords)
}

// packMeta packs a record's identity word: kind(8) | arm(8) | shard(16,
// two's complement; -1 = tier row) | flags(8).
func packMeta(rec Rec, shard int) uint64 {
	return uint64(rec.Kind) |
		uint64(rec.Arm)<<8 |
		uint64(uint16(int16(shard)))<<16 |
		uint64(rec.Flags)<<32
}

func unpackMeta(m uint64) (kind Kind, arm uint8, shard int, flags uint8) {
	return Kind(m), uint8(m >> 8), int(int16(uint16(m >> 16))), uint8(m >> 32)
}

// publish appends the records stamped with trace id and shard. Single-writer
// (the committing slot owner); allocation-free.
func (r *ring) publish(id uint64, shard int, recs []Rec) {
	cur := r.tail.Load()
	for i := range recs {
		r.head.Store(cur + 1)
		w := r.words[(cur%r.cap)*recWords:]
		atomic.StoreUint64(&w[0], id)
		atomic.StoreUint64(&w[1], packMeta(recs[i], shard))
		atomic.StoreUint64(&w[2], recs[i].Start)
		atomic.StoreUint64(&w[3], recs[i].Dur)
		atomic.StoreUint64(&w[4], recs[i].V1)
		atomic.StoreUint64(&w[5], recs[i].V2)
		cur++
		r.tail.Store(cur)
	}
}

// snapshot streams the ring's current contents, oldest first, skipping
// records overwritten while being read. Safe concurrently with publish.
func (r *ring) snapshot(emit func(id uint64, shard int, rec Rec)) {
	t := r.tail.Load()
	lo := uint64(0)
	if t > r.cap {
		lo = t - r.cap
	}
	for idx := lo; idx < t; idx++ {
		w := r.words[(idx%r.cap)*recWords:]
		id := atomic.LoadUint64(&w[0])
		meta := atomic.LoadUint64(&w[1])
		start := atomic.LoadUint64(&w[2])
		dur := atomic.LoadUint64(&w[3])
		v1 := atomic.LoadUint64(&w[4])
		v2 := atomic.LoadUint64(&w[5])
		if r.head.Load() > idx+r.cap {
			continue // lapped mid-read; words may be torn
		}
		kind, arm, shard, flags := unpackMeta(meta)
		emit(id, shard, Rec{Kind: kind, Arm: arm, Flags: flags,
			Start: start, Dur: dur, V1: v1, V2: v2})
	}
}
