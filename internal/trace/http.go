package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Admin endpoints, matching the stats package's hand-rolled style: plain
// net/http + encoding/json, no dependencies. /debug/traces merges the rings
// lazily into whole traces; /debug/slow renders the slow-query log.

func formatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// TraceJSON is one assembled trace on /debug/traces.
type TraceJSON struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Traces merges every ring's current contents into whole traces, most
// recent first (trace IDs are monotonic), keeping at most limit traces
// (limit <= 0 means all still-assembled traces). A trace whose records have
// partially aged out of a ring is returned with the records that remain.
func (t *Tracer) Traces(limit int) []TraceJSON {
	byID := make(map[uint64][]Span)
	for i := range t.rings {
		t.rings[i].snapshot(func(id uint64, shard int, rec Rec) {
			byID[id] = append(byID[id], renderSpan(rec, shard))
		})
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	// Sort descending (insertion sort; bounded by ring capacity).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] > ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]TraceJSON, 0, len(ids))
	for _, id := range ids {
		spans := byID[id]
		sortSpans(spans)
		out = append(out, TraceJSON{TraceID: formatID(id), Spans: spans})
	}
	return out
}

// Handler serves /debug/traces: recent retained traces as JSON, most recent
// first. ?n= bounds the trace count (default 32).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		limit := 32
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		writeJSON(w, map[string]any{
			"sample_n":     t.SampleN(),
			"slow_ns":      uint64(t.SlowThreshold()),
			"traces_total": t.idGen.Load(),
			"traces":       t.Traces(limit),
		})
	})
}

// SlowHandler serves /debug/slow: the bounded slow-query log as JSON, most
// recent first, each entry with its full span breakdown.
func (t *Tracer) SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"slow_ns": uint64(t.SlowThreshold()),
			"slow":    t.SlowQueries(),
		})
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
