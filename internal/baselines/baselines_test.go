package baselines

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fesia/internal/simd"
)

func refCount(a, b []uint32) int {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	r := 0
	for _, v := range b {
		if in[v] {
			r++
		}
	}
	return r
}

func sortedSet(rng *rand.Rand, n int, universe uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := rng.Uint32() % universe
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// counters under test, all expected to equal refCount on sorted distinct sets.
var counters = []struct {
	name string
	fn   func(a, b []uint32) int
}{
	{"ScalarBranchy", CountScalarBranchy},
	{"Scalar", CountScalar},
	{"ScalarGalloping", CountScalarGalloping},
	{"BMiss", CountBMiss},
	{"Hash", CountHash},
	{"SIMDGallopingSSE", func(a, b []uint32) int { return CountSIMDGalloping(simd.WidthSSE, a, b) }},
	{"SIMDGallopingAVX", func(a, b []uint32) int { return CountSIMDGalloping(simd.WidthAVX, a, b) }},
	{"SIMDGallopingAVX512", func(a, b []uint32) int { return CountSIMDGalloping(simd.WidthAVX512, a, b) }},
	{"ShufflingSSE", func(a, b []uint32) int { return CountShuffling(simd.WidthSSE, a, b) }},
	{"ShufflingAVX", func(a, b []uint32) int { return CountShuffling(simd.WidthAVX, a, b) }},
	{"ShufflingAVX512", func(a, b []uint32) int { return CountShuffling(simd.WidthAVX512, a, b) }},
}

func TestCountersAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ na, nb int }{
		{0, 0}, {0, 10}, {1, 1}, {5, 5}, {16, 16}, {100, 100},
		{7, 1000}, {1000, 7}, {500, 512}, {1000, 1000}, {123, 4567},
	}
	for _, c := range counters {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, sh := range shapes {
				for trial := 0; trial < 4; trial++ {
					universe := uint32(2*(sh.na+sh.nb) + 16)
					if trial%2 == 1 {
						universe *= 100 // sparse: few collisions
					}
					a := sortedSet(rng, sh.na, universe)
					b := sortedSet(rng, sh.nb, universe)
					want := refCount(a, b)
					if got := c.fn(a, b); got != want {
						t.Fatalf("%s(%d,%d,u=%d) = %d, want %d\na=%v\nb=%v",
							c.name, sh.na, sh.nb, universe, got, want, a, b)
					}
				}
			}
		})
	}
}

func TestMaterializingForms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type matFn struct {
		name string
		fn   func(dst, a, b []uint32) int
	}
	mats := []matFn{
		{"Scalar", IntersectScalar},
		{"ScalarGalloping", IntersectScalarGalloping},
		{"BMiss", IntersectBMiss},
		{"ShufflingSSE", func(dst, a, b []uint32) int { return IntersectShuffling(simd.WidthSSE, dst, a, b) }},
	}
	for _, m := range mats {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				na := rng.Intn(300)
				nb := rng.Intn(300)
				universe := uint32(na + nb + 50)
				a := sortedSet(rng, na, universe)
				b := sortedSet(rng, nb, universe)
				want := refCount(a, b)
				dst := make([]uint32, min(na, nb)+1)
				n := m.fn(dst, a, b)
				if n != want {
					t.Fatalf("%s count = %d, want %d", m.name, n, want)
				}
				for i := 1; i < n; i++ {
					if dst[i-1] >= dst[i] {
						t.Fatalf("%s output not ascending: %v", m.name, dst[:n])
					}
				}
				for _, v := range dst[:n] {
					if refCount([]uint32{v}, a) != 1 || refCount([]uint32{v}, b) != 1 {
						t.Fatalf("%s emitted non-member %d", m.name, v)
					}
				}
			}
		})
	}
}

func TestKWayVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kways := []struct {
		name string
		fn   func(sets [][]uint32) int
	}{
		{"ScalarK", CountScalarK},
		{"GallopingK", CountScalarGallopingK},
		{"BMissK", CountBMissK},
		{"HashK", CountHashK},
		{"ShufflingK", func(sets [][]uint32) int { return CountShufflingK(simd.WidthAVX, sets) }},
	}
	for _, kw := range kways {
		kw := kw
		t.Run(kw.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 3, 4} {
				for trial := 0; trial < 10; trial++ {
					sets := make([][]uint32, k)
					universe := uint32(600)
					for i := range sets {
						sets[i] = sortedSet(rng, 100+rng.Intn(200), universe)
					}
					want := sets[0]
					for i := 1; i < k; i++ {
						var tmp []uint32
						for _, v := range want {
							if refCount([]uint32{v}, sets[i]) == 1 {
								tmp = append(tmp, v)
							}
						}
						want = tmp
					}
					if got := kw.fn(sets); got != len(want) {
						t.Fatalf("%s(k=%d) = %d, want %d", kw.name, k, got, len(want))
					}
				}
			}
		})
	}
	for _, kw := range kways {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty) should panic", kw.name)
				}
			}()
			kw.fn(nil)
		}()
	}
}

func TestGallopLowerBound(t *testing.T) {
	s := []uint32{2, 4, 6, 8, 10, 12, 14}
	cases := []struct {
		lo   int
		x    uint32
		want int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {0, 14, 6}, {0, 15, 7},
		{3, 7, 3}, {3, 9, 4}, {6, 14, 6}, {7, 99, 7},
	}
	for _, c := range cases {
		if got := gallopLowerBound(s, c.lo, c.x); got != c.want {
			t.Errorf("gallopLowerBound(lo=%d, x=%d) = %d, want %d", c.lo, c.x, got, c.want)
		}
	}
}

// Property: gallopLowerBound equals sort.Search from any starting offset.
func TestGallopLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sortedSet(r, r.Intn(200), 500)
		lo := 0
		if len(s) > 0 {
			lo = r.Intn(len(s))
		}
		x := uint32(r.Intn(520))
		want := lo + sort.Search(len(s)-lo, func(i int) bool { return s[lo+i] >= x })
		return gallopLowerBound(s, lo, x) == want
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashTable(t *testing.T) {
	elems := []uint32{0, 1, 5, 1 << 31, ^uint32(0)}
	ht := BuildHashTable(elems)
	if ht.Len() != len(elems) {
		t.Errorf("Len = %d, want %d", ht.Len(), len(elems))
	}
	for _, x := range elems {
		if !ht.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []uint32{2, 3, 4, 100, 1<<31 - 1} {
		if ht.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	// Duplicates collapse.
	if BuildHashTable([]uint32{7, 7, 7}).Len() != 1 {
		t.Error("duplicates should collapse")
	}
	// Empty table.
	if BuildHashTable(nil).CountProbe([]uint32{1, 2}) != 0 {
		t.Error("empty table probe should be 0")
	}
	dst := make([]uint32, 2)
	if n := ht.IntersectProbe(dst, []uint32{3, 5, 9, 0}); n != 2 || dst[0] != 5 || dst[1] != 0 {
		t.Errorf("IntersectProbe = %v (n=%d)", dst[:n], n)
	}
}

// Property: every counter agrees with every other on random inputs (pairwise
// cross-validation, catching shared-reference bugs).
func TestCrossValidationQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := sortedSet(r, r.Intn(400), 1024)
		b := sortedSet(r, r.Intn(400), 1024)
		want := refCount(a, b)
		for _, c := range counters {
			if c.fn(a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestB2U(t *testing.T) {
	if b2u(true) != 1 || b2u(false) != 0 {
		t.Error("b2u wrong")
	}
}
