package baselines

import (
	"fesia/internal/hashutil"
)

// Fast [4] (Ding & König, PVLDB 2011) is the bitmap-based predecessor FESIA
// builds on: elements are hashed into an m-bit bitmap (m ≈ n·√w for machine
// word size w), the bitmaps of two sets are ANDed word by word, and for
// every non-zero word the elements mapped to that word are verified with a
// scalar merge. It achieves the same O(n/√w + r) bound as FESIA but — as
// Table I of the FESIA paper notes — does not use SIMD: the word size is
// the 64-bit machine word, the groups are word-sized (no segment
// transformation), and verification is scalar. It is the natural ablation
// point between scalar merge and FESIA.

// FastSet is the preprocessed form of one set for the Fast algorithm.
type FastSet struct {
	words   []uint64
	offsets []uint32 // per-word group offsets into reordered (len = #words+1)
	elems   []uint32 // elements grouped by word, sorted within each group
	n       int
	hasher  hashutil.Hasher
}

// fastWordBits is the "SIMD width" of Fast: the machine word.
const fastWordBits = 64

// NewFastSet preprocesses a set (unsorted, duplicates allowed) for Fast
// intersection. All FastSets that will be intersected must be built by this
// function (they share one hash function).
func NewFastSet(elems []uint32) *FastSet {
	sorted := append([]uint32(nil), elems...)
	insertionSortU32(sorted)
	k := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[k-1] {
			sorted[k] = v
			k++
		}
	}
	sorted = sorted[:k]
	n := len(sorted)

	// m = n·√w rounded to a power of two, at least one word.
	mBits := hashutil.NextPow2(uint64(n) * 8) // √64 = 8
	if mBits < fastWordBits {
		mBits = fastWordBits
	}
	nWords := int(mBits) / fastWordBits

	f := &FastSet{
		words:   make([]uint64, nWords),
		offsets: make([]uint32, nWords+1),
		elems:   make([]uint32, n),
		n:       n,
		hasher:  hashutil.New(0xFA57),
	}
	counts := make([]uint32, nWords)
	wordOf := make([]int32, n)
	for i, x := range sorted {
		pos := f.hasher.Pos(x, mBits)
		f.words[pos>>6] |= 1 << (pos & 63)
		wordOf[i] = int32(pos >> 6)
		counts[pos>>6]++
	}
	sum := uint32(0)
	for i, c := range counts {
		f.offsets[i] = sum
		sum += c
	}
	f.offsets[nWords] = sum
	next := append([]uint32(nil), f.offsets[:nWords]...)
	for i, x := range sorted {
		w := wordOf[i]
		f.elems[next[w]] = x
		next[w]++
	}
	return f
}

// insertionSortU32 sorts small-to-medium slices without pulling in
// sort.Slice's reflection for the hot preprocessing path.
func insertionSortU32(s []uint32) {
	if len(s) > 64 {
		quickSortU32(s)
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func quickSortU32(s []uint32) {
	for len(s) > 64 {
		p := partitionU32(s)
		if p < len(s)-p {
			quickSortU32(s[:p])
			s = s[p:]
		} else {
			quickSortU32(s[p:])
			s = s[:p]
		}
	}
	insertionSortU32(s)
}

func partitionU32(s []uint32) int {
	// Median-of-three pivot.
	mid := len(s) / 2
	if s[0] > s[mid] {
		s[0], s[mid] = s[mid], s[0]
	}
	if s[mid] > s[len(s)-1] {
		s[mid], s[len(s)-1] = s[len(s)-1], s[mid]
		if s[0] > s[mid] {
			s[0], s[mid] = s[mid], s[0]
		}
	}
	pivot := s[mid]
	i, j := 0, len(s)-1
	for {
		for s[i] < pivot {
			i++
		}
		for s[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}

// Len returns the number of distinct elements.
func (f *FastSet) Len() int { return f.n }

// group returns the sorted elements hashed into word w.
func (f *FastSet) group(w int) []uint32 {
	return f.elems[f.offsets[w]:f.offsets[w+1]]
}

// CountFast returns |a ∩ b|: word-wise bitmap AND, scalar merge on the
// groups of the surviving words. Bitmap sizes may differ (powers of two;
// the smaller wraps, as in FESIA's Section III-C, which Fast's hashing
// scheme also supports because positions are low bits of one hash).
func CountFast(a, b *FastSet) int {
	x, y := a, b
	if len(x.words) < len(y.words) {
		x, y = y, x
	}
	wordMask := len(y.words) - 1
	r := 0
	for i, wx := range x.words {
		if wx&y.words[i&wordMask] == 0 {
			continue
		}
		r += CountScalar(x.group(i), y.group(i&wordMask))
	}
	return r
}

// IntersectFast writes a ∩ b into dst (group order; ascending within each
// group) and returns the count.
func IntersectFast(dst []uint32, a, b *FastSet) int {
	x, y := a, b
	if len(x.words) < len(y.words) {
		x, y = y, x
	}
	wordMask := len(y.words) - 1
	r := 0
	for i, wx := range x.words {
		if wx&y.words[i&wordMask] == 0 {
			continue
		}
		r += IntersectScalar(dst[r:], x.group(i), y.group(i&wordMask))
	}
	return r
}
