package baselines

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHieraSet(t *testing.T) {
	// Values spanning three high-16-bit buckets.
	elems := []uint32{1, 2, 0x10000, 0x10005, 0x10FFFF, 0x30000}
	h := NewHieraSet(elems)
	if h.Len() != 6 {
		t.Fatalf("Len = %d", h.Len())
	}
	if len(h.keys) != 4 { // highs: 0, 1, 0x10, 3
		t.Fatalf("keys = %v", h.keys)
	}
	total := 0
	for i := range h.keys {
		bkt := h.bucket(i)
		total += len(bkt)
		for j := 1; j < len(bkt); j++ {
			if bkt[j-1] >= bkt[j] {
				t.Fatalf("bucket %d not ascending: %v", i, bkt)
			}
		}
	}
	if total != 6 {
		t.Fatalf("buckets hold %d", total)
	}
	empty := NewHieraSet(nil)
	if empty.Len() != 0 || len(empty.keys) != 0 {
		t.Error("empty HieraSet malformed")
	}
}

func TestCountHieraAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		na, nb   int
		universe uint32
	}{
		{0, 0, 100}, {0, 50, 100}, {10, 10, 50},
		// Dense: many elements share buckets (Hiera's favourable case).
		{2000, 2000, 5000},
		// Sparse: ~one element per bucket (Hiera degrades to scalar).
		{2000, 2000, 1 << 31},
		// Bucket-boundary stress: values near multiples of 65536.
		{500, 500, 1 << 18},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 4; trial++ {
			a := sortedSet(rng, sh.na, sh.universe)
			b := sortedSet(rng, sh.nb, sh.universe)
			want := refCount(a, b)
			if got := CountHieraFromSorted(a, b); got != want {
				t.Fatalf("CountHiera(%+v) = %d, want %d", sh, got, want)
			}
		}
	}
	// Extremes: low halves 0x0000 and 0xFFFF, high halves 0 and 0xFFFF.
	a := []uint32{0, 0xFFFF, 0x10000, 0xFFFF0000, 0xFFFFFFFF}
	b := []uint32{0, 0x1FFFF, 0xFFFF0000, 0xFFFFFFFF}
	if got := CountHieraFromSorted(a, b); got != 3 {
		t.Errorf("extremes = %d, want 3", got)
	}
}

// Property: Hiera agrees with scalar merge on arbitrary sorted sets.
func TestHieraQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, dense bool) bool {
		r := rand.New(rand.NewSource(seed))
		universe := uint32(1 << 30)
		if dense {
			universe = 3000
		}
		a := sortedSet(rng, r.Intn(800), universe)
		b := sortedSet(rng, r.Intn(800), universe)
		return CountHieraFromSorted(a, b) == refCount(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSttniCount(t *testing.T) {
	mk := func(vals ...uint16) []uint16 {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return vals
	}
	cases := []struct {
		a, b []uint16
		want int
	}{
		{nil, nil, 0},
		{mk(1, 2, 3), mk(2, 3, 4), 2},
		{mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), mk(5, 6, 7, 8, 9, 10, 11, 12, 13, 14), 6},
		{mk(0, 0xFFFF), mk(0xFFFF), 1},
	}
	for _, c := range cases {
		if got := sttniCount(c.a, c.b); got != c.want {
			t.Errorf("sttniCount(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
