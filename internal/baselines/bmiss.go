package baselines

import "math/bits"

// BMiss [1] (Inoue, Ohara, Taura, PVLDB 2014) reduces branch mispredictions
// in merge-based intersection by working on fixed-size blocks and splitting
// the comparison into two phases: a cheap branch-free candidate filter on
// partial keys (the paper uses SIMD byte comparisons), then a verification
// pass over the few candidates. The merge advance happens a whole block at a
// time with a predictable branch.

// bmissBlock is the block size; the original work evaluates blocks of this
// order and it keeps the candidate mask in one machine word (8x8 pairs).
const bmissBlock = 8

// CountBMiss counts |a ∩ b| with the block-based two-phase method.
func CountBMiss(a, b []uint32) int {
	const v = bmissBlock
	i, j, r := 0, 0, 0
	for i+v <= len(a) && j+v <= len(b) {
		// Fast block skip: disjoint ranges need no element comparisons.
		if a[i+v-1] < b[j] {
			i += v
			continue
		}
		if b[j+v-1] < a[i] {
			j += v
			continue
		}
		// Phase 1: branch-free candidate filter on the low bytes of every
		// pair — the software analogue of the STTNI byte comparison.
		var cand uint64
		for x := 0; x < v; x++ {
			ax := uint8(a[i+x])
			for y := 0; y < v; y++ {
				cand |= uint64(b2u(ax == uint8(b[j+y]))) << uint(x*v+y)
			}
		}
		// Phase 2: verify candidates on the full 32-bit keys.
		for cand != 0 {
			p := trailingZeros64(cand)
			cand &= cand - 1
			if a[i+p/v] == b[j+p%v] {
				r++
			}
		}
		amax, bmax := a[i+v-1], b[j+v-1]
		i += v * b2u(amax <= bmax)
		j += v * b2u(bmax <= amax)
	}
	return r + CountScalar(a[i:], b[j:])
}

// IntersectBMiss is the materializing form of CountBMiss. Matches inside a
// block are discovered in a-index order, which preserves ascending output.
func IntersectBMiss(dst, a, b []uint32) int {
	const v = bmissBlock
	i, j, r := 0, 0, 0
	for i+v <= len(a) && j+v <= len(b) {
		if a[i+v-1] < b[j] {
			i += v
			continue
		}
		if b[j+v-1] < a[i] {
			j += v
			continue
		}
		var cand uint64
		for x := 0; x < v; x++ {
			ax := uint8(a[i+x])
			for y := 0; y < v; y++ {
				cand |= uint64(b2u(ax == uint8(b[j+y]))) << uint(x*v+y)
			}
		}
		for cand != 0 {
			p := trailingZeros64(cand)
			cand &= cand - 1
			if a[i+p/v] == b[j+p%v] {
				dst[r] = a[i+p/v]
				r++
			}
		}
		amax, bmax := a[i+v-1], b[j+v-1]
		i += v * b2u(amax <= bmax)
		j += v * b2u(bmax <= amax)
	}
	return r + IntersectScalar(dst[r:], a[i:], b[j:])
}

// CountBMissK chains pairwise BMiss intersections, O(n1 + ... + nk).
func CountBMissK(sets [][]uint32) int {
	switch len(sets) {
	case 0:
		panic("baselines: intersection of zero sets")
	case 1:
		return len(sets[0])
	case 2:
		return CountBMiss(sets[0], sets[1])
	}
	cur := sets[0]
	buf := make([]uint32, maxLen(sets))
	for _, s := range sets[1 : len(sets)-1] {
		n := IntersectBMiss(buf, cur, s)
		if n == 0 {
			return 0
		}
		cur = buf[:n]
	}
	return CountBMiss(cur, sets[len(sets)-1])
}

func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }
