package baselines

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

var benchSink int

// BenchmarkMethods2Way measures every 2-way counting method on equal-size
// inputs at 1% selectivity.
func BenchmarkMethods2Way(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1000, 100_000} {
		x := sortedSet(rng, n, uint32(16*n))
		y := sortedSet(rng, n, uint32(16*n))
		ht := BuildHashTable(y)
		fx, fy := NewFastSet(x), NewFastSet(y)
		methods := []struct {
			name string
			fn   func() int
		}{
			{"ScalarBranchy", func() int { return CountScalarBranchy(x, y) }},
			{"Scalar", func() int { return CountScalar(x, y) }},
			{"ScalarGalloping", func() int { return CountScalarGalloping(x, y) }},
			{"SIMDGalloping", func() int { return CountSIMDGalloping(simd.WidthAVX, x, y) }},
			{"BMiss", func() int { return CountBMiss(x, y) }},
			{"Shuffling", func() int { return CountShuffling(simd.WidthAVX, x, y) }},
			{"HashProbe", func() int { return ht.CountProbe(x) }},
			{"Fast", func() int { return CountFast(fx, fy) }},
		}
		for _, m := range methods {
			b.Run(fmt.Sprintf("n=%d/%s", n, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += m.fn()
				}
			})
		}
	}
}

// BenchmarkSkewedGalloping shows galloping's O(n1 log n2) advantage on
// heavily skewed inputs.
func BenchmarkSkewedGalloping(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	small := sortedSet(rng, 100, 1<<24)
	large := sortedSet(rng, 1_000_000, 1<<24)
	b.Run("ScalarMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += CountScalar(small, large)
		}
	})
	b.Run("ScalarGalloping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += CountScalarGalloping(small, large)
		}
	})
	b.Run("SIMDGalloping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += CountSIMDGalloping(simd.WidthAVX, small, large)
		}
	})
}

func BenchmarkHashTableBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	elems := sortedSet(rng, 100_000, 1<<24)
	for i := 0; i < b.N; i++ {
		benchSink += BuildHashTable(elems).Len()
	}
}

func BenchmarkFastSetBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	elems := make([]uint32, 100_000)
	for i := range elems {
		elems[i] = rng.Uint32()
	}
	for i := 0; i < b.N; i++ {
		benchSink += NewFastSet(elems).Len()
	}
}
