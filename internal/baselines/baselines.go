// Package baselines implements the state-of-the-art set intersection methods
// FESIA is evaluated against in Section VII-A of the paper:
//
//	Scalar          — optimized scalar merge with conditional moves
//	                  (branch-free variant of Listing 1)
//	ScalarBranchy   — the textbook merge of Listing 1, for reference
//	ScalarGalloping — binary-search based intersection [Bentley & Yao]
//	SIMDGalloping   — the vectorized galloping of Lemire et al. [2]
//	BMiss           — the block-based, branch-misprediction-avoiding
//	                  intersection of Inoue et al. [1]
//	Shuffling       — the SSE all-pairs block comparison of Katsov [13],
//	                  advancing whole vectors at a time
//	Hash            — build a hash table on one set, probe with the other
//
// All methods operate on sorted, duplicate-free []uint32 slices and have
// Count (size only) and Intersect (materializing) forms; the merge- and
// search-based families also provide k-way variants with the complexities
// listed in Table I.
package baselines

import (
	"fmt"

	"fesia/internal/simd"
)

// b2u converts a bool to 0/1 without a branch in the generated code.
func b2u(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Scalar merge (Listing 1) and its conditional-move variant.
// ---------------------------------------------------------------------------

// CountScalarBranchy is the literal merge loop of Listing 1.
func CountScalarBranchy(a, b []uint32) int {
	i, j, r := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			i++
		} else if a[i] > b[j] {
			j++
		} else {
			i++
			j++
			r++
		}
	}
	return r
}

// CountScalar is the paper's "Scalar" baseline: the merge loop with the
// expensive if-else chain replaced by conditional moves (here, branch-free
// integer increments the compiler lowers to CMOV/SETcc).
func CountScalar(a, b []uint32) int {
	i, j, r := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		r += b2u(av == bv)
		i += b2u(av <= bv)
		j += b2u(bv <= av)
	}
	return r
}

// IntersectScalar merges a ∩ b into dst (ascending) and returns the count.
func IntersectScalar(dst, a, b []uint32) int {
	i, j, r := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			dst[r] = av
			r++
		}
		i += b2u(av <= bv)
		j += b2u(bv <= av)
	}
	return r
}

// CountScalarK intersects k sorted sets by iterative pairwise merging,
// O(n1 + n2 + ... + nk).
func CountScalarK(sets [][]uint32) int {
	switch len(sets) {
	case 0:
		panic("baselines: intersection of zero sets")
	case 1:
		return len(sets[0])
	}
	cur := sets[0]
	var buf []uint32
	for _, s := range sets[1:] {
		if buf == nil {
			buf = make([]uint32, min(len(cur), maxLen(sets)))
		}
		n := IntersectScalar(buf, cur, s)
		cur = buf[:n]
		if n == 0 {
			return 0
		}
	}
	return len(cur)
}

func maxLen(sets [][]uint32) int {
	m := 0
	for _, s := range sets {
		m = max(m, len(s))
	}
	return m
}

// ---------------------------------------------------------------------------
// Galloping (binary-search based) intersection.
// ---------------------------------------------------------------------------

// gallopLowerBound returns the smallest index i in s[lo:] with s[i] >= x,
// using exponential probing followed by binary search — O(log d) where d is
// the distance advanced, the key property behind Galloping's
// O(n1 log n2) bound.
func gallopLowerBound(s []uint32, lo int, x uint32) int {
	if lo >= len(s) || s[lo] >= x {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(s) && s[hi] < x {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(s) {
		hi = len(s)
	}
	// Binary search in (lo, hi].
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// CountScalarGalloping looks every element of the smaller set up in the
// larger set with galloping search.
func CountScalarGalloping(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	r, pos := 0, 0
	for _, x := range a {
		pos = gallopLowerBound(b, pos, x)
		if pos == len(b) {
			break
		}
		if b[pos] == x {
			r++
			pos++
		}
	}
	return r
}

// IntersectScalarGalloping is the materializing form of CountScalarGalloping.
func IntersectScalarGalloping(dst, a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	r, pos := 0, 0
	for _, x := range a {
		pos = gallopLowerBound(b, pos, x)
		if pos == len(b) {
			break
		}
		if b[pos] == x {
			dst[r] = x
			r++
			pos++
		}
	}
	return r
}

// CountScalarGallopingK anchors the smallest set and looks each of its
// elements up in every other set: n1(log n2 + ... + log nk), Table I.
func CountScalarGallopingK(sets [][]uint32) int {
	switch len(sets) {
	case 0:
		panic("baselines: intersection of zero sets")
	case 1:
		return len(sets[0])
	}
	ord := append([][]uint32(nil), sets...)
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && len(ord[j]) < len(ord[j-1]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	anchor := ord[0]
	others := ord[1:]
	pos := make([]int, len(others))
	r := 0
outer:
	for _, x := range anchor {
		for k, s := range others {
			p := gallopLowerBound(s, pos[k], x)
			pos[k] = p
			if p == len(s) {
				break outer
			}
			if s[p] != x {
				continue outer
			}
		}
		r++
	}
	return r
}

// ---------------------------------------------------------------------------
// SIMDGalloping [2]: gallop in vector-sized blocks, then confirm membership
// with one broadcast-and-compare over the block.
// ---------------------------------------------------------------------------

// CountSIMDGalloping is the vectorized galloping of Lemire et al.: the
// larger list is probed in blocks of V = w/32 elements; the final membership
// test is a single vector comparison instead of the scalar binary-search
// tail.
func CountSIMDGalloping(w simd.Width, a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	v := w.Lanes()
	r, pos := 0, 0
	for _, x := range a {
		// Gallop over whole blocks: find the first block whose last
		// element is >= x.
		lo := pos / v
		nBlocks := (len(b) + v - 1) / v
		if lo >= nBlocks {
			break
		}
		blockLast := func(bi int) uint32 {
			end := (bi+1)*v - 1
			if end >= len(b) {
				end = len(b) - 1
			}
			return b[end]
		}
		if blockLast(lo) < x {
			step := 1
			hi := lo + 1
			for hi < nBlocks && blockLast(hi) < x {
				lo = hi
				step <<= 1
				hi = lo + step
			}
			if hi > nBlocks {
				hi = nBlocks
			}
			for lo+1 < hi {
				mid := int(uint(lo+hi) >> 1)
				if blockLast(mid) < x {
					lo = mid
				} else {
					hi = mid
				}
			}
			lo = hi
		}
		if lo >= nBlocks {
			break
		}
		pos = lo * v
		// One vector comparison confirms membership in the block.
		if blockContains(b[pos:min(pos+v, len(b))], x) {
			r++
		}
	}
	return r
}

// blockContains compares x against one block of at most V elements — the
// broadcast-and-compare that replaces the scalar binary-search tail in
// SIMDGalloping, in the repository's one-op-per-comparison currency.
func blockContains(blk []uint32, x uint32) bool {
	var acc uint32
	for _, v := range blk {
		acc |= eqbit(v, x)
	}
	return acc != 0
}

// eqbit returns 1 when x == y and 0 otherwise, branch-free (the shared
// comparison currency; see internal/kernels).
func eqbit(x, y uint32) uint32 {
	d := x ^ y
	return ^uint32(int32(d|-d)>>31) & 1
}

// ---------------------------------------------------------------------------
// Shuffling [13]: all-pairs comparison of one vector from each list via
// cyclic rotations, advancing whichever list's block ends first.
// ---------------------------------------------------------------------------

// CountShuffling implements the shuffling intersection of Katsov [13]: take
// one register's worth (V elements) from each list, perform the complete
// all-pairs comparison (on hardware, V compares against cyclic rotations of
// one register; here, the same V·V element comparisons in the shared
// one-op-per-comparison currency), and advance whichever block's last
// element is smaller (both on a tie).
func CountShuffling(w simd.Width, a, b []uint32) int {
	if !w.Valid() {
		panic(fmt.Sprintf("baselines: unsupported width %d", w))
	}
	v := w.Lanes()
	r, i, j := 0, 0, 0
	for i+v <= len(a) && j+v <= len(b) {
		// All-pairs block comparison, counting matched a-lanes.
		for ii := i; ii < i+v; ii++ {
			x := a[ii]
			var acc uint32
			for jj := j; jj < j+v; jj++ {
				acc |= eqbit(x, b[jj])
			}
			r += int(acc)
		}
		amax, bmax := a[i+v-1], b[j+v-1]
		i += v * b2u(amax <= bmax)
		j += v * b2u(bmax <= amax)
	}
	return r + CountScalar(a[i:], b[j:])
}

// IntersectShuffling materializes the shuffling intersection at the given
// width. Matched a-lanes are appended in index order, so output stays
// ascending.
func IntersectShuffling(w simd.Width, dst, a, b []uint32) int {
	if !w.Valid() {
		panic(fmt.Sprintf("baselines: unsupported width %d", w))
	}
	v := w.Lanes()
	r, i, j := 0, 0, 0
	for i+v <= len(a) && j+v <= len(b) {
		for ii := i; ii < i+v; ii++ {
			x := a[ii]
			var acc uint32
			for jj := j; jj < j+v; jj++ {
				acc |= eqbit(x, b[jj])
			}
			if acc != 0 {
				dst[r] = x
				r++
			}
		}
		amax, bmax := a[i+v-1], b[j+v-1]
		i += v * b2u(amax <= bmax)
		j += v * b2u(bmax <= amax)
	}
	return r + IntersectScalar(dst[r:], a[i:], b[j:])
}

// CountShufflingK chains pairwise shuffling intersections,
// O(n1 + n2 + ... + nk) as in Table I.
func CountShufflingK(w simd.Width, sets [][]uint32) int {
	switch len(sets) {
	case 0:
		panic("baselines: intersection of zero sets")
	case 1:
		return len(sets[0])
	case 2:
		return CountShuffling(w, sets[0], sets[1])
	}
	// Materialize intermediates with the SSE variant, then count last.
	cur := sets[0]
	buf := make([]uint32, maxLen(sets))
	for _, s := range sets[1 : len(sets)-1] {
		n := IntersectShuffling(simd.WidthSSE, buf, cur, s)
		if n == 0 {
			return 0
		}
		cur = buf[:n]
	}
	return CountShuffling(w, cur, sets[len(sets)-1])
}
