package baselines

import "fesia/internal/hashutil"

// Hash-based intersection (Section II-A): build a hash table from one set,
// probe it with the elements of the other — O(min(n1, n2)) when the table is
// built on the larger set offline and probed with the smaller, which is how
// FESIA's evaluation treats all preprocessing.
//
// The table is a linear-probing open-addressing table over uint32 keys,
// storing key+1 in a uint64 slot so zero means empty. Load factor <= 0.5.

// HashTable is an immutable open-addressing set over uint32 keys.
type HashTable struct {
	slots  []uint64
	mask   uint64
	hasher hashutil.Hasher
	n      int
}

// BuildHashTable constructs a table over the elements of s (duplicates
// collapse).
func BuildHashTable(s []uint32) *HashTable {
	capacity := hashutil.NextPow2(uint64(len(s))*2 + 1)
	if capacity < 8 {
		capacity = 8
	}
	t := &HashTable{
		slots:  make([]uint64, capacity),
		mask:   capacity - 1,
		hasher: hashutil.New(0x5ca1ab1e),
	}
	for _, x := range s {
		if t.insert(x) {
			t.n++
		}
	}
	return t
}

func (t *HashTable) insert(x uint32) bool {
	v := uint64(x) + 1
	i := t.hasher.Hash(x) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			t.slots[i] = v
			return true
		}
		if s == v {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of distinct keys.
func (t *HashTable) Len() int { return t.n }

// Contains reports whether x is in the table.
func (t *HashTable) Contains(x uint32) bool {
	v := uint64(x) + 1
	i := t.hasher.Hash(x) & t.mask
	for {
		s := t.slots[i]
		if s == v {
			return true
		}
		if s == 0 {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// CountProbe counts how many elements of probe are in the table.
func (t *HashTable) CountProbe(probe []uint32) int {
	r := 0
	for _, x := range probe {
		if t.Contains(x) {
			r++
		}
	}
	return r
}

// IntersectProbe writes the elements of probe found in the table into dst
// (in probe order) and returns the count.
func (t *HashTable) IntersectProbe(dst, probe []uint32) int {
	r := 0
	for _, x := range probe {
		if t.Contains(x) {
			dst[r] = x
			r++
		}
	}
	return r
}

// CountHash is the end-to-end hash intersection: build on the larger set,
// probe with the smaller.
func CountHash(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	return BuildHashTable(b).CountProbe(a)
}

// CountHashK probes the smallest set's elements through tables built on all
// other sets.
func CountHashK(sets [][]uint32) int {
	switch len(sets) {
	case 0:
		panic("baselines: intersection of zero sets")
	case 1:
		return len(sets[0])
	}
	smallest := 0
	for i, s := range sets {
		if len(s) < len(sets[smallest]) {
			smallest = i
		}
	}
	tables := make([]*HashTable, 0, len(sets)-1)
	for i, s := range sets {
		if i != smallest {
			tables = append(tables, BuildHashTable(s))
		}
	}
	r := 0
outer:
	for _, x := range sets[smallest] {
		for _, t := range tables {
			if !t.Contains(x) {
				continue outer
			}
		}
		r++
	}
	return r
}
