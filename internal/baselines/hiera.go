package baselines

// Hiera [3] (Schlegel, Willhalm, Lehner, ADMS 2011) intersects sorted sets
// with the STTNI string-comparison instruction, which performs all-pairs
// equality over 8/16-bit lanes. Because STTNI only handles 16-bit values,
// Hiera stores each set hierarchically: values are bucketed by their high
// 16 bits, and each bucket keeps the sorted low 16-bit halves. Intersection
// walks the two bucket lists like a merge; when bucket keys match, the
// low-half arrays are intersected with the all-pairs comparison (here in the
// repository's one-op-per-comparison currency, 8 lanes per emulated
// register, mirroring the 128-bit STTNI operand).
//
// The FESIA paper notes two Hiera limitations that this implementation
// reproduces faithfully: effectiveness depends on the data distribution
// (sparse data means one element per bucket, degrading to scalar merge with
// extra bucket overhead), and it needs STTNI-class hardware (here, the
// emulated all-pairs block).

// HieraSet is the two-level representation of one set.
type HieraSet struct {
	keys    []uint16 // sorted distinct high halves
	offsets []uint32 // per-bucket offsets into lows (len = len(keys)+1)
	lows    []uint16 // sorted low halves, grouped by bucket
	n       int
}

// NewHieraSet builds the hierarchical representation from a sorted
// duplicate-free set.
func NewHieraSet(sorted []uint32) *HieraSet {
	h := &HieraSet{n: len(sorted)}
	var curKey uint32
	first := true
	for _, v := range sorted {
		hi := v >> 16
		if first || hi != curKey {
			h.keys = append(h.keys, uint16(hi))
			h.offsets = append(h.offsets, uint32(len(h.lows)))
			curKey = hi
			first = false
		}
		h.lows = append(h.lows, uint16(v))
	}
	h.offsets = append(h.offsets, uint32(len(h.lows)))
	return h
}

// Len returns the number of elements.
func (h *HieraSet) Len() int { return h.n }

// bucket returns the sorted low halves of bucket i.
func (h *HieraSet) bucket(i int) []uint16 {
	return h.lows[h.offsets[i]:h.offsets[i+1]]
}

// sttniWidth is the lane count of the emulated 128-bit 16-bit-lane STTNI
// comparison (PCMPESTRM compares up to 8 words against 8 words).
const sttniWidth = 8

// eqbit16 is the 16-bit branchless equality bit.
func eqbit16(x, y uint16) uint32 {
	d := uint32(x ^ y)
	return ^uint32(int32(d|-d)>>31) & 1
}

// sttniCount counts |a ∩ b| for sorted distinct uint16 slices with the
// block-wise all-pairs comparison STTNI performs, advancing whichever block
// ends first (the Hiera inner loop).
func sttniCount(a, b []uint16) int {
	const v = sttniWidth
	r, i, j := 0, 0, 0
	for i+v <= len(a) && j+v <= len(b) {
		for ii := i; ii < i+v; ii++ {
			x := a[ii]
			var acc uint32
			for jj := j; jj < j+v; jj++ {
				acc |= eqbit16(x, b[jj])
			}
			r += int(acc)
		}
		amax, bmax := a[i+v-1], b[j+v-1]
		i += v * b2u(amax <= bmax)
		j += v * b2u(bmax <= amax)
	}
	// Scalar tail.
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		r += int(eqbit16(av, bv))
		i += b2u(av <= bv)
		j += b2u(bv <= av)
	}
	return r
}

// CountHiera returns |a ∩ b| by merging the bucket key lists and applying
// the STTNI-style comparison inside matching buckets, O(n1 + n2).
func CountHiera(a, b *HieraSet) int {
	r, i, j := 0, 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		ka, kb := a.keys[i], b.keys[j]
		if ka == kb {
			r += sttniCount(a.bucket(i), b.bucket(j))
			i++
			j++
		} else if ka < kb {
			i++
		} else {
			j++
		}
	}
	return r
}

// CountHieraFromSorted is the convenience form over raw sorted sets
// (construction included — Hiera's build is cheap and linear).
func CountHieraFromSorted(a, b []uint32) int {
	return CountHiera(NewHieraSet(a), NewHieraSet(b))
}
