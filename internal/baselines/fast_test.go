package baselines

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFastSetBasics(t *testing.T) {
	f := NewFastSet([]uint32{5, 1, 5, 9, 1})
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3 (dedup)", f.Len())
	}
	total := 0
	for w := 0; w < len(f.words); w++ {
		g := f.group(w)
		total += len(g)
		for i := 1; i < len(g); i++ {
			if g[i-1] >= g[i] {
				t.Errorf("group %d not ascending: %v", w, g)
			}
		}
	}
	if total != 3 {
		t.Errorf("groups hold %d elements", total)
	}
	empty := NewFastSet(nil)
	if empty.Len() != 0 || len(empty.words) != 1 {
		t.Errorf("empty FastSet: len=%d words=%d", empty.Len(), len(empty.words))
	}
}

func TestCountFastAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ na, nb int }{
		{0, 0}, {0, 50}, {1, 1}, {10, 10}, {100, 100},
		{5, 5000}, {5000, 5}, {2000, 2000},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 4; trial++ {
			universe := uint32(2*(sh.na+sh.nb) + 16)
			if trial%2 == 1 {
				universe *= 64
			}
			ea := sortedSet(rng, sh.na, universe)
			eb := sortedSet(rng, sh.nb, universe)
			want := refCount(ea, eb)
			fa, fb := NewFastSet(ea), NewFastSet(eb)
			if got := CountFast(fa, fb); got != want {
				t.Fatalf("CountFast(%d,%d) = %d, want %d", sh.na, sh.nb, got, want)
			}
			if got := CountFast(fb, fa); got != want {
				t.Fatalf("CountFast swapped = %d, want %d", got, want)
			}
			dst := make([]uint32, min(sh.na, sh.nb)+1)
			n := IntersectFast(dst, fa, fb)
			if n != want {
				t.Fatalf("IntersectFast = %d, want %d", n, want)
			}
			got := append([]uint32(nil), dst[:n]...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			for _, v := range got {
				if refCount([]uint32{v}, ea) != 1 || refCount([]uint32{v}, eb) != 1 {
					t.Fatalf("IntersectFast emitted non-member %d", v)
				}
			}
		}
	}
}

// Property: Fast agrees with scalar merge on arbitrary inputs, including
// unsorted input with duplicates (NewFastSet normalizes).
func TestFastQuick(t *testing.T) {
	f := func(ea, eb []uint32) bool {
		if len(ea) > 2000 {
			ea = ea[:2000]
		}
		if len(eb) > 2000 {
			eb = eb[:2000]
		}
		fa, fb := NewFastSet(ea), NewFastSet(eb)
		want := refCount(dedupSorted(ea), dedupSorted(eb))
		return CountFast(fa, fb) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func dedupSorted(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	k := 0
	for i, v := range out {
		if i == 0 || v != out[k-1] {
			out[k] = v
			k++
		}
	}
	return out[:k]
}

func TestSortHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(500)
		s := make([]uint32, n)
		for i := range s {
			s[i] = rng.Uint32() % 1000
		}
		want := append([]uint32(nil), s...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		insertionSortU32(s)
		for i := range want {
			if s[i] != want[i] {
				t.Fatalf("sort mismatch at %d (n=%d)", i, n)
			}
		}
	}
	// Adversarial patterns for the quicksort path.
	for _, gen := range []func(i, n int) uint32{
		func(i, n int) uint32 { return uint32(i) },          // sorted
		func(i, n int) uint32 { return uint32(n - i) },      // reversed
		func(i, n int) uint32 { return 7 },                  // constant
		func(i, n int) uint32 { return uint32(i % 2) },      // two values
		func(i, n int) uint32 { return uint32(i * i % 97) }, // repeats
	} {
		n := 500
		s := make([]uint32, n)
		for i := range s {
			s[i] = gen(i, n)
		}
		want := append([]uint32(nil), s...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		insertionSortU32(s)
		for i := range want {
			if s[i] != want[i] {
				t.Fatalf("adversarial sort mismatch at %d", i)
			}
		}
	}
}
