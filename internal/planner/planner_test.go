package planner

import (
	"testing"
	"time"
)

// TestPriorMatchesStatic sweeps work-size pairs across every decision kind
// and checks that a cold model (prior costs only) reproduces the static size
// heuristics bit for bit, including the boundary tie-breaks: merge at
// small == large/4, seg-probes-dense at den == seg, array-probes-dense at
// arr == den.
func TestPriorMatchesStatic(t *testing.T) {
	m := New(WithMode(ModePrior))
	h := m.NewHandle()
	sizes := []int{1, 3, 16, 63, 64, 255, 1024, 4096, 65536, 1 << 20, 1 << 26, 1 << 28}
	for _, a := range sizes {
		for _, b := range sizes {
			// seg×seg: arm 1 (hash) iff the static skew rule fires.
			small, large := a, b
			if small > large {
				small, large = large, small
			}
			wantHash := float64(small) < 0.25*float64(large)
			if got := h.Decide(DecSegSeg, large, small).Arm == 1; got != wantHash {
				t.Errorf("DecSegSeg(%d, %d): hash=%v, static wants %v", large, small, got, wantHash)
			}
			// seg×dense: arm 0 (probe from dense) iff den.n < seg.n.
			den, seg := a, b
			wantFromDense := den < seg
			if got := h.Decide(DecSegDense, den, seg).Arm == 0; got != wantFromDense {
				t.Errorf("DecSegDense(den=%d, seg=%d): fromDense=%v, static wants %v", den, seg, got, wantFromDense)
			}
			// array×dense: arm 0 (probe from array) iff arr.n <= den.n.
			arr, dn := a, b
			wantFromArray := arr <= dn
			if got := h.Decide(DecArrayDense, arr, dn).Arm == 0; got != wantFromArray {
				t.Errorf("DecArrayDense(arr=%d, den=%d): fromArray=%v, static wants %v", arr, dn, got, wantFromArray)
			}
		}
	}
	// Boundary cases called out explicitly: exact quarter ratio stays merge.
	for _, large := range []int{4, 400, 1 << 20} {
		if h.Decide(DecSegSeg, large, large/4).Arm != 0 {
			t.Errorf("DecSegSeg(%d, %d): boundary must stay merge", large, large/4)
		}
	}
	if h.Decide(DecSegDense, 512, 512).Arm != 1 {
		t.Error("DecSegDense tie must probe from the segmented side (arm 1)")
	}
	if h.Decide(DecArrayDense, 512, 512).Arm != 0 {
		t.Error("DecArrayDense tie must probe from the array side (arm 0)")
	}
}

// TestPriorModeNeverMeasures: prior handles carry no shard and must never ask
// for measurement or explore.
func TestPriorModeNeverMeasures(t *testing.T) {
	h := New(WithMode(ModePrior), WithSampleEvery(1), WithExploreEvery(1)).NewHandle()
	for i := 0; i < 1000; i++ {
		ch := h.Decide(DecSegSeg, 1000, 100)
		if ch.Measure() || ch.Explored {
			t.Fatal("prior-mode decision flagged for measurement or exploration")
		}
	}
}

// TestLearnedFlipsDecision: feeding the model measurements that contradict
// the prior must flip the preferred arm after a re-fit.
func TestLearnedFlipsDecision(t *testing.T) {
	m := New(WithMode(ModeLearned), WithSampleEvery(1), WithExploreEvery(0))
	h := m.NewHandle()
	// Priors pick merge for (large=1000, small=500): est0 = 1000 < est1 = 2000.
	if h.Decide(DecSegSeg, 1000, 500).Arm != 0 {
		t.Fatal("priors should pick merge at ratio 1/2")
	}
	// Measure merge as catastrophically slow (100ns per element) for as long
	// as the model keeps picking it.
	for i := 0; i < 64; i++ {
		ch := h.Decide(DecSegSeg, 1000, 500)
		if ch.Arm == 1 {
			break // flipped
		}
		if !ch.Measure() {
			t.Fatal("sampleEvery=1 must measure every decision")
		}
		h.Record(ch, 100_000*time.Nanosecond)
		m.Refit()
	}
	if h.Decide(DecSegSeg, 1000, 500).Arm != 1 {
		t.Fatal("measured merge cost 100ns/elem should flip the decision to hash")
	}
	// The same pair in a different bucket is unaffected.
	if h.Decide(DecSegSeg, 1<<20, 1<<19).Arm != 0 {
		t.Error("a different size bucket must keep its prior")
	}
}

// TestExplorationRate: explored decisions arrive at roughly 1/exploreEvery.
func TestExplorationRate(t *testing.T) {
	h := New(WithMode(ModeLearned), WithExploreEvery(8), WithSampleEvery(1<<30)).NewHandle()
	const n = 64_000
	explored := 0
	for i := 0; i < n; i++ {
		if h.Decide(DecSegSeg, 1000, 999).Explored {
			explored++
		}
	}
	want := n / 8
	if explored < want*7/10 || explored > want*13/10 {
		t.Fatalf("explored %d of %d decisions, want about %d", explored, n, want)
	}
}

// TestRefitConsumesDeltas: a re-fit folds only samples recorded since the
// previous one, so repeating identical observations converges the EWMA toward
// the observed cost rather than re-applying stale history.
func TestRefitConsumesDeltas(t *testing.T) {
	m := New(WithMode(ModeLearned), WithSampleEvery(1), WithExploreEvery(0))
	h := m.NewHandle()
	cost := func() float64 {
		for _, c := range m.Snapshot().Cells {
			if c.Arm == "merge" {
				return c.CostNs
			}
		}
		return -1
	}
	var last float64 = 1.0 // the seg×seg merge prior
	for round := 0; round < 6; round++ {
		ch := h.Decide(DecSegSeg, 1000, 10_000_000) // merge preferred
		h.Record(ch, 10_000*time.Nanosecond)        // 10ns per element
		m.Refit()
		got := cost()
		if got <= last {
			t.Fatalf("round %d: cost %.3f did not move toward the 10ns observation (last %.3f)", round, got, last)
		}
		last = got
	}
	if last > 10.0 {
		t.Fatalf("EWMA overshot the observation: %.3f", last)
	}
	// An idle re-fit (no new samples) must not move the estimate.
	m.Refit()
	if got := cost(); got != last {
		t.Fatalf("idle re-fit moved the cost: %.3f -> %.3f", last, got)
	}
}

// TestKWayProbePlane: recorded compaction passes move the per-rep probe cost
// and surface in the snapshot.
func TestKWayProbePlane(t *testing.T) {
	m := New(WithMode(ModeLearned), WithSampleEvery(1))
	h := m.NewHandle()
	if got := h.ProbeCost(1); got != 4.0 {
		t.Fatalf("prior probe cost = %v, want 4.0", got)
	}
	for i := 0; i < 32; i++ {
		h.RecordProbe(1, 16_000*time.Nanosecond, 1000) // 16ns per probe
		m.Refit()
	}
	if got := h.ProbeCost(1); got < 8.0 {
		t.Fatalf("probe cost %v did not move toward the 16ns observation", got)
	}
	if got := h.ProbeCost(0); got != 4.0 {
		t.Fatalf("untouched rep moved: %v", got)
	}
	snap := m.Snapshot()
	if len(snap.KProbe) != 1 || snap.KProbe[0].Rep != "array" {
		t.Fatalf("snapshot KProbe = %+v, want one array row", snap.KProbe)
	}
	// Out-of-range reps fall back to the prior and record nothing.
	if got := h.ProbeCost(99); got != 4.0 {
		t.Fatalf("out-of-range probe cost = %v", got)
	}
	h.RecordProbe(99, time.Millisecond, 10)
}

// TestSnapshotCells: the snapshot lists exactly the measured cells with their
// decision and arm names.
func TestSnapshotCells(t *testing.T) {
	m := New(WithMode(ModeLearned), WithSampleEvery(1), WithExploreEvery(0))
	h := m.NewHandle()
	ch := h.Decide(DecArrayDense, 100, 1000) // arm 0 (fromArray) preferred
	h.Record(ch, time.Microsecond)
	snap := m.Snapshot()
	if snap.Mode != "learned" || snap.SampleEvery != 1 {
		t.Fatalf("snapshot config: %+v", snap)
	}
	if len(snap.Cells) != 1 {
		t.Fatalf("snapshot has %d cells, want 1", len(snap.Cells))
	}
	c := snap.Cells[0]
	if c.Decision != "array_dense" || c.Arm != "probe_from_array" || c.Samples != 1 {
		t.Fatalf("cell = %+v", c)
	}
}

// TestActivate: the process-wide registry treats ModeOff models as "no
// planner".
func TestActivate(t *testing.T) {
	defer Activate(nil)
	if ActiveMode() != ModeOff {
		t.Fatal("planner active at test start")
	}
	Activate(New(WithMode(ModeOff)))
	if Active() != nil {
		t.Fatal("ModeOff model must deactivate")
	}
	m := New(WithMode(ModeLearned))
	Activate(m)
	if Active() != m || ActiveMode() != ModeLearned {
		t.Fatal("learned model not active")
	}
	Activate(nil)
	if Active() != nil || ActiveMode().String() != "off" {
		t.Fatal("nil must deactivate")
	}
}

// TestConcurrentRecordRefit hammers one model from several handles while
// re-fits and snapshots run concurrently — the shard/refit protocol must be
// race-clean (run under -race).
func TestConcurrentRecordRefit(t *testing.T) {
	m := New(WithMode(ModeLearned), WithSampleEvery(1), WithExploreEvery(4))
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			h := m.NewHandle()
			for i := 0; i < 4000; i++ {
				ch := h.Decide(DecSegSeg, 1000+i, 100+i)
				if ch.Measure() {
					h.Record(ch, time.Duration(i)*time.Nanosecond)
				}
				h.RecordProbe(i%3, time.Microsecond, 100)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		m.Refit()
		_ = m.Snapshot()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	m.Refit()
	if m.Snapshot().Refits == 0 {
		t.Fatal("no re-fit ran")
	}
}
