// Package planner is the adaptive per-pair strategy planner of the online
// intersection phase: a live cost model that replaces the engine's static
// dispatch thresholds (the SkewThreshold merge/hash cutover, the
// cross-representation probe-side size rules, the k-way smallest-set seed)
// with decisions derived from measured latencies.
//
// The model follows Ding & König's observation (Fast Set Intersection in
// Memory, arXiv:1103.2409) that no fixed threshold is right across
// selectivity regimes, backends and cache pressure: instead, every binary
// dispatch decision keeps one cost cell per (size-pair bucket, decision
// kind) — and, implicitly, per backend, since the cells are fitted from this
// process's measurements on whichever backend simd dispatch selected. A cell
// holds an EWMA estimate of each strategy arm's cost per unit of work
// (nanoseconds per element merged / per element probed); a decision is
// argmin over arm of cost[arm]·work[arm], i.e. ~one table lookup plus two
// multiplies on the hot path, with zero allocations.
//
// Cold start: cells are initialized to priors that reproduce the static
// heuristics exactly — the seg×seg prior cost ratio of 4:1 (hash:merge) is
// precisely the paper's SkewThreshold = 0.25 crossover, and the
// cross-representation priors are equal, reducing to the probe-smaller-side
// rules. A planner in ModePrior therefore makes bit-identical decisions to
// the static engine; ModeLearned re-fits the cells online.
//
// Learning follows the stats package's ownership model: each executor (and
// each parallel worker slot) holds a Handle with a private single-writer
// accumulator Shard, updated with relaxed atomics and no contention. One in
// sampleEvery decisions is timed and recorded; one in exploreEvery decisions
// deliberately takes the non-preferred arm (epsilon exploration) so both
// arms keep fresh estimates and the model tracks workload drift. Shards are
// merged lazily: every refitEvery recorded samples, the recording handle
// tries a re-fit — a try-locked pass that folds each cell's new samples into
// the fitted cost by EWMA. Decision reads and fitted-cost writes go through
// atomic uint64 float bits, so readers never lock and the race detector is
// satisfied.
package planner

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"fesia/internal/simd"
)

// Mode selects how much of the planner is active.
type Mode uint8

const (
	// ModeOff disables the planner entirely: the engine keeps its static
	// heuristics and pays nothing. This is the default and the escape hatch.
	ModeOff Mode = iota
	// ModePrior consults the cost model but never learns: decisions come
	// from the cold-start priors, which reproduce the static heuristics
	// bit-for-bit. Useful to isolate the consultation overhead.
	ModePrior
	// ModeLearned is the full planner: sampled latency feedback, epsilon
	// exploration, and online EWMA re-fit.
	ModeLearned
)

// String returns the mode's stable external name (logged by fesiaserve and
// exported as the fesia_planner_info metric label).
func (m Mode) String() string {
	switch m {
	case ModePrior:
		return "prior"
	case ModeLearned:
		return "learned"
	}
	return "off"
}

// Decision identifies one binary dispatch decision kind. Each kind has two
// arms whose work units are the two sizes passed to Decide, in order.
type Decision uint8

const (
	// DecSegSeg picks the seg×seg pair strategy: arm 0 is the two-step
	// merge (work ∝ the larger set), arm 1 the per-element hash probe
	// (work ∝ the smaller set). Replaces the SkewThreshold cutover.
	DecSegSeg Decision = iota
	// DecSegDense picks the probing side of a seg×dense pair: arm 0 decodes
	// the dense bits and probes the segmented set (work ∝ the dense size),
	// arm 1 bit-tests the segmented set's elements against the dense span
	// (work ∝ the segmented size). Replaces the den.n < seg.n rule.
	DecSegDense
	// DecArrayDense picks the probing side of an array×dense pair: arm 0
	// bit-tests the array's elements (work ∝ the array size), arm 1
	// binary-searches the decoded dense bits (work ∝ the dense size).
	// Replaces the arr.n <= den.n rule.
	DecArrayDense
	// NumDecisions is the number of decision kinds; keep last.
	NumDecisions
)

var decisionNames = [NumDecisions]string{
	DecSegSeg:     "seg_seg",
	DecSegDense:   "seg_dense",
	DecArrayDense: "array_dense",
}

// String returns the decision kind's stable external name.
func (d Decision) String() string { return decisionNames[d] }

var armNames = [NumDecisions][2]string{
	DecSegSeg:     {"merge", "hash"},
	DecSegDense:   {"probe_from_dense", "probe_from_seg"},
	DecArrayDense: {"probe_from_array", "probe_from_dense"},
}

// ArmName returns the stable external name of one decision arm.
func ArmName(d Decision, arm int) string { return armNames[d][arm&1] }

// numBuckets is the per-side size-bucket count: bucket i holds sizes with
// bits.Len(n) == i (i.e. n in [2^(i-1), 2^i)), with the last bucket
// absorbing everything at or above 2^(numBuckets-2) elements (~67M).
const numBuckets = 27

// Cell-table geometry: one cell per (decision, bucket, bucket), two cost
// entries (arms) per cell.
const (
	numCells   = int(NumDecisions) * numBuckets * numBuckets
	numEntries = numCells * 2
)

// numKReps sizes the k-way probe-cost plane: one cell per physical set
// representation (segmented=0, array=1, dense=2 — core.Rep's values).
const numKReps = 3

var kRepNames = [numKReps]string{"segmented", "array", "dense"}

// Tuning defaults; override with the With* options.
const (
	// DefaultExploreEvery is the epsilon-exploration period: one in this
	// many decisions takes the non-preferred arm (and is always measured).
	DefaultExploreEvery = 64
	// DefaultSampleEvery is the feedback sampling period: one in this many
	// decisions is timed and recorded into the handle's shard.
	DefaultSampleEvery = 16
	// refitEvery is the lazy re-fit period: every this many recorded
	// samples, the recording handle attempts a model re-fit.
	refitEvery = 256
	// alpha is the EWMA re-fit weight given to a cell's new observation.
	alpha = 0.25
)

// bucketOf maps a work size to its power-of-two bucket.
func bucketOf(n int) int {
	if n < 0 {
		return 0
	}
	b := bits.Len64(uint64(n))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// cellOf returns the cell index of a decision at a size pair.
func cellOf(d Decision, w0, w1 int) int {
	return (int(d)*numBuckets+bucketOf(w0))*numBuckets + bucketOf(w1)
}

// priorCost returns the cold-start per-unit cost of one decision arm, chosen
// so that argmin cost·work reproduces the engine's static heuristics exactly
// (see the package comment).
func priorCost(d Decision, arm int) float64 {
	if d == DecSegSeg && arm == 1 {
		// hash:merge = 4:1 ⇔ hash iff small < large/4 — the paper's
		// SkewThreshold = 0.25 crossover of Fig. 11.
		return 4.0
	}
	if d == DecSegSeg {
		return 1.0
	}
	// Cross-representation probe-side priors are equal: argmin reduces to
	// the probe-smaller-side size rules.
	return 2.0
}

// kProbePrior is the cold-start per-probe cost of the k-way compaction
// passes; equal across representations, so the seed pick reduces to the
// static smallest-set rule.
const kProbePrior = 4.0

// relaxedAdd is the single-writer accumulator update: an atomic load+store
// pair (two MOVs and an ADD on x86 — no LOCK prefix). The atomics are for
// reader visibility and the race detector; the single-writer contract
// provides exclusion.
func relaxedAdd(p *uint64, n uint64) {
	atomic.StoreUint64(p, atomic.LoadUint64(p)+n)
}

// Shard is one handle's private sample accumulator: per cell-arm sums of
// observed nanoseconds, work units and sample counts, plus the k-way
// probe-cost plane. Like a stats.Shard it must only ever be written by the
// goroutine owning its handle; the re-fit pass reads it with atomic loads.
// Cells are monotonic; re-fit consumes deltas.
type Shard struct {
	sum  [numEntries]uint64 // observed nanoseconds
	work [numEntries]uint64 // observed work units
	cnt  [numEntries]uint64 // samples
	// k-way membership-probe plane, by target representation.
	kSum  [numKReps]uint64
	kWork [numKReps]uint64
	kCnt  [numKReps]uint64
	_     [8]uint64 // pad the tail off the next shard's hot words
}

// Model is the shared cost model: the fitted per-unit cost table the hot
// path reads, the registered sample shards, and the re-fit bookkeeping.
// Construct with New; share one Model across every executor that should
// learn from (and decide with) the same cells.
type Model struct {
	mode         Mode
	exploreEvery uint64
	sampleEvery  uint64

	// cost holds the fitted per-unit costs as float64 bits, read with
	// atomic loads on every decision and stored by the re-fit pass.
	cost  [numEntries]uint64
	kCost [numKReps]uint64

	mu     sync.Mutex // guards shards
	shards []*Shard

	handleSeq atomic.Uint64 // handle counter, seeds per-handle rng streams

	fitMu  sync.Mutex // serializes re-fits (TryLock; losers skip)
	refits atomic.Uint64
	// Last-consumed accumulator totals, so each re-fit folds only the
	// samples recorded since the previous one.
	prevSum   [numEntries]uint64
	prevWork  [numEntries]uint64
	prevCnt   [numEntries]uint64
	kPrevSum  [numKReps]uint64
	kPrevWork [numKReps]uint64
	kPrevCnt  [numKReps]uint64
}

// Option customizes New.
type Option func(*Model)

// WithMode selects the planner mode (default ModeLearned).
func WithMode(m Mode) Option { return func(p *Model) { p.mode = m } }

// WithExploreEvery sets the epsilon-exploration period: one in everyN
// decisions takes the non-preferred arm. 0 disables exploration (the model
// then only ever re-measures the arm it already prefers).
func WithExploreEvery(everyN int) Option {
	return func(p *Model) {
		if everyN < 0 {
			everyN = 0
		}
		p.exploreEvery = uint64(everyN)
	}
}

// WithSampleEvery sets the feedback sampling period: one in everyN decisions
// is timed and recorded. Values below 1 are clamped to 1 (measure every
// decision).
func WithSampleEvery(everyN int) Option {
	return func(p *Model) {
		if everyN < 1 {
			everyN = 1
		}
		p.sampleEvery = uint64(everyN)
	}
}

// New returns a Model with every cell at its static-heuristic prior.
func New(opts ...Option) *Model {
	m := &Model{
		mode:         ModeLearned,
		exploreEvery: DefaultExploreEvery,
		sampleEvery:  DefaultSampleEvery,
	}
	for _, o := range opts {
		o(m)
	}
	for d := Decision(0); d < NumDecisions; d++ {
		for b0 := 0; b0 < numBuckets; b0++ {
			for b1 := 0; b1 < numBuckets; b1++ {
				cell := (int(d)*numBuckets+b0)*numBuckets + b1
				m.cost[2*cell] = math.Float64bits(priorCost(d, 0))
				m.cost[2*cell+1] = math.Float64bits(priorCost(d, 1))
			}
		}
	}
	for r := range m.kCost {
		m.kCost[r] = math.Float64bits(kProbePrior)
	}
	return m
}

// Mode returns the mode the model was constructed with.
func (m *Model) Mode() Mode { return m.mode }

func (m *Model) loadCost(entry int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&m.cost[entry]))
}

// NewHandle registers and returns a fresh decision handle. A Handle is
// single-goroutine, like the executor that owns it; give each executor (and
// each parallel worker slot) its own. In ModePrior the handle carries no
// shard — decisions are prior-only and nothing is recorded.
func (m *Model) NewHandle() *Handle {
	h := &Handle{m: m, exploreEvery: m.exploreEvery, sampleEvery: m.sampleEvery}
	// Seed the xorshift state per handle (never zero — zero is the xorshift
	// fixed point), splitmix-style so sibling handles draw unrelated streams.
	s := m.handleSeq.Add(1) * 0x9e3779b97f4a7c15
	s ^= s >> 30
	h.rng = s | 1
	if m.mode == ModeLearned {
		h.shard = &Shard{}
		m.mu.Lock()
		m.shards = append(m.shards, h.shard)
		m.mu.Unlock()
	}
	return h
}

// Handle is one executor's (or worker slot's) view of the model: shared
// fitted costs for decisions, a private shard for sampled feedback. Not safe
// for concurrent use — single-writer, like the executor scratch it lives in.
type Handle struct {
	m            *Model
	shard        *Shard // nil in ModePrior
	exploreEvery uint64
	sampleEvery  uint64
	rng          uint64 // xorshift state for exploration + sampling draws
	recorded     uint64 // samples recorded since the last re-fit attempt
}

// next draws the handle's next pseudo-random value (xorshift64). Stride
// counters (every Nth decision) would be cheaper still, but they alias with
// periodic workloads — a batch alternating two candidate shapes in lockstep
// with the stride would starve one decision family of samples forever.
func (h *Handle) next() uint64 {
	x := h.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.rng = x
	return x
}

// Choice is one decision's outcome and bookkeeping token. Arm is the chosen
// strategy arm; when Measure reports true the caller must time the chosen
// arm's execution and pass the Choice back through Record.
type Choice struct {
	cell     int32
	work     uint32
	Arm      uint8
	Explored bool // this decision deliberately took the non-preferred arm
	measure  bool
}

// Measure reports whether the caller must time this decision's execution and
// Record the result.
func (c Choice) Measure() bool { return c.measure }

// Decide resolves one binary dispatch decision: w0 and w1 are the two arms'
// work sizes (elements merged for arm 0 of DecSegSeg, elements probed for
// arm 1, and so on — see the Decision constants). The preferred arm is
// argmin over arms of fittedCost·work; ties break toward the arm the static
// heuristic picks at its boundary, so a prior-mode planner reproduces the
// static decisions exactly. In ModeLearned, one in exploreEvery decisions
// takes the other arm instead, and one in sampleEvery is flagged for
// measurement. Zero allocations; ~one table lookup of work.
func (h *Handle) Decide(d Decision, w0, w1 int) Choice {
	cell := cellOf(d, w0, w1)
	est0 := h.m.loadCost(2*cell) * float64(w0)
	est1 := h.m.loadCost(2*cell+1) * float64(w1)
	var arm uint8
	// Tie rule per decision kind: the static heuristics' boundary behavior
	// (merge at the SkewThreshold boundary, seg-probes-dense at den==seg,
	// array-probes-dense at arr==den).
	if est1 < est0 || (est1 == est0 && d == DecSegDense) {
		arm = 1
	}
	ch := Choice{cell: int32(cell), Arm: arm}
	if h.shard == nil {
		return ch
	}
	r := h.next()
	if h.exploreEvery != 0 && r%h.exploreEvery == 0 {
		ch.Arm ^= 1
		ch.Explored = true
		ch.measure = true
	} else if r%h.sampleEvery == 0 {
		ch.measure = true
	}
	if ch.measure {
		w := w0
		if ch.Arm == 1 {
			w = w1
		}
		if w < 1 {
			w = 1
		}
		if w > math.MaxUint32 {
			w = math.MaxUint32
		}
		ch.work = uint32(w)
	}
	return ch
}

// EstimateNanos returns the fitted cost estimates, in nanoseconds, of both
// arms of a decision at a work-size pair — the two products Decide compares.
// The tracing layer records them beside the measured latency so a mispriced
// cell (prediction far from observation) is visible per query.
func (h *Handle) EstimateNanos(d Decision, w0, w1 int) (est0, est1 float64) {
	cell := cellOf(d, w0, w1)
	return h.m.loadCost(2*cell) * float64(w0), h.m.loadCost(2*cell+1) * float64(w1)
}

// Record feeds one measured decision back into the handle's shard, and every
// refitEvery samples triggers a lazy model re-fit. No-op unless the choice
// was flagged for measurement.
func (h *Handle) Record(c Choice, elapsed time.Duration) {
	if !c.measure || h.shard == nil {
		return
	}
	if elapsed < 0 {
		elapsed = 0
	}
	entry := 2*int(c.cell) + int(c.Arm)
	relaxedAdd(&h.shard.sum[entry], uint64(elapsed))
	relaxedAdd(&h.shard.work[entry], uint64(c.work))
	relaxedAdd(&h.shard.cnt[entry], 1)
	h.recorded++
	if h.recorded%refitEvery == 0 {
		h.m.refit()
	}
}

// ProbeCost returns the fitted per-probe membership cost of compacting a
// k-way chain against a set of the given representation (core.Rep values).
// The k-way seed pick minimizes n_seed · Σ ProbeCost(other reps).
func (h *Handle) ProbeCost(rep int) float64 {
	if rep < 0 || rep >= numKReps {
		return kProbePrior
	}
	return math.Float64frombits(atomic.LoadUint64(&h.m.kCost[rep]))
}

// SampleKWay reports whether the current k-way query's compaction passes
// should be timed and recorded (one in sampleEvery; always false in
// ModePrior).
func (h *Handle) SampleKWay() bool {
	if h.shard == nil {
		return false
	}
	return h.next()%h.sampleEvery == 0
}

// RecordProbe feeds one timed k-way compaction pass (probes membership tests
// against a set of the given representation) into the probe-cost plane.
func (h *Handle) RecordProbe(rep int, elapsed time.Duration, probes int) {
	if h.shard == nil || rep < 0 || rep >= numKReps || probes <= 0 {
		return
	}
	if elapsed < 0 {
		elapsed = 0
	}
	relaxedAdd(&h.shard.kSum[rep], uint64(elapsed))
	relaxedAdd(&h.shard.kWork[rep], uint64(probes))
	relaxedAdd(&h.shard.kCnt[rep], 1)
	h.recorded++
	if h.recorded%refitEvery == 0 {
		h.m.refit()
	}
}

// refit folds every shard's new samples into the fitted cost table: for each
// cell-arm with fresh work, cost ← cost + alpha·(ΔNanos/ΔWork − cost). The
// fit is try-locked — concurrent recorders skip rather than queue — and the
// pass is a few thousand atomic loads, amortized over refitEvery samples.
func (m *Model) refit() {
	if !m.fitMu.TryLock() {
		return
	}
	defer m.fitMu.Unlock()
	m.mu.Lock()
	shards := m.shards
	m.mu.Unlock()

	for e := 0; e < numEntries; e++ {
		var sum, work, cnt uint64
		for _, s := range shards {
			sum += atomic.LoadUint64(&s.sum[e])
			work += atomic.LoadUint64(&s.work[e])
			cnt += atomic.LoadUint64(&s.cnt[e])
		}
		dSum, dWork := sum-m.prevSum[e], work-m.prevWork[e]
		if dWork > 0 && cnt > m.prevCnt[e] {
			obs := float64(dSum) / float64(dWork)
			old := math.Float64frombits(atomic.LoadUint64(&m.cost[e]))
			atomic.StoreUint64(&m.cost[e], math.Float64bits(old+alpha*(obs-old)))
			m.prevSum[e], m.prevWork[e], m.prevCnt[e] = sum, work, cnt
		}
	}
	for r := 0; r < numKReps; r++ {
		var sum, work, cnt uint64
		for _, s := range shards {
			sum += atomic.LoadUint64(&s.kSum[r])
			work += atomic.LoadUint64(&s.kWork[r])
			cnt += atomic.LoadUint64(&s.kCnt[r])
		}
		dSum, dWork := sum-m.kPrevSum[r], work-m.kPrevWork[r]
		if dWork > 0 && cnt > m.kPrevCnt[r] {
			obs := float64(dSum) / float64(dWork)
			old := math.Float64frombits(atomic.LoadUint64(&m.kCost[r]))
			atomic.StoreUint64(&m.kCost[r], math.Float64bits(old+alpha*(obs-old)))
			m.kPrevSum[r], m.kPrevWork[r], m.kPrevCnt[r] = sum, work, cnt
		}
	}
	m.refits.Add(1)
}

// Refit forces a synchronous re-fit pass regardless of the sample cadence —
// a test and benchmark hook; production re-fits happen lazily from Record.
func (m *Model) Refit() {
	m.fitMu.Lock()
	m.fitMu.Unlock() //nolint:staticcheck // serialize behind an in-flight fit
	m.refit()
}

// ---------------------------------------------------------------------------
// Global registry: the process-wide active model, mirrored by core's
// EnablePlanner and read by the stats exposition.
// ---------------------------------------------------------------------------

var active atomic.Pointer[Model]

// Activate installs m as the process-wide planner model (nil, or a model in
// ModeOff, deactivates). Executors created afterwards attach to it.
func Activate(m *Model) {
	if m != nil && m.mode == ModeOff {
		m = nil
	}
	active.Store(m)
}

// Active returns the process-wide model, or nil when the planner is off.
func Active() *Model { return active.Load() }

// ActiveMode returns the process-wide planner mode ("off" when no model is
// active) — the value fesiaserve logs and /metrics exports.
func ActiveMode() Mode {
	if m := Active(); m != nil {
		return m.mode
	}
	return ModeOff
}

// ---------------------------------------------------------------------------
// Read side: the snapshot behind /metrics' per-cell cost table.
// ---------------------------------------------------------------------------

// CellCost is one fitted cost-table entry with at least one recorded sample.
type CellCost struct {
	Decision string  // decision kind (seg_seg, seg_dense, array_dense)
	Arm      string  // strategy arm name
	BucketA  int     // power-of-two bucket of the arm-0 work size
	BucketB  int     // power-of-two bucket of the arm-1 work size
	CostNs   float64 // fitted cost in nanoseconds per work unit
	Samples  uint64  // measurements folded into the cell
}

// KProbeCost is one k-way probe-plane entry.
type KProbeCost struct {
	Rep     string  // target representation of the compaction pass
	CostNs  float64 // fitted nanoseconds per membership probe
	Samples uint64
}

// Snapshot is a point-in-time view of the model: configuration, re-fit
// count, and every cell that has absorbed at least one measurement (the
// prior-only cells are elided — there are thousands and they carry no
// information beyond priorCost).
type Snapshot struct {
	Mode         string
	Backend      string // simd backend the costs were measured on
	ExploreEvery int
	SampleEvery  int
	Refits       uint64
	Cells        []CellCost
	KProbe       []KProbeCost
}

// Snapshot merges every shard's sample counts against the fitted cost table.
// Allocates only the sparse cell lists; safe to call concurrently with
// decisions and re-fits.
func (m *Model) Snapshot() Snapshot {
	snap := Snapshot{
		Mode:         m.mode.String(),
		Backend:      simd.Backend(),
		ExploreEvery: int(m.exploreEvery),
		SampleEvery:  int(m.sampleEvery),
		Refits:       m.refits.Load(),
	}
	m.mu.Lock()
	shards := m.shards
	m.mu.Unlock()
	for e := 0; e < numEntries; e++ {
		var cnt uint64
		for _, s := range shards {
			cnt += atomic.LoadUint64(&s.cnt[e])
		}
		if cnt == 0 {
			continue
		}
		cell := e / 2
		d := Decision(cell / (numBuckets * numBuckets))
		snap.Cells = append(snap.Cells, CellCost{
			Decision: d.String(),
			Arm:      ArmName(d, e&1),
			BucketA:  cell / numBuckets % numBuckets,
			BucketB:  cell % numBuckets,
			CostNs:   m.loadCost(e),
			Samples:  cnt,
		})
	}
	for r := 0; r < numKReps; r++ {
		var cnt uint64
		for _, s := range shards {
			cnt += atomic.LoadUint64(&s.kCnt[r])
		}
		if cnt == 0 {
			continue
		}
		snap.KProbe = append(snap.KProbe, KProbeCost{
			Rep:     kRepNames[r],
			CostNs:  math.Float64frombits(atomic.LoadUint64(&m.kCost[r])),
			Samples: cnt,
		})
	}
	return snap
}
