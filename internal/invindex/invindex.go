// Package invindex implements the database-query substrate of the FESIA
// evaluation (Section VII-F): an inverted index mapping items (keywords) to
// sorted posting lists of document IDs, with conjunctive multi-keyword
// queries answered by k-way set intersection.
//
// The index keeps both plain posting lists (for the baseline methods) and
// prebuilt FESIA sets per item — the offline construction whose time the
// paper reports separately from query time.
package invindex

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"fesia/internal/core"
	"fesia/internal/datasets"
)

// execPool recycles executors behind the convenience Query/QueryCount
// methods so one-shot callers still hit warm scratch buffers. Hot loops
// should hold their own core.Executor and call QueryCountExec.
var execPool = sync.Pool{New: func() any { return core.NewExecutor() }}

// Index is an immutable inverted index over a document corpus.
type Index struct {
	cfg      core.Config
	postings map[uint32][]uint32
	sets     map[uint32]*core.Set
	empty    *core.Set // stands in for unknown items in batch queries
	numDocs  int
}

// FromCorpus builds an index (plain lists + FESIA sets) from a corpus. The
// FESIA sets share arena-backed storage (core.NewSetBatch) for query-time
// locality.
func FromCorpus(c *datasets.Corpus, cfg core.Config) (*Index, error) {
	ix := &Index{
		cfg:      cfg,
		postings: make(map[uint32][]uint32, len(c.Postings)),
		sets:     make(map[uint32]*core.Set, len(c.Postings)),
		numDocs:  c.NumDocs,
	}
	items := make([]uint32, 0, len(c.Postings))
	lists := make([][]uint32, 0, len(c.Postings))
	for item, lst := range c.Postings {
		ix.postings[item] = lst
		items = append(items, item)
		lists = append(lists, lst)
	}
	sets, err := core.NewSetBatch(lists, cfg)
	if err != nil {
		return nil, fmt.Errorf("invindex: building FESIA sets: %w", err)
	}
	for i, item := range items {
		ix.sets[item] = sets[i]
	}
	if ix.empty, err = core.NewSet(nil, cfg); err != nil {
		return nil, fmt.Errorf("invindex: building empty set: %w", err)
	}
	return ix, nil
}

// NumDocs returns the corpus document count.
func (ix *Index) NumDocs() int { return ix.numDocs }

// NumItems returns the number of indexed items.
func (ix *Index) NumItems() int { return len(ix.postings) }

// Posting returns the plain sorted posting list of an item (nil if absent).
func (ix *Index) Posting(item uint32) []uint32 { return ix.postings[item] }

// Set returns the prebuilt FESIA set of an item (nil if absent).
func (ix *Index) Set(item uint32) *core.Set { return ix.sets[item] }

// QueryCount answers a conjunctive query with FESIA's k-way intersection,
// returning the number of documents containing every item. Unknown items
// yield zero. It borrows a pooled executor; hot loops should hold their own
// and call QueryCountExec.
func (ix *Index) QueryCount(items ...uint32) int {
	ex := execPool.Get().(*core.Executor)
	defer execPool.Put(ex)
	return ix.QueryCountExec(ex, items...)
}

// QueryCountExec is QueryCount running on a caller-owned executor, so a
// query loop reuses warm scratch buffers across calls.
func (ix *Index) QueryCountExec(ex *core.Executor, items ...uint32) int {
	sets := make([]*core.Set, len(items))
	for i, it := range items {
		s, ok := ix.sets[it]
		if !ok {
			return 0
		}
		sets[i] = s
	}
	switch len(sets) {
	case 0:
		return 0
	case 1:
		return sets[0].Len()
	case 2:
		// Two-keyword queries benefit from the adaptive merge/hash switch.
		return ex.Count(sets[0], sets[1])
	default:
		return ex.CountK(sets...)
	}
}

// QueryCountCtx is QueryCount with cooperative cancellation: a serving
// front-end can bound conjunctive queries by request deadline. On
// cancellation it returns (0, ctx.Err()).
func (ix *Index) QueryCountCtx(ctx context.Context, items ...uint32) (int, error) {
	ex := execPool.Get().(*core.Executor)
	defer execPool.Put(ex)
	return ix.QueryCountExecCtx(ctx, ex, items...)
}

// QueryCountExecCtx is QueryCountCtx running on a caller-owned executor.
func (ix *Index) QueryCountExecCtx(ctx context.Context, ex *core.Executor, items ...uint32) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sets := make([]*core.Set, len(items))
	for i, it := range items {
		s, ok := ix.sets[it]
		if !ok {
			return 0, nil
		}
		sets[i] = s
	}
	switch len(sets) {
	case 0:
		return 0, nil
	case 1:
		return sets[0].Len(), nil
	case 2:
		return ex.CountCtx(ctx, sets[0], sets[1])
	default:
		return ex.CountKCtx(ctx, sets...)
	}
}

// Query answers a conjunctive query and returns the matching document IDs
// in ascending order.
func (ix *Index) Query(items ...uint32) []uint32 {
	sets := make([]*core.Set, len(items))
	minLen := 0
	for i, it := range items {
		s, ok := ix.sets[it]
		if !ok {
			return nil
		}
		sets[i] = s
		if i == 0 || s.Len() < minLen {
			minLen = s.Len()
		}
	}
	if len(sets) == 0 {
		return nil
	}
	dst := make([]uint32, minLen)
	var n int
	ex := execPool.Get().(*core.Executor)
	defer execPool.Put(ex)
	switch len(sets) {
	case 1:
		return sets[0].Elements()
	case 2:
		n = ex.Intersect(dst, sets[0], sets[1])
	default:
		n = ex.IntersectK(dst, sets...)
	}
	out := dst[:n]
	slices.Sort(out)
	return out
}

// QueryManyCount returns, for one base item, the number of documents it
// shares with each of the other items — the paper's "one keyword against
// many others" batch pattern (Section VII-F), answered by the one-vs-many
// engine so the base posting's bitmap words and hash positions stay hot
// across the whole candidate list. Unknown items (base or other) contribute
// zero counts. It borrows a pooled executor; hot loops should hold their
// own and call QueryManyCountExec.
func (ix *Index) QueryManyCount(base uint32, others ...uint32) []int {
	out := make([]int, len(others))
	ex := execPool.Get().(*core.Executor)
	defer execPool.Put(ex)
	ix.QueryManyCountExec(ex, out, base, others)
	return out
}

// QueryManyCountExec is QueryManyCount running on a caller-owned executor,
// writing the per-item counts into out (which must have room for
// len(others) entries). Only the candidate-set slice is allocated per call;
// the intersection work itself runs on the executor's warm scratch.
func (ix *Index) QueryManyCountExec(ex *core.Executor, out []int, base uint32, others []uint32) {
	bs, ok := ix.sets[base]
	if !ok {
		bs = ix.empty
	}
	cands := make([]*core.Set, len(others))
	for i, o := range others {
		if s, ok := ix.sets[o]; ok {
			cands[i] = s
		} else {
			cands[i] = ix.empty
		}
	}
	ex.CountMany(bs, cands, out)
}

// QueryCountWith answers the query using an arbitrary k-way counting
// algorithm over the plain posting lists — the hook the Fig. 12 harness uses
// to run the baseline methods on identical inputs.
func (ix *Index) QueryCountWith(algo func(sets [][]uint32) int, items ...uint32) int {
	lists := make([][]uint32, len(items))
	for i, it := range items {
		lst, ok := ix.postings[it]
		if !ok {
			return 0
		}
		lists[i] = lst
	}
	if len(lists) == 0 {
		return 0
	}
	return algo(lists)
}
