package invindex

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
)

func testCorpus(t *testing.T) *datasets.Corpus {
	t.Helper()
	return datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs: 3000, NumItems: 2000, MeanLen: 25, Seed: 11,
	})
}

func TestFromCorpus(t *testing.T) {
	c := testCorpus(t)
	ix, err := FromCorpus(c, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != c.NumDocs || ix.NumItems() != c.DistinctItems() {
		t.Errorf("docs=%d items=%d", ix.NumDocs(), ix.NumItems())
	}
	// Every FESIA set matches its plain posting list.
	checked := 0
	for item, lst := range c.Postings {
		if checked >= 50 {
			break
		}
		checked++
		s := ix.Set(item)
		if s == nil || s.Len() != len(lst) {
			t.Fatalf("item %d: set len %v, posting len %d", item, s, len(lst))
		}
		got := s.Elements()
		for i := range lst {
			if got[i] != lst[i] {
				t.Fatalf("item %d: set elements differ from posting", item)
			}
		}
	}
	if _, err := FromCorpus(c, core.Config{SegBits: 5}); err == nil {
		t.Error("bad config should surface an error")
	}
}

func refConjunction(lists [][]uint32) map[uint32]bool {
	if len(lists) == 0 {
		return nil
	}
	cur := map[uint32]bool{}
	for _, d := range lists[0] {
		cur[d] = true
	}
	for _, lst := range lists[1:] {
		next := map[uint32]bool{}
		for _, d := range lst {
			if cur[d] {
				next[d] = true
			}
		}
		cur = next
	}
	return cur
}

func TestQueriesAgainstReference(t *testing.T) {
	c := testCorpus(t)
	ix, err := FromCorpus(c, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for _, k := range []int{2, 3, 4} {
		qs := c.SampleQueries(rng, 10, k, 20, 1.0, 0)
		for _, q := range qs {
			lists := make([][]uint32, len(q.Items))
			for i, it := range q.Items {
				lists[i] = c.Postings[it]
			}
			want := refConjunction(lists)
			if got := ix.QueryCount(q.Items...); got != len(want) {
				t.Errorf("QueryCount(k=%d) = %d, want %d", k, got, len(want))
			}
			docs := ix.Query(q.Items...)
			if len(docs) != len(want) {
				t.Fatalf("Query(k=%d) returned %d docs, want %d", k, len(docs), len(want))
			}
			for i, d := range docs {
				if !want[d] {
					t.Fatalf("Query returned non-matching doc %d", d)
				}
				if i > 0 && docs[i-1] >= d {
					t.Fatalf("Query output not ascending")
				}
			}
			if got := ix.QueryCountWith(baselines.CountScalarK, q.Items...); got != len(want) {
				t.Errorf("QueryCountWith(scalar) = %d, want %d", got, len(want))
			}
			if got := ix.QueryCountWith(baselines.CountHashK, q.Items...); got != len(want) {
				t.Errorf("QueryCountWith(hash) = %d, want %d", got, len(want))
			}
		}
	}
}

func TestQueryEdgeCases(t *testing.T) {
	c := testCorpus(t)
	ix, err := FromCorpus(c, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ix.QueryCount() != 0 {
		t.Error("empty query should count 0")
	}
	if ix.Query() != nil {
		t.Error("empty query should return nil")
	}
	// Unknown item.
	const missing = ^uint32(0)
	if ix.QueryCount(missing) != 0 || ix.Query(missing) != nil {
		t.Error("unknown item should yield nothing")
	}
	if ix.QueryCountWith(baselines.CountScalarK, missing) != 0 {
		t.Error("unknown item via baseline should yield 0")
	}
	// Single keyword: whole posting list.
	var anyItem uint32
	for item := range c.Postings {
		anyItem = item
		break
	}
	if ix.QueryCount(anyItem) != len(c.Postings[anyItem]) {
		t.Error("single-keyword count should be the posting length")
	}
	if got := ix.Query(anyItem); len(got) != len(c.Postings[anyItem]) {
		t.Error("single-keyword query should return the posting list")
	}
}

func TestQueryCountCtx(t *testing.T) {
	c := testCorpus(t)
	ix, err := FromCorpus(c, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for _, q := range c.SampleQueries(rng, 6, 2, 50, 1.0, 0) {
		want := ix.QueryCount(q.Items...)
		got, err := ix.QueryCountCtx(ctx, q.Items...)
		if err != nil || got != want {
			t.Fatalf("QueryCountCtx(%v) = %d, %v; want %d", q.Items, got, err, want)
		}
	}
	for _, q := range c.SampleQueries(rng, 3, 3, 200, 1.0, 0) {
		want := ix.QueryCount(q.Items...)
		got, err := ix.QueryCountCtx(ctx, q.Items...)
		if err != nil || got != want {
			t.Fatalf("3-way QueryCountCtx(%v) = %d, %v; want %d", q.Items, got, err, want)
		}
	}
	// Unknown items are a zero count, not an error.
	if got, err := ix.QueryCountCtx(ctx, 1<<31); got != 0 || err != nil {
		t.Fatalf("unknown item = %d, %v", got, err)
	}
	// A cancelled context fails fast.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	q := c.SampleQueries(rng, 1, 2, 50, 1.0, 0)[0]
	if _, err := ix.QueryCountCtx(cancelled, q.Items...); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query err = %v, want Canceled", err)
	}
}
