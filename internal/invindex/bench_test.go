package invindex

import (
	"math/rand"
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
)

var benchSink int

func benchIndex(b *testing.B) (*datasets.Corpus, *Index, []datasets.Query) {
	b.Helper()
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs: 20_000, NumItems: 40_000, MeanLen: 40, Seed: 5,
	})
	ix, err := FromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	return corpus, ix, corpus.SampleQueries(rng, 32, 2, 64, 0.2, 0)
}

func BenchmarkQueryFesia(b *testing.B) {
	_, ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		benchSink += ix.QueryCount(q.Items...)
	}
}

func BenchmarkQueryScalar(b *testing.B) {
	_, ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		benchSink += ix.QueryCountWith(baselines.CountScalarK, q.Items...)
	}
}

func BenchmarkQueryMaterialize(b *testing.B) {
	_, ix, queries := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		benchSink += len(ix.Query(q.Items...))
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs: 20_000, NumItems: 40_000, MeanLen: 40, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := FromCorpus(corpus, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchSink += ix.NumItems()
	}
}
