package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

var benchSink int

func benchPair(n int, sel float64, cfg Config) (*Set, *Set) {
	rng := rand.New(rand.NewSource(int64(n)))
	universe := uint32(16 * n)
	common := int(float64(n) * sel)
	base := make([]uint32, 0, n)
	seen := map[uint32]bool{}
	for len(base) < n {
		v := rng.Uint32() % universe
		if !seen[v] {
			seen[v] = true
			base = append(base, v)
		}
	}
	other := append([]uint32(nil), base[:common]...)
	for len(other) < n {
		v := rng.Uint32() % universe
		if !seen[v] {
			seen[v] = true
			other = append(other, v)
		}
	}
	return MustNewSet(base, cfg), MustNewSet(other, cfg)
}

func BenchmarkCountMerge(b *testing.B) {
	for _, n := range []int{1000, 100_000, 1_000_000} {
		sa, sb := benchPair(n, 0.01, DefaultConfig())
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += CountMerge(sa, sb)
			}
		})
	}
}

func BenchmarkCountMergeWidths(b *testing.B) {
	for _, w := range []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512} {
		sa, sb := benchPair(100_000, 0.01, Config{Width: w})
		b.Run(w.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += CountMerge(sa, sb)
			}
		})
	}
}

func BenchmarkCountHash(b *testing.B) {
	for _, skew := range []int{100, 10_000} {
		rng := rand.New(rand.NewSource(9))
		sa := MustNewSet(randSet(rng, skew, 1<<24), DefaultConfig())
		sb := MustNewSet(randSet(rng, 1_000_000, 1<<24), DefaultConfig())
		b.Run(fmt.Sprintf("small=%d", skew), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += CountHash(sa, sb)
			}
		})
	}
}

func BenchmarkIntersectMergeMaterialize(b *testing.B) {
	sa, sb := benchPair(100_000, 0.1, DefaultConfig())
	dst := make([]uint32, 100_000)
	for i := 0; i < b.N; i++ {
		benchSink += IntersectMerge(dst, sa, sb)
	}
}

func BenchmarkCountK(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{3, 5} {
		sets := make([]*Set, k)
		for i := range sets {
			sets[i] = MustNewSet(randSet(rng, 100_000, 1<<21), DefaultConfig())
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += CountK(sets...)
			}
		})
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1000, 100_000} {
		elems := randSet(rng, n, 1<<24)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := MustNewSet(elems, DefaultConfig())
				benchSink += s.Len()
			}
		})
	}
}

func BenchmarkContains(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	s := MustNewSet(randSet(rng, 100_000, 1<<24), DefaultConfig())
	probes := randSet(rng, 1024, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Contains(probes[i%1024]) {
			benchSink++
		}
	}
}
