package core

import (
	"math/rand"
	"testing"

	"fesia/internal/stats"
)

// TestCountManyParallelCutover checks the work-size cutover: a small batch
// must run serially (no pool hand-off), a large batch must reach the pool.
// Routing is observed through the pool's Do counter, and results must match
// the serial path either way.
func TestCountManyParallelCutover(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfg := DefaultConfig()
	q := MustNewSet(randSet(rng, 1000, 1<<20), cfg)

	small := make([]*Set, 16)
	for i := range small {
		small[i] = MustNewSet(randSet(rng, 2000, 1<<20), cfg)
	}
	// 16 hash-regime candidates: work ~ 16 * 1000 probes, far below the
	// cutover.
	large := make([]*Set, 0, 300)
	for i := 0; i < 300; i++ {
		large = append(large, MustNewSet(randSet(rng, 4000, 1<<20), cfg))
	}
	// 300 merge/hash candidates * (1000+4000) elements ~ 1.5M units, above it.

	k := stats.New()
	EnableStats(k)
	defer EnableStats(nil)
	e := NewExecutor()

	check := func(cands []*Set) {
		out := make([]int, len(cands))
		want := make([]int, len(cands))
		e.CountManyParallel(q, cands, out, 4)
		e.CountMany(q, cands, want)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("candidate %d: parallel=%d serial=%d", i, out[i], want[i])
			}
		}
	}

	poolDo := func() uint64 {
		snap := k.Snapshot()
		return snap.Counter(stats.CtrPoolDo)
	}
	base := poolDo()
	check(small)
	if got := poolDo(); got != base {
		t.Errorf("small batch took the pool (Do %d -> %d), want serial cutover", base, got)
	}
	base = poolDo()
	check(large)
	if got := poolDo(); got == base {
		t.Error("large batch never reached the pool; cutover threshold too high")
	}
}
