package core

import (
	"math/rand"

	"fesia/internal/bitmap"
	"sort"
	"testing"
	"testing/quick"

	"fesia/internal/simd"
)

// refIntersect is the scalar ground truth.
func refIntersect(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out []uint32
	seen := make(map[uint32]bool)
	for _, v := range b {
		if in[v] && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randSet(rng *rand.Rand, n int, universe uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % universe
	}
	return out // may contain duplicates; NewSet dedups
}

func sortedCopy(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestConfigNormalize(t *testing.T) {
	cfg, err := Config{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != simd.WidthAVX || cfg.SegBits != 8 || cfg.Stride != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Scale < 15.9 || cfg.Scale > 16.1 {
		t.Errorf("default scale = %v, want sqrt(256)=16", cfg.Scale)
	}
	bad := []Config{
		{Width: 99},
		{SegBits: 7},
		{Scale: -1},
		{Width: simd.WidthSSE, Stride: 4},
		{Width: simd.WidthAVX512, Stride: 3},
	}
	for _, c := range bad {
		if _, err := c.normalize(); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
	// Valid strided config.
	if _, err := (Config{Width: simd.WidthAVX512, Stride: 8}).normalize(); err != nil {
		t.Errorf("AVX512 stride 8 rejected: %v", err)
	}
}

func TestNewSetBasics(t *testing.T) {
	s := MustNewSet([]uint32{5, 3, 5, 9, 3, 1}, DefaultConfig())
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4 (dedup)", s.Len())
	}
	want := []uint32{1, 3, 5, 9}
	got := s.Elements()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Elements = %v, want %v", got, want)
		}
	}
	if s.BitmapBits() < 64 || s.BitmapBits()&(s.BitmapBits()-1) != 0 {
		t.Errorf("BitmapBits = %d, want power of two >= 64", s.BitmapBits())
	}
	if s.NumSegments() != int(s.BitmapBits())/8 {
		t.Errorf("NumSegments = %d", s.NumSegments())
	}
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes <= 0")
	}
	for _, v := range want {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	misses := 0
	for v := uint32(100); v < 200; v++ {
		if s.Contains(v) {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("Contains reported %d false members", misses)
	}
}

func TestEmptySet(t *testing.T) {
	s := MustNewSet(nil, DefaultConfig())
	if s.Len() != 0 || s.MaxSegmentLen() != 0 {
		t.Errorf("empty set Len=%d maxSeg=%d", s.Len(), s.MaxSegmentLen())
	}
	other := MustNewSet([]uint32{1, 2, 3}, DefaultConfig())
	if CountMerge(s, other) != 0 || CountMerge(other, s) != 0 {
		t.Error("intersection with empty set should be 0")
	}
	if CountHash(s, other) != 0 {
		t.Error("hash intersection with empty set should be 0")
	}
	if Count(s, s) != 0 {
		t.Error("empty ∩ empty should be 0")
	}
}

func TestNewSetRejectsBadConfig(t *testing.T) {
	if _, err := NewSet([]uint32{1}, Config{SegBits: 5}); err == nil {
		t.Error("NewSet should propagate config errors")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSet should panic on bad config")
		}
	}()
	MustNewSet([]uint32{1}, Config{SegBits: 5})
}

// TestSegmentInvariants checks the Fig. 1 structure: segments partition the
// reordered set, every element lands in the segment its hash selects, and
// each segment list is ascending.
func TestSegmentInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, segBits := range []int{8, 16, 32} {
		cfg := DefaultConfig()
		cfg.SegBits = segBits
		s := MustNewSet(randSet(rng, 5000, 1<<22), cfg)
		total := 0
		for seg := 0; seg < s.NumSegments(); seg++ {
			lst := s.Segment(seg)
			total += len(lst)
			for i, v := range lst {
				if i > 0 && lst[i-1] >= v {
					t.Fatalf("segment %d not strictly ascending: %v", seg, lst)
				}
				pos := s.hasher.Pos(v, s.BitmapBits())
				if s.bm.SegmentOf(pos) != seg {
					t.Fatalf("element %d in wrong segment %d", v, seg)
				}
				if !s.bm.Test(pos) {
					t.Fatalf("bit not set for element %d", v)
				}
			}
		}
		if total != s.Len() {
			t.Fatalf("segments hold %d elements, set has %d", total, s.Len())
		}
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 10000
	s := MustNewSet(randSet(rng, n, 1<<24), DefaultConfig())
	st := s.Stats()
	if st.N != s.Len() || st.BitmapBits != s.BitmapBits() || st.Segments != s.NumSegments() {
		t.Fatalf("stats basics wrong: %+v", st)
	}
	if st.SegmentBits != 8 {
		t.Errorf("SegmentBits = %d", st.SegmentBits)
	}
	if st.MaxSegmentLen != s.MaxSegmentLen() {
		t.Errorf("MaxSegmentLen = %d, want %d", st.MaxSegmentLen, s.MaxSegmentLen())
	}
	// Histogram buckets must account for every segment, and the weighted
	// sum of exact buckets must not exceed N.
	total, weighted := 0, 0
	for k, c := range st.SegmentSizeHist {
		total += c
		if k < len(st.SegmentSizeHist)-1 {
			weighted += k * c
		}
	}
	if total != st.Segments {
		t.Errorf("histogram covers %d segments, want %d", total, st.Segments)
	}
	if weighted > st.N {
		t.Errorf("histogram weight %d exceeds N %d", weighted, st.N)
	}
	// With m = 16n the bit density must be near 1/16 (collisions lower it
	// slightly, rounding of m can halve it).
	if st.BitDensity <= 0.02 || st.BitDensity > 0.07 {
		t.Errorf("BitDensity = %v, expected ≈1/16 or slightly below", st.BitDensity)
	}
	if st.MeanOccupied < 1 {
		t.Errorf("MeanOccupied = %v", st.MeanOccupied)
	}
	// Empty set.
	empty := MustNewSet(nil, DefaultConfig())
	est := empty.Stats()
	if est.NonEmptySegments != 0 || est.MeanOccupied != 0 || est.BitDensity != 0 {
		t.Errorf("empty stats: %+v", est)
	}
}

// TestIntersectAllConfigs is the central correctness test: FESIA (merge,
// hash, adaptive, materializing, parallel) against scalar ground truth for
// every width, several segment sizes, strides, scales, and skews.
func TestIntersectAllConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"SSE", Config{Width: simd.WidthSSE}},
		{"AVX", Config{Width: simd.WidthAVX}},
		{"AVX512", Config{Width: simd.WidthAVX512}},
		{"AVX512s4", Config{Width: simd.WidthAVX512, Stride: 4}},
		{"AVX512s8", Config{Width: simd.WidthAVX512, Stride: 8}},
		{"seg16", Config{SegBits: 16}},
		{"seg32", Config{SegBits: 32}},
		{"denseBitmap", Config{Scale: 2}}, // crowded segments, big kernel sizes
		{"sparseBitmap", Config{Scale: 64}},
	}
	shapes := []struct{ na, nb int }{
		{0, 100}, {1, 1}, {100, 100}, {1000, 1000}, {50, 2000}, {3000, 700},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, sh := range shapes {
				// Universe chosen so intersections are non-trivial.
				universe := uint32(4 * (sh.na + sh.nb + 10))
				ea := randSet(rng, sh.na, universe)
				eb := randSet(rng, sh.nb, universe)
				want := refIntersect(ea, eb)

				sa := MustNewSet(ea, v.cfg)
				sb := MustNewSet(eb, v.cfg)

				if got := CountMerge(sa, sb); got != len(want) {
					t.Errorf("%s CountMerge(%d,%d) = %d, want %d", v.name, sh.na, sh.nb, got, len(want))
				}
				if got := CountMerge(sb, sa); got != len(want) {
					t.Errorf("%s CountMerge swapped = %d, want %d", v.name, got, len(want))
				}
				if got := CountHash(sa, sb); got != len(want) {
					t.Errorf("%s CountHash = %d, want %d", v.name, got, len(want))
				}
				if got := Count(sa, sb); got != len(want) {
					t.Errorf("%s adaptive Count = %d, want %d", v.name, got, len(want))
				}
				dst := make([]uint32, min(sa.Len(), sb.Len())+1)
				n := IntersectMerge(dst, sa, sb)
				if got := sortedCopy(dst[:n]); len(got) != len(want) {
					t.Errorf("%s IntersectMerge n = %d, want %d", v.name, n, len(want))
				} else {
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("%s IntersectMerge values differ at %d", v.name, i)
							break
						}
					}
				}
				n = IntersectHash(dst, sa, sb)
				if got := sortedCopy(dst[:n]); len(got) != len(want) {
					t.Errorf("%s IntersectHash n = %d, want %d", v.name, n, len(want))
				} else {
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("%s IntersectHash values differ at %d", v.name, i)
							break
						}
					}
				}
				n = Intersect(dst, sa, sb)
				if n != len(want) {
					t.Errorf("%s adaptive Intersect = %d, want %d", v.name, n, len(want))
				}
				for _, workers := range []int{2, 3, 8} {
					if got := CountMergeParallel(sa, sb, workers); got != len(want) {
						t.Errorf("%s CountMergeParallel(%d) = %d, want %d", v.name, workers, got, len(want))
					}
					n = IntersectMergeParallel(dst, sa, sb, workers)
					if got := sortedCopy(dst[:n]); len(got) != len(want) {
						t.Errorf("%s IntersectMergeParallel(%d) = %d, want %d", v.name, workers, n, len(want))
					} else {
						for i := range want {
							if got[i] != want[i] {
								t.Errorf("%s IntersectMergeParallel values differ", v.name)
								break
							}
						}
					}
					if got := CountHashParallel(sa, sb, workers); got != len(want) {
						t.Errorf("%s CountHashParallel(%d) = %d, want %d", v.name, workers, got, len(want))
					}
				}
			}
		})
	}
}

// TestPaperExample1 reproduces the running example of Section III-B/III-C:
// A = {1, 4, 15, 21, 32, 34}, B = {2, 6, 12, 16, 21, 23}; the intersection
// is {21}.
func TestPaperExample1(t *testing.T) {
	a := MustNewSet([]uint32{1, 4, 15, 21, 32, 34}, DefaultConfig())
	b := MustNewSet([]uint32{2, 6, 12, 16, 21, 23}, DefaultConfig())
	if got := CountMerge(a, b); got != 1 {
		t.Errorf("CountMerge = %d, want 1", got)
	}
	dst := make([]uint32, 6)
	if n := IntersectMerge(dst, a, b); n != 1 || dst[0] != 21 {
		t.Errorf("IntersectMerge = %v (n=%d), want [21]", dst[:n], n)
	}
}

// TestDifferentBitmapSizes builds sets of very different cardinalities so
// their bitmaps differ in size, exercising the wrapped comparison of
// Section III-C in both argument orders.
func TestDifferentBitmapSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := randSet(rng, 20000, 1<<20)
	small := append([]uint32(nil), big[:40]...) // guaranteed overlap
	small = append(small, randSet(rng, 40, 1<<20)...)

	sb := MustNewSet(big, DefaultConfig())
	ss := MustNewSet(small, DefaultConfig())
	if sb.BitmapBits() == ss.BitmapBits() {
		t.Fatalf("test needs different bitmap sizes, both %d", sb.BitmapBits())
	}
	want := refIntersect(big, small)
	if got := CountMerge(sb, ss); got != len(want) {
		t.Errorf("CountMerge(big, small) = %d, want %d", got, len(want))
	}
	if got := CountMerge(ss, sb); got != len(want) {
		t.Errorf("CountMerge(small, big) = %d, want %d", got, len(want))
	}
	if got := CountHash(ss, sb); got != len(want) {
		t.Errorf("CountHash = %d, want %d", got, len(want))
	}
	// With 80 vs 20000 elements the adaptive strategy must pick the hash path
	// and still be right.
	if !useHash(ss, sb) {
		t.Error("adaptive strategy should pick hash for skew 80/20000")
	}
	if got := Count(ss, sb); got != len(want) {
		t.Errorf("adaptive Count = %d, want %d", got, len(want))
	}
}

func TestCompatibilityPanics(t *testing.T) {
	base := MustNewSet([]uint32{1, 2, 3}, DefaultConfig())
	cases := []Config{
		{Seed: 42},
		{SegBits: 16},
		{Width: simd.WidthSSE},
	}
	for _, c := range cases {
		other := MustNewSet([]uint32{1, 2, 3}, c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("intersecting incompatible sets (%+v) should panic", c)
				}
			}()
			CountMerge(base, other)
		}()
	}
}

func TestKWay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{3, 4, 5} {
		for trial := 0; trial < 5; trial++ {
			universe := uint32(3000)
			raw := make([][]uint32, k)
			sets := make([]*Set, k)
			// Different sizes force different bitmap sizes in the k-way AND.
			for i := range raw {
				raw[i] = randSet(rng, 400*(i+1), universe)
			}
			// Force some guaranteed common elements.
			common := randSet(rng, 30, universe)
			for i := range raw {
				raw[i] = append(raw[i], common...)
				sets[i] = MustNewSet(raw[i], DefaultConfig())
			}
			want := sortedCopy(raw[0])
			for i := 1; i < k; i++ {
				want = refIntersect(want, raw[i])
			}
			if got := CountK(sets...); got != len(want) {
				t.Errorf("CountK(k=%d trial=%d) = %d, want %d", k, trial, got, len(want))
			}
			dst := make([]uint32, sets[0].Len())
			n := IntersectK(dst, sets...)
			got := sortedCopy(dst[:n])
			if len(got) != len(want) {
				t.Fatalf("IntersectK n = %d, want %d", n, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("IntersectK values differ at %d: %d vs %d", i, got[i], want[i])
				}
			}
		}
	}
}

func TestCountKParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		k := 3 + rng.Intn(3)
		sets := make([]*Set, k)
		raw := make([][]uint32, k)
		for i := range sets {
			raw[i] = randSet(rng, 300*(i+1), 4000)
			sets[i] = MustNewSet(raw[i], DefaultConfig())
		}
		want := CountK(sets...)
		for _, workers := range []int{1, 2, 4, 16} {
			if got := CountKParallel(workers, sets...); got != want {
				t.Errorf("CountKParallel(%d workers, k=%d) = %d, want %d", workers, k, got, want)
			}
		}
	}
	// Degenerate arities delegate correctly.
	a := MustNewSet([]uint32{1, 2, 3}, DefaultConfig())
	b := MustNewSet([]uint32{2, 3, 4}, DefaultConfig())
	if CountKParallel(4, a) != 3 {
		t.Error("k=1 should return the set size")
	}
	if CountKParallel(4, a, b) != 2 {
		t.Error("k=2 should match CountMerge")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CountKParallel() should panic")
			}
		}()
		CountKParallel(4)
	}()
}

func TestKWayEdgeCases(t *testing.T) {
	a := MustNewSet([]uint32{1, 2, 3}, DefaultConfig())
	if CountK(a) != 3 {
		t.Error("CountK of one set should be its size")
	}
	b := MustNewSet([]uint32{2, 3, 4}, DefaultConfig())
	if CountK(a, b) != 2 {
		t.Error("CountK of two sets should match CountMerge")
	}
	dst := make([]uint32, 3)
	if n := IntersectK(dst, a); n != 3 {
		t.Error("IntersectK of one set should copy it")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CountK() should panic")
			}
		}()
		CountK()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("IntersectK(nil dst) should panic")
			}
		}()
		IntersectK(nil, a, b)
	}()
}

func TestBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ea := randSet(rng, 3000, 40000)
	eb := randSet(rng, 3000, 40000)
	a := MustNewSet(ea, DefaultConfig())
	b := MustNewSet(eb, DefaultConfig())
	bd := CountMergeBreakdown(a, b)
	if bd.Count != CountMerge(a, b) {
		t.Errorf("Breakdown.Count = %d, want %d", bd.Count, CountMerge(a, b))
	}
	if bd.SegPairs < bd.Count {
		t.Errorf("SegPairs %d < Count %d", bd.SegPairs, bd.Count)
	}
	if bd.BitmapTime <= 0 || bd.SegmentTime < 0 {
		t.Errorf("times: bitmap=%v segment=%v", bd.BitmapTime, bd.SegmentTime)
	}
}

func TestHashBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	small := MustNewSet(randSet(rng, 1000, 40000), DefaultConfig())
	large := MustNewSet(randSet(rng, 20000, 40000), DefaultConfig())
	bd := CountHashBreakdown(small, large)
	want := CountHash(small, large)
	if bd.Count != want {
		t.Errorf("HashBreakdown.Count = %d, want %d", bd.Count, want)
	}
	if bd.Probes != small.Len() {
		t.Errorf("Probes = %d, want smaller set's size %d", bd.Probes, small.Len())
	}
	if bd.Survivors < bd.Count || bd.Survivors > bd.Probes {
		t.Errorf("Survivors = %d, want in [Count=%d, Probes=%d]", bd.Survivors, bd.Count, bd.Probes)
	}
	if wantBlocks := (small.Len() + probeBlock - 1) / probeBlock; bd.Blocks != wantBlocks {
		t.Errorf("Blocks = %d, want %d", bd.Blocks, wantBlocks)
	}
	if bd.StageTime <= 0 || bd.TouchTime < 0 || bd.ScanTime < 0 {
		t.Errorf("times: stage=%v touch=%v scan=%v", bd.StageTime, bd.TouchTime, bd.ScanTime)
	}
	// Argument order must not matter (the smaller set always probes).
	if bd2 := CountHashBreakdown(large, small); bd2.Count != want || bd2.Probes != small.Len() {
		t.Errorf("swapped args: Count=%d Probes=%d, want %d, %d", bd2.Count, bd2.Probes, want, small.Len())
	}
}

func TestHashProbeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	small := MustNewSet(randSet(rng, 700, 30000), DefaultConfig())
	large := MustNewSet(randSet(rng, 15000, 30000), DefaultConfig())
	trace := HashProbeTrace(small, large)
	if len(trace) != small.Len() {
		t.Fatalf("trace length = %d, want %d", len(trace), small.Len())
	}
	matches, survivors := 0, 0
	for i, p := range trace {
		if p.Match {
			matches++
		}
		if p.Survived {
			survivors++
			if p.SegLen <= 0 {
				t.Fatalf("trace[%d]: survived with SegLen %d", i, p.SegLen)
			}
		} else if p.SegLen != 0 || p.Match {
			t.Fatalf("trace[%d]: filtered probe with SegLen=%d Match=%v", i, p.SegLen, p.Match)
		}
		if want := large.Contains(p.Elem); p.Match != want {
			t.Fatalf("trace[%d]: Match=%v, want %v", i, p.Match, want)
		}
	}
	if want := CountHash(small, large); matches != want {
		t.Errorf("trace matches = %d, want %d", matches, want)
	}
	if bd := CountHashBreakdown(small, large); survivors != bd.Survivors {
		t.Errorf("trace survivors = %d, breakdown says %d", survivors, bd.Survivors)
	}
}

// Property: for arbitrary inputs, merge, hash, adaptive and 2-way CountK all
// agree with ground truth.
func TestStrategiesAgreeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(na, nb uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ea := randSet(r, int(na%2000), 1<<14)
		eb := randSet(r, int(nb%2000), 1<<14)
		want := len(refIntersect(ea, eb))
		a := MustNewSet(ea, DefaultConfig())
		b := MustNewSet(eb, DefaultConfig())
		return CountMerge(a, b) == want &&
			CountHash(a, b) == want &&
			Count(a, b) == want &&
			CountK(a, b) == want
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFalsePositiveBound sanity-checks Proposition 1: with m = n·√w the
// expected number of surviving segment pairs is about n/√w + r, so the
// observed count should stay within a small factor of that.
func TestFalsePositiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 20000
	ea := randSet(rng, n, 1<<28) // essentially disjoint
	eb := randSet(rng, n, 1<<28)
	a := MustNewSet(ea, DefaultConfig())
	b := MustNewSet(eb, DefaultConfig())
	bd := CountMergeBreakdown(a, b)
	r := bd.Count
	// The segment-level grouping makes the bound slightly looser than the
	// per-bit analysis; allow a generous constant.
	bound := 8*float64(n)/16.0 + float64(r) + 100
	if float64(bd.SegPairs) > bound {
		t.Errorf("SegPairs = %d exceeds O(n/√w + r) bound %.0f", bd.SegPairs, bound)
	}
}

// TestKWayFalsePositiveBound sanity-checks Proposition 2: with m = n·√w the
// number of segments surviving the k-way AND is about n/√w^(k-1) + r, far
// below the 2-way survivor count.
func TestKWayFalsePositiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 20000
	// Essentially disjoint sets: r ≈ 0, so survivors are false positives.
	sets := make([]*Set, 3)
	for i := range sets {
		sets[i] = MustNewSet(randSet(rng, n, 1<<28), DefaultConfig())
	}
	maps := []*bitmap.Bitmap{sets[0].bm, sets[1].bm, sets[2].bm}
	survivors := 0
	bitmap.ForEachIntersectingSegmentK(maps, func(int) { survivors++ })
	// 2-way survivors for comparison.
	two := 0
	forEachSegPair(sets[0], sets[1], func(_, _ int) { two++ })
	if survivors >= two/4 {
		t.Errorf("3-way survivors %d not far below 2-way %d (Proposition 2)", survivors, two)
	}
	// Loose absolute bound: segment-level grouping inflates the per-bit
	// analysis by a constant.
	bound := 8*float64(n)/(16.0*16.0) + 100
	if float64(survivors) > bound {
		t.Errorf("3-way survivors %d exceed O(n/√w²) bound %.0f", survivors, bound)
	}
}

func TestUseHashThreshold(t *testing.T) {
	mk := func(n int) *Set {
		rng := rand.New(rand.NewSource(int64(n)))
		return MustNewSet(randSet(rng, n, 1<<24), DefaultConfig())
	}
	big := mk(10000)
	if !useHash(mk(100), big) {
		t.Error("skew 1/100 should use hash")
	}
	if useHash(mk(9000), big) {
		t.Error("skew ~0.9 should use merge")
	}
}
