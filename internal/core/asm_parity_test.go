package core

import (
	"math/rand"
	"testing"

	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// withBackends runs f twice — once per backend — and compares the results.
// When the assembly backend is unavailable only the scalar pass runs (the
// comparison is then trivially true, keeping the test meaningful under
// -tags=noasm as a smoke test).
func runBothBackends(t *testing.T, f func() any) (asm, scalar any) {
	t.Helper()
	prevAsm := simd.SetAsmEnabled(true)
	prevK := kernels.UseAsmKernels(true)
	asm = f()
	simd.SetAsmEnabled(false)
	scalar = f()
	kernels.UseAsmKernels(prevK)
	simd.SetAsmEnabled(prevAsm)
	return asm, scalar
}

// TestExecutorAsmParity drives every Executor query shape through both
// backends on the same inputs and requires identical results: the dispatched
// assembly must be observationally equivalent to the pure-Go reference at the
// API surface, not just per-routine.
func TestExecutorAsmParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	rng := rand.New(rand.NewSource(31))
	e := NewExecutor()
	shapes := []struct {
		na, nb int
	}{
		{2000, 1800},  // merge, similar sizes
		{5000, 300},   // hash, skewed
		{40000, 9000}, // merge, big bitmaps
		{64, 48},      // tiny
	}
	for _, cfg := range []Config{DefaultConfig(), {SegBits: 16}, {SegBits: 32}} {
		for _, sh := range shapes {
			a := MustNewSet(randSet(rng, sh.na, 100000), cfg)
			b := MustNewSet(randSet(rng, sh.nb, 100000), cfg)
			c := MustNewSet(randSet(rng, sh.nb/2+1, 100000), cfg)

			countAsm, countGo := runBothBackends(t, func() any { return e.Count(a, b) })
			if countAsm != countGo {
				t.Fatalf("cfg=%+v shape=%+v Count: asm=%v go=%v", cfg, sh, countAsm, countGo)
			}
			mergeAsm, mergeGo := runBothBackends(t, func() any { return CountMerge(a, b) })
			if mergeAsm != mergeGo {
				t.Fatalf("cfg=%+v shape=%+v CountMerge: asm=%v go=%v", cfg, sh, mergeAsm, mergeGo)
			}
			hashAsm, hashGo := runBothBackends(t, func() any { return CountHash(a, b) })
			if hashAsm != hashGo {
				t.Fatalf("cfg=%+v shape=%+v CountHash: asm=%v go=%v", cfg, sh, hashAsm, hashGo)
			}
			kAsm, kGo := runBothBackends(t, func() any { return e.CountK(a, b, c) })
			if kAsm != kGo {
				t.Fatalf("cfg=%+v shape=%+v CountK: asm=%v go=%v", cfg, sh, kAsm, kGo)
			}
			parAsm, parGo := runBothBackends(t, func() any { return e.CountMergeParallel(a, b, 4) })
			if parAsm != parGo {
				t.Fatalf("cfg=%+v shape=%+v CountMergeParallel: asm=%v go=%v", cfg, sh, parAsm, parGo)
			}

			dst := make([]uint32, min(a.Len(), b.Len()))
			interAsm, interGo := runBothBackends(t, func() any {
				n := e.Intersect(dst, a, b)
				return append([]uint32(nil), dst[:n]...)
			})
			ia, ig := interAsm.([]uint32), interGo.([]uint32)
			if len(ia) != len(ig) {
				t.Fatalf("cfg=%+v shape=%+v Intersect: asm n=%d go n=%d", cfg, sh, len(ia), len(ig))
			}
			for i := range ia {
				if ia[i] != ig[i] {
					t.Fatalf("cfg=%+v shape=%+v Intersect elem %d: asm=%d go=%d", cfg, sh, i, ia[i], ig[i])
				}
			}

			cands := []*Set{b, c, a}
			outA := make([]int, len(cands))
			outG := make([]int, len(cands))
			prevAsm := simd.SetAsmEnabled(true)
			e.CountMany(a, cands, outA)
			simd.SetAsmEnabled(false)
			e.CountMany(a, cands, outG)
			simd.SetAsmEnabled(prevAsm)
			for i := range outA {
				if outA[i] != outG[i] {
					t.Fatalf("cfg=%+v shape=%+v CountMany[%d]: asm=%d go=%d", cfg, sh, i, outA[i], outG[i])
				}
			}
		}
	}
}

// TestAsmPathsZeroAlloc asserts the 0 allocs/op warm guarantee holds with the
// assembly backend active — the fast paths use only stack mask buffers.
func TestAsmPathsZeroAlloc(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	prevAsm := simd.SetAsmEnabled(true)
	prevK := kernels.UseAsmKernels(true)
	defer func() {
		kernels.UseAsmKernels(prevK)
		simd.SetAsmEnabled(prevAsm)
	}()
	rng := rand.New(rand.NewSource(32))
	a := MustNewSet(randSet(rng, 20000, 300000), DefaultConfig())
	b := MustNewSet(randSet(rng, 15000, 300000), DefaultConfig())
	s := MustNewSet(randSet(rng, 900, 300000), DefaultConfig())
	e := NewExecutor()
	cands := []*Set{b, s}
	out := make([]int, len(cands))
	// Warm every buffer.
	e.Count(a, b)
	e.Count(a, s)
	e.CountK(a, b, s)
	e.CountMany(a, cands, out)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Count/merge", func() { e.Count(a, b) }},
		{"Count/hash", func() { e.Count(a, s) }},
		{"CountK", func() { e.CountK(a, b, s) }},
		{"CountMany", func() { e.CountMany(a, cands, out) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(20, c.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op with asm backend, want 0", c.name, avg)
		}
	}
}
