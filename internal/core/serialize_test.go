package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"fesia/internal/simd"
	"fesia/internal/testutil"
)

func roundTrip(t *testing.T, s *Set) *Set {
	t.Helper()
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatalf("ReadSet: %v", err)
	}
	return got
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	configs := []Config{
		{},
		{Width: simd.WidthSSE, SegBits: 16},
		{Width: simd.WidthAVX512, Stride: 4, Scale: 4, Seed: 99},
	}
	for _, cfg := range configs {
		for _, n := range []int{0, 1, 100, 5000} {
			orig := MustNewSet(randSet(rng, n, 1<<20), cfg)
			got := roundTrip(t, orig)
			if got.Len() != orig.Len() || got.BitmapBits() != orig.BitmapBits() {
				t.Fatalf("round trip changed shape: %d/%d bits %d/%d",
					got.Len(), orig.Len(), got.BitmapBits(), orig.BitmapBits())
			}
			if got.Config() != orig.Config() {
				t.Fatalf("round trip changed config: %+v vs %+v", got.Config(), orig.Config())
			}
			ge, oe := got.Elements(), orig.Elements()
			for i := range oe {
				if ge[i] != oe[i] {
					t.Fatalf("elements differ at %d", i)
				}
			}
			if got.MaxSegmentLen() != orig.MaxSegmentLen() {
				t.Fatalf("maxSeg differs: %d vs %d", got.MaxSegmentLen(), orig.MaxSegmentLen())
			}
			// A deserialized set must intersect correctly with a live one.
			other := MustNewSet(randSet(rng, 500, 1<<20), cfg)
			if CountMerge(got, other) != CountMerge(orig, other) {
				t.Fatal("deserialized set intersects differently")
			}
		}
	}
}

func TestReadSetRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := MustNewSet(randSet(rng, 300, 1<<16), DefaultConfig())
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	if _, err := ReadSet(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadSet(bytes.NewReader(pristine[:20])); err == nil {
		t.Error("truncated stream should fail")
	}
	bad := append([]byte(nil), pristine...)
	bad[0] = 'X'
	if _, err := ReadSet(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should fail")
	}
	// Flip bytes throughout the payload; every corruption must either fail
	// or produce a structurally valid set (never panic).
	for pos := 8; pos < len(pristine); pos += 37 {
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadSet panicked on corruption at byte %d: %v", pos, r)
				}
			}()
			s, err := ReadSet(bytes.NewReader(mut))
			if err != nil {
				return // rejected: good
			}
			// Accepted: the set must still behave sanely.
			_ = s.Elements()
			_ = CountMerge(s, s)
		}()
	}
}

// TestDispatchTrace checks the trace used by the Table II i-cache replay:
// every entry is a surviving segment pair with both sizes >= 1 (a set bit
// implies at least one element), and the trace length matches the
// breakdown's surviving-pair count.
func TestDispatchTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := MustNewSet(randSet(rng, 4000, 1<<18), DefaultConfig())
	b := MustNewSet(randSet(rng, 4000, 1<<18), DefaultConfig())
	trace := DispatchTrace(a, b)
	bd := CountMergeBreakdown(a, b)
	if len(trace) != bd.SegPairs {
		t.Fatalf("trace has %d entries, breakdown reports %d pairs", len(trace), bd.SegPairs)
	}
	total := 0
	for _, p := range trace {
		if p[0] < 1 || p[1] < 1 {
			t.Fatalf("trace entry %v has an empty side", p)
		}
		total += min(p[0], p[1])
	}
	if total < bd.Count {
		t.Errorf("trace upper bound %d below actual count %d", total, bd.Count)
	}
}

// errWriter fails after n bytes, exercising WriteTo's error paths.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, bytes.ErrTooLarge
	}
	w.left -= len(p)
	return len(p), nil
}

func TestWriteToErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	s := MustNewSet(randSet(rng, 3000, 1<<18), DefaultConfig())
	var full bytes.Buffer
	if _, err := s.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	// Fail at several cut points: header, bitmap, offsets, elements.
	for _, limit := range []int{0, 4, 40, 2000, full.Len() - 10} {
		if _, err := s.WriteTo(&errWriter{left: limit}); err == nil {
			t.Errorf("WriteTo with %d-byte sink should fail", limit)
		}
	}
}

// TestReadSetAcceptsV1 pins backward compatibility: streams written by the
// pre-checksum v1 format must keep loading, and the loaded set must be
// indistinguishable from a v2 round trip.
func TestReadSetAcceptsV1(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, n := range []int{0, 1, 300, 4000} {
		orig := MustNewSet(randSet(rng, n, 1<<18), DefaultConfig())
		var buf bytes.Buffer
		if _, err := writeSetV1(&buf, orig); err != nil {
			t.Fatalf("writeSetV1: %v", err)
		}
		got, err := ReadSet(&buf)
		if err != nil {
			t.Fatalf("ReadSet(v1, n=%d): %v", n, err)
		}
		if got.Len() != orig.Len() || CountMerge(got, orig) != orig.Len() {
			t.Fatalf("v1 round trip changed the set (n=%d)", n)
		}
	}
}

// TestReadSetRejectsStrayBits is the regression test for the bitmap/element
// consistency hole: a v1 stream (no checksums to defeat) with an extra set
// bit that no element hashes to must be rejected, not loaded into a set
// whose bitmap disagrees with its element lists.
func TestReadSetRejectsStrayBits(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	orig := MustNewSet(randSet(rng, 60, 1<<12), DefaultConfig())
	var buf bytes.Buffer
	if _, err := writeSetV1(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// v1 layout: magic(8) + header(44), then bitmap words.
	wordsOff := 8 + 44
	wordsLen := int(orig.BitmapBits() / 8)
	planted := false
	for off := wordsOff; off < wordsOff+wordsLen; off++ {
		if data[off] == 0 {
			data[off] = 1
			planted = true
			break
		}
	}
	if !planted {
		t.Fatal("fixture bitmap has no zero byte to plant a stray bit in")
	}
	if _, err := ReadSet(bytes.NewReader(data)); err == nil {
		t.Fatal("stray set bit accepted")
	}
}

// TestReadSetDetectsAllTruncations: a v2 snapshot cut at every offset must
// fail to load.
func TestReadSetDetectsAllTruncations(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	s := MustNewSet(randSet(rng, 120, 1<<13), DefaultConfig())
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	testutil.ForEachTruncation(buf.Bytes(), func(n int, trunc []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadSet panicked on %d-byte truncation: %v", n, r)
			}
		}()
		if _, err := ReadSet(bytes.NewReader(trunc)); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded successfully", n, buf.Len())
		}
	})
}

// TestReadSetDetectsAllByteFlips: flipping any single byte of a v2 snapshot
// must fail the load — the per-section CRC32C guarantees 100% single-byte
// detection (v1 had none; see TestReadSetRejectsCorruption's weaker
// "error or structurally sound" contract).
func TestReadSetDetectsAllByteFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	s := MustNewSet(randSet(rng, 120, 1<<13), DefaultConfig())
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	testutil.ForEachByteFlip(buf.Bytes(), func(pos int, corrupted []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadSet panicked on flip at byte %d: %v", pos, r)
			}
		}()
		if _, err := ReadSet(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("flip at byte %d of %d loaded successfully", pos, buf.Len())
		}
	})
}

// TestReadSetFaultyMedia: mid-stream read failures surface the underlying
// error rather than a panic or a partial set.
func TestReadSetFaultyMedia(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	s := MustNewSet(randSet(rng, 200, 1<<13), DefaultConfig())
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for failAt := 0; failAt < len(data); failAt += 5 {
		if _, err := ReadSet(&testutil.FlakyReader{R: bytes.NewReader(data), FailAt: failAt}); err == nil {
			t.Fatalf("read failing after %d bytes loaded successfully", failAt)
		}
	}
	for failAt := 0; failAt < len(data); failAt += 5 {
		if _, err := s.WriteTo(&testutil.FailingWriter{FailAt: failAt}); !errors.Is(err, testutil.ErrInjected) {
			t.Fatalf("write failing after %d bytes: err = %v, want ErrInjected", failAt, err)
		}
	}
}

func TestReadSetRejectsBadHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	orig := MustNewSet(randSet(rng, 50, 1000), DefaultConfig())
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header layout after magic: width(4) segBits(4) stride(4) scale(8)
	// seed(8) n(8) mBits(8).
	corrupt := func(off int, val byte) []byte {
		out := append([]byte(nil), data...)
		out[8+off] = val
		return out
	}
	for _, c := range []struct {
		name string
		data []byte
	}{
		{"width", corrupt(0, 7)},
		{"segBits", corrupt(4, 9)},
		{"stride", corrupt(8, 3)},
		{"mBits-notpow2", corrupt(28+8, 3)},
	} {
		if _, err := ReadSet(bytes.NewReader(c.data)); err == nil {
			t.Errorf("corrupted %s accepted", c.name)
		}
	}
}
