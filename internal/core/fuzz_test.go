package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fesia/internal/simd"
)

// decodeSets splits fuzz input bytes into two element lists plus a config
// selector, so the fuzzer explores set contents, sizes, and configurations
// together.
func decodeSets(data []byte) (ea, eb []uint32, cfg Config) {
	if len(data) == 0 {
		return nil, nil, DefaultConfig()
	}
	sel := data[0]
	data = data[1:]
	widths := []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512}
	cfg = Config{
		Width:   widths[int(sel)%3],
		SegBits: []int{8, 16, 32}[int(sel>>2)%3],
	}
	if sel>>4&1 == 1 && cfg.Width == simd.WidthAVX512 {
		cfg.Stride = []int{4, 8}[int(sel>>5)%2]
	}
	split := len(data) / 2
	toSet := func(b []byte) []uint32 {
		out := make([]uint32, 0, len(b)/3)
		for i := 0; i+3 < len(b); i += 4 {
			out = append(out, binary.LittleEndian.Uint32(b[i:]))
		}
		return out
	}
	return toSet(data[:split]), toSet(data[split:]), cfg
}

func refCountMap(a, b []uint32) int {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	seen := make(map[uint32]bool)
	n := 0
	for _, v := range b {
		if in[v] && !seen[v] {
			seen[v] = true
			n++
		}
	}
	return n
}

// FuzzIntersect differentially tests all intersection strategies against a
// map-based reference, across fuzz-chosen contents and configurations.
func FuzzIntersect(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 2, 3, 4, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xAB}, 100))
	f.Add(append([]byte{9}, bytes.Repeat([]byte{0, 1, 2, 3}, 40)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		ea, eb, cfg := decodeSets(data)
		want := refCountMap(ea, eb)
		sa, err := NewSet(ea, cfg)
		if err != nil {
			t.Fatalf("NewSet: %v", err)
		}
		sb, err := NewSet(eb, cfg)
		if err != nil {
			t.Fatalf("NewSet: %v", err)
		}
		if got := CountMerge(sa, sb); got != want {
			t.Fatalf("CountMerge = %d, want %d (cfg %+v)", got, want, cfg)
		}
		if got := CountHash(sa, sb); got != want {
			t.Fatalf("CountHash = %d, want %d", got, want)
		}
		if got := CountMergeParallel(sa, sb, 3); got != want {
			t.Fatalf("CountMergeParallel = %d, want %d", got, want)
		}
		dst := make([]uint32, min(sa.Len(), sb.Len())+1)
		if got := IntersectMerge(dst, sa, sb); got != want {
			t.Fatalf("IntersectMerge = %d, want %d", got, want)
		}
	})
}

// FuzzHybridIntersect differentially tests the cross-representation
// dispatch matrix: the fuzzer picks both element lists AND both
// representations, and every strategy must agree with the map-based
// reference for all nine (Rep × Rep) pairs.
func FuzzHybridIntersect(f *testing.F) {
	f.Add([]byte{0}, uint8(0))
	f.Add([]byte{1, 1, 2, 3, 4, 1, 2, 3, 4}, uint8(0x12))
	f.Add(bytes.Repeat([]byte{0xAB}, 100), uint8(0x21))
	f.Add(append([]byte{9}, bytes.Repeat([]byte{0, 1, 2, 3}, 40)...), uint8(0x10))
	f.Add(bytes.Repeat([]byte{7, 0, 0, 0}, 60), uint8(0x22))
	f.Fuzz(func(t *testing.T, data []byte, repSel uint8) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		ea, eb, cfg := decodeSets(data)
		reps := []Rep{RepSegmented, RepArray, RepDense, RepAuto}
		cfgA, cfgB := cfg, cfg
		cfgA.Rep = reps[int(repSel)%4]
		cfgB.Rep = reps[int(repSel>>4)%4]
		// A forced dense representation allocates span/8 bytes; cap the
		// value range under it so the fuzzer spends its budget on logic, not
		// on filling hundred-megabyte bitmaps.
		clampSpan := func(elems []uint32, r Rep) []uint32 {
			if r != RepDense {
				return elems
			}
			out := make([]uint32, len(elems))
			for i, v := range elems {
				out[i] = v % (1 << 22)
			}
			return out
		}
		ea = clampSpan(ea, cfgA.Rep)
		eb = clampSpan(eb, cfgB.Rep)
		want := refCountMap(ea, eb)
		sa, err := NewSet(ea, cfgA)
		if err != nil {
			t.Fatalf("NewSet: %v", err)
		}
		sb, err := NewSet(eb, cfgB)
		if err != nil {
			t.Fatalf("NewSet: %v", err)
		}
		if got := Count(sa, sb); got != want {
			t.Fatalf("Count(%v×%v) = %d, want %d (cfg %+v)", sa.Rep(), sb.Rep(), got, want, cfg)
		}
		if got := CountMerge(sa, sb); got != want {
			t.Fatalf("CountMerge(%v×%v) = %d, want %d", sa.Rep(), sb.Rep(), got, want)
		}
		if got := CountHash(sa, sb); got != want {
			t.Fatalf("CountHash(%v×%v) = %d, want %d", sa.Rep(), sb.Rep(), got, want)
		}
		dst := make([]uint32, min(sa.Len(), sb.Len())+1)
		if got := IntersectMerge(dst, sa, sb); got != want {
			t.Fatalf("IntersectMerge(%v×%v) = %d, want %d", sa.Rep(), sb.Rep(), got, want)
		}
		for _, v := range dst[:want] {
			if !sa.Contains(v) || !sb.Contains(v) {
				t.Fatalf("IntersectMerge(%v×%v) emitted non-member %d", sa.Rep(), sb.Rep(), v)
			}
		}
		if got := CountK(sa, sb, sa); got != want {
			t.Fatalf("CountK(%v×%v) = %d, want %d", sa.Rep(), sb.Rep(), got, want)
		}
		// Round-trip both sets through the v3 codec and recheck: the
		// deserialized pair must intersect identically.
		var buf bytes.Buffer
		if _, err := sa.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		ra, err := ReadSet(&buf)
		if err != nil {
			t.Fatalf("ReadSet: %v", err)
		}
		if got := Count(ra, sb); got != want {
			t.Fatalf("Count after round trip = %d, want %d", got, want)
		}
	})
}

// FuzzReadSet throws arbitrary bytes at the deserializer: it must never
// panic, and anything it accepts must be structurally sound.
func FuzzReadSet(f *testing.F) {
	valid := MustNewSet([]uint32{1, 5, 9, 1 << 30}, DefaultConfig())
	var buf bytes.Buffer
	if _, err := valid.WriteTo(&buf); err != nil {
		f.Fatal(err) // v2 checksummed seed
	}
	f.Add(buf.Bytes())
	var v1 bytes.Buffer
	if _, err := writeSetV1(&v1, valid); err != nil {
		f.Fatal(err) // legacy unchecksummed seed
	}
	f.Add(v1.Bytes())
	bigger := MustNewSet([]uint32{2, 4, 8, 16, 1 << 10, 1 << 20, 1<<20 + 1}, DefaultConfig())
	var v2b bytes.Buffer
	if _, err := bigger.WriteTo(&v2b); err != nil {
		f.Fatal(err)
	}
	f.Add(v2b.Bytes())
	// v3 representation-tagged seeds: one per representation.
	for _, cfg := range []Config{{Rep: RepArray}, {Rep: RepDense}, {Rep: RepSegmented}} {
		s := MustNewSet([]uint32{3, 6, 9, 70, 131}, cfg)
		var b bytes.Buffer
		if _, err := s.WriteTo(&b); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte("FESIA1\x00\x00junk"))
	f.Add([]byte("FESIA2\x00\x00junk"))
	f.Add([]byte("FESIA3\x00\x00junk"))
	f.Add([]byte{})
	// Regression: a forged header demanding a multi-terabyte bitmap must
	// fail at the first short read, not allocate (found by fuzzing).
	huge := append([]byte(nil), buf.Bytes()[:28]...)
	huge = append(huge, 0, 0, 0, 0, 0, 0, 0, 0)       // seed
	huge = append(huge, 0, 0, 0, 0, 0, 0, 0, 0)       // n = 0
	huge = append(huge, 0, 0, 0, 0, 0, 0, 0x30, 0x40) // mBits = enormous pow2-ish
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted sets must behave: self-intersection equals cardinality.
		if got := CountMerge(s, s); got != s.Len() {
			t.Fatalf("accepted set self-intersects to %d, len %d", got, s.Len())
		}
	})
}

// FuzzReadCorpus throws arbitrary bytes at the corpus deserializer: it must
// never panic or allocate absurdly, and any corpus it accepts must consist of
// structurally sound, mutually intersectable sets.
func FuzzReadCorpus(f *testing.F) {
	lists := [][]uint32{
		{1, 5, 9, 1 << 30},
		{},
		{2, 5, 1 << 10},
	}
	sets, err := BuildSets(lists, DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteCorpus(&buf, sets); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if _, err := WriteCorpus(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	// Mixed-representation v3 corpus seed: auto picks array, dense and
	// segmented across these lists.
	autoCfg := DefaultConfig()
	autoCfg.Rep = RepAuto
	mixed, err := BuildSets([][]uint32{
		{1, 2, 3},
		{10, 11, 12, 13, 14, 15, 16, 17},
		nil,
	}, autoCfg)
	if err != nil {
		f.Fatal(err)
	}
	var mixedBuf bytes.Buffer
	if _, err := WriteCorpus(&mixedBuf, mixed); err != nil {
		f.Fatal(err)
	}
	f.Add(mixedBuf.Bytes())
	// Legacy segmented-only v2 corpus seed: the reader must keep accepting it.
	var v2Buf bytes.Buffer
	if _, err := writeCorpusV2(&v2Buf, sets); err != nil {
		f.Fatal(err)
	}
	f.Add(v2Buf.Bytes())
	f.Add([]byte("FESIAC2\x00junk"))
	f.Add([]byte("FESIAC3\x00junk"))
	f.Add([]byte{})
	// Forged header demanding an enormous corpus: must fail at a short read,
	// not allocate.
	huge := append([]byte(nil), buf.Bytes()[:8+28]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // numSets
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadCorpus(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, s := range loaded {
			if got := CountMerge(s, s); got != s.Len() {
				t.Fatalf("accepted set self-intersects to %d, len %d", got, s.Len())
			}
		}
		if len(loaded) >= 2 {
			_ = Count(loaded[0], loaded[1])
		}
	})
}
