// Package core implements FESIA (ICDE 2020): the segmented-bitmap set data
// structure and the two-step intersection algorithm with specialized SIMD
// kernels.
//
// A Set is built offline from a collection of 32-bit integers (Section
// III-B): elements are hashed into an m-bit bitmap (m a power of two,
// m ≈ n·√w by default), bits are grouped into s-bit segments, and the
// elements are stored segment-by-segment (sorted within each segment) in a
// reordered array with per-segment offsets and sizes — exactly the five
// arrays of the paper's Fig. 1.
//
// Intersections then run in two steps (Section III-C): a bitmap-level AND
// prunes segments with no common bits, and specialized kernels (package
// kernels) intersect the element lists of the surviving segment pairs. The
// expected work is O(n/√w + r) (Proposition 1).
//
// The package also provides the paper's extensions: k-way intersection
// (Section VI, O(kn/√w + r)), the hash-probe strategy for dramatically
// skewed inputs (FESIAhash, O(min(n1, n2))), an adaptive strategy switch,
// and multicore parallel intersection by bitmap partitioning.
package core

import (
	"fmt"
	"math"
	"slices"
	"unsafe"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/kernels"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Rep identifies a set's physical representation. A corpus may freely mix
// representations: every intersection path accepts any (Rep × Rep) pair via
// the cross-representation dispatch matrix in hybrid.go.
type Rep uint8

const (
	// RepSegmented is the FESIA segmented-bitmap structure of the paper's
	// Fig. 1 — the right layout for large sets of moderate density, where
	// the bitmap filter prunes most segment pairs.
	RepSegmented Rep = iota
	// RepArray stores the elements as a plain sorted []uint32 — 4 bytes per
	// element with zero metadata, the right layout for tiny or very sparse
	// sets where segmented-bitmap overhead (~5x the element bytes at the
	// default scale) dominates.
	RepArray
	// RepDense stores a plain bitmap over the set's value span — the right
	// layout when elements are packed densely enough that one bit per span
	// position beats four bytes per element, and intersection collapses to
	// word-AND + popcount.
	RepDense
	numReps
	// RepAuto (build-time only, never the representation of a built set)
	// selects per set by the density/size heuristic in chooseRep.
	RepAuto Rep = 0xff
)

// String returns the representation's stable external name.
func (r Rep) String() string {
	switch r {
	case RepSegmented:
		return "segmented"
	case RepArray:
		return "array"
	case RepDense:
		return "dense"
	case RepAuto:
		return "auto"
	}
	return "invalid"
}

// Representation-selection heuristic thresholds (RepAuto).
const (
	// ArrayMaxLen: sets at or below this size take the array representation.
	// A segmented bitmap at the default m = n·√w scale costs ~22 bytes per
	// element in bitmap words and per-segment metadata; a sorted array costs
	// 4. Below this size the bitmap filter has nothing to amortize against.
	ArrayMaxLen = 256
	// DenseMaxBitsPerElem: sets whose value span is at most this many bits
	// per element take the dense-bitmap representation. At 16 bits per
	// element the dense bitmap is at most 2 bytes per element — half the
	// array representation, an order of magnitude under segmented — and the
	// intersection is a straight word-AND.
	DenseMaxBitsPerElem = 16
)

// chooseRep picks a representation for a sorted, deduplicated element list.
// A forced choice other than RepAuto is honored as-is, with one exception:
// the dense bitmap has no encoding for the empty set (its canonical cover
// requires at least one set bit), so empty sets forced dense become arrays,
// as do empty sets under RepAuto.
func chooseRep(sorted []uint32, force Rep) Rep {
	if len(sorted) == 0 {
		if force == RepSegmented {
			return RepSegmented
		}
		return RepArray
	}
	if force != RepAuto {
		return force
	}
	if len(sorted) <= ArrayMaxLen {
		return RepArray
	}
	span := uint64(sorted[len(sorted)-1]) - uint64(sorted[0]) + 1
	if span <= uint64(len(sorted))*DenseMaxBitsPerElem {
		return RepDense
	}
	return RepSegmented
}

// Config controls how a Set is built. Sets that will be intersected together
// must be built with identical Width, SegBits, Seed and Stride; bitmap sizes
// may differ (they are reconciled via the power-of-two wrapping rule).
// Representations may differ freely across sets of one corpus.
type Config struct {
	// Width selects the emulated vector ISA (SSE, AVX, AVX512).
	// Default: AVX.
	Width simd.Width

	// SegBits is the segment size s in bits: 8, 16 or 32. Smaller segments
	// mean more, smaller segment intersections (see Fig. 14). Default: 8.
	SegBits int

	// Scale is the number of bitmap bits per element before rounding m up
	// to a power of two. The paper's analysis picks m = n·√w; 0 means use
	// √Width. Fig. 14 sweeps this knob.
	Scale float64

	// Seed salts the universal hash function.
	Seed uint64

	// Stride samples the specialized-kernel sizes (Section VI): 1 keeps
	// every kernel; 4 and 8 shrink the jump table as in Table II. Strides
	// other than 1 require Width == AVX512 (the generated tables).
	// Default: 1.
	Stride int

	// Rep selects the per-set representation. The zero value RepSegmented
	// builds the paper's segmented bitmap for every set (the historical
	// behavior); RepAuto picks segmented / array / dense per set by the
	// density/size heuristic (chooseRep), and RepArray / RepDense force one
	// representation for every set — the explicit override knob. Rep is a
	// build-time knob only: it is not serialized (snapshots record each
	// set's actual representation instead) and is ignored by compatible().
	Rep Rep
}

// DefaultConfig returns the configuration used throughout the paper's main
// experiments: AVX-256, 8-bit segments, m = n·√w.
func DefaultConfig() Config {
	return Config{Width: simd.WidthAVX, SegBits: 8, Scale: 0, Seed: 0, Stride: 1}
}

// normalize validates cfg and fills defaults.
func (c Config) normalize() (Config, error) {
	if c.Width == 0 {
		c.Width = simd.WidthAVX
	}
	if !c.Width.Valid() {
		return c, fmt.Errorf("core: invalid width %d", c.Width)
	}
	if c.SegBits == 0 {
		c.SegBits = 8
	}
	ok := false
	for _, s := range bitmap.SupportedSegBits {
		if s == c.SegBits {
			ok = true
		}
	}
	if !ok {
		return c, fmt.Errorf("core: unsupported segment size %d", c.SegBits)
	}
	if c.Scale == 0 {
		c.Scale = math.Sqrt(float64(c.Width.Bits()))
	}
	if c.Scale <= 0 || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return c, fmt.Errorf("core: invalid bitmap scale %v", c.Scale)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride != 1 && c.Width != simd.WidthAVX512 {
		return c, fmt.Errorf("core: kernel stride %d requires AVX512", c.Stride)
	}
	if c.Stride != 1 && c.Stride != 4 && c.Stride != 8 {
		return c, fmt.Errorf("core: unsupported kernel stride %d", c.Stride)
	}
	if c.Rep >= numReps && c.Rep != RepAuto {
		return c, fmt.Errorf("core: invalid representation %d", c.Rep)
	}
	return c, nil
}

func (c Config) table() *kernels.Table {
	if c.Stride != 1 {
		return kernels.ForStride(c.Stride)
	}
	return kernels.ForWidth(c.Width)
}

// Set is an immutable FESIA set in one of three physical representations:
// the paper's segmented bitmap (Fig. 1), a plain sorted array, or a dense
// bitmap over the value span. The representation is chosen at build time
// (Config.Rep); every intersection path accepts any representation pair.
// Sets are safe for concurrent reads.
type Set struct {
	cfg    Config
	hasher hashutil.Hasher
	table  *kernels.Table
	disp   kernels.Dispatcher // cached jump-table view for the hot loop

	rep Rep

	// Segmented-bitmap state (RepSegmented). reordered doubles as the
	// sorted element array of RepArray sets (with bm/offsets/sizes nil).
	bm        *bitmap.Bitmap
	offsets   []uint32 // nseg+1 prefix sums into reordered
	sizes     []uint32 // per-segment element counts (the paper's Size array)
	reordered []uint32 // the paper's ReorderedSet; ascending elements for RepArray
	n         int
	maxSeg    int // largest segment size, for scratch buffer sizing

	// Dense-bitmap state (RepDense): bit i of dense is set iff base+64*w+i
	// is an element. base is 64-aligned; the first and last words are
	// non-zero (canonical minimal cover).
	dense []uint64
	base  uint32
}

// NewSet builds a Set from elems. The input may be unsorted and contain
// duplicates; it is copied, sorted, and deduplicated. NewSet returns an
// error only for invalid configurations.
func NewSet(elems []uint32, cfg Config) (*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sorted := sortDedup(elems)
	switch chooseRep(sorted, cfg.Rep) {
	case RepArray:
		statsInc(stats.CtrBuildArray)
		return newArrayShell(cfg, sorted), nil
	case RepDense:
		base, nwords := denseLayout(sorted)
		s := newDenseShell(cfg, make([]uint64, nwords), base, len(sorted))
		fillDense(s.dense, base, sorted)
		statsInc(stats.CtrBuildDense)
		return s, nil
	}
	mBits := bitmapBits(len(sorted), cfg.Scale)
	nseg := int(mBits) / cfg.SegBits
	s := newShell(cfg, bitmap.New(mBits, cfg.SegBits),
		make([]uint32, nseg), make([]uint32, nseg+1), make([]uint32, len(sorted)))
	s.fill(sorted)
	statsInc(stats.CtrBuildSegmented)
	return s, nil
}

// NewSetBatch builds one Set per input list with all backing storage packed
// into a shared arena. It is kept as a compatibility alias for BuildSets.
func NewSetBatch(lists [][]uint32, cfg Config) ([]*Set, error) {
	return BuildSets(lists, cfg)
}

// BuildSets constructs a whole corpus of Sets into ONE contiguous backing
// allocation: for each set, its 64-bit word region (segmented-bitmap words
// or dense-bitmap words), then its uint32 region (sizes+offsets+reordered
// for segmented sets, the sorted element array for array sets) padded to
// word alignment, laid out back to back in input order. A workload that
// intersects one query against many small candidate sets — per-vertex
// neighbor lists in triangle counting, per-keyword posting lists in an
// inverted index — then walks one contiguous arena in candidate order
// instead of chasing four heap pointers per set. Each set's representation
// follows cfg.Rep (heuristic per set under RepAuto). The sets behave
// exactly like NewSet's; note that every set keeps the whole arena alive,
// so release all sets of a batch together.
func BuildSets(lists [][]uint32, cfg Config) ([]*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sortedLists := make([][]uint32, len(lists))
	reps := make([]Rep, len(lists))
	totalU64 := 0 // arena size in 64-bit words
	for i, l := range lists {
		sorted := sortDedup(l)
		sortedLists[i] = sorted
		reps[i] = chooseRep(sorted, cfg.Rep)
		totalU64 += arenaWords(reps[i], sorted, cfg)
	}
	if len(lists) == 0 {
		return []*Set{}, nil
	}
	arena := make([]uint64, totalU64)
	sets := make([]*Set, len(lists))
	at := 0
	for i, sorted := range sortedLists {
		switch reps[i] {
		case RepArray:
			var elems []uint32
			if len(sorted) > 0 {
				elems = unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), len(sorted))
				at += (len(sorted) + 1) / 2
				copy(elems, sorted)
			}
			sets[i] = newArrayShell(cfg, elems)
			statsInc(stats.CtrBuildArray)
		case RepDense:
			base, nwords := denseLayout(sorted)
			words := arena[at : at+nwords : at+nwords]
			at += nwords
			fillDense(words, base, sorted)
			sets[i] = newDenseShell(cfg, words, base, len(sorted))
			statsInc(stats.CtrBuildDense)
		default:
			mBits := bitmapBits(len(sorted), cfg.Scale)
			nseg := int(mBits) / cfg.SegBits
			nwords := int(mBits) / 64
			words := arena[at : at+nwords : at+nwords]
			at += nwords
			u32Len := nseg + (nseg + 1) + len(sorted)
			u32 := unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), u32Len)
			at += (u32Len + 1) / 2
			sizes := u32[:nseg:nseg]
			offsets := u32[nseg : 2*nseg+1 : 2*nseg+1]
			reordered := u32[2*nseg+1 : u32Len : u32Len]
			s := newShell(cfg, bitmap.NewFromWords(words, mBits, cfg.SegBits),
				sizes, offsets, reordered)
			s.fill(sorted)
			sets[i] = s
			statsInc(stats.CtrBuildSegmented)
		}
	}
	return sets, nil
}

// arenaWords returns one set's arena footprint in 64-bit words.
func arenaWords(rep Rep, sorted []uint32, cfg Config) int {
	switch rep {
	case RepArray:
		return (len(sorted) + 1) / 2
	case RepDense:
		_, nwords := denseLayout(sorted)
		return nwords
	}
	m := bitmapBits(len(sorted), cfg.Scale)
	nseg := int(m) / cfg.SegBits
	u32 := nseg + (nseg + 1) + len(sorted) // sizes + offsets + reordered
	return int(m)/64 + (u32+1)/2
}

// sortDedup copies, sorts and deduplicates the input.
func sortDedup(elems []uint32) []uint32 {
	sorted := append([]uint32(nil), elems...)
	slices.Sort(sorted)
	k := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[k-1] {
			sorted[k] = v
			k++
		}
	}
	return sorted[:k]
}

// bitmapBits returns m = nextPow2(n·scale), at least one word.
func bitmapBits(n int, scale float64) uint64 {
	mBits := hashutil.NextPow2(uint64(math.Ceil(float64(n) * scale)))
	if mBits < 64 {
		mBits = 64
	}
	return mBits
}

// newShell assembles a Set around a preallocated (possibly arena-backed)
// bitmap and sizes/offsets/reordered storage. Callers must fill() it before
// use.
func newShell(cfg Config, bm *bitmap.Bitmap, sizes, offsets, reordered []uint32) *Set {
	table := cfg.table()
	return &Set{
		cfg:       cfg,
		hasher:    hashutil.New(cfg.Seed),
		table:     table,
		disp:      table.Dispatcher(),
		rep:       RepSegmented,
		bm:        bm,
		n:         len(reordered),
		sizes:     sizes,
		offsets:   offsets,
		reordered: reordered,
	}
}

// newArrayShell assembles a RepArray Set around a sorted, duplicate-free
// (possibly arena-backed) element slice. elems is retained, not copied.
func newArrayShell(cfg Config, elems []uint32) *Set {
	table := cfg.table()
	return &Set{
		cfg:       cfg,
		hasher:    hashutil.New(cfg.Seed),
		table:     table,
		disp:      table.Dispatcher(),
		rep:       RepArray,
		n:         len(elems),
		reordered: elems,
	}
}

// newDenseShell assembles a RepDense Set around a (possibly arena-backed)
// word slice covering [base, base+64*len(words)). words is retained.
func newDenseShell(cfg Config, words []uint64, base uint32, n int) *Set {
	table := cfg.table()
	return &Set{
		cfg:    cfg,
		hasher: hashutil.New(cfg.Seed),
		table:  table,
		disp:   table.Dispatcher(),
		rep:    RepDense,
		n:      n,
		dense:  words,
		base:   base,
	}
}

// denseLayout computes the canonical dense-bitmap cover of a non-empty
// sorted element list: base is the smallest element rounded down to a word
// boundary, nwords the minimal word count reaching the largest element.
func denseLayout(sorted []uint32) (base uint32, nwords int) {
	base = sorted[0] &^ 63
	nwords = int(sorted[len(sorted)-1]-base)>>6 + 1
	return base, nwords
}

// fillDense sets one bit per element into a zeroed word slice laid out by
// denseLayout.
func fillDense(words []uint64, base uint32, sorted []uint32) {
	for _, v := range sorted {
		idx := v - base
		words[idx>>6] |= 1 << (idx & 63)
	}
}

// fill populates the bitmap and the Fig. 1 arrays from a sorted
// duplicate-free element list.
func (s *Set) fill(sorted []uint32) {
	mBits := s.bm.Bits()
	nseg := s.bm.NumSegments()
	segOf := make([]int32, len(sorted))
	for i, x := range sorted {
		pos := s.hasher.Pos(x, mBits)
		s.bm.Set(pos)
		seg := s.bm.SegmentOf(pos)
		segOf[i] = int32(seg)
		s.sizes[seg]++
	}
	sum := uint32(0)
	for i, c := range s.sizes {
		s.offsets[i] = sum
		sum += c
		if int(c) > s.maxSeg {
			s.maxSeg = int(c)
		}
	}
	s.offsets[nseg] = sum

	// Filling in ascending input order keeps each segment's list sorted
	// ascending, as the paper requires.
	next := append([]uint32(nil), s.offsets[:nseg]...)
	for i, x := range sorted {
		seg := segOf[i]
		s.reordered[next[seg]] = x
		next[seg]++
	}
}

// MustNewSet is NewSet for known-good configurations; it panics on error.
func MustNewSet(elems []uint32, cfg Config) *Set {
	s, err := NewSet(elems, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of distinct elements.
func (s *Set) Len() int { return s.n }

// Config returns the normalized build configuration.
func (s *Set) Config() Config { return s.cfg }

// Rep returns the set's physical representation.
func (s *Set) Rep() Rep { return s.rep }

// BitmapBits returns the bitmap size in bits: m for segmented sets, the
// covered span for dense sets, 0 for array sets (no bitmap).
func (s *Set) BitmapBits() uint64 {
	switch s.rep {
	case RepArray:
		return 0
	case RepDense:
		return uint64(len(s.dense)) * 64
	}
	return s.bm.Bits()
}

// NumSegments returns m/s for segmented sets and 0 otherwise.
func (s *Set) NumSegments() int {
	if s.rep != RepSegmented {
		return 0
	}
	return s.bm.NumSegments()
}

// MaxSegmentLen returns the size of the largest segment list (0 for
// non-segmented sets).
func (s *Set) MaxSegmentLen() int { return s.maxSeg }

// segment returns the sorted element list of segment i.
func (s *Set) segment(i int) []uint32 {
	return s.reordered[s.offsets[i]:s.offsets[i+1]]
}

// Segment returns a copy-free view of segment i's sorted elements (segmented
// sets only; nil otherwise). The returned slice must not be modified.
func (s *Set) Segment(i int) []uint32 {
	if s.rep != RepSegmented {
		return nil
	}
	return s.segment(i)
}

// Contains reports whether x is in the set. Segmented sets use the
// single-element probe of the skewed-input strategy: test the bitmap bit,
// then search the one segment the bit selects. Array sets binary-search;
// dense sets test one bit.
func (s *Set) Contains(x uint32) bool {
	switch s.rep {
	case RepArray:
		_, found := slices.BinarySearch(s.reordered, x)
		return found
	case RepDense:
		if x < s.base {
			return false
		}
		idx := x - s.base
		if int(idx>>6) >= len(s.dense) {
			return false
		}
		return s.dense[idx>>6]&(1<<(idx&63)) != 0
	}
	pos := s.hasher.Pos(x, s.bm.Bits())
	if !s.bm.Test(pos) {
		return false
	}
	for _, v := range s.segment(s.bm.SegmentOf(pos)) {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

// Elements returns the set's distinct elements in ascending order (a fresh
// slice).
func (s *Set) Elements() []uint32 {
	switch s.rep {
	case RepArray:
		return append([]uint32(nil), s.reordered...)
	case RepDense:
		out := make([]uint32, 0, s.n)
		for w, word := range s.dense {
			for word != 0 {
				out = append(out, s.base+uint32(w)<<6+uint32(simd.Tzcnt64(word)))
				word &= word - 1
			}
		}
		return out
	}
	out := append([]uint32(nil), s.reordered...)
	slices.Sort(out)
	return out
}

// MemoryBytes reports the approximate heap footprint of the structure, for
// the dataset tables.
func (s *Set) MemoryBytes() int {
	switch s.rep {
	case RepArray:
		return len(s.reordered) * 4
	case RepDense:
		return len(s.dense) * 8
	}
	return len(s.bm.Words())*8 + len(s.offsets)*4 + len(s.sizes)*4 + len(s.reordered)*4
}

// Stats summarizes the physical layout of a Set. The segment-level fields
// describe the segmented-bitmap layout — the quantities the Section III-D
// analysis reasons about when choosing m and s — and are zero for the array
// and dense representations.
type Stats struct {
	Rep              Rep     // physical representation
	N                int     // distinct elements
	MemoryBytes      int     // approximate heap footprint
	BitmapBits       uint64  // m (segmented) / covered span (dense) / 0 (array)
	SegmentBits      int     // s
	Segments         int     // m/s
	NonEmptySegments int     // segments holding at least one element
	MaxSegmentLen    int     // largest segment list
	MeanOccupied     float64 // mean elements per non-empty segment
	BitDensity       float64 // set bits / bitmap bits (drives false positives)
	// SegmentSizeHist[k] counts segments with exactly k elements, for
	// k < len(SegmentSizeHist); the last bucket aggregates everything
	// at or above its index.
	SegmentSizeHist []int
}

// Stats computes layout statistics (O(m/s) for segmented sets).
func (s *Set) Stats() Stats {
	st := Stats{
		Rep:         s.rep,
		N:           s.n,
		MemoryBytes: s.MemoryBytes(),
		BitmapBits:  s.BitmapBits(),
	}
	switch s.rep {
	case RepArray:
		return st
	case RepDense:
		if len(s.dense) > 0 {
			st.BitDensity = float64(s.n) / float64(64*len(s.dense))
		}
		return st
	}
	st.SegmentBits = s.bm.SegBits()
	st.Segments = s.bm.NumSegments()
	const histBuckets = 9
	st.SegmentSizeHist = make([]int, histBuckets)
	for _, c := range s.sizes {
		k := int(c)
		if k > 0 {
			st.NonEmptySegments++
			st.MaxSegmentLen = max(st.MaxSegmentLen, k)
		}
		st.SegmentSizeHist[min(k, histBuckets-1)]++
	}
	if st.NonEmptySegments > 0 {
		st.MeanOccupied = float64(s.n) / float64(st.NonEmptySegments)
	}
	st.BitDensity = float64(s.bm.PopCount()) / float64(s.bm.Bits())
	return st
}

// compatible panics unless two sets can be intersected against each other.
func compatible(a, b *Set) {
	if a.cfg.Seed != b.cfg.Seed {
		panic("core: sets built with different hash seeds")
	}
	if a.cfg.SegBits != b.cfg.SegBits {
		panic("core: sets built with different segment sizes")
	}
	if a.table != b.table {
		panic("core: sets built with different kernel tables")
	}
}

// ordered returns the pair with the larger bitmap first, as
// bitmap.ForEachIntersectingSegment requires.
func ordered(a, b *Set) (large, small *Set) {
	if a.bm.Bits() >= b.bm.Bits() {
		return a, b
	}
	return b, a
}
