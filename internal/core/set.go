// Package core implements FESIA (ICDE 2020): the segmented-bitmap set data
// structure and the two-step intersection algorithm with specialized SIMD
// kernels.
//
// A Set is built offline from a collection of 32-bit integers (Section
// III-B): elements are hashed into an m-bit bitmap (m a power of two,
// m ≈ n·√w by default), bits are grouped into s-bit segments, and the
// elements are stored segment-by-segment (sorted within each segment) in a
// reordered array with per-segment offsets and sizes — exactly the five
// arrays of the paper's Fig. 1.
//
// Intersections then run in two steps (Section III-C): a bitmap-level AND
// prunes segments with no common bits, and specialized kernels (package
// kernels) intersect the element lists of the surviving segment pairs. The
// expected work is O(n/√w + r) (Proposition 1).
//
// The package also provides the paper's extensions: k-way intersection
// (Section VI, O(kn/√w + r)), the hash-probe strategy for dramatically
// skewed inputs (FESIAhash, O(min(n1, n2))), an adaptive strategy switch,
// and multicore parallel intersection by bitmap partitioning.
package core

import (
	"fmt"
	"math"
	"slices"
	"unsafe"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// Config controls how a Set is built. Sets that will be intersected together
// must be built with identical Width, SegBits, Seed and Stride; bitmap sizes
// may differ (they are reconciled via the power-of-two wrapping rule).
type Config struct {
	// Width selects the emulated vector ISA (SSE, AVX, AVX512).
	// Default: AVX.
	Width simd.Width

	// SegBits is the segment size s in bits: 8, 16 or 32. Smaller segments
	// mean more, smaller segment intersections (see Fig. 14). Default: 8.
	SegBits int

	// Scale is the number of bitmap bits per element before rounding m up
	// to a power of two. The paper's analysis picks m = n·√w; 0 means use
	// √Width. Fig. 14 sweeps this knob.
	Scale float64

	// Seed salts the universal hash function.
	Seed uint64

	// Stride samples the specialized-kernel sizes (Section VI): 1 keeps
	// every kernel; 4 and 8 shrink the jump table as in Table II. Strides
	// other than 1 require Width == AVX512 (the generated tables).
	// Default: 1.
	Stride int
}

// DefaultConfig returns the configuration used throughout the paper's main
// experiments: AVX-256, 8-bit segments, m = n·√w.
func DefaultConfig() Config {
	return Config{Width: simd.WidthAVX, SegBits: 8, Scale: 0, Seed: 0, Stride: 1}
}

// normalize validates cfg and fills defaults.
func (c Config) normalize() (Config, error) {
	if c.Width == 0 {
		c.Width = simd.WidthAVX
	}
	if !c.Width.Valid() {
		return c, fmt.Errorf("core: invalid width %d", c.Width)
	}
	if c.SegBits == 0 {
		c.SegBits = 8
	}
	ok := false
	for _, s := range bitmap.SupportedSegBits {
		if s == c.SegBits {
			ok = true
		}
	}
	if !ok {
		return c, fmt.Errorf("core: unsupported segment size %d", c.SegBits)
	}
	if c.Scale == 0 {
		c.Scale = math.Sqrt(float64(c.Width.Bits()))
	}
	if c.Scale <= 0 || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return c, fmt.Errorf("core: invalid bitmap scale %v", c.Scale)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride != 1 && c.Width != simd.WidthAVX512 {
		return c, fmt.Errorf("core: kernel stride %d requires AVX512", c.Stride)
	}
	if c.Stride != 1 && c.Stride != 4 && c.Stride != 8 {
		return c, fmt.Errorf("core: unsupported kernel stride %d", c.Stride)
	}
	return c, nil
}

func (c Config) table() *kernels.Table {
	if c.Stride != 1 {
		return kernels.ForStride(c.Stride)
	}
	return kernels.ForWidth(c.Width)
}

// Set is a FESIA segmented-bitmap set (the paper's Fig. 1 data structure).
// It is immutable after construction and safe for concurrent reads.
type Set struct {
	cfg    Config
	hasher hashutil.Hasher
	table  *kernels.Table
	disp   kernels.Dispatcher // cached jump-table view for the hot loop

	bm        *bitmap.Bitmap
	offsets   []uint32 // nseg+1 prefix sums into reordered
	sizes     []uint32 // per-segment element counts (the paper's Size array)
	reordered []uint32 // the paper's ReorderedSet
	n         int
	maxSeg    int // largest segment size, for scratch buffer sizing
}

// NewSet builds a Set from elems. The input may be unsorted and contain
// duplicates; it is copied, sorted, and deduplicated. NewSet returns an
// error only for invalid configurations.
func NewSet(elems []uint32, cfg Config) (*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sorted := sortDedup(elems)
	mBits := bitmapBits(len(sorted), cfg.Scale)
	nseg := int(mBits) / cfg.SegBits
	s := newShell(cfg, bitmap.New(mBits, cfg.SegBits),
		make([]uint32, nseg), make([]uint32, nseg+1), make([]uint32, len(sorted)))
	s.fill(sorted)
	return s, nil
}

// NewSetBatch builds one Set per input list with all backing storage packed
// into a shared arena. It is kept as a compatibility alias for BuildSets.
func NewSetBatch(lists [][]uint32, cfg Config) ([]*Set, error) {
	return BuildSets(lists, cfg)
}

// BuildSets constructs a whole corpus of Sets into ONE contiguous backing
// allocation: for each set, its bitmap words, then its sizes, offsets and
// reordered arrays (the uint32 region padded to word alignment), laid out
// back to back in input order. A workload that intersects one query against
// many small candidate sets — per-vertex neighbor lists in triangle
// counting, per-keyword posting lists in an inverted index — then walks one
// contiguous arena in candidate order instead of chasing four heap pointers
// per set. The sets behave exactly like NewSet's; note that every set keeps
// the whole arena alive, so release all sets of a batch together.
func BuildSets(lists [][]uint32, cfg Config) ([]*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sortedLists := make([][]uint32, len(lists))
	mBitsOf := make([]uint64, len(lists))
	totalU64 := 0 // arena size in 64-bit words
	for i, l := range lists {
		sorted := sortDedup(l)
		sortedLists[i] = sorted
		m := bitmapBits(len(sorted), cfg.Scale)
		mBitsOf[i] = m
		nseg := int(m) / cfg.SegBits
		u32 := nseg + (nseg + 1) + len(sorted) // sizes + offsets + reordered
		totalU64 += int(m)/64 + (u32+1)/2
	}
	if len(lists) == 0 {
		return []*Set{}, nil
	}
	arena := make([]uint64, totalU64)
	sets := make([]*Set, len(lists))
	at := 0
	for i, sorted := range sortedLists {
		mBits := mBitsOf[i]
		nseg := int(mBits) / cfg.SegBits
		nwords := int(mBits) / 64
		words := arena[at : at+nwords : at+nwords]
		at += nwords
		u32Len := nseg + (nseg + 1) + len(sorted)
		u32 := unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), u32Len)
		at += (u32Len + 1) / 2
		sizes := u32[:nseg:nseg]
		offsets := u32[nseg : 2*nseg+1 : 2*nseg+1]
		reordered := u32[2*nseg+1 : u32Len : u32Len]
		s := newShell(cfg, bitmap.NewFromWords(words, mBits, cfg.SegBits),
			sizes, offsets, reordered)
		s.fill(sorted)
		sets[i] = s
	}
	return sets, nil
}

// sortDedup copies, sorts and deduplicates the input.
func sortDedup(elems []uint32) []uint32 {
	sorted := append([]uint32(nil), elems...)
	slices.Sort(sorted)
	k := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[k-1] {
			sorted[k] = v
			k++
		}
	}
	return sorted[:k]
}

// bitmapBits returns m = nextPow2(n·scale), at least one word.
func bitmapBits(n int, scale float64) uint64 {
	mBits := hashutil.NextPow2(uint64(math.Ceil(float64(n) * scale)))
	if mBits < 64 {
		mBits = 64
	}
	return mBits
}

// newShell assembles a Set around a preallocated (possibly arena-backed)
// bitmap and sizes/offsets/reordered storage. Callers must fill() it before
// use.
func newShell(cfg Config, bm *bitmap.Bitmap, sizes, offsets, reordered []uint32) *Set {
	table := cfg.table()
	return &Set{
		cfg:       cfg,
		hasher:    hashutil.New(cfg.Seed),
		table:     table,
		disp:      table.Dispatcher(),
		bm:        bm,
		n:         len(reordered),
		sizes:     sizes,
		offsets:   offsets,
		reordered: reordered,
	}
}

// fill populates the bitmap and the Fig. 1 arrays from a sorted
// duplicate-free element list.
func (s *Set) fill(sorted []uint32) {
	mBits := s.bm.Bits()
	nseg := s.bm.NumSegments()
	segOf := make([]int32, len(sorted))
	for i, x := range sorted {
		pos := s.hasher.Pos(x, mBits)
		s.bm.Set(pos)
		seg := s.bm.SegmentOf(pos)
		segOf[i] = int32(seg)
		s.sizes[seg]++
	}
	sum := uint32(0)
	for i, c := range s.sizes {
		s.offsets[i] = sum
		sum += c
		if int(c) > s.maxSeg {
			s.maxSeg = int(c)
		}
	}
	s.offsets[nseg] = sum

	// Filling in ascending input order keeps each segment's list sorted
	// ascending, as the paper requires.
	next := append([]uint32(nil), s.offsets[:nseg]...)
	for i, x := range sorted {
		seg := segOf[i]
		s.reordered[next[seg]] = x
		next[seg]++
	}
}

// MustNewSet is NewSet for known-good configurations; it panics on error.
func MustNewSet(elems []uint32, cfg Config) *Set {
	s, err := NewSet(elems, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of distinct elements.
func (s *Set) Len() int { return s.n }

// Config returns the normalized build configuration.
func (s *Set) Config() Config { return s.cfg }

// BitmapBits returns m, the bitmap size in bits.
func (s *Set) BitmapBits() uint64 { return s.bm.Bits() }

// NumSegments returns m/s.
func (s *Set) NumSegments() int { return s.bm.NumSegments() }

// MaxSegmentLen returns the size of the largest segment list.
func (s *Set) MaxSegmentLen() int { return s.maxSeg }

// segment returns the sorted element list of segment i.
func (s *Set) segment(i int) []uint32 {
	return s.reordered[s.offsets[i]:s.offsets[i+1]]
}

// Segment returns a copy-free view of segment i's sorted elements. The
// returned slice must not be modified.
func (s *Set) Segment(i int) []uint32 { return s.segment(i) }

// Contains reports whether x is in the set, using the single-element probe
// of the skewed-input strategy: test the bitmap bit, then search the one
// segment the bit selects.
func (s *Set) Contains(x uint32) bool {
	pos := s.hasher.Pos(x, s.bm.Bits())
	if !s.bm.Test(pos) {
		return false
	}
	for _, v := range s.segment(s.bm.SegmentOf(pos)) {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

// Elements returns the set's distinct elements in ascending order (a fresh
// slice).
func (s *Set) Elements() []uint32 {
	out := append([]uint32(nil), s.reordered...)
	slices.Sort(out)
	return out
}

// MemoryBytes reports the approximate heap footprint of the structure, for
// the dataset tables.
func (s *Set) MemoryBytes() int {
	return len(s.bm.Words())*8 + len(s.offsets)*4 + len(s.sizes)*4 + len(s.reordered)*4
}

// Stats summarizes the segmented-bitmap layout of a Set — the quantities
// the Section III-D analysis reasons about when choosing m and s.
type Stats struct {
	N                int     // distinct elements
	BitmapBits       uint64  // m
	SegmentBits      int     // s
	Segments         int     // m/s
	NonEmptySegments int     // segments holding at least one element
	MaxSegmentLen    int     // largest segment list
	MeanOccupied     float64 // mean elements per non-empty segment
	BitDensity       float64 // set bits / m (drives false-positive rate)
	// SegmentSizeHist[k] counts segments with exactly k elements, for
	// k < len(SegmentSizeHist); the last bucket aggregates everything
	// at or above its index.
	SegmentSizeHist []int
}

// Stats computes layout statistics (O(m/s)).
func (s *Set) Stats() Stats {
	st := Stats{
		N:           s.n,
		BitmapBits:  s.bm.Bits(),
		SegmentBits: s.bm.SegBits(),
		Segments:    s.bm.NumSegments(),
	}
	const histBuckets = 9
	st.SegmentSizeHist = make([]int, histBuckets)
	for _, c := range s.sizes {
		k := int(c)
		if k > 0 {
			st.NonEmptySegments++
			st.MaxSegmentLen = max(st.MaxSegmentLen, k)
		}
		st.SegmentSizeHist[min(k, histBuckets-1)]++
	}
	if st.NonEmptySegments > 0 {
		st.MeanOccupied = float64(s.n) / float64(st.NonEmptySegments)
	}
	st.BitDensity = float64(s.bm.PopCount()) / float64(s.bm.Bits())
	return st
}

// compatible panics unless two sets can be intersected against each other.
func compatible(a, b *Set) {
	if a.cfg.Seed != b.cfg.Seed {
		panic("core: sets built with different hash seeds")
	}
	if a.cfg.SegBits != b.cfg.SegBits {
		panic("core: sets built with different segment sizes")
	}
	if a.table != b.table {
		panic("core: sets built with different kernel tables")
	}
}

// ordered returns the pair with the larger bitmap first, as
// bitmap.ForEachIntersectingSegment requires.
func ordered(a, b *Set) (large, small *Set) {
	if a.bm.Bits() >= b.bm.Bits() {
		return a, b
	}
	return b, a
}
