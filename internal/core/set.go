// Package core implements FESIA (ICDE 2020): the segmented-bitmap set data
// structure and the two-step intersection algorithm with specialized SIMD
// kernels.
//
// A Set is built offline from a collection of 32-bit integers (Section
// III-B): elements are hashed into an m-bit bitmap (m a power of two,
// m ≈ n·√w by default), bits are grouped into s-bit segments, and the
// elements are stored segment-by-segment (sorted within each segment) in a
// reordered array with per-segment offsets and sizes — exactly the five
// arrays of the paper's Fig. 1.
//
// Intersections then run in two steps (Section III-C): a bitmap-level AND
// prunes segments with no common bits, and specialized kernels (package
// kernels) intersect the element lists of the surviving segment pairs. The
// expected work is O(n/√w + r) (Proposition 1).
//
// The package also provides the paper's extensions: k-way intersection
// (Section VI, O(kn/√w + r)), the hash-probe strategy for dramatically
// skewed inputs (FESIAhash, O(min(n1, n2))), an adaptive strategy switch,
// and multicore parallel intersection by bitmap partitioning.
package core

import (
	"fmt"
	"math"
	"slices"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// Config controls how a Set is built. Sets that will be intersected together
// must be built with identical Width, SegBits, Seed and Stride; bitmap sizes
// may differ (they are reconciled via the power-of-two wrapping rule).
type Config struct {
	// Width selects the emulated vector ISA (SSE, AVX, AVX512).
	// Default: AVX.
	Width simd.Width

	// SegBits is the segment size s in bits: 8, 16 or 32. Smaller segments
	// mean more, smaller segment intersections (see Fig. 14). Default: 8.
	SegBits int

	// Scale is the number of bitmap bits per element before rounding m up
	// to a power of two. The paper's analysis picks m = n·√w; 0 means use
	// √Width. Fig. 14 sweeps this knob.
	Scale float64

	// Seed salts the universal hash function.
	Seed uint64

	// Stride samples the specialized-kernel sizes (Section VI): 1 keeps
	// every kernel; 4 and 8 shrink the jump table as in Table II. Strides
	// other than 1 require Width == AVX512 (the generated tables).
	// Default: 1.
	Stride int
}

// DefaultConfig returns the configuration used throughout the paper's main
// experiments: AVX-256, 8-bit segments, m = n·√w.
func DefaultConfig() Config {
	return Config{Width: simd.WidthAVX, SegBits: 8, Scale: 0, Seed: 0, Stride: 1}
}

// normalize validates cfg and fills defaults.
func (c Config) normalize() (Config, error) {
	if c.Width == 0 {
		c.Width = simd.WidthAVX
	}
	if !c.Width.Valid() {
		return c, fmt.Errorf("core: invalid width %d", c.Width)
	}
	if c.SegBits == 0 {
		c.SegBits = 8
	}
	ok := false
	for _, s := range bitmap.SupportedSegBits {
		if s == c.SegBits {
			ok = true
		}
	}
	if !ok {
		return c, fmt.Errorf("core: unsupported segment size %d", c.SegBits)
	}
	if c.Scale == 0 {
		c.Scale = math.Sqrt(float64(c.Width.Bits()))
	}
	if c.Scale <= 0 || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return c, fmt.Errorf("core: invalid bitmap scale %v", c.Scale)
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.Stride != 1 && c.Width != simd.WidthAVX512 {
		return c, fmt.Errorf("core: kernel stride %d requires AVX512", c.Stride)
	}
	if c.Stride != 1 && c.Stride != 4 && c.Stride != 8 {
		return c, fmt.Errorf("core: unsupported kernel stride %d", c.Stride)
	}
	return c, nil
}

func (c Config) table() *kernels.Table {
	if c.Stride != 1 {
		return kernels.ForStride(c.Stride)
	}
	return kernels.ForWidth(c.Width)
}

// Set is a FESIA segmented-bitmap set (the paper's Fig. 1 data structure).
// It is immutable after construction and safe for concurrent reads.
type Set struct {
	cfg    Config
	hasher hashutil.Hasher
	table  *kernels.Table
	disp   kernels.Dispatcher // cached jump-table view for the hot loop

	bm        *bitmap.Bitmap
	offsets   []uint32 // nseg+1 prefix sums into reordered
	sizes     []uint32 // per-segment element counts (the paper's Size array)
	reordered []uint32 // the paper's ReorderedSet
	n         int
	maxSeg    int // largest segment size, for scratch buffer sizing
}

// NewSet builds a Set from elems. The input may be unsorted and contain
// duplicates; it is copied, sorted, and deduplicated. NewSet returns an
// error only for invalid configurations.
func NewSet(elems []uint32, cfg Config) (*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sorted := sortDedup(elems)
	mBits := bitmapBits(len(sorted), cfg.Scale)
	nseg := int(mBits) / cfg.SegBits
	s := newShell(cfg, mBits,
		make([]uint32, nseg), make([]uint32, nseg+1), make([]uint32, len(sorted)))
	s.fill(sorted)
	return s, nil
}

// NewSetBatch builds one Set per input list with all backing arrays packed
// into three shared arenas, so a workload that intersects many small sets —
// per-vertex neighbor sets in triangle counting, per-item posting lists in
// an inverted index — touches contiguous memory instead of one scattered
// allocation per set. The sets behave exactly like NewSet's.
func NewSetBatch(lists [][]uint32, cfg Config) ([]*Set, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	sortedLists := make([][]uint32, len(lists))
	var totalSegs, totalElems int
	mBitsOf := make([]uint64, len(lists))
	for i, l := range lists {
		sorted := sortDedup(l)
		sortedLists[i] = sorted
		m := bitmapBits(len(sorted), cfg.Scale)
		mBitsOf[i] = m
		totalSegs += int(m) / cfg.SegBits
		totalElems += len(sorted)
	}
	sizesArena := make([]uint32, totalSegs)
	offsetsArena := make([]uint32, totalSegs+len(lists))
	elemsArena := make([]uint32, totalElems)

	sets := make([]*Set, len(lists))
	segAt, offAt, elemAt := 0, 0, 0
	for i, sorted := range sortedLists {
		nseg := int(mBitsOf[i]) / cfg.SegBits
		s := newShell(cfg, mBitsOf[i],
			sizesArena[segAt:segAt+nseg:segAt+nseg],
			offsetsArena[offAt:offAt+nseg+1:offAt+nseg+1],
			elemsArena[elemAt:elemAt+len(sorted):elemAt+len(sorted)])
		s.fill(sorted)
		sets[i] = s
		segAt += nseg
		offAt += nseg + 1
		elemAt += len(sorted)
	}
	return sets, nil
}

// sortDedup copies, sorts and deduplicates the input.
func sortDedup(elems []uint32) []uint32 {
	sorted := append([]uint32(nil), elems...)
	slices.Sort(sorted)
	k := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[k-1] {
			sorted[k] = v
			k++
		}
	}
	return sorted[:k]
}

// bitmapBits returns m = nextPow2(n·scale), at least one word.
func bitmapBits(n int, scale float64) uint64 {
	mBits := hashutil.NextPow2(uint64(math.Ceil(float64(n) * scale)))
	if mBits < 64 {
		mBits = 64
	}
	return mBits
}

// newShell assembles a Set around preallocated (possibly arena-backed)
// sizes/offsets/reordered storage. Callers must fill() it before use.
func newShell(cfg Config, mBits uint64, sizes, offsets, reordered []uint32) *Set {
	table := cfg.table()
	return &Set{
		cfg:       cfg,
		hasher:    hashutil.New(cfg.Seed),
		table:     table,
		disp:      table.Dispatcher(),
		bm:        bitmap.New(mBits, cfg.SegBits),
		n:         len(reordered),
		sizes:     sizes,
		offsets:   offsets,
		reordered: reordered,
	}
}

// fill populates the bitmap and the Fig. 1 arrays from a sorted
// duplicate-free element list.
func (s *Set) fill(sorted []uint32) {
	mBits := s.bm.Bits()
	nseg := s.bm.NumSegments()
	segOf := make([]int32, len(sorted))
	for i, x := range sorted {
		pos := s.hasher.Pos(x, mBits)
		s.bm.Set(pos)
		seg := s.bm.SegmentOf(pos)
		segOf[i] = int32(seg)
		s.sizes[seg]++
	}
	sum := uint32(0)
	for i, c := range s.sizes {
		s.offsets[i] = sum
		sum += c
		if int(c) > s.maxSeg {
			s.maxSeg = int(c)
		}
	}
	s.offsets[nseg] = sum

	// Filling in ascending input order keeps each segment's list sorted
	// ascending, as the paper requires.
	next := append([]uint32(nil), s.offsets[:nseg]...)
	for i, x := range sorted {
		seg := segOf[i]
		s.reordered[next[seg]] = x
		next[seg]++
	}
}

// MustNewSet is NewSet for known-good configurations; it panics on error.
func MustNewSet(elems []uint32, cfg Config) *Set {
	s, err := NewSet(elems, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of distinct elements.
func (s *Set) Len() int { return s.n }

// Config returns the normalized build configuration.
func (s *Set) Config() Config { return s.cfg }

// BitmapBits returns m, the bitmap size in bits.
func (s *Set) BitmapBits() uint64 { return s.bm.Bits() }

// NumSegments returns m/s.
func (s *Set) NumSegments() int { return s.bm.NumSegments() }

// MaxSegmentLen returns the size of the largest segment list.
func (s *Set) MaxSegmentLen() int { return s.maxSeg }

// segment returns the sorted element list of segment i.
func (s *Set) segment(i int) []uint32 {
	return s.reordered[s.offsets[i]:s.offsets[i+1]]
}

// Segment returns a copy-free view of segment i's sorted elements. The
// returned slice must not be modified.
func (s *Set) Segment(i int) []uint32 { return s.segment(i) }

// Contains reports whether x is in the set, using the single-element probe
// of the skewed-input strategy: test the bitmap bit, then search the one
// segment the bit selects.
func (s *Set) Contains(x uint32) bool {
	pos := s.hasher.Pos(x, s.bm.Bits())
	if !s.bm.Test(pos) {
		return false
	}
	for _, v := range s.segment(s.bm.SegmentOf(pos)) {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

// Elements returns the set's distinct elements in ascending order (a fresh
// slice).
func (s *Set) Elements() []uint32 {
	out := append([]uint32(nil), s.reordered...)
	slices.Sort(out)
	return out
}

// MemoryBytes reports the approximate heap footprint of the structure, for
// the dataset tables.
func (s *Set) MemoryBytes() int {
	return len(s.bm.Words())*8 + len(s.offsets)*4 + len(s.sizes)*4 + len(s.reordered)*4
}

// Stats summarizes the segmented-bitmap layout of a Set — the quantities
// the Section III-D analysis reasons about when choosing m and s.
type Stats struct {
	N                int     // distinct elements
	BitmapBits       uint64  // m
	SegmentBits      int     // s
	Segments         int     // m/s
	NonEmptySegments int     // segments holding at least one element
	MaxSegmentLen    int     // largest segment list
	MeanOccupied     float64 // mean elements per non-empty segment
	BitDensity       float64 // set bits / m (drives false-positive rate)
	// SegmentSizeHist[k] counts segments with exactly k elements, for
	// k < len(SegmentSizeHist); the last bucket aggregates everything
	// at or above its index.
	SegmentSizeHist []int
}

// Stats computes layout statistics (O(m/s)).
func (s *Set) Stats() Stats {
	st := Stats{
		N:           s.n,
		BitmapBits:  s.bm.Bits(),
		SegmentBits: s.bm.SegBits(),
		Segments:    s.bm.NumSegments(),
	}
	const histBuckets = 9
	st.SegmentSizeHist = make([]int, histBuckets)
	for _, c := range s.sizes {
		k := int(c)
		if k > 0 {
			st.NonEmptySegments++
			st.MaxSegmentLen = max(st.MaxSegmentLen, k)
		}
		st.SegmentSizeHist[min(k, histBuckets-1)]++
	}
	if st.NonEmptySegments > 0 {
		st.MeanOccupied = float64(s.n) / float64(st.NonEmptySegments)
	}
	st.BitDensity = float64(s.bm.PopCount()) / float64(s.bm.Bits())
	return st
}

// compatible panics unless two sets can be intersected against each other.
func compatible(a, b *Set) {
	if a.cfg.Seed != b.cfg.Seed {
		panic("core: sets built with different hash seeds")
	}
	if a.cfg.SegBits != b.cfg.SegBits {
		panic("core: sets built with different segment sizes")
	}
	if a.table != b.table {
		panic("core: sets built with different kernel tables")
	}
}

// ordered returns the pair with the larger bitmap first, as
// bitmap.ForEachIntersectingSegment requires.
func ordered(a, b *Set) (large, small *Set) {
	if a.bm.Bits() >= b.bm.Bits() {
		return a, b
	}
	return b, a
}
