package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fesia/internal/planner"
)

// newTestModel builds a learned model tuned for tests: every decision is
// measured, and every other decision explores — the harshest churn the
// dispatch seams can see.
func newTestModel() *planner.Model {
	return planner.New(planner.WithMode(planner.ModeLearned),
		planner.WithSampleEvery(1), planner.WithExploreEvery(2))
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlannerPriorBitIdentical: a prior-mode planner reproduces the static
// heuristics' decisions exactly, so every entry point must return the exact
// same bytes — including emission order — as a planner-free executor, across
// all nine representation pairs.
func TestPlannerPriorBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	plain := NewExecutor()
	ex := NewExecutor()
	ex.EnablePlanner(planner.New(planner.WithMode(planner.ModePrior)))
	for si, shape := range hybridShapes(rng) {
		for _, ra := range allReps {
			for _, rb := range allReps {
				a := buildRep(t, shape[0], ra)
				b := buildRep(t, shape[1], rb)
				want := plain.Count(a, b)
				if got := ex.Count(a, b); got != want {
					t.Fatalf("shape %d %v×%v Count = %d, static %d", si, ra, rb, got, want)
				}
				dstP := make([]uint32, want+8)
				dstL := make([]uint32, want+8)
				nP := plain.Intersect(dstP, a, b)
				nL := ex.Intersect(dstL, a, b)
				if nP != nL || !equalU32(dstP[:nP], dstL[:nL]) {
					t.Fatalf("shape %d %v×%v Intersect diverges from static (prior mode must be bit-identical)",
						si, ra, rb)
				}
				var visP, visL []uint32
				plain.Visit(a, b, func(v uint32) { visP = append(visP, v) })
				ex.Visit(a, b, func(v uint32) { visL = append(visL, v) })
				if !equalU32(visP, visL) {
					t.Fatalf("shape %d %v×%v Visit order diverges from static", si, ra, rb)
				}
				nc, err := ex.CountCtx(context.Background(), a, b)
				if err != nil || nc != want {
					t.Fatalf("shape %d %v×%v CountCtx = %d, %v, want %d", si, ra, rb, nc, err, want)
				}
			}
		}
	}
}

// TestPlannerLearnedPairParity: a learned planner under maximum churn (every
// decision measured, every other explored, re-fits between rounds) may flip
// strategies freely, but the result set must stay exactly right for every
// representation pair and entry point. Counts are compared directly;
// materialized and visited outputs are compared as sorted sets.
func TestPlannerLearnedPairParity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := newTestModel()
	ex := NewExecutor()
	ex.EnablePlanner(m)
	for round := 0; round < 3; round++ {
		for si, shape := range hybridShapes(rng) {
			ref := refIntersect(shape[0], shape[1])
			for _, ra := range allReps {
				for _, rb := range allReps {
					a := buildRep(t, shape[0], ra)
					b := buildRep(t, shape[1], rb)
					want := len(ref)
					if got := ex.Count(a, b); got != want {
						t.Fatalf("round %d shape %d %v×%v Count = %d, want %d", round, si, ra, rb, got, want)
					}
					dst := make([]uint32, want+8)
					n := ex.Intersect(dst, a, b)
					if n != want || !equalU32(sortedCopy(dst[:n]), ref) {
						t.Fatalf("round %d shape %d %v×%v Intersect = %d elems, want %d", round, si, ra, rb, n, want)
					}
					var vis []uint32
					ex.Visit(a, b, func(v uint32) { vis = append(vis, v) })
					sort.Slice(vis, func(i, j int) bool { return vis[i] < vis[j] })
					if !equalU32(vis, ref) {
						t.Fatalf("round %d shape %d %v×%v Visit mismatch", round, si, ra, rb)
					}
					nc, err := ex.CountCtx(context.Background(), a, b)
					if err != nil || nc != want {
						t.Fatalf("round %d shape %d %v×%v CountCtx = %d, %v", round, si, ra, rb, nc, err)
					}
					n, err = ex.IntersectIntoCtx(context.Background(), dst, a, b)
					if err != nil || n != want || !equalU32(sortedCopy(dst[:n]), ref) {
						t.Fatalf("round %d shape %d %v×%v IntersectIntoCtx = %d, %v", round, si, ra, rb, n, err)
					}
				}
			}
		}
		m.Refit()
	}
	if len(m.Snapshot().Cells) == 0 {
		t.Fatal("parity run recorded no cost cells — the seams are not consulting the planner")
	}
}

// TestPlannerBatchParity drives the batch and k-way engines with a learned
// planner over a shuffled mixed-representation corpus and compares every path
// against a planner-free executor.
func TestPlannerBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	qElems := randSet(rng, 4000, 1<<15)
	var candElems [][]uint32
	var cands []*Set
	for i := 0; i < 24; i++ {
		var el []uint32
		switch i % 4 {
		case 0:
			el = randSet(rng, 300+rng.Intn(3000), 1<<15) // merge-favored
		case 1:
			el = randSet(rng, 10+rng.Intn(200), 1<<15) // hash-favored skew
		case 2:
			el = randSet(rng, 500+rng.Intn(2000), 1<<12) // packed
		case 3:
			el = nil
		}
		candElems = append(candElems, el)
		cands = append(cands, buildRep(t, el, allReps[i%3]))
	}
	rng.Shuffle(len(cands), func(i, j int) {
		cands[i], cands[j] = cands[j], cands[i]
		candElems[i], candElems[j] = candElems[j], candElems[i]
	})

	plain := NewExecutor()
	m := newTestModel()
	ex := NewExecutor()
	ex.EnablePlanner(m)

	for _, qRep := range allReps {
		q := buildRep(t, qElems, qRep)
		want := make([]int, len(cands))
		plain.CountMany(q, cands, want)
		out := make([]int, len(cands))
		for round := 0; round < 3; round++ {
			check := func(name string) {
				t.Helper()
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("round %d qRep %v %s[%d] = %d, want %d", round, qRep, name, i, out[i], want[i])
					}
				}
			}
			ex.CountMany(q, cands, out)
			check("CountMany")
			ex.CountManyParallel(q, cands, out, 4)
			check("CountManyParallel")
			if err := ex.CountManyCtx(context.Background(), q, cands, out); err != nil {
				t.Fatal(err)
			}
			check("CountManyCtx")
			if err := ex.CountManyParallelCtx(context.Background(), q, cands, out, 4); err != nil {
				t.Fatal(err)
			}
			check("CountManyParallelCtx")

			total := 0
			for _, w := range want {
				total += w
			}
			dst := make([]uint32, total+8)
			counts := make([]int, len(cands))
			if n := ex.IntersectManyInto(dst, counts, q, cands); n != total {
				t.Fatalf("round %d qRep %v IntersectManyInto = %d, want %d", round, qRep, n, total)
			}
			off := 0
			for i, c := range counts {
				if c != want[i] {
					t.Fatalf("round %d qRep %v IntersectManyInto counts[%d] = %d, want %d", round, qRep, i, c, want[i])
				}
				ref := refIntersect(qElems, candElems[i])
				if !equalU32(sortedCopy(dst[off:off+c]), ref) {
					t.Fatalf("round %d qRep %v IntersectManyInto candidate %d element mismatch", round, qRep, i)
				}
				off += c
			}

			visited := make([][]uint32, len(cands))
			ex.VisitMany(q, cands, func(ci int, v uint32) { visited[ci] = append(visited[ci], v) })
			for i := range cands {
				ref := refIntersect(qElems, candElems[i])
				sort.Slice(visited[i], func(a, b int) bool { return visited[i][a] < visited[i][b] })
				if !equalU32(visited[i], ref) {
					t.Fatalf("round %d qRep %v VisitMany candidate %d mismatch", round, qRep, i)
				}
			}
			m.Refit()
		}
	}

	// k-way with mixed representations through the planner-guided seed pick.
	lists := [][]uint32{
		randSet(rng, 4000, 1<<14), randSet(rng, 2500, 1<<14), randSet(rng, 200, 1<<14),
	}
	wantK := refIntersect(refIntersect(lists[0], lists[1]), lists[2])
	for _, reps := range [][]Rep{
		{RepSegmented, RepArray, RepDense},
		{RepDense, RepSegmented, RepArray},
	} {
		sets := make([]*Set, len(lists))
		for i := range lists {
			sets[i] = buildRep(t, lists[i], reps[i])
		}
		for round := 0; round < 3; round++ {
			if n := ex.CountK(sets...); n != len(wantK) {
				t.Fatalf("round %d reps %v CountK = %d, want %d", round, reps, n, len(wantK))
			}
			dst := make([]uint32, len(wantK)+8)
			if n := ex.IntersectK(dst, sets...); n != len(wantK) || !equalU32(sortedCopy(dst[:n]), wantK) {
				t.Fatalf("round %d reps %v IntersectK mismatch", round, reps)
			}
			if n, err := ex.CountKCtx(context.Background(), sets...); err != nil || n != len(wantK) {
				t.Fatalf("round %d reps %v CountKCtx = %d, %v", round, reps, n, err)
			}
			m.Refit()
		}
	}
}

// TestPlannerGlobalAttach: executors built while a model is active attach to
// it automatically; deactivation only affects future executors, and
// DisablePlanner detaches a live one.
func TestPlannerGlobalAttach(t *testing.T) {
	defer EnablePlanner(nil)
	EnablePlanner(planner.New(planner.WithMode(planner.ModePrior)))
	ex := NewExecutor()
	if ex.plan == nil {
		t.Fatal("executor did not attach to the active model")
	}
	if PlannerModel() == nil {
		t.Fatal("PlannerModel lost the active model")
	}
	EnablePlanner(nil)
	if NewExecutor().plan != nil {
		t.Fatal("executor attached after deactivation")
	}
	ex.DisablePlanner()
	if ex.plan != nil || ex.planModel != nil {
		t.Fatal("DisablePlanner left the handle in place")
	}
	// ModeOff models never attach, even when passed directly.
	ex.EnablePlanner(planner.New(planner.WithMode(planner.ModeOff)))
	if ex.plan != nil {
		t.Fatal("ModeOff model attached")
	}
}

// TestPlannerCancelledCtxNotRecorded: a cancelled pass must not feed its
// partial latency into the model.
func TestPlannerCancelledCtxNotRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	m := newTestModel()
	ex := NewExecutor()
	ex.EnablePlanner(m)
	a := buildRep(t, randSet(rng, 200_000, 1<<24), RepSegmented)
	b := buildRep(t, randSet(rng, 150_000, 1<<24), RepSegmented)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.CountCtx(ctx, a, b); err == nil {
		t.Fatal("cancelled CountCtx returned no error")
	}
	m.Refit()
	for _, c := range m.Snapshot().Cells {
		if c.Samples > 0 {
			t.Fatalf("cancelled pass recorded a sample: %+v", c)
		}
	}
}

// TestPlannerZeroAllocWarm: with a warm executor, planner-guided dispatch
// must not allocate — on the pairwise path or across a whole CountMany batch.
func TestPlannerZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	m := newTestModel()
	ex := NewExecutor()
	ex.EnablePlanner(m)
	a := buildRep(t, randSet(rng, 20_000, 1<<18), RepSegmented)
	b := buildRep(t, randSet(rng, 4_000, 1<<18), RepSegmented)
	den := buildRep(t, randSet(rng, 6_000, 1<<13), RepDense)
	cands := []*Set{b, den, a}
	out := make([]int, len(cands))
	for i := 0; i < 8; i++ { // warm scratch, caches and the refit cadence
		ex.Count(a, b)
		ex.Count(a, den)
		ex.CountMany(a, cands, out)
	}
	if n := testing.AllocsPerRun(50, func() { ex.Count(a, b) }); n != 0 {
		t.Errorf("warm Count allocates %v times per op with the planner on", n)
	}
	if n := testing.AllocsPerRun(50, func() { ex.Count(a, den) }); n != 0 {
		t.Errorf("warm cross-rep Count allocates %v times per op with the planner on", n)
	}
	if n := testing.AllocsPerRun(50, func() { ex.CountMany(a, cands, out) }); n != 0 {
		t.Errorf("warm CountMany allocates %v times per op with the planner on", n)
	}
}

// TestPlannerConcurrentExecutors: several executors sharing one model, each
// on its own goroutine, with re-fits and snapshots racing from the main
// goroutine — the single-writer shard protocol must hold under -race, and
// every result must stay correct throughout.
func TestPlannerConcurrentExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	m := newTestModel()
	a := buildRep(t, randSet(rng, 8000, 1<<16), RepSegmented)
	cands := []*Set{
		buildRep(t, randSet(rng, 5000, 1<<16), RepSegmented),
		buildRep(t, randSet(rng, 200, 1<<16), RepArray),
		buildRep(t, randSet(rng, 3000, 1<<12), RepDense),
	}
	plain := NewExecutor()
	want := make([]int, len(cands))
	plain.CountMany(a, cands, want)

	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			ex := NewExecutor()
			ex.EnablePlanner(m)
			out := make([]int, len(cands))
			for i := 0; i < 300; i++ {
				ex.CountMany(a, cands, out)
				for j := range want {
					if out[j] != want[j] {
						errc <- fmt.Errorf("concurrent CountMany[%d] = %d, want %d", j, out[j], want[j])
						return
					}
				}
				for _, c := range cands {
					if got := ex.Count(a, c); got < 0 {
						panic("unreachable")
					}
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < 40; i++ {
		m.Refit()
		_ = m.Snapshot()
	}
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
