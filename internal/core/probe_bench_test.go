package core

import (
	"fmt"
	"testing"
)

// hashProbeRangeNoHoist is the probe loop without the last-segment cache,
// kept verbatim as the baseline for BenchmarkHashProbeHoist: every surviving
// probe re-derives its segment number and reassembles the segment slice
// header, even when it lands in the same segment as its predecessor.
func hashProbeRangeNoHoist(small, large *Set, lo, hi int, emit Visitor) int {
	n := 0
	lb := large.bm
	mBits := lb.Bits()
	for _, x := range small.reordered[lo:hi] {
		pos := large.hasher.Pos(x, mBits)
		if !lb.Test(pos) {
			continue
		}
		for _, v := range large.segment(lb.SegmentOf(pos)) {
			if v == x {
				n++
				if emit != nil {
					emit(x)
				}
				break
			}
			if v > x {
				break
			}
		}
	}
	return n
}

// TestHashProbeNoHoistParity pins the baseline copy to the real loop, so the
// benchmark comparison below stays honest if hashProbeRange evolves.
func TestHashProbeNoHoistParity(t *testing.T) {
	for _, sizes := range [][2]int{{1000, 1000}, {1000, 100_000}, {317, 40_000}} {
		sa, sb := benchPair(max(sizes[0], sizes[1]), 0.3, DefaultConfig())
		small, large := sa, sb
		if small.n > large.n {
			small, large = large, small
		}
		want := hashProbeRange(small, large, 0, small.n, nil, nil)
		if got := hashProbeRangeNoHoist(small, large, 0, small.n, nil); got != want {
			t.Fatalf("sizes %v: no-hoist %d, hoisted %d", sizes, got, want)
		}
	}
}

// BenchmarkHashProbeHoist measures the last-segment-cache hoist in
// hashProbeRange. "equal" is the regime the hoist targets: equal-size
// bitmaps, where the smaller set's segment-ordered element array maps whole
// runs of consecutive probes onto one segment of the larger set. "skewed" is
// the adversarial regime: a much larger target bitmap scatters consecutive
// probes, so the cache almost never hits and only its compare is measured.
func BenchmarkHashProbeHoist(b *testing.B) {
	regimes := []struct {
		name           string
		nSmall, nLarge int
		overlap        float64
	}{
		{"equal", 100_000, 100_000, 0.5},
		{"skewed", 10_000, 1_000_000, 0.5},
	}
	for _, r := range regimes {
		sa, sb := benchPair(r.nLarge, r.overlap, DefaultConfig())
		small, large := sa, sb
		if r.nSmall < r.nLarge {
			// Rebuild the probing side at its own size, overlapping large.
			small = MustNewSet(append([]uint32(nil), large.reordered[:r.nSmall]...), DefaultConfig())
		}
		if small.n > large.n {
			small, large = large, small
		}
		b.Run(fmt.Sprintf("%s/hoisted", r.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += hashProbeRange(small, large, 0, small.n, nil, nil)
			}
		})
		b.Run(fmt.Sprintf("%s/nohoist", r.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += hashProbeRangeNoHoist(small, large, 0, small.n, nil)
			}
		})
	}
}
