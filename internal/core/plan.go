package core

import (
	"time"

	"fesia/internal/planner"
	"fesia/internal/stats"
)

// Adaptive-planner wiring. The dispatch seams (merge-vs-hash, the
// cross-representation probe sides, the k-way seed pick) consult a
// planner.Handle when the executor carries one, and fall back to the static
// size heuristics when it does not — with the planner off (the default) every
// seam costs exactly one nil check, like the stats layer. Handles follow the
// stats ownership model: one per executor for the sequential paths, one per
// parallel worker slot, each a single writer into its private sample shard.

// EnablePlanner installs m as the process-wide adaptive strategy planner.
// Call once at startup, before building executors; executors created
// afterwards (including the pooled defaults behind the package-level
// wrappers) attach automatically. Passing nil, or a model built with
// ModeOff, deactivates the planner for future executors but does not detach
// live ones — use (*Executor).DisablePlanner for that.
func EnablePlanner(m *planner.Model) { planner.Activate(m) }

// PlannerModel returns the process-wide planner model, or nil when the
// planner is off.
func PlannerModel() *planner.Model { return planner.Active() }

// EnablePlanner attaches the executor (and its existing parallel worker
// slots) to a planner model. Each slot gets its own single-writer handle, so
// the parallel paths decide and record without contention. A second call is
// a no-op; an executor consults at most one model for its whole life (until
// DisablePlanner).
func (e *Executor) EnablePlanner(m *planner.Model) {
	if m == nil || m.Mode() == planner.ModeOff || e.plan != nil {
		return
	}
	e.planModel = m
	e.plan = m.NewHandle()
	for i := range e.workers {
		e.workers[i].plan = m.NewHandle()
	}
}

// DisablePlanner detaches the executor from its planner model: every
// dispatch seam reverts to the static heuristics.
func (e *Executor) DisablePlanner() {
	e.plan = nil
	e.planModel = nil
	for i := range e.workers {
		e.workers[i].plan = nil
	}
}

// maybeAttachPlanner wires a fresh executor to the process-wide model when
// one is active — the auto-attachment path of NewExecutor and the pooled
// default executors, mirroring maybeAttachStats.
func (e *Executor) maybeAttachPlanner() {
	if e.plan == nil {
		if m := planner.Active(); m != nil {
			e.EnablePlanner(m)
		}
	}
}

// planArmCounters maps (decision kind, chosen arm) to its stats counter.
var planArmCounters = [planner.NumDecisions][2]stats.Counter{
	planner.DecSegSeg:     {stats.CtrPlanSegSegMerge, stats.CtrPlanSegSegHash},
	planner.DecSegDense:   {stats.CtrPlanSegDenseFromDense, stats.CtrPlanSegDenseFromSeg},
	planner.DecArrayDense: {stats.CtrPlanArrayDenseFromArray, stats.CtrPlanArrayDenseFromDense},
}

// notePlanDecision records one resolved planner decision into the stats
// shard: the per-arm decision counter, the exploration tally, and the
// static-disagreement tally (override = the planner picked the arm the
// static heuristic would not have).
func notePlanDecision(st *stats.Shard, d planner.Decision, ch planner.Choice, override bool) {
	if st == nil {
		return
	}
	st.Inc(planArmCounters[d][ch.Arm&1])
	if ch.Explored {
		st.Inc(stats.CtrPlanExplored)
	}
	if override {
		st.Inc(stats.CtrPlanOverrides)
	}
}

// planSegSeg resolves the seg×seg merge-vs-hash dispatch: through the
// planner when h is non-nil (arm 0 = merge, work = the larger set; arm 1 =
// hash, work = the smaller set), by the static SkewThreshold rule otherwise.
// The returned Choice is the planner's bookkeeping token — when it asks for
// measurement, time the chosen strategy and hand it back via planRecord.
func planSegSeg(h *planner.Handle, st *stats.Shard, a, b *Set) (planner.Choice, bool) {
	if h == nil {
		return planner.Choice{}, useHash(a, b)
	}
	small, large := a.n, b.n
	if small > large {
		small, large = large, small
	}
	ch := h.Decide(planner.DecSegSeg, large, small)
	hash := ch.Arm == 1
	notePlanDecision(st, planner.DecSegSeg, ch, hash != useHash(a, b))
	return ch, hash
}

// planStart returns the timing anchor for a measured choice; the zero time
// (and no clock read) otherwise.
func planStart(ch planner.Choice) time.Time {
	if ch.Measure() {
		return time.Now()
	}
	return time.Time{}
}

// planRecord feeds a measured choice's observed latency back into the
// handle; no-op for unmeasured choices.
func planRecord(h *planner.Handle, ch planner.Choice, start time.Time) {
	if ch.Measure() {
		h.Record(ch, time.Since(start))
	}
}
