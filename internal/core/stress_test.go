package core

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"
)

// TestStressSharedPoolChaos is the serving-core chaos test, designed to run
// under -race: several goroutines issue overlapping CountManyParallelCtx
// batches through executors sharing ONE private pool, while other goroutines
// randomly cancel their queries mid-flight and inject panicking tasks into
// the same pool. Invariants checked throughout:
//
//   - uncancelled queries return exactly the sequential CountMany answer;
//   - cancelled queries return ctx.Err(), never a wrong success;
//   - injected panics resurface only on their own Do caller, as *TaskPanic;
//   - the pool never shrinks: every worker survives every panic.
func TestStressSharedPoolChaos(t *testing.T) {
	q, cands := batchFixture(t, 91, 96)
	want := make([]int, len(cands))
	CountMany(q, cands, want)

	pool := NewPool(8)
	defer pool.Close()

	const (
		queryGoroutines = 6
		panicGoroutines = 2
		iterations      = 40
	)
	var wg sync.WaitGroup

	for g := 0; g < queryGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			e := NewExecutorWithPool(pool)
			out := make([]int, len(cands))
			for it := 0; it < iterations; it++ {
				workers := 1 + rng.Intn(4)
				if rng.Intn(2) == 0 {
					// Uncancelled: the answer must be exact.
					if err := e.CountManyParallelCtx(context.Background(), q, cands, out, workers); err != nil {
						t.Errorf("goroutine %d it %d: uncancelled batch failed: %v", g, it, err)
						return
					}
					if !slices.Equal(out, want) {
						t.Errorf("goroutine %d it %d: wrong counts under contention", g, it)
						return
					}
				} else {
					// Cancelled mid-flight: correct-or-cancelled, never wrong.
					ctx, cancel := context.WithCancel(context.Background())
					delay := time.Duration(rng.Intn(200)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
					err := e.CountManyParallelCtx(ctx, q, cands, out, workers)
					cancel()
					if err == nil {
						if !slices.Equal(out, want) {
							t.Errorf("goroutine %d it %d: batch claimed success with wrong counts", g, it)
							return
						}
					} else if !errors.Is(err, context.Canceled) {
						t.Errorf("goroutine %d it %d: err = %v, want Canceled", g, it, err)
						return
					}
				}
			}
		}(g)
	}

	for g := 0; g < panicGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				rec := doRecover(pool, 5, func(part int) {
					if part == it%5 {
						panic("chaos")
					}
				})
				tp, ok := rec.(*TaskPanic)
				if !ok || tp.Value != "chaos" {
					t.Errorf("panic goroutine %d it %d: got %v, want TaskPanic(chaos)", g, it, rec)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	if pool.Alive() != pool.Size() {
		t.Fatalf("pool shrank under chaos: %d of %d workers alive", pool.Alive(), pool.Size())
	}
	// The pool still does real work after the chaos.
	e := NewExecutorWithPool(pool)
	out := make([]int, len(cands))
	if err := e.CountManyParallelCtx(context.Background(), q, cands, out, 4); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(out, want) {
		t.Fatal("pool produces wrong results after chaos")
	}
}
