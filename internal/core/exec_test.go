package core

import (
	"math/rand"
	"slices"
	"testing"

	"fesia/internal/simd"
)

// execTestSets builds a deterministic trio of compatible sets, the middle one
// skewed small so the adaptive strategy exercises both branches.
func execTestSets(t testing.TB, w simd.Width) (sa, sb, sc *Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Width: w}
	sa = MustNewSet(randSet(rng, 4000, 1<<16), cfg)
	sb = MustNewSet(randSet(rng, 3000, 1<<16), cfg)
	sc = MustNewSet(randSet(rng, 500, 1<<16), cfg)
	return sa, sb, sc
}

// TestExecutorAllocs is the contract at the heart of this refactor: once an
// Executor has warmed up on a workload, the query path performs zero heap
// allocations.
func TestExecutorAllocs(t *testing.T) {
	sa, sb, sc := execTestSets(t, simd.WidthAVX)
	e := NewExecutor()
	dst := make([]uint32, 4000)
	ks := []*Set{sa, sb, sc}

	// Warm up every path so buffers reach their steady-state sizes.
	e.Count(sa, sb)
	e.CountHash(sc, sa)
	e.Intersect(dst, sa, sb)
	e.CountK(ks...)
	e.IntersectK(dst, ks...)
	e.Visit(sa, sb, func(uint32) {})
	e.VisitK(func(uint32) {}, ks...)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Count", func() { e.Count(sa, sb) }},
		{"CountMerge", func() { e.CountMerge(sa, sb) }},
		{"CountHash", func() { e.CountHash(sc, sa) }},
		{"Intersect", func() { e.Intersect(dst, sa, sb) }},
		{"CountK", func() { e.CountK(ks...) }},
		{"IntersectK", func() { e.IntersectK(dst, ks...) }},
		{"VisitMerge", func() { e.VisitMerge(sa, sb, func(uint32) {}) }},
		{"VisitHash", func() { e.VisitHash(sc, sa, func(uint32) {}) }},
		{"VisitK", func() { e.VisitK(func(uint32) {}, ks...) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(20, c.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op on a warm executor, want 0", c.name, avg)
		}
	}
}

// TestVisitorSliceParity checks that the streaming visitor paths emit exactly
// the elements (and order) of the materializing slice paths, across all three
// widths and all strategies.
func TestVisitorSliceParity(t *testing.T) {
	for _, w := range []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512} {
		sa, sb, sc := execTestSets(t, w)
		e := NewExecutor()
		dst := make([]uint32, 4000)

		check := func(name string, sliceN int, visit func(emit Visitor)) {
			t.Helper()
			var got []uint32
			visit(func(v uint32) { got = append(got, v) })
			want := dst[:sliceN]
			if !slices.Equal(got, want) {
				t.Errorf("w=%v %s: visitor emitted %d elements, slice path wrote %d (or order differs)",
					w, name, len(got), sliceN)
			}
		}

		check("merge", IntersectMerge(dst, sa, sb), func(emit Visitor) { e.VisitMerge(sa, sb, emit) })
		check("hash", IntersectHash(dst, sc, sa), func(emit Visitor) { e.VisitHash(sc, sa, emit) })
		check("adaptive", Intersect(dst, sc, sa), func(emit Visitor) { e.Visit(sc, sa, emit) })
		check("kway", e.IntersectK(dst, sa, sb, sc), func(emit Visitor) { e.VisitK(emit, sa, sb, sc) })
		check("kway1", e.IntersectK(dst, sa), func(emit Visitor) { e.VisitK(emit, sa) })
		check("kway2", e.IntersectK(dst, sa, sb), func(emit Visitor) { e.VisitK(emit, sa, sb) })
	}
}

// TestExecutorMatchesFreeFunctions pins the executor methods to the
// package-level reference implementations on randomized inputs.
func TestExecutorMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := NewExecutor()
	for trial := 0; trial < 30; trial++ {
		cfg := Config{Width: simd.WidthAVX}
		na, nb := rng.Intn(3000), rng.Intn(3000)
		sa := MustNewSet(randSet(rng, na, 1<<15), cfg)
		sb := MustNewSet(randSet(rng, nb, 1<<15), cfg)
		sc := MustNewSet(randSet(rng, rng.Intn(1000), 1<<15), cfg)

		if got, want := e.Count(sa, sb), Count(sa, sb); got != want {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, want)
		}
		if got, want := e.CountK(sa, sb, sc), CountK(sa, sb, sc); got != want {
			t.Fatalf("trial %d: CountK = %d, want %d", trial, got, want)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			if got, want := e.CountMergeParallel(sa, sb, workers), CountMerge(sa, sb); got != want {
				t.Fatalf("trial %d workers %d: CountMergeParallel = %d, want %d", trial, workers, got, want)
			}
			if got, want := e.CountHashParallel(sa, sb, workers), CountHash(sa, sb); got != want {
				t.Fatalf("trial %d workers %d: CountHashParallel = %d, want %d", trial, workers, got, want)
			}
			if got, want := e.CountKParallel(workers, sa, sb, sc), CountK(sa, sb, sc); got != want {
				t.Fatalf("trial %d workers %d: CountKParallel = %d, want %d", trial, workers, got, want)
			}
		}
	}
}

// TestIntersectMergeParallelPresized checks the pre-sized parallel
// materialization against the sequential path, including output order.
func TestIntersectMergeParallelPresized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := NewExecutor()
	for trial := 0; trial < 20; trial++ {
		cfg := Config{Width: simd.WidthAVX}
		sa := MustNewSet(randSet(rng, 2000+rng.Intn(2000), 1<<15), cfg)
		sb := MustNewSet(randSet(rng, 2000+rng.Intn(2000), 1<<15), cfg)
		want := make([]uint32, 4000)
		wn := IntersectMerge(want, sa, sb)
		got := make([]uint32, 4000)
		for _, workers := range []int{2, 3, 8} {
			gn := e.IntersectMergeParallel(got, sa, sb, workers)
			if !slices.Equal(got[:gn], want[:wn]) {
				t.Fatalf("trial %d workers %d: parallel output differs from sequential", trial, workers)
			}
		}
	}
}

// FuzzVisitParity fuzzes the visitor-vs-slice equivalence over arbitrary set
// contents, reusing the pair decoding of FuzzIntersect.
func FuzzVisitParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Add([]byte{0xff, 0x01, 0x80, 0x20, 0x33}, uint8(1))
	f.Add([]byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		ea, eb, cfg := decodeSets(data)
		sa, err := NewSet(ea, cfg)
		if err != nil {
			t.Skip()
		}
		sb, err := NewSet(eb, cfg)
		if err != nil {
			t.Skip()
		}
		e := NewExecutor()
		dst := make([]uint32, max(len(ea), len(eb))+1)
		var got []uint32
		var n int
		switch mode % 3 {
		case 0:
			n = IntersectMerge(dst, sa, sb)
			e.VisitMerge(sa, sb, func(v uint32) { got = append(got, v) })
		case 1:
			n = IntersectHash(dst, sa, sb)
			e.VisitHash(sa, sb, func(v uint32) { got = append(got, v) })
		case 2:
			n = e.IntersectK(dst, sa, sb)
			e.VisitK(func(v uint32) { got = append(got, v) }, sa, sb)
		}
		if !slices.Equal(got, dst[:n]) {
			t.Fatalf("mode %d: visitor path emitted %v, slice path wrote %v", mode%3, got, dst[:n])
		}
	})
}
