package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/simd"
)

// Serialization of a Set, so the offline construction phase (Section VII-A:
// "the data structure of our approach is built offline") can be paid once
// and the structure shipped to query servers. The format is a fixed-layout
// little-endian stream:
//
//	magic "FESIA1\x00\x00" (8 bytes)
//	config: width, segBits, stride (uint32 each), scale (float64), seed (uint64)
//	n (uint64), mBits (uint64)
//	bitmap words  (mBits/64 × uint64)
//	offsets       (nseg+1 × uint32)
//	reordered     (n × uint32)
//
// sizes are rederived from offsets; maxSeg is recomputed on load.

var setMagic = [8]byte{'F', 'E', 'S', 'I', 'A', '1', 0, 0}

// WriteTo serializes the set. It implements io.WriterTo.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(setMagic[:]); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint32(s.cfg.Width), uint32(s.cfg.SegBits), uint32(s.cfg.Stride),
		math.Float64bits(s.cfg.Scale), s.cfg.Seed,
		uint64(s.n), s.bm.Bits(),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	if err := write(s.bm.Words()); err != nil {
		return cw.n, err
	}
	if err := write(s.offsets); err != nil {
		return cw.n, err
	}
	if err := write(s.reordered); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// readChunkElems bounds how many array elements are decoded per read, so a
// header demanding billions of elements fails at the first short chunk
// instead of allocating first.
const readChunkElems = 1 << 16

func readU64s(r io.Reader, count int) ([]uint64, error) {
	out := make([]uint64, 0, min(count, readChunkElems))
	for count > 0 {
		c := min(count, readChunkElems)
		chunk := make([]uint64, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

func readU32s(r io.Reader, count int) ([]uint32, error) {
	out := make([]uint32, 0, min(count, readChunkElems))
	for count > 0 {
		c := min(count, readChunkElems)
		chunk := make([]uint32, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

// ReadSet deserializes a Set written by WriteTo, validating the header and
// structural invariants (a corrupted stream yields an error, not a panic).
func ReadSet(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != setMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic[:])
	}
	var width, segBits, stride uint32
	var scaleBits, seed, n64, mBits uint64
	for _, v := range []interface{}{&width, &segBits, &stride, &scaleBits, &seed, &n64, &mBits} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
	}
	cfg := Config{
		Width:   simd.Width(width),
		SegBits: int(segBits),
		Scale:   math.Float64frombits(scaleBits),
		Seed:    seed,
		Stride:  int(stride),
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, fmt.Errorf("core: invalid serialized config: %w", err)
	}
	const maxReasonable = 1 << 40
	if !hashutil.IsPow2(mBits) || mBits < 64 || mBits > maxReasonable {
		return nil, fmt.Errorf("core: invalid bitmap size %d", mBits)
	}
	if n64 > maxReasonable {
		return nil, fmt.Errorf("core: implausible set size %d", n64)
	}
	n := int(n64)
	nseg := int(mBits) / cfg.SegBits

	// Payload arrays are read in bounded chunks so a forged header cannot
	// trigger a huge allocation before the (short) stream runs out.
	words, err := readU64s(br, int(mBits)/64)
	if err != nil {
		return nil, fmt.Errorf("core: reading bitmap: %w", err)
	}
	offsets, err := readU32s(br, nseg+1)
	if err != nil {
		return nil, fmt.Errorf("core: reading offsets: %w", err)
	}
	reordered, err := readU32s(br, n)
	if err != nil {
		return nil, fmt.Errorf("core: reading elements: %w", err)
	}
	s := newShell(cfg, bitmap.New(mBits, cfg.SegBits), make([]uint32, nseg), offsets, reordered)
	copy(s.bm.Words(), words)

	// Validate the whole offset array before any slicing, then rederive
	// sizes/maxSeg segment by segment.
	if s.offsets[0] != 0 || s.offsets[nseg] != uint32(n) {
		return nil, fmt.Errorf("core: offset bounds corrupt (first=%d last=%d n=%d)",
			s.offsets[0], s.offsets[nseg], n)
	}
	for i := 0; i < nseg; i++ {
		if s.offsets[i] > s.offsets[i+1] || s.offsets[i+1] > uint32(n) {
			return nil, fmt.Errorf("core: offsets corrupt at segment %d", i)
		}
	}
	for i := 0; i < nseg; i++ {
		size := s.offsets[i+1] - s.offsets[i]
		s.sizes[i] = size
		if int(size) > s.maxSeg {
			s.maxSeg = int(size)
		}
		lst := s.reordered[s.offsets[i]:s.offsets[i+1]]
		for j, v := range lst {
			if j > 0 && lst[j-1] >= v {
				return nil, fmt.Errorf("core: segment %d not strictly ascending", i)
			}
			pos := s.hasher.Pos(v, mBits)
			if s.bm.SegmentOf(pos) != i {
				return nil, fmt.Errorf("core: element %d stored in segment %d, hashes to %d",
					v, i, s.bm.SegmentOf(pos))
			}
			if !s.bm.Test(pos) {
				return nil, fmt.Errorf("core: bitmap bit missing for element %d", v)
			}
		}
	}
	return s, nil
}
