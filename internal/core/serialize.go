package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"slices"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Serialization of a Set, so the offline construction phase (Section VII-A:
// "the data structure of our approach is built offline") can be paid once
// and the structure shipped to query servers. Snapshots travel through
// object stores and disks the query servers do not control, so the stream is
// treated as untrusted: every section carries a CRC32C checksum and the
// reader re-validates every structural invariant, turning bit rot into a
// load-time error instead of silent result corruption.
//
// v3 ("FESIA3") records the representation per set — the first format aware
// of the hybrid layouts — as a fixed little-endian stream:
//
//	magic "FESIA3\x00\x00" (8 bytes)
//	config: width, segBits, stride (uint32 each), scale (float64), seed (uint64)
//	rep (uint32), base (uint32)
//	n (uint64), mBits (uint64)
//	header CRC32C (uint32, covering magic + everything above)
//	payload sections, each followed by its CRC32C (uint32):
//	  RepSegmented: bitmap words (mBits/64 × uint64), offsets (nseg+1 ×
//	                uint32), reordered (n × uint32); base is 0
//	  RepArray:     sorted elements (n × uint32); mBits and base are 0
//	  RepDense:     dense words (mBits/64 × uint64) covering value range
//	                [base, base+mBits)
//
// sizes are rederived from offsets; maxSeg is recomputed on load. The legacy
// v2 format ("FESIA2") is v3 minus the rep/base fields (segmented only), and
// v1 ("FESIA1") is v2 minus all checksums; ReadSet accepts all three, WriteTo
// emits v3.

var (
	setMagicV1 = [8]byte{'F', 'E', 'S', 'I', 'A', '1', 0, 0}
	setMagicV2 = [8]byte{'F', 'E', 'S', 'I', 'A', '2', 0, 0}
	setMagicV3 = [8]byte{'F', 'E', 'S', 'I', 'A', '3', 0, 0}
)

// castagnoli is the CRC32C polynomial table — the checksum of iSCSI, ext4
// and most storage formats, with hardware support on modern CPUs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter counts bytes and accumulates a running CRC32C over everything
// written through it. EmitCRC appends the current section digest (bypassing
// the accumulator) and resets it for the next section.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// emitCRC writes the running section checksum and resets it.
func (c *crcWriter) emitCRC() error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], c.crc)
	n, err := c.w.Write(b[:])
	c.n += int64(n)
	c.crc = 0
	return err
}

// crcReader accumulates a running CRC32C over everything read through it.
// checkCRC reads a stored section checksum (bypassing the accumulator),
// compares it against the running digest, and resets for the next section.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

func (c *crcReader) checkCRC(section string) error {
	computed := c.crc
	var b [4]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return fmt.Errorf("core: reading %s checksum: %w", section, noEOF(err))
	}
	stored := binary.LittleEndian.Uint32(b[:])
	c.crc = 0
	if stored != computed {
		return fmt.Errorf("core: %s checksum mismatch (stored %08x, computed %08x)",
			section, stored, computed)
	}
	return nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: mid-stream EOF always
// means truncation here, never a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteTo serializes the set in the v3 checksummed format. It implements
// io.WriterTo.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	n, err := s.writeTo(w)
	statsOutcome(err, stats.CtrSnapshotWrites, stats.CtrSnapshotWriteErrors)
	return n, err
}

func (s *Set) writeTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if err := writeSetBody(cw, s); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeSetBody writes one set's v3 stream: representation-tagged header
// followed by the representation's payload sections, each checksummed.
func writeSetBody(cw *crcWriter, s *Set) error {
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(setMagicV3[:]); err != nil {
		return err
	}
	var base uint32
	var mBits uint64
	switch s.rep {
	case RepSegmented:
		mBits = s.bm.Bits()
	case RepDense:
		base = s.base
		mBits = uint64(len(s.dense)) * 64
	}
	hdr := []interface{}{
		uint32(s.cfg.Width), uint32(s.cfg.SegBits), uint32(s.cfg.Stride),
		math.Float64bits(s.cfg.Scale), s.cfg.Seed,
		uint32(s.rep), base,
		uint64(s.n), mBits,
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return err
		}
	}
	if err := cw.emitCRC(); err != nil {
		return err
	}
	var sections []interface{}
	switch s.rep {
	case RepSegmented:
		sections = []interface{}{s.bm.Words(), s.offsets, s.reordered}
	case RepArray:
		sections = []interface{}{s.reordered}
	case RepDense:
		sections = []interface{}{s.dense}
	}
	for _, section := range sections {
		if err := write(section); err != nil {
			return err
		}
		if err := cw.emitCRC(); err != nil {
			return err
		}
	}
	return nil
}

// writeSetBodyLegacy writes one segmented set's stream in the pre-hybrid
// layout — v2 with section checksums when withCRC is set, v1 otherwise. Kept
// so tests can produce the legacy streams the reader must keep accepting.
func writeSetBodyLegacy(cw *crcWriter, s *Set, withCRC bool) error {
	if s.rep != RepSegmented {
		return fmt.Errorf("core: legacy formats carry only segmented sets (got %v)", s.rep)
	}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	magic := setMagicV1
	if withCRC {
		magic = setMagicV2
	}
	if _, err := cw.Write(magic[:]); err != nil {
		return err
	}
	hdr := []interface{}{
		uint32(s.cfg.Width), uint32(s.cfg.SegBits), uint32(s.cfg.Stride),
		math.Float64bits(s.cfg.Scale), s.cfg.Seed,
		uint64(s.n), s.bm.Bits(),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return err
		}
	}
	if withCRC {
		if err := cw.emitCRC(); err != nil {
			return err
		}
	}
	for _, section := range []interface{}{s.bm.Words(), s.offsets, s.reordered} {
		if err := write(section); err != nil {
			return err
		}
		if withCRC {
			if err := cw.emitCRC(); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSetV1 writes the legacy unchecksummed v1 stream, for the
// backward-compatibility tests.
func writeSetV1(w io.Writer, s *Set) (int64, error) {
	return writeSetLegacy(w, s, false)
}

// writeSetV2 writes the legacy checksummed v2 stream, for the
// backward-compatibility tests.
func writeSetV2(w io.Writer, s *Set) (int64, error) {
	return writeSetLegacy(w, s, true)
}

func writeSetLegacy(w io.Writer, s *Set, withCRC bool) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if err := writeSetBodyLegacy(cw, s, withCRC); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// readChunkElems bounds how many array elements are decoded per read, so a
// header demanding billions of elements fails at the first short chunk
// instead of allocating first.
const readChunkElems = 1 << 16

func readU64s(r io.Reader, count int) ([]uint64, error) {
	out := make([]uint64, 0, min(count, readChunkElems))
	for count > 0 {
		c := min(count, readChunkElems)
		chunk := make([]uint64, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

func readU32s(r io.Reader, count int) ([]uint32, error) {
	out := make([]uint32, 0, min(count, readChunkElems))
	for count > 0 {
		c := min(count, readChunkElems)
		chunk := make([]uint32, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

// readU32sInto fills dst from the stream in bounded chunks (the arena-backed
// corpus reader's variant of readU32s).
func readU32sInto(r io.Reader, dst []uint32) error {
	for len(dst) > 0 {
		c := min(len(dst), readChunkElems)
		if err := binary.Read(r, binary.LittleEndian, dst[:c]); err != nil {
			return err
		}
		dst = dst[c:]
	}
	return nil
}

// readU64sInto fills dst from the stream in bounded chunks.
func readU64sInto(r io.Reader, dst []uint64) error {
	for len(dst) > 0 {
		c := min(len(dst), readChunkElems)
		if err := binary.Read(r, binary.LittleEndian, dst[:c]); err != nil {
			return err
		}
		dst = dst[c:]
	}
	return nil
}

// maxReasonable bounds header-declared sizes: anything above it is treated
// as corruption rather than attempted.
const maxReasonable = 1 << 40

// setHeader is the decoded, validated post-magic header of one set stream.
// rep and base are always RepSegmented/0 for the legacy v1/v2 formats.
type setHeader struct {
	cfg   Config
	rep   Rep
	base  uint32
	n     int
	mBits uint64
}

// readSetHeader decodes and sanity-checks the post-magic header fields. v3
// streams carry two extra fields (rep, base) between the config and the
// sizes; the legacy formats are segmented-only.
func readSetHeader(r io.Reader, v3 bool) (h setHeader, err error) {
	var width, segBits, stride uint32
	var scaleBits, seed, n64, m64 uint64
	var rep32, base uint32
	fields := []interface{}{&width, &segBits, &stride, &scaleBits, &seed}
	if v3 {
		fields = append(fields, &rep32, &base)
	}
	fields = append(fields, &n64, &m64)
	for _, v := range fields {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return h, fmt.Errorf("core: reading header: %w", noEOF(err))
		}
	}
	cfg := Config{
		Width:   simd.Width(width),
		SegBits: int(segBits),
		Scale:   math.Float64frombits(scaleBits),
		Seed:    seed,
		Stride:  int(stride),
	}
	cfg, err = cfg.normalize()
	if err != nil {
		return h, fmt.Errorf("core: invalid serialized config: %w", err)
	}
	if n64 > maxReasonable {
		return h, fmt.Errorf("core: implausible set size %d", n64)
	}
	h = setHeader{cfg: cfg, rep: Rep(rep32), base: base, n: int(n64), mBits: m64}
	if rep32 >= uint32(numReps) {
		return h, fmt.Errorf("core: invalid representation %d", rep32)
	}
	switch h.rep {
	case RepSegmented:
		if !hashutil.IsPow2(m64) || m64 < 64 || m64 > maxReasonable {
			return h, fmt.Errorf("core: invalid bitmap size %d", m64)
		}
		if base != 0 {
			return h, fmt.Errorf("core: segmented set with nonzero base %d", base)
		}
	case RepArray:
		if m64 != 0 || base != 0 {
			return h, fmt.Errorf("core: array set with bitmap fields (mBits=%d base=%d)", m64, base)
		}
	case RepDense:
		if m64 == 0 || m64%64 != 0 || m64 > 1<<32 {
			return h, fmt.Errorf("core: invalid dense span %d bits", m64)
		}
		if base%64 != 0 || uint64(base)+m64 > 1<<32 {
			return h, fmt.Errorf("core: dense cover [%d, %d+%d) exceeds the u32 domain or is misaligned", base, base, m64)
		}
		if n64 == 0 || n64 > m64 {
			return h, fmt.Errorf("core: dense set size %d inconsistent with %d-bit span", n64, m64)
		}
	}
	return h, nil
}

// ReadSet deserializes a Set written by WriteTo, validating checksums
// (v2/v3), the header, and every structural invariant — a corrupted or
// truncated stream yields an error, never a panic or a silently wrong set.
// The v3 representation-tagged format, the legacy v2 checksummed format and
// the legacy v1 format are all accepted.
func ReadSet(r io.Reader) (*Set, error) {
	s, err := readSet(r)
	statsOutcome(err, stats.CtrSnapshotReads, stats.CtrSnapshotReadErrors)
	return s, err
}

func readSet(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", noEOF(err))
	}
	var src io.Reader = br
	var cr *crcReader
	v3 := false
	switch magic {
	case setMagicV1:
		// Legacy stream: no checksums, structural validation only.
	case setMagicV2:
		cr = &crcReader{r: br, crc: crc32.Update(0, castagnoli, magic[:])}
		src = cr
	case setMagicV3:
		cr = &crcReader{r: br, crc: crc32.Update(0, castagnoli, magic[:])}
		src = cr
		v3 = true
	default:
		return nil, fmt.Errorf("core: bad magic %q", magic[:])
	}
	h, err := readSetHeader(src, v3)
	if err != nil {
		return nil, err
	}
	if cr != nil {
		if err := cr.checkCRC("header"); err != nil {
			return nil, err
		}
	}
	switch h.rep {
	case RepArray:
		elems, err := readU32s(src, h.n)
		if err != nil {
			return nil, fmt.Errorf("core: reading elements: %w", noEOF(err))
		}
		if cr != nil {
			if err := cr.checkCRC("elements"); err != nil {
				return nil, err
			}
		}
		s := newArrayShell(h.cfg, elems)
		if err := validateArrayShell(s); err != nil {
			return nil, err
		}
		return s, nil
	case RepDense:
		words, err := readU64s(src, int(h.mBits)/64)
		if err != nil {
			return nil, fmt.Errorf("core: reading dense words: %w", noEOF(err))
		}
		if cr != nil {
			if err := cr.checkCRC("dense words"); err != nil {
				return nil, err
			}
		}
		s := newDenseShell(h.cfg, words, h.base, h.n)
		if err := validateDenseShell(s); err != nil {
			return nil, err
		}
		return s, nil
	}
	nseg := int(h.mBits) / h.cfg.SegBits

	// Payload arrays are read in bounded chunks so a forged header cannot
	// trigger a huge allocation before the (short) stream runs out.
	words, err := readU64s(src, int(h.mBits)/64)
	if err != nil {
		return nil, fmt.Errorf("core: reading bitmap: %w", noEOF(err))
	}
	if cr != nil {
		if err := cr.checkCRC("bitmap"); err != nil {
			return nil, err
		}
	}
	offsets, err := readU32s(src, nseg+1)
	if err != nil {
		return nil, fmt.Errorf("core: reading offsets: %w", noEOF(err))
	}
	if cr != nil {
		if err := cr.checkCRC("offsets"); err != nil {
			return nil, err
		}
	}
	reordered, err := readU32s(src, h.n)
	if err != nil {
		return nil, fmt.Errorf("core: reading elements: %w", noEOF(err))
	}
	if cr != nil {
		if err := cr.checkCRC("elements"); err != nil {
			return nil, err
		}
	}
	s := newShell(h.cfg, bitmap.New(h.mBits, h.cfg.SegBits), make([]uint32, nseg), offsets, reordered)
	copy(s.bm.Words(), words)
	if err := validateShell(s); err != nil {
		return nil, err
	}
	return s, nil
}

// validateShell checks every structural invariant of a deserialized shell
// (offsets monotone and bounded, segments sorted, every element's hash bit
// set in its own segment, and — bit for bit — the bitmap derivable from the
// elements), filling in sizes and maxSeg as it walks. It is shared by
// ReadSet and ReadCorpus.
func validateShell(s *Set) error {
	n := s.n
	nseg := s.bm.NumSegments()
	mBits := s.bm.Bits()

	// Validate the whole offset array before any slicing, then rederive
	// sizes/maxSeg segment by segment.
	if s.offsets[0] != 0 || s.offsets[nseg] != uint32(n) {
		return fmt.Errorf("core: offset bounds corrupt (first=%d last=%d n=%d)",
			s.offsets[0], s.offsets[nseg], n)
	}
	for i := 0; i < nseg; i++ {
		if s.offsets[i] > s.offsets[i+1] || s.offsets[i+1] > uint32(n) {
			return fmt.Errorf("core: offsets corrupt at segment %d", i)
		}
	}
	var posScratch []uint64
	for i := 0; i < nseg; i++ {
		size := s.offsets[i+1] - s.offsets[i]
		s.sizes[i] = size
		if int(size) > s.maxSeg {
			s.maxSeg = int(size)
		}
		lst := s.reordered[s.offsets[i]:s.offsets[i+1]]
		posScratch = posScratch[:0]
		for j, v := range lst {
			if j > 0 && lst[j-1] >= v {
				return fmt.Errorf("core: segment %d not strictly ascending", i)
			}
			pos := s.hasher.Pos(v, mBits)
			if s.bm.SegmentOf(pos) != i {
				return fmt.Errorf("core: element %d stored in segment %d, hashes to %d",
					v, i, s.bm.SegmentOf(pos))
			}
			if !s.bm.Test(pos) {
				return fmt.Errorf("core: bitmap bit missing for element %d", v)
			}
			posScratch = append(posScratch, pos)
		}
		// The reverse direction: every set bit of the segment must be backed
		// by at least one element hashing onto it. Element→bit alone lets a
		// flipped payload byte smuggle in stray set bits; comparing the
		// segment's popcount against its distinct element hash positions
		// rejects them.
		slices.Sort(posScratch)
		distinct := 0
		for j, p := range posScratch {
			if j == 0 || p != posScratch[j-1] {
				distinct++
			}
		}
		if pop := segmentPopcount(s.bm, i); pop != distinct {
			return fmt.Errorf("core: segment %d has %d set bits but %d element hash positions (stray or missing bits)",
				i, pop, distinct)
		}
	}
	return nil
}

// validateArrayShell checks the single structural invariant of a
// deserialized array set: the elements are strictly ascending (which also
// rules out duplicates).
func validateArrayShell(s *Set) error {
	for i := 1; i < len(s.reordered); i++ {
		if s.reordered[i-1] >= s.reordered[i] {
			return fmt.Errorf("core: array elements not strictly ascending at index %d", i)
		}
	}
	return nil
}

// validateDenseShell checks the structural invariants of a deserialized
// dense set: the word count matches the header's claimed element count, and
// the cover is canonical — the first and last words are non-empty, so every
// logically-equal set has exactly one dense encoding (denseLayout's minimal
// cover). The base/span domain checks already ran in readSetHeader.
func validateDenseShell(s *Set) error {
	total := 0
	for _, w := range s.dense {
		total += bits.OnesCount64(w)
	}
	if total != s.n {
		return fmt.Errorf("core: dense popcount %d does not match header n=%d", total, s.n)
	}
	if s.dense[0] == 0 || s.dense[len(s.dense)-1] == 0 {
		return fmt.Errorf("core: dense cover not minimal (empty boundary word)")
	}
	return nil
}

// segmentPopcount counts the set bits of one segment. Segments never
// straddle words (segBits divides 64).
func segmentPopcount(bm *bitmap.Bitmap, seg int) int {
	segBits := bm.SegBits()
	bit := seg * segBits
	w := bm.Words()[bit/64]
	mask := uint64(1)<<uint(segBits) - 1
	return bits.OnesCount64(w >> uint(bit%64) & mask)
}
