package core

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"testing"

	"fesia/internal/stats"
	"fesia/internal/testutil"
)

// allReps are the three physical representations, in dispatch-matrix order.
var allReps = []Rep{RepSegmented, RepArray, RepDense}

// buildRep builds a set from elems with the given forced representation.
func buildRep(t testing.TB, elems []uint32, r Rep) *Set {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Rep = r
	s, err := NewSet(elems, cfg)
	if err != nil {
		t.Fatalf("NewSet(rep=%v): %v", r, err)
	}
	if len(sortDedup(elems)) > 0 && s.Rep() != r {
		t.Fatalf("forced rep %v, built %v", r, s.Rep())
	}
	return s
}

func TestChooseRep(t *testing.T) {
	big := make([]uint32, 4000)
	for i := range big {
		big[i] = uint32(i) * 977 // span 3.9M bits for 4000 elems: sparse
	}
	packed := make([]uint32, 4000)
	for i := range packed {
		packed[i] = 1000 + uint32(i)*2 // 2 bits per element: dense
	}
	cases := []struct {
		name  string
		elems []uint32
		force Rep
		want  Rep
	}{
		{"empty-auto", nil, RepAuto, RepArray},
		{"empty-forced-seg", nil, RepSegmented, RepSegmented},
		{"empty-forced-dense", nil, RepDense, RepArray},
		{"empty-forced-array", nil, RepArray, RepArray},
		{"tiny-auto", []uint32{5, 2, 9}, RepAuto, RepArray},
		{"boundary-auto", make([]uint32, ArrayMaxLen), RepAuto, RepArray},
		{"sparse-auto", big, RepAuto, RepSegmented},
		{"packed-auto", packed, RepAuto, RepDense},
		{"packed-forced-seg", packed, RepSegmented, RepSegmented},
		{"sparse-forced-dense", big, RepDense, RepDense},
		{"sparse-forced-array", big, RepArray, RepArray},
		{"default-zero-is-segmented", big, RepSegmented, RepSegmented},
	}
	for _, c := range cases {
		if c.name == "boundary-auto" {
			for i := range c.elems {
				c.elems[i] = uint32(i) * 1000
			}
		}
		got := chooseRep(sortDedup(c.elems), c.force)
		if got != c.want {
			t.Errorf("%s: chooseRep = %v, want %v", c.name, got, c.want)
		}
	}
}

// hybridShapes yields element-list pairs covering the interesting overlap
// geometries: disjoint spans, nested spans, partial overlap, heavy skew,
// and empties.
func hybridShapes(rng *rand.Rand) [][2][]uint32 {
	return [][2][]uint32{
		{randSet(rng, 3000, 1<<16), randSet(rng, 2500, 1<<16)},
		{randSet(rng, 5000, 1<<20), randSet(rng, 120, 1<<20)}, // skewed
		{randSet(rng, 400, 1<<10), randSet(rng, 400, 1<<10)},  // dense-ish overlap
		{randSet(rng, 50, 200), randSet(rng, 1000, 1<<18)},    // tiny vs wide
		{randSet(rng, 300, 1<<30), randSet(rng, 300, 1<<12)},  // disjoint-ish spans
		{nil, randSet(rng, 100, 1<<12)},                       // empty side
		{randSet(rng, 1, 10), randSet(rng, 2000, 1<<14)},      // singleton
	}
}

// TestHybridPairParity drives every (Rep × Rep) pair through every two-set
// entry point — free functions, Executor methods, parallel and context
// variants — and requires exact agreement with the scalar reference.
// runBothBackends covers the asm and pure-Go kernel paths in one run.
func TestHybridPairParity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	e := NewExecutor()
	for si, shape := range hybridShapes(rng) {
		ref := refIntersect(shape[0], shape[1])
		for _, ra := range allReps {
			for _, rb := range allReps {
				a := buildRep(t, shape[0], ra)
				b := buildRep(t, shape[1], rb)
				want := len(ref)

				check := func(name string, got int) {
					t.Helper()
					if got != want {
						t.Fatalf("shape %d %v×%v %s = %d, want %d", si, ra, rb, name, got, want)
					}
				}
				cAsm, cGo := runBothBackends(t, func() any { return e.Count(a, b) })
				check("Count(asm)", cAsm.(int))
				check("Count(go)", cGo.(int))
				check("Count(rev)", e.Count(b, a))
				check("CountMerge", e.CountMerge(a, b))
				check("CountHash", e.CountHash(a, b))
				check("free CountMerge", CountMerge(a, b))
				check("free CountHash", CountHash(a, b))
				check("CountMergeParallel", e.CountMergeParallel(a, b, 4))
				check("CountHashParallel", e.CountHashParallel(a, b, 4))
				check("CountMergeBreakdown", CountMergeBreakdown(a, b).Count)
				check("CountHashBreakdown", CountHashBreakdown(a, b).Count)

				dst := make([]uint32, want+8)
				n := e.Intersect(dst, a, b)
				check("Intersect", n)
				got := append([]uint32(nil), dst[:n]...)
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("shape %d %v×%v Intersect element %d = %d, want %d",
							si, ra, rb, i, got[i], ref[i])
					}
				}
				check("free IntersectMerge", IntersectMerge(dst, a, b))
				check("free IntersectHash", IntersectHash(dst, a, b))
				check("IntersectMergeParallel", e.IntersectMergeParallel(dst, a, b, 4))

				visited := 0
				e.Visit(a, b, func(uint32) { visited++ })
				check("Visit", visited)
				visited = 0
				e.VisitMerge(a, b, func(uint32) { visited++ })
				check("VisitMerge", visited)
				visited = 0
				e.VisitHash(a, b, func(uint32) { visited++ })
				check("VisitHash", visited)

				nc, err := e.CountCtx(context.Background(), a, b)
				if err != nil {
					t.Fatalf("shape %d %v×%v CountCtx: %v", si, ra, rb, err)
				}
				check("CountCtx", nc)
				nc, err = e.IntersectIntoCtx(context.Background(), dst, a, b)
				if err != nil {
					t.Fatalf("shape %d %v×%v IntersectIntoCtx: %v", si, ra, rb, err)
				}
				check("IntersectIntoCtx", nc)
			}
		}
	}
}

// TestHybridKWayParity checks k-way intersection over mixed-representation
// inputs against the reference.
func TestHybridKWayParity(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	e := NewExecutor()
	lists := [][]uint32{
		randSet(rng, 4000, 1<<14),
		randSet(rng, 3000, 1<<14),
		randSet(rng, 2000, 1<<14),
		randSet(rng, 150, 1<<14),
	}
	inter := func(ls [][]uint32) []uint32 {
		cur := sortDedup(ls[0])
		for _, l := range ls[1:] {
			cur = refIntersect(cur, l)
		}
		return cur
	}
	for _, reps := range [][]Rep{
		{RepArray, RepSegmented, RepDense, RepArray},
		{RepDense, RepDense, RepDense, RepDense},
		{RepSegmented, RepArray, RepSegmented, RepDense},
		{RepArray, RepArray, RepArray, RepArray},
	} {
		sets := make([]*Set, len(lists))
		for i := range lists {
			sets[i] = buildRep(t, lists[i], reps[i])
		}
		for k := 3; k <= len(sets); k++ {
			want := inter(lists[:k])
			got, gotGo := runBothBackends(t, func() any { return e.CountK(sets[:k]...) })
			if got.(int) != len(want) || gotGo.(int) != len(want) {
				t.Fatalf("reps %v CountK(k=%d) = %v/%v, want %d", reps, k, got, gotGo, len(want))
			}
			if n := CountKParallel(4, sets[:k]...); n != len(want) {
				t.Fatalf("reps %v CountKParallel(k=%d) = %d, want %d", reps, k, n, len(want))
			}
			dst := make([]uint32, len(want)+8)
			n := e.IntersectK(dst, sets[:k]...)
			if n != len(want) {
				t.Fatalf("reps %v IntersectK(k=%d) = %d, want %d", reps, k, n, len(want))
			}
			vals := append([]uint32(nil), dst[:n]...)
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for i := range want {
				if vals[i] != want[i] {
					t.Fatalf("reps %v IntersectK(k=%d) element %d = %d, want %d",
						reps, k, i, vals[i], want[i])
				}
			}
			visited := 0
			e.VisitK(func(uint32) { visited++ }, sets[:k]...)
			if visited != len(want) {
				t.Fatalf("reps %v VisitK(k=%d) visited %d, want %d", reps, k, visited, len(want))
			}
			nc, err := e.CountKCtx(context.Background(), sets[:k]...)
			if err != nil || nc != len(want) {
				t.Fatalf("reps %v CountKCtx(k=%d) = %d, %v, want %d", reps, k, nc, err, len(want))
			}
		}
	}
}

// TestHybridBatchParity checks the batch engine against per-pair counts when
// the query and candidates mix representations.
func TestHybridBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	e := NewExecutor()
	qElems := randSet(rng, 3000, 1<<15)
	candElems := [][]uint32{
		randSet(rng, 2000, 1<<15),
		randSet(rng, 100, 1<<15),
		randSet(rng, 800, 1<<12),
		nil,
		randSet(rng, 5000, 1<<15),
	}
	candReps := []Rep{RepDense, RepArray, RepSegmented, RepArray, RepDense}
	for _, qRep := range allReps {
		q := buildRep(t, qElems, qRep)
		cands := make([]*Set, len(candElems))
		want := make([]int, len(candElems))
		for i := range candElems {
			cands[i] = buildRep(t, candElems[i], candReps[i])
			want[i] = len(refIntersect(qElems, candElems[i]))
		}
		out := make([]int, len(cands))
		e.CountMany(q, cands, out)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("qRep %v CountMany[%d] = %d, want %d", qRep, i, out[i], want[i])
			}
		}
		e.CountManyParallel(q, cands, out, 4)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("qRep %v CountManyParallel[%d] = %d, want %d", qRep, i, out[i], want[i])
			}
		}
		if err := e.CountManyCtx(context.Background(), q, cands, out); err != nil {
			t.Fatalf("CountManyCtx: %v", err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("qRep %v CountManyCtx[%d] = %d, want %d", qRep, i, out[i], want[i])
			}
		}
		total := 0
		for _, w := range want {
			total += w
		}
		dst := make([]uint32, total+8)
		counts := make([]int, len(cands))
		if n := e.IntersectManyInto(dst, counts, q, cands); n != total {
			t.Fatalf("qRep %v IntersectManyInto = %d, want %d", qRep, n, total)
		}
		for i := range want {
			if counts[i] != want[i] {
				t.Fatalf("qRep %v IntersectManyInto counts[%d] = %d, want %d", qRep, i, counts[i], want[i])
			}
		}
		perCand := make([]int, len(cands))
		e.VisitMany(q, cands, func(c int, _ uint32) { perCand[c]++ })
		for i := range want {
			if perCand[i] != want[i] {
				t.Fatalf("qRep %v VisitMany[%d] visited %d, want %d", qRep, i, perCand[i], want[i])
			}
		}
	}
}

// TestHybridCtxCancellation: cross-representation context paths must honor
// an already-cancelled context.
func TestHybridCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	e := NewExecutor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, ra := range allReps {
		for _, rb := range allReps {
			a := buildRep(t, randSet(rng, 5000, 1<<18), ra)
			b := buildRep(t, randSet(rng, 4000, 1<<18), rb)
			if _, err := e.CountCtx(ctx, a, b); err == nil {
				t.Errorf("%v×%v CountCtx ignored cancelled context", ra, rb)
			}
			dst := make([]uint32, 5000)
			if _, err := e.IntersectIntoCtx(ctx, dst, a, b); err == nil {
				t.Errorf("%v×%v IntersectIntoCtx ignored cancelled context", ra, rb)
			}
		}
	}
	sets := []*Set{
		buildRep(t, randSet(rng, 5000, 1<<16), RepDense),
		buildRep(t, randSet(rng, 5000, 1<<16), RepSegmented),
		buildRep(t, randSet(rng, 5000, 1<<16), RepArray),
	}
	if _, err := e.CountKCtx(ctx, sets...); err == nil {
		t.Error("mixed-rep CountKCtx ignored cancelled context")
	}
}

// TestHybridZeroAllocWarm: every cross-representation query path must be
// allocation-free once the executor is warm — the same contract the
// segmented paths already carry.
func TestHybridZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	e := NewExecutor()
	pairs := [][2]*Set{
		{buildRep(t, randSet(rng, 2000, 1<<16), RepArray), buildRep(t, randSet(rng, 3000, 1<<16), RepSegmented)},
		{buildRep(t, randSet(rng, 2000, 1<<13), RepDense), buildRep(t, randSet(rng, 3000, 1<<13), RepDense)},
		{buildRep(t, randSet(rng, 2000, 1<<14), RepArray), buildRep(t, randSet(rng, 3000, 1<<14), RepDense)},
		{buildRep(t, randSet(rng, 2000, 1<<15), RepSegmented), buildRep(t, randSet(rng, 3000, 1<<15), RepDense)},
		{buildRep(t, randSet(rng, 200, 1<<16), RepArray), buildRep(t, randSet(rng, 150, 1<<16), RepArray)},
	}
	dst := make([]uint32, 4000)
	for i, p := range pairs {
		a, b := p[0], p[1]
		e.Count(a, b) // warm scratch
		e.Intersect(dst, a, b)
		if got := testing.AllocsPerRun(20, func() { e.Count(a, b) }); got != 0 {
			t.Errorf("pair %d (%v×%v): Count allocates %.1f/op warm", i, a.Rep(), b.Rep(), got)
		}
		if got := testing.AllocsPerRun(20, func() { e.Intersect(dst, a, b) }); got != 0 {
			t.Errorf("pair %d (%v×%v): Intersect allocates %.1f/op warm", i, a.Rep(), b.Rep(), got)
		}
	}
	// Batch path with mixed candidates.
	q := buildRep(t, randSet(rng, 3000, 1<<15), RepSegmented)
	cands := []*Set{pairs[0][0], pairs[1][0], pairs[3][1], q}
	out := make([]int, len(cands))
	e.CountMany(q, cands, out)
	if got := testing.AllocsPerRun(20, func() { e.CountMany(q, cands, out) }); got != 0 {
		t.Errorf("CountMany mixed allocates %.1f/op warm", got)
	}
	// Mixed k-way.
	sets := []*Set{q, pairs[0][0], pairs[1][0]}
	e.CountK(sets...)
	if got := testing.AllocsPerRun(20, func() { e.CountK(sets...) }); got != 0 {
		t.Errorf("CountK mixed allocates %.1f/op warm", got)
	}
}

// TestHybridStatsCounters: cross-representation queries must record the
// cross query counter, the per-pair dispatch counter, and build counters
// must reflect the chosen representations.
func TestHybridStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	k := stats.New()
	EnableStats(k)
	defer EnableStats(nil)
	e := NewExecutor()
	e.EnableStats(k)

	arr := buildRep(t, randSet(rng, 1000, 1<<16), RepArray)
	den := buildRep(t, randSet(rng, 1000, 1<<12), RepDense)
	seg := buildRep(t, randSet(rng, 1000, 1<<16), RepSegmented)

	e.Count(arr, seg)
	e.Count(den, den)
	e.Count(arr, den)
	e.Count(seg, den)
	e.Count(arr, arr)

	snap := e.Stats()
	if got := snap.Counter(stats.CtrQueriesCross); got != 5 {
		t.Errorf("QueriesCross = %d, want 5", got)
	}
	for _, c := range []struct {
		ctr  stats.Counter
		name string
	}{
		{stats.CtrDispSegArray, "seg×array"},
		{stats.CtrDispDenseDense, "dense×dense"},
		{stats.CtrDispArrayDense, "array×dense"},
		{stats.CtrDispSegDense, "seg×dense"},
		{stats.CtrDispArrayArray, "array×array"},
	} {
		if got := snap.Counter(c.ctr); got != 1 {
			t.Errorf("dispatch counter %s = %d, want 1", c.name, got)
		}
	}
	if got := snap.Latency(stats.LatCross).Count; got != 5 {
		t.Errorf("LatCross count = %d, want 5", got)
	}
	gk := k.Snapshot()
	if got := gk.Counter(stats.CtrBuildArray); got < 1 {
		t.Errorf("BuildArray = %d, want >= 1", got)
	}
	if got := gk.Counter(stats.CtrBuildDense); got < 1 {
		t.Errorf("BuildDense = %d, want >= 1", got)
	}
	if got := gk.Counter(stats.CtrBuildSegmented); got < 1 {
		t.Errorf("BuildSegmented = %d, want >= 1", got)
	}
}

// TestHybridSerializeRoundTrip: v3 single-set snapshots must round-trip all
// three representations bit-exactly, preserving the representation.
func TestHybridSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct {
		elems []uint32
		rep   Rep
	}{
		{nil, RepArray},
		{[]uint32{42}, RepArray},
		{randSet(rng, 200, 1<<30), RepArray},
		{randSet(rng, 3000, 1<<12), RepDense},
		{[]uint32{0, 63, 64, 1<<32 - 1}, RepDense},
		{randSet(rng, 3000, 1<<20), RepSegmented},
		{randSet(rng, 500, 1<<10), RepDense},
	}
	for i, c := range cases {
		orig := buildRep(t, c.elems, c.rep)
		got := roundTrip(t, orig)
		if got.Rep() != orig.Rep() {
			t.Fatalf("case %d: round trip changed rep %v → %v", i, orig.Rep(), got.Rep())
		}
		if got.Len() != orig.Len() {
			t.Fatalf("case %d: round trip changed len %d → %d", i, orig.Len(), got.Len())
		}
		ge, oe := got.Elements(), orig.Elements()
		for j := range oe {
			if ge[j] != oe[j] {
				t.Fatalf("case %d: element %d differs", i, j)
			}
		}
		if orig.Len() > 0 {
			// A deserialized set must intersect correctly with a live one.
			other := buildRep(t, c.elems[:max(1, len(c.elems)/2)], RepSegmented)
			if Count(got, other) != Count(orig, other) {
				t.Fatalf("case %d: deserialized set intersects differently", i)
			}
		}
	}
}

// TestHybridSerializeLegacyV2: the pre-hybrid checksummed v2 stream must
// keep loading, and the legacy writers must refuse non-segmented sets.
func TestHybridSerializeLegacyV2(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	orig := buildRep(t, randSet(rng, 2000, 1<<18), RepSegmented)
	var buf bytes.Buffer
	if _, err := writeSetV2(&buf, orig); err != nil {
		t.Fatalf("writeSetV2: %v", err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatalf("ReadSet(v2): %v", err)
	}
	if got.Rep() != RepSegmented || got.Len() != orig.Len() || CountMerge(got, orig) != orig.Len() {
		t.Fatal("v2 round trip changed the set")
	}
	arr := buildRep(t, randSet(rng, 100, 1<<18), RepArray)
	if _, err := writeSetV2(&bytes.Buffer{}, arr); err == nil {
		t.Error("writeSetV2 accepted an array set")
	}
	if _, err := writeSetV1(&bytes.Buffer{}, arr); err == nil {
		t.Error("writeSetV1 accepted an array set")
	}
}

// TestHybridSnapshotIntegrity: every single-byte flip and every truncation
// of a v3 array or dense snapshot must fail the load.
func TestHybridSnapshotIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, rep := range []Rep{RepArray, RepDense} {
		s := buildRep(t, randSet(rng, 300, 1<<12), rep)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		testutil.ForEachByteFlip(buf.Bytes(), func(pos int, corrupted []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%v: ReadSet panicked on flip at byte %d: %v", rep, pos, r)
				}
			}()
			if _, err := ReadSet(bytes.NewReader(corrupted)); err == nil {
				t.Fatalf("%v: flip at byte %d of %d loaded successfully", rep, pos, buf.Len())
			}
		})
		testutil.ForEachTruncation(buf.Bytes(), func(n int, trunc []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%v: ReadSet panicked on %d-byte truncation: %v", rep, n, r)
				}
			}()
			if _, err := ReadSet(bytes.NewReader(trunc)); err == nil {
				t.Fatalf("%v: truncation to %d of %d bytes loaded", rep, n, buf.Len())
			}
		})
	}
}

// TestHybridCorpusRoundTrip: a mixed-representation corpus must round-trip
// through the v3 corpus stream with representations preserved and the sets
// rebuilt into a working arena.
func TestHybridCorpusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	lists := [][]uint32{
		randSet(rng, 3000, 1<<20), // auto: segmented
		randSet(rng, 50, 1<<20),   // auto: array
		randSet(rng, 3000, 1<<12), // auto: dense
		nil,                       // auto: array (empty)
		randSet(rng, 2000, 1<<11), // auto: dense
	}
	cfg := DefaultConfig()
	cfg.Rep = RepAuto
	sets, err := BuildSets(lists, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReps := []Rep{RepSegmented, RepArray, RepDense, RepArray, RepDense}
	for i, s := range sets {
		if s.Rep() != wantReps[i] {
			t.Fatalf("set %d built as %v, want %v", i, s.Rep(), wantReps[i])
		}
	}
	var buf bytes.Buffer
	if _, err := WriteCorpus(&buf, sets); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(sets) {
		t.Fatalf("loaded %d sets, want %d", len(loaded), len(sets))
	}
	for i, s := range loaded {
		if s.Rep() != sets[i].Rep() {
			t.Fatalf("set %d loaded as %v, want %v", i, s.Rep(), sets[i].Rep())
		}
		if s.Len() != sets[i].Len() {
			t.Fatalf("set %d loaded len %d, want %d", i, s.Len(), sets[i].Len())
		}
		ge, oe := s.Elements(), sets[i].Elements()
		for j := range oe {
			if ge[j] != oe[j] {
				t.Fatalf("set %d element %d differs after corpus round trip", i, j)
			}
		}
	}
	// Loaded sets must intersect with each other and with the originals.
	for i := range loaded {
		for j := range sets {
			if Count(loaded[i], loaded[j]) != Count(sets[i], sets[j]) {
				t.Fatalf("loaded corpus intersects differently at (%d,%d)", i, j)
			}
		}
	}
	// Every single-byte flip must fail the whole-file checksum.
	testutil.ForEachByteFlip(buf.Bytes(), func(pos int, corrupted []byte) {
		if _, err := ReadCorpus(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corpus flip at byte %d loaded successfully", pos)
		}
	})
}

// TestHybridCorpusLegacyV2: the segmented-only FESIAC2 stream must keep
// loading, and the legacy writer must refuse mixed corpora.
func TestHybridCorpusLegacyV2(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	lists := [][]uint32{
		randSet(rng, 2000, 1<<16),
		{},
		randSet(rng, 500, 1<<16),
	}
	sets, err := BuildSets(lists, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := writeCorpusV2(&buf, sets); err != nil {
		t.Fatalf("writeCorpusV2: %v", err)
	}
	loaded, err := ReadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCorpus(v2): %v", err)
	}
	for i, s := range loaded {
		if s.Rep() != RepSegmented {
			t.Fatalf("v2 corpus set %d loaded as %v", i, s.Rep())
		}
		if Count(s, sets[i]) != sets[i].Len() {
			t.Fatalf("v2 corpus set %d differs after load", i)
		}
	}
	cfg := DefaultConfig()
	cfg.Rep = RepAuto
	mixed, err := BuildSets(lists, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeCorpusV2(&bytes.Buffer{}, mixed); err == nil {
		t.Error("writeCorpusV2 accepted a non-segmented set")
	}
}

// TestHybridSetAccessors pins the per-representation accessor behavior the
// public API documents.
func TestHybridSetAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	elems := randSet(rng, 1000, 1<<12)
	ded := sortDedup(elems)

	arr := buildRep(t, elems, RepArray)
	if arr.BitmapBits() != 0 || arr.NumSegments() != 0 || arr.Segment(0) != nil {
		t.Error("array set exposes segmented accessors")
	}
	if arr.MemoryBytes() >= buildRep(t, elems, RepSegmented).MemoryBytes() {
		t.Error("array rep not smaller than segmented for sparse data")
	}

	den := buildRep(t, elems, RepDense)
	if den.NumSegments() != 0 || den.Segment(0) != nil {
		t.Error("dense set exposes segmented accessors")
	}
	if den.BitmapBits() == 0 || den.BitmapBits()%64 != 0 {
		t.Errorf("dense BitmapBits = %d, want positive multiple of 64", den.BitmapBits())
	}

	for _, s := range []*Set{arr, den} {
		for _, v := range ded {
			if !s.Contains(v) {
				t.Fatalf("%v missing element %d", s.Rep(), v)
			}
		}
		misses := 0
		for i := 0; i < 1000; i++ {
			if !s.Contains(uint32(1<<20 + i)) {
				misses++
			}
		}
		if misses != 1000 {
			t.Errorf("%v Contains false-positive on out-of-range values", s.Rep())
		}
		st := s.Stats()
		if st.Rep != s.Rep() || st.MemoryBytes != s.MemoryBytes() {
			t.Errorf("%v Stats rep/mem mismatch: %+v", s.Rep(), st)
		}
		el := s.Elements()
		if len(el) != len(ded) {
			t.Fatalf("%v Elements len %d, want %d", s.Rep(), len(el), len(ded))
		}
		for i := range ded {
			if el[i] != ded[i] {
				t.Fatalf("%v Elements[%d] = %d, want %d", s.Rep(), i, el[i], ded[i])
			}
		}
	}
}

// TestHybridTraceSuppression: kernel-level traces are segment-pair concepts;
// cross-representation pairs must return empty traces, not panic.
func TestHybridTraceSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	arr := buildRep(t, randSet(rng, 500, 1<<16), RepArray)
	seg := buildRep(t, randSet(rng, 3000, 1<<16), RepSegmented)
	if tr := DispatchTrace(arr, seg); tr != nil {
		t.Errorf("DispatchTrace(cross) = %v, want nil", tr)
	}
	if tr := HashProbeTrace(arr, seg); tr != nil {
		t.Errorf("HashProbeTrace(cross) = %v, want nil", tr)
	}
}
