package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"fesia/internal/stats"
)

// statsSkewedPair returns a (small, large) pair whose size ratio forces the
// hash strategy.
func statsSkewedPair(t testing.TB) (*Set, *Set) {
	t.Helper()
	_, large := benchPair(40_000, 0.5, DefaultConfig())
	small := MustNewSet(append([]uint32(nil), large.reordered[:500]...), DefaultConfig())
	if !useHash(small, large) {
		t.Fatal("pair not skewed enough for the hash strategy")
	}
	return small, large
}

// TestExecutorStatsRecording drives every instrumented strategy through one
// executor and checks the snapshot reflects it — and that every result is
// identical to the uninstrumented free functions (instrumentation must never
// change answers).
func TestExecutorStatsRecording(t *testing.T) {
	a, b := benchPair(20_000, 0.3, DefaultConfig())
	small, large := statsSkewedPair(t)
	k := stats.New()
	e := NewExecutor()
	e.EnableStats(k)

	if got, want := e.Count(a, b), Count(a, b); got != want {
		t.Fatalf("merge count with stats = %d, want %d", got, want)
	}
	if got, want := e.Count(small, large), Count(small, large); got != want {
		t.Fatalf("hash count with stats = %d, want %d", got, want)
	}
	if got, want := e.CountK(a, b, large), CountK(a, b, large); got != want {
		t.Fatalf("k-way count with stats = %d, want %d", got, want)
	}
	cands := []*Set{b, large, small}
	out := make([]int, len(cands))
	want := make([]int, len(cands))
	e.CountMany(a, cands, out)
	for i, c := range cands {
		want[i] = Count(a, c)
		if out[i] != want[i] {
			t.Fatalf("batch count[%d] with stats = %d, want %d", i, out[i], want[i])
		}
	}

	snap := e.Stats()
	if got := snap.Counter(stats.CtrQueriesMerge); got != 1 {
		t.Errorf("QueriesMerge = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrQueriesHash); got != 1 {
		t.Errorf("QueriesHash = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrQueriesKWay); got != 1 {
		t.Errorf("QueriesKWay = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrQueriesBatch); got != 1 {
		t.Errorf("QueriesBatch = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrBatchCandidates); got != uint64(len(cands)) {
		t.Errorf("BatchCandidates = %d, want %d", got, len(cands))
	}
	if snap.Counter(stats.CtrSegPairs) == 0 {
		t.Error("no segment pairs recorded by the merge paths")
	}
	if snap.Counter(stats.CtrSegmentsScanned) < snap.Counter(stats.CtrSegPairs) {
		t.Errorf("SegmentsScanned (%d) < SegPairs (%d): survival ratio > 1",
			snap.Counter(stats.CtrSegmentsScanned), snap.Counter(stats.CtrSegPairs))
	}
	probes, surv := snap.Counter(stats.CtrHashProbes), snap.Counter(stats.CtrHashSurvivors)
	if probes == 0 {
		t.Error("no hash probes recorded")
	}
	if surv > probes {
		t.Errorf("HashSurvivors (%d) > HashProbes (%d)", surv, probes)
	}
	// The kernel histogram is sampled 1-in-KernelSampleRate merge queries; a
	// fresh executor samples its very first one, so it must be populated, and
	// it can never exceed the exact pair counter.
	if len(snap.Kernels) == 0 {
		t.Error("kernel-dispatch histogram empty after merge queries")
	}
	var kernelTotal uint64
	for _, kb := range snap.Kernels {
		kernelTotal += kb.Count
	}
	if kernelTotal == 0 || kernelTotal > snap.Counter(stats.CtrSegPairs) {
		t.Errorf("kernel dispatches = %d, want in [1, SegPairs=%d]", kernelTotal, snap.Counter(stats.CtrSegPairs))
	}
	if got := snap.Latency(stats.LatMerge).Count; got != 1 {
		t.Errorf("merge latency count = %d, want 1", got)
	}
	if got := snap.Latency(stats.LatHash).Count; got != 1 {
		t.Errorf("hash latency count = %d, want 1", got)
	}
}

// TestExecutorStatsParallelAndPool checks the worker-shard wiring of the
// parallel paths and the global sink's pool counters.
func TestExecutorStatsParallelAndPool(t *testing.T) {
	a, b := benchPair(50_000, 0.3, DefaultConfig())
	k := stats.New()
	EnableStats(k)
	defer EnableStats(nil)

	e := NewExecutor() // attaches to the global sink
	if got, want := e.CountMergeParallel(a, b, 4), CountMerge(a, b); got != want {
		t.Fatalf("parallel merge with stats = %d, want %d", got, want)
	}
	cands := []*Set{b, a, b, a, b, a}
	out := make([]int, len(cands))
	e.CountManyParallel(a, cands, out, 3)
	for i, c := range cands {
		if want := Count(a, c); out[i] != want {
			t.Fatalf("parallel batch count[%d] = %d, want %d", i, out[i], want)
		}
	}

	snap := k.Snapshot()
	if got := snap.Counter(stats.CtrPoolDo); got == 0 {
		t.Error("no pool Do calls recorded")
	}
	if got, want := snap.Counter(stats.CtrPoolDoDone), snap.Counter(stats.CtrPoolDo); got != want {
		t.Errorf("PoolDoDone = %d, want %d (in-flight should be zero at rest)", got, want)
	}
	if snap.Counter(stats.CtrPoolPartsPooled)+snap.Counter(stats.CtrPoolPartsInline) == 0 {
		t.Error("no pool parts recorded")
	}
	if snap.Counter(stats.CtrSegPairs) == 0 {
		t.Error("worker shards recorded no segment pairs")
	}
	if snap.NumShards < 2 {
		t.Errorf("NumShards = %d, want executor shard + worker shards", snap.NumShards)
	}
}

// TestStatsCancellationCounter checks a cancelled query counts exactly once.
func TestStatsCancellationCounter(t *testing.T) {
	a, b := benchPair(10_000, 0.3, DefaultConfig())
	k := stats.New()
	e := NewExecutor()
	e.EnableStats(k)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CountCtx(ctx, a, b); err == nil {
		t.Fatal("cancelled CountCtx returned nil error")
	}
	snap0 := e.Stats()
	if got := snap0.Counter(stats.CtrCancellations); got != 1 {
		t.Fatalf("Cancellations = %d, want 1", got)
	}
	// A successful ctx query records its strategy, not a cancellation.
	n, err := e.CountCtx(context.Background(), a, b)
	if err != nil || n != Count(a, b) {
		t.Fatalf("CountCtx = %d, %v; want %d, nil", n, err, Count(a, b))
	}
	snap := e.Stats()
	if got := snap.Counter(stats.CtrCancellations); got != 1 {
		t.Errorf("Cancellations after success = %d, want still 1", got)
	}
	if got := snap.Counter(stats.CtrQueriesMerge); got != 1 {
		t.Errorf("QueriesMerge via ctx = %d, want 1", got)
	}
}

// TestStatsSnapshotCodecCounters checks the serialization outcome counters on
// the global sink, including the error paths.
func TestStatsSnapshotCodecCounters(t *testing.T) {
	a, _ := benchPair(1000, 0.3, DefaultConfig())
	k := stats.New()
	EnableStats(k)
	defer EnableStats(nil)

	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSet(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSet(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage stream read succeeded")
	}
	snap := k.Snapshot()
	if got := snap.Counter(stats.CtrSnapshotWrites); got != 1 {
		t.Errorf("SnapshotWrites = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrSnapshotReads); got != 1 {
		t.Errorf("SnapshotReads = %d, want 1", got)
	}
	if got := snap.Counter(stats.CtrSnapshotReadErrors); got != 1 {
		t.Errorf("SnapshotReadErrors = %d, want 1", got)
	}
}

// TestStatsZeroAllocWarm proves the paper's "queries are the cheap repeated
// step" contract survives instrumentation: with stats ENABLED, the warm hot
// paths still perform zero heap allocations.
func TestStatsZeroAllocWarm(t *testing.T) {
	a, b := benchPair(20_000, 0.3, DefaultConfig())
	small, large := statsSkewedPair(t)
	k := stats.New()
	e := NewExecutor()
	e.EnableStats(k)
	cands := []*Set{b, large, small}
	out := make([]int, len(cands))

	cases := []struct {
		name string
		fn   func()
	}{
		{"Count/merge", func() { benchSink += e.Count(a, b) }},
		{"Count/hash", func() { benchSink += e.Count(small, large) }},
		{"CountK", func() { benchSink += e.CountK(a, b, large) }},
		{"CountMany", func() { e.CountMany(a, cands, out) }},
		// The *Parallel paths are excluded: Pool.Do's task closure costs two
		// allocations with or without stats (same as the seed), so they prove
		// nothing about instrumentation overhead.
	}
	for _, c := range cases {
		c.fn() // warm buffers and worker shards
		if avg := testing.AllocsPerRun(20, c.fn); avg != 0 {
			t.Errorf("%s with stats enabled: %v allocs/op, want 0", c.name, avg)
		}
	}
}

// TestStatsConcurrentExecutors hammers one global sink from many goroutines,
// each with its own executor, overlapping on the shared pool — the serving
// topology. Run under -race this proves the shard ownership model holds end
// to end; the final snapshot proves no query was lost.
func TestStatsConcurrentExecutors(t *testing.T) {
	a, b := benchPair(20_000, 0.3, DefaultConfig())
	k := stats.New()
	EnableStats(k)
	defer EnableStats(nil)

	const goroutines = 6
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewExecutor()
			for i := 0; i < iters; i++ {
				e.Count(a, b)
				e.CountMergeParallel(a, b, 3)
			}
		}()
	}
	wg.Wait()

	snap := k.Snapshot()
	if got, want := snap.Counter(stats.CtrQueriesMerge), uint64(goroutines*iters*2); got != want {
		t.Errorf("QueriesMerge = %d, want %d (lost updates)", got, want)
	}
	if got, want := snap.Latency(stats.LatMerge).Count, uint64(goroutines*iters*2); got != want {
		t.Errorf("merge latency count = %d, want %d", got, want)
	}
	if got, want := snap.Counter(stats.CtrPoolDoDone), snap.Counter(stats.CtrPoolDo); got != want {
		t.Errorf("PoolDoDone = %d, want %d", got, want)
	}
}
