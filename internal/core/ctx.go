package core

import (
	"context"
	"time"

	"fesia/internal/planner"
	"fesia/internal/stats"
	"fesia/internal/trace"
)

// Context-aware query paths. A serving system needs runaway queries to be
// deadline-bounded and cancellable; these variants thread a context.Context
// through the expensive loops with cooperative checkpoints at coarse
// granularity — per bitmap-word block in dispatch pass 1, per staged-segment
// block in pass 2, per probed-element block in the hash strategy, and per
// candidate in the one-vs-many paths. The blocks are large enough that the
// checkpoint branch is invisible next to the work between checks, yet small
// enough that cancellation and deadlines are honored within microseconds of
// firing. The uncancelled hot paths (Count, Intersect, CountMany, ...) are
// untouched: they share none of these loops, stay branch-predictable, and
// keep their zero-allocation guarantee (enforced by make benchcheck).
//
// On cancellation every method returns ctx.Err() (possibly wrapped by the
// caller's context machinery); counts are 0 and any destination buffers hold
// unspecified partial data. No scratch state is corrupted — the executor
// remains valid for further queries.
const (
	// ctxWordBlock is the pass-1 checkpoint unit: bitmap words ANDed (and
	// their surviving pairs staged) between context checks. At a few cycles
	// per word plus staging, 1024 words sit well under 10µs.
	ctxWordBlock = 1024
	// ctxStageBlock is the pass-2 checkpoint unit: staged segment records
	// dispatched to kernels between checks. Segment kernels touch a handful
	// of elements each, so 256 records is microseconds of work.
	ctxStageBlock = 256
	// ctxProbeBlock is the hash-strategy checkpoint unit: elements probed
	// between checks.
	ctxProbeBlock = 2048
)

// noteCancel records one cancelled query (when stats are enabled) and passes
// the error through. Called once per top-level ctx method, so a cancelled
// query counts once no matter how many checkpoints observed it.
func (e *Executor) noteCancel(err error) error {
	if err != nil && e.st != nil {
		e.st.Inc(stats.CtrCancellations)
	}
	return err
}

// CountCtx is Count with cooperative cancellation: it returns |a ∩ b| with
// the adaptively chosen strategy, or ctx.Err() as soon as a checkpoint
// observes the context done.
func (e *Executor) CountCtx(ctx context.Context, a, b *Set) (int, error) {
	compatible(a, b)
	if crossPair(a, b) {
		if e.tr == nil {
			return e.crossCountCtx(ctx, a, b)
		}
		start := time.Now()
		n, err := e.crossCountCtx(ctx, a, b)
		if err == nil {
			e.tr.Span(trace.KindStrategy, trace.ArmCross, 0,
				start, time.Since(start), uint64(a.n), uint64(b.n))
		}
		return n, err
	}
	if err := ctx.Err(); err != nil {
		return 0, e.noteCancel(err)
	}
	ch, hash := planSegSeg(e.plan, e.st, a, b)
	tracePlanSegSeg(e.tr, e.plan, ch, a, b)
	var start time.Time
	if e.st != nil || e.tr != nil || ch.Measure() {
		start = time.Now()
	}
	var n int
	var err error
	if hash {
		n, err = e.countHashCtx(ctx, a, b)
	} else {
		n, err = e.countMergeCtx(ctx, a, b)
	}
	if err != nil {
		// A cancelled pass did partial work; its latency would skew the model.
		return 0, e.noteCancel(err)
	}
	// One clock read serves the stats observation, the trace span and the
	// planner feedback alike — the tracing seam must not add reads of its own.
	var el time.Duration
	if e.st != nil || e.tr != nil || ch.Measure() {
		el = time.Since(start)
	}
	if e.st != nil {
		if hash {
			e.st.Inc(stats.CtrQueriesHash)
			e.st.Observe(stats.LatHash, el)
		} else {
			e.st.Inc(stats.CtrQueriesMerge)
			e.st.Observe(stats.LatMerge, el)
		}
	}
	if e.tr != nil {
		arm := uint8(trace.ArmMerge)
		if hash {
			arm = trace.ArmHash
		}
		e.tr.Span(trace.KindStrategy, arm, 0, start, el, uint64(a.n), uint64(b.n))
	}
	if ch.Measure() {
		e.plan.Record(ch, el)
	}
	return n, nil
}

// countMergeCtx runs the two-step merge strategy as a staged two-pass
// dispatch (the batch engine's split), checking the context between word
// blocks in pass 1 and between record blocks in pass 2.
func (e *Executor) countMergeCtx(ctx context.Context, a, b *Set) (int, error) {
	x, y := ordered(a, b)
	words := len(x.bm.Words())
	recs := e.staged[:0]
	for lo := 0; lo < words; lo += ctxWordBlock {
		if err := ctx.Err(); err != nil {
			e.staged = recs
			return 0, err
		}
		recs = stageSegPairsRange(x, y, recs, lo, min(lo+ctxWordBlock, words))
	}
	e.staged = recs
	if e.st != nil {
		if kst := e.kernelShard(); kst != nil {
			recordStagedKernels(kst, recs)
		}
		e.st.Add(stats.CtrSegPairs, uint64(len(recs)))
		e.st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
	}
	if e.tr != nil {
		e.tr.Event(trace.KindKernel, trace.ArmMerge, 0,
			uint64(len(recs)), uint64(x.bm.NumSegments()))
	}
	n := 0
	var touch uint32
	for lo := 0; lo < len(recs); lo += ctxStageBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		dn, dt := dispatchStagedCount(&x.disp, x.reordered, y.reordered,
			recs[lo:min(lo+ctxStageBlock, len(recs))])
		n += dn
		touch += dt
	}
	e.touchSink += touch
	return n, nil
}

// countHashCtx runs the skewed-input hash strategy in probe blocks, checking
// the context between blocks.
func (e *Executor) countHashCtx(ctx context.Context, a, b *Set) (int, error) {
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	if e.tr != nil {
		e.tr.Event(trace.KindKernel, trace.ArmHash, 0,
			uint64(small.n), uint64(large.n))
	}
	n := 0
	for lo := 0; lo < small.n; lo += ctxProbeBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n += hashProbeRange(small, large, lo, min(lo+ctxProbeBlock, small.n), nil, e.st)
	}
	return n, nil
}

// IntersectIntoCtx is Intersect-into-dst with cooperative cancellation. dst
// must have room for min(a.Len(), b.Len()) elements; results land in the same
// segment order Intersect produces. On cancellation it returns (0, ctx.Err())
// and dst holds unspecified partial data.
func (e *Executor) IntersectIntoCtx(ctx context.Context, dst []uint32, a, b *Set) (int, error) {
	compatible(a, b)
	if crossPair(a, b) {
		return e.crossIntersectCtx(ctx, dst, a, b)
	}
	if err := ctx.Err(); err != nil {
		return 0, e.noteCancel(err)
	}
	ch, hash := planSegSeg(e.plan, e.st, a, b)
	var start time.Time
	if e.st != nil || ch.Measure() {
		start = time.Now()
	}
	var n int
	var err error
	if hash {
		n, err = e.intersectHashCtx(ctx, dst, a, b)
	} else {
		n, err = e.intersectMergeCtx(ctx, dst, a, b)
	}
	if err != nil {
		return 0, e.noteCancel(err)
	}
	if e.st != nil {
		if hash {
			observeSince(e.st, stats.CtrQueriesHash, stats.LatHash, start)
		} else {
			observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
		}
	}
	planRecord(e.plan, ch, start)
	return n, nil
}

func (e *Executor) intersectHashCtx(ctx context.Context, dst []uint32, a, b *Set) (int, error) {
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	n := 0
	for lo := 0; lo < small.n; lo += ctxProbeBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		hi := min(lo+ctxProbeBlock, small.n)
		hashProbeRange(small, large, lo, hi, func(x uint32) {
			dst[n] = x
			n++
		}, e.st)
	}
	return n, nil
}

func (e *Executor) intersectMergeCtx(ctx context.Context, dst []uint32, a, b *Set) (int, error) {
	x, y := ordered(a, b)
	words := len(x.bm.Words())
	recs := e.staged[:0]
	for lo := 0; lo < words; lo += ctxWordBlock {
		if err := ctx.Err(); err != nil {
			e.staged = recs
			return 0, err
		}
		recs = stageSegPairsRange(x, y, recs, lo, min(lo+ctxWordBlock, words))
	}
	e.staged = recs
	if e.st != nil {
		if kst := e.kernelShard(); kst != nil {
			recordStagedKernels(kst, recs)
		}
		e.st.Add(stats.CtrSegPairs, uint64(len(recs)))
		e.st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
	}
	n := 0
	var touch uint32
	for lo := 0; lo < len(recs); lo += ctxStageBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		dn, dt := dispatchStagedIntersect(&x.disp, dst[n:], x.reordered, y.reordered,
			recs[lo:min(lo+ctxStageBlock, len(recs))])
		n += dn
		touch += dt
	}
	e.touchSink += touch
	return n, nil
}

// CountKCtx is CountK with cooperative cancellation: the k-way bitmap AND and
// its segment chains run one word block at a time, with a context check
// between blocks.
func (e *Executor) CountKCtx(ctx context.Context, sets ...*Set) (int, error) {
	switch len(sets) {
	case 0:
		panic("core: intersection of zero sets")
	case 1:
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return sets[0].n, nil
	case 2:
		return e.CountCtx(ctx, sets[0], sets[1])
	}
	if err := ctx.Err(); err != nil {
		return 0, e.noteCancel(err)
	}
	var start time.Time
	if e.st != nil || e.tr != nil {
		start = time.Now()
	}
	if anyCross(sets) {
		// Mixed representations run the membership-compaction chain, with a
		// context check between sets (each compaction pass is O(n_min)).
		total := 0
		cancelled := false
		e.kwayAnyChainCtx(ctx, sets, func(cur []uint32) { total += len(cur) }, &cancelled)
		if cancelled {
			return 0, e.noteCancel(ctx.Err())
		}
		e.observeKWay(start, len(sets), total)
		return total, nil
	}
	x, rest := e.kwayPrepare(sets)
	words := len(x.bm.Words())
	total := 0
	for lo := 0; lo < words; lo += ctxWordBlock {
		if err := ctx.Err(); err != nil {
			return 0, e.noteCancel(err)
		}
		e.kwayChainRange(x, rest, lo, min(lo+ctxWordBlock, words),
			func(cur []uint32) { total += len(cur) })
	}
	e.observeKWay(start, len(sets), total)
	return total, nil
}

// observeKWay records one k-way pass into the stats sink and the trace cell
// off a single shared clock read.
func (e *Executor) observeKWay(start time.Time, nsets, total int) {
	if e.st == nil && e.tr == nil {
		return
	}
	el := time.Since(start)
	if e.st != nil {
		e.st.Inc(stats.CtrQueriesKWay)
		e.st.Observe(stats.LatKWay, el)
	}
	if e.tr != nil {
		e.tr.Span(trace.KindStrategy, trace.ArmKWay, 0, start, el, uint64(nsets), uint64(total))
	}
}

// CountManyCtx is CountMany with cooperative cancellation, checked once per
// candidate: out[i] is |q ∩ candidates[i]| for every candidate processed
// before the context fired. On cancellation it returns ctx.Err() and the tail
// of out is unspecified.
func (e *Executor) CountManyCtx(ctx context.Context, q *Set, candidates []*Set, out []int) error {
	if len(out) < len(candidates) {
		panic("core: CountManyCtx output shorter than candidate list")
	}
	if err := ctx.Err(); err != nil {
		return e.noteCancel(err)
	}
	if len(candidates) == 0 {
		return nil
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	e.ensureProbe()
	recs := e.staged
	var touch uint32
	var err error
	done := 0
	for i, c := range candidates {
		if err = ctx.Err(); err != nil {
			break
		}
		out[i], recs, touch = countOneBatch(e.plan, &e.qcache, &e.denseAnd, e.probeStage, q, c, recs, touch, e.st, e.kernelShard())
		done++
	}
	e.staged = recs
	e.touchSink += touch
	if err != nil {
		return e.noteCancel(err)
	}
	if e.st != nil {
		e.st.Add(stats.CtrBatchCandidates, uint64(done))
		observeSince(e.st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
	return nil
}

// countOneBatch is the adaptive one-candidate step of the batch engine — the
// shared body of the context-aware Many paths. It returns the count, the
// (possibly grown) staging record buffer, and the accumulated read-ahead
// touch value.
func countOneBatch(h *planner.Handle, qc *probeCache, denseAnd *[]uint64, stage []probeRec, q, c *Set, recs []stagedSeg, touch uint32, st, kst *stats.Shard) (int, []stagedSeg, uint32) {
	compatible(q, c)
	if c.n == 0 || q.n == 0 {
		return 0, recs, touch
	}
	if crossPair(q, c) {
		return crossRun(h, denseAnd, q, c, nil, nil, st), recs, touch
	}
	ch, hash := planSegSeg(h, st, q, c)
	pstart := planStart(ch)
	var n int
	if hash {
		small, large := q, c
		if small.n > large.n {
			small, large = large, small
		}
		var t uint32
		n, t = hashProbeBatch(qc, q, small, large, stage, nil, nil, st)
		touch += t
	} else {
		var t uint32
		n, recs, t = countMergeStaged(q, c, recs, st, kst)
		touch += t
	}
	planRecord(h, ch, pstart)
	return n, recs, touch
}

// CountManyParallelCtx is CountManyParallel with cooperative cancellation:
// every worker checks the context once per candidate and abandons its
// remaining share when it fires, so a cancelled batch over thousands of
// candidates unwinds within one candidate's worth of work per worker. On
// cancellation it returns ctx.Err() and out holds unspecified partial data.
func (e *Executor) CountManyParallelCtx(ctx context.Context, q *Set, candidates []*Set, out []int, workers int) error {
	if len(out) < len(candidates) {
		panic("core: CountManyParallelCtx output shorter than candidate list")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		return e.CountManyCtx(ctx, q, candidates, out)
	}
	if err := ctx.Err(); err != nil {
		return e.noteCancel(err)
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	if cap(e.sched) < len(candidates) {
		e.sched = make([]int32, len(candidates))
	}
	sched := e.sched[:len(candidates)]
	for i := range sched {
		sched[i] = int32(i)
	}
	sortIdxByLenDesc(sched, candidates)
	e.ensureWorkers(workers)
	e.getPool().Do(workers, func(w int) {
		ws := &e.workers[w]
		if cap(ws.probeStage) < probeBlock {
			ws.probeStage = make([]probeRec, probeBlock)
		}
		ws.qcache.bits = 0
		recs := ws.staged
		var touch uint32
		seq := 0 // per-worker candidate index for kernel sampling
		for k := w; k < len(sched); k += workers {
			if ctx.Err() != nil {
				break
			}
			i := sched[k]
			out[i], recs, touch = countOneBatch(ws.plan, &ws.qcache, &ws.denseAnd, ws.probeStage, q, candidates[i], recs, touch, ws.st, sampleShard(ws.st, seq))
			seq++
		}
		ws.staged = recs
		ws.touch = touch
	})
	if err := ctx.Err(); err != nil {
		return e.noteCancel(err)
	}
	if e.st != nil {
		e.st.Add(stats.CtrBatchCandidates, uint64(len(candidates)))
		observeSince(e.st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
	return nil
}
