package core

import (
	"sync"
	"time"

	"fesia/internal/bitmap"
	"fesia/internal/planner"
	"fesia/internal/stats"
	"fesia/internal/trace"
)

// Visitor consumes one intersection result element. Streaming results through
// a Visitor instead of a destination slice lets callers aggregate, filter, or
// forward matches without materializing them — the result-flow idiom of
// visitor-based set-operation libraries, applied to FESIA's online phase.
type Visitor func(uint32)

// Executor owns all query-time scratch state for the online intersection
// phase: the k-way pairwise chain buffers, the segment staging buffer for
// visitor dispatch, and the per-worker state of the parallel paths. The FESIA
// paper's premise is that construction is the one-time offline step and
// queries are the cheap repeated step; an Executor makes the repeated step
// allocation-free — after warm-up, Count, Intersect (into a caller buffer),
// CountK, and the visitor methods perform zero heap allocations.
//
// The zero value is ready to use (buffers grow on demand and are retained
// across calls; parallel methods lazily attach to SharedPool). An Executor
// may be reused for any number of queries over any sets, but must not be used
// from multiple goroutines at once — give each query goroutine its own, or
// recycle them through a sync.Pool as the package-level wrappers do.
type Executor struct {
	scratch []uint32 // segment-pair staging for the visitor paths
	chain1  []uint32 // k-way pairwise chain buffer A
	chain2  []uint32 // k-way pairwise chain buffer B
	ord     []*Set   // k-way bitmap-size ordering scratch
	maps    []*bitmap.Bitmap
	workers []execWorker
	pool    *Pool

	staged     []stagedSeg // staged two-pass dispatch records (batch paths)
	sched      []int32     // candidate scheduling order (CountManyParallel)
	probeStage []probeRec  // staged hash probe: survivor records
	qcache     probeCache  // query hash positions, memoized per bitmap size
	denseAnd   []uint64    // dense×dense word-AND scratch (cross-rep paths)
	touchSink  uint32      // accumulates read-ahead touches so they are not DCE'd

	// Observability (nil when stats are disabled — the default). st is this
	// executor's single-writer shard for its sequential paths; each parallel
	// worker slot carries its own shard. qseq numbers the merge queries for
	// kernel-histogram sampling (kernelSampled). See stats.go for the
	// ownership model.
	st   *stats.Shard
	sink *stats.Sink
	qseq uint64

	// Adaptive planner (nil when off — the default). plan is this executor's
	// single-writer decision handle for its sequential paths; each parallel
	// worker slot carries its own. See plan.go for the ownership model.
	plan      *planner.Handle
	planModel *planner.Model

	// Per-query tracing (nil when no tracer is installed — the default).
	// tr is this executor's (shard × slot) staging cell in the serving
	// tier's tracer; the sequential ctx paths append strategy, planner and
	// kernel records to it. See trace.go for the ownership model.
	tr *trace.Cell
}

// execWorker is one worker's private state inside an Executor's parallel
// methods. Buffers persist across queries so a warm executor's parallel paths
// stop allocating once every worker has seen its largest range.
type execWorker struct {
	count      int
	buf        []uint32 // materialization buffer (IntersectMergeParallel)
	chain1     []uint32 // k-way chain scratch
	chain2     []uint32
	staged     []stagedSeg // per-worker staged dispatch records (CountManyParallel)
	probeStage []probeRec  // per-worker staged probe buffer
	qcache     probeCache  // per-worker query position cache
	denseAnd   []uint64    // per-worker dense×dense AND scratch (cross-rep)
	touch      uint32      // per-worker read-ahead sink
	st         *stats.Shard
	plan       *planner.Handle
}

// NewExecutor returns an Executor attached to the shared worker pool. If a
// process-global stats sink is installed (EnableStats), the executor attaches
// to it.
func NewExecutor() *Executor {
	e := &Executor{pool: SharedPool()}
	e.maybeAttachStats()
	e.maybeAttachPlanner()
	return e
}

// NewExecutorWithPool returns an Executor whose parallel methods run on the
// given pool instead of the shared one.
func NewExecutorWithPool(p *Pool) *Executor {
	e := &Executor{pool: p}
	e.maybeAttachStats()
	e.maybeAttachPlanner()
	return e
}

func (e *Executor) getPool() *Pool {
	if e.pool == nil {
		e.pool = SharedPool()
	}
	return e.pool
}

// growU32 returns a slice of length n, reusing buf's storage when it is large
// enough. The contents are unspecified.
func growU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

func (e *Executor) ensureWorkers(n int) {
	for len(e.workers) < n {
		w := execWorker{}
		if e.sink != nil {
			w.st = e.sink.NewShard()
		}
		if e.planModel != nil {
			w.plan = e.planModel.NewHandle()
		}
		e.workers = append(e.workers, w)
	}
}

// ---------------------------------------------------------------------------
// Two-way queries. The sequential two-way paths need no scratch at all; they
// share the free functions' hot loops, adding only the executor's stats
// recording (skipped entirely on the nil fast path when stats are disabled).
// ---------------------------------------------------------------------------

// Count returns |a ∩ b| with the adaptively chosen strategy (FESIAmerge vs
// FESIAhash, Fig. 11 crossover; the live cost model when a planner is
// attached). Zero heap allocations.
func (e *Executor) Count(a, b *Set) int {
	if crossPair(a, b) {
		return e.crossCount(a, b)
	}
	ch, hash := planSegSeg(e.plan, e.st, a, b)
	start := planStart(ch)
	var n int
	if hash {
		n = e.CountHash(a, b)
	} else {
		n = e.CountMerge(a, b)
	}
	planRecord(e.plan, ch, start)
	return n
}

// CountMerge forces the two-step FESIAmerge strategy. Zero heap allocations.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func (e *Executor) CountMerge(a, b *Set) int {
	if crossPair(a, b) {
		return e.crossCount(a, b)
	}
	if e.st == nil {
		return CountMerge(a, b)
	}
	start := time.Now()
	compatible(a, b)
	x, y := ordered(a, b)
	n := countMergeRange(x, y, 0, len(x.bm.Words()), e.st, e.kernelShard())
	observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
	return n
}

// CountHash forces the per-element FESIAhash strategy. Zero heap allocations.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func (e *Executor) CountHash(a, b *Set) int {
	if crossPair(a, b) {
		return e.crossCount(a, b)
	}
	if e.st == nil {
		return CountHash(a, b)
	}
	start := time.Now()
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	n := hashProbeRange(small, large, 0, small.n, nil, e.st)
	observeSince(e.st, stats.CtrQueriesHash, stats.LatHash, start)
	return n
}

// Intersect writes a ∩ b into dst with the adaptive strategy and returns the
// count. dst must have room for min(a.Len(), b.Len()) elements. Results are
// in segment order, not ascending value order (see IntersectMerge). Zero heap
// allocations.
func (e *Executor) Intersect(dst []uint32, a, b *Set) int {
	if crossPair(a, b) {
		return e.crossIntersect(dst, a, b)
	}
	ch, hash := planSegSeg(e.plan, e.st, a, b)
	if e.st == nil && !ch.Measure() {
		if hash {
			return IntersectHash(dst, a, b)
		}
		return IntersectMerge(dst, a, b)
	}
	start := time.Now()
	var n int
	if hash {
		n = IntersectHash(dst, a, b)
		if e.st != nil {
			observeSince(e.st, stats.CtrQueriesHash, stats.LatHash, start)
		}
	} else {
		n = IntersectMerge(dst, a, b)
		if e.st != nil {
			observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
		}
	}
	planRecord(e.plan, ch, start)
	return n
}

// ---------------------------------------------------------------------------
// Streaming visitors: results flow through emit as they are produced.
// ---------------------------------------------------------------------------

// Visit streams a ∩ b through emit with the adaptive strategy. Emission order
// matches what Intersect would have written: segment order of the
// larger-bitmap set (merge) or of the smaller set (hash), ascending within
// each segment. Allocation-free once warm (the emit closure itself is the
// caller's).
func (e *Executor) Visit(a, b *Set, emit Visitor) {
	if crossPair(a, b) {
		e.crossVisit(a, b, emit)
		return
	}
	ch, hash := planSegSeg(e.plan, e.st, a, b)
	start := planStart(ch)
	if hash {
		e.VisitHash(a, b, emit)
	} else {
		e.VisitMerge(a, b, emit)
	}
	planRecord(e.plan, ch, start)
}

// VisitMerge streams the two-step FESIAmerge intersection through emit: each
// surviving segment pair is dispatched to its specialized kernel and the
// kernel's output replayed element-wise, so no per-query result slice exists.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func (e *Executor) VisitMerge(a, b *Set, emit Visitor) {
	if crossPair(a, b) {
		e.crossVisit(a, b, emit)
		return
	}
	compatible(a, b)
	x, y := ordered(a, b)
	t := x.table
	e.scratch = growU32(e.scratch, max(min(x.maxSeg, y.maxSeg), 1))
	sc := e.scratch
	st := e.st
	kst := e.kernelShard()
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	pairs := 0
	forEachSegPair(x, y, func(sx, sy int) {
		pairs++
		if kst != nil {
			kst.Kernel(int(x.sizes[sx]), int(y.sizes[sy]))
		}
		t.Visit(sc, x.segment(sx), y.segment(sy), emit)
	})
	if st != nil {
		st.Add(stats.CtrSegPairs, uint64(pairs))
		st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
		observeSince(st, stats.CtrQueriesMerge, stats.LatMerge, start)
	}
}

// VisitHash streams the skewed-input FESIAhash intersection through emit, in
// the smaller set's segment order. Cross-representation pairs route to the
// dispatch matrix (hybrid.go).
func (e *Executor) VisitHash(a, b *Set, emit Visitor) {
	if crossPair(a, b) {
		e.crossVisit(a, b, emit)
		return
	}
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	if e.st == nil {
		hashProbeRange(small, large, 0, small.n, emit, nil)
		return
	}
	start := time.Now()
	hashProbeRange(small, large, 0, small.n, emit, e.st)
	observeSince(e.st, stats.CtrQueriesHash, stats.LatHash, start)
}

// VisitK streams the k-way intersection through emit, in the largest-bitmap
// set's segment order (the order IntersectK writes).
func (e *Executor) VisitK(emit Visitor, sets ...*Set) {
	switch len(sets) {
	case 0:
		panic("core: intersection of zero sets")
	case 1:
		sets[0].visitAll(emit)
		return
	case 2:
		e.VisitMerge(sets[0], sets[1], emit)
		return
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	sink := func(cur []uint32) {
		for _, v := range cur {
			emit(v)
		}
	}
	if anyCross(sets) {
		e.kwayAnyChain(sets, sink)
	} else {
		e.kwayChain(sets, sink)
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesKWay, stats.LatKWay, start)
	}
}

// ---------------------------------------------------------------------------
// k-way intersection (Section VI) on reusable chain buffers.
// ---------------------------------------------------------------------------

// CountK returns |s1 ∩ s2 ∩ ... ∩ sk| (Proposition 2: O(kn/√w + r)). Zero
// heap allocations once the chain buffers have grown to the workload's
// largest segment.
func (e *Executor) CountK(sets ...*Set) int {
	switch len(sets) {
	case 0:
		panic("core: intersection of zero sets")
	case 1:
		return sets[0].n
	case 2:
		return e.CountMerge(sets[0], sets[1])
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	total := 0
	sink := func(cur []uint32) { total += len(cur) }
	if anyCross(sets) {
		e.kwayAnyChain(sets, sink)
	} else {
		e.kwayChain(sets, sink)
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesKWay, stats.LatKWay, start)
	}
	return total
}

// IntersectK writes the k-way intersection into dst and returns the count.
// dst must be non-nil with room for the smallest set's length. Results are in
// segment order of the largest-bitmap set. Zero heap allocations once warm.
func (e *Executor) IntersectK(dst []uint32, sets ...*Set) int {
	if dst == nil {
		panic("core: IntersectK requires a destination buffer")
	}
	switch len(sets) {
	case 0:
		panic("core: intersection of zero sets")
	case 1:
		return sets[0].materialize(dst)
	case 2:
		return IntersectMerge(dst, sets[0], sets[1])
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	total := 0
	sink := func(cur []uint32) {
		copy(dst[total:], cur)
		total += len(cur)
	}
	if anyCross(sets) {
		e.kwayAnyChain(sets, sink)
	} else {
		e.kwayChain(sets, sink)
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesKWay, stats.LatKWay, start)
	}
	return total
}

// orderByBitmap fills e.ord with sets sorted by bitmap size descending — the
// largest drives the word loop and every smaller bitmap wraps (Section III-C
// generalized to k maps) — and e.maps with the matching bitmaps.
func (e *Executor) orderByBitmap(sets []*Set) {
	for _, s := range sets[1:] {
		compatible(sets[0], s)
	}
	e.ord = append(e.ord[:0], sets...)
	ord := e.ord
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && ord[j].bm.Bits() > ord[j-1].bm.Bits(); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	e.maps = e.maps[:0]
	for _, s := range ord {
		e.maps = append(e.maps, s.bm)
	}
}

// kwayChain runs the k-way bitmap AND and, for every surviving segment whose
// pairwise kernel chain stays non-empty, hands the final chained list to
// sink. It is the shared core of CountK, IntersectK and VisitK (k >= 3).
func (e *Executor) kwayChain(sets []*Set, sink func(cur []uint32)) {
	x, rest := e.kwayPrepare(sets)
	e.kwayChainRange(x, rest, 0, len(x.bm.Words()), sink)
}

// kwayPrepare orders the sets, fills e.maps, and sizes the chain buffers —
// the shared setup of kwayChain and the context-aware CountKCtx.
func (e *Executor) kwayPrepare(sets []*Set) (x *Set, rest []*Set) {
	e.orderByBitmap(sets)
	x = e.ord[0]
	rest = e.ord[1:]
	maxSeg := x.maxSeg
	for _, s := range rest {
		maxSeg = max(maxSeg, s.maxSeg)
	}
	e.chain1 = growU32(e.chain1, max(maxSeg, 1))
	e.chain2 = growU32(e.chain2, max(maxSeg, 1))
	return x, rest
}

// kwayChainRange runs the k-way chain over words [wordLo, wordHi) of the
// largest bitmap, on buffers sized by kwayPrepare.
func (e *Executor) kwayChainRange(x *Set, rest []*Set, wordLo, wordHi int, sink func(cur []uint32)) {
	buf1, buf2 := e.chain1, e.chain2
	t := x.table
	bitmap.ForEachIntersectingSegmentKRange(e.maps, wordLo, wordHi, func(seg int) {
		cur := x.segment(seg)
		n := len(cur)
		out := buf1
		for _, s := range rest {
			sseg := s.segment(seg & (s.bm.NumSegments() - 1))
			n = t.Intersect(out, cur, sseg)
			if n == 0 {
				break
			}
			cur = out[:n]
			if &out[0] == &buf1[0] {
				out = buf2
			} else {
				out = buf1
			}
		}
		if n == 0 {
			return
		}
		sink(cur[:n])
	})
}

// ---------------------------------------------------------------------------
// Parallel queries on the persistent worker pool (Section VI, multicore).
// ---------------------------------------------------------------------------

// CountMergeParallel is CountMerge with the larger bitmap's words partitioned
// across `workers` parts on the executor's persistent pool. No goroutines are
// spawned; pool workers are reused across calls. Cross-representation pairs
// have no bitmap to partition; they run serially on the dispatch matrix.
func (e *Executor) CountMergeParallel(a, b *Set, workers int) int {
	if crossPair(a, b) {
		return e.crossCount(a, b)
	}
	compatible(a, b)
	x, y := ordered(a, b)
	words := len(x.bm.Words())
	if workers < 1 {
		workers = 1
	}
	if workers > words {
		workers = words
	}
	if workers == 1 {
		return e.CountMerge(a, b)
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	sampled := e.kernelSampled()
	e.ensureWorkers(workers)
	chunk := (words + workers - 1) / workers
	e.getPool().Do(workers, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, words)
		ws := &e.workers[w]
		kst := ws.st
		if !sampled {
			kst = nil
		}
		ws.count = countMergeRange(x, y, lo, hi, ws.st, kst)
	})
	total := 0
	for w := 0; w < workers; w++ {
		total += e.workers[w].count
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
	}
	return total
}

// IntersectMergeParallel is IntersectMerge across `workers` pool parts.
// Workers materialize disjoint word ranges into their persistent buffers,
// which are concatenated in range order, so the output matches
// IntersectMerge. Each worker pre-sizes its buffer from the per-range segment
// size totals (a cheap bitmap pre-pass) instead of growing it by repeated
// appends. Cross-representation pairs run serially on the dispatch matrix.
func (e *Executor) IntersectMergeParallel(dst []uint32, a, b *Set, workers int) int {
	if crossPair(a, b) {
		return e.crossIntersect(dst, a, b)
	}
	compatible(a, b)
	x, y := ordered(a, b)
	words := len(x.bm.Words())
	if workers < 1 {
		workers = 1
	}
	if workers > words {
		workers = words
	}
	if workers == 1 {
		if e.st == nil {
			return IntersectMerge(dst, a, b)
		}
		start := time.Now()
		n := IntersectMerge(dst, a, b)
		observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
		return n
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	e.ensureWorkers(workers)
	t := x.table
	chunk := (words + workers - 1) / workers
	e.getPool().Do(workers, func(w int) {
		ws := &e.workers[w]
		lo := w * chunk
		hi := min(lo+chunk, words)
		// Pre-size from per-range segment totals: the sum of
		// min(|segA|, |segB|) over the range's surviving pairs bounds the
		// range's output exactly, and reading two size arrays is far cheaper
		// than the kernel pass that follows.
		bound := 0
		forEachSegPairRange(x, y, lo, hi, func(sx, sy int) {
			bound += int(min(x.sizes[sx], y.sizes[sy]))
		})
		ws.buf = growU32(ws.buf, bound)
		n := 0
		forEachSegPairRange(x, y, lo, hi, func(sx, sy int) {
			n += t.Intersect(ws.buf[n:], x.segment(sx), y.segment(sy))
		})
		ws.count = n
	})
	total := 0
	for w := 0; w < workers; w++ {
		ws := &e.workers[w]
		total += copy(dst[total:], ws.buf[:ws.count])
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesMerge, stats.LatMerge, start)
	}
	return total
}

// CountHashParallel applies the skewed-input strategy with the smaller set's
// elements partitioned across `workers` pool parts. Cross-representation
// pairs run serially on the dispatch matrix.
func (e *Executor) CountHashParallel(a, b *Set, workers int) int {
	if crossPair(a, b) {
		return e.crossCount(a, b)
	}
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	if workers < 1 {
		workers = 1
	}
	if workers > small.n {
		workers = small.n
	}
	if workers <= 1 {
		return e.CountHash(a, b)
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	e.ensureWorkers(workers)
	chunk := (small.n + workers - 1) / workers
	e.getPool().Do(workers, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, small.n)
		e.workers[w].count = hashProbeRange(small, large, lo, hi, nil, e.workers[w].st)
	})
	total := 0
	for w := 0; w < workers; w++ {
		total += e.workers[w].count
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesHash, stats.LatHash, start)
	}
	return total
}

// CountKParallel is CountK with the largest bitmap's words partitioned across
// `workers` pool parts, each chaining the pairwise segment intersections in
// its persistent private buffers.
func (e *Executor) CountKParallel(workers int, sets ...*Set) int {
	switch len(sets) {
	case 0:
		panic("core: intersection of zero sets")
	case 1:
		return sets[0].n
	case 2:
		return e.CountMergeParallel(sets[0], sets[1], workers)
	}
	if anyCross(sets) {
		// Mixed representations have no shared bitmap to partition; the
		// serial membership-compaction chain handles them.
		return e.CountK(sets...)
	}
	e.orderByBitmap(sets)
	x := e.ord[0]
	rest := e.ord[1:]
	words := len(x.bm.Words())
	if workers < 1 {
		workers = 1
	}
	if workers > words {
		workers = words
	}
	if workers == 1 {
		return e.CountK(sets...)
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	maxSeg := x.maxSeg
	for _, s := range rest {
		maxSeg = max(maxSeg, s.maxSeg)
	}
	e.ensureWorkers(workers)
	maps := e.maps
	t := x.table
	chunk := (words + workers - 1) / workers
	e.getPool().Do(workers, func(w int) {
		ws := &e.workers[w]
		lo := w * chunk
		hi := min(lo+chunk, words)
		ws.chain1 = growU32(ws.chain1, max(maxSeg, 1))
		ws.chain2 = growU32(ws.chain2, max(maxSeg, 1))
		buf1, buf2 := ws.chain1, ws.chain2
		total := 0
		bitmap.ForEachIntersectingSegmentKRange(maps, lo, hi, func(seg int) {
			cur := x.segment(seg)
			n := len(cur)
			out := buf1
			for _, s := range rest {
				sseg := s.segment(seg & (s.bm.NumSegments() - 1))
				n = t.Intersect(out, cur, sseg)
				if n == 0 {
					break
				}
				cur = out[:n]
				if &out[0] == &buf1[0] {
					out = buf2
				} else {
					out = buf1
				}
			}
			total += n
		})
		ws.count = total
	})
	total := 0
	for w := 0; w < workers; w++ {
		total += e.workers[w].count
	}
	if e.st != nil {
		observeSince(e.st, stats.CtrQueriesKWay, stats.LatKWay, start)
	}
	return total
}

// ---------------------------------------------------------------------------
// Pooled default executors backing the package-level compatibility wrappers.
// ---------------------------------------------------------------------------

var defaultExecutors = sync.Pool{New: func() any { return NewExecutor() }}

func getExecutor() *Executor {
	e := defaultExecutors.Get().(*Executor)
	e.maybeAttachStats()   // pooled executors may predate EnableStats
	e.maybeAttachPlanner() // ... or EnablePlanner
	return e
}

func putExecutor(e *Executor) { defaultExecutors.Put(e) }
