package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestPoolDoRunsEveryPartOnce(t *testing.T) {
	p := NewPool(4)
	for _, parts := range []int{1, 2, 4, 7, 64} {
		counts := make([]int32, parts)
		p.Do(parts, func(w int) {
			atomic.AddInt32(&counts[w], 1)
		})
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("parts=%d: part %d ran %d times", parts, w, c)
			}
		}
	}
}

func TestPoolDoMorePartsThanWorkers(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int64
	p.Do(100, func(w int) {
		total.Add(int64(w))
	})
	if got, want := total.Load(), int64(100*99/2); got != want {
		t.Fatalf("sum of parts = %d, want %d", got, want)
	}
}

func TestPoolDoNested(t *testing.T) {
	// Nested Do must not deadlock even when the inner calls outnumber the
	// pool's workers: surplus tasks fall back to inline execution.
	p := NewPool(2)
	var total atomic.Int64
	p.Do(4, func(outer int) {
		p.Do(4, func(inner int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 16 {
		t.Fatalf("nested Do ran %d inner parts, want 16", got)
	}
}

func TestPoolSize(t *testing.T) {
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	if NewPool(0).Size() < 1 {
		t.Fatal("NewPool(0) must clamp to at least one worker")
	}
	if SharedPool() == nil || SharedPool() != SharedPool() {
		t.Fatal("SharedPool must return one stable pool")
	}
}

// doRecover runs p.Do and returns the recovered panic value (nil if none).
func doRecover(p *Pool, parts int, fn func(part int)) (rec any) {
	defer func() { rec = recover() }()
	p.Do(parts, fn)
	return nil
}

// TestPoolDoPanicReraised: a panicking part must surface on the Do caller as
// a *TaskPanic carrying the original value and stack, after every other part
// has completed.
func TestPoolDoPanicReraised(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	rec := doRecover(p, 8, func(part int) {
		if part == 5 {
			panic("boom-5")
		}
		ran.Add(1)
	})
	tp, ok := rec.(*TaskPanic)
	if !ok {
		t.Fatalf("Do re-raised %T (%v), want *TaskPanic", rec, rec)
	}
	if tp.Value != "boom-5" || tp.Part != 5 {
		t.Fatalf("TaskPanic = part %d value %v, want part 5 value boom-5", tp.Part, tp.Value)
	}
	if len(tp.Stack) == 0 {
		t.Fatal("TaskPanic carries no stack")
	}
	if got := ran.Load(); got != 7 {
		t.Fatalf("only %d of 7 non-panicking parts ran", got)
	}
}

// TestPoolDoPanicOnCallerPart: part 0 runs inline on the caller; its panic
// must get the same containment so pooled parts are never stranded.
func TestPoolDoPanicOnCallerPart(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int32
	rec := doRecover(p, 4, func(part int) {
		if part == 0 {
			panic("boom-0")
		}
		ran.Add(1)
	})
	tp, ok := rec.(*TaskPanic)
	if !ok || tp.Value != "boom-0" {
		t.Fatalf("Do re-raised %v, want TaskPanic(boom-0)", rec)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("only %d of 3 other parts ran", got)
	}
}

// TestPoolSizeUnchangedAfterPanic is the regression test for the seed bug
// where a task panic killed its worker goroutine, permanently shrinking the
// shared pool: after a recovered panic the pool's effective size must be
// unchanged and every part of later calls must still run.
func TestPoolSizeUnchangedAfterPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 3; round++ {
		if rec := doRecover(p, 8, func(part int) {
			if part%2 == 1 {
				panic(part) // several parts panic at once
			}
		}); rec == nil {
			t.Fatal("panicking Do did not re-raise")
		}
		if got := p.Alive(); got != p.Size() {
			t.Fatalf("round %d: %d live workers after recovered panic, want %d", round, got, p.Size())
		}
	}
	var total atomic.Int64
	p.Do(64, func(part int) { total.Add(1) })
	if got := total.Load(); got != 64 {
		t.Fatalf("post-panic Do ran %d of 64 parts", got)
	}
}

// TestPoolTaskPanicUnwrap: when the panic value is an error, errors.As must
// see through the containment wrapper.
func TestPoolTaskPanicUnwrap(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sentinel := errors.New("sentinel")
	rec := doRecover(p, 2, func(part int) {
		if part == 1 {
			panic(sentinel)
		}
	})
	tp, ok := rec.(*TaskPanic)
	if !ok {
		t.Fatalf("recovered %T, want *TaskPanic", rec)
	}
	if !errors.Is(tp, sentinel) {
		t.Fatal("errors.Is does not reach the original error panic value")
	}
}

// TestPoolClose: Close must release every worker goroutine (leak-checked via
// the alive counter) and be idempotent.
func TestPoolClose(t *testing.T) {
	p := NewPool(5)
	p.Do(10, func(part int) {})
	if got := p.Alive(); got != 5 {
		t.Fatalf("Alive() = %d before Close, want 5", got)
	}
	p.Close()
	p.Close() // idempotent
	if got := p.Alive(); got != 0 {
		t.Fatalf("Alive() = %d after Close, want 0", got)
	}
}
