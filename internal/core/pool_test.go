package core

import (
	"sync/atomic"
	"testing"
)

func TestPoolDoRunsEveryPartOnce(t *testing.T) {
	p := NewPool(4)
	for _, parts := range []int{1, 2, 4, 7, 64} {
		counts := make([]int32, parts)
		p.Do(parts, func(w int) {
			atomic.AddInt32(&counts[w], 1)
		})
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("parts=%d: part %d ran %d times", parts, w, c)
			}
		}
	}
}

func TestPoolDoMorePartsThanWorkers(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int64
	p.Do(100, func(w int) {
		total.Add(int64(w))
	})
	if got, want := total.Load(), int64(100*99/2); got != want {
		t.Fatalf("sum of parts = %d, want %d", got, want)
	}
}

func TestPoolDoNested(t *testing.T) {
	// Nested Do must not deadlock even when the inner calls outnumber the
	// pool's workers: surplus tasks fall back to inline execution.
	p := NewPool(2)
	var total atomic.Int64
	p.Do(4, func(outer int) {
		p.Do(4, func(inner int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 16 {
		t.Fatalf("nested Do ran %d inner parts, want 16", got)
	}
}

func TestPoolSize(t *testing.T) {
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	if NewPool(0).Size() < 1 {
		t.Fatal("NewPool(0) must clamp to at least one worker")
	}
	if SharedPool() == nil || SharedPool() != SharedPool() {
		t.Fatal("SharedPool must return one stable pool")
	}
}
