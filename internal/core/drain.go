package core

import (
	"sync"
	"sync/atomic"
)

// DrainGroup tracks in-flight references to a retirable resource — a corpus
// epoch being hot-swapped out, a delta layer being compacted away — and
// reports when the last one is gone. It is the drain half of the snapshot
// lifecycle: WriteCorpus/ReadCorpus move immutable corpora between processes,
// and a DrainGroup lets a serving layer retire the old corpus only after
// every query that loaded a pointer to it has finished.
//
// The intended pattern is an atomic pointer flip with an acquire-recheck
// loop on the read side:
//
//	// reader
//	for {
//		e := current.Load()
//		e.drain.Acquire()
//		if current.Load() == e {
//			defer e.drain.Release()
//			... use e ...
//			break
//		}
//		e.drain.Release() // pointer moved between Load and Acquire; retry
//	}
//
//	// swapper
//	old := current.Swap(fresh)
//	old.drain.Retire()   // drop the owner reference
//	<-old.drain.Drained() // all in-flight readers finished
//
// The recheck makes the flip safe: a reader that raced the swap either
// re-acquires the fresh epoch, or its reference is already counted and the
// swapper's Drained wait covers it. Once drained, a group must not be
// re-acquired — acquiring is only correct through a pointer that can still
// reach the resource, and after Retire the flip has already removed it.
type DrainGroup struct {
	refs      atomic.Int64
	closeOnce sync.Once
	done      chan struct{}
}

// NewDrainGroup returns a group holding the owner reference: the resource is
// live until Retire drops it and every Acquire has been matched by a Release.
func NewDrainGroup() *DrainGroup {
	g := &DrainGroup{done: make(chan struct{})}
	g.refs.Store(1)
	return g
}

// Acquire takes one reference. Callers must pair it with Release and follow
// the pointer-recheck pattern documented on the type.
func (g *DrainGroup) Acquire() { g.refs.Add(1) }

// Release drops one reference; the last drop (owner included) marks the
// group drained.
func (g *DrainGroup) Release() {
	if g.refs.Add(-1) == 0 {
		g.closeOnce.Do(func() { close(g.done) })
	}
}

// Retire drops the owner reference taken by NewDrainGroup. Call it exactly
// once, after the resource has been unpublished (the pointer flipped), so no
// new Acquire can still succeed the recheck.
func (g *DrainGroup) Retire() { g.Release() }

// Drained returns a channel closed when the owner reference has been retired
// and every acquired reference released.
func (g *DrainGroup) Drained() <-chan struct{} { return g.done }

// InFlight returns the current reference count, including the owner reference
// until Retire. A gauge for tests and admin surfaces, not a synchronization
// primitive.
func (g *DrainGroup) InFlight() int64 { return g.refs.Load() }
