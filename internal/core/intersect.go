package core

import (
	"time"

	"fesia/internal/bitmap"
	"fesia/internal/kernels"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// SkewThreshold is the size ratio below which the adaptive strategy switches
// from the merge-style two-step intersection (FESIAmerge) to the per-element
// hash probe (FESIAhash). Fig. 11 of the paper places the crossover at a
// skew of about 1/4.
const SkewThreshold = 0.25

// coreChunkBlocks sizes the stack mask buffer of the chunked fast paths in
// countMergeRange and stageSegPairsRange: 256 blocks = 1024 bitmap words per
// chunk, matching internal/bitmap's fast filter.
const coreChunkBlocks = 256

// CountMerge returns |a ∩ b| using the two-step FESIA algorithm
// (Algorithm 1): bitmap-level AND, then specialized kernels on the
// surviving segment pairs. This is the paper's FESIAmerge. Pairs involving a
// non-segmented set have no merge/hash strategy distinction; they route to
// the cross-representation dispatch matrix (hybrid.go).
func CountMerge(a, b *Set) int {
	if crossPair(a, b) {
		return crossCountFree(a, b)
	}
	compatible(a, b)
	x, y := ordered(a, b)
	return countMergeRange(x, y, 0, len(x.bm.Words()), nil, nil)
}

// countMergeRange is the hot loop: it fuses the three bitmap-level steps of
// Section IV (word AND, segment transformation, index extraction) with the
// jump-table dispatch of Listing 2, over words [lo, hi) of the larger
// bitmap. x must be the larger-bitmap set.
//
// st, when non-nil, receives the segment-survival counters at range
// granularity; the pair tally itself is a register increment kept
// unconditional so the disabled path stays branch-free. kst, when non-nil,
// additionally receives the per-pair kernel-dispatch histogram — callers pass
// it for 1 in stats.KernelSampleRate queries (see Executor.kernelSampled), so
// the histogram's per-pair cost is paid on a thin sample while every counter
// stays exact.
func countMergeRange(x, y *Set, lo, hi int, st, kst *stats.Shard) int {
	d := &x.disp
	xw, yw := x.bm.Words(), y.bm.Words()
	wordMask := len(yw) - 1
	spw := x.bm.SegmentsPerWord()
	segBits := x.bm.SegBits()
	segMaskY := y.bm.NumSegments() - 1
	xo, yo := x.offsets, y.offsets
	xr, yr := x.reordered, y.reordered

	// Segment extraction: tzcnt finds the lowest live bit, then the whole
	// segment's bits are cleared at once, so the inner loop runs once per
	// live segment (Section IV steps 2+3 fused, branch-free).
	segClear := uint64(1)<<uint(segBits) - 1
	segShift := uint(simd.Tzcnt32(uint32(segBits))) // log2(segBits)
	alignMask := segBits - 1

	n := 0
	pairs := 0
	i := lo
	if simd.AsmActive() && len(yw) >= simd.BlockWords && hi-lo >= 2*simd.BlockWords {
		// Chunked mask-stream fast path: the fused AndSegMasks kernel emits
		// one live-segment mask per 4-word block into a stack buffer, and the
		// kernel dispatch walks the mask stream. Range edges are handled by
		// computing the full edge block and trimming out-of-range segment
		// bits (the over-read stays inside the bitmap: word counts on this
		// path are powers of two >= 2*BlockWords).
		loDown := lo &^ (simd.BlockWords - 1)
		hiUp := (hi + simd.BlockWords - 1) &^ (simd.BlockWords - 1)
		var masks [coreChunkBlocks]uint32
		for cb := loDown; cb < hiUp; {
			nb := (hiUp - cb) / simd.BlockWords
			if nb > coreChunkBlocks {
				nb = coreChunkBlocks
			}
			live := simd.AndSegMasksWrap(masks[:nb], xw, yw, cb, segBits)
			if live != 0 {
				if cb < lo {
					masks[0] &^= 1<<uint((lo-cb)*spw) - 1
				}
				if end := cb + nb*simd.BlockWords; end > hi {
					masks[nb-1] &= 1<<uint((hi-(end-simd.BlockWords))*spw) - 1
				}
				for bi := 0; bi < nb; bi++ {
					m := masks[bi]
					if m == 0 {
						continue
					}
					base := (cb + bi*simd.BlockWords) * spw
					for m != 0 {
						seg := base + simd.Tzcnt32(m)
						m &= m - 1
						segY := seg & segMaskY
						oa, oaEnd := xo[seg], xo[seg+1]
						ob, obEnd := yo[segY], yo[segY+1]
						la := int(oaEnd - oa)
						lb := int(obEnd - ob)
						pairs++
						if kst != nil {
							kst.Kernel(la, lb)
						}
						if la > d.Cap || lb > d.Cap {
							n += kernels.GenericCount(xr[oa:oaEnd], yr[ob:obEnd])
							continue
						}
						ctrl := int(d.Round[la])<<d.Bits | int(d.Round[lb])
						n += d.Count[ctrl](xr[oa:oaEnd], yr[ob:obEnd])
					}
				}
			}
			cb += nb * simd.BlockWords
		}
		i = hi
	}
	for ; i < hi; i++ {
		w := xw[i] & yw[i&wordMask]
		if w == 0 {
			continue
		}
		base := i * spw
		for w != 0 {
			bit := simd.Tzcnt64(w)
			segOff := bit &^ alignMask
			w &^= segClear << uint(segOff)
			seg := base + segOff>>segShift
			segY := seg & segMaskY
			oa, oaEnd := xo[seg], xo[seg+1]
			ob, obEnd := yo[segY], yo[segY+1]
			la := int(oaEnd - oa)
			lb := int(obEnd - ob)
			pairs++
			if kst != nil {
				kst.Kernel(la, lb)
			}
			if la > d.Cap || lb > d.Cap {
				n += kernels.GenericCount(xr[oa:oaEnd], yr[ob:obEnd])
				continue
			}
			ctrl := int(d.Round[la])<<d.Bits | int(d.Round[lb])
			n += d.Count[ctrl](xr[oa:oaEnd], yr[ob:obEnd])
		}
	}
	if st != nil {
		st.Add(stats.CtrSegPairs, uint64(pairs))
		st.Add(stats.CtrSegmentsScanned, uint64((hi-lo)*spw))
	}
	return n
}

// IntersectMerge writes a ∩ b into dst and returns the count. dst must have
// room for min(a.Len(), b.Len()) elements. Results are emitted in segment
// order (ascending within each segment); use sort.Slice for value order.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func IntersectMerge(dst []uint32, a, b *Set) int {
	if crossPair(a, b) {
		return crossIntersectFree(dst, a, b)
	}
	compatible(a, b)
	x, y := ordered(a, b)
	t := x.table
	n := 0
	forEachSegPair(x, y, func(sx, sy int) {
		n += t.Intersect(dst[n:], x.segment(sx), y.segment(sy))
	})
	return n
}

// forEachSegPair streams the surviving segment pairs of the bitmap-level
// intersection, with x the larger-bitmap set.
func forEachSegPair(x, y *Set, fn func(sx, sy int)) {
	bitmap.ForEachIntersectingSegment(x.bm, y.bm, fn)
}

func forEachSegPairRange(x, y *Set, wordLo, wordHi int, fn func(sx, sy int)) {
	bitmap.ForEachIntersectingSegmentRange(x.bm, y.bm, wordLo, wordHi, fn)
}

// hashProbeRange is the one hash-probe loop behind CountHash, IntersectHash,
// VisitHash and CountHashParallel: elements small.reordered[lo:hi] each probe
// the larger set's bitmap, and only elements whose bit is set are compared
// against the one segment list the bit selects (Section VI). Every match is
// counted and, when emit is non-nil, streamed through it. Returns the match
// count.
// All per-probe invariants are hoisted out of the loop: the bitmap word
// slice, the hasher, and — crucially — the segment divide, which becomes a
// shift by the precomputed log2(segBits) instead of Bitmap.SegmentOf's
// division by a variable. The segment slice assembly is additionally cached
// behind a last-segment check: consecutive probes frequently land in the
// same segment — notably when the two bitmaps are the same size, so that
// the smaller set's segment-ordered reordered array maps runs of elements
// onto one segment of the larger set — and skewed inputs concentrate probes
// on the dense segments.
//
// st, when non-nil, receives the probe/survivor counters (the hash-side
// selectivity signal); the survivor tally itself is a register increment
// kept unconditionally so the disabled path stays branch-free.
func hashProbeRange(small, large *Set, lo, hi int, emit Visitor, st *stats.Shard) int {
	return hashProbeElems(small.reordered[lo:hi], large, nil, emit, st)
}

// gatherProbeMaxBits is the largest bitmap the gathered AVX-512 probe stage
// can serve: survivor positions are compress-stored as uint32 lanes. Bitmaps
// beyond 4 Gbit (64 Gi elements at the paper's scale) fall back to the
// scalar probe loop.
const gatherProbeMaxBits = 1 << 32

// hashProbeElems is the probe loop proper, over any sorted element slice —
// the segmented-set membership kernel shared by the hash strategy and the
// array×seg entry of the cross-representation dispatch matrix. Matches are
// appended to dst (when non-nil) and streamed through emit (when non-nil).
// On the AVX-512 rung the hash+bitmap-test half of the loop runs through the
// gathered probe stage (simd.ProbeStage) sixteen elements at a time; the
// surviving segment scans, match order and counters are identical either
// way.
func hashProbeElems(elems []uint32, large *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	if simd.GatherProbeActive() && len(elems) >= 16 && large.bm.Bits() <= gatherProbeMaxBits {
		return hashProbeElemsGather(elems, large, dst, emit, st)
	}
	return hashProbeElemsScalar(elems, large, dst, emit, st)
}

// hashProbeElemsGather is hashProbeElems with the probe half vectorized:
// blocks of up to ProbeStageBlock elements are hashed, bitmap-gathered and
// bit-tested in zmm lanes, and only the compress-stored survivors reach the
// segment-scan loop below — which is the same last-segment-cached scan the
// scalar path runs, reading the survivor's position instead of recomputing
// it. The out arrays live on the stack (ProbeStage's pointers do not
// escape), keeping the warm path allocation-free.
func hashProbeElemsGather(elems []uint32, large *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	n := 0
	survivors := 0
	lb := large.bm
	mBits := lb.Bits()
	words := lb.Words()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	seed := large.hasher.Seed()
	lastSeg := -1
	var segList []uint32
	var outE, outP [simd.ProbeStageBlock]uint32
	done := 0
	for done+16 <= len(elems) {
		blk := elems[done:min(done+simd.ProbeStageBlock, len(elems))]
		ns, consumed := simd.ProbeStage(blk, words, seed, mBits-1, outE[:], outP[:])
		done += consumed
		survivors += ns
		for i := 0; i < ns; i++ {
			x := outE[i]
			if seg := int(outP[i]) >> segShift; seg != lastSeg {
				lastSeg = seg
				segList = reord[offs[seg]:offs[seg+1]]
			}
			if len(segList) >= containsCutover {
				if simd.Contains(segList, x) {
					if dst != nil {
						dst[n] = x
					}
					n++
					if emit != nil {
						emit(x)
					}
				}
				continue
			}
			for _, v := range segList {
				if v == x {
					if dst != nil {
						dst[n] = x
					}
					n++
					if emit != nil {
						emit(x)
					}
					break
				}
				if v > x {
					break
				}
			}
		}
	}
	if st != nil {
		st.Add(stats.CtrHashProbes, uint64(done))
		st.Add(stats.CtrHashSurvivors, uint64(survivors))
	}
	// Sub-16 tail: the scalar loop finishes the remainder (and adds its own
	// share of the counters).
	if done < len(elems) {
		rest := dst
		if dst != nil {
			rest = dst[n:]
		}
		n += hashProbeElemsScalar(elems[done:], large, rest, emit, st)
	}
	return n
}

// hashProbeElemsScalar is the scalar probe loop — the reference semantics of
// hashProbeElems and the only path below the AVX-512 rung.
func hashProbeElemsScalar(elems []uint32, large *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	n := 0
	survivors := 0
	lb := large.bm
	mBits := lb.Bits()
	words := lb.Words()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	hasher := large.hasher
	lastSeg := -1
	var segList []uint32
	for _, x := range elems {
		pos := hasher.Pos(x, mBits)
		if words[pos>>6]&(1<<(pos&63)) == 0 {
			continue
		}
		survivors++
		if seg := int(pos) >> segShift; seg != lastSeg {
			lastSeg = seg
			segList = reord[offs[seg]:offs[seg+1]]
		}
		if simd.AsmActive() && len(segList) >= containsCutover {
			if simd.Contains(segList, x) {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
			}
			continue
		}
		for _, v := range segList {
			if v == x {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
				break
			}
			if v > x {
				break
			}
		}
	}
	if st != nil {
		st.Add(stats.CtrHashProbes, uint64(len(elems)))
		st.Add(stats.CtrHashSurvivors, uint64(survivors))
	}
	return n
}

// CountHash returns |a ∩ b| with the skewed-input strategy of Section VI.
// Complexity O(min(n1, n2)). This is the paper's FESIAhash.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func CountHash(a, b *Set) int {
	if crossPair(a, b) {
		return crossCountFree(a, b)
	}
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	return hashProbeRange(small, large, 0, small.n, nil, nil)
}

// IntersectHash writes a ∩ b into dst using the skewed-input strategy and
// returns the count. Results follow the smaller set's segment order.
// Cross-representation pairs route to the dispatch matrix (hybrid.go).
func IntersectHash(dst []uint32, a, b *Set) int {
	if crossPair(a, b) {
		return crossIntersectFree(dst, a, b)
	}
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	n := 0
	hashProbeRange(small, large, 0, small.n, func(x uint32) {
		dst[n] = x
		n++
	}, nil)
	return n
}

// Count picks the strategy adaptively: the hash probe when one set is
// dramatically smaller (skew below SkewThreshold), the two-step merge
// otherwise — matching the FESIAmerge/FESIAhash crossover of Fig. 11.
func Count(a, b *Set) int {
	if useHash(a, b) {
		return CountHash(a, b)
	}
	return CountMerge(a, b)
}

// Intersect writes a ∩ b into dst with the adaptively chosen strategy and
// returns the count.
func Intersect(dst []uint32, a, b *Set) int {
	if useHash(a, b) {
		return IntersectHash(dst, a, b)
	}
	return IntersectMerge(dst, a, b)
}

func useHash(a, b *Set) bool {
	small, large := a.n, b.n
	if small > large {
		small, large = large, small
	}
	if large == 0 {
		return false
	}
	return float64(small) < SkewThreshold*float64(large)
}

// ---------------------------------------------------------------------------
// k-way intersection (Section VI).
// ---------------------------------------------------------------------------

// CountK returns |s1 ∩ s2 ∩ ... ∩ sk|. The k bitmaps are ANDed together to
// prune segments none of which share a bit; the surviving segments'
// element lists are then intersected pairwise with the specialized kernels.
// Expected work is O(kn/√w + r) (Proposition 2).
//
// This is a compatibility wrapper over a pooled default Executor; callers on
// a hot path should hold their own Executor to keep its chain buffers warm.
func CountK(sets ...*Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountK(sets...)
}

// IntersectK writes the k-way intersection into dst and returns the count.
// dst must have room for the smallest set's length. Compatibility wrapper
// over a pooled default Executor.
func IntersectK(dst []uint32, sets ...*Set) int {
	if dst == nil {
		panic("core: IntersectK requires a destination buffer")
	}
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectK(dst, sets...)
}

// CountKParallel is CountK with the largest bitmap's words partitioned
// across `workers` parts of the persistent shared pool (Section VI's
// multicore scheme applied to the k-way AND). Compatibility wrapper over a
// pooled default Executor.
func CountKParallel(workers int, sets ...*Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountKParallel(workers, sets...)
}

// ---------------------------------------------------------------------------
// Multicore parallelism (Section VI): the larger bitmap's words are
// partitioned across workers; segments never straddle words, so workers
// touch disjoint segment pairs. These compatibility wrappers run on a pooled
// default Executor, whose persistent worker pool replaces the seed's
// per-call goroutine spawning.
// ---------------------------------------------------------------------------

// CountMergeParallel is CountMerge across `workers` parts of the shared pool.
func CountMergeParallel(a, b *Set, workers int) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountMergeParallel(a, b, workers)
}

// IntersectMergeParallel is IntersectMerge across `workers` parts of the
// shared pool. Workers materialize disjoint word ranges into private buffers
// which are concatenated in range order, so the output matches
// IntersectMerge.
func IntersectMergeParallel(dst []uint32, a, b *Set, workers int) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectMergeParallel(dst, a, b, workers)
}

// CountHashParallel applies the skewed-input strategy with the smaller set's
// elements partitioned across workers (the parallelization Section VI
// prescribes when input sizes differ dramatically).
func CountHashParallel(a, b *Set, workers int) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountHashParallel(a, b, workers)
}

// DispatchTrace returns the (sizeA, sizeB) segment-size pairs that the
// two-step intersection would dispatch to kernels, in dispatch order. The
// instruction-cache simulation behind Table II replays this trace. The trace
// is sized exactly by a bitmap pre-pass, so the only allocation is the
// returned slice itself. Cross-representation pairs dispatch no segment
// kernels; the trace is nil.
func DispatchTrace(a, b *Set) [][2]int {
	if crossPair(a, b) {
		return nil
	}
	compatible(a, b)
	x, y := ordered(a, b)
	trace := make([][2]int, 0, bitmap.CountIntersectingSegments(x.bm, y.bm))
	forEachSegPair(x, y, func(sx, sy int) {
		trace = append(trace, [2]int{len(x.segment(sx)), len(y.segment(sy))})
	})
	return trace
}

// ---------------------------------------------------------------------------
// Instrumented intersection for the Fig. 14 performance breakdown.
// ---------------------------------------------------------------------------

// Breakdown reports where time went during a two-step intersection.
type Breakdown struct {
	BitmapTime  time.Duration // step 1: bitmap AND + segment index extraction
	SegmentTime time.Duration // step 2: specialized kernels
	SegPairs    int           // segment pairs surviving the filter (true + false positive)
	Count       int           // final intersection size
}

// CountMergeBreakdown is CountMerge with per-step timing, running on the
// executor's staged-dispatch scratch: pass 1 (bitmap AND + segment index
// extraction) stages the surviving pairs, pass 2 dispatches the kernels, and
// each pass is timed in isolation. The staging buffer is retained across
// calls, so repeated Fig. 14 breakdown sweeps are allocation-free once warm.
// The combined result is identical to CountMerge. Cross-representation pairs
// have no bitmap pass; their whole matrix-dispatched run is reported as
// SegmentTime with zero SegPairs.
func (e *Executor) CountMergeBreakdown(a, b *Set) Breakdown {
	compatible(a, b)
	if crossPair(a, b) {
		start := time.Now()
		n := crossRun(e.plan, &e.denseAnd, a, b, nil, nil, e.st)
		return Breakdown{SegmentTime: time.Since(start), Count: n}
	}
	x, y := ordered(a, b)

	start := time.Now()
	recs := stageSegPairs(x, y, e.staged[:0])
	e.staged = recs
	bitmapTime := time.Since(start)

	start = time.Now()
	n, touch := dispatchStagedCount(&x.disp, x.reordered, y.reordered, recs)
	segTime := time.Since(start)
	e.touchSink += touch

	return Breakdown{
		BitmapTime:  bitmapTime,
		SegmentTime: segTime,
		SegPairs:    len(recs),
		Count:       n,
	}
}

// CountMergeBreakdown is the pooled-executor compatibility wrapper; hot
// breakdown sweeps should hold an Executor to keep its staging buffer warm.
func CountMergeBreakdown(a, b *Set) Breakdown {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountMergeBreakdown(a, b)
}

// HashBreakdown reports where time went during a skewed-input (FESIAhash)
// intersection — the hash-side counterpart of Breakdown, covering the
// strategy CountMergeBreakdown says nothing about.
type HashBreakdown struct {
	StageTime time.Duration // branch-free bitmap probing + survivor compaction
	TouchTime time.Duration // read-ahead touch pass over survivor segment lines
	ScanTime  time.Duration // survivor segment-list scans
	Probes    int           // elements probed (the smaller set's size)
	Survivors int           // probes whose bitmap bit was set (true + false positive)
	Blocks    int           // probeBlock-sized staging blocks processed
	Count     int           // final intersection size
}

// CountHashBreakdown is CountHash with per-phase timing, running the staged
// two-phase probe (batch engine layout) so the branch-free staging, the
// read-ahead touch pass and the segment scans are each timed in isolation.
// The stage buffer is the executor's persistent one, so repeated breakdown
// sweeps are allocation-free once warm. The count is identical to CountHash.
// Cross-representation pairs have no staged probe; their whole run is
// reported as ScanTime with the probing-side size as Probes.
func (e *Executor) CountHashBreakdown(a, b *Set) HashBreakdown {
	compatible(a, b)
	if crossPair(a, b) {
		start := time.Now()
		n := crossRun(e.plan, &e.denseAnd, a, b, nil, nil, e.st)
		return HashBreakdown{
			ScanTime: time.Since(start),
			Probes:   min(a.n, b.n),
			Count:    n,
		}
	}
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	e.ensureProbe()
	stage := e.probeStage
	lb := large.bm
	words := lb.Words()
	mBits := lb.Bits()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	hasher := large.hasher
	elems := small.reordered

	bd := HashBreakdown{Probes: small.n}
	var touch uint64
	for lo := 0; lo < len(elems); lo += probeBlock {
		blk := elems[lo:min(lo+probeBlock, len(elems))]
		bd.Blocks++
		t0 := time.Now()
		ns := 0
		for _, x := range blk {
			p := hasher.Pos(x, mBits)
			hit := int(words[p>>6] >> (p & 63) & 1)
			seg := int(p) >> segShift
			oa, oaEnd := offs[seg], offs[seg+1]
			stage[ns] = probeRec{x, oa, oaEnd}
			ns += hit
		}
		bd.Survivors += ns
		t1 := time.Now()
		bd.StageTime += t1.Sub(t0)
		for i := range stage[:ns] {
			touch += uint64(reord[stage[i].oa])
		}
		t2 := time.Now()
		bd.TouchTime += t2.Sub(t1)
		bd.Count = scanStage(stage[:ns], reord, nil, nil, bd.Count)
		bd.ScanTime += time.Since(t2)
	}
	e.touchSink += uint32(touch)
	return bd
}

// CountHashBreakdown is the pooled-executor compatibility wrapper for the
// hash-side breakdown.
func CountHashBreakdown(a, b *Set) HashBreakdown {
	e := getExecutor()
	defer putExecutor(e)
	return e.CountHashBreakdown(a, b)
}

// HashProbe is one element's outcome in a hash-strategy probe trace.
type HashProbe struct {
	Elem     uint32 // probed element (smaller set, segment order)
	Survived bool   // bitmap bit was set; the segment list was scanned
	SegLen   int    // length of the scanned segment list (0 if filtered out)
	Match    bool   // element present in the larger set
}

// HashProbeTrace returns the per-element outcomes the skewed-input strategy
// would produce, in probe order — the hash-side counterpart of DispatchTrace
// (which covers only the merge strategy's kernel dispatches). The filter rate
// and scanned-segment lengths are the quantities behind the strategy's
// O(min(n1, n2)) bound. The only allocation is the returned slice. Pairs
// involving a non-segmented set never hash-probe a bitmap; the trace is nil.
func HashProbeTrace(a, b *Set) []HashProbe {
	if crossPair(a, b) {
		return nil
	}
	compatible(a, b)
	small, large := a, b
	if small.n > large.n {
		small, large = large, small
	}
	lb := large.bm
	mBits := lb.Bits()
	words := lb.Words()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	hasher := large.hasher
	trace := make([]HashProbe, 0, small.n)
	for _, x := range small.reordered {
		pos := hasher.Pos(x, mBits)
		p := HashProbe{Elem: x}
		if words[pos>>6]&(1<<(pos&63)) != 0 {
			p.Survived = true
			seg := int(pos) >> segShift
			list := reord[offs[seg]:offs[seg+1]]
			p.SegLen = len(list)
			for _, v := range list {
				if v == x {
					p.Match = true
					break
				}
				if v > x {
					break
				}
			}
		}
		trace = append(trace, p)
	}
	return trace
}
