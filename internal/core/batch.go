package core

import (
	"time"

	"fesia/internal/kernels"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// This file implements the batch one-vs-many query engine: intersecting one
// query set against a list of candidate sets, the access pattern of the
// paper's database-query task (Section VII-F, one keyword's posting list vs
// many others) and of triangle counting (one vertex's forward neighbors vs
// each neighbor's list). The engine amortizes per-query work across the
// candidate list: the query set's bitmap words, dispatcher and staging
// scratch stay pinned hot instead of being re-derived per pair, and the
// two-step algorithm runs as a *staged two-pass dispatch* — the split the
// paper's Fig. 14 breakdown instruments, used here as an optimization.
//
// Pass 1 streams the bitmap word-AND and stages every surviving segment pair
// as a compact (oa, oaEnd, ob, obEnd, ctrl) record in a reusable executor
// buffer. Pass 2 walks the staged records and dispatches the specialized
// kernels, touching the reordered data of segments a fixed distance ahead so
// their cache lines are in flight by the time their kernel runs. Separating
// the phases keeps the unpredictable tzcnt/branch phase out of the kernel
// phase's pipeline, and the record walk itself is branch-predictable.

// stagedSeg is one surviving segment pair staged by dispatch pass 1:
// half-open offset ranges into the two sets' reordered arrays plus the
// precomputed jump-table control code (stagedGeneric when either side
// exceeds the table capacity and must take the generic kernel).
type stagedSeg struct {
	oa, oaEnd uint32 // x-side range in the larger-bitmap set's reordered array
	ob, obEnd uint32 // y-side range in the other set's reordered array
	ctrl      int32
}

// stagedGeneric marks a staged pair that falls through to the generic kernel.
const stagedGeneric = int32(-1)

// stageReadAhead is the fixed dispatch-to-touch distance of pass 2: while
// record i's kernel runs, the first cache line of record i+stageReadAhead's
// segment data is being fetched. Segments are tiny (a handful of uint32s),
// so one touch per side covers essentially the whole segment.
const stageReadAhead = 8

// stageSegPairs runs dispatch pass 1: the fused word-AND / segment-extraction
// loop of countMergeRange, staging records instead of calling kernels. x must
// be the larger-bitmap set. Records are appended to recs (reset by the
// caller); the possibly-grown slice is returned.
func stageSegPairs(x, y *Set, recs []stagedSeg) []stagedSeg {
	return stageSegPairsRange(x, y, recs, 0, len(x.bm.Words()))
}

// stageSegPairsRange is stageSegPairs restricted to words [wordLo, wordHi) of
// x's bitmap — the checkpoint unit of the context-aware paths (ctx.go), which
// stage one word block at a time so cancellation is honored between blocks.
func stageSegPairsRange(x, y *Set, recs []stagedSeg, wordLo, wordHi int) []stagedSeg {
	d := &x.disp
	xw, yw := x.bm.Words(), y.bm.Words()
	wordMask := len(yw) - 1
	spw := x.bm.SegmentsPerWord()
	segBits := x.bm.SegBits()
	segMaskY := y.bm.NumSegments() - 1
	xo, yo := x.offsets, y.offsets

	segClear := uint64(1)<<uint(segBits) - 1
	segShift := uint(simd.Tzcnt32(uint32(segBits))) // log2(segBits)
	alignMask := segBits - 1

	i := wordLo
	if simd.AsmActive() && len(yw) >= simd.BlockWords && wordHi-wordLo >= 2*simd.BlockWords {
		// Chunked mask-stream staging: same structure as countMergeRange's
		// fast path, with staging records in place of kernel dispatch.
		loDown := wordLo &^ (simd.BlockWords - 1)
		hiUp := (wordHi + simd.BlockWords - 1) &^ (simd.BlockWords - 1)
		var masks [coreChunkBlocks]uint32
		for cb := loDown; cb < hiUp; {
			nb := (hiUp - cb) / simd.BlockWords
			if nb > coreChunkBlocks {
				nb = coreChunkBlocks
			}
			live := simd.AndSegMasksWrap(masks[:nb], xw, yw, cb, segBits)
			if live != 0 {
				if cb < wordLo {
					masks[0] &^= 1<<uint((wordLo-cb)*spw) - 1
				}
				if end := cb + nb*simd.BlockWords; end > wordHi {
					masks[nb-1] &= 1<<uint((wordHi-(end-simd.BlockWords))*spw) - 1
				}
				for bi := 0; bi < nb; bi++ {
					m := masks[bi]
					if m == 0 {
						continue
					}
					base := (cb + bi*simd.BlockWords) * spw
					for m != 0 {
						seg := base + simd.Tzcnt32(m)
						m &= m - 1
						segY := seg & segMaskY
						oa, oaEnd := xo[seg], xo[seg+1]
						ob, obEnd := yo[segY], yo[segY+1]
						la := int(oaEnd - oa)
						lb := int(obEnd - ob)
						ctrl := stagedGeneric
						if la <= d.Cap && lb <= d.Cap {
							ctrl = int32(int(d.Round[la])<<d.Bits | int(d.Round[lb]))
						}
						recs = append(recs, stagedSeg{oa, oaEnd, ob, obEnd, ctrl})
					}
				}
			}
			cb += nb * simd.BlockWords
		}
		i = wordHi
	}
	for ; i < wordHi; i++ {
		w := xw[i] & yw[i&wordMask]
		if w == 0 {
			continue
		}
		base := i * spw
		for w != 0 {
			bit := simd.Tzcnt64(w)
			segOff := bit &^ alignMask
			w &^= segClear << uint(segOff)
			seg := base + segOff>>segShift
			segY := seg & segMaskY
			oa, oaEnd := xo[seg], xo[seg+1]
			ob, obEnd := yo[segY], yo[segY+1]
			la := int(oaEnd - oa)
			lb := int(obEnd - ob)
			ctrl := stagedGeneric
			if la <= d.Cap && lb <= d.Cap {
				ctrl = int32(int(d.Round[la])<<d.Bits | int(d.Round[lb]))
			}
			recs = append(recs, stagedSeg{oa, oaEnd, ob, obEnd, ctrl})
		}
	}
	return recs
}

// dispatchStagedCount runs dispatch pass 2 for counting: every staged record
// is dispatched to its counting kernel, with the fixed-distance read-ahead
// touch of upcoming segment data. The touched words are accumulated and
// returned so the loads cannot be dead-code-eliminated; callers fold the
// value into a sink.
func dispatchStagedCount(d *kernels.Dispatcher, xr, yr []uint32, recs []stagedSeg) (n int, touch uint32) {
	cnt := d.Count
	for i := range recs {
		if j := i + stageReadAhead; j < len(recs) {
			rj := &recs[j]
			touch += xr[rj.oa] + yr[rj.ob]
		}
		r := &recs[i]
		a := xr[r.oa:r.oaEnd]
		b := yr[r.ob:r.obEnd]
		if r.ctrl == stagedGeneric {
			n += kernels.GenericCount(a, b)
			continue
		}
		n += cnt[r.ctrl](a, b)
	}
	return n, touch
}

// dispatchStagedIntersect is pass 2 for materialization: kernels write into
// dst (which must have room for every pair's smaller side) in staged order —
// the same segment order IntersectMerge produces.
func dispatchStagedIntersect(d *kernels.Dispatcher, dst, xr, yr []uint32, recs []stagedSeg) (n int, touch uint32) {
	inter := d.Inter
	for i := range recs {
		if j := i + stageReadAhead; j < len(recs) {
			rj := &recs[j]
			touch += xr[rj.oa] + yr[rj.ob]
		}
		r := &recs[i]
		a := xr[r.oa:r.oaEnd]
		b := yr[r.ob:r.obEnd]
		if r.ctrl == stagedGeneric {
			n += kernels.GenericIntersect(dst[n:], a, b)
			continue
		}
		n += inter[r.ctrl](dst[n:], a, b)
	}
	return n, touch
}

// countMergeStaged is the staged-dispatch CountMerge used by the batch paths:
// stage into recs, dispatch, return the count and the (possibly grown) record
// buffer. st, when non-nil, receives the exact merge-side counters; kst, when
// non-nil (the sampled fraction of queries), additionally gets the kernel
// histogram replayed from the staged records in a pre-pass so the dispatch
// loop itself stays untouched.
func countMergeStaged(a, b *Set, recs []stagedSeg, st, kst *stats.Shard) (int, []stagedSeg, uint32) {
	x, y := ordered(a, b)
	recs = stageSegPairs(x, y, recs[:0])
	if st != nil {
		if kst != nil {
			recordStagedKernels(kst, recs)
		}
		st.Add(stats.CtrSegPairs, uint64(len(recs)))
		st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
	}
	n, touch := dispatchStagedCount(&x.disp, x.reordered, y.reordered, recs)
	return n, recs, touch
}

// recordStagedKernels replays a staged record list into the kernel-dispatch
// histogram (the staged paths' equivalent of countMergeRange's inline
// per-pair recording; subject to the same query-level sampling). st must be
// non-nil.
func recordStagedKernels(st *stats.Shard, recs []stagedSeg) {
	for i := range recs {
		r := &recs[i]
		st.Kernel(int(r.oaEnd-r.oa), int(r.obEnd-r.ob))
	}
}

// ---------------------------------------------------------------------------
// Staged hash probe: the batch engine's version of the skewed-input strategy.
// ---------------------------------------------------------------------------

// probeBlock is the staging block of the batch hash probe. One block's
// positions fit comfortably in L1 while giving the out-of-order core dozens
// of independent loads to overlap.
const probeBlock = 128

// containsCutover is the segment length above which survivor scans use the
// assembly compare-all-lanes probe instead of the scalar early-exit scan —
// two full ymm registers of elements, enough to amortize the masked tail.
const containsCutover = 16

// batchParallelMinWork is CountManyParallel's serial cutover: batches whose
// estimated element work is below this run on the serial batch path. Sits
// between the measured skewed/c256 regime (~256k units, serial wins by 1.5x)
// and the uniform/c256 regime (~2M units, parallel starts paying off).
const batchParallelMinWork = 1 << 19

// probeRec is one surviving probe staged by phase 2: the probed element and
// its target segment's half-open range in the large set's reordered array.
type probeRec struct{ x, oa, oaEnd uint32 }

// hashProbeStaged probes every element of small against large in fixed-size
// blocks of two phases — the staged-dispatch idea applied to the hash
// strategy. The staging phase is completely branch-free: every element's
// bitmap word, segment bounds and first segment word are loaded
// unconditionally, and survivors are compacted into the stage buffer with a
// conditional index increment instead of a branch. With no unpredictable
// branches in the way, the out-of-order core streams the (cache-missing)
// loads of many probes at once instead of serializing them behind
// mispredicts — the same memory-level-parallelism trick as the merge path's
// two-pass dispatch. The scan phase then walks the staged segment lists,
// whose cache lines the staging phase already set in flight. Matches are
// counted, and either appended to dst (when non-nil) or streamed through
// emit (when non-nil), in the same order hashProbeRange produces.
//
// stage must hold probeBlock entries. The accumulated touch value is
// returned so the read-ahead loads cannot be dead-code-eliminated. st, when
// non-nil, receives the probe/survivor counters at block granularity (the
// block compaction rate of the staged probe).
func hashProbeStaged(small, large *Set, stage []probeRec, dst []uint32, emit Visitor, st *stats.Shard) (int, uint32) {
	if simd.GatherProbeActive() && small.n >= 16 && large.bm.Bits() <= gatherProbeMaxBits {
		return hashProbeStagedGather(small, large, stage, dst, emit, st)
	}
	lb := large.bm
	words := lb.Words()
	mBits := lb.Bits()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	hasher := large.hasher
	elems := small.reordered

	n := 0
	survivors := 0
	var touch uint64
	for lo := 0; lo < len(elems); lo += probeBlock {
		blk := elems[lo:min(lo+probeBlock, len(elems))]
		// Staging phase (branch-free).
		ns := 0
		for _, x := range blk {
			p := hasher.Pos(x, mBits)
			hit := int(words[p>>6] >> (p & 63) & 1)
			seg := int(p) >> segShift
			oa, oaEnd := offs[seg], offs[seg+1]
			stage[ns] = probeRec{x, oa, oaEnd}
			ns += hit
		}
		survivors += ns
		// Touch pass: issue every survivor's first segment load back to back,
		// so the (serialized, short-scan) scan phase finds the lines already
		// in flight. Survivors' segments are never empty — their bit was set.
		for i := range stage[:ns] {
			touch += uint64(reord[stage[i].oa])
		}
		// Scan phase over the staged (and now in-flight) segment lists.
		n = scanStage(stage[:ns], reord, dst, emit, n)
	}
	if st != nil {
		st.Add(stats.CtrHashProbes, uint64(len(elems)))
		st.Add(stats.CtrHashSurvivors, uint64(survivors))
	}
	return n, uint32(touch)
}

// hashProbeStagedGather is hashProbeStaged with the staging phase run
// through the AVX-512 gathered probe: hash, bitmap gather and bit test all
// happen in zmm lanes (simd.ProbeStage), and the stage records are then
// built from the compress-stored survivors only — the segment-bound loads
// the scalar staging phase issues for *every* probe happen just for the
// survivors here. The touch pass and scan phase are unchanged, so match
// order and output are identical. The out arrays live on the stack
// (ProbeStage's pointers do not escape), keeping the warm path
// allocation-free.
func hashProbeStagedGather(small, large *Set, stage []probeRec, dst []uint32, emit Visitor, st *stats.Shard) (int, uint32) {
	lb := large.bm
	words := lb.Words()
	mBits := lb.Bits()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	hasher := large.hasher
	seed := hasher.Seed()
	elems := small.reordered

	n := 0
	survivors := 0
	var touch uint64
	var outE, outP [probeBlock]uint32
	lo := 0
	for lo+16 <= len(elems) {
		blk := elems[lo:min(lo+probeBlock, len(elems))]
		ns, consumed := simd.ProbeStage(blk, words, seed, mBits-1, outE[:], outP[:])
		lo += consumed
		survivors += ns
		for i := 0; i < ns; i++ {
			seg := int(outP[i]) >> segShift
			stage[i] = probeRec{outE[i], offs[seg], offs[seg+1]}
		}
		for i := range stage[:ns] {
			touch += uint64(reord[stage[i].oa])
		}
		n = scanStage(stage[:ns], reord, dst, emit, n)
	}
	// Sub-16 tail: one scalar staging block.
	if lo < len(elems) {
		ns := 0
		for _, x := range elems[lo:] {
			p := hasher.Pos(x, mBits)
			hit := int(words[p>>6] >> (p & 63) & 1)
			seg := int(p) >> segShift
			oa, oaEnd := offs[seg], offs[seg+1]
			stage[ns] = probeRec{x, oa, oaEnd}
			ns += hit
		}
		survivors += ns
		for i := range stage[:ns] {
			touch += uint64(reord[stage[i].oa])
		}
		n = scanStage(stage[:ns], reord, dst, emit, n)
	}
	if st != nil {
		st.Add(stats.CtrHashProbes, uint64(len(elems)))
		st.Add(stats.CtrHashSurvivors, uint64(survivors))
	}
	return n, uint32(touch)
}

// scanStage walks one staging block's surviving probes against the large
// set's segment lists, counting matches and appending to dst / streaming
// through emit when non-nil. n is the running match count (and dst write
// cursor); the updated count is returned.
func scanStage(recs []probeRec, reord, dst []uint32, emit Visitor, n int) int {
	for _, r := range recs {
		x := r.x
		if seg := reord[r.oa:r.oaEnd]; simd.AsmActive() && len(seg) >= containsCutover {
			// Long segments: the 8-lane compare probe beats the scalar
			// early-exit scan once it has a few registers' worth to chew on.
			if simd.Contains(seg, x) {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
			}
			continue
		}
		for _, v := range reord[r.oa:r.oaEnd] {
			if v == x {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
				break
			}
			if v > x {
				break
			}
		}
	}
	return n
}

// probeCache memoizes one set's hash positions for one bitmap size. Within a
// batch call the query set is fixed, so when the query is the smaller (= the
// probing) side of the hash strategy, every same-bitmap-size candidate sees
// the exact same probe positions — the hash need only be computed for the
// first such candidate, not once per candidate. The cache is invalidated at
// the start of every batch call (the query may have changed) and whenever a
// candidate's bitmap size differs from the cached one.
type probeCache struct {
	pos  []uint64
	bits uint64 // bitmap size the cache holds positions for; 0 = invalid
}

// fill recomputes the cache for q against bitmap size mBits.
func (c *probeCache) fill(q *Set, mBits uint64) {
	if cap(c.pos) < q.n {
		c.pos = make([]uint64, q.n)
	}
	c.pos = c.pos[:q.n]
	h := q.hasher
	for i, x := range q.reordered {
		c.pos[i] = h.Pos(x, mBits)
	}
	c.bits = mBits
}

// hashProbeBatch routes one batch hash-strategy step: when the query itself
// is the probing side and big enough to amortize staging, the probe runs on
// the executor's memoized position cache; otherwise it falls through to the
// self-hashing staged probe. On the AVX-512 rung the position cache is
// skipped entirely: the gathered stage recomputes the hash in zmm lanes for
// less than the cache's per-element load costs, and folds the bitmap test
// into the same pass.
func hashProbeBatch(c *probeCache, q, small, large *Set, stage []probeRec, dst []uint32, emit Visitor, st *stats.Shard) (int, uint32) {
	if simd.GatherProbeActive() && large.bm.Bits() <= gatherProbeMaxBits {
		return hashProbeStaged(small, large, stage, dst, emit, st)
	}
	if small == q && small.n >= probeBlock {
		if mBits := large.bm.Bits(); c.bits != mBits {
			c.fill(q, mBits)
		}
		return hashProbeStagedPos(c.pos, small, large, stage, dst, emit, st)
	}
	return hashProbeStaged(small, large, stage, dst, emit, st)
}

// hashProbeStagedPos is hashProbeStaged with the probe positions read from a
// precomputed cache instead of hashed on the fly — the staging phase becomes
// pure loads and shifts.
func hashProbeStagedPos(pos []uint64, small, large *Set, stage []probeRec, dst []uint32, emit Visitor, st *stats.Shard) (int, uint32) {
	lb := large.bm
	words := lb.Words()
	segShift := uint(simd.Tzcnt32(uint32(lb.SegBits()))) // log2(segBits)
	offs := large.offsets
	reord := large.reordered
	elems := small.reordered

	n := 0
	survivors := 0
	var touch uint64
	for lo := 0; lo < len(elems); lo += probeBlock {
		hi := min(lo+probeBlock, len(elems))
		blk := elems[lo:hi]
		posBlk := pos[lo:hi]
		ns := 0
		for k, x := range blk {
			p := posBlk[k]
			hit := int(words[p>>6] >> (p & 63) & 1)
			seg := int(p) >> segShift
			oa, oaEnd := offs[seg], offs[seg+1]
			stage[ns] = probeRec{x, oa, oaEnd}
			ns += hit
		}
		survivors += ns
		for i := range stage[:ns] {
			touch += uint64(reord[stage[i].oa])
		}
		n = scanStage(stage[:ns], reord, dst, emit, n)
	}
	if st != nil {
		st.Add(stats.CtrHashProbes, uint64(len(elems)))
		st.Add(stats.CtrHashSurvivors, uint64(survivors))
	}
	return n, uint32(touch)
}

// ensureProbe sizes the executor's staged-probe buffer and invalidates the
// query position cache (each batch call may carry a different query).
func (e *Executor) ensureProbe() {
	if cap(e.probeStage) < probeBlock {
		e.probeStage = make([]probeRec, probeBlock)
	}
	e.probeStage = e.probeStage[:probeBlock]
	e.qcache.bits = 0
}

// ---------------------------------------------------------------------------
// One-vs-many batch queries.
// ---------------------------------------------------------------------------

// CountMany fills out[i] with |q ∩ candidates[i]| for every candidate,
// exactly matching a loop of Count(q, candidates[i]) — including the
// per-candidate adaptive merge/hash switch — but amortizing query-side work
// across the batch: q's bitmap words, dispatcher and the staging buffer stay
// hot, and the merge pairs run through the staged two-pass dispatch. out must
// have at least len(candidates) entries. Zero heap allocations once the
// staging buffer has grown to the workload's largest candidate.
func (e *Executor) CountMany(q *Set, candidates []*Set, out []int) {
	if len(out) < len(candidates) {
		panic("core: CountMany output shorter than candidate list")
	}
	if len(candidates) == 0 {
		return
	}
	st := e.st
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	e.ensureProbe()
	recs := e.staged
	var touch uint32
	h := e.plan
	for i, c := range candidates {
		compatible(q, c)
		switch {
		case c.n == 0 || q.n == 0:
			out[i] = 0
		case crossPair(q, c):
			out[i] = crossRun(h, &e.denseAnd, q, c, nil, nil, st)
		default:
			ch, hash := planSegSeg(h, st, q, c)
			pstart := planStart(ch)
			if hash {
				small, large := q, c
				if small.n > large.n {
					small, large = large, small
				}
				var t uint32
				out[i], t = hashProbeBatch(&e.qcache, q, small, large, e.probeStage, nil, nil, st)
				touch += t
			} else {
				var n int
				var t uint32
				n, recs, t = countMergeStaged(q, c, recs, st, e.kernelShard())
				out[i] = n
				touch += t
			}
			planRecord(h, ch, pstart)
		}
	}
	e.staged = recs
	e.touchSink += touch
	if st != nil {
		st.Add(stats.CtrBatchCandidates, uint64(len(candidates)))
		observeSince(st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
}

// IntersectManyInto writes q ∩ candidates[i] for every candidate into dst,
// back to back, recording each candidate's count in counts[i] and returning
// the total number of elements written. Per-candidate results match
// Intersect(dst, q, candidates[i]) exactly (same strategy choice, same
// segment order). dst must have room for the sum over candidates of
// min(q.Len(), candidate.Len()); counts must have at least len(candidates)
// entries. Zero heap allocations once warm.
func (e *Executor) IntersectManyInto(dst []uint32, counts []int, q *Set, candidates []*Set) int {
	if len(counts) < len(candidates) {
		panic("core: IntersectManyInto counts shorter than candidate list")
	}
	st := e.st
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	e.ensureProbe()
	recs := e.staged
	var touch uint32
	h := e.plan
	total := 0
	for i, c := range candidates {
		compatible(q, c)
		n := 0
		switch {
		case c.n == 0 || q.n == 0:
			// nothing to write
		case crossPair(q, c):
			n = crossRun(h, &e.denseAnd, q, c, dst[total:], nil, st)
		default:
			ch, hash := planSegSeg(h, st, q, c)
			pstart := planStart(ch)
			if hash {
				small, large := q, c
				if small.n > large.n {
					small, large = large, small
				}
				var t uint32
				n, t = hashProbeBatch(&e.qcache, q, small, large, e.probeStage, dst[total:], nil, st)
				touch += t
			} else {
				x, y := ordered(q, c)
				recs = stageSegPairs(x, y, recs[:0])
				if st != nil {
					if kst := e.kernelShard(); kst != nil {
						recordStagedKernels(kst, recs)
					}
					st.Add(stats.CtrSegPairs, uint64(len(recs)))
					st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
				}
				var t uint32
				n, t = dispatchStagedIntersect(&x.disp, dst[total:], x.reordered, y.reordered, recs)
				touch += t
			}
			planRecord(h, ch, pstart)
		}
		counts[i] = n
		total += n
	}
	e.staged = recs
	e.touchSink += touch
	if st != nil {
		st.Add(stats.CtrBatchCandidates, uint64(len(candidates)))
		observeSince(st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
	return total
}

// VisitMany streams every q ∩ candidates[i] through emit as (candidate
// index, element) pairs, in the same per-candidate order IntersectManyInto
// writes, without materializing any result. The only steady-state allocation
// is one adapter closure per call.
func (e *Executor) VisitMany(q *Set, candidates []*Set, emit func(candidate int, v uint32)) {
	st := e.st
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	e.ensureProbe()
	recs := e.staged
	scratch := e.scratch
	h := e.plan
	cand := 0
	emit1 := func(v uint32) { emit(cand, v) }
	for i, c := range candidates {
		compatible(q, c)
		cand = i
		switch {
		case c.n == 0 || q.n == 0:
			// nothing to emit
		case crossPair(q, c):
			crossRun(h, &e.denseAnd, q, c, nil, emit1, st)
		default:
			ch, hash := planSegSeg(h, st, q, c)
			pstart := planStart(ch)
			if hash {
				small, large := q, c
				if small.n > large.n {
					small, large = large, small
				}
				_, t := hashProbeBatch(&e.qcache, q, small, large, e.probeStage, nil, emit1, st)
				e.touchSink += t
			} else {
				x, y := ordered(q, c)
				recs = stageSegPairs(x, y, recs[:0])
				if st != nil {
					if kst := e.kernelShard(); kst != nil {
						recordStagedKernels(kst, recs)
					}
					st.Add(stats.CtrSegPairs, uint64(len(recs)))
					st.Add(stats.CtrSegmentsScanned, uint64(x.bm.NumSegments()))
				}
				scratch = growU32(scratch, max(min(x.maxSeg, y.maxSeg), 1))
				d := &x.disp
				xr, yr := x.reordered, y.reordered
				for _, r := range recs {
					a := xr[r.oa:r.oaEnd]
					b := yr[r.ob:r.obEnd]
					if r.ctrl == stagedGeneric {
						kernels.GenericVisit(a, b, emit1)
						continue
					}
					n := d.Inter[r.ctrl](scratch, a, b)
					for _, v := range scratch[:n] {
						emit(i, v)
					}
				}
			}
			planRecord(h, ch, pstart)
		}
	}
	e.staged = recs
	e.scratch = scratch
	if st != nil {
		st.Add(stats.CtrBatchCandidates, uint64(len(candidates)))
		observeSince(st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
}

// CountManyParallel is CountMany with the *candidate list* partitioned across
// `workers` parts of the executor's persistent pool — finer-grained and
// better balanced than per-pair bitmap-word splitting when candidates are
// small. Candidates are scheduled in descending size order and dealt to
// workers round-robin, so no worker ends up with all the heavy candidates.
// Each worker stages and dispatches in its own persistent buffer; out[i] is
// written by exactly one worker.
func (e *Executor) CountManyParallel(q *Set, candidates []*Set, out []int, workers int) {
	if len(out) < len(candidates) {
		panic("core: CountManyParallel output shorter than candidate list")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		e.CountMany(q, candidates, out)
		return
	}
	// Work-size cutover: a batch whose total work cannot amortize the pool
	// hand-off runs serially on the warm batch path — at small scale the
	// fork/join and per-worker cache re-warming cost more than they save
	// (BENCH_batch.json's skewed/c256 regime). The proxy charges each
	// candidate its strategy's dominant term: probes for the hash side,
	// both segment streams for the merge side.
	work := 0
	for _, c := range candidates {
		switch {
		case crossPair(q, c):
			work += q.n + c.n
		case useHash(q, c):
			work += min(q.n, c.n)
		default:
			work += q.n + c.n
		}
	}
	if work < batchParallelMinWork {
		e.CountMany(q, candidates, out)
		return
	}
	var start time.Time
	if e.st != nil {
		start = time.Now()
	}
	// Size-ordered schedule: sort candidate indices by descending set size,
	// then deal index k to worker k mod workers. Round-robin over a sorted
	// order bounds any worker's load at (total + max)/workers.
	if cap(e.sched) < len(candidates) {
		e.sched = make([]int32, len(candidates))
	}
	sched := e.sched[:len(candidates)]
	for i := range sched {
		sched[i] = int32(i)
	}
	sortIdxByLenDesc(sched, candidates)
	e.ensureWorkers(workers)
	e.getPool().Do(workers, func(w int) {
		ws := &e.workers[w]
		if cap(ws.probeStage) < probeBlock {
			ws.probeStage = make([]probeRec, probeBlock)
		}
		ws.qcache.bits = 0
		recs := ws.staged
		var touch uint32
		h := ws.plan
		seq := 0 // per-worker merge-candidate index for kernel sampling
		for k := w; k < len(sched); k += workers {
			i := sched[k]
			c := candidates[i]
			compatible(q, c)
			switch {
			case c.n == 0 || q.n == 0:
				out[i] = 0
			case crossPair(q, c):
				out[i] = crossRun(h, &ws.denseAnd, q, c, nil, nil, ws.st)
			default:
				ch, hash := planSegSeg(h, ws.st, q, c)
				pstart := planStart(ch)
				if hash {
					small, large := q, c
					if small.n > large.n {
						small, large = large, small
					}
					var t uint32
					out[i], t = hashProbeBatch(&ws.qcache, q, small, large, ws.probeStage, nil, nil, ws.st)
					touch += t
				} else {
					var n int
					var t uint32
					n, recs, t = countMergeStaged(q, c, recs, ws.st, sampleShard(ws.st, seq))
					seq++
					out[i] = n
					touch += t
				}
				planRecord(h, ch, pstart)
			}
		}
		ws.staged = recs
		ws.touch = touch
	})
	if e.st != nil {
		e.st.Add(stats.CtrBatchCandidates, uint64(len(candidates)))
		observeSince(e.st, stats.CtrQueriesBatch, stats.LatBatch, start)
	}
}

// ---------------------------------------------------------------------------
// Pooled compatibility wrappers; hot loops should hold their own Executor.
// ---------------------------------------------------------------------------

// CountMany fills out[i] with |q ∩ candidates[i]| on a pooled default
// Executor.
func CountMany(q *Set, candidates []*Set, out []int) {
	e := getExecutor()
	defer putExecutor(e)
	e.CountMany(q, candidates, out)
}

// IntersectManyInto writes every q ∩ candidates[i] into dst back to back on
// a pooled default Executor; see Executor.IntersectManyInto.
func IntersectManyInto(dst []uint32, counts []int, q *Set, candidates []*Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.IntersectManyInto(dst, counts, q, candidates)
}

// CountManyParallel is CountMany partitioned across `workers` parts of the
// shared pool on a pooled default Executor.
func CountManyParallel(q *Set, candidates []*Set, out []int, workers int) {
	e := getExecutor()
	defer putExecutor(e)
	e.CountManyParallel(q, candidates, out, workers)
}

// sortIdxByLenDesc heap-sorts idx in place so that sets[idx[0]] is the
// largest set — no allocation, unlike sort.Slice.
func sortIdxByLenDesc(idx []int32, sets []*Set) {
	// Build a min-heap on set length, then pop minima into the tail: the
	// smallest sets fill the slice back-to-front, leaving descending order.
	less := func(a, b int32) bool { return sets[a].n < sets[b].n }
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(idx, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		idx[0], idx[end] = idx[end], idx[0]
		siftDown(idx, 0, end, less)
	}
}

func siftDown(idx []int32, root, end int, less func(a, b int32) bool) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(idx[child+1], idx[child]) {
			child++
		}
		if !less(idx[child], idx[root]) {
			return
		}
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}
