package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic invariants of set intersection, checked with testing/quick on
// top of the FESIA implementation.

func TestInvariantSelfIntersection(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustNewSet(randSet(rng, int(n%3000), 1<<16), DefaultConfig())
		return CountMerge(s, s) == s.Len() &&
			CountHash(s, s) == s.Len() &&
			Count(s, s) == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInvariantCommutativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNewSet(randSet(rng, rng.Intn(2000), 1<<14), DefaultConfig())
		b := MustNewSet(randSet(rng, rng.Intn(2000), 1<<14), DefaultConfig())
		return CountMerge(a, b) == CountMerge(b, a) &&
			CountHash(a, b) == CountHash(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The intersection is bounded by both inputs, and intersecting with a
// superset is the identity.
func TestInvariantBoundsAndAbsorption(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		elems := randSet(rng, 1000+rng.Intn(1000), 1<<15)
		sub := elems[:len(elems)/2]
		super := MustNewSet(elems, DefaultConfig())
		subset := MustNewSet(sub, DefaultConfig())
		got := CountMerge(super, subset)
		return got == subset.Len() && got <= super.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Associativity through the k-way path: CountK(a,b,c) equals nested 2-way
// materialized intersections in either association order.
func TestInvariantKWayAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		la := randSet(rng, 600, 3000)
		lb := randSet(rng, 600, 3000)
		lc := randSet(rng, 600, 3000)
		a := MustNewSet(la, DefaultConfig())
		b := MustNewSet(lb, DefaultConfig())
		c := MustNewSet(lc, DefaultConfig())

		nested := func(x, y, z *Set) int {
			buf := make([]uint32, x.Len())
			n := IntersectMerge(buf, x, y)
			xy := MustNewSet(buf[:n], DefaultConfig())
			return CountMerge(xy, z)
		}
		k := CountK(a, b, c)
		return k == nested(a, b, c) && k == nested(b, c, a) && k == nested(c, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Parallel and sequential materialization must produce the identical
// sequence (not just the same multiset): range-partitioned workers preserve
// segment order.
func TestInvariantParallelOrderExact(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 10; trial++ {
		a := MustNewSet(randSet(rng, 3000, 1<<15), DefaultConfig())
		b := MustNewSet(randSet(rng, 3000, 1<<15), DefaultConfig())
		seq := make([]uint32, 3000)
		par := make([]uint32, 3000)
		ns := IntersectMerge(seq, a, b)
		np := IntersectMergeParallel(par, a, b, 1+rng.Intn(7))
		if ns != np {
			t.Fatalf("counts differ: %d vs %d", ns, np)
		}
		for i := 0; i < ns; i++ {
			if seq[i] != par[i] {
				t.Fatalf("order differs at %d: %d vs %d", i, seq[i], par[i])
			}
		}
	}
}

// TestConcurrentReaders validates the documented claim that a Set is safe
// for concurrent reads: many goroutines hammer the same pair of sets with
// every read operation while the race detector watches.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := MustNewSet(randSet(rng, 5000, 1<<16), DefaultConfig())
	b := MustNewSet(randSet(rng, 5000, 1<<16), DefaultConfig())
	wantMerge := CountMerge(a, b)
	wantHash := CountHash(a, b)

	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				switch (g + i) % 5 {
				case 0:
					if CountMerge(a, b) != wantMerge {
						done <- errMismatch
						return
					}
				case 1:
					if CountHash(a, b) != wantHash {
						done <- errMismatch
						return
					}
				case 2:
					a.Contains(uint32(i * 37))
				case 3:
					dst := make([]uint32, 5000)
					if IntersectMerge(dst, a, b) != wantMerge {
						done <- errMismatch
						return
					}
				case 4:
					if CountMergeParallel(a, b, 4) != wantMerge {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent read returned a wrong result" }

// Every element reported by IntersectMerge is genuinely in both inputs, and
// every common element is reported exactly once (no duplicates).
func TestInvariantSoundAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		la := randSet(rng, rng.Intn(1500), 1<<13)
		lb := randSet(rng, rng.Intn(1500), 1<<13)
		a := MustNewSet(la, DefaultConfig())
		b := MustNewSet(lb, DefaultConfig())
		dst := make([]uint32, min(a.Len(), b.Len())+1)
		n := IntersectMerge(dst, a, b)
		seen := map[uint32]bool{}
		for _, v := range dst[:n] {
			if seen[v] {
				return false // duplicate
			}
			seen[v] = true
			if !a.Contains(v) || !b.Contains(v) {
				return false // unsound
			}
		}
		for _, v := range la {
			if b.Contains(v) && a.Contains(v) && !seen[v] {
				return false // incomplete
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
