package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func drained(g *DrainGroup) bool {
	select {
	case <-g.Drained():
		return true
	default:
		return false
	}
}

func TestDrainGroupLifecycle(t *testing.T) {
	g := NewDrainGroup()
	if drained(g) {
		t.Fatal("fresh group reports drained")
	}
	g.Acquire()
	g.Retire() // owner gone, one reader still in flight
	if drained(g) {
		t.Fatal("drained with a reader in flight")
	}
	if got := g.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	g.Release()
	select {
	case <-g.Drained():
	case <-time.After(time.Second):
		t.Fatal("group never drained after last release")
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

func TestDrainGroupRetireWithNoReaders(t *testing.T) {
	g := NewDrainGroup()
	g.Retire()
	if !drained(g) {
		t.Fatal("owner-only group not drained after Retire")
	}
}

// TestDrainGroupSwapPattern exercises the documented acquire-recheck pattern
// under concurrency: readers spin acquiring whatever epoch is current while
// the main goroutine performs pointer flips, and every retired epoch must
// drain. The invariant under test is the serving tier's: after Drained fires,
// no reader can still hold (or newly take) a reference to that epoch.
func TestDrainGroupSwapPattern(t *testing.T) {
	type epoch struct {
		drain *DrainGroup
		gen   uint64
	}
	var current atomic.Pointer[epoch]
	current.Store(&epoch{drain: NewDrainGroup()})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var uses atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for {
					e := current.Load()
					e.drain.Acquire()
					if current.Load() == e {
						if drained(e.drain) {
							t.Error("acquired an epoch that already drained")
						}
						uses.Add(1)
						e.drain.Release()
						break
					}
					e.drain.Release()
				}
			}
		}()
	}

	// Wait for the readers to actually start acquiring, so the swap storm
	// runs against live contention rather than finishing before the readers
	// are scheduled.
	for start := time.Now(); uses.Load() == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("readers never started")
		}
		time.Sleep(time.Millisecond)
	}

	for gen := uint64(1); gen <= 50; gen++ {
		old := current.Swap(&epoch{drain: NewDrainGroup(), gen: gen})
		old.drain.Retire()
		select {
		case <-old.drain.Drained():
		case <-time.After(5 * time.Second):
			t.Fatalf("epoch %d never drained", gen-1)
		}
	}
	close(stop)
	wg.Wait()
	if uses.Load() == 0 {
		t.Fatal("readers never used an epoch")
	}
}
