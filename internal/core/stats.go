package core

import (
	"sync/atomic"
	"time"

	"fesia/internal/stats"
)

// Observability wiring. The query engine records into the internal/stats
// sharded sink following its ownership model: an Executor owns one
// single-writer Shard for its sequential paths and one per parallel worker
// slot, so the hot loops update plain padded memory with relaxed atomics and
// never contend. Every instrumented site sits behind a `st == nil` check —
// with stats disabled (the default) the hot paths cost exactly that
// predictable branch and nothing else, and the recording code is never
// reached.
//
// Sources without single-writer discipline — the shared worker pool, the
// snapshot codecs — record through the process-global sink's multi-writer
// shard, loaded from an atomic pointer per event (per Do call / per file,
// never per element).

// globalStats is the process-wide sink, set once by EnableStats. Executors
// created after EnableStats attach to it automatically (including the pooled
// default executors behind the package-level wrappers, which attach lazily on
// checkout).
var globalStats atomic.Pointer[stats.Sink]

// EnableStats installs s as the process-global observability sink. Call once
// at startup, before building executors; executors created earlier keep
// running uninstrumented until EnableStats is called on them directly.
// Passing nil stops future attachments but does not detach live executors.
func EnableStats(s *stats.Sink) { globalStats.Store(s) }

// StatsSink returns the process-global sink, or nil when stats are disabled.
func StatsSink() *stats.Sink { return globalStats.Load() }

// statsInc bumps a counter on the global sink's multi-writer shard, if stats
// are enabled. For per-operation events only (snapshot codec outcomes, pool
// bookkeeping) — never per element.
func statsInc(c stats.Counter) {
	if s := globalStats.Load(); s != nil {
		s.Inc(c)
	}
}

// statsOutcome records one operation's success-or-error outcome pair.
func statsOutcome(err error, ok, bad stats.Counter) {
	if err != nil {
		statsInc(bad)
		return
	}
	statsInc(ok)
}

// EnableStats attaches the executor (and its existing parallel worker slots)
// to a sink. Each slot gets its own single-writer shard, so the parallel
// paths record without contention. Calling it again with the same sink is a
// no-op; an executor records into at most one sink for its whole life.
func (e *Executor) EnableStats(s *stats.Sink) {
	if s == nil || e.sink != nil {
		return
	}
	e.sink = s
	e.st = s.NewShard()
	for i := range e.workers {
		e.workers[i].st = s.NewShard()
	}
}

// Stats returns a merged snapshot of the sink this executor records into
// (the whole sink's view, not just this executor's share). The zero Snapshot
// is returned when stats are disabled.
func (e *Executor) Stats() stats.Snapshot {
	if e.sink == nil {
		return stats.Snapshot{}
	}
	return e.sink.Snapshot()
}

// maybeAttachStats wires a fresh executor to the global sink when one is
// installed — the auto-attachment path of NewExecutor and the pooled default
// executors.
func (e *Executor) maybeAttachStats() {
	if e.sink == nil {
		if s := globalStats.Load(); s != nil {
			e.EnableStats(s)
		}
	}
}

// kernelSampled reports whether the current merge query should record its
// per-pair kernel-dispatch histogram, advancing the executor's query sequence:
// 1 in stats.KernelSampleRate merge queries are sampled (always false with
// stats disabled). The scalar counters — segment pairs, segments scanned,
// latencies — are never sampled; they stay exact on every query. Per-pair
// histogram recording on every query costs ~10% on kernel-bound merge
// workloads, an order of magnitude over the <3% enabled-overhead budget, and
// the dispatch-size distribution is stable across queries, so sampling keeps
// the Table II signal at ~1/8th the cost.
func (e *Executor) kernelSampled() bool {
	if e.st == nil {
		return false
	}
	q := e.qseq
	e.qseq++
	return q%stats.KernelSampleRate == 0
}

// kernelShard returns the shard the current query's kernel-dispatch records go
// to — the executor's own shard when the query is sampled, nil otherwise.
func (e *Executor) kernelShard() *stats.Shard {
	if e.kernelSampled() {
		return e.st
	}
	return nil
}

// sampleShard is the worker-side sampling helper: item seq of a worker's share
// records kernels into st only when it falls on the sampling grid. Workers
// cannot touch the executor's query sequence (single-writer discipline), so
// the batch-parallel paths sample by per-worker item index instead.
func sampleShard(st *stats.Shard, seq int) *stats.Shard {
	if st != nil && seq%stats.KernelSampleRate == 0 {
		return st
	}
	return nil
}

// observeSince records one query's strategy count and latency. The two
// time.Now calls around a query are the only instrumentation overhead paid
// at query granularity (~40ns, invisible next to any real intersection).
func observeSince(st *stats.Shard, q stats.Counter, h stats.LatHist, start time.Time) {
	st.Inc(q)
	st.Observe(h, time.Since(start))
}
