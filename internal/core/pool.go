package core

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size set of persistent worker goroutines for the parallel
// intersection paths (Section VI, multicore). The seed implementation spawned
// fresh goroutines on every *Parallel call; for an online serving system the
// query is the cheap repeated step, so the goroutines must be part of the
// one-time setup. Workers park on a channel receive between queries, which
// costs nothing while idle.
//
// A Pool is safe for concurrent use; independent queries may overlap on the
// same pool.
type Pool struct {
	tasks chan poolTask
	size  int
}

type poolTask struct {
	fn   func(part int)
	part int
	wg   *sync.WaitGroup
}

// NewPool starts a pool of `workers` persistent goroutines (minimum 1).
// Pools are never torn down: they are created once per process (or test) and
// their workers park between calls.
//
// The task channel is deliberately unbuffered: a successful send means a
// parked worker has taken the task and will run it. A buffered channel could
// strand tasks in the buffer while every worker is blocked in a nested Do's
// wait, which deadlocks; with a rendezvous handoff that state cannot exist.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan poolTask), size: workers}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		t.fn(t.part)
		t.wg.Done()
	}
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Do runs fn(0), fn(1), ..., fn(parts-1) and returns when all calls have
// completed. Part 0 always runs on the calling goroutine; the rest are handed
// to parked pool workers. When no worker is free (another query in flight, or
// a nested Do from inside a part), surplus parts run inline on the caller
// instead of blocking, so Do can never deadlock.
func (p *Pool) Do(parts int, fn func(part int)) {
	if parts <= 1 {
		if parts == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for i := 1; i < parts; i++ {
		select {
		case p.tasks <- poolTask{fn, i, &wg}:
		default:
			fn(i)
			wg.Done()
		}
	}
	fn(0)
	wg.Wait()
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide worker pool, sized to GOMAXPROCS and
// created on first use. Every parallel intersection path — the *Parallel
// functions here and the triangle-counting drivers in internal/graph — runs
// on this pool unless handed a private one.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPool
}
