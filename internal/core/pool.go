package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"fesia/internal/stats"
)

// Pool is a fixed-size set of persistent worker goroutines for the parallel
// intersection paths (Section VI, multicore). The seed implementation spawned
// fresh goroutines on every *Parallel call; for an online serving system the
// query is the cheap repeated step, so the goroutines must be part of the
// one-time setup. Workers park on a channel receive between queries, which
// costs nothing while idle.
//
// A Pool is safe for concurrent use; independent queries may overlap on the
// same pool.
//
// Fault containment: a panic inside a task does not kill the worker goroutine
// (the pool's effective size never shrinks) and cannot strand Do's wait — the
// worker recovers the panic, releases its WaitGroup slot, and parks for the
// next task. Do re-raises the first captured panic on its own goroutine as a
// *TaskPanic carrying the original panic value and stack, after every part
// has finished. Query state is never shared between parts, so the surviving
// parts' work is unaffected.
type Pool struct {
	tasks     chan poolTask
	size      int
	alive     atomic.Int64 // live worker goroutines, for leak checks and tests
	closeOnce sync.Once
	workerWG  sync.WaitGroup
}

type poolTask struct {
	fn   func(part int)
	part int
	g    *doGroup
}

// doGroup is the per-Do completion state shared by the caller and the pool
// workers running its parts: the WaitGroup the caller blocks on and the slot
// holding the first panic any part raised.
type doGroup struct {
	wg    sync.WaitGroup
	panMu sync.Mutex
	pan   *TaskPanic
}

// capture records the first panic observed across the group's parts.
func (g *doGroup) capture(part int, v any) {
	statsInc(stats.CtrPoolPanics)
	tp := &TaskPanic{Part: part, Value: v, Stack: debug.Stack()}
	g.panMu.Lock()
	if g.pan == nil {
		g.pan = tp
	}
	g.panMu.Unlock()
}

// rethrow re-raises the first captured panic, if any, on the caller.
func (g *doGroup) rethrow() {
	g.panMu.Lock()
	tp := g.pan
	g.panMu.Unlock()
	if tp != nil {
		panic(tp)
	}
}

// TaskPanic is the value Pool.Do panics with when one of its parts panicked:
// the original panic value plus the stack captured at the point of the panic,
// so the fault's origin survives the hop from the worker goroutine to the Do
// caller. Callers that recover from Do may unwrap Value to inspect the
// original panic.
type TaskPanic struct {
	Part  int    // which part panicked
	Value any    // the original panic value
	Stack []byte // debug.Stack() captured inside the panicking task
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("core: pool task (part %d) panicked: %v\ntask stack:\n%s", p.Part, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As see through the containment wrapper.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// NewPool starts a pool of `workers` persistent goroutines (minimum 1).
// The shared pool is never torn down; private pools (tests, short-lived
// services) may release their workers with Close.
//
// The task channel is deliberately unbuffered: a successful send means a
// parked worker has taken the task and will run it. A buffered channel could
// strand tasks in the buffer while every worker is blocked in a nested Do's
// wait, which deadlocks; with a rendezvous handoff that state cannot exist.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan poolTask), size: workers}
	p.alive.Add(int64(workers))
	p.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer func() {
		p.alive.Add(-1)
		p.workerWG.Done()
	}()
	for t := range p.tasks {
		t.run()
	}
}

// run executes one task part, containing any panic: the group's WaitGroup is
// always released and the panic (if any) is parked in the group for Do to
// re-raise, so the worker goroutine survives.
func (t poolTask) run() {
	defer t.g.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.g.capture(t.part, r)
		}
	}()
	t.fn(t.part)
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Alive returns the number of live worker goroutines. It equals Size for the
// pool's whole life (recovered task panics do not kill workers) and drops to
// zero after Close — the property leak-checked tests assert.
func (p *Pool) Alive() int { return int(p.alive.Load()) }

// Close stops the pool's workers and blocks until every one has exited.
// Close is idempotent. It must not be called while a Do is in flight, and Do
// must not be called after Close; the shared pool is never closed.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.tasks)
		p.workerWG.Wait()
	})
}

// Do runs fn(0), fn(1), ..., fn(parts-1) and returns when all calls have
// completed. Part 0 always runs on the calling goroutine; the rest are handed
// to parked pool workers. When no worker is free (another query in flight, or
// a nested Do from inside a part), surplus parts run inline on the caller
// instead of blocking, so Do can never deadlock.
//
// If any part panics, every other part still runs to completion and Do then
// panics with a *TaskPanic wrapping the first captured panic value and its
// original stack. The pool itself is unaffected: no worker dies, and the pool
// remains usable for subsequent calls.
func (p *Pool) Do(parts int, fn func(part int)) {
	if parts <= 0 {
		return
	}
	// Pool events go to the global sink's shared shard: Do may run on any
	// goroutine, so the single-writer shard discipline does not apply. Loaded
	// once per Do, never per part.
	sk := globalStats.Load()
	if sk != nil {
		sk.Inc(stats.CtrPoolDo)
	}
	var g doGroup
	if parts > 1 {
		g.wg.Add(parts - 1)
		pooled, inline := uint64(0), uint64(0)
		for i := 1; i < parts; i++ {
			select {
			case p.tasks <- poolTask{fn, i, &g}:
				pooled++
			default:
				poolTask{fn, i, &g}.run()
				inline++
			}
		}
		if sk != nil {
			sk.Add(stats.CtrPoolPartsPooled, pooled)
			sk.Add(stats.CtrPoolPartsInline, inline)
		}
	}
	// Part 0 runs on the caller, with the same containment as pooled parts so
	// the in-flight workers are always awaited before any panic propagates.
	g.wg.Add(1)
	poolTask{fn, 0, &g}.run()
	g.wg.Wait()
	// Done must be counted before rethrow, or a contained panic would leak an
	// in-flight unit into the gauge forever.
	if sk != nil {
		sk.Inc(stats.CtrPoolDoDone)
	}
	g.rethrow()
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide worker pool, sized to GOMAXPROCS and
// created on first use. Every parallel intersection path — the *Parallel
// functions here and the triangle-counting drivers in internal/graph — runs
// on this pool unless handed a private one. The shared pool is never closed.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() {
		sharedPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return sharedPool
}
