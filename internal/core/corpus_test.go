package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"fesia/internal/testutil"
)

// corpusFixture builds a small arena corpus whose serialized stream stays in
// the low kilobytes, so the exhaustive truncation and byte-flip sweeps remain
// cheap.
func corpusFixture(t *testing.T, seed int64, numSets, maxElems int) []*Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]uint32, numSets)
	for i := range lists {
		lists[i] = randSet(rng, rng.Intn(maxElems+1), 1<<14)
	}
	sets, err := BuildSets(lists, DefaultConfig())
	if err != nil {
		t.Fatalf("BuildSets: %v", err)
	}
	return sets
}

func corpusBytes(t *testing.T, sets []*Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteCorpus(&buf, sets)
	if err != nil {
		t.Fatalf("WriteCorpus: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteCorpus reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestCorpusRoundTrip(t *testing.T) {
	sets := corpusFixture(t, 71, 9, 120) // includes empty sets (rng.Intn can be 0)
	data := corpusBytes(t, sets)
	got, err := ReadCorpus(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if len(got) != len(sets) {
		t.Fatalf("round trip returned %d sets, want %d", len(got), len(sets))
	}
	for i := range sets {
		// A loaded set must serialize to the identical per-set stream — the
		// strongest structural equality available.
		var want, have bytes.Buffer
		if _, err := sets[i].WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if _, err := got[i].WriteTo(&have); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), have.Bytes()) {
			t.Fatalf("set %d: round trip changed serialized form", i)
		}
	}
	// Loaded sets must intersect correctly against live ones and each other.
	for i := range sets {
		for j := range sets {
			if Count(got[i], got[j]) != Count(sets[i], sets[j]) {
				t.Fatalf("loaded sets %d,%d intersect differently", i, j)
			}
		}
		if Count(got[i], sets[i]) != sets[i].Len() {
			t.Fatalf("loaded set %d does not match its original", i)
		}
	}
}

func TestCorpusEmpty(t *testing.T) {
	data := corpusBytes(t, nil)
	got, err := ReadCorpus(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadCorpus(empty corpus): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty corpus round-tripped to %d sets", len(got))
	}
}

func TestWriteCorpusRejectsMixedConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := MustNewSet(randSet(rng, 50, 1<<12), DefaultConfig())
	cfg := DefaultConfig()
	cfg.Seed = 12345
	b := MustNewSet(randSet(rng, 50, 1<<12), cfg)
	if _, err := WriteCorpus(&bytes.Buffer{}, []*Set{a, b}); err == nil {
		t.Fatal("mixed-config corpus accepted")
	}
}

// TestCorpusDetectsTruncation: a snapshot cut at EVERY possible offset must
// fail to load — never panic, never succeed.
func TestCorpusDetectsTruncation(t *testing.T) {
	sets := corpusFixture(t, 73, 4, 80)
	data := corpusBytes(t, sets)
	testutil.ForEachTruncation(data, func(n int, trunc []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadCorpus panicked on %d-byte truncation: %v", n, r)
			}
		}()
		if _, err := ReadCorpus(bytes.NewReader(trunc)); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded successfully", n, len(data))
		}
	})
}

// TestCorpusDetectsByteFlips: flipping EVERY byte of the snapshot, one at a
// time, must fail the load. 100% detection is the acceptance bar — the
// trailing whole-file CRC32C guarantees it for single-byte damage.
func TestCorpusDetectsByteFlips(t *testing.T) {
	sets := corpusFixture(t, 74, 3, 60)
	data := corpusBytes(t, sets)
	testutil.ForEachByteFlip(data, func(pos int, corrupted []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadCorpus panicked on flip at byte %d: %v", pos, r)
			}
		}()
		if _, err := ReadCorpus(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("flip at byte %d of %d loaded successfully", pos, len(data))
		}
	})
}

// TestCorpusDetectsStrayBitBehindValidCRC plants a stray bitmap bit AND
// recomputes the trailing checksum, proving structural validation still runs
// after the CRC gate passes (defense in depth against a buggy writer, not
// just bit rot).
func TestCorpusDetectsStrayBitBehindValidCRC(t *testing.T) {
	sets := corpusFixture(t, 75, 1, 40)
	data := corpusBytes(t, sets)
	// Payload starts after magic(8) + config(28) + numSets(8) + one
	// (n, mBits) pair (16); the first payload bytes are bitmap words.
	wordsOff := 8 + 28 + 8 + 16
	wordsLen := int(sets[0].BitmapBits() / 8)
	planted := false
	for off := wordsOff; off < wordsOff+wordsLen; off++ {
		if data[off] == 0 {
			data[off] = 1 // a set bit no element hashes to
			planted = true
			break
		}
	}
	if !planted {
		t.Skip("bitmap too dense to plant a stray bit")
	}
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32cOf(data[:len(data)-4]))
	_, err := ReadCorpus(bytes.NewReader(data))
	if err == nil {
		t.Fatal("stray bit behind a valid checksum loaded successfully")
	}
}

// TestCorpusFaultyMedia drives the reader and writer through the injected
// fault fakes: mid-stream read failures and write failures at every point
// must surface as errors.
func TestCorpusFaultyMedia(t *testing.T) {
	sets := corpusFixture(t, 76, 3, 60)
	data := corpusBytes(t, sets)

	for failAt := 0; failAt < len(data); failAt += 7 {
		r := &testutil.FlakyReader{R: bytes.NewReader(data), FailAt: failAt}
		if _, err := ReadCorpus(r); err == nil {
			t.Fatalf("read failing after %d bytes loaded successfully", failAt)
		}
	}
	for failAt := 0; failAt < len(data); failAt += 7 {
		w := &testutil.FailingWriter{FailAt: failAt}
		if _, err := WriteCorpus(w, sets); !errors.Is(err, testutil.ErrInjected) {
			t.Fatalf("write failing after %d bytes: err = %v, want ErrInjected", failAt, err)
		}
	}
}

// TestCorpusForgedHeaders hand-crafts hostile headers: enormous set counts
// and sizes must fail fast without large allocations.
func TestCorpusForgedHeaders(t *testing.T) {
	sets := corpusFixture(t, 77, 2, 40)
	data := corpusBytes(t, sets)

	forge := func(mutate func([]byte)) []byte {
		out := append([]byte(nil), data...)
		mutate(out)
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"numSets=2^56", forge(func(b []byte) { b[8+28+7] = 0x01 })},
		{"mBits=2^52", forge(func(b []byte) {
			off := 8 + 28 + 8 + 8 // first set's mBits
			for i := 0; i < 8; i++ {
				b[off+i] = 0
			}
			b[off+6] = 0x10
		})},
		{"n=2^56", forge(func(b []byte) {
			off := 8 + 28 + 8 // first set's n
			b[off+7] = 0x01
		})},
	}
	for _, c := range cases {
		if _, err := ReadCorpus(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: forged header accepted", c.name)
		}
	}
}
