package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Corpus snapshots: one stream persisting an entire BuildSets/BuildBatch
// corpus, so the offline builder ships a single artifact to query servers and
// the loader reconstructs the sets into ONE contiguous arena — the same
// memory layout BuildSets produces (per set: bitmap or dense words, then any
// word-aligned uint32 region), preserving the batch engine's locality.
//
// The v3 stream ("FESIAC3") is representation-aware, a fixed-layout
// little-endian format treated as untrusted:
//
//	magic "FESIAC3\x00" (8 bytes)
//	config: width, segBits, stride (uint32 each), scale (float64), seed (uint64)
//	numSets (uint64)
//	per set: rep (uint32), base (uint32), n (uint64), mBits (uint64)
//	per set payload:
//	  RepSegmented: bitmap words (mBits/64 × uint64),
//	                offsets (nseg+1 × uint32), reordered (n × uint32)
//	  RepArray:     sorted elements (n × uint32); mBits and base are 0
//	  RepDense:     dense words (mBits/64 × uint64) over [base, base+mBits)
//	whole-file CRC32C (uint32, covering magic through the last payload byte)
//
// Sizes arrays are rederived on load (validateShell), exactly as ReadSet
// does. Any truncation or bit flip fails the trailing checksum or a
// structural check; a corrupt stream can never produce a loadable corpus.
// The legacy v2 format ("FESIAC2") — segmented-only, no rep/base meta fields
// — is still accepted by ReadCorpus; WriteCorpus emits v3.

var (
	corpusMagicV2 = [8]byte{'F', 'E', 'S', 'I', 'A', 'C', '2', 0}
	corpusMagicV3 = [8]byte{'F', 'E', 'S', 'I', 'A', 'C', '3', 0}
)

// WriteCorpus serializes a whole corpus of sets into one stream with a
// trailing whole-file CRC32C. All sets must share one build configuration
// (the invariant BuildSets guarantees — the Rep knob aside, which may vary
// per set); sets from different builds cannot be mixed into one snapshot.
func WriteCorpus(w io.Writer, sets []*Set) (int64, error) {
	n, err := writeCorpus(w, sets)
	statsOutcome(err, stats.CtrSnapshotWrites, stats.CtrSnapshotWriteErrors)
	return n, err
}

func writeCorpus(w io.Writer, sets []*Set) (int64, error) {
	cfg, err := corpusConfig(sets)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(corpusMagicV3[:]); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint32(cfg.Width), uint32(cfg.SegBits), uint32(cfg.Stride),
		math.Float64bits(cfg.Scale), cfg.Seed,
		uint64(len(sets)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for _, s := range sets {
		var base uint32
		var mBits uint64
		switch s.rep {
		case RepSegmented:
			mBits = s.bm.Bits()
		case RepDense:
			base = s.base
			mBits = uint64(len(s.dense)) * 64
		}
		for _, v := range []interface{}{uint32(s.rep), base, uint64(s.n), mBits} {
			if err := write(v); err != nil {
				return cw.n, err
			}
		}
	}
	for _, s := range sets {
		var sections []interface{}
		switch s.rep {
		case RepSegmented:
			sections = []interface{}{s.bm.Words(), s.offsets, s.reordered}
		case RepArray:
			sections = []interface{}{s.reordered}
		case RepDense:
			sections = []interface{}{s.dense}
		}
		for _, section := range sections {
			if err := write(section); err != nil {
				return cw.n, err
			}
		}
	}
	if err := cw.emitCRC(); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeCorpusV2 writes the legacy segmented-only corpus stream, for the
// backward-compatibility tests.
func writeCorpusV2(w io.Writer, sets []*Set) (int64, error) {
	cfg, err := corpusConfig(sets)
	if err != nil {
		return 0, err
	}
	for i, s := range sets {
		if s.rep != RepSegmented {
			return 0, fmt.Errorf("core: legacy corpus carries only segmented sets (set %d is %v)", i, s.rep)
		}
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(corpusMagicV2[:]); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint32(cfg.Width), uint32(cfg.SegBits), uint32(cfg.Stride),
		math.Float64bits(cfg.Scale), cfg.Seed,
		uint64(len(sets)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for _, s := range sets {
		if err := write(uint64(s.n)); err != nil {
			return cw.n, err
		}
		if err := write(s.bm.Bits()); err != nil {
			return cw.n, err
		}
	}
	for _, s := range sets {
		for _, section := range []interface{}{s.bm.Words(), s.offsets, s.reordered} {
			if err := write(section); err != nil {
				return cw.n, err
			}
		}
	}
	if err := cw.emitCRC(); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// corpusConfig returns the shared configuration of the sets, or an error if
// they disagree (or there are none to infer from — an empty corpus snapshots
// the default configuration). The Rep knob is normalized out of the
// comparison: it is a build-time selector, not a compatibility parameter,
// and a corpus may legitimately hold sets built with different forced
// representations.
func corpusConfig(sets []*Set) (Config, error) {
	if len(sets) == 0 {
		return DefaultConfig().normalize()
	}
	cfg := sets[0].cfg
	cfg.Rep = RepSegmented
	for i, s := range sets[1:] {
		c := s.cfg
		c.Rep = RepSegmented
		if c != cfg {
			return cfg, fmt.Errorf("core: corpus sets disagree on build config (set 0 %+v, set %d %+v)",
				cfg, i+1, c)
		}
	}
	return cfg, nil
}

// corpusSetMeta is one set's header entry: the representation plus the
// quantities every array length derives from.
type corpusSetMeta struct {
	rep   Rep
	base  uint32
	n     int
	mBits uint64
}

// metaArenaWords returns one set's arena footprint in 64-bit words — the
// load-time mirror of arenaWords, derived from the stream meta instead of
// the element list.
func (m corpusSetMeta) arenaWords(cfg Config) uint64 {
	switch m.rep {
	case RepArray:
		return (uint64(m.n) + 1) / 2
	case RepDense:
		return m.mBits / 64
	}
	nseg := m.mBits / uint64(cfg.SegBits)
	u32Len := nseg + (nseg + 1) + uint64(m.n) // sizes + offsets + reordered
	return m.mBits/64 + (u32Len+1)/2
}

// payloadBytes returns how many stream bytes the set's payload occupies.
func (m corpusSetMeta) payloadBytes(cfg Config) uint64 {
	switch m.rep {
	case RepArray:
		return uint64(m.n) * 4
	case RepDense:
		return m.mBits / 8
	}
	nseg := m.mBits / uint64(cfg.SegBits)
	return m.mBits/8 + ((nseg+1)+uint64(m.n))*4 // words + offsets + reordered
}

// validate applies the same per-representation domain checks readSetHeader
// performs for single-set streams.
func (m corpusSetMeta) validate() error {
	if uint64(m.n) > maxReasonable {
		return fmt.Errorf("implausible set size %d", m.n)
	}
	switch m.rep {
	case RepSegmented:
		if !hashutil.IsPow2(m.mBits) || m.mBits < 64 || m.mBits > maxReasonable {
			return fmt.Errorf("invalid bitmap size %d", m.mBits)
		}
		if m.base != 0 {
			return fmt.Errorf("segmented set with nonzero base %d", m.base)
		}
	case RepArray:
		if m.mBits != 0 || m.base != 0 {
			return fmt.Errorf("array set with bitmap fields (mBits=%d base=%d)", m.mBits, m.base)
		}
	case RepDense:
		if m.mBits == 0 || m.mBits%64 != 0 || m.mBits > 1<<32 {
			return fmt.Errorf("invalid dense span %d bits", m.mBits)
		}
		if m.base%64 != 0 || uint64(m.base)+m.mBits > 1<<32 {
			return fmt.Errorf("dense cover [%d, %d+%d) exceeds the u32 domain or is misaligned",
				m.base, m.base, m.mBits)
		}
		if m.n == 0 || uint64(m.n) > m.mBits {
			return fmt.Errorf("dense set size %d inconsistent with %d-bit span", m.n, m.mBits)
		}
	default:
		return fmt.Errorf("invalid representation %d", m.rep)
	}
	return nil
}

// ReadCorpus deserializes a corpus written by WriteCorpus, verifying the
// trailing whole-file checksum before any structural interpretation, then
// rebuilding every set into one contiguous arena (the BuildSets layout) and
// re-validating each set's structural invariants. Corruption — truncation,
// bit flips, forged headers — yields an error, never a panic, hang, or
// silently wrong set. Both the representation-aware v3 format and the legacy
// segmented-only v2 format are accepted.
func ReadCorpus(r io.Reader) ([]*Set, error) {
	sets, err := readCorpus(r)
	statsOutcome(err, stats.CtrSnapshotReads, stats.CtrSnapshotReadErrors)
	return sets, err
}

func readCorpus(r io.Reader) ([]*Set, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading corpus magic: %w", noEOF(err))
	}
	v3 := false
	switch magic {
	case corpusMagicV2:
		// Legacy stream: every set segmented, no rep/base meta fields.
	case corpusMagicV3:
		v3 = true
	default:
		return nil, fmt.Errorf("core: bad corpus magic %q", magic[:])
	}
	var width, segBits, stride uint32
	var scaleBits, seed, numSets uint64
	for _, v := range []interface{}{&width, &segBits, &stride, &scaleBits, &seed, &numSets} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading corpus header: %w", noEOF(err))
		}
	}
	cfg := Config{
		Width:   simd.Width(width),
		SegBits: int(segBits),
		Scale:   math.Float64frombits(scaleBits),
		Seed:    seed,
		Stride:  int(stride),
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, fmt.Errorf("core: invalid corpus config: %w", err)
	}

	// Per-set headers, read incrementally so a forged numSets fails at the
	// first short read instead of provoking a huge allocation; the running
	// arena total is capped as it accumulates (every non-trivial entry
	// contributes arena words, and the meta records themselves bound the
	// loop via the stream length).
	metas := make([]corpusSetMeta, 0, min(int(min(numSets, 1<<16)), 1<<16))
	var totalU64, payloadBytes uint64
	for i := uint64(0); i < numSets; i++ {
		var m corpusSetMeta
		if v3 {
			var rep32, base uint32
			var n64, mBits uint64
			for _, v := range []interface{}{&rep32, &base, &n64, &mBits} {
				if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
					return nil, fmt.Errorf("core: reading set %d header: %w", i, noEOF(err))
				}
			}
			if rep32 >= uint32(numReps) {
				return nil, fmt.Errorf("core: set %d: invalid representation %d", i, rep32)
			}
			m = corpusSetMeta{rep: Rep(rep32), base: base, n: int(n64), mBits: mBits}
		} else {
			var n64, mBits uint64
			if err := binary.Read(cr, binary.LittleEndian, &n64); err != nil {
				return nil, fmt.Errorf("core: reading set %d header: %w", i, noEOF(err))
			}
			if err := binary.Read(cr, binary.LittleEndian, &mBits); err != nil {
				return nil, fmt.Errorf("core: reading set %d header: %w", i, noEOF(err))
			}
			m = corpusSetMeta{rep: RepSegmented, n: int(n64), mBits: mBits}
		}
		if err := m.validate(); err != nil {
			return nil, fmt.Errorf("core: set %d: %w", i, err)
		}
		totalU64 += m.arenaWords(cfg)
		payloadBytes += m.payloadBytes(cfg)
		if totalU64 > maxReasonable {
			return nil, fmt.Errorf("core: corpus arena implausibly large (%d words)", totalU64)
		}
		metas = append(metas, m)
	}

	// Pull the payload through the checksum in bounded chunks: the buffer
	// grows only as data actually arrives, so a forged header meets a short
	// read, not an allocation. The trailing whole-file CRC is verified before
	// any byte of the payload is interpreted.
	payload := make([]byte, 0, min(payloadBytes, 1<<20))
	for remaining := payloadBytes; remaining > 0; {
		c := min(remaining, 1<<16)
		chunk := make([]byte, c)
		if _, err := io.ReadFull(cr, chunk); err != nil {
			return nil, fmt.Errorf("core: reading corpus payload: %w", noEOF(err))
		}
		payload = append(payload, chunk...)
		remaining -= c
	}
	if err := cr.checkCRC("corpus"); err != nil {
		return nil, err
	}

	// Checksum verified: rebuild the arena. The allocation is backed by an
	// actually-received stream of the same magnitude.
	arena := make([]uint64, totalU64)
	sets := make([]*Set, len(metas))
	pr := bytes.NewReader(payload)
	at := 0
	for i, m := range metas {
		var s *Set
		switch m.rep {
		case RepArray:
			var elems []uint32
			if m.n > 0 {
				elems = unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), m.n)
				at += (m.n + 1) / 2
				if err := readU32sInto(pr, elems); err != nil {
					return nil, fmt.Errorf("core: decoding set %d elements: %w", i, noEOF(err))
				}
			}
			s = newArrayShell(cfg, elems)
			if err := validateArrayShell(s); err != nil {
				return nil, fmt.Errorf("core: set %d: %w", i, err)
			}
		case RepDense:
			nwords := int(m.mBits) / 64
			words := arena[at : at+nwords : at+nwords]
			at += nwords
			if err := readU64sInto(pr, words); err != nil {
				return nil, fmt.Errorf("core: decoding set %d dense words: %w", i, noEOF(err))
			}
			s = newDenseShell(cfg, words, m.base, m.n)
			if err := validateDenseShell(s); err != nil {
				return nil, fmt.Errorf("core: set %d: %w", i, err)
			}
		default:
			nseg := int(m.mBits) / cfg.SegBits
			nwords := int(m.mBits) / 64
			words := arena[at : at+nwords : at+nwords]
			at += nwords
			u32Len := nseg + (nseg + 1) + m.n
			u32 := unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), u32Len)
			at += (u32Len + 1) / 2
			sizes := u32[:nseg:nseg]
			offsets := u32[nseg : 2*nseg+1 : 2*nseg+1]
			reordered := u32[2*nseg+1 : u32Len : u32Len]
			if err := readU64sInto(pr, words); err != nil {
				return nil, fmt.Errorf("core: decoding set %d bitmap: %w", i, noEOF(err))
			}
			if err := readU32sInto(pr, offsets); err != nil {
				return nil, fmt.Errorf("core: decoding set %d offsets: %w", i, noEOF(err))
			}
			if err := readU32sInto(pr, reordered); err != nil {
				return nil, fmt.Errorf("core: decoding set %d elements: %w", i, noEOF(err))
			}
			s = newShell(cfg, bitmap.NewFromWords(words, m.mBits, cfg.SegBits),
				sizes, offsets, reordered)
			if err := validateShell(s); err != nil {
				return nil, fmt.Errorf("core: set %d: %w", i, err)
			}
		}
		sets[i] = s
	}
	return sets, nil
}

// crc32cOf is a convenience for tests: the CRC32C of data.
func crc32cOf(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}
