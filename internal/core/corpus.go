package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"fesia/internal/bitmap"
	"fesia/internal/hashutil"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Corpus snapshots: one stream persisting an entire BuildSets/BuildBatch
// corpus, so the offline builder ships a single artifact to query servers and
// the loader reconstructs the sets into ONE contiguous arena — the same
// memory layout BuildSets produces (per set: bitmap words, then the
// word-aligned uint32 region holding sizes, offsets, reordered), preserving
// the batch engine's locality.
//
// The stream is a fixed-layout little-endian format treated as untrusted:
//
//	magic "FESIAC2\x00" (8 bytes)
//	config: width, segBits, stride (uint32 each), scale (float64), seed (uint64)
//	numSets (uint64)
//	per set: n (uint64), mBits (uint64)
//	per set: bitmap words (mBits/64 × uint64),
//	         offsets (nseg+1 × uint32), reordered (n × uint32)
//	whole-file CRC32C (uint32, covering magic through the last payload byte)
//
// Sizes arrays are rederived on load (validateShell), exactly as ReadSet
// does. Any truncation or bit flip fails the trailing checksum or a
// structural check; a corrupt stream can never produce a loadable corpus.

var corpusMagic = [8]byte{'F', 'E', 'S', 'I', 'A', 'C', '2', 0}

// WriteCorpus serializes a whole corpus of sets into one stream with a
// trailing whole-file CRC32C. All sets must share one build configuration
// (the invariant BuildSets guarantees); sets from different builds cannot be
// mixed into one snapshot.
func WriteCorpus(w io.Writer, sets []*Set) (int64, error) {
	n, err := writeCorpus(w, sets)
	statsOutcome(err, stats.CtrSnapshotWrites, stats.CtrSnapshotWriteErrors)
	return n, err
}

func writeCorpus(w io.Writer, sets []*Set) (int64, error) {
	cfg, err := corpusConfig(sets)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	write := func(v interface{}) error {
		return binary.Write(cw, binary.LittleEndian, v)
	}
	if _, err := cw.Write(corpusMagic[:]); err != nil {
		return cw.n, err
	}
	hdr := []interface{}{
		uint32(cfg.Width), uint32(cfg.SegBits), uint32(cfg.Stride),
		math.Float64bits(cfg.Scale), cfg.Seed,
		uint64(len(sets)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for _, s := range sets {
		if err := write(uint64(s.n)); err != nil {
			return cw.n, err
		}
		if err := write(s.bm.Bits()); err != nil {
			return cw.n, err
		}
	}
	for _, s := range sets {
		for _, section := range []interface{}{s.bm.Words(), s.offsets, s.reordered} {
			if err := write(section); err != nil {
				return cw.n, err
			}
		}
	}
	if err := cw.emitCRC(); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// corpusConfig returns the shared configuration of the sets, or an error if
// they disagree (or there are none to infer from — an empty corpus snapshots
// the default configuration).
func corpusConfig(sets []*Set) (Config, error) {
	if len(sets) == 0 {
		return DefaultConfig().normalize()
	}
	cfg := sets[0].cfg
	for i, s := range sets[1:] {
		if s.cfg != cfg {
			return cfg, fmt.Errorf("core: corpus sets disagree on build config (set 0 %+v, set %d %+v)",
				cfg, i+1, s.cfg)
		}
	}
	return cfg, nil
}

// corpusSetMeta is one set's header entry: the two quantities every array
// length derives from.
type corpusSetMeta struct {
	n     int
	mBits uint64
}

// ReadCorpus deserializes a corpus written by WriteCorpus, verifying the
// trailing whole-file checksum before any structural interpretation, then
// rebuilding every set into one contiguous arena (the BuildSets layout) and
// re-validating each set's structural invariants. Corruption — truncation,
// bit flips, forged headers — yields an error, never a panic, hang, or
// silently wrong set.
func ReadCorpus(r io.Reader) ([]*Set, error) {
	sets, err := readCorpus(r)
	statsOutcome(err, stats.CtrSnapshotReads, stats.CtrSnapshotReadErrors)
	return sets, err
}

func readCorpus(r io.Reader) ([]*Set, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading corpus magic: %w", noEOF(err))
	}
	if magic != corpusMagic {
		return nil, fmt.Errorf("core: bad corpus magic %q", magic[:])
	}
	var width, segBits, stride uint32
	var scaleBits, seed, numSets uint64
	for _, v := range []interface{}{&width, &segBits, &stride, &scaleBits, &seed, &numSets} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading corpus header: %w", noEOF(err))
		}
	}
	cfg := Config{
		Width:   simd.Width(width),
		SegBits: int(segBits),
		Scale:   math.Float64frombits(scaleBits),
		Seed:    seed,
		Stride:  int(stride),
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, fmt.Errorf("core: invalid corpus config: %w", err)
	}

	// Per-set headers, read incrementally so a forged numSets fails at the
	// first short read instead of provoking a huge allocation; the running
	// arena total is capped as it accumulates (every entry contributes at
	// least one word, so the cap also bounds the loop).
	metas := make([]corpusSetMeta, 0, min(int(min(numSets, 1<<16)), 1<<16))
	var totalU64, payloadBytes uint64
	for i := uint64(0); i < numSets; i++ {
		var n64, mBits uint64
		if err := binary.Read(cr, binary.LittleEndian, &n64); err != nil {
			return nil, fmt.Errorf("core: reading set %d header: %w", i, noEOF(err))
		}
		if err := binary.Read(cr, binary.LittleEndian, &mBits); err != nil {
			return nil, fmt.Errorf("core: reading set %d header: %w", i, noEOF(err))
		}
		if !hashutil.IsPow2(mBits) || mBits < 64 || mBits > maxReasonable {
			return nil, fmt.Errorf("core: set %d: invalid bitmap size %d", i, mBits)
		}
		if n64 > maxReasonable {
			return nil, fmt.Errorf("core: set %d: implausible set size %d", i, n64)
		}
		nseg := mBits / uint64(cfg.SegBits)
		u32Len := nseg + (nseg + 1) + n64 // sizes + offsets + reordered
		totalU64 += mBits/64 + (u32Len+1)/2
		payloadBytes += mBits / 8 * /* words */ 1
		payloadBytes += ((nseg + 1) + n64) * 4 // offsets + reordered (sizes are rederived)
		if totalU64 > maxReasonable {
			return nil, fmt.Errorf("core: corpus arena implausibly large (%d words)", totalU64)
		}
		metas = append(metas, corpusSetMeta{n: int(n64), mBits: mBits})
	}

	// Pull the payload through the checksum in bounded chunks: the buffer
	// grows only as data actually arrives, so a forged header meets a short
	// read, not an allocation. The trailing whole-file CRC is verified before
	// any byte of the payload is interpreted.
	payload := make([]byte, 0, min(payloadBytes, 1<<20))
	for remaining := payloadBytes; remaining > 0; {
		c := min(remaining, 1<<16)
		chunk := make([]byte, c)
		if _, err := io.ReadFull(cr, chunk); err != nil {
			return nil, fmt.Errorf("core: reading corpus payload: %w", noEOF(err))
		}
		payload = append(payload, chunk...)
		remaining -= c
	}
	if err := cr.checkCRC("corpus"); err != nil {
		return nil, err
	}

	// Checksum verified: rebuild the arena. The allocation is backed by an
	// actually-received stream of the same magnitude.
	arena := make([]uint64, totalU64)
	sets := make([]*Set, len(metas))
	pr := bytes.NewReader(payload)
	at := 0
	for i, m := range metas {
		nseg := int(m.mBits) / cfg.SegBits
		nwords := int(m.mBits) / 64
		words := arena[at : at+nwords : at+nwords]
		at += nwords
		u32Len := nseg + (nseg + 1) + m.n
		u32 := unsafe.Slice((*uint32)(unsafe.Pointer(&arena[at])), u32Len)
		at += (u32Len + 1) / 2
		sizes := u32[:nseg:nseg]
		offsets := u32[nseg : 2*nseg+1 : 2*nseg+1]
		reordered := u32[2*nseg+1 : u32Len : u32Len]
		if err := readU64sInto(pr, words); err != nil {
			return nil, fmt.Errorf("core: decoding set %d bitmap: %w", i, noEOF(err))
		}
		if err := readU32sInto(pr, offsets); err != nil {
			return nil, fmt.Errorf("core: decoding set %d offsets: %w", i, noEOF(err))
		}
		if err := readU32sInto(pr, reordered); err != nil {
			return nil, fmt.Errorf("core: decoding set %d elements: %w", i, noEOF(err))
		}
		s := newShell(cfg, bitmap.NewFromWords(words, m.mBits, cfg.SegBits),
			sizes, offsets, reordered)
		if err := validateShell(s); err != nil {
			return nil, fmt.Errorf("core: set %d: %w", i, err)
		}
		sets[i] = s
	}
	return sets, nil
}

// crc32cOf is a convenience for tests: the CRC32C of data.
func crc32cOf(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}
