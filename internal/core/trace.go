package core

import (
	"fesia/internal/planner"
	"fesia/internal/trace"
)

// Per-query tracing wiring. The serving tier owns the trace topology — one
// staging cell per (document shard × admission slot) — and attaches each
// pinned executor to its cell at tier construction. The executor's
// context-aware query paths (the ones the tier scatters onto) then append
// strategy spans, planner-decision events and kernel dispatch marks to the
// cell with plain single-writer stores. With no cell attached (the default)
// every seam costs exactly one nil check, mirroring the stats and planner
// layers.

// SetTraceCell attaches the executor's sequential ctx paths to a tracing
// staging cell; nil detaches. The caller owns the cell's reset cadence (the
// serving tier resets it at the start of every query before the executor
// runs).
func (e *Executor) SetTraceCell(c *trace.Cell) { e.tr = c }

// tracePlanSegSeg records the seg×seg planner decision and its predicted
// per-arm costs — the signal that exposes mispriced cost cells when compared
// against the strategy span's measured latency.
func tracePlanSegSeg(c *trace.Cell, h *planner.Handle, ch planner.Choice, a, b *Set) {
	if c == nil || h == nil {
		return
	}
	small, large := a.n, b.n
	if small > large {
		small, large = large, small
	}
	e0, e1 := h.EstimateNanos(planner.DecSegSeg, large, small)
	c.Event(trace.KindPlan, ch.Arm,
		trace.PlanFlags(int(planner.DecSegSeg), ch.Explored), uint64(e0), uint64(e1))
}
