package core

import (
	"math/rand"
	"testing"
)

// batchFixture builds a one-vs-many workload with deliberately mixed
// candidate sizes: tiny (hash-strategy skew), medium, larger than the query
// (so the merge ordering flips), and empty.
func batchFixture(t testing.TB, seed int64, numCand int) (*Set, []*Set) {
	rng := rand.New(rand.NewSource(seed))
	q := MustNewSet(randSet(rng, 4000, 1<<16), DefaultConfig())
	lists := make([][]uint32, numCand)
	for i := range lists {
		switch i % 6 {
		case 0:
			lists[i] = randSet(rng, 3, 1<<16) // dramatic skew -> hash, candidate probes
		case 1:
			lists[i] = randSet(rng, 200, 1<<16)
		case 2:
			lists[i] = randSet(rng, 4000, 1<<16)
		case 3:
			lists[i] = randSet(rng, 9000, 1<<16) // larger than q -> ordering flips
		case 4:
			lists[i] = randSet(rng, 20000, 1<<16) // q becomes the probing side -> cached positions
		case 5:
			lists[i] = nil // empty candidate
		}
	}
	cands, err := BuildSets(lists, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return q, cands
}

func TestCountManyParity(t *testing.T) {
	q, cands := batchFixture(t, 101, 60)
	ex := NewExecutor()
	out := make([]int, len(cands))
	ex.CountMany(q, cands, out)
	for i, c := range cands {
		if want := Count(q, c); out[i] != want {
			t.Errorf("candidate %d (len %d): CountMany %d, pairwise Count %d",
				i, c.Len(), out[i], want)
		}
	}
	// Repeat on the same executor: staged buffers must be reusable.
	ex.CountMany(q, cands, out)
	for i, c := range cands {
		if want := Count(q, c); out[i] != want {
			t.Errorf("warm candidate %d: CountMany %d, want %d", i, out[i], want)
		}
	}
	// Pooled wrapper agrees.
	out2 := make([]int, len(cands))
	CountMany(q, cands, out2)
	for i := range out {
		if out[i] != out2[i] {
			t.Errorf("wrapper disagrees at %d: %d vs %d", i, out2[i], out[i])
		}
	}
}

func TestIntersectManyIntoParity(t *testing.T) {
	q, cands := batchFixture(t, 102, 40)
	ex := NewExecutor()
	bound := 0
	for _, c := range cands {
		bound += min(q.Len(), c.Len())
	}
	dst := make([]uint32, bound)
	counts := make([]int, len(cands))
	total := ex.IntersectManyInto(dst, counts, q, cands)

	sum := 0
	pair := make([]uint32, q.Len()+20000)
	for i, c := range cands {
		n := Intersect(pair, q, c)
		if n != counts[i] {
			t.Fatalf("candidate %d: count %d, pairwise %d", i, counts[i], n)
		}
		seg := dst[sum : sum+n]
		for j := 0; j < n; j++ {
			if seg[j] != pair[j] {
				t.Fatalf("candidate %d: element %d = %d, pairwise wrote %d",
					i, j, seg[j], pair[j])
			}
		}
		sum += n
	}
	if total != sum {
		t.Fatalf("total %d, sum of counts %d", total, sum)
	}
}

func TestVisitManyParity(t *testing.T) {
	q, cands := batchFixture(t, 103, 25)
	ex := NewExecutor()
	got := make([][]uint32, len(cands))
	ex.VisitMany(q, cands, func(i int, v uint32) {
		got[i] = append(got[i], v)
	})
	dst := make([]uint32, q.Len()+9000)
	for i, c := range cands {
		n := Intersect(dst, q, c)
		if len(got[i]) != n {
			t.Fatalf("candidate %d: visited %d elements, pairwise %d", i, len(got[i]), n)
		}
		for j := 0; j < n; j++ {
			if got[i][j] != dst[j] {
				t.Fatalf("candidate %d: element %d = %d, want %d", i, j, got[i][j], dst[j])
			}
		}
	}
}

func TestCountManyParallelParity(t *testing.T) {
	q, cands := batchFixture(t, 104, 127)
	want := make([]int, len(cands))
	NewExecutor().CountMany(q, cands, want)
	for _, workers := range []int{1, 2, 3, 8, 200} {
		ex := NewExecutor()
		out := make([]int, len(cands))
		ex.CountManyParallel(q, cands, out, workers)
		for i := range out {
			if out[i] != want[i] {
				t.Errorf("workers=%d candidate %d: %d, want %d", workers, i, out[i], want[i])
			}
		}
		// Warm re-run on the same executor.
		ex.CountManyParallel(q, cands, out, workers)
		for i := range out {
			if out[i] != want[i] {
				t.Errorf("workers=%d warm candidate %d: %d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}

// TestCountManyAllocs: the acceptance gate — warm CountMany and
// IntersectManyInto perform zero heap allocations.
func TestCountManyAllocs(t *testing.T) {
	q, cands := batchFixture(t, 105, 32)
	ex := NewExecutor()
	out := make([]int, len(cands))
	ex.CountMany(q, cands, out) // warm up staging buffer

	if avg := testing.AllocsPerRun(20, func() {
		ex.CountMany(q, cands, out)
	}); avg != 0 {
		t.Errorf("warm CountMany allocates %.1f times per run", avg)
	}

	bound := 0
	for _, c := range cands {
		bound += min(q.Len(), c.Len())
	}
	dst := make([]uint32, bound)
	counts := make([]int, len(cands))
	ex.IntersectManyInto(dst, counts, q, cands)
	if avg := testing.AllocsPerRun(20, func() {
		ex.IntersectManyInto(dst, counts, q, cands)
	}); avg != 0 {
		t.Errorf("warm IntersectManyInto allocates %.1f times per run", avg)
	}
}

func TestCountMergeBreakdownAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	a := MustNewSet(randSet(rng, 20000, 1<<18), DefaultConfig())
	b := MustNewSet(randSet(rng, 20000, 1<<18), DefaultConfig())
	ex := NewExecutor()
	want := CountMerge(a, b)
	bd := ex.CountMergeBreakdown(a, b)
	if bd.Count != want {
		t.Fatalf("breakdown count %d, CountMerge %d", bd.Count, want)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if ex.CountMergeBreakdown(a, b).Count != want {
			t.Fatal("count drifted")
		}
	}); avg != 0 {
		t.Errorf("warm CountMergeBreakdown allocates %.1f times per run", avg)
	}
}

func TestCountManyEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	q := MustNewSet(randSet(rng, 100, 1<<12), DefaultConfig())
	empty := MustNewSet(nil, DefaultConfig())
	ex := NewExecutor()

	// No candidates: no-op.
	ex.CountMany(q, nil, nil)

	// Empty query: all zero.
	c := MustNewSet(randSet(rng, 100, 1<<12), DefaultConfig())
	out := make([]int, 2)
	ex.CountMany(empty, []*Set{c, c}, out)
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("empty query counts = %v", out)
	}

	// Short output slice panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short out slice should panic")
			}
		}()
		ex.CountMany(q, []*Set{c, c}, make([]int, 1))
	}()

	// Incompatible candidate panics.
	other := MustNewSet(randSet(rng, 50, 1<<12), Config{Seed: 99})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("incompatible candidate should panic")
			}
		}()
		ex.CountMany(q, []*Set{other}, out)
	}()
}

// FuzzCountMany drives the staged dispatch path against the fused pairwise
// loop with adversarial sizes and universes.
func FuzzCountMany(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(50), uint16(3000))
	f.Add(int64(2), uint16(0), uint16(1), uint16(65535))
	f.Add(int64(3), uint16(5000), uint16(4999), uint16(64))
	f.Fuzz(func(t *testing.T, seed int64, nq, nc1, nc2 uint16) {
		rng := rand.New(rand.NewSource(seed))
		universe := uint32(1 << (4 + rng.Intn(14)))
		q := MustNewSet(randSet(rng, int(nq)%5000, universe), DefaultConfig())
		lists := [][]uint32{
			randSet(rng, int(nc1)%5000, universe),
			randSet(rng, int(nc2)%5000, universe),
			nil,
		}
		cands, err := BuildSets(lists, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(cands))
		ex := NewExecutor()
		ex.CountMany(q, cands, out)
		for i, c := range cands {
			if want := Count(q, c); out[i] != want {
				t.Fatalf("candidate %d (q=%d c=%d u=%d): CountMany %d, want %d",
					i, q.Len(), c.Len(), universe, out[i], want)
			}
		}
		// Staged materialization agrees too.
		bound := 0
		for _, c := range cands {
			bound += min(q.Len(), c.Len())
		}
		dst := make([]uint32, bound)
		counts := make([]int, len(cands))
		ex.IntersectManyInto(dst, counts, q, cands)
		for i := range cands {
			if counts[i] != out[i] {
				t.Fatalf("candidate %d: IntersectManyInto count %d, CountMany %d",
					i, counts[i], out[i])
			}
		}
	})
}

func BenchmarkCountManyVsPairwise(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	q := MustNewSet(randSet(rng, 50000, 1<<20), DefaultConfig())
	lists := make([][]uint32, 256)
	for i := range lists {
		lists[i] = randSet(rng, 1000, 1<<20)
	}
	cands, err := BuildSets(lists, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	out := make([]int, len(cands))
	ex := NewExecutor()
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, c := range cands {
				out[j] = ex.Count(q, c)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.CountMany(q, cands, out)
		}
	})
	b.Run("batch-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.CountManyParallel(q, cands, out, 4)
		}
	})
}
