package core

import (
	"math/rand"
	"testing"

	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// runTiers runs f once per available dispatch tier — scalar, avx2 (which on
// AVX-512 hardware is the forced-AVX2 tier), avx512 — with the jump tables
// patched, and returns the tier names alongside the results so callers can
// require every tier to agree with the scalar reference. Dispatch state is
// restored afterwards.
func runTiers(t *testing.T, f func() any) (names []string, results []any) {
	t.Helper()
	prevK := kernels.UseAsmKernels(true)
	prevAsm := simd.SetAsmEnabled(false)
	prevAvx512 := simd.SetAvx512Enabled(false)
	defer func() {
		simd.SetAvx512Enabled(prevAvx512)
		simd.SetAsmEnabled(prevAsm)
		kernels.UseAsmKernels(prevK)
	}()
	names = append(names, "scalar")
	results = append(results, f())
	if simd.HasAsm() {
		simd.SetAsmEnabled(true)
		names = append(names, "avx2")
		results = append(results, f())
	}
	if simd.HasAVX512() {
		simd.SetAvx512Enabled(true)
		names = append(names, "avx512")
		results = append(results, f())
	}
	return names, results
}

// TestExecutorTierParity drives the executor's query shapes through every
// tier of the ladder on the same inputs and requires identical results —
// including the materializing paths (Intersect, IntersectManyInto, Visit)
// that the AVX-512 rung now serves with compress-store kernels, and the
// hash-probe paths served by the gathered stage. Scale 1 shrinks the bitmap
// so segments grow into the 9..16 kernel range only the AVX-512 register
// covers.
func TestExecutorTierParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	rng := rand.New(rand.NewSource(41))
	e := NewExecutor()
	check := func(op string, names []string, results []any) {
		t.Helper()
		for i := 1; i < len(results); i++ {
			if ra, ok := results[i].([]uint32); ok {
				rs := results[0].([]uint32)
				if len(ra) != len(rs) {
					t.Fatalf("%s: %s n=%d scalar n=%d", op, names[i], len(ra), len(rs))
				}
				for j := range ra {
					if ra[j] != rs[j] {
						t.Fatalf("%s: %s elem %d = %d, scalar = %d", op, names[i], j, ra[j], rs[j])
					}
				}
				continue
			}
			if results[i] != results[0] {
				t.Fatalf("%s: %s = %v, scalar = %v", op, names[i], results[i], results[0])
			}
		}
	}
	cfgs := []Config{
		DefaultConfig(),
		{Scale: 1}, // big segments: 9..16 sizes hit the zmm-only entries
		{SegBits: 16},
		{Width: simd.WidthAVX512},
	}
	shapes := []struct{ na, nb int }{
		{2500, 2100},  // merge, similar sizes
		{6000, 250},   // hash, skewed: the gathered probe path
		{30000, 8000}, // bigger bitmaps
	}
	for _, cfg := range cfgs {
		for _, sh := range shapes {
			a := MustNewSet(randSet(rng, sh.na, 80000), cfg)
			b := MustNewSet(randSet(rng, sh.nb, 80000), cfg)
			c := MustNewSet(randSet(rng, sh.nb/2+1, 80000), cfg)

			names, res := runTiers(t, func() any { return e.Count(a, b) })
			check("Count", names, res)
			names, res = runTiers(t, func() any { return CountMerge(a, b) })
			check("CountMerge", names, res)
			names, res = runTiers(t, func() any { return CountHash(a, b) })
			check("CountHash", names, res)

			dst := make([]uint32, min(a.Len(), b.Len()))
			names, res = runTiers(t, func() any {
				n := e.Intersect(dst, a, b)
				return append([]uint32(nil), dst[:n]...)
			})
			check("Intersect", names, res)
			names, res = runTiers(t, func() any {
				n := IntersectHash(dst, a, b)
				return append([]uint32(nil), dst[:n]...)
			})
			check("IntersectHash", names, res)
			names, res = runTiers(t, func() any {
				var got []uint32
				e.Visit(a, b, func(x uint32) { got = append(got, x) })
				return got
			})
			check("Visit", names, res)

			cands := []*Set{b, c, a}
			names, res = runTiers(t, func() any {
				counts := make([]int, len(cands))
				buf := make([]uint32, a.Len()*3)
				total := e.IntersectManyInto(buf, counts, a, cands)
				return append([]uint32(nil), buf[:total]...)
			})
			check("IntersectManyInto", names, res)
		}
	}
}

// TestMaterializeZeroAlloc asserts the 0 allocs/op warm guarantee holds for
// the new materialize and gathered-probe paths with the full ladder active:
// the compress-store kernels write straight into the caller's dst and the
// gather stage uses stack out-buffers only.
func TestMaterializeZeroAlloc(t *testing.T) {
	if !simd.HasAVX512() {
		t.Skip("AVX-512 rung not available")
	}
	prevK := kernels.UseAsmKernels(true)
	prevAsm := simd.SetAsmEnabled(true)
	prevAvx512 := simd.SetAvx512Enabled(true)
	defer func() {
		simd.SetAvx512Enabled(prevAvx512)
		simd.SetAsmEnabled(prevAsm)
		kernels.UseAsmKernels(prevK)
	}()
	rng := rand.New(rand.NewSource(42))
	cfg := Config{Scale: 1} // big segments: exercises the 16-lane kernels
	a := MustNewSet(randSet(rng, 20000, 300000), cfg)
	b := MustNewSet(randSet(rng, 15000, 300000), cfg)
	s := MustNewSet(randSet(rng, 900, 300000), cfg)
	e := NewExecutor()
	dst := make([]uint32, min(a.Len(), b.Len()))
	cands := []*Set{b, s}
	counts := make([]int, len(cands))
	buf := make([]uint32, a.Len()*2)
	// Warm every buffer.
	e.Intersect(dst, a, b)
	e.Intersect(dst, a, s)
	e.IntersectManyInto(buf, counts, a, cands)
	e.Count(a, s)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Intersect/merge", func() { e.Intersect(dst, a, b) }},
		{"Intersect/hash", func() { e.Intersect(dst, a, s) }},
		{"IntersectManyInto", func() { e.IntersectManyInto(buf, counts, a, cands) }},
		{"Count/hash-gather", func() { e.Count(a, s) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(20, c.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op with the AVX-512 rung, want 0", c.name, avg)
		}
	}
}
