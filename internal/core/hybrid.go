package core

import (
	"context"
	"math/bits"
	"slices"
	"time"

	"fesia/internal/kernels"
	"fesia/internal/planner"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Cross-representation dispatch matrix. With three physical representations
// (segmented bitmap, sorted array, dense bitmap) there are six unordered
// pairs; seg×seg keeps the classic FESIAmerge/FESIAhash strategies and their
// SIMD paths, and every other pair routes here. The matrix picks the cheaper
// side to drive each pair:
//
//	array×array  sorted-merge via the jump-table count/intersect kernels when
//	             both sides fit the table, the generic merge otherwise
//	array×seg    the array's elements probe the segmented set through the
//	             existing branch-free hash probe (O(n_array))
//	array×dense  the smaller side probes the other (bit test one way, binary
//	             search the other)
//	seg×dense    the smaller side probes the other (hash probe one way, bit
//	             test the other)
//	dense×dense  word-AND over the overlapping span via simd.AndWords, then
//	             popcount (count) or bit decode (materialize/visit)
//
// All paths are allocation-free once the executor's dense-AND scratch has
// grown to the workload's largest overlap (the same warm-executor contract as
// the segmented paths). Result order is ascending for array- and dense-driven
// pairs and segment order when a segmented set's reordered array drives the
// loop; as with the classic strategies, callers needing value order sort.

// crossPair reports whether an intersection of a and b takes the
// cross-representation dispatch matrix instead of the seg×seg strategies.
func crossPair(a, b *Set) bool {
	return a.rep != RepSegmented || b.rep != RepSegmented
}

// anyCross reports whether any set of a k-way query is non-segmented.
func anyCross(sets []*Set) bool {
	for _, s := range sets {
		if s.rep != RepSegmented {
			return true
		}
	}
	return false
}

// repPairCounter maps an unordered representation pair to its dispatch
// counter.
func repPairCounter(a, b Rep) stats.Counter {
	if a > b {
		a, b = b, a
	}
	switch a {
	case RepSegmented:
		switch b {
		case RepSegmented:
			return stats.CtrDispSegSeg
		case RepArray:
			return stats.CtrDispSegArray
		default:
			return stats.CtrDispSegDense
		}
	case RepArray:
		if b == RepArray {
			return stats.CtrDispArrayArray
		}
		return stats.CtrDispArrayDense
	}
	return stats.CtrDispDenseDense
}

// growU64 returns a slice of length n, reusing buf's storage when large
// enough. The contents are unspecified.
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// denseHas is the dense-representation membership test: in-span bit lookup.
func (s *Set) denseHas(x uint32) bool {
	if x < s.base {
		return false
	}
	idx := x - s.base
	if int(idx>>6) >= len(s.dense) {
		return false
	}
	return s.dense[idx>>6]&(1<<(idx&63)) != 0
}

// crossRun dispatches one pair intersection where at least one side is
// non-segmented. With dst non-nil matches are appended there; with emit
// non-nil they are streamed; with both nil only the count is produced. The
// match count is returned. denseAnd is the caller's persistent dense-AND
// scratch (grown in place). st, when non-nil, receives the dispatch-pair
// counter and, on hash-probing paths, the probe/survivor counters. h, when
// non-nil, resolves the probe-side decisions of the ×dense pairs through the
// adaptive planner (the other pairs have a single reasonable driver and stay
// static).
func crossRun(h *planner.Handle, denseAnd *[]uint64, a, b *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	if st != nil {
		st.Inc(repPairCounter(a.rep, b.rep))
	}
	if a.rep > b.rep {
		a, b = b, a
	}
	if a.n == 0 || b.n == 0 {
		return 0
	}
	switch a.rep {
	case RepSegmented: // b is array or dense
		if b.rep == RepArray {
			return hashProbeElems(b.reordered, a, dst, emit, st)
		}
		return segDenseRun(h, a, b, dst, emit, st)
	case RepArray:
		if b.rep == RepArray {
			return arrayArrayRun(a, b, dst, emit)
		}
		return arrayDenseRun(h, a, b, dst, emit, st)
	}
	return denseDenseRun(denseAnd, a, b, dst, emit)
}

// arrayArrayRun intersects two sorted arrays: the jump-table kernels when
// both sides fit the table (the SIMD small-merge path), the generic scalar
// merge otherwise. Results are ascending.
func arrayArrayRun(a, b *Set, dst []uint32, emit Visitor) int {
	xa, xb := a.reordered, b.reordered
	la, lb := len(xa), len(xb)
	d := &a.disp
	if emit != nil {
		n := 0
		kernels.GenericVisit(xa, xb, func(v uint32) {
			n++
			emit(v)
		})
		return n
	}
	if dst != nil {
		if la <= d.Cap && lb <= d.Cap {
			ctrl := int(d.Round[la])<<d.Bits | int(d.Round[lb])
			return d.Inter[ctrl](dst, xa, xb)
		}
		return kernels.GenericIntersect(dst, xa, xb)
	}
	if la <= d.Cap && lb <= d.Cap {
		ctrl := int(d.Round[la])<<d.Bits | int(d.Round[lb])
		return d.Count[ctrl](xa, xb)
	}
	return kernels.GenericCount(xa, xb)
}

// arrayDenseRun intersects a sorted array with a dense bitmap. The probing
// side comes from the planner when a handle is attached (arm 0: array
// elements bit-test the dense span; arm 1: dense bits binary-search the
// array), from the smaller-side rule otherwise.
func arrayDenseRun(h *planner.Handle, arr, den *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	fromArray := arr.n <= den.n
	var ch planner.Choice
	if h != nil {
		ch = h.Decide(planner.DecArrayDense, arr.n, den.n)
		notePlanDecision(st, planner.DecArrayDense, ch, (ch.Arm == 0) != fromArray)
		fromArray = ch.Arm == 0
	}
	start := planStart(ch)
	n := arrayDenseArm(arr, den, fromArray, dst, emit)
	planRecord(h, ch, start)
	return n
}

// arrayDenseArm runs one probing side of an array×dense pair.
func arrayDenseArm(arr, den *Set, fromArray bool, dst []uint32, emit Visitor) int {
	n := 0
	if fromArray {
		for _, x := range arr.reordered {
			if den.denseHas(x) {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
			}
		}
		return n
	}
	for wi, w := range den.dense {
		for w != 0 {
			x := den.base + uint32(wi)<<6 + uint32(simd.Tzcnt64(w))
			w &= w - 1
			if _, ok := slices.BinarySearch(arr.reordered, x); ok {
				if dst != nil {
					dst[n] = x
				}
				n++
				if emit != nil {
					emit(x)
				}
			}
		}
	}
	return n
}

// segDenseRun intersects a segmented set with a dense bitmap. The probing
// side comes from the planner when a handle is attached (arm 0: dense bits
// hash-probe the segmented set; arm 1: the segmented set's reordered
// elements bit-test the dense span), from the smaller-side rule otherwise.
func segDenseRun(h *planner.Handle, seg, den *Set, dst []uint32, emit Visitor, st *stats.Shard) int {
	fromDense := den.n < seg.n
	var ch planner.Choice
	if h != nil {
		ch = h.Decide(planner.DecSegDense, den.n, seg.n)
		notePlanDecision(st, planner.DecSegDense, ch, (ch.Arm == 0) != fromDense)
		fromDense = ch.Arm == 0
	}
	start := planStart(ch)
	n := segDenseArm(seg, den, fromDense, dst, emit, st)
	planRecord(h, ch, start)
	return n
}

// segDenseArm runs one probing side of a seg×dense pair.
func segDenseArm(seg, den *Set, fromDense bool, dst []uint32, emit Visitor, st *stats.Shard) int {
	n := 0
	if fromDense {
		probes := 0
		for wi, w := range den.dense {
			for w != 0 {
				x := den.base + uint32(wi)<<6 + uint32(simd.Tzcnt64(w))
				w &= w - 1
				probes++
				if seg.Contains(x) {
					if dst != nil {
						dst[n] = x
					}
					n++
					if emit != nil {
						emit(x)
					}
				}
			}
		}
		if st != nil {
			st.Add(stats.CtrHashProbes, uint64(probes))
		}
		return n
	}
	for _, x := range seg.reordered {
		if den.denseHas(x) {
			if dst != nil {
				dst[n] = x
			}
			n++
			if emit != nil {
				emit(x)
			}
		}
	}
	return n
}

// denseDenseRun intersects two dense bitmaps: the overlapping word window
// (bases are 64-aligned, so overlap is word-aligned with no shifting) is
// ANDed via simd.AndWords into the caller's scratch, then popcounted or
// decoded. Results are ascending.
func denseDenseRun(denseAnd *[]uint64, a, b *Set, dst []uint32, emit Visitor) int {
	lo, wa, wb, nw := denseOverlap(a, b)
	if nw <= 0 {
		return 0
	}
	buf := growU64(*denseAnd, nw)
	*denseAnd = buf
	nonZero := simd.AndWords(buf, a.dense[wa:wa+nw], b.dense[wb:wb+nw])
	if nonZero == 0 {
		return 0
	}
	n := 0
	if dst == nil && emit == nil {
		for _, w := range buf {
			n += bits.OnesCount64(w)
		}
		return n
	}
	for wi, w := range buf {
		for w != 0 {
			x := lo + uint32(wi)<<6 + uint32(simd.Tzcnt64(w))
			w &= w - 1
			if dst != nil {
				dst[n] = x
			}
			n++
			if emit != nil {
				emit(x)
			}
		}
	}
	return n
}

// denseOverlap computes the word-aligned overlap window of two dense sets:
// the window's base value, each side's starting word offset, and the word
// count (<= 0 when the spans are disjoint).
func denseOverlap(a, b *Set) (lo uint32, wa, wb, nw int) {
	loA, loB := uint64(a.base), uint64(b.base)
	hiA := loA + uint64(len(a.dense))*64
	hiB := loB + uint64(len(b.dense))*64
	l := max(loA, loB)
	h := min(hiA, hiB)
	if h <= l {
		return 0, 0, 0, 0
	}
	return uint32(l), int((l - loA) >> 6), int((l - loB) >> 6), int((h - l) >> 6)
}

// ---------------------------------------------------------------------------
// Executor entry points: stats recording + scratch ownership.
// ---------------------------------------------------------------------------

// crossCount is the executor's counting entry into the dispatch matrix.
func (e *Executor) crossCount(a, b *Set) int {
	compatible(a, b)
	if e.st == nil {
		return crossRun(e.plan, &e.denseAnd, a, b, nil, nil, nil)
	}
	start := time.Now()
	n := crossRun(e.plan, &e.denseAnd, a, b, nil, nil, e.st)
	observeSince(e.st, stats.CtrQueriesCross, stats.LatCross, start)
	return n
}

// crossIntersect materializes a cross-representation intersection into dst.
func (e *Executor) crossIntersect(dst []uint32, a, b *Set) int {
	compatible(a, b)
	if e.st == nil {
		return crossRun(e.plan, &e.denseAnd, a, b, dst, nil, nil)
	}
	start := time.Now()
	n := crossRun(e.plan, &e.denseAnd, a, b, dst, nil, e.st)
	observeSince(e.st, stats.CtrQueriesCross, stats.LatCross, start)
	return n
}

// crossVisit streams a cross-representation intersection through emit.
func (e *Executor) crossVisit(a, b *Set, emit Visitor) {
	compatible(a, b)
	if e.st == nil {
		crossRun(e.plan, &e.denseAnd, a, b, nil, emit, nil)
		return
	}
	start := time.Now()
	crossRun(e.plan, &e.denseAnd, a, b, nil, emit, e.st)
	observeSince(e.st, stats.CtrQueriesCross, stats.LatCross, start)
}

// crossCountFree backs the package-level strategy functions for
// cross-representation pairs, on a pooled default executor.
func crossCountFree(a, b *Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.crossCount(a, b)
}

// crossIntersectFree is the materializing counterpart of crossCountFree.
func crossIntersectFree(dst []uint32, a, b *Set) int {
	e := getExecutor()
	defer putExecutor(e)
	return e.crossIntersect(dst, a, b)
}

// ---------------------------------------------------------------------------
// k-way over mixed representations.
// ---------------------------------------------------------------------------

// materialize writes the set's elements into dst (which must hold s.Len())
// and returns the count: ascending for array and dense sets, segment order
// for segmented sets (matching IntersectK's k==1 contract).
func (s *Set) materialize(dst []uint32) int {
	if s.rep != RepDense {
		return copy(dst, s.reordered)
	}
	n := 0
	for wi, w := range s.dense {
		for w != 0 {
			dst[n] = s.base + uint32(wi)<<6 + uint32(simd.Tzcnt64(w))
			n++
			w &= w - 1
		}
	}
	return n
}

// visitAll streams every element of the set through emit, in materialize
// order.
func (s *Set) visitAll(emit Visitor) {
	if s.rep != RepDense {
		for _, v := range s.reordered {
			emit(v)
		}
		return
	}
	for wi, w := range s.dense {
		for w != 0 {
			emit(s.base + uint32(wi)<<6 + uint32(simd.Tzcnt64(w)))
			w &= w - 1
		}
	}
}

// kwaySeed picks the set a mixed-representation k-way chain materializes
// first. With a planner handle the pick minimizes the modelled chain cost —
// n_seed × Σ fitted per-probe cost of every other set's representation — so
// a slightly larger seed wins when it avoids expensive probe targets; the
// equal cold-start priors reduce this to the static smallest-set rule
// (first-minimum tie break included).
func (e *Executor) kwaySeed(sets []*Set) int {
	if h := e.plan; h != nil {
		var total float64
		for _, s := range sets {
			total += h.ProbeCost(int(s.rep))
		}
		best, bestEst := 0, 0.0
		for i, s := range sets {
			est := float64(s.n) * (total - h.ProbeCost(int(s.rep)))
			if i == 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		return best
	}
	sm := 0
	for i, s := range sets {
		if s.n < sets[sm].n {
			sm = i
		}
	}
	return sm
}

// kwayAnyChain is the k-way core for mixed-representation inputs: the seed
// set (kwaySeed; smallest by default) is materialized into the executor's
// chain buffer and then compacted in place against every other set's
// membership test. O(n_seed · k) with O(1) or O(log n) probes — the k-way
// counterpart of the pair matrix's probe-smaller-side rule. sink receives
// the final chained list once. With a learned planner attached, sampled
// queries time each compaction pass to keep the per-representation probe
// costs fresh.
func (e *Executor) kwayAnyChain(sets []*Set, sink func(cur []uint32)) {
	for _, s := range sets[1:] {
		compatible(sets[0], s)
	}
	sm := e.kwaySeed(sets)
	e.chain1 = growU32(e.chain1, max(sets[sm].n, 1))
	cur := e.chain1[:sets[sm].n]
	cur = cur[:sets[sm].materialize(cur)]
	ksample := e.plan != nil && e.plan.SampleKWay()
	for i, s := range sets {
		if i == sm || len(cur) == 0 {
			continue
		}
		probes := len(cur)
		var t0 time.Time
		if ksample {
			t0 = time.Now()
		}
		k := 0
		for _, v := range cur {
			if s.Contains(v) {
				cur[k] = v
				k++
			}
		}
		cur = cur[:k]
		if ksample {
			e.plan.RecordProbe(int(s.rep), time.Since(t0), probes)
		}
	}
	if len(cur) > 0 {
		sink(cur)
	}
}

// kwayAnyChainCtx is kwayAnyChain with a context check before each set's
// compaction pass. On cancellation *cancelled is set and sink is never
// called.
func (e *Executor) kwayAnyChainCtx(ctx context.Context, sets []*Set, sink func(cur []uint32), cancelled *bool) {
	for _, s := range sets[1:] {
		compatible(sets[0], s)
	}
	sm := e.kwaySeed(sets)
	e.chain1 = growU32(e.chain1, max(sets[sm].n, 1))
	cur := e.chain1[:sets[sm].n]
	cur = cur[:sets[sm].materialize(cur)]
	for i, s := range sets {
		if i == sm || len(cur) == 0 {
			continue
		}
		if ctx.Err() != nil {
			*cancelled = true
			return
		}
		k := 0
		for _, v := range cur {
			if s.Contains(v) {
				cur[k] = v
				k++
			}
		}
		cur = cur[:k]
	}
	if len(cur) > 0 {
		sink(cur)
	}
}

// ---------------------------------------------------------------------------
// Context-aware variants: the same matrix with cooperative checkpoints, at
// the granularity of the classic ctx paths (probe blocks on element-driven
// loops, word blocks on the dense AND).
// ---------------------------------------------------------------------------

// crossCountCtx is crossRun's counting form with cooperative cancellation.
func (e *Executor) crossCountCtx(ctx context.Context, a, b *Set) (int, error) {
	return e.crossRunCtx(ctx, a, b, nil)
}

// crossIntersectCtx is crossRun's materializing form with cancellation.
func (e *Executor) crossIntersectCtx(ctx context.Context, dst []uint32, a, b *Set) (int, error) {
	return e.crossRunCtx(ctx, a, b, dst)
}

// crossRunCtx runs one cross-representation pair with a context check per
// work block. The element-probing pairs chunk the probing side by
// ctxProbeBlock; dense×dense chunks the word AND by ctxWordBlock. On
// cancellation it returns (0, ctx.Err()).
func (e *Executor) crossRunCtx(ctx context.Context, a, b *Set, dst []uint32) (n int, err error) {
	compatible(a, b)
	if err := ctx.Err(); err != nil {
		return 0, e.noteCancel(err)
	}
	st := e.st
	var start time.Time
	if st != nil {
		start = time.Now()
		st.Inc(repPairCounter(a.rep, b.rep))
	}
	if a.rep > b.rep {
		a, b = b, a
	}
	if a.n == 0 || b.n == 0 {
		n, err = 0, nil
	} else if a.rep == RepDense { // dense×dense
		n, err = e.denseDenseCtx(ctx, a, b, dst)
	} else if b.rep == RepDense {
		// seg×dense / array×dense: pick the probing side — walk the dense
		// words probing a, or probe a's sorted elements against the dense
		// span. Planner decision when a handle is attached, the smaller-side
		// rule otherwise.
		fromDense := b.n < a.n
		var ch planner.Choice
		if h := e.plan; h != nil {
			if a.rep == RepSegmented {
				ch = h.Decide(planner.DecSegDense, b.n, a.n)
				notePlanDecision(st, planner.DecSegDense, ch, (ch.Arm == 0) != fromDense)
				fromDense = ch.Arm == 0
			} else {
				ch = h.Decide(planner.DecArrayDense, a.n, b.n)
				notePlanDecision(st, planner.DecArrayDense, ch, (ch.Arm == 1) != fromDense)
				fromDense = ch.Arm == 1
			}
		}
		pstart := planStart(ch)
		if fromDense {
			n, err = e.denseProbeCtx(ctx, b, a, dst)
		} else {
			n, err = e.elemsProbeCtx(ctx, a.reordered, b, dst)
		}
		if err == nil {
			// Cancelled passes are partial work; only completed ones feed
			// the cost model.
			planRecord(e.plan, ch, pstart)
		}
	} else {
		// seg×array probes one side's sorted element slice against the
		// other's membership test (hash probe into segmented, binary search
		// into arrays), from the smaller side.
		probe, other := a, b
		if b.n < a.n {
			probe, other = b, a
		}
		n, err = e.elemsProbeCtx(ctx, probe.reordered, other, dst)
	}
	if err != nil {
		return 0, e.noteCancel(err)
	}
	if st != nil {
		observeSince(st, stats.CtrQueriesCross, stats.LatCross, start)
	}
	return n, nil
}

// elemsProbeCtx probes a sorted element slice against any set in
// ctxProbeBlock chunks, checking the context between chunks.
func (e *Executor) elemsProbeCtx(ctx context.Context, elems []uint32, other *Set, dst []uint32) (int, error) {
	n := 0
	for lo := 0; lo < len(elems); lo += ctxProbeBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, x := range elems[lo:min(lo+ctxProbeBlock, len(elems))] {
			if other.Contains(x) {
				if dst != nil {
					dst[n] = x
				}
				n++
			}
		}
	}
	return n, nil
}

// denseProbeCtx walks a dense set's words in ctxWordBlock chunks, probing
// each decoded element against other.
func (e *Executor) denseProbeCtx(ctx context.Context, den, other *Set, dst []uint32) (int, error) {
	n := 0
	for lo := 0; lo < len(den.dense); lo += ctxWordBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		hi := min(lo+ctxWordBlock, len(den.dense))
		for wi := lo; wi < hi; wi++ {
			w := den.dense[wi]
			for w != 0 {
				x := den.base + uint32(wi)<<6 + uint32(simd.Tzcnt64(w))
				w &= w - 1
				if other.Contains(x) {
					if dst != nil {
						dst[n] = x
					}
					n++
				}
			}
		}
	}
	return n, nil
}

// denseDenseCtx is denseDenseRun with the word AND chunked by ctxWordBlock.
func (e *Executor) denseDenseCtx(ctx context.Context, a, b *Set, dst []uint32) (int, error) {
	lo, wa, wb, nw := denseOverlap(a, b)
	if nw <= 0 {
		return 0, nil
	}
	e.denseAnd = growU64(e.denseAnd, min(nw, ctxWordBlock))
	buf := e.denseAnd
	n := 0
	for off := 0; off < nw; off += ctxWordBlock {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		cn := min(ctxWordBlock, nw-off)
		nonZero := simd.AndWords(buf[:cn], a.dense[wa+off:wa+off+cn], b.dense[wb+off:wb+off+cn])
		if nonZero == 0 {
			continue
		}
		for wi, w := range buf[:cn] {
			if dst == nil {
				n += bits.OnesCount64(w)
				continue
			}
			for w != 0 {
				dst[n] = lo + uint32(off+wi)<<6 + uint32(simd.Tzcnt64(w))
				n++
				w &= w - 1
			}
		}
	}
	return n, nil
}
