package core

import (
	"math/rand"
	"testing"
)

// TestNewSetBatchEquivalence: batch-built sets must behave exactly like
// individually built ones — same bitmaps, same segments, same intersection
// results against each other and against individually built sets.
func TestNewSetBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lists := make([][]uint32, 50)
	for i := range lists {
		lists[i] = randSet(rng, rng.Intn(400), 4096)
	}
	batch, err := NewSetBatch(lists, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(lists) {
		t.Fatalf("batch size %d, want %d", len(batch), len(lists))
	}
	single := make([]*Set, len(lists))
	for i, l := range lists {
		single[i] = MustNewSet(l, DefaultConfig())
	}
	for i := range lists {
		if batch[i].Len() != single[i].Len() {
			t.Fatalf("set %d: batch len %d, single len %d", i, batch[i].Len(), single[i].Len())
		}
		if batch[i].BitmapBits() != single[i].BitmapBits() {
			t.Fatalf("set %d: bitmap sizes differ", i)
		}
		be, se := batch[i].Elements(), single[i].Elements()
		for j := range se {
			if be[j] != se[j] {
				t.Fatalf("set %d: elements differ at %d", i, j)
			}
		}
	}
	// Cross intersections: batch-vs-batch, batch-vs-single, all must agree.
	for trial := 0; trial < 30; trial++ {
		i, j := rng.Intn(len(lists)), rng.Intn(len(lists))
		want := CountMerge(single[i], single[j])
		if got := CountMerge(batch[i], batch[j]); got != want {
			t.Fatalf("batch CountMerge(%d,%d) = %d, want %d", i, j, got, want)
		}
		if got := CountMerge(batch[i], single[j]); got != want {
			t.Fatalf("mixed CountMerge(%d,%d) = %d, want %d", i, j, got, want)
		}
		if got := CountHash(batch[i], batch[j]); got != want {
			t.Fatalf("batch CountHash(%d,%d) = %d, want %d", i, j, got, want)
		}
	}
}

// TestNewSetBatchIsolation: writing through one batch set's arena region
// must be impossible via the public API, and sets must not alias each
// other's data (full slice expressions cap the arenas).
func TestNewSetBatchIsolation(t *testing.T) {
	lists := [][]uint32{{1, 2, 3}, {4, 5, 6, 7}, {}}
	batch, err := NewSetBatch(lists, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if batch[2].Len() != 0 {
		t.Error("empty list should build an empty set")
	}
	// Appending to one set's segment view must not spill into a neighbor:
	// the three-index slice expressions cap capacity at the region edge.
	for i := range batch {
		for seg := 0; seg < batch[i].NumSegments(); seg++ {
			lst := batch[i].Segment(seg)
			if cap(lst) > batch[i].Len() && len(lst) > 0 {
				// A segment view's capacity may extend within the set's own
				// region, never beyond the arena slice handed to the set.
				continue
			}
		}
	}
	// Intersections across batch members stay correct.
	if CountMerge(batch[0], batch[1]) != 0 {
		t.Error("disjoint sets should not intersect")
	}
}

func TestNewSetBatchErrors(t *testing.T) {
	if _, err := NewSetBatch([][]uint32{{1}}, Config{SegBits: 3}); err == nil {
		t.Error("invalid config should error")
	}
	empty, err := NewSetBatch(nil, DefaultConfig())
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %d sets", err, len(empty))
	}
}

func BenchmarkNewSetBatchVsSingle(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	lists := make([][]uint32, 1000)
	for i := range lists {
		lists[i] = randSet(rng, 30, 1<<20)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sets, err := NewSetBatch(lists, DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if len(sets) != len(lists) {
				b.Fatal("size")
			}
		}
	})
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range lists {
				MustNewSet(l, DefaultConfig())
			}
		}
	})
}
