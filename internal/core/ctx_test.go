package core

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// TestCtxParityUncancelled: with a background context every ctx-aware path
// must return exactly what its plain counterpart returns, across strategies.
func TestCtxParityUncancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	e := NewExecutor()
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		cfg := DefaultConfig()
		sa := MustNewSet(randSet(rng, 1+rng.Intn(4000), 1<<15), cfg)
		sb := MustNewSet(randSet(rng, 1+rng.Intn(4000), 1<<15), cfg)
		sc := MustNewSet(randSet(rng, rng.Intn(600), 1<<15), cfg)

		if got, err := e.CountCtx(ctx, sa, sb); err != nil || got != Count(sa, sb) {
			t.Fatalf("trial %d: CountCtx = %d, %v; want %d, nil", trial, got, err, Count(sa, sb))
		}
		if got, err := e.CountCtx(ctx, sc, sa); err != nil || got != Count(sc, sa) {
			t.Fatalf("trial %d: CountCtx(skewed) = %d, %v; want %d", trial, got, err, Count(sc, sa))
		}
		if got, err := e.CountKCtx(ctx, sa, sb, sc); err != nil || got != CountK(sa, sb, sc) {
			t.Fatalf("trial %d: CountKCtx = %d, %v; want %d", trial, got, err, CountK(sa, sb, sc))
		}

		want := make([]uint32, min(sa.Len(), sb.Len()))
		wn := Intersect(want, sa, sb)
		got := make([]uint32, min(sa.Len(), sb.Len()))
		gn, err := e.IntersectIntoCtx(ctx, got, sa, sb)
		if err != nil || !slices.Equal(got[:gn], want[:wn]) {
			t.Fatalf("trial %d: IntersectIntoCtx wrote %d (%v), plain wrote %d or order differs",
				trial, gn, err, wn)
		}
		// Skewed pair exercises the hash branch of IntersectIntoCtx.
		wantH := make([]uint32, min(sc.Len(), sa.Len()))
		gotH := make([]uint32, min(sc.Len(), sa.Len()))
		wn = Intersect(wantH, sc, sa)
		gn, err = e.IntersectIntoCtx(ctx, gotH, sc, sa)
		if err != nil || gn != wn || !slices.Equal(gotH[:gn], wantH[:wn]) {
			t.Fatalf("trial %d: hash IntersectIntoCtx wrote %d (%v), want %d", trial, gn, err, wn)
		}
	}
}

// TestCtxManyParity: CountManyCtx and CountManyParallelCtx match CountMany on
// an uncancelled context, warm and cold, across worker counts.
func TestCtxManyParity(t *testing.T) {
	q, cands := batchFixture(t, 62, 64)
	ctx := context.Background()
	want := make([]int, len(cands))
	CountMany(q, cands, want)

	e := NewExecutor()
	out := make([]int, len(cands))
	for round := 0; round < 2; round++ { // cold then warm
		if err := e.CountManyCtx(ctx, q, cands, out); err != nil {
			t.Fatalf("round %d: CountManyCtx: %v", round, err)
		}
		if !slices.Equal(out, want) {
			t.Fatalf("round %d: CountManyCtx diverges from CountMany", round)
		}
	}
	for _, workers := range []int{1, 2, 3, 8} {
		clear(out)
		if err := e.CountManyParallelCtx(ctx, q, cands, out, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !slices.Equal(out, want) {
			t.Fatalf("workers=%d: CountManyParallelCtx diverges from CountMany", workers)
		}
	}
}

// TestCtxPreCancelled: an already-cancelled context must fail every path
// immediately with context.Canceled, without touching destination state in
// confusing ways (counts report zero).
func TestCtxPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	sa := MustNewSet(randSet(rng, 3000, 1<<15), DefaultConfig())
	sb := MustNewSet(randSet(rng, 3000, 1<<15), DefaultConfig())
	e := NewExecutor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if n, err := e.CountCtx(ctx, sa, sb); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("CountCtx = %d, %v; want 0, Canceled", n, err)
	}
	dst := make([]uint32, 3000)
	if n, err := e.IntersectIntoCtx(ctx, dst, sa, sb); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("IntersectIntoCtx = %d, %v; want 0, Canceled", n, err)
	}
	if n, err := e.CountKCtx(ctx, sa, sb, sb); !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("CountKCtx = %d, %v; want 0, Canceled", n, err)
	}
	out := make([]int, 4)
	if err := e.CountManyCtx(ctx, sa, []*Set{sb, sb, sb, sb}, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountManyCtx err = %v, want Canceled", err)
	}
	if err := e.CountManyParallelCtx(ctx, sa, []*Set{sb, sb, sb, sb}, out, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountManyParallelCtx err = %v, want Canceled", err)
	}
}

// TestCtxDeadline: a deadline that fires mid-query must surface as
// DeadlineExceeded, and the executor must remain fully usable afterwards.
func TestCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	q := MustNewSet(randSet(rng, 2000, 1<<18), DefaultConfig())
	cands := make([]*Set, 512)
	for i := range cands {
		cands[i] = MustNewSet(randSet(rng, 2000, 1<<18), DefaultConfig())
	}
	e := NewExecutor()
	out := make([]int, len(cands))

	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	// The deadline is (almost certainly) already expired; either way the call
	// must return promptly with DeadlineExceeded, never a wrong success.
	err := e.CountManyCtx(ctx, q, cands, out)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CountManyCtx err = %v, want DeadlineExceeded (or full completion)", err)
	}

	// The executor survives: a fresh uncancelled run is correct.
	want := make([]int, len(cands))
	CountMany(q, cands, want)
	if err := e.CountManyCtx(context.Background(), q, cands, out); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(out, want) {
		t.Fatal("executor corrupted after deadline abort")
	}
}

// TestCtxCancelLatencyManyParallel is the acceptance gate: a cancelled
// CountManyParallelCtx over >= 4096 candidates must return within 10ms of the
// cancellation firing.
func TestCtxCancelLatencyManyParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	q := MustNewSet(randSet(rng, 4000, 1<<18), DefaultConfig())
	cands := make([]*Set, 4096)
	for i := range cands {
		cands[i] = MustNewSet(randSet(rng, 200+rng.Intn(800), 1<<14), DefaultConfig())
	}
	e := NewExecutor()
	out := make([]int, len(cands))

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		started := make(chan struct{})
		go func() {
			close(started)
			done <- e.CountManyParallelCtx(ctx, q, cands, out, workers)
		}()
		<-started
		time.Sleep(200 * time.Microsecond) // let the batch get going
		cancelAt := time.Now()
		cancel()
		select {
		case err := <-done:
			if lat := time.Since(cancelAt); err != nil && lat > 10*time.Millisecond {
				t.Fatalf("workers=%d: cancellation honored after %v, want <= 10ms", workers, lat)
			}
			// err == nil means the whole batch beat the cancel — fine.
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: cancelled batch never returned", workers)
		}
	}
}

// TestCtxBlockBoundaries exercises sets whose word counts straddle the
// checkpoint block size, so block slicing off-by-ones would show up.
func TestCtxBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	e := NewExecutor()
	ctx := context.Background()
	// ~1<<20 bitmap bits = 16384 words = 16 word blocks for the big set.
	big := MustNewSet(randSet(rng, 200_000, 1<<24), DefaultConfig())
	small := MustNewSet(randSet(rng, 180_000, 1<<24), DefaultConfig())
	if got, err := e.CountCtx(ctx, big, small); err != nil || got != Count(big, small) {
		t.Fatalf("CountCtx on multi-block sets = %d, %v; want %d", got, err, Count(big, small))
	}
	if got, err := e.CountKCtx(ctx, big, small, big); err != nil || got != CountK(big, small, big) {
		t.Fatalf("CountKCtx on multi-block sets = %d, %v; want %d", got, err, CountK(big, small, big))
	}
}
