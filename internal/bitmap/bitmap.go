// Package bitmap implements FESIA's segmented bitmap (Section III-B) and the
// bitmap-level intersection of Section IV.
//
// A segmented bitmap is an m-bit vector (m a power of two) whose bits are
// grouped into segments of s bits. Set elements are hashed to bit positions;
// a segment is "live" when any of its bits is set. Intersecting two bitmaps
// word-by-word and extracting the indices of non-zero segments yields the
// candidate segment pairs whose element lists the segment-level kernels then
// intersect.
//
// The three steps of Section IV map onto this package as follows:
//
//	Step 1 (bitwise AND, "vandps")        → the word loop in ForEachIntersectingSegment
//	Step 2 (segment transformation,        → simd.SegmentMask8/16/32, producing one
//	        "pcmpeq*")                       bit per non-zero segment of a word
//	Step 3 (index extraction,              → the tzcnt/clear-lowest-bit loop over
//	        "pextrb"+"tzcnt")                that per-word mask
package bitmap

import (
	"fmt"

	"fesia/internal/hashutil"
	"fesia/internal/simd"
)

// Bitmap is an m-bit segmented bitmap. m is a power of two and at least 64;
// the segment size divides 64 so segments never straddle words.
type Bitmap struct {
	words   []uint64
	mBits   uint64
	segBits int
}

// SupportedSegBits lists the segment sizes the segment transformation
// supports, matching the pcmpeqb/pcmpeqw/pcmpeqd granularities.
var SupportedSegBits = []int{8, 16, 32}

// New returns an all-zero bitmap of mBits bits with segments of segBits bits.
// mBits must be a power of two >= 64 and segBits one of SupportedSegBits.
func New(mBits uint64, segBits int) *Bitmap {
	if !hashutil.IsPow2(mBits) || mBits < 64 {
		panic(fmt.Sprintf("bitmap: mBits %d must be a power of two >= 64", mBits))
	}
	if !validSegBits(segBits) {
		panic(fmt.Sprintf("bitmap: unsupported segment size %d", segBits))
	}
	return &Bitmap{
		words:   make([]uint64, mBits/64),
		mBits:   mBits,
		segBits: segBits,
	}
}

// NewFromWords returns a bitmap whose word storage is the caller-provided
// slice — typically a region of a shared arena, so many small bitmaps can
// live in one allocation (core.BuildSets). words must be all zero with
// len(words) == mBits/64; the bitmap takes ownership of the slice.
func NewFromWords(words []uint64, mBits uint64, segBits int) *Bitmap {
	if !hashutil.IsPow2(mBits) || mBits < 64 {
		panic(fmt.Sprintf("bitmap: mBits %d must be a power of two >= 64", mBits))
	}
	if !validSegBits(segBits) {
		panic(fmt.Sprintf("bitmap: unsupported segment size %d", segBits))
	}
	if uint64(len(words)) != mBits/64 {
		panic(fmt.Sprintf("bitmap: %d words for %d bits", len(words), mBits))
	}
	return &Bitmap{words: words, mBits: mBits, segBits: segBits}
}

func validSegBits(s int) bool {
	for _, v := range SupportedSegBits {
		if v == s {
			return true
		}
	}
	return false
}

// Bits returns m, the bitmap size in bits.
func (b *Bitmap) Bits() uint64 { return b.mBits }

// SegBits returns s, the segment size in bits.
func (b *Bitmap) SegBits() int { return b.segBits }

// NumSegments returns m/s.
func (b *Bitmap) NumSegments() int { return int(b.mBits) / b.segBits }

// SegmentsPerWord returns how many segments one 64-bit word holds.
func (b *Bitmap) SegmentsPerWord() int { return 64 / b.segBits }

// Words exposes the raw words, for the parallel partitioning in core.
func (b *Bitmap) Words() []uint64 { return b.words }

// Set sets bit pos.
func (b *Bitmap) Set(pos uint64) {
	b.words[pos>>6] |= 1 << (pos & 63)
}

// Test reports whether bit pos is set.
func (b *Bitmap) Test(pos uint64) bool {
	return b.words[pos>>6]&(1<<(pos&63)) != 0
}

// SegmentOf returns the segment index containing bit pos.
func (b *Bitmap) SegmentOf(pos uint64) int { return int(pos) / b.segBits }

// PopCount returns the number of set bits, for diagnostics and tests.
func (b *Bitmap) PopCount() int {
	n := 0
	for _, w := range b.words {
		n += simd.Popcount64(w)
	}
	return n
}

// segMask applies the segment transformation of Section IV step 2 to one
// word, returning one bit per non-zero segment.
func segMask(w uint64, segBits int) uint32 {
	switch segBits {
	case 8:
		return simd.SegmentMask8(w)
	case 16:
		return simd.SegmentMask16(w)
	default:
		return simd.SegmentMask32(w)
	}
}

// ForEachIntersectingSegment streams the bitwise AND of a and b and invokes
// fn(segA, segB) for every segment pair whose AND is non-zero.
//
// a's bitmap must be at least as large as b's; both must share the same
// segment size. When a is larger, segment i of a is matched with segment
// i mod (m_b/s) of b per Section III-C (both sizes are powers of two, so b's
// size always divides a's).
func ForEachIntersectingSegment(a, b *Bitmap, fn func(segA, segB int)) {
	if a.segBits != b.segBits {
		panic("bitmap: mismatched segment sizes")
	}
	if a.mBits < b.mBits {
		panic("bitmap: first bitmap must be the larger one")
	}
	if fastFilterOK(b, 0, len(a.words)) {
		forEachSegFastRange(a, b, 0, len(a.words), fn)
		return
	}
	spw := a.SegmentsPerWord()
	if a.mBits == b.mBits {
		for i, wa := range a.words {
			w := wa & b.words[i]
			if w == 0 {
				continue
			}
			base := i * spw
			m := segMask(w, a.segBits)
			for m != 0 {
				seg := base + simd.Tzcnt32(m)
				fn(seg, seg)
				m &= m - 1
			}
		}
		return
	}
	wordMask := len(b.words) - 1
	segMaskB := b.NumSegments() - 1
	for i, wa := range a.words {
		w := wa & b.words[i&wordMask]
		if w == 0 {
			continue
		}
		base := i * spw
		m := segMask(w, a.segBits)
		for m != 0 {
			seg := base + simd.Tzcnt32(m)
			fn(seg, seg&segMaskB)
			m &= m - 1
		}
	}
}

// ForEachIntersectingSegmentRange is ForEachIntersectingSegment restricted to
// words [wordLo, wordHi) of a's bitmap. It is the unit of multicore
// partitioning (Section VI): disjoint word ranges touch disjoint segments.
func ForEachIntersectingSegmentRange(a, b *Bitmap, wordLo, wordHi int, fn func(segA, segB int)) {
	if a.segBits != b.segBits {
		panic("bitmap: mismatched segment sizes")
	}
	if a.mBits < b.mBits {
		panic("bitmap: first bitmap must be the larger one")
	}
	if fastFilterOK(b, wordLo, wordHi) {
		forEachSegFastRange(a, b, wordLo, wordHi, fn)
		return
	}
	spw := a.SegmentsPerWord()
	// Word counts are powers of two, so wrapped indexing is a mask.
	wordMask := len(b.words) - 1
	segMaskB := b.NumSegments() - 1
	for i := wordLo; i < wordHi; i++ {
		w := a.words[i] & b.words[i&wordMask]
		if w == 0 {
			continue
		}
		base := i * spw
		m := segMask(w, a.segBits)
		for m != 0 {
			seg := base + simd.Tzcnt32(m)
			fn(seg, seg&segMaskB)
			m &= m - 1
		}
	}
}

// ForEachIntersectingSegmentK streams the k-way AND of Section VI. maps must
// be ordered with the largest bitmap first and all share one segment size;
// every smaller bitmap's size divides the largest (automatic for powers of
// two). fn receives the segment index in the largest bitmap; callers recover
// each set's own segment as segA mod that set's segment count.
func ForEachIntersectingSegmentK(maps []*Bitmap, fn func(segA int)) {
	if len(maps) == 0 {
		panic("bitmap: no bitmaps")
	}
	a := maps[0]
	for _, m := range maps[1:] {
		if m.segBits != a.segBits {
			panic("bitmap: mismatched segment sizes")
		}
		if m.mBits > a.mBits {
			panic("bitmap: largest bitmap must come first")
		}
	}
	if len(maps) >= 2 && simd.AsmActive() && len(a.words) >= 2*simd.BlockWords {
		forEachSegKFastRange(maps, 0, len(a.words), fn)
		return
	}
	spw := a.SegmentsPerWord()
	for i, w := range a.words {
		for _, bm := range maps[1:] {
			w &= bm.words[i&(len(bm.words)-1)]
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		base := i * spw
		m := segMask(w, a.segBits)
		for m != 0 {
			fn(base + simd.Tzcnt32(m))
			m &= m - 1
		}
	}
}

// ForEachIntersectingSegmentKRange is ForEachIntersectingSegmentK restricted
// to words [wordLo, wordHi) of the largest bitmap — the unit of multicore
// partitioning for k-way intersection.
func ForEachIntersectingSegmentKRange(maps []*Bitmap, wordLo, wordHi int, fn func(segA int)) {
	if len(maps) == 0 {
		panic("bitmap: no bitmaps")
	}
	a := maps[0]
	for _, m := range maps[1:] {
		if m.segBits != a.segBits {
			panic("bitmap: mismatched segment sizes")
		}
		if m.mBits > a.mBits {
			panic("bitmap: largest bitmap must come first")
		}
	}
	if len(maps) >= 2 && simd.AsmActive() && wordHi-wordLo >= 2*simd.BlockWords {
		forEachSegKFastRange(maps, wordLo, wordHi, fn)
		return
	}
	spw := a.SegmentsPerWord()
	for i := wordLo; i < wordHi; i++ {
		w := a.words[i]
		for _, bm := range maps[1:] {
			w &= bm.words[i&(len(bm.words)-1)]
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		base := i * spw
		m := segMask(w, a.segBits)
		for m != 0 {
			fn(base + simd.Tzcnt32(m))
			m &= m - 1
		}
	}
}

// CountIntersectingSegments returns how many segment pairs survive the
// bitmap-level filter — the quantity E(I) of Proposition 1 (true matches
// plus false positives). Used by tests and the Fig. 14 breakdown.
func CountIntersectingSegments(a, b *Bitmap) int {
	n := 0
	ForEachIntersectingSegment(a, b, func(_, _ int) { n++ })
	return n
}
