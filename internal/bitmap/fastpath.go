package bitmap

import "fesia/internal/simd"

// Chunked mask-stream fast path for the bitmap-level filter. When the
// assembly backend is active, the word loop of ForEachIntersectingSegment*
// is replaced by simd.AndSegMasks over 4-word blocks: the fused
// VPAND + VPCMPEQ + VPMOVMSKB kernel emits one compact live-segment mask per
// block into a stack buffer, and index extraction then runs over the mask
// stream — one branch per block instead of one per word, and the filter
// itself branch-free. Partial blocks at the range edges are handled by
// computing the full block's mask and trimming the out-of-range segment bits
// (reads beyond [lo,hi) stay inside the bitmap because word counts on this
// path are multiples of BlockWords; concurrent range workers only ever read
// the shared words).

// fastChunkBlocks is the mask buffer size: 256 blocks = 1024 words = 8 KiB of
// bitmap per side per chunk, L1-resident alongside the segment data.
const fastChunkBlocks = 256

const fastChunkWords = fastChunkBlocks * simd.BlockWords

// fastFilterOK reports whether the chunked fast path applies to a range of
// the pairwise filter: backend active, the smaller bitmap at least one block
// (so wrap boundaries fall on block boundaries), and the range long enough to
// amortize the chunk setup.
func fastFilterOK(b *Bitmap, lo, hi int) bool {
	return simd.AsmActive() && len(b.words) >= simd.BlockWords && hi-lo >= 2*simd.BlockWords
}

// forEachSegFastRange is the fast-path body of ForEachIntersectingSegmentRange
// (equal sizes are the wordMask == full-range special case). Preconditions of
// fastFilterOK hold.
func forEachSegFastRange(a, b *Bitmap, lo, hi int, fn func(segA, segB int)) {
	spw := a.SegmentsPerWord()
	segBits := a.segBits
	segMaskB := b.NumSegments() - 1
	loDown := lo &^ (simd.BlockWords - 1)
	hiUp := (hi + simd.BlockWords - 1) &^ (simd.BlockWords - 1)
	var masks [fastChunkBlocks]uint32
	for cb := loDown; cb < hiUp; {
		nb := (hiUp - cb) / simd.BlockWords
		if nb > fastChunkBlocks {
			nb = fastChunkBlocks
		}
		live := simd.AndSegMasksWrap(masks[:nb], a.words, b.words, cb, segBits)
		if live != 0 {
			// Trim segments outside [lo, hi): bits only ever get cleared, so
			// a live==0 chunk needs no trim and was skipped correctly.
			if cb < lo {
				masks[0] &^= 1<<uint((lo-cb)*spw) - 1
			}
			if end := cb + nb*simd.BlockWords; end > hi {
				last := end - simd.BlockWords
				masks[nb-1] &= 1<<uint((hi-last)*spw) - 1
			}
			for bi := 0; bi < nb; bi++ {
				m := masks[bi]
				if m == 0 {
					continue
				}
				base := (cb + bi*simd.BlockWords) * spw
				for m != 0 {
					seg := base + simd.Tzcnt32(m)
					fn(seg, seg&segMaskB)
					m &= m - 1
				}
			}
		}
		cb += nb * simd.BlockWords
	}
}

// forEachSegKFastRange is the fast-path body of the k-way filter: the k-way
// AND is materialized chunk-wise into a stack buffer (contiguous sub-runs per
// wrapped bitmap, vectorized by AndWords), then the segment transformation
// runs on the result. maps is ordered largest-first; preconditions of the
// caller's gate hold (range at least two blocks; the largest bitmap's word
// count, being >= the range, is a multiple of BlockWords).
func forEachSegKFastRange(maps []*Bitmap, lo, hi int, fn func(segA int)) {
	a := maps[0]
	spw := a.SegmentsPerWord()
	segBits := a.segBits
	loDown := lo &^ (simd.BlockWords - 1)
	hiUp := (hi + simd.BlockWords - 1) &^ (simd.BlockWords - 1)
	var tmp [fastChunkWords]uint64
	var masks [fastChunkBlocks]uint32
	for cb := loDown; cb < hiUp; {
		nw := hiUp - cb
		if nw > fastChunkWords {
			nw = fastChunkWords
		}
		chunk := tmp[:nw]
		andWrapInto(chunk, a.words[cb:cb+nw], maps[1].words, cb)
		for _, bm := range maps[2:] {
			andWrapInto(chunk, chunk, bm.words, cb)
		}
		nb := nw / simd.BlockWords
		live := simd.AndSegMasks(masks[:nb], chunk, chunk, segBits)
		if live != 0 {
			if cb < lo {
				masks[0] &^= 1<<uint((lo-cb)*spw) - 1
			}
			if end := cb + nw; end > hi {
				last := end - simd.BlockWords
				masks[nb-1] &= 1<<uint((hi-last)*spw) - 1
			}
			for bi := 0; bi < nb; bi++ {
				m := masks[bi]
				if m == 0 {
					continue
				}
				base := (cb + bi*simd.BlockWords) * spw
				for m != 0 {
					fn(base + simd.Tzcnt32(m))
					m &= m - 1
				}
			}
		}
		cb += nw
	}
}

// andWrapInto computes dst[i] = x[i] & y[(xStart+i) mod len(y)] by splitting
// the window into contiguous runs of y (len(y) is a power of two). dst may
// alias x.
func andWrapInto(dst, x, y []uint64, xStart int) {
	wordMask := len(y) - 1
	done := 0
	for done < len(dst) {
		yOff := (xStart + done) & wordMask
		run := len(dst) - done
		if r := len(y) - yOff; r < run {
			run = r
		}
		simd.AndWords(dst[done:done+run], x[done:done+run], y[yOff:yOff+run])
		done += run
	}
}
