package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, s := range SupportedSegBits {
		b := New(256, s)
		if b.Bits() != 256 || b.SegBits() != s {
			t.Errorf("New(256, %d) = bits %d seg %d", s, b.Bits(), b.SegBits())
		}
		if b.NumSegments() != 256/s {
			t.Errorf("NumSegments = %d, want %d", b.NumSegments(), 256/s)
		}
		if b.SegmentsPerWord() != 64/s {
			t.Errorf("SegmentsPerWord = %d", b.SegmentsPerWord())
		}
	}
	for _, bad := range []struct {
		m uint64
		s int
	}{{100, 8}, {32, 8}, {0, 8}, {256, 7}, {256, 64}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) should panic", bad.m, bad.s)
				}
			}()
			New(bad.m, bad.s)
		}()
	}
}

func TestSetTest(t *testing.T) {
	b := New(128, 8)
	positions := []uint64{0, 1, 63, 64, 127}
	for _, p := range positions {
		if b.Test(p) {
			t.Errorf("bit %d set before Set", p)
		}
		b.Set(p)
		if !b.Test(p) {
			t.Errorf("bit %d not set after Set", p)
		}
	}
	if b.PopCount() != len(positions) {
		t.Errorf("PopCount = %d, want %d", b.PopCount(), len(positions))
	}
	if b.SegmentOf(0) != 0 || b.SegmentOf(7) != 0 || b.SegmentOf(8) != 1 || b.SegmentOf(127) != 15 {
		t.Error("SegmentOf wrong")
	}
}

func TestForEachIntersectingSegmentSameSize(t *testing.T) {
	// Reproduce Example 1 of the paper, scaled to a legal bitmap size.
	// Elements of A hash (identity mod 128) to bits {1,4,15,21,32,34};
	// B to {2,6,12,16,21,23}. With s=8, A occupies segments {0,1,2,4},
	// B segments {0,1,2}; shared live segments with shared set bits: only
	// segment 2 (bit 21 in both).
	a := New(128, 8)
	for _, p := range []uint64{1, 4, 15, 21, 32, 34} {
		a.Set(p)
	}
	b := New(128, 8)
	for _, p := range []uint64{2, 6, 12, 16, 21, 23} {
		b.Set(p)
	}
	var pairs [][2]int
	ForEachIntersectingSegment(a, b, func(sa, sb int) {
		pairs = append(pairs, [2]int{sa, sb})
	})
	if len(pairs) != 1 || pairs[0] != [2]int{2, 2} {
		t.Errorf("pairs = %v, want [[2 2]]", pairs)
	}
	if CountIntersectingSegments(a, b) != 1 {
		t.Error("CountIntersectingSegments != 1")
	}
}

func TestForEachIntersectingSegmentDifferentSizes(t *testing.T) {
	// a has 256 bits, b has 64: segment i of a matches segment i mod 8 of b.
	a := New(256, 8)
	b := New(64, 8)
	a.Set(200) // segment 25 of a -> segment 25 mod 8 = 1 of b (bits 8..15)
	b.Set(8)   // same bit offset within the wrapped word: 200 mod 64 = 8 ✓
	var got [][2]int
	ForEachIntersectingSegment(a, b, func(sa, sb int) { got = append(got, [2]int{sa, sb}) })
	if len(got) != 1 || got[0] != [2]int{25, 1} {
		t.Errorf("got %v, want [[25 1]]", got)
	}
	// A bit of b that wraps to no set bit of a must produce nothing extra.
	b.Set(63)
	got = nil
	ForEachIntersectingSegment(a, b, func(sa, sb int) { got = append(got, [2]int{sa, sb}) })
	if len(got) != 1 {
		t.Errorf("after extra b bit: got %v", got)
	}
}

func TestForEachPanics(t *testing.T) {
	a := New(64, 8)
	b16 := New(64, 16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched segment sizes should panic")
			}
		}()
		ForEachIntersectingSegment(a, b16, func(_, _ int) {})
	}()
	small := New(64, 8)
	big := New(128, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("smaller-first should panic")
			}
		}()
		ForEachIntersectingSegment(small, big, func(_, _ int) {})
	}()
}

// Property: the streamed segment pairs are exactly the segments where both
// bitmaps have at least one common set bit, for all segment sizes.
func TestForEachIntersectingSegmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, segBits := range SupportedSegBits {
		for trial := 0; trial < 100; trial++ {
			m := uint64(64) << uint(rng.Intn(4)) // 64..512
			a := New(m, segBits)
			b := New(m, segBits)
			for i := 0; i < int(m)/4; i++ {
				a.Set(uint64(rng.Intn(int(m))))
				b.Set(uint64(rng.Intn(int(m))))
			}
			want := map[int]bool{}
			for seg := 0; seg < a.NumSegments(); seg++ {
				for bit := seg * segBits; bit < (seg+1)*segBits; bit++ {
					if a.Test(uint64(bit)) && b.Test(uint64(bit)) {
						want[seg] = true
						break
					}
				}
			}
			got := map[int]bool{}
			ForEachIntersectingSegment(a, b, func(sa, sb int) {
				if sa != sb {
					t.Fatalf("same-size bitmaps produced different segments %d, %d", sa, sb)
				}
				if got[sa] {
					t.Fatalf("segment %d reported twice", sa)
				}
				got[sa] = true
			})
			if len(got) != len(want) {
				t.Fatalf("segBits %d: got %d segments, want %d", segBits, len(got), len(want))
			}
			for s := range want {
				if !got[s] {
					t.Fatalf("segBits %d: missing segment %d", segBits, s)
				}
			}
		}
	}
}

// Property: the range variant over a full partition visits exactly the same
// pairs as the unpartitioned stream, in any split.
func TestRangePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := New(512, 8)
		b := New(512, 8)
		for i := 0; i < 200; i++ {
			a.Set(uint64(rng.Intn(512)))
			b.Set(uint64(rng.Intn(512)))
		}
		var whole [][2]int
		ForEachIntersectingSegment(a, b, func(sa, sb int) { whole = append(whole, [2]int{sa, sb}) })
		cut := rng.Intn(len(a.Words()) + 1)
		var parts [][2]int
		ForEachIntersectingSegmentRange(a, b, 0, cut, func(sa, sb int) { parts = append(parts, [2]int{sa, sb}) })
		ForEachIntersectingSegmentRange(a, b, cut, len(a.Words()), func(sa, sb int) { parts = append(parts, [2]int{sa, sb}) })
		if len(whole) != len(parts) {
			t.Fatalf("partition at %d: %d pairs vs %d", cut, len(parts), len(whole))
		}
		for i := range whole {
			if whole[i] != parts[i] {
				t.Fatalf("partition at %d: pair %d = %v, want %v", cut, i, parts[i], whole[i])
			}
		}
	}
}

func TestRangeDifferentSizes(t *testing.T) {
	a := New(256, 16)
	b := New(128, 16)
	a.Set(130)
	b.Set(2)
	var got [][2]int
	ForEachIntersectingSegmentRange(a, b, 0, len(a.Words()), func(sa, sb int) {
		got = append(got, [2]int{sa, sb})
	})
	// bit 130 of a is segment 8 (s=16); 130 mod 128 = 2 -> b segment 0.
	if len(got) != 1 || got[0] != [2]int{8, 0} {
		t.Errorf("got %v, want [[8 0]]", got)
	}
}

func TestKWay(t *testing.T) {
	a := New(256, 8)
	b := New(128, 8)
	c := New(64, 8)
	// Common live bit: 70 in a; 70 mod 128 = 70 in b; 70 mod 64 = 6 in c.
	a.Set(70)
	b.Set(70)
	c.Set(6)
	// Noise that does not survive the 3-way AND.
	a.Set(10)
	b.Set(11)
	c.Set(12)
	var segs []int
	ForEachIntersectingSegmentK([]*Bitmap{a, b, c}, func(s int) { segs = append(segs, s) })
	if len(segs) != 1 || segs[0] != 70/8 {
		t.Errorf("k-way segs = %v, want [%d]", segs, 70/8)
	}
}

func TestKWayPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty maps should panic")
			}
		}()
		ForEachIntersectingSegmentK(nil, func(int) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("larger-later should panic")
			}
		}()
		ForEachIntersectingSegmentK([]*Bitmap{New(64, 8), New(128, 8)}, func(int) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("seg mismatch should panic")
			}
		}()
		ForEachIntersectingSegmentK([]*Bitmap{New(128, 8), New(64, 16)}, func(int) {})
	}()
}

// Property: the ranged k-way variant over any full partition visits exactly
// the segments of the unpartitioned stream, in order.
func TestKWayRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		a := New(512, 8)
		b := New(256, 8)
		c := New(128, 8)
		for i := 0; i < 150; i++ {
			a.Set(uint64(rng.Intn(512)))
			b.Set(uint64(rng.Intn(256)))
			c.Set(uint64(rng.Intn(128)))
		}
		maps := []*Bitmap{a, b, c}
		var whole []int
		ForEachIntersectingSegmentK(maps, func(s int) { whole = append(whole, s) })
		cut := rng.Intn(len(a.Words()) + 1)
		var parts []int
		ForEachIntersectingSegmentKRange(maps, 0, cut, func(s int) { parts = append(parts, s) })
		ForEachIntersectingSegmentKRange(maps, cut, len(a.Words()), func(s int) { parts = append(parts, s) })
		if len(whole) != len(parts) {
			t.Fatalf("partition at %d: %d segments vs %d", cut, len(parts), len(whole))
		}
		for i := range whole {
			if whole[i] != parts[i] {
				t.Fatalf("partition at %d: segment %d = %d, want %d", cut, i, parts[i], whole[i])
			}
		}
	}
}

func TestKWayRangePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty maps should panic")
			}
		}()
		ForEachIntersectingSegmentKRange(nil, 0, 0, func(int) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("larger-later should panic")
			}
		}()
		ForEachIntersectingSegmentKRange([]*Bitmap{New(64, 8), New(128, 8)}, 0, 1, func(int) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("seg-size mismatch should panic")
			}
		}()
		ForEachIntersectingSegmentKRange([]*Bitmap{New(128, 8), New(64, 16)}, 0, 1, func(int) {})
	}()
}

// Property: k-way AND equals the pairwise intersection of all wrapped maps.
func TestKWayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(256, 8)
		b := New(128, 8)
		c := New(128, 8)
		for i := 0; i < 120; i++ {
			a.Set(uint64(rng.Intn(256)))
			b.Set(uint64(rng.Intn(128)))
			c.Set(uint64(rng.Intn(128)))
		}
		want := map[int]bool{}
		for bit := 0; bit < 256; bit++ {
			if a.Test(uint64(bit)) && b.Test(uint64(bit%128)) && c.Test(uint64(bit%128)) {
				want[bit/8] = true
			}
		}
		got := map[int]bool{}
		ForEachIntersectingSegmentK([]*Bitmap{a, b, c}, func(s int) { got[s] = true })
		if len(got) != len(want) {
			return false
		}
		for s := range want {
			if !got[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
