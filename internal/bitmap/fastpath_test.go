package bitmap

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/simd"
)

// collectPairs gathers (segA, segB) pairs from the pairwise filter under the
// current dispatch state.
func collectPairs(a, b *Bitmap, lo, hi int) [][2]int {
	var out [][2]int
	ForEachIntersectingSegmentRange(a, b, lo, hi, func(sa, sb int) {
		out = append(out, [2]int{sa, sb})
	})
	return out
}

func randBitmap(rng *rand.Rand, mBits uint64, segBits int, density float64) *Bitmap {
	bm := New(mBits, segBits)
	n := int(float64(mBits) * density)
	for i := 0; i < n; i++ {
		bm.Set(rng.Uint64() % mBits)
	}
	return bm
}

// TestFastFilterParity compares the chunked mask-stream fast path against the
// scalar word loop over random bitmaps: equal and different sizes, every
// segment width, sparse through dense, and arbitrary word sub-ranges.
func TestFastFilterParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	rng := rand.New(rand.NewSource(21))
	for _, segBits := range SupportedSegBits {
		for _, sizes := range [][2]uint64{{4096, 4096}, {8192, 512}, {65536, 256}, {512, 512}} {
			for _, density := range []float64{0.001, 0.05, 0.4} {
				a := randBitmap(rng, sizes[0], segBits, density)
				b := randBitmap(rng, sizes[1], segBits, density)
				nw := len(a.Words())
				ranges := clampRanges([][2]int{{0, nw}, {1, nw - 1}, {3, nw / 2}, {nw / 3, nw/3 + 17}}, nw)
				for _, r := range ranges {
					prev := simd.SetAsmEnabled(true)
					got := collectPairs(a, b, r[0], r[1])
					simd.SetAsmEnabled(false)
					want := collectPairs(a, b, r[0], r[1])
					simd.SetAsmEnabled(prev)
					if !pairsEqual(got, want) {
						t.Fatalf("segBits=%d sizes=%v density=%v range=%v: fast=%d pairs, scalar=%d pairs",
							segBits, sizes, density, r, len(got), len(want))
					}
				}
			}
		}
	}
}

// clampRanges clips test ranges into [0, nw] and drops empty ones.
func clampRanges(ranges [][2]int, nw int) [][2]int {
	var out [][2]int
	for _, r := range ranges {
		if r[0] < 0 {
			r[0] = 0
		}
		if r[1] > nw {
			r[1] = nw
		}
		if r[0] < r[1] {
			out = append(out, r)
		}
	}
	return out
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFastFilterKParity does the same for the k-way filter.
func TestFastFilterKParity(t *testing.T) {
	if !simd.HasAsm() {
		t.Skip("assembly backend not available")
	}
	rng := rand.New(rand.NewSource(22))
	for _, segBits := range SupportedSegBits {
		for _, k := range []int{2, 3, 5} {
			maps := make([]*Bitmap, k)
			mBits := uint64(16384)
			for i := range maps {
				maps[i] = randBitmap(rng, mBits, segBits, 0.3)
				mBits = max64(256, mBits/2)
			}
			nw := len(maps[0].Words())
			for _, r := range [][2]int{{0, nw}, {2, nw - 3}, {nw / 4, nw / 2}} {
				collect := func() []int {
					var out []int
					ForEachIntersectingSegmentKRange(maps, r[0], r[1], func(seg int) {
						out = append(out, seg)
					})
					return out
				}
				prev := simd.SetAsmEnabled(true)
				got := collect()
				simd.SetAsmEnabled(false)
				want := collect()
				simd.SetAsmEnabled(prev)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("segBits=%d k=%d range=%v: fast=%d segs, scalar=%d segs", segBits, k, r, len(got), len(want))
				}
			}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkForEachIntersectingSegment(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	x := randBitmap(rng, 1<<16, 16, 0.1)
	y := randBitmap(rng, 1<<14, 16, 0.1)
	for _, backend := range []string{"go", "asm"} {
		if backend == "asm" && !simd.HasAsm() {
			continue
		}
		b.Run(backend, func(b *testing.B) {
			prev := simd.SetAsmEnabled(backend == "asm")
			defer simd.SetAsmEnabled(prev)
			b.ReportAllocs()
			n := 0
			for i := 0; i < b.N; i++ {
				ForEachIntersectingSegment(x, y, func(_, _ int) { n++ })
			}
			_ = n
		})
	}
}
