package simd

import (
	"math/rand"
	"testing"

	"fesia/internal/hashutil"
)

// forEachTier runs f once per available dispatch tier with the ladder forced
// to exactly that rung — including the forced-AVX2 tier on AVX-512 hardware —
// restoring the dispatch state afterwards.
func forEachTier(t *testing.T, f func(t *testing.T, tier string)) {
	run := func(tier string, asm, avx512 bool) {
		t.Run(tier, func(t *testing.T) {
			prevAsm := SetAsmEnabled(asm)
			prevAvx512 := SetAvx512Enabled(avx512)
			defer func() {
				SetAsmEnabled(prevAsm)
				SetAvx512Enabled(prevAvx512)
			}()
			f(t, tier)
		})
	}
	run("go", false, false)
	if HasAsm() {
		run("avx2", true, false)
	}
	if HasAVX512() {
		run("avx512", true, true)
	}
}

// TestBackendLadder pins the Backend string to the forced tier.
func TestBackendLadder(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier string) {
		if tier == "go" {
			tier = "scalar"
		}
		if got := Backend(); got != tier {
			t.Fatalf("Backend() = %q, want %q", got, tier)
		}
		if Avx512Active() && !AsmActive() {
			t.Fatal("Avx512Active without AsmActive: the ladder forked")
		}
	})
}

// TestCountSmallTierParity runs CountSmall across every tier with sizes
// reaching the 16-lane register and loop sides beyond it.
func TestCountSmallTierParity(t *testing.T) {
	forEachTier(t, func(t *testing.T, _ string) {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 3000; trial++ {
			la := rng.Intn(17)
			lb := rng.Intn(25)                // loop side past 16 lanes
			span := uint32(40 + rng.Intn(48)) // small span forces overlaps; > la+lb so randSorted can draw
			a := randSorted(rng, la, span)
			b := randSorted(rng, lb, span)
			got := CountSmall(a, b)
			want := countSmallGeneric(a, b)
			if got != want {
				t.Fatalf("trial=%d a=%v b=%v: got=%d want=%d", trial, a, b, got, want)
			}
		}
		// Zero is an element, not padding, on the 16-lane rung too.
		if got := CountSmall([]uint32{0}, []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}); got != 1 {
			t.Fatalf("CountSmall zero-element = %d, want 1", got)
		}
	})
}

// TestIntersectSmallTierParity checks the materializing kernel across every
// tier: count and emitted prefix must match the scalar merge bit for bit.
func TestIntersectSmallTierParity(t *testing.T) {
	forEachTier(t, func(t *testing.T, _ string) {
		rng := rand.New(rand.NewSource(12))
		for trial := 0; trial < 3000; trial++ {
			la := rng.Intn(17)
			lb := rng.Intn(25)
			span := uint32(40 + rng.Intn(48))
			a := randSorted(rng, la, span)
			b := randSorted(rng, lb, span)
			got := make([]uint32, 32)
			want := make([]uint32, 32)
			for i := range got {
				got[i] = 0xDEADBEEF // poison: untouched slots must stay equal
				want[i] = 0xDEADBEEF
			}
			gn := IntersectSmall(got, a, b)
			wn := IntersectSmallGeneric(want, a, b)
			if gn != wn {
				t.Fatalf("trial=%d a=%v b=%v: got n=%d want n=%d", trial, a, b, gn, wn)
			}
			for i := 0; i < wn; i++ {
				if got[i] != want[i] {
					t.Fatalf("trial=%d a=%v b=%v elem %d: got=%d want=%d", trial, a, b, i, got[i], want[i])
				}
			}
		}
		var dst [1]uint32
		dst[0] = 7
		if n := IntersectSmall(dst[:], []uint32{0}, []uint32{0}); n != 1 || dst[0] != 0 {
			t.Fatalf("IntersectSmall({0},{0}) = (%d, %v), want (1, [0])", n, dst)
		}
	})
}

// TestIntersectSmallConflictParity pins the loop-free VPCONFLICTD kernel
// against the scalar merge on its 8x8 domain.
func TestIntersectSmallConflictParity(t *testing.T) {
	if !HasAVX512() {
		t.Skip("AVX-512 rung not available")
	}
	prevAsm := SetAsmEnabled(true)
	prevAvx512 := SetAvx512Enabled(true)
	defer func() {
		SetAsmEnabled(prevAsm)
		SetAvx512Enabled(prevAvx512)
	}()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3000; trial++ {
		la := 1 + rng.Intn(8)
		lb := 1 + rng.Intn(8)
		span := uint32(8 + rng.Intn(24))
		a := randSorted(rng, la, span)
		b := randSorted(rng, lb, span)
		got := make([]uint32, 8)
		want := make([]uint32, 8)
		gn, ok := IntersectSmallConflict(got, a, b)
		if !ok {
			t.Fatalf("trial=%d conflict kernel refused la=%d lb=%d", trial, la, lb)
		}
		wn := IntersectSmallGeneric(want, a, b)
		if gn != wn {
			t.Fatalf("trial=%d a=%v b=%v: got n=%d want n=%d", trial, a, b, gn, wn)
		}
		for i := 0; i < wn; i++ {
			if got[i] != want[i] {
				t.Fatalf("trial=%d a=%v b=%v elem %d: got=%d want=%d", trial, a, b, i, got[i], want[i])
			}
		}
	}
	// A zero b element must match only a real zero a lane, never zero padding.
	var dst [8]uint32
	if n, _ := IntersectSmallConflict(dst[:], []uint32{1, 2}, []uint32{0}); n != 0 {
		t.Fatalf("conflict kernel matched zero padding: n=%d", n)
	}
	if n, _ := IntersectSmallConflict(dst[:], []uint32{0, 2}, []uint32{0}); n != 1 || dst[0] != 0 {
		t.Fatalf("conflict kernel missed genuine zero: n=%d dst=%v", n, dst)
	}
}

// TestContainsTierParity runs Contains across every tier, exercising both
// the 16-lane block loop and the masked tail of the AVX-512 probe.
func TestContainsTierParity(t *testing.T) {
	forEachTier(t, func(t *testing.T, _ string) {
		rng := rand.New(rand.NewSource(14))
		for trial := 0; trial < 500; trial++ {
			n := 1 + rng.Intn(70)
			list := randSorted(rng, n, 96)
			for x := uint32(0); x < 96; x++ {
				want := false
				for _, v := range list {
					want = want || v == x
				}
				if got := Contains(list, x); got != want {
					t.Fatalf("trial=%d Contains(len=%d, %d) = %v, want %v", trial, n, x, got, want)
				}
			}
		}
	})
}

// probeStageRef is the scalar reference for ProbeStage: the exact semantics
// of the probe loop body in internal/core, via hashutil.
func probeStageRef(elems []uint32, words []uint64, h hashutil.Hasher, m uint64) (outE, outP []uint32) {
	for _, x := range elems {
		pos := h.Pos(x, m)
		if words[pos>>6]>>(pos&63)&1 != 0 {
			outE = append(outE, x)
			outP = append(outP, uint32(pos))
		}
	}
	return
}

// TestProbeStageParity checks the gathered hash-probe stage against the
// hashutil splitmix64 reference bit for bit: same survivors, same positions,
// same order.
func TestProbeStageParity(t *testing.T) {
	if !HasAVX512() {
		t.Skip("AVX-512 rung not available")
	}
	prevAsm := SetAsmEnabled(true)
	prevAvx512 := SetAvx512Enabled(true)
	defer func() {
		SetAsmEnabled(prevAsm)
		SetAvx512Enabled(prevAvx512)
	}()
	if !GatherProbeActive() {
		t.Fatal("GatherProbeActive false with the rung forced on")
	}
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 400; trial++ {
		mBits := uint64(64) << rng.Intn(10) // 64 .. 32768 bits
		words := randWords(rng, int(mBits/64))
		seed := rng.Uint64()
		h := hashutil.New(seed)
		n := rng.Intn(129)
		elems := make([]uint32, n)
		for i := range elems {
			elems[i] = rng.Uint32()
		}
		outE := make([]uint32, n)
		outP := make([]uint32, n)
		ns, consumed := ProbeStage(elems, words, seed, mBits-1, outE, outP)
		if want := n &^ 15; consumed != want {
			t.Fatalf("trial=%d consumed=%d want %d", trial, consumed, want)
		}
		wantE, wantP := probeStageRef(elems[:consumed], words, h, mBits)
		if ns != len(wantE) {
			t.Fatalf("trial=%d survivors=%d want %d", trial, ns, len(wantE))
		}
		for i := 0; i < ns; i++ {
			if outE[i] != wantE[i] || outP[i] != wantP[i] {
				t.Fatalf("trial=%d survivor %d: got (%d,%d) want (%d,%d)",
					trial, i, outE[i], outP[i], wantE[i], wantP[i])
			}
		}
	}
}

func FuzzIntersectSmallParity(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0}, []byte{0})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		if len(ra) > 16 {
			ra = ra[:16]
		}
		if len(rb) > 20 {
			rb = rb[:20]
		}
		toSorted := func(r []byte) []uint32 {
			seen := map[uint32]bool{}
			var out []uint32
			for _, v := range r {
				if !seen[uint32(v)] {
					seen[uint32(v)] = true
					out = append(out, uint32(v))
				}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		}
		a, b := toSorted(ra), toSorted(rb)
		want := make([]uint32, 16)
		wn := IntersectSmallGeneric(want, a, b)
		if !HasAsm() {
			return
		}
		prevAsm := SetAsmEnabled(true)
		defer SetAsmEnabled(prevAsm)
		for _, avx512 := range []bool{false, true} {
			prev := SetAvx512Enabled(avx512)
			got := make([]uint32, 16)
			gn := IntersectSmall(got, a, b)
			SetAvx512Enabled(prev)
			if gn != wn {
				t.Fatalf("avx512=%v a=%v b=%v: got n=%d want n=%d", avx512, a, b, gn, wn)
			}
			for i := 0; i < wn; i++ {
				if got[i] != want[i] {
					t.Fatalf("avx512=%v a=%v b=%v elem %d: got=%d want=%d", avx512, a, b, i, got[i], want[i])
				}
			}
		}
	})
}

func FuzzProbeStageParity(f *testing.F) {
	f.Add(uint64(1), uint64(0xFFFF), []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, seed, w0 uint64, raw []byte) {
		if !HasAVX512() {
			return
		}
		prevAsm := SetAsmEnabled(true)
		prevAvx512 := SetAvx512Enabled(true)
		defer func() {
			SetAsmEnabled(prevAsm)
			SetAvx512Enabled(prevAvx512)
		}()
		words := []uint64{w0, ^w0, w0 ^ 0xAAAA, 0}
		const mBits = 256
		elems := make([]uint32, 32)
		for i := range elems {
			elems[i] = uint32(i)
			if i < len(raw) {
				elems[i] = uint32(raw[i]) << 16
			}
		}
		outE := make([]uint32, len(elems))
		outP := make([]uint32, len(elems))
		ns, consumed := ProbeStage(elems, words, seed, mBits-1, outE, outP)
		wantE, wantP := probeStageRef(elems[:consumed], words, hashutil.New(seed), mBits)
		if ns != len(wantE) {
			t.Fatalf("survivors=%d want %d", ns, len(wantE))
		}
		for i := 0; i < ns; i++ {
			if outE[i] != wantE[i] || outP[i] != wantP[i] {
				t.Fatalf("survivor %d: got (%d,%d) want (%d,%d)", i, outE[i], outP[i], wantE[i], wantP[i])
			}
		}
	})
}

// BenchmarkIntersectSmall measures the materializing kernels per tier plus
// the VPCONFLICTD variant — the measurement behind the broadcast-vs-conflict
// dispatch choice documented in DESIGN.md §11.
func BenchmarkIntersectSmall(b *testing.B) {
	a8 := []uint32{3, 9, 17, 22, 31, 40, 51, 63}
	b8 := []uint32{1, 9, 18, 22, 35, 40, 52, 63}
	a16 := []uint32{1, 3, 9, 14, 17, 22, 31, 40, 51, 63, 70, 81, 92, 99, 104, 110}
	b16 := []uint32{2, 3, 10, 14, 18, 22, 35, 40, 52, 63, 71, 81, 93, 99, 105, 110}
	dst := make([]uint32, 16)
	cases := []struct {
		name string
		a, b []uint32
	}{{"8x8", a8, b8}, {"16x16", a16, b16}}
	for _, c := range cases {
		for _, tier := range []string{"go", "avx2", "avx512"} {
			if tier != "go" && !HasAsm() || tier == "avx512" && !HasAVX512() {
				continue
			}
			b.Run(c.name+"/"+tier, func(b *testing.B) {
				prevAsm := SetAsmEnabled(tier != "go")
				prevAvx512 := SetAvx512Enabled(tier == "avx512")
				defer func() {
					SetAsmEnabled(prevAsm)
					SetAvx512Enabled(prevAvx512)
				}()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sinkInt = IntersectSmall(dst, c.a, c.b)
				}
			})
		}
	}
	if HasAVX512() {
		b.Run("8x8/conflict", func(b *testing.B) {
			prevAsm := SetAsmEnabled(true)
			prevAvx512 := SetAvx512Enabled(true)
			defer func() {
				SetAsmEnabled(prevAsm)
				SetAvx512Enabled(prevAvx512)
			}()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkInt, _ = IntersectSmallConflict(dst, a8, b8)
			}
		})
	}
}

// BenchmarkProbeStage measures the gathered probe against the scalar loop.
func BenchmarkProbeStage(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	const mBits = 1 << 16
	words := randWords(rng, mBits/64)
	elems := make([]uint32, 128)
	for i := range elems {
		elems[i] = rng.Uint32()
	}
	outE := make([]uint32, len(elems))
	outP := make([]uint32, len(elems))
	h := hashutil.New(42)
	b.Run("go", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, x := range elems {
				pos := h.Pos(x, mBits)
				if words[pos>>6]>>(pos&63)&1 != 0 {
					outE[n] = x
					outP[n] = uint32(pos)
					n++
				}
			}
			sinkInt = n
		}
	})
	if !HasAVX512() {
		return
	}
	b.Run("avx512", func(b *testing.B) {
		prevAsm := SetAsmEnabled(true)
		prevAvx512 := SetAvx512Enabled(true)
		defer func() {
			SetAsmEnabled(prevAsm)
			SetAvx512Enabled(prevAvx512)
		}()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkInt, _ = ProbeStage(elems, words, 42, mBits-1, outE, outP)
		}
	})
}
