// Package simd provides the data-parallel primitives of the FESIA
// implementation, in three layers.
//
// Word-level bitmap operations (AndWords and friends) carry the
// bitmap-level filtering step: a 64-bit word AND is genuine data-parallel
// hardware work in Go, so the coarse-grained pruning phase keeps its real
// O(m/w) character. Segment transformations (SegmentMask8/16/32) and the
// scalar bit utilities (Tzcnt, Popcount — wrapping math/bits, standing in
// for x86 TZCNT/POPCNT) implement the non-zero segment extraction of the
// paper's Section IV.
//
// The vector register types model the ISAs the paper targets:
//
//	Vec4  — four 32-bit lanes, models an SSE xmm register
//	Vec8  — eight 32-bit lanes, models an AVX ymm register
//	Vec16 — sixteen 32-bit lanes, models an AVX512 zmm register
//
// with the paper's operation vocabulary: aligned/partial loads, lane
// broadcasts, lane-wise equality compares (branchless), bitwise OR/AND, and
// movemask. Go has no intrinsics, so these ops cost ~V scalar instructions
// rather than one; production kernels therefore execute the equivalent
// comparison stream in scalar form (see internal/kernels/kernelgen), and
// the vector model serves as their executable specification — the kernel
// test suite cross-validates every in-register kernel against Fig. 2
// expressed in these ops.
package simd
