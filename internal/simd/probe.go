package simd

// Batched hash-probe stage: the AVX-512 half of the hash-probe strategy
// (Section V). The scalar probe loop in internal/core hashes one element,
// loads one bitmap word and tests one bit at a time; the gathered stage
// below does all three sixteen elements per iteration — splitmix64 in qword
// lanes, one VPGATHERDD for the sixteen containing bitmap words, VPTESTMD
// for the bit tests — and compress-stores the surviving (element, position)
// pairs in element order. The consumer then resolves each survivor's segment
// scan exactly as before: the stage changes the probe loop's shape, not its
// semantics, which the parity tests in internal/core assert.

// ProbeStageBlock is the largest element count callers should hand one
// ProbeStage call, sized so the out arrays fit comfortably on the stack.
const ProbeStageBlock = 128

// GatherProbeActive reports whether ProbeStage is dispatchable: the AVX-512
// rung must be live. Callers must additionally gate on their own invariants
// (bitmap positions fitting 32 bits; see ProbeStage).
func GatherProbeActive() bool { return Avx512Active() }

// ProbeStage probes the longest 16-multiple prefix of elems against the
// bitmap words: for each element x it computes pos = splitmix64(x, seed) &
// posMask and tests bit pos of the bitmap, compress-storing survivors' x to
// outE and pos to outP in element order. Returns the survivor count and the
// number of elements consumed (len(elems) &^ 15 — the caller probes the tail
// scalar-wise). Requirements: the AVX-512 rung active (GatherProbeActive),
// posMask < 1<<32 so positions fit the uint32 out lanes, posMask+1 a power
// of two no larger than 64*len(words), and len(outE), len(outP) at least
// len(elems) &^ 15 (every element may survive).
func ProbeStage(elems []uint32, words []uint64, seed, posMask uint64, outE, outP []uint32) (survivors, consumed int) {
	n := len(elems) &^ 15
	if n == 0 {
		return 0, 0
	}
	if len(outE) < n || len(outP) < n {
		panic("simd: ProbeStage out buffers too short")
	}
	return probeStageAsm(elems, n, words, seed, posMask, outE, outP), n
}
