//go:build amd64 && !noasm

// Real AVX2 kernels behind the runtime dispatch in dispatch_amd64.go. Each
// routine is the hardware form of an operation the pure-Go reference models
// scalar-wise; the parity fuzz tests in parity_test.go assert bit-exact
// agreement. Instruction vocabulary follows the paper's Section IV / Fig. 2:
// VPAND (step 1), VPCMPEQB/W/D against zero + VPMOVMSKB (step 2), with the
// tzcnt extraction of step 3 left to the Go consumers of the mask stream,
// and VPBROADCASTD + VPCMPEQD + VPSUBD for the segment kernels (Fig. 2's
// broadcast-compare idiom).

#include "textflag.h"

// laneMask<> holds nine 8-lane dword masks: entry k (32 bytes at offset
// k*32) has its first k lanes all-ones. Used by VPMASKMOVD bounds-safe loads
// of short element lists and to squash compares against the padding lanes.
GLOBL laneMask<>(SB), RODATA, $288

DATA laneMask<>+0(SB)/8, $0x0000000000000000    // entry 0: no lanes
DATA laneMask<>+8(SB)/8, $0x0000000000000000
DATA laneMask<>+16(SB)/8, $0x0000000000000000
DATA laneMask<>+24(SB)/8, $0x0000000000000000
DATA laneMask<>+32(SB)/8, $0x00000000FFFFFFFF   // entry 1
DATA laneMask<>+40(SB)/8, $0x0000000000000000
DATA laneMask<>+48(SB)/8, $0x0000000000000000
DATA laneMask<>+56(SB)/8, $0x0000000000000000
DATA laneMask<>+64(SB)/8, $0xFFFFFFFFFFFFFFFF   // entry 2
DATA laneMask<>+72(SB)/8, $0x0000000000000000
DATA laneMask<>+80(SB)/8, $0x0000000000000000
DATA laneMask<>+88(SB)/8, $0x0000000000000000
DATA laneMask<>+96(SB)/8, $0xFFFFFFFFFFFFFFFF   // entry 3
DATA laneMask<>+104(SB)/8, $0x00000000FFFFFFFF
DATA laneMask<>+112(SB)/8, $0x0000000000000000
DATA laneMask<>+120(SB)/8, $0x0000000000000000
DATA laneMask<>+128(SB)/8, $0xFFFFFFFFFFFFFFFF  // entry 4
DATA laneMask<>+136(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+144(SB)/8, $0x0000000000000000
DATA laneMask<>+152(SB)/8, $0x0000000000000000
DATA laneMask<>+160(SB)/8, $0xFFFFFFFFFFFFFFFF  // entry 5
DATA laneMask<>+168(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+176(SB)/8, $0x00000000FFFFFFFF
DATA laneMask<>+184(SB)/8, $0x0000000000000000
DATA laneMask<>+192(SB)/8, $0xFFFFFFFFFFFFFFFF  // entry 6
DATA laneMask<>+200(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+208(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+216(SB)/8, $0x0000000000000000
DATA laneMask<>+224(SB)/8, $0xFFFFFFFFFFFFFFFF  // entry 7
DATA laneMask<>+232(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+240(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+248(SB)/8, $0x00000000FFFFFFFF
DATA laneMask<>+256(SB)/8, $0xFFFFFFFFFFFFFFFF  // entry 8: all lanes
DATA laneMask<>+264(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+272(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA laneMask<>+280(SB)/8, $0xFFFFFFFFFFFFFFFF

// func andSegMask8AVX2(masks *uint32, a, b *uint64, nblocks int) int
//
// Fused bitmap filter for 8-bit segments: per 4-word block, VPAND the 256-bit
// halves, VPCMPEQB against zero, VPMOVMSKB, invert — one bit per live byte
// segment, 32 bits per block. Accumulates the total live-segment popcount.
TEXT ·andSegMask8AVX2(SB), NOSPLIT, $0-40
	MOVQ  masks+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  b+16(FP), DX
	MOVQ  nblocks+24(FP), CX
	VPXOR Y2, Y2, Y2           // zero for the segment compare
	XORQ  AX, AX               // live-segment accumulator
	XORQ  R8, R8               // block index

seg8loop:
	CMPQ  R8, CX
	JGE   seg8done
	MOVQ  R8, R9
	SHLQ  $5, R9               // byte offset = block * 32
	VMOVDQU   (SI)(R9*1), Y0
	VPAND     (DX)(R9*1), Y0, Y0
	VPCMPEQB  Y2, Y0, Y1       // 0xFF per zero byte
	VPMOVMSKB Y1, R10          // 32-bit zero-byte mask
	NOTL      R10              // live-byte mask
	MOVL      R10, (DI)(R8*4)
	POPCNTL   R10, R11
	ADDQ      R11, AX
	INCQ      R8
	JMP       seg8loop

seg8done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func andSegMask16AVX2(masks *uint32, a, b *uint64, nblocks int) int
//
// 16-bit segments: VPCMPEQW yields a doubled movemask (two identical bits
// per half-word); PEXT with 0x55555555 compresses it to one bit per segment,
// 16 bits per block.
TEXT ·andSegMask16AVX2(SB), NOSPLIT, $0-40
	MOVQ  masks+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  b+16(FP), DX
	MOVQ  nblocks+24(FP), CX
	VPXOR Y2, Y2, Y2
	MOVL  $0x55555555, R12     // PEXT selector: low bit of each 2-bit pair
	XORQ  AX, AX
	XORQ  R8, R8

seg16loop:
	CMPQ  R8, CX
	JGE   seg16done
	MOVQ  R8, R9
	SHLQ  $5, R9
	VMOVDQU   (SI)(R9*1), Y0
	VPAND     (DX)(R9*1), Y0, Y0
	VPCMPEQW  Y2, Y0, Y1       // 0xFFFF per zero half-word
	VPMOVMSKB Y1, R10
	NOTL      R10
	PEXTL     R12, R10, R10    // 2 bits per segment -> 1
	MOVL      R10, (DI)(R8*4)
	POPCNTL   R10, R11
	ADDQ      R11, AX
	INCQ      R8
	JMP       seg16loop

seg16done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func andSegMask32AVX2(masks *uint32, a, b *uint64, nblocks int) int
//
// 32-bit segments: VPCMPEQD + VMOVMSKPS gives one bit per dword directly,
// 8 bits per block.
TEXT ·andSegMask32AVX2(SB), NOSPLIT, $0-40
	MOVQ  masks+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  b+16(FP), DX
	MOVQ  nblocks+24(FP), CX
	VPXOR Y2, Y2, Y2
	XORQ  AX, AX
	XORQ  R8, R8

seg32loop:
	CMPQ  R8, CX
	JGE   seg32done
	MOVQ  R8, R9
	SHLQ  $5, R9
	VMOVDQU   (SI)(R9*1), Y0
	VPAND     (DX)(R9*1), Y0, Y0
	VPCMPEQD  Y2, Y0, Y1       // all-ones per zero dword
	VMOVMSKPS Y1, R10          // 8-bit zero-dword mask
	NOTL      R10
	ANDL      $0xFF, R10
	MOVL      R10, (DI)(R8*4)
	POPCNTL   R10, R11
	ADDQ      R11, AX
	INCQ      R8
	JMP       seg32loop

seg32done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func andWordsAVX2(dst, a, b *uint64, nblocks int) int
//
// dst = a & b over 4-word blocks, returning the number of non-zero result
// words (VPCMPEQQ against zero + VMOVMSKPD).
TEXT ·andWordsAVX2(SB), NOSPLIT, $0-40
	MOVQ  dst+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  b+16(FP), DX
	MOVQ  nblocks+24(FP), CX
	VPXOR Y2, Y2, Y2
	XORQ  AX, AX               // non-zero word count
	XORQ  R8, R8

andloop:
	CMPQ  R8, CX
	JGE   anddone
	MOVQ  R8, R9
	SHLQ  $5, R9
	VMOVDQU   (SI)(R9*1), Y0
	VPAND     (DX)(R9*1), Y0, Y0
	VMOVDQU   Y0, (DI)(R9*1)
	VPCMPEQQ  Y2, Y0, Y1       // all-ones per zero word
	VMOVMSKPD Y1, R10          // 4-bit zero-word mask
	POPCNTL   R10, R10
	NEGQ      R10
	LEAQ      4(AX)(R10*1), AX // += 4 - zeros
	INCQ      R8
	JMP       andloop

anddone:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET

// func countSmallAVX2(a *uint32, la int, b *uint32, lb int) int
//
// Broadcast-compare-count segment kernel: b (1..8 elements) is masked-loaded
// into one register; each element of a is VPBROADCASTD against it and
// matches accumulate lane-wise via VPSUBD of the compare mask (each match
// adds 1 to its lane). Padding lanes load as zero, so compares are squashed
// with the lane mask before accumulating (a genuine 0 element must not match
// padding). A final horizontal add yields |a ∩ b|.
TEXT ·countSmallAVX2(SB), NOSPLIT, $0-40
	MOVQ  a+0(FP), SI
	MOVQ  la+8(FP), CX
	MOVQ  b+16(FP), DX
	MOVQ  lb+24(FP), R8
	SHLQ  $5, R8
	LEAQ  laneMask<>(SB), R9
	VMOVDQU    (R9)(R8*1), Y3  // lane mask for lb
	VPMASKMOVD (DX), Y3, Y4    // b, padded with zeros
	VPXOR Y5, Y5, Y5           // per-lane match accumulator
	XORQ  R10, R10

cntloop:
	CMPQ  R10, CX
	JGE   cntdone
	VPBROADCASTD (SI)(R10*4), Y0
	VPCMPEQD Y4, Y0, Y1
	VPAND    Y3, Y1, Y1
	VPSUBD   Y1, Y5, Y5
	INCQ     R10
	JMP      cntloop

cntdone:
	VEXTRACTI128 $1, Y5, X1    // horizontal add of 8 lanes
	VPADDD  X1, X5, X5
	VPSHUFD $0x4E, X5, X1
	VPADDD  X1, X5, X5
	VPSHUFD $0xB1, X5, X1
	VPADDD  X1, X5, X5
	VMOVD   X5, AX
	VZEROUPPER
	MOVQ    AX, ret+32(FP)
	RET

// func containsAVX2(b *uint32, lb int, x uint32) int
//
// Membership probe: broadcast x, compare against b eight lanes at a time
// (masked tail), OR the movemasks. Returns non-zero iff x occurs in b.
TEXT ·containsAVX2(SB), NOSPLIT, $0-32
	MOVQ b+0(FP), DX
	MOVQ lb+8(FP), CX
	MOVL x+16(FP), R11
	VMOVD R11, X0
	VPBROADCASTD X0, Y0
	XORQ AX, AX

cblocks:
	CMPQ CX, $8
	JLT  ctail
	VMOVDQU   (DX), Y1
	VPCMPEQD  Y0, Y1, Y1
	VPMOVMSKB Y1, R10
	ORL       R10, AX
	ADDQ      $32, DX
	SUBQ      $8, CX
	JMP       cblocks

ctail:
	TESTQ CX, CX
	JE    cdone
	SHLQ  $5, CX
	LEAQ  laneMask<>(SB), R9
	VMOVDQU    (R9)(CX*1), Y3
	VPMASKMOVD (DX), Y3, Y1
	VPCMPEQD   Y0, Y1, Y1
	VPAND      Y3, Y1, Y1
	VPMOVMSKB  Y1, R10
	ORL        R10, AX

cdone:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET
