package simd

// Word-level bitmap operations. The bitmap-level intersection of FESIA
// (Section IV, step 1: "vandps" on w bits at a time) is reproduced here with
// native 64-bit words. A register of emulated width w covers w/64 words;
// AndWords processes them in unrolled groups so the inner loop mirrors the
// vector stride of the chosen ISA.

// AndWords computes dst[i] = a[i] & b[i] for all i and returns the number of
// non-zero result words. a, b and dst must have equal length.
func AndWords(dst, a, b []uint64) int {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("simd: AndWords length mismatch")
	}
	nonZero := 0
	i := 0
	if AsmActive() && len(a) >= BlockWords {
		nblocks := len(a) / BlockWords
		nonZero = andWordsBlocks(dst, a, b, nblocks)
		i = nblocks * BlockWords
	}
	// Unrolled by 8 words (512 bits) — one emulated zmm op per group.
	for ; i+8 <= len(a); i += 8 {
		w0 := a[i] & b[i]
		w1 := a[i+1] & b[i+1]
		w2 := a[i+2] & b[i+2]
		w3 := a[i+3] & b[i+3]
		w4 := a[i+4] & b[i+4]
		w5 := a[i+5] & b[i+5]
		w6 := a[i+6] & b[i+6]
		w7 := a[i+7] & b[i+7]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = w0, w1, w2, w3
		dst[i+4], dst[i+5], dst[i+6], dst[i+7] = w4, w5, w6, w7
		if w0|w1|w2|w3|w4|w5|w6|w7 != 0 {
			nonZero += boolToInt(w0 != 0) + boolToInt(w1 != 0) +
				boolToInt(w2 != 0) + boolToInt(w3 != 0) +
				boolToInt(w4 != 0) + boolToInt(w5 != 0) +
				boolToInt(w6 != 0) + boolToInt(w7 != 0)
		}
	}
	for ; i < len(a); i++ {
		w := a[i] & b[i]
		dst[i] = w
		if w != 0 {
			nonZero++
		}
	}
	return nonZero
}

// AndWordsWrap computes dst[i] = a[i] & b[i % len(b)]. It implements the
// different-bitmap-size rule of Section III-C: when the larger set's bitmap
// has m1 bits and the smaller has m2 | m1, segment i of the larger set is
// compared against segment i mod (m2/s) of the smaller, which at word level
// is a wrapped index. len(b) must divide len(a).
func AndWordsWrap(dst, a, b []uint64) int {
	if len(dst) != len(a) {
		panic("simd: AndWordsWrap length mismatch")
	}
	if len(b) == 0 || len(a)%len(b) != 0 {
		panic("simd: AndWordsWrap requires len(b) to divide len(a)")
	}
	nonZero := 0
	nb := len(b)
	j := 0
	for i := range a {
		w := a[i] & b[j]
		dst[i] = w
		if w != 0 {
			nonZero++
		}
		j++
		if j == nb {
			j = 0
		}
	}
	return nonZero
}

// AndWordsK computes the k-way AND dst[i] = maps[0][i] & ... & maps[k-1][i]
// for bitmaps of identical length, returning the number of non-zero words.
func AndWordsK(dst []uint64, maps ...[]uint64) int {
	if len(maps) == 0 {
		panic("simd: AndWordsK requires at least one bitmap")
	}
	for _, m := range maps {
		if len(m) != len(dst) {
			panic("simd: AndWordsK length mismatch")
		}
	}
	nonZero := 0
	for i := range dst {
		w := maps[0][i]
		for _, m := range maps[1:] {
			w &= m[i]
		}
		dst[i] = w
		if w != 0 {
			nonZero++
		}
	}
	return nonZero
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// SegmentMask8 performs the "segment transformation" of Section IV step 2 for
// 8-bit segments over one 64-bit word: it returns one bit per byte, set iff
// that byte of w is non-zero — the software analogue of pcmpeqb against zero
// followed by movemask (inverted). Bit i of the result corresponds to byte i.
func SegmentMask8(w uint64) uint32 {
	var m uint32
	if w&0xff != 0 {
		m |= 1 << 0
	}
	if w&0xff00 != 0 {
		m |= 1 << 1
	}
	if w&0xff0000 != 0 {
		m |= 1 << 2
	}
	if w&0xff000000 != 0 {
		m |= 1 << 3
	}
	if w&0xff00000000 != 0 {
		m |= 1 << 4
	}
	if w&0xff0000000000 != 0 {
		m |= 1 << 5
	}
	if w&0xff000000000000 != 0 {
		m |= 1 << 6
	}
	if w&0xff00000000000000 != 0 {
		m |= 1 << 7
	}
	return m
}

// SegmentMask16 returns one bit per 16-bit half-word of w, set iff that
// half-word is non-zero (pcmpeqw analogue). Bit i corresponds to half-word i.
func SegmentMask16(w uint64) uint32 {
	var m uint32
	if w&0xffff != 0 {
		m |= 1
	}
	if w&0xffff0000 != 0 {
		m |= 2
	}
	if w&0xffff00000000 != 0 {
		m |= 4
	}
	if w&0xffff000000000000 != 0 {
		m |= 8
	}
	return m
}

// SegmentMask32 returns one bit per 32-bit half of w, set iff non-zero
// (pcmpeqd analogue).
func SegmentMask32(w uint64) uint32 {
	var m uint32
	if w&0xffffffff != 0 {
		m |= 1
	}
	if w>>32 != 0 {
		m |= 2
	}
	return m
}
