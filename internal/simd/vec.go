package simd

import "math/bits"

// Width identifies an emulated vector ISA by its register width in bits.
type Width int

// Supported emulated ISA widths. The names follow the x86 instruction-set
// families the paper evaluates.
const (
	WidthSSE    Width = 128
	WidthAVX    Width = 256
	WidthAVX512 Width = 512
)

// Lanes reports the number of 32-bit lanes in a register of this width
// (the paper's V = w/Se with Se = 32).
func (w Width) Lanes() int { return int(w) / 32 }

// Bits reports the register width in bits (the paper's w).
func (w Width) Bits() int { return int(w) }

// String returns the conventional ISA name for the width.
func (w Width) String() string {
	switch w {
	case WidthSSE:
		return "SSE"
	case WidthAVX:
		return "AVX"
	case WidthAVX512:
		return "AVX512"
	default:
		return "Width?"
	}
}

// Valid reports whether w is one of the supported emulated widths.
func (w Width) Valid() bool {
	return w == WidthSSE || w == WidthAVX || w == WidthAVX512
}

// Vec4 models a 128-bit SSE register holding four 32-bit lanes.
type Vec4 [4]uint32

// Vec8 models a 256-bit AVX register holding eight 32-bit lanes.
type Vec8 [8]uint32

// Vec16 models a 512-bit AVX512 register holding sixteen 32-bit lanes.
type Vec16 [16]uint32

// ---------------------------------------------------------------------------
// 128-bit (SSE) operations — the _mm_* family from Fig. 2 of the paper.
// ---------------------------------------------------------------------------

// Load4 loads four consecutive 32-bit elements starting at p[0]
// (_mm_load_si128). p must have length >= 4.
func Load4(p []uint32) Vec4 {
	_ = p[3]
	return Vec4{p[0], p[1], p[2], p[3]}
}

// LoadPartial4 loads min(len(p), 4) elements and fills the remaining lanes
// with the sentinel, which callers choose so it can never compare equal to a
// set element. It models a masked/bounds-safe tail load.
func LoadPartial4(p []uint32, sentinel uint32) Vec4 {
	v := Vec4{sentinel, sentinel, sentinel, sentinel}
	for i := 0; i < len(p) && i < 4; i++ {
		v[i] = p[i]
	}
	return v
}

// Broadcast4 replicates x into all four lanes (_mm_set1_epi32).
func Broadcast4(x uint32) Vec4 { return Vec4{x, x, x, x} }

// eqMask returns all-ones when a == b, else zero, without a branch: for
// d = a^b != 0, d|-d has its sign bit set, so the arithmetic shift smears it
// into 0xFFFFFFFF, which the final complement turns into the "not equal"
// mask.
func eqMask(a, b uint32) uint32 {
	d := a ^ b
	return ^uint32(int32(d|-d) >> 31)
}

// CmpEq4 compares lanes for equality, producing all-ones lanes on match
// (_mm_cmpeq_epi32).
func CmpEq4(a, b Vec4) Vec4 {
	return Vec4{
		eqMask(a[0], b[0]), eqMask(a[1], b[1]),
		eqMask(a[2], b[2]), eqMask(a[3], b[3]),
	}
}

// Or4 returns the lane-wise bitwise OR (_mm_or_si128).
func Or4(a, b Vec4) Vec4 {
	return Vec4{a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]}
}

// And4 returns the lane-wise bitwise AND (_mm_and_si128).
func And4(a, b Vec4) Vec4 {
	return Vec4{a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]}
}

// MoveMask4 packs the sign bit of each lane into the low four bits of the
// result (_mm_movemask_ps).
func MoveMask4(a Vec4) uint32 {
	return a[0]>>31 | a[1]>>31<<1 | a[2]>>31<<2 | a[3]>>31<<3
}

// ---------------------------------------------------------------------------
// 256-bit (AVX) operations.
// ---------------------------------------------------------------------------

// Load8 loads eight consecutive elements (_mm256_load_si256).
func Load8(p []uint32) Vec8 {
	_ = p[7]
	return Vec8{p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]}
}

// LoadPartial8 loads min(len(p), 8) elements, padding with sentinel.
func LoadPartial8(p []uint32, sentinel uint32) Vec8 {
	var v Vec8
	for i := range v {
		v[i] = sentinel
	}
	for i := 0; i < len(p) && i < 8; i++ {
		v[i] = p[i]
	}
	return v
}

// Broadcast8 replicates x into all eight lanes (_mm256_set1_epi32).
func Broadcast8(x uint32) Vec8 {
	return Vec8{x, x, x, x, x, x, x, x}
}

// CmpEq8 compares lanes for equality (_mm256_cmpeq_epi32).
func CmpEq8(a, b Vec8) Vec8 {
	return Vec8{
		eqMask(a[0], b[0]), eqMask(a[1], b[1]),
		eqMask(a[2], b[2]), eqMask(a[3], b[3]),
		eqMask(a[4], b[4]), eqMask(a[5], b[5]),
		eqMask(a[6], b[6]), eqMask(a[7], b[7]),
	}
}

// Or8 returns the lane-wise OR (_mm256_or_si256).
func Or8(a, b Vec8) Vec8 {
	return Vec8{
		a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3],
		a[4] | b[4], a[5] | b[5], a[6] | b[6], a[7] | b[7],
	}
}

// And8 returns the lane-wise AND (_mm256_and_si256).
func And8(a, b Vec8) Vec8 {
	return Vec8{
		a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3],
		a[4] & b[4], a[5] & b[5], a[6] & b[6], a[7] & b[7],
	}
}

// MoveMask8 packs lane sign bits into the low eight bits (_mm256_movemask_ps).
func MoveMask8(a Vec8) uint32 {
	return a[0]>>31 | a[1]>>31<<1 | a[2]>>31<<2 | a[3]>>31<<3 |
		a[4]>>31<<4 | a[5]>>31<<5 | a[6]>>31<<6 | a[7]>>31<<7
}

// ---------------------------------------------------------------------------
// 512-bit (AVX512) operations.
// ---------------------------------------------------------------------------

// Load16 loads sixteen consecutive elements (_mm512_load_si512).
func Load16(p []uint32) Vec16 {
	_ = p[15]
	var v Vec16
	copy(v[:], p)
	return v
}

// LoadPartial16 loads min(len(p), 16) elements, padding with sentinel. It
// models the AVX512 masked load used for bounds-safe tails.
func LoadPartial16(p []uint32, sentinel uint32) Vec16 {
	var v Vec16
	for i := range v {
		v[i] = sentinel
	}
	for i := 0; i < len(p) && i < 16; i++ {
		v[i] = p[i]
	}
	return v
}

// Broadcast16 replicates x into all sixteen lanes (_mm512_set1_epi32).
func Broadcast16(x uint32) Vec16 {
	return Vec16{x, x, x, x, x, x, x, x, x, x, x, x, x, x, x, x}
}

// CmpEq16 compares lanes for equality. The hardware instruction
// (_mm512_cmpeq_epi32_mask) produces a k-mask directly; we keep the
// lane-vector form for symmetry and provide MoveMask16 to extract it.
func CmpEq16(a, b Vec16) Vec16 {
	return Vec16{
		eqMask(a[0], b[0]), eqMask(a[1], b[1]),
		eqMask(a[2], b[2]), eqMask(a[3], b[3]),
		eqMask(a[4], b[4]), eqMask(a[5], b[5]),
		eqMask(a[6], b[6]), eqMask(a[7], b[7]),
		eqMask(a[8], b[8]), eqMask(a[9], b[9]),
		eqMask(a[10], b[10]), eqMask(a[11], b[11]),
		eqMask(a[12], b[12]), eqMask(a[13], b[13]),
		eqMask(a[14], b[14]), eqMask(a[15], b[15]),
	}
}

// Or16 returns the lane-wise OR.
func Or16(a, b Vec16) Vec16 {
	return Vec16{
		a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3],
		a[4] | b[4], a[5] | b[5], a[6] | b[6], a[7] | b[7],
		a[8] | b[8], a[9] | b[9], a[10] | b[10], a[11] | b[11],
		a[12] | b[12], a[13] | b[13], a[14] | b[14], a[15] | b[15],
	}
}

// And16 returns the lane-wise AND.
func And16(a, b Vec16) Vec16 {
	return Vec16{
		a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3],
		a[4] & b[4], a[5] & b[5], a[6] & b[6], a[7] & b[7],
		a[8] & b[8], a[9] & b[9], a[10] & b[10], a[11] & b[11],
		a[12] & b[12], a[13] & b[13], a[14] & b[14], a[15] & b[15],
	}
}

// MoveMask16 packs lane sign bits into the low sixteen bits.
func MoveMask16(a Vec16) uint32 {
	return a[0]>>31 | a[1]>>31<<1 | a[2]>>31<<2 | a[3]>>31<<3 |
		a[4]>>31<<4 | a[5]>>31<<5 | a[6]>>31<<6 | a[7]>>31<<7 |
		a[8]>>31<<8 | a[9]>>31<<9 | a[10]>>31<<10 | a[11]>>31<<11 |
		a[12]>>31<<12 | a[13]>>31<<13 | a[14]>>31<<14 | a[15]>>31<<15
}

// ---------------------------------------------------------------------------
// Scalar bit utilities (TZCNT / POPCNT / LZCNT stand-ins).
// ---------------------------------------------------------------------------

// Tzcnt32 returns the number of trailing zero bits in x (x86 TZCNT).
// Tzcnt32(0) == 32.
func Tzcnt32(x uint32) int { return bits.TrailingZeros32(x) }

// Tzcnt64 returns the number of trailing zero bits in x. Tzcnt64(0) == 64.
func Tzcnt64(x uint64) int { return bits.TrailingZeros64(x) }

// Popcount32 returns the number of set bits in x (x86 POPCNT).
func Popcount32(x uint32) int { return bits.OnesCount32(x) }

// Popcount64 returns the number of set bits in x.
func Popcount64(x uint64) int { return bits.OnesCount64(x) }

// ClearLowestSet clears the least-significant set bit of x (x86 BLSR).
func ClearLowestSet(x uint32) uint32 { return x & (x - 1) }

// ClearLowestSet64 clears the least-significant set bit of x.
func ClearLowestSet64(x uint64) uint64 { return x & (x - 1) }
