//go:build !amd64 || noasm

package simd

// Scalar-only build: no assembly backend exists, dispatch is compiled out,
// and every entry point takes the pure-Go reference path. This file is the
// `noasm` escape hatch (and the default on non-amd64 architectures).

// HasAsm reports whether the assembly backend is compiled in: never, here.
func HasAsm() bool { return false }

// HasAVX512 reports whether the AVX-512 rung is compiled in: never, here.
func HasAVX512() bool { return false }

// AsmActive is constant false so the compiler removes the fast-path branches.
func AsmActive() bool { return false }

// Avx512Active is constant false so the compiler removes the top-rung
// branches.
func Avx512Active() bool { return false }

// SetAsmEnabled is a no-op on scalar-only builds; it reports the (always
// false) previous state.
func SetAsmEnabled(bool) bool { return false }

// SetAvx512Enabled is a no-op on scalar-only builds; it reports the (always
// false) previous state.
func SetAvx512Enabled(bool) bool { return false }

// Backend names the active kernel backend: always "scalar" here.
func Backend() string { return "scalar" }

// The stubs below keep the dispatching call sites compiling; AsmActive() is
// false, so they are unreachable.

func andSegMasksAsm(masks []uint32, a, b []uint64, segBits int) int {
	return AndSegMasksGeneric(masks, a, b, segBits)
}

func andWordsBlocks(dst, a, b []uint64, nblocks int) int {
	panic("simd: no assembly backend")
}

func countSmallAsm(a, b []uint32) (int, bool) { return 0, false }

func intersectSmallAsm(dst, a, b []uint32) (int, bool) { return 0, false }

// IntersectSmallConflict is the VPCONFLICTD kernel probe: never available on
// scalar-only builds.
func IntersectSmallConflict(dst, a, b []uint32) (int, bool) { return 0, false }

func containsAsmDispatch(list []uint32, x uint32) bool {
	panic("simd: no assembly backend")
}

func probeStageAsm(elems []uint32, n int, words []uint64, seed, posMask uint64, outE, outP []uint32) int {
	panic("simd: no assembly backend")
}
