package simd

// Fused bitmap filtering: step 1 + step 2 of Section IV in one pass. Instead
// of ANDing one 64-bit word at a time and applying the segment transformation
// to each non-zero word, AndSegMasks processes BlockWords words (one 256-bit
// register on the AVX2 backend) per iteration — VPAND, VPCMPEQB/W/D against
// zero, VPMOVMSKB — and emits one compact per-block mask with a bit per live
// segment. Consumers then extract segment indices from the mask stream with
// tzcnt, exactly as step 3 prescribes, but over 4x fewer loop iterations and
// with no data-dependent branch in the filter itself.
//
// The pure-Go implementation below is the reference semantics (and the only
// implementation on non-amd64 or under the `noasm` build tag); the assembly
// backend in simd_amd64.s must match it bit for bit, which the parity fuzz
// tests assert.

// BlockWords is the number of 64-bit bitmap words one AndSegMasks block
// covers: 4 words = 256 bits = one ymm register.
const BlockWords = 4

// BlockSegs returns the number of segments (mask bits) per block for a
// segment size: 32, 16 or 8 for 8-, 16- and 32-bit segments.
func BlockSegs(segBits int) int { return BlockWords * 64 / segBits }

// AndSegMasks computes, for each block i of BlockWords words, a mask whose
// bit k is set iff segment k of a[4i:4i+4] & b[4i:4i+4] is non-zero, and
// stores it in masks[i]. Bit k of masks[i] corresponds to segment
// i*BlockSegs(segBits) + k of the ANDed bitmap. It returns the total number
// of live segments (set mask bits). len(a) and len(b) must both equal
// BlockWords*len(masks); segBits must be 8, 16 or 32.
func AndSegMasks(masks []uint32, a, b []uint64, segBits int) int {
	if len(a) != len(b) || len(a) != BlockWords*len(masks) {
		panic("simd: AndSegMasks length mismatch")
	}
	if len(masks) == 0 {
		return 0
	}
	if AsmActive() {
		return andSegMasksAsm(masks, a, b, segBits)
	}
	return AndSegMasksGeneric(masks, a, b, segBits)
}

// AndSegMasksWrap is AndSegMasks over a window of a larger bitmap with the
// smaller operand wrapped (the different-bitmap-size rule of Section III-C):
// block i covers x words [xStart+4i, xStart+4i+4), each ANDed with the y word
// at the same index mod len(y). len(y) must be a power of two of at least
// BlockWords words and xStart a multiple of BlockWords — then every wrap
// boundary falls on a block boundary and the window splits into contiguous
// runs, each handed to AndSegMasks whole. Returns the total live segments.
func AndSegMasksWrap(masks []uint32, x, y []uint64, xStart, segBits int) int {
	wordMask := len(y) - 1
	nWords := BlockWords * len(masks)
	live, done := 0, 0
	for done < nWords {
		i := xStart + done
		yOff := i & wordMask
		run := nWords - done
		if r := len(y) - yOff; r < run {
			run = r
		}
		mb := done / BlockWords
		live += AndSegMasks(masks[mb:mb+run/BlockWords], x[i:i+run], y[yOff:yOff+run], segBits)
		done += run
	}
	return live
}

// AndSegMasksGeneric is the portable reference implementation of
// AndSegMasks, always taken on the scalar backend. Exposed so benchmarks and
// parity tests can pin the pure-Go path regardless of dispatch state.
func AndSegMasksGeneric(masks []uint32, a, b []uint64, segBits int) int {
	if len(a) != len(b) || len(a) != BlockWords*len(masks) {
		panic("simd: AndSegMasks length mismatch")
	}
	live := 0
	switch segBits {
	case 8:
		for i := range masks {
			j := i * BlockWords
			m := segMaskWord8(a[j]&b[j]) |
				segMaskWord8(a[j+1]&b[j+1])<<8 |
				segMaskWord8(a[j+2]&b[j+2])<<16 |
				segMaskWord8(a[j+3]&b[j+3])<<24
			masks[i] = m
			live += Popcount32(m)
		}
	case 16:
		for i := range masks {
			j := i * BlockWords
			m := segMaskWord16(a[j]&b[j]) |
				segMaskWord16(a[j+1]&b[j+1])<<4 |
				segMaskWord16(a[j+2]&b[j+2])<<8 |
				segMaskWord16(a[j+3]&b[j+3])<<12
			masks[i] = m
			live += Popcount32(m)
		}
	case 32:
		for i := range masks {
			j := i * BlockWords
			m := segMaskWord32(a[j]&b[j]) |
				segMaskWord32(a[j+1]&b[j+1])<<2 |
				segMaskWord32(a[j+2]&b[j+2])<<4 |
				segMaskWord32(a[j+3]&b[j+3])<<6
			masks[i] = m
			live += Popcount32(m)
		}
	default:
		panic("simd: AndSegMasks unsupported segment size")
	}
	return live
}

// segMaskWord8 is the branch-free scalar segment transformation for 8-bit
// segments over one word: bit i of the result is set iff byte i of w is
// non-zero. Equivalent to SegmentMask8 but without its eight branches: the
// OR-cascade folds each byte's bits into its bit 0, and the multiply gathers
// those eight bits into the top byte (all partial products land on distinct
// bit positions, so no carries occur).
func segMaskWord8(w uint64) uint32 {
	t := w | w>>4
	t |= t >> 2
	t |= t >> 1
	t &= 0x0101010101010101
	return uint32(t * 0x0102040810204080 >> 56)
}

// segMaskWord16 is segMaskWord8 for 16-bit segments: bit i set iff half-word
// i of w is non-zero (4 result bits).
func segMaskWord16(w uint64) uint32 {
	t := w | w>>8
	t |= t >> 4
	t |= t >> 2
	t |= t >> 1
	t &= 0x0001000100010001
	const m = 1<<48 | 1<<33 | 1<<18 | 1<<3
	return uint32(t*m>>48) & 0xF
}

// segMaskWord32 is segMaskWord8 for 32-bit segments: bit i set iff 32-bit
// half i of w is non-zero (2 result bits).
func segMaskWord32(w uint64) uint32 {
	lo := w & 0xFFFFFFFF
	hi := w >> 32
	return uint32((lo|-lo)>>63) | uint32((hi|-hi)>>63)<<1
}

// CountSmall counts |a ∩ b| for two small sorted sets using the AVX2
// broadcast-compare kernel when the backend is active and either side fits a
// register (≤ 8 lanes): the shorter side is masked-loaded once, every element
// of the longer side is broadcast against it, and matches accumulate as
// VPSUBD of the compare masks — the Lemire intersection idiom. Falls back to
// a scalar merge otherwise. The specialized jump tables in internal/kernels
// route their small-size entries here when the backend is active.
func CountSmall(a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if AsmActive() {
		if n, ok := countSmallAsm(a, b); ok {
			return n
		}
	}
	return countSmallGeneric(a, b)
}

// IntersectSmall writes a ∩ b to dst in ascending order and returns the
// number of elements written; dst must have room for min(len(a), len(b)).
// On the AVX-512 rung the register side is mask-loaded once, the loop side
// broadcast-compared against it, and one VPCOMPRESSD stores the matching
// lanes contiguously in order — the compress-store materialize path the AVX2
// rung lacks (it can only count). Falls back to a scalar merge on the lower
// rungs. The specialized jump tables in internal/kernels route their
// intersect entries here when the top rung is active.
func IntersectSmall(dst, a, b []uint32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if Avx512Active() {
		if n, ok := intersectSmallAsm(dst, a, b); ok {
			return n
		}
	}
	return IntersectSmallGeneric(dst, a, b)
}

// IntersectSmallGeneric is the scalar two-pointer merge IntersectSmall falls
// back to. Exposed so parity tests can pin the pure-Go path regardless of
// dispatch state.
func IntersectSmallGeneric(dst, a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av < bv:
			i++
		case av > bv:
			j++
		default:
			dst[n] = av
			n++
			i++
			j++
		}
	}
	return n
}

// countSmallGeneric is the scalar two-pointer merge CountSmall falls back to.
func countSmallGeneric(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av < bv {
			i++
		} else if av > bv {
			j++
		} else {
			i++
			j++
			n++
		}
	}
	return n
}

// Contains reports whether x occurs in the sorted list, with the AVX2
// compare-all-lanes probe when the backend is active (the hash-probe
// strategy's segment scan for longer segments) and a scalar early-exit scan
// otherwise.
func Contains(list []uint32, x uint32) bool {
	if AsmActive() && len(list) > 0 {
		return containsAsmDispatch(list, x)
	}
	for _, v := range list {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}
