package simd

import (
	"math/rand"
	"testing"
)

// withAsm runs f with the assembly backend forced on, restoring the previous
// dispatch state. It skips when the backend is unavailable (non-amd64, noasm
// build, or missing CPU features).
func withAsm(t testing.TB, f func()) {
	t.Helper()
	if !HasAsm() {
		t.Skip("assembly backend not available")
	}
	prev := SetAsmEnabled(true)
	defer SetAsmEnabled(prev)
	f()
}

// randWords generates word slices with a mix of densities so zero and
// non-zero segments of every width are exercised.
func randWords(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		switch rng.Intn(4) {
		case 0:
			w[i] = 0
		case 1:
			w[i] = rng.Uint64()
		case 2:
			w[i] = 1 << uint(rng.Intn(64)) // single live segment
		default:
			w[i] = rng.Uint64() & rng.Uint64() & rng.Uint64() // sparse
		}
	}
	return w
}

func TestAndSegMasksParity(t *testing.T) {
	withAsm(t, func() {
		rng := rand.New(rand.NewSource(1))
		for _, segBits := range []int{8, 16, 32} {
			for trial := 0; trial < 200; trial++ {
				nblocks := 1 + rng.Intn(16)
				a := randWords(rng, nblocks*BlockWords)
				b := randWords(rng, nblocks*BlockWords)
				got := make([]uint32, nblocks)
				want := make([]uint32, nblocks)
				gn := AndSegMasks(got, a, b, segBits)
				wn := AndSegMasksGeneric(want, a, b, segBits)
				if gn != wn {
					t.Fatalf("segBits=%d trial=%d live count: asm=%d go=%d", segBits, trial, gn, wn)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("segBits=%d trial=%d block=%d mask: asm=%#x go=%#x (a=%x b=%x)",
							segBits, trial, i, got[i], want[i],
							a[i*BlockWords:i*BlockWords+BlockWords], b[i*BlockWords:i*BlockWords+BlockWords])
					}
				}
			}
		}
	})
}

// TestSegMaskWordsMatchBranchy pins the branch-free scalar segment
// transformations against the original branchy SegmentMask* functions; this
// holds on every architecture.
func TestSegMaskWordsMatchBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	check := func(w uint64) {
		if g, want := segMaskWord8(w), SegmentMask8(w); g != want {
			t.Fatalf("segMaskWord8(%#x) = %#x, want %#x", w, g, want)
		}
		if g, want := segMaskWord16(w), SegmentMask16(w); g != want {
			t.Fatalf("segMaskWord16(%#x) = %#x, want %#x", w, g, want)
		}
		if g, want := segMaskWord32(w), SegmentMask32(w); g != want {
			t.Fatalf("segMaskWord32(%#x) = %#x, want %#x", w, g, want)
		}
	}
	check(0)
	check(^uint64(0))
	for i := 0; i < 64; i++ {
		check(1 << uint(i))
	}
	for trial := 0; trial < 10000; trial++ {
		check(rng.Uint64())
		check(rng.Uint64() & rng.Uint64() & rng.Uint64())
	}
}

func TestAndWordsParity(t *testing.T) {
	withAsm(t, func() {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(70) // covers 0, sub-block, block tails
			a := randWords(rng, n)
			b := randWords(rng, n)
			got := make([]uint64, n)
			want := make([]uint64, n)
			prev := SetAsmEnabled(false)
			wn := AndWords(want, a, b)
			SetAsmEnabled(prev)
			gn := AndWords(got, a, b)
			if gn != wn {
				t.Fatalf("n=%d trial=%d nonZero: asm=%d go=%d", n, trial, gn, wn)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d word %d: asm=%#x go=%#x", n, trial, i, got[i], want[i])
				}
			}
		}
	})
}

// randSorted builds a sorted, duplicate-free uint32 slice of length n.
func randSorted(rng *rand.Rand, n int, span uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := rng.Uint32() % span
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestCountSmallParity(t *testing.T) {
	withAsm(t, func() {
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 2000; trial++ {
			la := rng.Intn(9)
			lb := rng.Intn(9)
			span := uint32(8 + rng.Intn(24)) // small span forces overlaps
			a := randSorted(rng, la, span)
			b := randSorted(rng, lb, span)
			got := CountSmall(a, b)
			want := countSmallGeneric(a, b)
			if got != want {
				t.Fatalf("trial=%d a=%v b=%v: asm=%d go=%d", trial, a, b, got, want)
			}
		}
		// Zero is a set element, not padding: the lane mask must keep a
		// genuine 0 match and squash padding-lane pseudo-matches.
		if got := CountSmall([]uint32{0}, []uint32{0}); got != 1 {
			t.Fatalf("CountSmall({0},{0}) = %d, want 1", got)
		}
		if got := CountSmall([]uint32{0, 5}, []uint32{1, 2, 3}); got != 0 {
			t.Fatalf("CountSmall zero-vs-padding = %d, want 0", got)
		}
	})
}

func TestContainsParity(t *testing.T) {
	withAsm(t, func() {
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 2000; trial++ {
			n := 1 + rng.Intn(40)
			list := randSorted(rng, n, 64)
			for x := uint32(0); x < 64; x++ {
				want := false
				for _, v := range list {
					if v == x {
						want = true
					}
				}
				if got := Contains(list, x); got != want {
					t.Fatalf("trial=%d Contains(%v, %d) = %v, want %v", trial, list, x, got, want)
				}
			}
		}
		// Padding lanes in the masked tail load as 0; x=0 must not match them.
		if Contains([]uint32{1, 2, 3}, 0) {
			t.Fatal("Contains({1,2,3}, 0) matched a padding lane")
		}
		if !Contains([]uint32{0, 7}, 0) {
			t.Fatal("Contains({0,7}, 0) = false, want true")
		}
	})
}

func FuzzAndSegMasksParity(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(1), uint8(8))
	f.Add(^uint64(0), uint64(0xFF00FF00FF00FF00), uint64(3), uint64(1<<40), uint8(16))
	f.Add(uint64(1), uint64(1), uint64(1<<63), uint64(1<<63), uint8(32))
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3 uint64, sb uint8) {
		segBits := []int{8, 16, 32}[int(sb)%3]
		a := []uint64{w0, w1, w2, w3}
		b := []uint64{w3, w1, w0, w2}
		got := make([]uint32, 1)
		want := make([]uint32, 1)
		wn := AndSegMasksGeneric(want, a, b, segBits)
		if !HasAsm() {
			return
		}
		prev := SetAsmEnabled(true)
		gn := AndSegMasks(got, a, b, segBits)
		SetAsmEnabled(prev)
		if gn != wn || got[0] != want[0] {
			t.Fatalf("segBits=%d a=%x b=%x: asm=(%d,%#x) go=(%d,%#x)", segBits, a, b, gn, got[0], wn, want[0])
		}
	})
}

func FuzzCountSmallParity(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0}, []byte{0})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		if len(ra) > 8 {
			ra = ra[:8]
		}
		if len(rb) > 8 {
			rb = rb[:8]
		}
		toSorted := func(r []byte) []uint32 {
			seen := map[uint32]bool{}
			var out []uint32
			for _, v := range r {
				if !seen[uint32(v)] {
					seen[uint32(v)] = true
					out = append(out, uint32(v))
				}
			}
			for i := 1; i < len(out); i++ {
				for j := i; j > 0 && out[j] < out[j-1]; j-- {
					out[j], out[j-1] = out[j-1], out[j]
				}
			}
			return out
		}
		a, b := toSorted(ra), toSorted(rb)
		want := countSmallGeneric(a, b)
		if !HasAsm() {
			return
		}
		prev := SetAsmEnabled(true)
		got := CountSmall(a, b)
		SetAsmEnabled(prev)
		if got != want {
			t.Fatalf("a=%v b=%v: asm=%d go=%d", a, b, got, want)
		}
	})
}

func BenchmarkAndSegMasks(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const nblocks = 256 // 64 KiB of bitmap per side
	aw := randWords(rng, nblocks*BlockWords)
	bw := randWords(rng, nblocks*BlockWords)
	masks := make([]uint32, nblocks)
	for _, segBits := range []int{8, 16, 32} {
		for _, backend := range []string{"go", "asm"} {
			if backend == "asm" && !HasAsm() {
				continue
			}
			name := "seg" + itoa(segBits) + "/" + backend
			b.Run(name, func(b *testing.B) {
				prev := SetAsmEnabled(backend == "asm")
				defer SetAsmEnabled(prev)
				b.SetBytes(int64(nblocks * BlockWords * 8 * 2))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sinkInt = AndSegMasks(masks, aw, bw, segBits)
				}
			})
		}
	}
}

func BenchmarkCountSmall(b *testing.B) {
	a := []uint32{3, 9, 17, 22, 31, 40, 51, 63}
	bb := []uint32{1, 9, 18, 22, 35, 40}
	for _, backend := range []string{"go", "asm"} {
		if backend == "asm" && !HasAsm() {
			continue
		}
		b.Run(backend, func(b *testing.B) {
			prev := SetAsmEnabled(backend == "asm")
			defer SetAsmEnabled(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkInt = CountSmall(a, bb)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
