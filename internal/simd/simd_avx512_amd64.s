//go:build amd64 && !noasm

// AVX-512 kernels: the top rung of the runtime dispatch ladder behind
// dispatch_amd64.go. These are only reachable when cpuid reports
// AVX512F+VL+CD+DQ with full OS zmm/opmask state (XCR0 bits 5-7); the AVX2
// routines in simd_amd64.s are the automatic fallback rung. Instruction
// vocabulary follows the paper's AVX-512 tier (Section IV / Section V):
// VPCOMPRESSD for ordered compress-store output, VPCONFLICTD for the
// all-pairs match of two packed segments, VPGATHERDD for the batched
// bitmap-word fetch of the hash-probe strategy, and k-register arithmetic
// (KORW/KANDW) in place of AVX2 movemasks. The parity fuzz tests in
// parity_test.go assert bit-exact agreement with the pure-Go references.

#include "textflag.h"

// func count16AVX512(a *uint32, la int, b *uint32, lb int) int
//
// Broadcast-compare-count over one 16-lane register: a (1..16 elements) is
// mask-loaded once, each element of b is broadcast against it, and the match
// masks accumulate in a k register (elements are distinct within a segment,
// so at most one lane matches per broadcast and KORW never loses a match).
// Padding lanes load as zero, so the accumulated mask is squashed with the
// lane mask before the popcount (a genuine 0 element of b must not match
// padding). The k-register accumulator replaces the VPSUBD lane accumulator
// of countSmallAVX2: the count is POPCNT of one 16-bit mask, no horizontal
// add needed.
TEXT ·count16AVX512(SB), NOSPLIT, $0-40
	MOVQ  a+0(FP), SI
	MOVQ  la+8(FP), CX
	MOVQ  b+16(FP), DX
	MOVQ  lb+24(FP), R8

	MOVL  $1, R9
	SHLL  CX, R9
	DECL  R9                   // (1<<la)-1: lane mask for a
	KMOVW R9, K1
	VMOVDQU32.Z (SI), K1, Z0   // a, padded with zeros
	KXORW K2, K2, K2           // match accumulator

c16loop:
	TESTQ R8, R8
	JE    c16done
	VPBROADCASTD (DX), Z1
	VPCMPEQD Z1, Z0, K3
	KORW     K3, K2, K2
	ADDQ     $4, DX
	DECQ     R8
	JMP      c16loop

c16done:
	KANDW   K1, K2, K2         // squash padding-lane matches
	KMOVW   K2, AX
	POPCNTL AX, AX
	VZEROUPPER
	MOVQ    AX, ret+32(FP)
	RET

// func intersect16AVX512(dst *uint32, a *uint32, la int, b *uint32, lb int) int
//
// Ordered materializing variant of count16AVX512: same broadcast-compare
// accumulation, then one VPCOMPRESSD stores the matching lanes of a to dst
// contiguously, preserving lane (= sorted) order — the compress-store idiom
// that gives the jump table real SIMD output instead of count-only. Returns
// the number of elements written. Segment element lists are sorted, so
// compressing the a side is bit-identical to the generated scalar kernels'
// emit-b-side-in-order semantics.
TEXT ·intersect16AVX512(SB), NOSPLIT, $0-48
	MOVQ  dst+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  la+16(FP), CX
	MOVQ  b+24(FP), DX
	MOVQ  lb+32(FP), R8

	MOVL  $1, R9
	SHLL  CX, R9
	DECL  R9
	KMOVW R9, K1
	VMOVDQU32.Z (SI), K1, Z0
	KXORW K2, K2, K2

i16loop:
	TESTQ R8, R8
	JE    i16done
	VPBROADCASTD (DX), Z1
	VPCMPEQD Z1, Z0, K3
	KORW     K3, K2, K2
	ADDQ     $4, DX
	DECQ     R8
	JMP      i16loop

i16done:
	KANDW       K1, K2, K2
	VPCOMPRESSD Z0, K2, (DI)   // ordered compress-store of the matches
	KMOVW       K2, AX
	POPCNTL     AX, AX
	VZEROUPPER
	MOVQ        AX, ret+40(FP)
	RET

// func intersectConflictAVX512(dst *uint32, a *uint32, la int, b *uint32, lb int) int
//
// Loop-free 8x8 materializing kernel: a is mask-loaded into lanes 0-7 and b
// into lanes 8-15 of one zmm, then a single VPCONFLICTD compares every lane
// against all earlier lanes at once. A b lane's conflict bits land in the
// low 8 positions exactly when its value occurs in a (both sides are
// duplicate-free, so a-a and b-b conflicts cannot occur); VPTESTMD against
// the a-lane mask keeps those, KANDW restricts to real b lanes, and
// VPCOMPRESSD stores them in b order. Padding lanes are zero: a zero b
// element only conflicts with a *real* zero a lane because the test mask is
// (1<<la)-1, not 0xFF.
TEXT ·intersectConflictAVX512(SB), NOSPLIT, $0-48
	MOVQ  dst+0(FP), DI
	MOVQ  a+8(FP), SI
	MOVQ  la+16(FP), CX
	MOVQ  b+24(FP), DX
	MOVQ  lb+32(FP), R8

	MOVL  $1, R9
	SHLL  CX, R9
	DECL  R9                   // (1<<la)-1
	KMOVW R9, K1
	MOVL  $1, R10
	MOVQ  R8, CX
	SHLL  CX, R10
	DECL  R10                  // (1<<lb)-1
	KMOVW R10, K2

	VMOVDQU32.Z (SI), K1, Y0   // a in lanes 0-7 (upper zmm zeroed)
	VMOVDQU32.Z (DX), K2, Y1   // b in 8 lanes
	VINSERTI64X4 $1, Y1, Z0, Z0 // [a | b] packed in one zmm

	VPCONFLICTD  Z0, Z2        // per lane: bitset of earlier equal lanes
	VPBROADCASTD R9, Z3        // a-lane selector
	VPTESTMD     Z3, Z2, K3    // lanes conflicting with a real a lane
	SHLL         $8, R10
	KMOVW        R10, K2       // b lanes are 8..8+lb-1
	KANDW        K2, K3, K3
	VPCOMPRESSD  Z0, K3, (DI)  // matching b lanes, in b (= sorted) order
	KMOVW        K3, AX
	POPCNTL      AX, AX
	VZEROUPPER
	MOVQ         AX, ret+40(FP)
	RET

// func containsAVX512(b *uint32, lb int, x uint32) int
//
// 16-lane membership probe: broadcast x, VPCMPEQD straight from memory into
// a k register sixteen lanes at a time, masked tail. Returns non-zero iff x
// occurs in b. The zmm twin of containsAVX2 for the hash-probe strategy's
// longer segment scans.
TEXT ·containsAVX512(SB), NOSPLIT, $0-32
	MOVQ b+0(FP), DX
	MOVQ lb+8(FP), CX
	MOVL x+16(FP), R11
	VPBROADCASTD R11, Z0
	XORQ AX, AX

c512blocks:
	CMPQ CX, $16
	JLT  c512tail
	VPCMPEQD (DX), Z0, K2
	KMOVW    K2, R10
	ORL      R10, AX
	ADDQ     $64, DX
	SUBQ     $16, CX
	JMP      c512blocks

c512tail:
	TESTQ CX, CX
	JE    c512done
	MOVL  $1, R9
	SHLL  CX, R9
	DECL  R9
	KMOVW R9, K1
	VMOVDQU32.Z (DX), K1, Z1
	VPCMPEQD Z1, Z0, K2
	KANDW    K1, K2, K2        // a zero tail-padding lane must not match x=0
	KMOVW    K2, R10
	ORL      R10, AX

c512done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func probeStageAVX512(elems *uint32, n int, words *uint64, seed uint64,
//                       posMask uint64, outElems, outPos *uint32) int
//
// Batched hash-probe stage: for 16 elements per iteration, computes the full
// splitmix64 mix in eight qword lanes per half (VPADDQ/VPSRLQ/VPXORQ/VPMULLQ
// — the DQ requirement), masks to bitmap positions, narrows to 16 dword
// lanes, and gathers the 16 containing bitmap words with one VPGATHERDD over
// the word array viewed as dwords (little-endian: dword pos>>5 carries bit
// pos&31 of word pos>>6, and pos>>5 < 2*len(words) keeps the gather in
// bounds). Lanes whose bit survives are compress-stored — both the element
// and its bitmap position — to the out arrays, preserving element order.
// Returns the survivor count. n must be a multiple of 16 (the Go caller
// handles the tail scalar-wise); positions must fit 32 bits, which the
// dispatch gate guarantees (mBits <= 1<<32).
TEXT ·probeStageAVX512(SB), NOSPLIT, $0-64
	MOVQ elems+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ words+16(FP), DX
	MOVQ seed+24(FP), R9
	MOVQ posMask+32(FP), R10
	MOVQ outElems+40(FP), DI
	MOVQ outPos+48(FP), R8
	XORQ AX, AX                // survivor count

	// Lane-broadcast constants for the splitmix64 rounds.
	MOVQ $0x9e3779b97f4a7c15, R11
	ADDQ R11, R9               // seed + golden-ratio increment, fused
	VPBROADCASTQ R9, Z20
	MOVQ $0xbf58476d1ce4e5b9, R11
	VPBROADCASTQ R11, Z21
	MOVQ $0x94d049bb133111eb, R11
	VPBROADCASTQ R11, Z22
	VPBROADCASTQ R10, Z23      // position mask (m-1)
	MOVL $31, R11
	VPBROADCASTD R11, Z24      // bit-offset mask
	MOVL $1, R11
	VPBROADCASTD R11, Z25      // probe bit

probeloop:
	CMPQ CX, $16
	JLT  probedone

	// z = zext32to64(x) + (seed + C); two zmm halves of 8 qwords each.
	VPMOVZXDQ (SI), Z0
	VPMOVZXDQ 32(SI), Z1
	VPADDQ Z20, Z0, Z0
	VPADDQ Z20, Z1, Z1
	// z = (z ^ z>>30) * M1
	VPSRLQ $30, Z0, Z2
	VPSRLQ $30, Z1, Z3
	VPXORQ Z2, Z0, Z0
	VPXORQ Z3, Z1, Z1
	VPMULLQ Z21, Z0, Z0
	VPMULLQ Z21, Z1, Z1
	// z = (z ^ z>>27) * M2
	VPSRLQ $27, Z0, Z2
	VPSRLQ $27, Z1, Z3
	VPXORQ Z2, Z0, Z0
	VPXORQ Z3, Z1, Z1
	VPMULLQ Z22, Z0, Z0
	VPMULLQ Z22, Z1, Z1
	// z ^= z>>31; pos = z & (m-1)
	VPSRLQ $31, Z0, Z2
	VPSRLQ $31, Z1, Z3
	VPXORQ Z2, Z0, Z0
	VPXORQ Z3, Z1, Z1
	VPANDQ Z23, Z0, Z0
	VPANDQ Z23, Z1, Z1

	// Narrow 16 qword positions to 16 dword lanes.
	VPMOVQD Z0, Y2
	VPMOVQD Z1, Y3
	VINSERTI64X4 $1, Y3, Z2, Z2

	// Gather the 16 containing dwords and test bit pos&31.
	VPSRLD $5, Z2, Z4          // dword index = pos >> 5
	KXNORW K1, K1, K1          // all 16 lanes (gather consumes its mask)
	VPGATHERDD (DX)(Z4*4), K1, Z5
	VPANDD  Z24, Z2, Z6        // bit offset = pos & 31
	VPSRLVD Z6, Z5, Z5
	VPTESTMD Z25, Z5, K2       // survivor lanes

	// Compress-store survivors: elements and their positions, in order.
	KMOVW   K2, R11
	POPCNTL R11, R11
	VMOVDQU32   (SI), Z7
	VPCOMPRESSD Z7, K2, (DI)
	VPCOMPRESSD Z2, K2, (R8)
	LEAQ (DI)(R11*4), DI
	LEAQ (R8)(R11*4), R8
	ADDQ R11, AX

	ADDQ $64, SI
	SUBQ $16, CX
	JMP  probeloop

probedone:
	VZEROUPPER
	MOVQ AX, ret+56(FP)
	RET
