//go:build amd64 && !noasm

package simd

import "fesia/internal/cpuid"

// The AVX2 backend needs AVX2 (ymm VPAND/VPCMPEQ/VPMOVMSKB), BMI2 (PEXT in
// the 16-bit segment transformation) and POPCNT. Every AVX2 CPU since
// Haswell has all three.
var asmCapable = cpuid.HasAVX2 && cpuid.HasBMI2 && cpuid.HasPOPCNT

// asmOn is the live dispatch switch. It starts at asmCapable and is only
// mutated by SetAsmEnabled (benchmarks and parity tests); it must not be
// toggled while queries are in flight.
var asmOn = asmCapable

// HasAsm reports whether the assembly backend is compiled in and the CPU/OS
// support it, independent of test-time toggling.
func HasAsm() bool { return asmCapable }

// AsmActive reports whether dispatched entry points currently take the
// assembly fast path.
func AsmActive() bool { return asmOn }

// SetAsmEnabled switches the assembly backend on or off at run time and
// returns the previous state. Enabling is a no-op when the CPU lacks support.
// For benchmarks and parity tests only: not synchronized, so it must not race
// with queries.
func SetAsmEnabled(on bool) bool {
	prev := asmOn
	asmOn = on && asmCapable
	return prev
}

// Backend names the active kernel backend: "avx2" or "scalar".
func Backend() string {
	if asmOn {
		return "avx2"
	}
	return "scalar"
}

// Assembly routine declarations (simd_amd64.s). All operate on raw pointers
// so the hot paths stay free of slice-header traffic; wrappers below bind
// them to slices.

//go:noescape
func andSegMask8AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andSegMask16AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andSegMask32AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andWordsAVX2(dst, a, b *uint64, nblocks int) int

//go:noescape
func countSmallAVX2(a *uint32, la int, b *uint32, lb int) int

//go:noescape
func containsAVX2(b *uint32, lb int, x uint32) int

func andSegMasksAsm(masks []uint32, a, b []uint64, segBits int) int {
	switch segBits {
	case 8:
		return andSegMask8AVX2(&masks[0], &a[0], &b[0], len(masks))
	case 16:
		return andSegMask16AVX2(&masks[0], &a[0], &b[0], len(masks))
	case 32:
		return andSegMask32AVX2(&masks[0], &a[0], &b[0], len(masks))
	default:
		panic("simd: AndSegMasks unsupported segment size")
	}
}

// andWordsBlocks runs the vector AND over nblocks 4-word blocks, returning
// the non-zero word count of that prefix.
func andWordsBlocks(dst, a, b []uint64, nblocks int) int {
	return andWordsAVX2(&dst[0], &a[0], &b[0], nblocks)
}

// countSmallAsm dispatches the broadcast-compare kernel with the shorter
// side as the register side; ok is false when neither side fits 8 lanes.
func countSmallAsm(a, b []uint32) (int, bool) {
	if len(b) <= 8 {
		return countSmallAVX2(&a[0], len(a), &b[0], len(b)), true
	}
	if len(a) <= 8 {
		return countSmallAVX2(&b[0], len(b), &a[0], len(a)), true
	}
	return 0, false
}

func containsAsmDispatch(list []uint32, x uint32) bool {
	return containsAVX2(&list[0], len(list), x) != 0
}
