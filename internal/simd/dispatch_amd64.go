//go:build amd64 && !noasm

package simd

import "fesia/internal/cpuid"

// The AVX2 backend needs AVX2 (ymm VPAND/VPCMPEQ/VPMOVMSKB), BMI2 (PEXT in
// the 16-bit segment transformation) and POPCNT. Every AVX2 CPU since
// Haswell has all three.
var asmCapable = cpuid.HasAVX2 && cpuid.HasBMI2 && cpuid.HasPOPCNT

// avx512Capable is the static top-rung eligibility: every AVX-512 subset the
// routines in simd_avx512_amd64.s use (F: zmm/k-masks/compress/gather, VL:
// masked ymm loads, CD: VPCONFLICTD, DQ: VPMULLQ), validated by cpuid against
// the OS XCR0 opmask/ZMM state bits and the FESIA_DISABLE_AVX512 escape
// hatch. AVX2 capability is a prerequisite: the rungs form a ladder, never a
// fork.
var avx512Capable = asmCapable && cpuid.AVX512()

// asmOn is the live dispatch switch for the whole assembly backend. It
// starts at asmCapable and is only mutated by SetAsmEnabled (benchmarks and
// parity tests); it must not be toggled while queries are in flight.
var asmOn = asmCapable

// avx512On is the live switch for the top rung only. Avx512Active requires
// both switches, so SetAsmEnabled(false) still yields pure Go and
// SetAvx512Enabled(false) yields the forced-AVX2 tier.
var avx512On = avx512Capable

// HasAsm reports whether the assembly backend is compiled in and the CPU/OS
// support it, independent of test-time toggling.
func HasAsm() bool { return asmCapable }

// HasAVX512 reports whether the AVX-512 rung is compiled in and the CPU/OS
// support it, independent of test-time toggling (but after the
// FESIA_DISABLE_AVX512 escape hatch, which caps capability at probe time).
func HasAVX512() bool { return avx512Capable }

// AsmActive reports whether dispatched entry points currently take the
// assembly fast path (either rung).
func AsmActive() bool { return asmOn }

// Avx512Active reports whether dispatched entry points currently take the
// AVX-512 rung. Always implies AsmActive.
func Avx512Active() bool { return asmOn && avx512On }

// SetAsmEnabled switches the assembly backend (both rungs) on or off at run
// time and returns the previous state. Enabling is a no-op when the CPU
// lacks support. For benchmarks and parity tests only: not synchronized, so
// it must not race with queries.
func SetAsmEnabled(on bool) bool {
	prev := asmOn
	asmOn = on && asmCapable
	return prev
}

// SetAvx512Enabled switches the AVX-512 rung on or off at run time, leaving
// the AVX2 rung governed by SetAsmEnabled, and returns the previous state:
// off is the forced-AVX2 tier on AVX-512 hardware. Enabling is a no-op when
// the CPU lacks support. For benchmarks and parity tests only: not
// synchronized, so it must not race with queries.
func SetAvx512Enabled(on bool) bool {
	prev := avx512On
	avx512On = on && avx512Capable
	return prev
}

// Backend names the active kernel backend as a ladder:
// "avx512", "avx2" or "scalar".
func Backend() string {
	switch {
	case !asmOn:
		return "scalar"
	case avx512On:
		return "avx512"
	default:
		return "avx2"
	}
}

// Assembly routine declarations (simd_amd64.s). All operate on raw pointers
// so the hot paths stay free of slice-header traffic; wrappers below bind
// them to slices.

//go:noescape
func andSegMask8AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andSegMask16AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andSegMask32AVX2(masks *uint32, a, b *uint64, nblocks int) int

//go:noescape
func andWordsAVX2(dst, a, b *uint64, nblocks int) int

//go:noescape
func countSmallAVX2(a *uint32, la int, b *uint32, lb int) int

//go:noescape
func containsAVX2(b *uint32, lb int, x uint32) int

// AVX-512 routine declarations (simd_avx512_amd64.s).

//go:noescape
func count16AVX512(a *uint32, la int, b *uint32, lb int) int

//go:noescape
func intersect16AVX512(dst *uint32, a *uint32, la int, b *uint32, lb int) int

//go:noescape
func intersectConflictAVX512(dst *uint32, a *uint32, la int, b *uint32, lb int) int

//go:noescape
func containsAVX512(b *uint32, lb int, x uint32) int

//go:noescape
func probeStageAVX512(elems *uint32, n int, words *uint64, seed uint64, posMask uint64, outElems, outPos *uint32) int

func andSegMasksAsm(masks []uint32, a, b []uint64, segBits int) int {
	switch segBits {
	case 8:
		return andSegMask8AVX2(&masks[0], &a[0], &b[0], len(masks))
	case 16:
		return andSegMask16AVX2(&masks[0], &a[0], &b[0], len(masks))
	case 32:
		return andSegMask32AVX2(&masks[0], &a[0], &b[0], len(masks))
	default:
		panic("simd: AndSegMasks unsupported segment size")
	}
}

// andWordsBlocks runs the vector AND over nblocks 4-word blocks, returning
// the non-zero word count of that prefix.
func andWordsBlocks(dst, a, b []uint64, nblocks int) int {
	return andWordsAVX2(&dst[0], &a[0], &b[0], nblocks)
}

// countSmallAsm dispatches the broadcast-compare kernel down the ladder: the
// 16-lane AVX-512 kernel with the longer side in the register when the top
// rung is active (fewer broadcast iterations), else the 8-lane AVX2 kernel
// with the shorter side in the register; ok is false when neither side fits
// the widest available register.
func countSmallAsm(a, b []uint32) (int, bool) {
	if avx512On {
		if r, l, ok := pickRegisterSide(a, b, 16); ok {
			return count16AVX512(&r[0], len(r), &l[0], len(l)), true
		}
	}
	if len(b) <= 8 {
		return countSmallAVX2(&a[0], len(a), &b[0], len(b)), true
	}
	if len(a) <= 8 {
		return countSmallAVX2(&b[0], len(b), &a[0], len(a)), true
	}
	return 0, false
}

// pickRegisterSide returns (register side, loop side): the longer side when
// it fits lanes, else the shorter side when it fits, else ok=false.
func pickRegisterSide(a, b []uint32, lanes int) ([]uint32, []uint32, bool) {
	r, l := a, b
	if len(l) > len(r) {
		r, l = l, r
	}
	if len(r) > lanes { // longer side spills: register the shorter side
		r, l = l, r
		if len(r) > lanes {
			return nil, nil, false
		}
	}
	return r, l, true
}

// intersectSmallAsm is the materializing twin of countSmallAsm: AVX-512
// compress-store only (the AVX2 rung has no ordered-output kernel — that is
// exactly the gap this rung closes). When both sides fit 8 lanes the
// loop-free VPCONFLICTD kernel is dispatched (measured faster than the
// broadcast loop on Ice Lake-class cores, where VPCONFLICTD is cheap);
// otherwise the 16-lane broadcast kernel runs with the longer side in the
// register. ok is false when the top rung is off or neither side fits 16
// lanes. Either side may be compressed: segment element lists are sorted, so
// register-side order equals loop-side order.
func intersectSmallAsm(dst, a, b []uint32) (int, bool) {
	if !avx512On {
		return 0, false
	}
	if len(a) <= 8 && len(b) <= 8 {
		return intersectConflictAVX512(&dst[0], &a[0], len(a), &b[0], len(b)), true
	}
	if r, l, ok := pickRegisterSide(a, b, 16); ok {
		return intersect16AVX512(&dst[0], &r[0], len(r), &l[0], len(l)), true
	}
	return 0, false
}

// IntersectSmallConflict exposes the loop-free VPCONFLICTD 8x8 materializing
// kernel directly, for the kernel-selection benchmark in parity_avx512_test.go
// and fesiabench (production dispatch reaches it through IntersectSmall).
// Both sides must be non-empty and fit 8 lanes, and the top rung must be
// active; returns ok=false otherwise.
func IntersectSmallConflict(dst, a, b []uint32) (int, bool) {
	if !Avx512Active() || len(a) == 0 || len(b) == 0 || len(a) > 8 || len(b) > 8 {
		return 0, false
	}
	return intersectConflictAVX512(&dst[0], &a[0], len(a), &b[0], len(b)), true
}

func containsAsmDispatch(list []uint32, x uint32) bool {
	if avx512On && len(list) >= 16 {
		return containsAVX512(&list[0], len(list), x) != 0
	}
	return containsAVX2(&list[0], len(list), x) != 0
}

// probeStageAsm runs the gathered hash-probe stage over n elements (n a
// multiple of 16, checked by the portable wrapper).
func probeStageAsm(elems []uint32, n int, words []uint64, seed, posMask uint64, outE, outP []uint32) int {
	return probeStageAVX512(&elems[0], n, &words[0], seed, posMask, &outE[0], &outP[0])
}
