package simd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthLanes(t *testing.T) {
	cases := []struct {
		w     Width
		lanes int
		name  string
	}{
		{WidthSSE, 4, "SSE"},
		{WidthAVX, 8, "AVX"},
		{WidthAVX512, 16, "AVX512"},
	}
	for _, c := range cases {
		if got := c.w.Lanes(); got != c.lanes {
			t.Errorf("%v.Lanes() = %d, want %d", c.w, got, c.lanes)
		}
		if got := c.w.String(); got != c.name {
			t.Errorf("Width(%d).String() = %q, want %q", c.w, got, c.name)
		}
		if !c.w.Valid() {
			t.Errorf("%v.Valid() = false, want true", c.w)
		}
	}
	if Width(64).Valid() {
		t.Error("Width(64).Valid() = true, want false")
	}
	if got := Width(64).String(); got != "Width?" {
		t.Errorf("Width(64).String() = %q", got)
	}
}

func TestLoadBroadcast4(t *testing.T) {
	p := []uint32{10, 20, 30, 40, 50}
	v := Load4(p)
	if v != (Vec4{10, 20, 30, 40}) {
		t.Errorf("Load4 = %v", v)
	}
	b := Broadcast4(7)
	if b != (Vec4{7, 7, 7, 7}) {
		t.Errorf("Broadcast4 = %v", b)
	}
}

func TestLoadPartial(t *testing.T) {
	const s = ^uint32(0)
	if got := LoadPartial4([]uint32{1, 2}, s); got != (Vec4{1, 2, s, s}) {
		t.Errorf("LoadPartial4 = %v", got)
	}
	if got := LoadPartial4(nil, s); got != (Vec4{s, s, s, s}) {
		t.Errorf("LoadPartial4(nil) = %v", got)
	}
	// Longer-than-register input is truncated, not overflowed.
	if got := LoadPartial4([]uint32{1, 2, 3, 4, 5}, s); got != (Vec4{1, 2, 3, 4}) {
		t.Errorf("LoadPartial4(long) = %v", got)
	}
	v8 := LoadPartial8([]uint32{1, 2, 3}, s)
	want8 := Vec8{1, 2, 3, s, s, s, s, s}
	if v8 != want8 {
		t.Errorf("LoadPartial8 = %v, want %v", v8, want8)
	}
	v16 := LoadPartial16([]uint32{9}, s)
	if v16[0] != 9 || v16[1] != s || v16[15] != s {
		t.Errorf("LoadPartial16 = %v", v16)
	}
}

func TestCmpEqMoveMask4(t *testing.T) {
	a := Vec4{1, 2, 3, 4}
	b := Vec4{1, 9, 3, 9}
	c := CmpEq4(a, b)
	if c != (Vec4{^uint32(0), 0, ^uint32(0), 0}) {
		t.Errorf("CmpEq4 = %v", c)
	}
	if m := MoveMask4(c); m != 0b0101 {
		t.Errorf("MoveMask4 = %b, want 0101", m)
	}
}

func TestOrAnd4(t *testing.T) {
	a := Vec4{0xF0, 0x0F, 0xFF, 0}
	b := Vec4{0x0F, 0x0F, 0x00, 0}
	if got := Or4(a, b); got != (Vec4{0xFF, 0x0F, 0xFF, 0}) {
		t.Errorf("Or4 = %v", got)
	}
	if got := And4(a, b); got != (Vec4{0, 0x0F, 0, 0}) {
		t.Errorf("And4 = %v", got)
	}
}

func TestVec8Ops(t *testing.T) {
	p := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	v := Load8(p)
	if v != (Vec8{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("Load8 = %v", v)
	}
	b := Broadcast8(5)
	c := CmpEq8(v, b)
	if m := MoveMask8(c); m != 1<<4 {
		t.Errorf("MoveMask8(CmpEq8) = %b, want bit 4", m)
	}
	o := Or8(c, CmpEq8(v, Broadcast8(1)))
	if m := MoveMask8(o); m != 1<<4|1 {
		t.Errorf("MoveMask8(or) = %b", m)
	}
	if got := And8(v, Broadcast8(1)); got[0] != 1 || got[1] != 0 {
		t.Errorf("And8 = %v", got)
	}
}

func TestVec16Ops(t *testing.T) {
	p := make([]uint32, 16)
	for i := range p {
		p[i] = uint32(i * 3)
	}
	v := Load16(p)
	for i := range p {
		if v[i] != p[i] {
			t.Fatalf("Load16[%d] = %d", i, v[i])
		}
	}
	c := CmpEq16(v, Broadcast16(9))
	if m := MoveMask16(c); m != 1<<3 {
		t.Errorf("MoveMask16 = %b, want bit 3", m)
	}
	o := Or16(c, CmpEq16(v, Broadcast16(45)))
	if m := MoveMask16(o); m != 1<<3|1<<15 {
		t.Errorf("MoveMask16(or) = %b", m)
	}
	a := And16(Broadcast16(0xF0), Broadcast16(0x1F))
	if a[7] != 0x10 {
		t.Errorf("And16 = %v", a)
	}
}

func TestScalarBitUtils(t *testing.T) {
	if Tzcnt32(0) != 32 || Tzcnt32(8) != 3 || Tzcnt32(1) != 0 {
		t.Error("Tzcnt32 wrong")
	}
	if Tzcnt64(0) != 64 || Tzcnt64(1<<40) != 40 {
		t.Error("Tzcnt64 wrong")
	}
	if Popcount32(0xFF) != 8 || Popcount64(^uint64(0)) != 64 {
		t.Error("Popcount wrong")
	}
	if ClearLowestSet(0b1100) != 0b1000 {
		t.Error("ClearLowestSet wrong")
	}
	if ClearLowestSet64(0b1010) != 0b1000 {
		t.Error("ClearLowestSet64 wrong")
	}
}

// Property: MoveMask composed with CmpEq finds exactly the equal lanes.
func TestCmpEqProperty(t *testing.T) {
	f := func(a, b Vec8) bool {
		m := MoveMask8(CmpEq8(a, b))
		for i := 0; i < 8; i++ {
			want := a[i] == b[i]
			got := m&(1<<uint(i)) != 0
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAndWords(t *testing.T) {
	a := []uint64{0xFF, 0, 0xF0F0, 1, 2, 3, 4, 5, 6, 7}
	b := []uint64{0x0F, 7, 0x00F0, 0, 2, 1, 4, 4, 6, 0}
	dst := make([]uint64, len(a))
	nz := AndWords(dst, a, b)
	want := []uint64{0x0F, 0, 0x00F0, 0, 2, 1, 4, 4, 6, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %x, want %x", i, dst[i], want[i])
		}
	}
	if nz != 7 {
		t.Errorf("nonZero = %d, want 7", nz)
	}
}

func TestAndWordsShort(t *testing.T) {
	// Lengths below the unroll width exercise the scalar tail.
	a := []uint64{0b1010, 0b0110, 0}
	b := []uint64{0b0010, 0b1001, 5}
	dst := make([]uint64, 3)
	nz := AndWords(dst, a, b)
	if dst[0] != 0b0010 || dst[1] != 0 || dst[2] != 0 {
		t.Errorf("dst = %v", dst)
	}
	if nz != 1 {
		t.Errorf("nonZero = %d, want 1", nz)
	}
}

func TestAndWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	AndWords(make([]uint64, 2), make([]uint64, 3), make([]uint64, 3))
}

func TestAndWordsWrap(t *testing.T) {
	a := []uint64{0xFF, 0xF0, 0x0F, 0xAA}
	b := []uint64{0x3C, 0xFF}
	dst := make([]uint64, 4)
	nz := AndWordsWrap(dst, a, b)
	want := []uint64{0xFF & 0x3C, 0xF0 & 0xFF, 0x0F & 0x3C, 0xAA & 0xFF}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %x, want %x", i, dst[i], want[i])
		}
	}
	if nz != 4 {
		t.Errorf("nonZero = %d, want 4", nz)
	}
}

func TestAndWordsWrapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when len(b) does not divide len(a)")
		}
	}()
	AndWordsWrap(make([]uint64, 4), make([]uint64, 4), make([]uint64, 3))
}

func TestAndWordsK(t *testing.T) {
	a := []uint64{0xFF, 0xF0}
	b := []uint64{0x0F | 0x30, 0xF0}
	c := []uint64{0x33, 0x10}
	dst := make([]uint64, 2)
	nz := AndWordsK(dst, a, b, c)
	if dst[0] != 0xFF&(0x0F|0x30)&0x33 {
		t.Errorf("dst[0] = %x", dst[0])
	}
	if dst[1] != 0x10 {
		t.Errorf("dst[1] = %x", dst[1])
	}
	if nz != 2 {
		t.Errorf("nonZero = %d", nz)
	}
	// Single-bitmap degenerate case is a copy.
	nz = AndWordsK(dst, a)
	if dst[0] != 0xFF || dst[1] != 0xF0 || nz != 2 {
		t.Errorf("single AndWordsK = %v nz=%d", dst, nz)
	}
}

// Property: AndWords agrees with a naive word loop for random inputs,
// including lengths that exercise both the unrolled body and the tail.
func TestAndWordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			// Sparse words so zero results occur often.
			a[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			b[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
		dst := make([]uint64, n)
		nz := AndWords(dst, a, b)
		wantNZ := 0
		for i := range a {
			w := a[i] & b[i]
			if dst[i] != w {
				t.Fatalf("trial %d: dst[%d] = %x, want %x", trial, i, dst[i], w)
			}
			if w != 0 {
				wantNZ++
			}
		}
		if nz != wantNZ {
			t.Fatalf("trial %d: nonZero = %d, want %d", trial, nz, wantNZ)
		}
	}
}

func TestSegmentMask8(t *testing.T) {
	cases := []struct {
		w    uint64
		want uint32
	}{
		{0, 0},
		{1, 1},
		{0x80, 1},
		{0x100, 2},
		{0xFF00000000000000, 0x80},
		{0x0101010101010101, 0xFF},
		{0x00FF00FF00FF00FF, 0x55},
		{0xFF00FF00FF00FF00, 0xAA},
	}
	for _, c := range cases {
		if got := SegmentMask8(c.w); got != c.want {
			t.Errorf("SegmentMask8(%#x) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

// Property: SegmentMask8 bit i is set iff byte i is non-zero.
func TestSegmentMask8Property(t *testing.T) {
	f := func(w uint64) bool {
		m := SegmentMask8(w)
		for i := 0; i < 8; i++ {
			byteNZ := (w>>(8*uint(i)))&0xFF != 0
			bitSet := m&(1<<uint(i)) != 0
			if byteNZ != bitSet {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentMask16(t *testing.T) {
	f := func(w uint64) bool {
		m := SegmentMask16(w)
		for i := 0; i < 4; i++ {
			nz := (w>>(16*uint(i)))&0xFFFF != 0
			if nz != (m&(1<<uint(i)) != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentMask32(t *testing.T) {
	f := func(w uint64) bool {
		m := SegmentMask32(w)
		lo := w&0xFFFFFFFF != 0
		hi := w>>32 != 0
		return (m&1 != 0) == lo && (m&2 != 0) == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
