package simd

import (
	"math/rand"
	"testing"
)

var sinkInt int
var sinkU32 uint32
var sinkVec8 Vec8

func BenchmarkAndWords(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 4096, 262144} {
		x := make([]uint64, n)
		y := make([]uint64, n)
		dst := make([]uint64, n)
		for i := range x {
			x[i] = rng.Uint64()
			y[i] = rng.Uint64()
		}
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				sinkInt += AndWords(dst, x, y)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<18:
		return "256Kwords"
	case n >= 1<<12:
		return "4Kwords"
	default:
		return "64words"
	}
}

func BenchmarkSegmentMask8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	words := make([]uint64, 1024)
	for i := range words {
		words[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU32 |= SegmentMask8(words[i%1024])
	}
}

func BenchmarkCmpEq8MoveMask(b *testing.B) {
	x := Vec8{1, 2, 3, 4, 5, 6, 7, 8}
	y := Broadcast8(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU32 |= MoveMask8(CmpEq8(x, y))
	}
}

func BenchmarkBroadcastOr16(b *testing.B) {
	x := Broadcast16(7)
	for i := 0; i < b.N; i++ {
		v := Or16(x, Broadcast16(uint32(i)))
		sinkU32 |= v[0]
	}
}
