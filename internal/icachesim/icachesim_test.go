package icachesim

import (
	"math/rand"
	"testing"

	"fesia/internal/kernels"
)

func TestCacheBasics(t *testing.T) {
	c := New(1024, 64, 2) // 8 sets x 2 ways
	if !c.Access(0) {
		t.Error("cold access should miss")
	}
	if c.Access(0) {
		t.Error("repeat access should hit")
	}
	if c.Access(32) {
		t.Error("same-line access should hit")
	}
	if !c.Access(64) {
		t.Error("next line should miss")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("Reset should clear counters")
	}
	if !c.Access(0) {
		t.Error("post-reset access should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(1024, 64, 2) // 8 sets; lines mapping to set 0: 0, 512, 1024, ...
	c.Access(0)           // set 0: [0]
	c.Access(512)         // set 0: [512, 0]
	if c.Access(0) {
		t.Error("line 0 should still be cached")
	}
	c.Access(1024) // evicts 512 (LRU)
	if c.Access(512) == false {
		t.Error("line 512 should have been evicted")
	}
	if c.Access(1024) {
		t.Error("line 1024 should be cached (0 was evicted by 512's refill)")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, 64, 8) },
		func() { New(1000, 64, 8) },
		func() { New(1024, 60, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestAccessRange(t *testing.T) {
	c := New(4096, 64, 8)
	if got := c.AccessRange(0, 1); got != 1 {
		t.Errorf("1-byte range misses = %d", got)
	}
	if got := c.AccessRange(0, 64); got != 0 {
		t.Errorf("cached line misses = %d", got)
	}
	if got := c.AccessRange(60, 8); got != 1 {
		t.Errorf("straddling range misses = %d (line 0 cached, line 1 cold)", got)
	}
	if got := c.AccessRange(0, 0); got != 0 {
		t.Errorf("empty range misses = %d", got)
	}
	c.Reset()
	if got := c.AccessRange(0, 257); got != 5 {
		t.Errorf("257-byte cold range misses = %d, want 5", got)
	}
}

func TestLayout(t *testing.T) {
	l := NewLayout(kernels.TableSSE)
	if l.NumKernels() == 0 || l.CodeBytes() == 0 {
		t.Fatal("empty layout")
	}
	if uint64(kernels.TableSSE.CodeSize()) != l.CodeBytes() {
		t.Errorf("layout bytes %d != table code size %d", l.CodeBytes(), kernels.TableSSE.CodeSize())
	}
	// Stride tables collapse many pairs onto few kernels.
	lFull := NewLayout(kernels.TableAVX512)
	l4 := NewLayout(kernels.TableAVX512S4)
	l8 := NewLayout(kernels.TableAVX512S8)
	if !(lFull.NumKernels() > l4.NumKernels() && l4.NumKernels() > l8.NumKernels()) {
		t.Errorf("kernel counts not monotone: %d, %d, %d",
			lFull.NumKernels(), l4.NumKernels(), l8.NumKernels())
	}
}

// TestTable2Ordering reproduces the qualitative claim of Table II: on the
// same dispatch trace, a smaller sampled kernel library misses less in a
// 32 KiB L1i than the full kernel library.
func TestTable2Ordering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trace := make([][2]int, 30000)
	for i := range trace {
		// Segment sizes follow the small-skewed distribution the bitmap
		// filter produces: mostly tiny, occasionally large.
		trace[i] = [2]int{rng.Intn(6) + rng.Intn(26)*(rng.Intn(8)/7) + 1, rng.Intn(6) + 1}
	}
	miss := func(tbl *kernels.Table) int {
		c := New(32*1024, 64, 8)
		return NewLayout(tbl).Replay(c, trace)
	}
	full := miss(kernels.TableAVX512)
	s4 := miss(kernels.TableAVX512S4)
	s8 := miss(kernels.TableAVX512S8)
	if !(full > s4 && s4 > s8) {
		t.Errorf("misses not monotone: full=%d s4=%d s8=%d", full, s4, s8)
	}
}

func TestReplayOverCap(t *testing.T) {
	c := New(32*1024, 64, 8)
	l := NewLayout(kernels.TableSSE)
	// Over-cap pairs go through the generic kernel at a stable address:
	// first touch misses, the rest hit.
	m := l.Replay(c, [][2]int{{100, 100}, {100, 100}, {50, 9}})
	if m == 0 || m > 3*3 {
		t.Errorf("generic replay misses = %d", m)
	}
}
