// Package icachesim models an L1 instruction cache, standing in for the
// hardware performance counters behind Table II of the FESIA paper.
//
// The paper shows that generating every AVX512 kernel (520 KB of code)
// overflows the L1 i-cache, and that sampling kernel sizes at stride 4 or 8
// shrinks the code by 90%/98% and cuts misses by 13%/30%. Reproducing the
// counter readings needs real hardware; reproducing the *mechanism* needs
// only a cache model: kernels are laid out contiguously in a synthetic
// address space, a dispatch trace drives line fills, and an LRU set-
// associative cache counts misses. See DESIGN.md (substitutions).
package icachesim

import (
	"fmt"

	"fesia/internal/kernels"
)

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	lineBits uint
	sets     [][]uint64 // per-set tag stacks, most recent first
	assoc    int
	nsets    int

	accesses int
	misses   int
}

// New returns a cache of sizeBytes with the given line size and
// associativity. Typical L1i: New(32*1024, 64, 8).
func New(sizeBytes, lineBytes, assoc int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || assoc <= 0 {
		panic("icachesim: non-positive geometry")
	}
	if sizeBytes%(lineBytes*assoc) != 0 {
		panic(fmt.Sprintf("icachesim: size %d not divisible by line*assoc %d", sizeBytes, lineBytes*assoc))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	if 1<<lineBits != lineBytes {
		panic("icachesim: line size must be a power of two")
	}
	nsets := sizeBytes / (lineBytes * assoc)
	c := &Cache{
		lineBits: lineBits,
		assoc:    assoc,
		nsets:    nsets,
		sets:     make([][]uint64, nsets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, assoc)
	}
	return c
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.accesses = 0
	c.misses = 0
}

// Accesses returns the number of line accesses so far.
func (c *Cache) Accesses() int { return c.accesses }

// Misses returns the number of line misses so far.
func (c *Cache) Misses() int { return c.misses }

// Access touches the line containing addr and reports whether it missed.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineBits
	set := int(line) % c.nsets
	tags := c.sets[set]
	for i, t := range tags {
		if t == line {
			// Move to front (LRU update).
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			return false
		}
	}
	c.misses++
	if len(tags) < c.assoc {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = line
	c.sets[set] = tags
	return true
}

// AccessRange touches every line of [addr, addr+size) and returns the number
// of misses — the footprint of executing one straight-line kernel.
func (c *Cache) AccessRange(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	misses := 0
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for line := first; line <= last; line++ {
		if c.Access(line << c.lineBits) {
			misses++
		}
	}
	return misses
}

// Layout places every kernel of a table at a fixed synthetic address,
// contiguously in control-code order, mirroring how the linker lays out the
// generated kernel library.
type Layout struct {
	table *kernels.Table
	addr  map[int]uint64 // ctrl -> start address
	size  map[int]int    // ctrl -> bytes
	total uint64
}

// NewLayout builds the address map for a kernel table.
func NewLayout(t *kernels.Table) *Layout {
	l := &Layout{table: t, addr: map[int]uint64{}, size: map[int]int{}}
	for sa := 0; sa <= t.Cap(); sa++ {
		for sb := 0; sb <= t.Cap(); sb++ {
			bytes, ctrl, ok := t.KernelBytes(sa, sb)
			if !ok {
				continue
			}
			if _, seen := l.addr[ctrl]; seen {
				continue
			}
			l.addr[ctrl] = l.total
			l.size[ctrl] = bytes
			l.total += uint64(bytes)
		}
	}
	return l
}

// CodeBytes returns the summed footprint of all distinct kernels.
func (l *Layout) CodeBytes() uint64 { return l.total }

// NumKernels returns the number of distinct dispatch targets.
func (l *Layout) NumKernels() int { return len(l.addr) }

// Replay executes a dispatch trace of (sa, sb) segment-size pairs against
// the cache and returns the number of i-cache misses. Pairs beyond the
// table's capacity dispatch to the shared generic kernel, modelled at a
// fixed address past the table.
func (l *Layout) Replay(c *Cache, trace [][2]int) int {
	genericAddr := l.total
	const genericSize = 160
	misses := 0
	for _, p := range trace {
		_, ctrl, ok := l.table.KernelBytes(p[0], p[1])
		if !ok {
			misses += c.AccessRange(genericAddr, genericSize)
			continue
		}
		misses += c.AccessRange(l.addr[ctrl], l.size[ctrl])
	}
	return misses
}
