package datasets

import (
	"fmt"
	"math/rand"
)

// GraphConfig sizes a synthetic analytics graph. The generator combines
// preferential attachment (heavy-tailed degrees, like the SNAP citation and
// social graphs of Table III) with explicit triadic closure (each new edge
// closes a random open triangle with probability Clustering), so triangle
// counts are non-trivial as in the paper's Fig. 13 workloads.
type GraphConfig struct {
	Nodes      int     // number of vertices
	EdgesPer   int     // attachment edges per new vertex (mean degree ≈ 2·EdgesPer)
	Clustering float64 // probability of adding one triadic-closure edge per new vertex
	Seed       int64
}

// Graph is an undirected simple graph in edge-list form. Vertices are
// 0..Nodes-1.
type Graph struct {
	Nodes int
	Edges [][2]uint32
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// NewGraph generates a graph per cfg.
func NewGraph(cfg GraphConfig) *Graph {
	if cfg.Nodes < 3 {
		panic(fmt.Sprintf("datasets: graph needs at least 3 nodes, got %d", cfg.Nodes))
	}
	if cfg.EdgesPer < 1 {
		cfg.EdgesPer = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type edge = [2]uint32
	seen := make(map[edge]bool)
	var edges []edge
	// endpoints holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional (preferential attachment).
	endpoints := make([]uint32, 0, cfg.Nodes*cfg.EdgesPer*2)

	addEdge := func(u, v uint32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if seen[e] {
			return false
		}
		seen[e] = true
		edges = append(edges, e)
		endpoints = append(endpoints, u, v)
		return true
	}

	// Seed triangle.
	addEdge(0, 1)
	addEdge(1, 2)
	addEdge(0, 2)

	adj := make([][]uint32, cfg.Nodes)
	adj[0] = []uint32{1, 2}
	adj[1] = []uint32{0, 2}
	adj[2] = []uint32{0, 1}

	for v := 3; v < cfg.Nodes; v++ {
		var firstTarget uint32
		attached := 0
		for attempt := 0; attached < cfg.EdgesPer && attempt < cfg.EdgesPer*20; attempt++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if addEdge(uint32(v), t) {
				adj[v] = append(adj[v], t)
				adj[t] = append(adj[t], uint32(v))
				if attached == 0 {
					firstTarget = t
				}
				attached++
			}
		}
		// Triadic closure: connect v to a neighbor of its first target,
		// guaranteeing a triangle (v, firstTarget, w).
		if attached > 0 && rng.Float64() < cfg.Clustering {
			nbrs := adj[firstTarget]
			w := nbrs[rng.Intn(len(nbrs))]
			if addEdge(uint32(v), w) {
				adj[v] = append(adj[v], w)
				adj[w] = append(adj[w], uint32(v))
			}
		}
	}
	return &Graph{Nodes: cfg.Nodes, Edges: edges}
}

// StandardGraphs returns the three Fig. 13 workloads scaled to
// benchmark-friendly sizes: "Patents"-like (large, sparse, moderate
// clustering), "HepPh"-like (small, dense, highly clustered), and
// "LiveJournal"-like (large, denser, heavy-tailed). See DESIGN.md for the
// substitution note.
func StandardGraphs() []struct {
	Name string
	Cfg  GraphConfig
} {
	return []struct {
		Name string
		Cfg  GraphConfig
	}{
		{"Patents-like", GraphConfig{Nodes: 120_000, EdgesPer: 4, Clustering: 0.3, Seed: 101}},
		{"HepPh-like", GraphConfig{Nodes: 12_000, EdgesPer: 12, Clustering: 0.8, Seed: 102}},
		{"LiveJournal-like", GraphConfig{Nodes: 150_000, EdgesPer: 8, Clustering: 0.5, Seed: 103}},
	}
}
