package datasets

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// FIMI transaction format support. The Frequent Itemset Mining repository
// (the paper's WebDocs source, reference [19]) distributes datasets as plain
// text: one transaction (document) per line, whitespace-separated item IDs.
// ReadFIMI lets the database-query experiments run on the real WebDocs file
// when it is available; the generated Zipf corpus stands in otherwise.

// ReadFIMI parses a FIMI transaction stream into a Corpus. Document IDs are
// assigned in line order; maxDocs > 0 truncates the stream (WebDocs has
// 1.7M transactions — truncation gives laptop-scale slices of the real
// data). Duplicate items within one transaction collapse.
func ReadFIMI(r io.Reader, maxDocs int) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20) // WebDocs has very long lines
	postings := make(map[uint32][]uint32)
	doc := 0
	maxItem := uint32(0)
	for sc.Scan() {
		if maxDocs > 0 && doc >= maxDocs {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var prevInDoc map[uint32]bool
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseUint(field, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d: bad item %q: %w", doc+1, field, err)
			}
			item := uint32(v)
			if prevInDoc == nil {
				prevInDoc = make(map[uint32]bool, 8)
			}
			if prevInDoc[item] {
				continue
			}
			prevInDoc[item] = true
			postings[item] = append(postings[item], uint32(doc))
			if item > maxItem {
				maxItem = item
			}
		}
		doc++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: reading FIMI stream: %w", err)
	}
	if doc == 0 {
		return nil, fmt.Errorf("datasets: FIMI stream contains no transactions")
	}
	c := &Corpus{
		NumDocs:  doc,
		NumItems: int(maxItem) + 1,
		Postings: postings,
	}
	c.itemsByFreq = make([]uint32, 0, len(postings))
	for item := range postings {
		c.itemsByFreq = append(c.itemsByFreq, item)
	}
	sort.Slice(c.itemsByFreq, func(i, j int) bool {
		li, lj := len(postings[c.itemsByFreq[i]]), len(postings[c.itemsByFreq[j]])
		if li != lj {
			return li > lj
		}
		return c.itemsByFreq[i] < c.itemsByFreq[j]
	})
	return c, nil
}

// WriteFIMI writes the corpus in FIMI transaction format (one line per
// document, ascending item IDs), the inverse of ReadFIMI.
func (c *Corpus) WriteFIMI(w io.Writer) error {
	// Invert postings into per-document item lists.
	docs := make([][]uint32, c.NumDocs)
	for item, lst := range c.Postings {
		for _, d := range lst {
			docs[d] = append(docs[d], item)
		}
	}
	bw := bufio.NewWriter(w)
	for _, items := range docs {
		slices.Sort(items)
		for i, it := range items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
