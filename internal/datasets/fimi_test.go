package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFIMI(t *testing.T) {
	in := strings.NewReader("1 2 3\n2 3 4\n\n3 4 5 5\n")
	c, err := ReadFIMI(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs != 3 {
		t.Fatalf("NumDocs = %d, want 3 (blank lines skipped)", c.NumDocs)
	}
	if got := c.Posting(3); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Posting(3) = %v", got)
	}
	if got := c.Posting(5); len(got) != 1 {
		t.Errorf("duplicate in-transaction item should collapse: %v", got)
	}
	if got := c.Posting(99); got != nil {
		t.Errorf("absent item = %v", got)
	}
	if c.DistinctItems() != 5 {
		t.Errorf("DistinctItems = %d", c.DistinctItems())
	}
}

func TestReadFIMITruncation(t *testing.T) {
	in := strings.NewReader("1\n2\n3\n4\n")
	c, err := ReadFIMI(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs != 2 || c.Posting(3) != nil {
		t.Errorf("truncation failed: docs=%d", c.NumDocs)
	}
}

func TestReadFIMIErrors(t *testing.T) {
	if _, err := ReadFIMI(strings.NewReader("1 two 3\n"), 0); err == nil {
		t.Error("non-numeric item should fail")
	}
	if _, err := ReadFIMI(strings.NewReader(""), 0); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := ReadFIMI(strings.NewReader("99999999999999999999\n"), 0); err == nil {
		t.Error("out-of-range item should fail")
	}
}

func TestFIMIRoundTrip(t *testing.T) {
	orig := NewCorpus(CorpusConfig{NumDocs: 500, NumItems: 2000, MeanLen: 15, Seed: 44})
	var buf bytes.Buffer
	if err := orig.WriteFIMI(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFIMI(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Empty trailing documents may collapse NumDocs; postings must match
	// for all items that occur.
	if len(got.Postings) != len(orig.Postings) {
		t.Fatalf("item counts differ: %d vs %d", len(got.Postings), len(orig.Postings))
	}
	for item, want := range orig.Postings {
		gp := got.Posting(item)
		if len(gp) != len(want) {
			t.Fatalf("item %d posting length %d, want %d", item, len(gp), len(want))
		}
		for i := range want {
			if gp[i] != want[i] {
				t.Fatalf("item %d posting differs at %d", item, i)
			}
		}
	}
	// The round-tripped corpus must still support query sampling.
	_ = got.itemsByFreq[0]
}
