package datasets

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func isSortedDistinct(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func exactIntersection(a, b []uint32) int {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	r := 0
	for _, v := range b {
		if in[v] {
			r++
		}
	}
	return r
}

func TestGenPairExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n1, n2, r int
		universe  uint32
	}{
		{10, 10, 0, 100}, {10, 10, 10, 100}, {100, 50, 25, 1000},
		{1000, 1000, 10, 1 << 20}, {5, 5000, 5, 1 << 20}, {0, 0, 0, 10},
		{7, 7, 7, 14}, // dense: needs the Fisher-Yates path
	}
	for _, c := range cases {
		a, b := GenPair(rng, c.n1, c.n2, c.r, c.universe)
		if len(a) != c.n1 || len(b) != c.n2 {
			t.Errorf("GenPair(%+v): sizes %d, %d", c, len(a), len(b))
		}
		if !isSortedDistinct(a) || !isSortedDistinct(b) {
			t.Errorf("GenPair(%+v): not sorted distinct", c)
		}
		if got := exactIntersection(a, b); got != c.r {
			t.Errorf("GenPair(%+v): intersection %d, want %d", c, got, c.r)
		}
		for _, v := range append(append([]uint32{}, a...), b...) {
			if v >= c.universe {
				t.Errorf("GenPair(%+v): value %d outside universe", c, v)
			}
		}
	}
}

func TestGenPairPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bad := range []func(){
		func() { GenPair(rng, 5, 5, 6, 100) },
		func() { GenPair(rng, 100, 100, 0, 50) },
		func() { GenPairSelectivity(rng, 10, 10, 1.5, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestGenPairSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sel := range []float64{0, 0.01, 0.1, 0.5, 1} {
		a, b := GenPairSelectivity(rng, 1000, 2000, sel, 1<<22)
		got := Selectivity(a, b)
		if got < sel-0.001 || got > sel+0.001 {
			t.Errorf("selectivity %v: measured %v", sel, got)
		}
	}
}

// Property: GenPair always produces the exact requested intersection.
func TestGenPairProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(s1, s2, sr uint16) bool {
		n1 := int(s1%500) + 1
		n2 := int(s2%500) + 1
		r := int(sr) % (min(n1, n2) + 1)
		a, b := GenPair(rng, n1, n2, r, 1<<20)
		return exactIntersection(a, b) == r && isSortedDistinct(a) && isSortedDistinct(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sets := GenGroup(rng, 3, 1000, 0.5)
	if len(sets) != 3 {
		t.Fatalf("k = %d", len(sets))
	}
	for _, s := range sets {
		if len(s) != 1000 || !isSortedDistinct(s) {
			t.Error("bad member set")
		}
	}
	// Density 0: disjoint.
	disjoint := GenGroup(rng, 3, 500, 0)
	if exactIntersection(disjoint[0], disjoint[1]) != 0 ||
		exactIntersection(disjoint[1], disjoint[2]) != 0 {
		t.Error("density 0 must be disjoint")
	}
	// Higher density must give (much) higher overlap on average.
	lo := GenGroup(rng, 2, 2000, 0.05)
	hi := GenGroup(rng, 2, 2000, 0.9)
	if exactIntersection(hi[0], hi[1]) <= exactIntersection(lo[0], lo[1]) {
		t.Error("density should increase overlap")
	}
}

func TestGenGroupPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, bad := range []func(){
		func() { GenGroup(rng, 0, 10, 0.5) },
		func() { GenGroup(rng, 2, -1, 0.5) },
		func() { GenGroup(rng, 2, 10, 1.5) },
		func() { GenGroup(rng, 2, 10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
	// Density 1: universe clamps to n, sets are the full range.
	full := GenGroup(rng, 2, 100, 1)
	if len(full[0]) != 100 || exactIntersection(full[0], full[1]) != 100 {
		t.Error("density 1 should yield identical full-range sets")
	}
}

func TestCorpusDefaults(t *testing.T) {
	cfg := CorpusConfig{}.withDefaults()
	if cfg.NumDocs != 200_000 || cfg.NumItems != 500_000 || cfg.MeanLen != 40 ||
		cfg.ZipfS != 1.2 || cfg.ZipfV != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Explicit values survive.
	cfg = CorpusConfig{NumDocs: 7, NumItems: 8, MeanLen: 9, ZipfS: 2, ZipfV: 5}.withDefaults()
	if cfg.NumDocs != 7 || cfg.ZipfS != 2 {
		t.Errorf("explicit values overwritten: %+v", cfg)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid corpus config should panic")
		}
	}()
	NewCorpus(CorpusConfig{NumDocs: -1, NumItems: 5, MeanLen: 2})
}

func TestSampleQueriesPanics(t *testing.T) {
	c := NewCorpus(CorpusConfig{NumDocs: 200, NumItems: 300, MeanLen: 5, Seed: 14})
	rng := rand.New(rand.NewSource(15))
	for _, bad := range []func(){
		func() { c.SampleQueries(rng, 1, 1, 1, 1, 0) },         // k < 2
		func() { c.SampleQueries(rng, 1, 2, 1_000_000, 1, 0) }, // minLen unsatisfiable
		func() { c.SampleQueries(rng, 50, 2, 1, 1, 1e-9) },     // skew bound unsatisfiable
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestSelectivityHelper(t *testing.T) {
	if Selectivity(nil, []uint32{1}) != 0 {
		t.Error("empty set selectivity should be 0")
	}
	if got := Selectivity([]uint32{1, 2, 3}, []uint32{2, 3, 4, 5}); got != 2.0/3.0 {
		t.Errorf("Selectivity = %v", got)
	}
}

func TestCorpus(t *testing.T) {
	c := NewCorpus(CorpusConfig{NumDocs: 2000, NumItems: 5000, MeanLen: 20, Seed: 5})
	if c.NumDocs != 2000 || c.DistinctItems() == 0 {
		t.Fatalf("corpus: docs=%d items=%d", c.NumDocs, c.DistinctItems())
	}
	// Posting lists sorted distinct, doc IDs in range.
	for item, lst := range c.Postings {
		if !isSortedDistinct(lst) {
			t.Fatalf("posting list of %d not sorted distinct", item)
		}
		for _, d := range lst {
			if int(d) >= c.NumDocs {
				t.Fatalf("doc %d out of range", d)
			}
		}
	}
	// Zipf skew: most frequent item should dominate the median.
	top := len(c.Postings[c.itemsByFreq[0]])
	median := len(c.Postings[c.itemsByFreq[len(c.itemsByFreq)/2]])
	if top < 10*median {
		t.Errorf("posting lengths not skewed: top=%d median=%d", top, median)
	}
	if c.Posting(^uint32(0)) != nil && len(c.Posting(^uint32(0))) == 0 {
		t.Error("absent item should return nil posting")
	}
}

func TestSampleQueries(t *testing.T) {
	c := NewCorpus(CorpusConfig{NumDocs: 5000, NumItems: 3000, MeanLen: 30, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	qs := c.SampleQueries(rng, 20, 2, 50, 0.2, 0)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q.Postings) != 2 || len(q.Items) != 2 {
			t.Fatal("bad query shape")
		}
		if len(q.Postings[0]) < 50 || len(q.Postings[1]) < 50 {
			t.Error("posting below minLen")
		}
		if s := Selectivity(q.Postings[0], q.Postings[1]); s > 0.2 {
			t.Errorf("selectivity %v above bound", s)
		}
	}
	// Three-keyword queries.
	q3 := c.SampleQueries(rng, 5, 3, 50, 0.3, 0)
	for _, q := range q3 {
		if len(q.Postings) != 3 {
			t.Error("bad 3-way query")
		}
	}
	// Skew-bounded queries.
	skewed := c.SampleQueries(rng, 5, 2, 20, 0.5, 0.2)
	for _, q := range skewed {
		ratio := float64(len(q.Postings[0])) / float64(len(q.Postings[1]))
		if ratio > 0.2 {
			t.Errorf("query skew %v above 0.2", ratio)
		}
	}
}

func TestGraph(t *testing.T) {
	g := NewGraph(GraphConfig{Nodes: 3000, EdgesPer: 5, Clustering: 0.5, Seed: 8})
	if g.Nodes != 3000 {
		t.Fatal("nodes")
	}
	if g.NumEdges() < 3000*4 {
		t.Errorf("too few edges: %d", g.NumEdges())
	}
	seen := map[[2]uint32]bool{}
	degree := make([]int, g.Nodes)
	for _, e := range g.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge not canonical: %v", e)
		}
		if int(e[1]) >= g.Nodes {
			t.Fatalf("edge endpoint out of range: %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		degree[e[0]]++
		degree[e[1]]++
	}
	// Heavy tail: max degree far above the mean.
	maxDeg, sum := 0, 0
	for _, d := range degree {
		sum += d
		maxDeg = max(maxDeg, d)
	}
	mean := float64(sum) / float64(len(degree))
	if float64(maxDeg) < 5*mean {
		t.Errorf("degree distribution not heavy-tailed: max=%d mean=%.1f", maxDeg, mean)
	}
}

func TestStandardGraphs(t *testing.T) {
	std := StandardGraphs()
	if len(std) != 3 {
		t.Fatalf("want 3 standard graphs, got %d", len(std))
	}
	names := map[string]bool{}
	for _, sg := range std {
		names[sg.Name] = true
		if sg.Cfg.Nodes < 1000 {
			t.Errorf("%s too small", sg.Name)
		}
	}
	if !names["Patents-like"] || !names["HepPh-like"] || !names["LiveJournal-like"] {
		t.Error("missing a standard graph")
	}
}

func TestGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny graph should panic")
		}
	}()
	NewGraph(GraphConfig{Nodes: 2})
}
