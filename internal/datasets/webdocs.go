package datasets

import (
	"fmt"
	"math/rand"
	"sort"
)

// Corpus is a WebDocs-like transaction corpus: a collection of documents,
// each a set of item IDs, with Zipf-distributed item popularity so that
// posting-list lengths are heavily skewed — the property that makes the
// paper's database query task (Fig. 12) interesting.
type Corpus struct {
	NumDocs  int
	NumItems int
	// Postings maps every item that occurs at least once to the sorted
	// list of document IDs containing it.
	Postings map[uint32][]uint32

	itemsByFreq []uint32 // items sorted by descending posting length
}

// CorpusConfig sizes a WebDocs-like corpus. The FIMI WebDocs dataset has
// ~1.7M documents over ~5.3M distinct items with a mean transaction length
// around 177; the defaults scale that shape down to benchmark-friendly
// sizes while keeping the Zipf skew.
type CorpusConfig struct {
	NumDocs  int     // default 200_000
	NumItems int     // default 500_000
	MeanLen  int     // mean items per document, default 40
	ZipfS    float64 // Zipf exponent (>1), default 1.2
	ZipfV    float64 // Zipf offset (>=1), default 4
	Seed     int64
}

func (c CorpusConfig) withDefaults() CorpusConfig {
	if c.NumDocs == 0 {
		c.NumDocs = 200_000
	}
	if c.NumItems == 0 {
		c.NumItems = 500_000
	}
	if c.MeanLen == 0 {
		c.MeanLen = 40
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfV == 0 {
		c.ZipfV = 4
	}
	return c
}

// NewCorpus generates a corpus. Document lengths are geometric-ish around
// MeanLen; item draws follow a Zipf law so a few items are extremely
// frequent and most are rare.
func NewCorpus(cfg CorpusConfig) *Corpus {
	cfg = cfg.withDefaults()
	if cfg.NumDocs <= 0 || cfg.NumItems <= 1 || cfg.MeanLen <= 0 {
		panic(fmt.Sprintf("datasets: invalid corpus config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.NumItems-1))

	postings := make(map[uint32][]uint32)
	for doc := 0; doc < cfg.NumDocs; doc++ {
		// Document length: 1 + Poisson-ish spread around MeanLen.
		length := 1 + rng.Intn(2*cfg.MeanLen)
		seen := make(map[uint32]struct{}, length)
		for t := 0; t < length; t++ {
			item := uint32(zipf.Uint64())
			if _, dup := seen[item]; dup {
				continue
			}
			seen[item] = struct{}{}
			postings[item] = append(postings[item], uint32(doc))
		}
	}
	c := &Corpus{
		NumDocs:  cfg.NumDocs,
		NumItems: cfg.NumItems,
		Postings: postings,
	}
	// Posting lists are built in ascending doc order already; items sorted
	// by frequency drive query sampling.
	c.itemsByFreq = make([]uint32, 0, len(postings))
	for item := range postings {
		c.itemsByFreq = append(c.itemsByFreq, item)
	}
	sort.Slice(c.itemsByFreq, func(i, j int) bool {
		li, lj := len(postings[c.itemsByFreq[i]]), len(postings[c.itemsByFreq[j]])
		if li != lj {
			return li > lj
		}
		return c.itemsByFreq[i] < c.itemsByFreq[j]
	})
	return c
}

// DistinctItems returns how many items occur at least once.
func (c *Corpus) DistinctItems() int { return len(c.Postings) }

// Posting returns the sorted document list of an item (nil if absent).
func (c *Corpus) Posting(item uint32) []uint32 { return c.Postings[item] }

// Query is a conjunctive keyword query: the posting lists to intersect.
type Query struct {
	Items    []uint32
	Postings [][]uint32
}

// SampleQueries draws nq random k-keyword queries whose posting lists each
// have at least minLen documents and whose pairwise selectivity stays below
// maxSelectivity, mirroring Section VII-F ("we generate random queries from
// the dataset and keep the set intersection size below 20% of the input").
// maxSkew, when positive, additionally bounds how unbalanced the two largest
// lists may be (used for the skewed variant of Fig. 12).
func (c *Corpus) SampleQueries(rng *rand.Rand, nq, k, minLen int, maxSelectivity, maxSkew float64) []Query {
	qs, err := c.TrySampleQueries(rng, nq, k, minLen, maxSelectivity, maxSkew)
	if err != nil {
		panic(err)
	}
	return qs
}

// TrySampleQueries is SampleQueries returning an error instead of panicking
// when the corpus cannot satisfy the constraints (for CLI use on arbitrary
// loaded datasets).
func (c *Corpus) TrySampleQueries(rng *rand.Rand, nq, k, minLen int, maxSelectivity, maxSkew float64) ([]Query, error) {
	if k < 2 {
		return nil, fmt.Errorf("datasets: queries need at least two keywords, got %d", k)
	}
	// Candidate items: frequent enough to be interesting.
	var candidates []uint32
	for _, item := range c.itemsByFreq {
		if len(c.Postings[item]) >= minLen {
			candidates = append(candidates, item)
		}
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("datasets: only %d items have >= %d postings", len(candidates), minLen)
	}
	queries := make([]Query, 0, nq)
	attempts := 0
	for len(queries) < nq && attempts < nq*1000 {
		attempts++
		items := make([]uint32, 0, k)
		seen := map[uint32]bool{}
		for len(items) < k {
			it := candidates[rng.Intn(len(candidates))]
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		lists := make([][]uint32, k)
		for i, it := range items {
			lists[i] = c.Postings[it]
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		if maxSkew > 0 {
			skew := float64(len(lists[0])) / float64(len(lists[len(lists)-1]))
			if skew > maxSkew {
				continue
			}
		}
		ok := true
		for i := 0; i < k-1 && ok; i++ {
			if Selectivity(lists[i], lists[i+1]) > maxSelectivity {
				ok = false
			}
		}
		if !ok {
			continue
		}
		queries = append(queries, Query{Items: items, Postings: lists})
	}
	if len(queries) < nq {
		return nil, fmt.Errorf("datasets: could only sample %d/%d queries under the constraints", len(queries), nq)
	}
	return queries, nil
}
