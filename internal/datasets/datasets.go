// Package datasets generates the synthetic and real-world-like workloads of
// the FESIA evaluation (Section VII).
//
// Synthetic workloads (Figures 7-11) control three knobs directly: input
// size n, selectivity r/n, and skew n1/n2. GenPair produces sorted distinct
// sets with an exact intersection size; GenGroup produces k sets whose
// overlap is governed by a density parameter as in Fig. 10.
//
// The real-world datasets the paper uses (the FIMI WebDocs corpus and the
// SNAP Patents/HepPh/LiveJournal graphs) cannot be downloaded in this
// offline reproduction, so this package provides generators that match the
// properties the experiments exercise — Zipf-skewed posting-list lengths
// with low-selectivity queries for the database task, and heavy-tailed
// degree distributions with tunable triangle density for the graph task.
// See DESIGN.md for the substitution rationale.
package datasets

import (
	"fmt"
	"math/rand"
	"slices"
)

// GenPair returns two sorted duplicate-free sets with |a| = n1, |b| = n2 and
// |a ∩ b| = r exactly, drawn from [0, universe). It panics if the universe
// cannot accommodate the request.
func GenPair(rng *rand.Rand, n1, n2, r int, universe uint32) (a, b []uint32) {
	if r > n1 || r > n2 {
		panic(fmt.Sprintf("datasets: intersection %d larger than a set (%d, %d)", r, n1, n2))
	}
	need := n1 + n2 - r
	if uint64(need) > uint64(universe) {
		panic(fmt.Sprintf("datasets: universe %d too small for %d distinct values", universe, need))
	}
	vals := sampleDistinct(rng, need, universe)
	common := vals[:r]
	onlyA := vals[r : r+(n1-r)]
	onlyB := vals[r+(n1-r):]

	a = make([]uint32, 0, n1)
	a = append(a, common...)
	a = append(a, onlyA...)
	b = make([]uint32, 0, n2)
	b = append(b, common...)
	b = append(b, onlyB...)
	sortU32(a)
	sortU32(b)
	return a, b
}

// GenSorted returns one sorted duplicate-free set of n values drawn from
// [0, universe) — the building block for one-vs-many corpora, where each
// candidate is sampled independently rather than with a pinned overlap.
func GenSorted(rng *rand.Rand, n int, universe uint32) []uint32 {
	if uint64(n) > uint64(universe) {
		panic(fmt.Sprintf("datasets: universe %d too small for %d distinct values", universe, n))
	}
	vals := sampleDistinct(rng, n, universe)
	sortU32(vals)
	return vals
}

// GenPairSelectivity is GenPair with the intersection size given as a
// fraction of min(n1, n2) — the paper's selectivity knob (Figures 8-9).
func GenPairSelectivity(rng *rand.Rand, n1, n2 int, selectivity float64, universe uint32) (a, b []uint32) {
	if selectivity < 0 || selectivity > 1 {
		panic(fmt.Sprintf("datasets: selectivity %v out of [0,1]", selectivity))
	}
	r := int(selectivity * float64(min(n1, n2)))
	return GenPair(rng, n1, n2, r, universe)
}

// GenGroup returns k sorted distinct sets of size n each for the k-way
// experiment (Fig. 10). density in [0, 1] controls how clustered the value
// range is: each set is drawn from a universe of about n/density values, so
// the expected k-way selectivity scales like density^(k-1); density 0 gives
// pairwise-disjoint ranges (selectivity exactly zero).
func GenGroup(rng *rand.Rand, k, n int, density float64) [][]uint32 {
	if k < 1 || n < 0 {
		panic("datasets: invalid k-way shape")
	}
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("datasets: density %v out of [0,1]", density))
	}
	sets := make([][]uint32, k)
	if density == 0 {
		// Disjoint ranges: nothing can intersect.
		for i := range sets {
			base := uint32(i * n * 2)
			sets[i] = sampleDistinctOffset(rng, n, uint32(2*n), base)
		}
		return sets
	}
	universe := uint32(float64(n) / density)
	if universe < uint32(n) {
		universe = uint32(n)
	}
	for i := range sets {
		sets[i] = sampleDistinct(rng, n, universe)
		sortU32(sets[i])
	}
	return sets
}

// sampleDistinct draws n distinct values uniformly from [0, universe).
// For dense requests (n > universe/2) it uses a partial Fisher-Yates over
// the whole range; otherwise rejection sampling.
func sampleDistinct(rng *rand.Rand, n int, universe uint32) []uint32 {
	if n == 0 {
		return nil
	}
	if uint64(n) > uint64(universe) {
		panic("datasets: cannot draw more distinct values than the universe holds")
	}
	if uint64(n)*2 > uint64(universe) {
		perm := make([]uint32, universe)
		for i := range perm {
			perm[i] = uint32(i)
		}
		for i := 0; i < n; i++ {
			j := i + rng.Intn(len(perm)-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return perm[:n]
	}
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := uint32(rng.Int63n(int64(universe)))
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

func sampleDistinctOffset(rng *rand.Rand, n int, span, base uint32) []uint32 {
	vals := sampleDistinct(rng, n, span)
	for i := range vals {
		vals[i] += base
	}
	sortU32(vals)
	return vals
}

func sortU32(s []uint32) {
	slices.Sort(s)
}

// Selectivity returns |a ∩ b| / min(|a|, |b|) for sorted distinct inputs,
// used by tests and workload validation.
func Selectivity(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, r := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			r++
			i++
			j++
		}
	}
	return float64(r) / float64(min(len(a), len(b)))
}
