package fesia

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Atomic snapshot files. Set and corpus snapshots are the hand-off artifact
// between the offline build phase and the query servers; a crash mid-write
// must never leave a truncated file where a good snapshot used to be. The
// helpers here write through a temporary file in the destination directory,
// fsync it, and rename it over the target — readers see either the old
// complete snapshot or the new complete snapshot, nothing in between.

// WriteFileAtomic writes a file by streaming through `write` into a temporary
// file in the same directory, fsyncing, and atomically renaming over path.
// On any error the temporary file is removed and the previous contents of
// path (if any) are left untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("fesia: creating temporary snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("fesia: writing snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("fesia: syncing snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("fesia: closing snapshot: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fesia: publishing snapshot: %w", err)
	}
	return nil
}

// WriteSetFile atomically writes one set's snapshot to path.
func WriteSetFile(path string, s *Set) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// ReadSetFile loads a set snapshot written by WriteSetFile.
func ReadSetFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fesia: opening snapshot: %w", err)
	}
	defer f.Close()
	s, err := ReadSet(f)
	if err != nil {
		return nil, fmt.Errorf("fesia: loading %s: %w", path, err)
	}
	return s, nil
}

// WriteCorpusFile atomically writes a whole-corpus snapshot to path.
func WriteCorpusFile(path string, sets []*Set) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := WriteCorpus(w, sets)
		return err
	})
}

// ReadCorpusFile loads a corpus snapshot written by WriteCorpusFile.
func ReadCorpusFile(path string) ([]*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fesia: opening snapshot: %w", err)
	}
	defer f.Close()
	sets, err := ReadCorpus(f)
	if err != nil {
		return nil, fmt.Errorf("fesia: loading %s: %w", path, err)
	}
	return sets, nil
}
