package fesia

import (
	"io"
	"net/http"

	"fesia/internal/core"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

// Observability. The query engine carries a zero-overhead-when-off stats
// layer: sharded allocation-free counters, power-of-two latency histograms
// per strategy, and a live kernel-dispatch histogram keyed by true segment
// sizes (the online version of the paper's Table II analysis). Disabled — the
// default — the hot paths pay a single nil-check; enabled, recording is a
// handful of unlocked padded-memory updates per query, and the warm paths
// remain allocation-free (proven by TestStatsZeroAllocWarm and the committed
// BenchmarkExecutorStatsOverhead numbers).
//
// Typical serving setup:
//
//	fesia.EnableStats()                      // once, at startup
//	http.Handle("/metrics", fesia.StatsHandler())
//	...
//	snap := fesia.Stats()                    // point-in-time snapshot
//	p99 := snap.Latency(fesia.LatMerge).Quantile(0.99)

// StatsSnapshot is a merged point-in-time view of the stats sink: exact
// monotonic counters, per-strategy latency histograms, and the sparse
// kernel-dispatch histogram in descending count order.
type StatsSnapshot = stats.Snapshot

// Counter and latency-histogram identifiers, re-exported for reading
// snapshots (snap.Counter(fesia.CtrQueriesMerge), snap.Latency(fesia.LatMerge)).
const (
	LatMerge = stats.LatMerge
	LatHash  = stats.LatHash
	LatKWay  = stats.LatKWay
	LatBatch = stats.LatBatch
	LatCross = stats.LatCross
	LatServe = stats.LatServe

	CtrQueriesMerge    = stats.CtrQueriesMerge
	CtrQueriesHash     = stats.CtrQueriesHash
	CtrQueriesKWay     = stats.CtrQueriesKWay
	CtrQueriesBatch    = stats.CtrQueriesBatch
	CtrQueriesCross    = stats.CtrQueriesCross
	CtrBatchCandidates = stats.CtrBatchCandidates
	CtrSegmentsScanned = stats.CtrSegmentsScanned
	CtrSegPairs        = stats.CtrSegPairs
	CtrHashProbes      = stats.CtrHashProbes
	CtrHashSurvivors   = stats.CtrHashSurvivors
	CtrCancellations   = stats.CtrCancellations
	CtrPoolDo          = stats.CtrPoolDo
	CtrPoolDoDone      = stats.CtrPoolDoDone
	CtrPoolPartsPooled = stats.CtrPoolPartsPooled
	CtrPoolPartsInline = stats.CtrPoolPartsInline
	CtrPoolPanics      = stats.CtrPoolPanics
	CtrSnapshotWrites  = stats.CtrSnapshotWrites
	CtrSnapshotReads   = stats.CtrSnapshotReads

	// Serving-tier counters (internal/serve): admission outcomes, deadline
	// expiries, the queue-depth gauge pair, and hot-swap outcomes.
	CtrServeAdmitted   = stats.CtrServeAdmitted
	CtrServeRejected   = stats.CtrServeRejected
	CtrServeShed       = stats.CtrServeShed
	CtrServeDeadline   = stats.CtrServeDeadline
	CtrServeQueueEnter = stats.CtrServeQueueEnter
	CtrServeQueueExit  = stats.CtrServeQueueExit
	CtrServeSwaps      = stats.CtrServeSwaps
	CtrServeSwapErrors = stats.CtrServeSwapErrors

	// Per-flavor overload rejections (queue depth vs. wait budget; shedding
	// keeps CtrServeShed) and trace-retention tallies by reason.
	CtrServeRejQueueFull = stats.CtrServeRejQueueFull
	CtrServeRejQueueWait = stats.CtrServeRejQueueWait
	CtrTraceSampled      = stats.CtrTraceSampled
	CtrTraceSlow         = stats.CtrTraceSlow
	CtrTraceForced       = stats.CtrTraceForced

	// Planner decision counters: one per (dispatch point, chosen strategy),
	// plus the exploration tally and the count of decisions where the learned
	// model disagreed with the static heuristic.
	CtrPlanSegSegMerge         = stats.CtrPlanSegSegMerge
	CtrPlanSegSegHash          = stats.CtrPlanSegSegHash
	CtrPlanSegDenseFromDense   = stats.CtrPlanSegDenseFromDense
	CtrPlanSegDenseFromSeg     = stats.CtrPlanSegDenseFromSeg
	CtrPlanArrayDenseFromArray = stats.CtrPlanArrayDenseFromArray
	CtrPlanArrayDenseFromDense = stats.CtrPlanArrayDenseFromDense
	CtrPlanExplored            = stats.CtrPlanExplored
	CtrPlanOverrides           = stats.CtrPlanOverrides
)

// Backend reports which rung of the ISA ladder this process dispatches to:
// "avx512" when the AVX-512 compress-store kernels and gathered hash probe
// are active (amd64 with AVX-512 F/VL/CD/DQ and OS ZMM state, not built with
// -tags=noasm), "avx2" for the hand-written AVX2 routines (amd64 with AVX2,
// BMI2 and POPCNT), "scalar" for the pure-Go reference path. Setting the
// FESIA_DISABLE_AVX512 environment variable (to any non-empty value) before
// process start pins the ladder at "avx2" on AVX-512 hardware. The same
// string is exported on /metrics as the fesia_build_info gauge's backend
// label and in the fesiaserve startup log line.
func Backend() string { return simd.Backend() }

// EnableStats turns the observability layer on process-wide and returns the
// snapshot of nothing-yet-recorded. Executors created afterwards (including
// the internal pool behind the package-level wrappers) attach automatically;
// executors created before keep running uninstrumented unless EnableStats is
// called on them directly. Safe to call more than once — subsequent calls are
// no-ops.
func EnableStats() {
	if core.StatsSink() == nil {
		core.EnableStats(stats.New())
	}
}

// StatsEnabled reports whether the process-wide observability layer is on.
func StatsEnabled() bool { return core.StatsSink() != nil }

// Stats returns a merged snapshot of the process-wide sink. The zero
// StatsSnapshot is returned while stats are disabled.
func Stats() StatsSnapshot {
	if s := core.StatsSink(); s != nil {
		return s.Snapshot()
	}
	return StatsSnapshot{}
}

// WriteStatsPrometheus writes the current snapshot in the Prometheus text
// exposition format (version 0.0.4; hand-written, no client dependency):
// fesia_queries_total{strategy=...}, fesia_query_latency_seconds histograms,
// fesia_kernel_dispatch_total{size_a,size_b}, pool and snapshot-codec
// counters. A no-op while stats are disabled.
func WriteStatsPrometheus(w io.Writer) error {
	if s := core.StatsSink(); s != nil {
		return s.WritePrometheus(w)
	}
	return nil
}

// StatsHandler returns an http.Handler serving WriteStatsPrometheus — mount
// it at /metrics and point a Prometheus scraper at it.
func StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteStatsPrometheus(w)
	})
}

// PublishStatsExpvar registers the sink under the given expvar name (e.g.
// "fesia"), so GET /debug/vars includes a live JSON rendering of every
// counter, latency percentile and the kernel-dispatch histogram. Like
// expvar.Publish it must be called at most once per name; it panics if stats
// are disabled.
func PublishStatsExpvar(name string) {
	s := core.StatsSink()
	if s == nil {
		panic("fesia: PublishStatsExpvar before EnableStats")
	}
	s.Publish(name)
}

// EnableStats attaches this executor (and its parallel worker slots) to the
// process-wide sink, enabling it first if needed. Use for executors created
// before the global EnableStats call; newer executors attach on construction.
func (e *Executor) EnableStats() {
	EnableStats()
	e.inner.EnableStats(core.StatsSink())
}

// Stats returns a merged snapshot of the sink this executor records into (the
// whole sink's view). The zero StatsSnapshot is returned while the executor
// is unattached.
func (e *Executor) Stats() StatsSnapshot { return e.inner.Stats() }
