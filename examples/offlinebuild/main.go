// Offline build workflow: construct FESIA sets once, persist them, and load
// them in a query process — the deployment model the paper's evaluation
// assumes ("the data structure of our approach is built offline",
// Section VII-A).
//
// Run with:
//
//	go run ./examples/offlinebuild
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"fesia"
)

func main() {
	dir, err := os.MkdirTemp("", "fesia-offline")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// --- Offline: build and persist a large set. ---
	rng := rand.New(rand.NewSource(1))
	elems := make([]uint32, 1_000_000)
	for i := range elems {
		elems[i] = rng.Uint32()
	}
	start := time.Now()
	set := fesia.MustBuild(elems, fesia.WithSeed(42))
	buildTime := time.Since(start)

	path := filepath.Join(dir, "set.fesia")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	written, err := set.WriteTo(f)
	if err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("offline: built %d elements in %v, serialized %d bytes (%.1f bytes/element)\n",
		set.Len(), buildTime.Round(time.Millisecond), written, float64(written)/float64(set.Len()))

	// --- Online: load and query. ---
	g, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	start = time.Now()
	loaded, err := fesia.ReadSet(g)
	g.Close()
	if err != nil {
		panic(err)
	}
	fmt.Printf("online: loaded and validated in %v\n", time.Since(start).Round(time.Millisecond))

	// Query against a freshly built set — only the seed must match.
	probe := fesia.MustBuild(elems[:5000], fesia.WithSeed(42))
	start = time.Now()
	common := fesia.IntersectCount(loaded, probe)
	fmt.Printf("query: |loaded ∩ probe| = %d in %v (adaptive strategy: skewed -> hash probe)\n",
		common, time.Since(start).Round(time.Microsecond))

	// Corruption is detected at load time, not at query time.
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		panic(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if _, err := fesia.ReadSet(bytes.NewReader(raw)); err != nil {
		fmt.Printf("corruption check: %v\n", err)
	} else {
		fmt.Println("corruption check: flipped byte happened to keep the structure valid")
	}
}
