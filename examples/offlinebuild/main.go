// Offline build workflow: construct FESIA sets once, persist them with
// checksummed, atomically-written snapshots, and load them in a query
// process — the deployment model the paper's evaluation assumes ("the data
// structure of our approach is built offline", Section VII-A).
//
// Run with:
//
//	go run ./examples/offlinebuild
package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"fesia"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "offlinebuild:", err)
	os.Exit(1)
}

func main() {
	dir, err := os.MkdirTemp("", "fesia-offline")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	// --- Offline: build and persist a large set. ---
	rng := rand.New(rand.NewSource(1))
	elems := make([]uint32, 1_000_000)
	for i := range elems {
		elems[i] = rng.Uint32()
	}
	start := time.Now()
	set := fesia.MustBuild(elems, fesia.WithSeed(42))
	buildTime := time.Since(start)

	// WriteSetFile writes through a temp file, fsyncs, and renames: a crash
	// mid-write can never leave a truncated snapshot at this path.
	path := filepath.Join(dir, "set.fesia")
	if err := fesia.WriteSetFile(path, set); err != nil {
		fail(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("offline: built %d elements in %v, snapshot %d bytes (%.1f bytes/element)\n",
		set.Len(), buildTime.Round(time.Millisecond), info.Size(),
		float64(info.Size())/float64(set.Len()))

	// A whole corpus (arena-built batch) ships as ONE file with a trailing
	// whole-file checksum.
	lists := make([][]uint32, 64)
	for i := range lists {
		lists[i] = elems[i*4096 : (i+1)*4096]
	}
	corpus, err := fesia.BuildBatch(lists, fesia.WithSeed(42))
	if err != nil {
		fail(err)
	}
	corpusPath := filepath.Join(dir, "corpus.fesia")
	if err := fesia.WriteCorpusFile(corpusPath, corpus); err != nil {
		fail(err)
	}

	// --- Online: load and query. ---
	start = time.Now()
	loaded, err := fesia.ReadSetFile(path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("online: loaded and validated in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	corpusLoaded, err := fesia.ReadCorpusFile(corpusPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("online: corpus of %d sets loaded in %v\n",
		len(corpusLoaded), time.Since(start).Round(time.Millisecond))

	// Query with a deadline, the serving pattern: a runaway intersection is
	// cut off at the request budget instead of holding the connection.
	probe := fesia.MustBuild(elems[:5000], fesia.WithSeed(42))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ex := fesia.NewExecutor()
	start = time.Now()
	common, err := ex.IntersectCountCtx(ctx, loaded, probe)
	if err != nil {
		fail(err)
	}
	fmt.Printf("query: |loaded ∩ probe| = %d in %v (adaptive strategy: skewed -> hash probe)\n",
		common, time.Since(start).Round(time.Microsecond))

	counts := make([]int, len(corpusLoaded))
	if err := ex.IntersectCountManyCtx(ctx, probe, corpusLoaded, counts); err != nil {
		fail(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("query: probe vs %d corpus sets, %d total matches\n", len(counts), total)

	// Corruption is detected at load time, not at query time: with the v2
	// checksummed format, any single flipped byte fails the load.
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		fail(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if _, err := fesia.ReadSet(bytes.NewReader(raw)); err != nil {
		fmt.Printf("corruption check: %v\n", err)
	} else {
		fail(fmt.Errorf("corrupted snapshot was accepted"))
	}
}
