// Quickstart: build two FESIA sets and intersect them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fesia"
)

func main() {
	// The running example of the paper (Section III-B, Example 1).
	a := fesia.MustBuild([]uint32{1, 4, 15, 21, 32, 34})
	b := fesia.MustBuild([]uint32{2, 6, 12, 16, 21, 23})

	fmt.Println("A =", a.Elements())
	fmt.Println("B =", b.Elements())
	fmt.Println("A ∩ B =", fesia.Intersect(a, b))
	fmt.Println("|A ∩ B| =", fesia.IntersectCount(a, b))

	// Membership probes are O(1) expected: one bitmap bit plus one tiny
	// segment scan.
	fmt.Println("A contains 21:", a.Contains(21))
	fmt.Println("A contains 22:", a.Contains(22))

	// Sets are configurable: emulated ISA width, segment size, bitmap
	// scale, hash seed. Sets intersected together must share options.
	wideA := fesia.MustBuild(a.Elements(), fesia.WithWidth(fesia.AVX512), fesia.WithSegmentBits(16))
	wideB := fesia.MustBuild(b.Elements(), fesia.WithWidth(fesia.AVX512), fesia.WithSegmentBits(16))
	fmt.Println("AVX512/seg16 count:", fesia.IntersectCount(wideA, wideB))

	// k-way intersection prunes all k bitmaps at once (Section VI).
	c := fesia.MustBuild([]uint32{21, 23, 40, 50})
	fmt.Println("A ∩ B ∩ C =", fesia.IntersectK(a, b, c))

	// The structure is compact: bitmap + offsets + sizes + reordered set.
	fmt.Printf("A: %d elements, %d-bit bitmap, ~%d bytes\n",
		a.Len(), a.BitmapBits(), a.MemoryBytes())
}
