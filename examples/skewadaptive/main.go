// Skew adaptivity: the FESIAmerge / FESIAhash strategy switch of Section VI
// and Fig. 11.
//
// When one input is dramatically smaller than the other, probing each small
// element through the large set's bitmap (FESIAhash, O(min(n1, n2))) beats
// scanning both bitmaps (FESIAmerge). This example sweeps the size ratio
// and shows where each strategy wins and what the adaptive entry point
// picks.
//
// Run with:
//
//	go run ./examples/skewadaptive
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fesia"
	"fesia/internal/datasets"
)

func main() {
	const n2 = 200_000
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("%-12s %12s %12s %12s %s\n", "skew n1/n2", "merge", "hash", "adaptive", "adaptive picked")
	for _, skew := range []float64{1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0 / 2, 1} {
		n1 := int(float64(n2) * skew)
		ea, eb := datasets.GenPair(rng, n1, n2, n1/10, 1<<24)
		a := fesia.MustBuild(ea)
		b := fesia.MustBuild(eb)

		tMerge := timeIt(func() int { return fesia.MergeCount(a, b) })
		tHash := timeIt(func() int { return fesia.HashCount(a, b) })
		tAuto := timeIt(func() int { return fesia.IntersectCount(a, b) })

		// The adaptive rule (core.SkewThreshold): hash below skew 1/4.
		picked := "merge"
		if float64(n1) < 0.25*float64(n2) {
			picked = "hash"
		}
		fmt.Printf("%-12s %10.0fus %10.0fus %10.0fus %s\n",
			fmt.Sprintf("%d/%d", n1, n2),
			us(tMerge), us(tHash), us(tAuto), picked)
	}
	fmt.Println("\nThe adaptive strategy switches to the hash probe below a size")
	fmt.Println("ratio of 1/4, matching the crossover in Fig. 11 of the paper.")
}

func timeIt(f func() int) time.Duration {
	f() // warm-up
	best := time.Duration(1 << 62)
	for round := 0; round < 5; round++ {
		start := time.Now()
		iters := 0
		for time.Since(start) < 5*time.Millisecond {
			sink += f()
			iters++
		}
		if d := time.Since(start) / time.Duration(iters); d < best {
			best = d
		}
	}
	return best
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

var sink int
