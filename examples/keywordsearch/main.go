// Keyword search: conjunctive queries over an inverted index, the database
// workload of the paper's introduction and Fig. 12.
//
// A WebDocs-like corpus is generated (Zipf-skewed item popularity), an
// inverted index is built with one FESIA set per posting list, and random
// multi-keyword queries are answered by k-way set intersection — FESIA
// against the scalar merge baseline. Queries run under a per-request
// deadline, the serving pattern the context-aware API supports.
//
// Run with:
//
//	go run ./examples/keywordsearch
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/invindex"
	"fesia/internal/stats"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "keywordsearch:", err)
	os.Exit(1)
}

func main() {
	// Enable the observability sink before any executor exists, so every
	// query below is recorded into the per-strategy latency histograms.
	core.EnableStats(stats.New())

	fmt.Println("generating corpus...")
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs:  50_000,
		NumItems: 100_000,
		MeanLen:  40,
		Seed:     42,
	})
	fmt.Printf("corpus: %d documents, %d distinct items\n",
		corpus.NumDocs, corpus.DistinctItems())

	start := time.Now()
	index, err := invindex.FromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		fail(err)
	}
	fmt.Printf("index built in %.2fs (%d posting lists)\n\n",
		time.Since(start).Seconds(), index.NumItems())

	rng := rand.New(rand.NewSource(7))
	queries := corpus.SampleQueries(rng, 8, 2, 100, 0.2, 0)

	// Every query runs under a request deadline; a query that blows the
	// budget returns context.DeadlineExceeded instead of stalling the loop.
	const queryBudget = 100 * time.Millisecond

	fmt.Println("two-keyword conjunctive queries (selectivity < 0.2):")
	for qi, q := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), queryBudget)
		t0 := time.Now()
		nFesia, err := index.QueryCountCtx(ctx, q.Items...)
		tFesia := time.Since(t0)
		cancel()
		if err != nil {
			fail(fmt.Errorf("query %d: %w", qi, err))
		}

		t0 = time.Now()
		nScalar := index.QueryCountWith(baselines.CountScalarK, q.Items...)
		tScalar := time.Since(t0)

		if nFesia != nScalar {
			fail(fmt.Errorf("query %d: FESIA %d != scalar %d", qi, nFesia, nScalar))
		}
		fmt.Printf("  q%d: |postings| = %d, %d -> %d matches; fesia %v, scalar %v (%.1fx)\n",
			qi, len(q.Postings[0]), len(q.Postings[1]), nFesia,
			tFesia, tScalar, float64(tScalar)/float64(tFesia))
	}

	// Three-keyword queries exercise the k-way path. Frequent items (long
	// posting lists) make non-empty conjunctions likely.
	fmt.Println("\nthree-keyword queries:")
	threeWay := corpus.SampleQueries(rng, 4, 3, 800, 1.0, 0)
	for qi, q := range threeWay {
		docs := index.Query(q.Items...)
		fmt.Printf("  q%d: items %v -> %d matching documents", qi, q.Items, len(docs))
		if len(docs) > 0 {
			fmt.Printf(" (first: doc %d)", docs[0])
		}
		fmt.Println()
	}

	// Serving-latency distribution: replay a mixed stream through one warm
	// executor and read the per-strategy percentiles the observability layer
	// collected — what a production deployment would scrape from /metrics
	// instead of timing queries one by one.
	const streamLen = 4000
	mixed := corpus.SampleQueries(rng, 32, 2, 100, 0.5, 0)
	ex := core.NewExecutor()
	for i := 0; i < streamLen; i++ {
		if i%8 == 7 {
			q := threeWay[i%len(threeWay)]
			index.QueryCountExec(ex, q.Items...)
			continue
		}
		q := mixed[i%len(mixed)]
		index.QueryCountExec(ex, q.Items...)
	}
	snap := core.StatsSink().Snapshot()
	fmt.Printf("\nper-query latency percentiles over a %d-query stream:\n", streamLen)
	for _, s := range []struct {
		name string
		h    stats.LatHist
	}{{"merge", stats.LatMerge}, {"hash", stats.LatHash}, {"k-way", stats.LatKWay}} {
		l := snap.Latency(s.h)
		if l.Count == 0 {
			continue
		}
		fmt.Printf("  %-6s n=%-6d mean=%-9v p50=%-9v p90=%-9v p99=%v\n",
			s.name, l.Count, l.Mean(), l.Quantile(0.50), l.Quantile(0.90), l.Quantile(0.99))
	}
}
