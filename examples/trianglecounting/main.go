// Triangle counting: the graph-analytics workload of Fig. 13.
//
// A power-law graph is generated, oriented by degree rank, and triangles
// are counted as the sum of |N⁺(u) ∩ N⁺(v)| over directed edges — with the
// scalar merge, with the shuffling baseline, and with FESIA sets built per
// vertex, sequentially and across multiple cores.
//
// Run with:
//
//	go run ./examples/trianglecounting
package main

import (
	"fmt"
	"runtime"
	"time"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/graph"
	"fesia/internal/simd"
)

func main() {
	fmt.Println("generating graph...")
	g := datasets.NewGraph(datasets.GraphConfig{
		Nodes:      60_000,
		EdgesPer:   8,
		Clustering: 0.5,
		Seed:       1,
	})
	csr := graph.FromEdges(g.Nodes, g.Edges)
	oriented := csr.Oriented()
	fmt.Printf("graph: %d vertices, %d edges\n", g.Nodes, g.NumEdges())

	run := func(name string, f func() int64) int64 {
		start := time.Now()
		n := f()
		fmt.Printf("  %-16s %12d triangles in %8.1fms\n",
			name, n, float64(time.Since(start).Microseconds())/1000)
		return n
	}

	fmt.Println("\ncounting triangles:")
	want := run("scalar merge", func() int64 {
		return graph.CountTriangles(oriented, baselines.CountScalar)
	})
	got := run("shuffling", func() int64 {
		return graph.CountTriangles(oriented, func(a, b []uint32) int {
			return baselines.CountShuffling(simd.WidthAVX, a, b)
		})
	})
	check(want, got)

	start := time.Now()
	fg, err := graph.BuildFesia(oriented, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nFESIA per-vertex sets built in %.2fs\n", time.Since(start).Seconds())

	check(want, run("FESIA 1 core", func() int64 { return fg.CountTriangles(1) }))
	check(want, run("FESIA 4 cores", func() int64 { return fg.CountTriangles(4) }))
	cores := runtime.NumCPU()
	check(want, run(fmt.Sprintf("FESIA %d cores", cores), func() int64 { return fg.CountTriangles(cores) }))
}

func check(want, got int64) {
	if want != got {
		panic(fmt.Sprintf("triangle counts diverge: %d vs %d", want, got))
	}
}
