// Command fesiaserve is a demo HTTP serving front-end over the inverted-index
// workload (Section VII-F), wired for live observability: it enables the
// process-wide stats sink, publishes it on /debug/vars (expvar JSON) and
// /metrics (Prometheus text format), mounts net/http/pprof, and answers
// conjunctive keyword queries on /query — optionally with a built-in load
// generator so the kernel-dispatch and latency histograms can be watched
// filling up under traffic:
//
//	fesiaserve -load 4 &
//	curl localhost:8080/metrics            # Prometheus text format
//	curl localhost:8080/debug/vars         # expvar JSON (fesia key)
//	curl 'localhost:8080/query?items=3,17' # one conjunctive query
//	go tool pprof localhost:8080/debug/pprof/profile
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	_ "expvar"         // registers /debug/vars on DefaultServeMux
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux

	"fesia"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/invindex"
)

// serverConfig sizes the demo corpus and bounds query execution.
type serverConfig struct {
	docs    int
	items   int
	meanLen int
	seed    int64
	timeout time.Duration // per-query deadline on /query and the load generator
	planner string        // adaptive-planner mode: off, prior or learned
}

// server holds the index and the set of items frequent enough to query.
type server struct {
	cfg       serverConfig
	ix        *invindex.Index
	queryable []uint32 // items with a non-trivial posting list
}

// newServer builds the corpus and index, enables the process-wide stats sink
// (idempotent), and installs the adaptive planner in the requested mode —
// both before any executor exists, so every executor created afterwards is
// instrumented and planner-attached.
func newServer(cfg serverConfig) (*server, error) {
	fesia.EnableStats()
	switch cfg.planner {
	case "", "off":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerOff))
	case "prior":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerPrior))
	case "learned":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerLearned))
	default:
		return nil, fmt.Errorf("fesiaserve: unknown planner mode %q (off, prior or learned)", cfg.planner)
	}
	if cfg.timeout <= 0 {
		cfg.timeout = time.Second
	}
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs:  cfg.docs,
		NumItems: cfg.items,
		MeanLen:  cfg.meanLen,
		Seed:     cfg.seed,
	})
	ix, err := invindex.FromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s := &server{cfg: cfg, ix: ix}
	for item, lst := range corpus.Postings {
		if len(lst) >= 8 {
			s.queryable = append(s.queryable, item)
		}
	}
	if len(s.queryable) < 16 {
		return nil, fmt.Errorf("fesiaserve: corpus too small: only %d queryable items", len(s.queryable))
	}
	sort.Slice(s.queryable, func(i, j int) bool { return s.queryable[i] < s.queryable[j] })
	return s, nil
}

// register mounts the server's routes on mux. main passes DefaultServeMux so
// the blank-imported /debug/vars and /debug/pprof handlers ride along; the
// smoke test passes its own mux.
func (s *server) register(mux *http.ServeMux) {
	mux.Handle("/metrics", fesia.StatsHandler())
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/", s.handleIndex)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `fesiaserve: conjunctive-query demo over %d docs, %d indexed items
  /query?items=a,b,...  conjunctive document count (comma-separated item IDs)
  /query?rand=k         random k-keyword query from the corpus
  /metrics              Prometheus text format
  /debug/vars           expvar JSON (key "fesia")
  /debug/pprof/         pprof index
`, s.ix.NumDocs(), s.ix.NumItems())
}

// handleQuery answers one conjunctive query, bounded by the request context
// plus the configured per-query timeout (exercising the cancellable paths).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var items []uint32
	switch {
	case r.URL.Query().Get("rand") != "":
		k, err := strconv.Atoi(r.URL.Query().Get("rand"))
		if err != nil || k < 1 || k > 16 {
			http.Error(w, "rand must be an integer in [1, 16]", http.StatusBadRequest)
			return
		}
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		items = s.sampleItems(rng, k)
	case r.URL.Query().Get("items") != "":
		for _, f := range strings.Split(r.URL.Query().Get("items"), ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				http.Error(w, "items must be comma-separated uint32 IDs", http.StatusBadRequest)
				return
			}
			items = append(items, uint32(v))
		}
	default:
		http.Error(w, "need ?items=a,b,... or ?rand=k", http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.timeout)
	defer cancel()
	start := time.Now()
	n, err := s.ix.QueryCountCtx(ctx, items...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"items":      items,
		"count":      n,
		"elapsed_us": time.Since(start).Microseconds(),
	})
}

// sampleItems draws k distinct queryable items.
func (s *server) sampleItems(rng *rand.Rand, k int) []uint32 {
	items := make([]uint32, 0, k)
	seen := make(map[uint32]bool, k)
	for len(items) < k {
		it := s.queryable[rng.Intn(len(s.queryable))]
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	return items
}

// runQueries drives n mixed queries through one caller-owned executor: mostly
// 2-3 keyword conjunctive counts (hitting the adaptive merge/hash switch and
// the k-way path), with every 16th iteration a one-vs-many batch — the mix
// that lights up all four strategy histograms. Used by the load generator and
// the smoke test.
func (s *server) runQueries(rng *rand.Rand, ex *core.Executor, n int) {
	out := make([]int, 8)
	for i := 0; i < n; i++ {
		if i%16 == 15 {
			items := s.sampleItems(rng, 9)
			s.ix.QueryManyCountExec(ex, out, items[0], items[1:])
			continue
		}
		items := s.sampleItems(rng, 2+i%2)
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.timeout)
		if _, err := s.ix.QueryCountExecCtx(ctx, ex, items...); err != nil {
			log.Printf("query %v: %v", items, err)
		}
		cancel()
	}
}

// startLoad runs `workers` background query loops until ctx is cancelled,
// each on its own instrumented executor, pausing `delay` between batches.
func (s *server) startLoad(ctx context.Context, workers int, delay time.Duration) {
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ex := core.NewExecutor()
			for ctx.Err() == nil {
				s.runQueries(rng, ex, 64)
				if delay > 0 {
					time.Sleep(delay)
				}
			}
		}(s.cfg.seed + int64(w) + 1)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fesiaserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	docs := flag.Int("docs", 50_000, "corpus size in documents")
	items := flag.Int("items", 100_000, "corpus item-ID universe")
	meanLen := flag.Int("meanlen", 40, "mean items per document")
	seed := flag.Int64("seed", 1, "corpus seed")
	load := flag.Int("load", 0, "background load-generator workers (0 = none)")
	delay := flag.Duration("delay", 5*time.Millisecond, "load-generator pause between 64-query batches")
	timeout := flag.Duration("timeout", time.Second, "per-query deadline")
	plannerMode := flag.String("planner", "learned", "adaptive strategy planner: off, prior or learned")
	flag.Parse()

	log.Printf("building corpus (%d docs, %d items)...", *docs, *items)
	s, err := newServer(serverConfig{
		docs: *docs, items: *items, meanLen: *meanLen, seed: *seed, timeout: *timeout,
		planner: *plannerMode,
	})
	if err != nil {
		log.Fatal(err)
	}
	fesia.PublishStatsExpvar("fesia")
	s.register(http.DefaultServeMux)
	if *load > 0 {
		log.Printf("starting %d load workers", *load)
		s.startLoad(context.Background(), *load, *delay)
	}
	log.Printf("serving on %s (backend %s, planner %s; /metrics, /debug/vars, /debug/pprof/, /query)",
		*addr, fesia.Backend(), fesia.ActivePlannerMode())
	log.Fatal(http.ListenAndServe(*addr, nil))
}
