// Command fesiaserve is the sharded HTTP serving front-end over the
// inverted-index workload (Section VII-F): conjunctive keyword queries
// answered by a serve.Tier — document-sharded scatter-gather with admission
// control, latency-driven load shedding, hot corpus swaps, and graceful
// shutdown — rather than a bare index.
//
// Two listeners split the traffic classes: the public address serves only
// /query and the landing page, while -admin carries everything operational
// (/metrics, /debug/vars, /debug/pprof/, /admin/swap), so profiling and swap
// endpoints are never exposed where query traffic is. Neither listener uses
// http.DefaultServeMux.
//
//	fesiaserve -load 4 &
//	curl 'localhost:8080/query?items=3,17'      # one conjunctive query
//	curl -H 'X-Fesia-Deadline-Ms: 5' \
//	     'localhost:8080/query?rand=3'          # per-request deadline override
//	curl localhost:8081/metrics                 # Prometheus text format
//	curl -X POST 'localhost:8081/admin/swap?seed=9'  # hot corpus swap
//	go tool pprof localhost:8081/debug/pprof/profile
//
// SIGTERM (or SIGINT) shuts down gracefully: the public listener stops
// admitting, in-flight queries drain, a final stats summary is logged, and
// only then does the process exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fesia"
	"fesia/internal/datasets"
	"fesia/internal/serve"
	"fesia/internal/trace"
)

// serverConfig sizes the demo corpus and shapes the serving tier.
type serverConfig struct {
	docs    int
	items   int
	meanLen int
	seed    int64
	timeout time.Duration // default per-query deadline (header-overridable)
	planner string        // adaptive-planner mode: off, prior or learned
	tier    serve.Config
}

// server owns the serving tier and the corpus parameters needed to rebuild
// it for seed-based hot swaps.
type server struct {
	cfg       serverConfig
	tier      *serve.Tier
	queryable []uint32 // items with a non-trivial posting list

	// queryOverride is a test hook standing in for tier.QueryCount — how the
	// HTTP tests exercise rejection paths the tier only produces under load.
	queryOverride func(ctx context.Context, items ...uint32) (int, error)
}

// corpusLists renders a generated corpus as the tier's input shape: one
// posting list per item id over the whole universe.
func corpusLists(cfg serverConfig, seed int64) [][]uint32 {
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs:  cfg.docs,
		NumItems: cfg.items,
		MeanLen:  cfg.meanLen,
		Seed:     seed,
	})
	lists := make([][]uint32, cfg.items)
	for item, lst := range corpus.Postings {
		if int(item) < len(lists) {
			lists[item] = lst
		}
	}
	return lists
}

// newServer enables the process-wide stats sink and the adaptive planner
// (both before any executor exists, so the tier's executors are instrumented
// and planner-attached), builds the corpus, and raises the serving tier.
func newServer(cfg serverConfig) (*server, error) {
	fesia.EnableStats()
	switch cfg.planner {
	case "", "off":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerOff))
	case "prior":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerPrior))
	case "learned":
		fesia.EnablePlanner(fesia.WithPlanner(fesia.PlannerLearned))
	default:
		return nil, fmt.Errorf("fesiaserve: unknown planner mode %q (off, prior or learned)", cfg.planner)
	}
	if cfg.timeout <= 0 {
		cfg.timeout = time.Second
	}
	lists := corpusLists(cfg, cfg.seed)
	tier, err := serve.NewTier(lists, cfg.tier)
	if err != nil {
		return nil, err
	}
	s := &server{cfg: cfg, tier: tier}
	for item, lst := range lists {
		if len(lst) >= 8 {
			s.queryable = append(s.queryable, uint32(item))
		}
	}
	if len(s.queryable) < 16 {
		tier.Shutdown(context.Background())
		return nil, fmt.Errorf("fesiaserve: corpus too small: only %d queryable items", len(s.queryable))
	}
	sort.Slice(s.queryable, func(i, j int) bool { return s.queryable[i] < s.queryable[j] })
	return s, nil
}

// registerServing mounts the public surface: queries and the landing page,
// nothing operational.
func (s *server) registerServing(mux *http.ServeMux) {
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/", s.handleIndex)
}

// registerAdmin mounts the operational surface on the admin listener:
// metrics, expvar, pprof and the swap endpoint. Handlers are mounted
// explicitly — no DefaultServeMux, so nothing rides along unasked.
func (s *server) registerAdmin(mux *http.ServeMux) {
	mux.Handle("/metrics", fesia.StatsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/admin/swap", s.handleSwap)
	if tr := s.tier.Tracer(); tr != nil {
		mux.Handle("/debug/traces", tr.Handler())
		mux.Handle("/debug/slow", tr.SlowHandler())
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `fesiaserve: sharded conjunctive-query tier, %d shards, generation %d
  /query?items=a,b,...  conjunctive document count (comma-separated item IDs)
  /query?rand=k         random k-keyword query from the corpus
  X-Fesia-Deadline-Ms   per-request deadline override (header)
  X-Fesia-Trace: 1      force trace capture; span breakdown in the response
admin listener:
  /metrics              Prometheus text format
  /debug/vars           expvar JSON (key "fesia")
  /debug/traces         recent retained query traces (JSON)
  /debug/slow           slow-query log with full span breakdowns (JSON)
  /debug/pprof/         pprof index
  /admin/swap           POST ?seed=N or ?file=PATH: hot corpus swap
`, s.tier.NumShards(), s.tier.Generation())
}

// queryDeadline resolves the per-request deadline: the X-Fesia-Deadline-Ms
// header (integer milliseconds, capped at 10 minutes) when present, the
// server's -timeout otherwise.
func (s *server) queryDeadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get("X-Fesia-Deadline-Ms")
	if h == "" {
		return s.cfg.timeout, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms < 1 || ms > 600_000 {
		return 0, fmt.Errorf("X-Fesia-Deadline-Ms must be an integer in [1, 600000]")
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// statusForError maps tier errors to HTTP statuses: overload and shutdown to
// 503 (retryable elsewhere), expired deadlines to 504, the rest to 500.
func statusForError(err error) int {
	switch {
	case errors.Is(err, serve.ErrOverload), errors.Is(err, serve.ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterFor maps an overload flavor to a jittered Retry-After value in
// whole seconds, so clients rejected together do not re-converge on the same
// instant: shedding (latency-driven, recovers on a control-loop timescale)
// backs off longest, a full queue less, an expired wait budget least.
func retryAfterFor(err error) string {
	var oe *serve.OverloadError
	if !errors.As(err, &oe) {
		return "1"
	}
	var base, jitter int
	switch oe.Reason {
	case serve.ReasonShed:
		base, jitter = 2, 3
	case serve.ReasonQueueFull:
		base, jitter = 1, 2
	default: // ReasonQueueWait
		base, jitter = 1, 1
	}
	return strconv.Itoa(base + rand.Intn(jitter))
}

// handleQuery answers one conjunctive query through the full serving path —
// shedding, admission, sharded scatter-gather — bounded by the request
// context plus the resolved deadline.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var items []uint32
	switch {
	case r.URL.Query().Get("rand") != "":
		k, err := strconv.Atoi(r.URL.Query().Get("rand"))
		if err != nil || k < 1 || k > 16 {
			http.Error(w, "rand must be an integer in [1, 16]", http.StatusBadRequest)
			return
		}
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		items = s.sampleItems(rng, k)
	case r.URL.Query().Get("items") != "":
		for _, f := range strings.Split(r.URL.Query().Get("items"), ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				http.Error(w, "items must be comma-separated uint32 IDs", http.StatusBadRequest)
				return
			}
			items = append(items, uint32(v))
		}
	default:
		http.Error(w, "need ?items=a,b,... or ?rand=k", http.StatusBadRequest)
		return
	}
	deadline, err := s.queryDeadline(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	start := time.Now()
	var n int
	var capd *trace.Captured
	switch {
	case s.queryOverride != nil:
		n, err = s.queryOverride(ctx, items...)
	case r.Header.Get("X-Fesia-Trace") == "1":
		n, capd, err = s.tier.QueryCountTraced(ctx, items...)
	default:
		n, err = s.tier.QueryCount(ctx, items...)
	}
	if err != nil {
		if errors.Is(err, serve.ErrOverload) {
			w.Header().Set("Retry-After", retryAfterFor(err))
		}
		http.Error(w, err.Error(), statusForError(err))
		return
	}
	resp := map[string]any{
		"items":      items,
		"count":      n,
		"elapsed_us": time.Since(start).Microseconds(),
		"generation": s.tier.Generation(),
	}
	if capd != nil {
		resp["trace"] = capd
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleSwap hot-swaps the corpus under live traffic: ?file=PATH loads a
// snapshot written by fesiabench/WriteCorpus, ?seed=N regenerates the
// synthetic corpus with a new seed (same dimensions). Either way the build is
// all-or-nothing — a failed load leaves the old corpus serving and returns
// the error.
func (s *server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Minute)
	defer cancel()
	start := time.Now()
	var gen uint64
	var err error
	switch {
	case r.URL.Query().Get("file") != "":
		gen, err = s.tier.SwapFromFile(ctx, r.URL.Query().Get("file"))
	case r.URL.Query().Get("seed") != "":
		var seed int64
		seed, err = strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
		if err != nil {
			http.Error(w, "seed must be an integer", http.StatusBadRequest)
			return
		}
		gen, err = s.tier.Swap(ctx, corpusLists(s.cfg, seed))
	default:
		http.Error(w, "need ?file=PATH or ?seed=N", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	log.Printf("swapped corpus to generation %d in %v", gen, time.Since(start).Round(time.Millisecond))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"generation": gen,
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
}

// sampleItems draws k distinct queryable items.
func (s *server) sampleItems(rng *rand.Rand, k int) []uint32 {
	items := make([]uint32, 0, k)
	seen := make(map[uint32]bool, k)
	for len(items) < k {
		it := s.queryable[rng.Intn(len(s.queryable))]
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	return items
}

// runQueries drives n mixed 2-4 keyword queries through the serving tier —
// the same admission/shedding/scatter path HTTP requests take. Overload and
// deadline outcomes are expected under pressure and simply counted by the
// tier's stats.
func (s *server) runQueries(rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		items := s.sampleItems(rng, 2+i%3)
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.timeout)
		_, err := s.tier.QueryCount(ctx, items...)
		cancel()
		if err != nil && !errors.Is(err, serve.ErrOverload) &&
			!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, serve.ErrShuttingDown) {
			log.Printf("query %v: %v", items, err)
		}
	}
}

// startLoad runs `workers` background query loops until ctx is cancelled,
// pausing `delay` between 64-query batches.
func (s *server) startLoad(ctx context.Context, workers int, delay time.Duration) {
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				s.runQueries(rng, 64)
				if delay > 0 {
					time.Sleep(delay)
				}
			}
		}(s.cfg.seed + int64(w) + 1)
	}
}

// logFinalStats flushes the serving counters to the log — the last thing a
// graceful shutdown does, so a scrape gap never loses the totals.
func logFinalStats() {
	snap := fesia.Stats()
	log.Printf("final stats: admitted=%d rejected=%d shed=%d deadline_expiries=%d swaps=%d swap_errors=%d p99=%v",
		snap.Counter(fesia.CtrServeAdmitted),
		snap.Counter(fesia.CtrServeRejected),
		snap.Counter(fesia.CtrServeShed),
		snap.Counter(fesia.CtrServeDeadline),
		snap.Counter(fesia.CtrServeSwaps),
		snap.Counter(fesia.CtrServeSwapErrors),
		snap.Latency(fesia.LatServe).Quantile(0.99))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fesiaserve: ")
	addr := flag.String("addr", ":8080", "public listen address (queries only)")
	adminAddr := flag.String("admin", ":8081", "admin listen address (metrics, pprof, swap); empty disables")
	docs := flag.Int("docs", 50_000, "corpus size in documents")
	items := flag.Int("items", 100_000, "corpus item-ID universe")
	meanLen := flag.Int("meanlen", 40, "mean items per document")
	seed := flag.Int64("seed", 1, "corpus seed")
	load := flag.Int("load", 0, "background load-generator workers (0 = none)")
	delay := flag.Duration("delay", 5*time.Millisecond, "load-generator pause between 64-query batches")
	timeout := flag.Duration("timeout", time.Second, "default per-query deadline (X-Fesia-Deadline-Ms overrides)")
	plannerMode := flag.String("planner", "learned", "adaptive strategy planner: off, prior or learned")
	shards := flag.Int("shards", 0, "document shards (0 = auto)")
	maxConc := flag.Int("maxconc", 0, "max concurrent queries (0 = 2x GOMAXPROCS)")
	maxQueue := flag.Int("maxqueue", 0, "admission queue depth (0 = 2x maxconc)")
	queueWait := flag.Duration("queuewait", 0, "admission queue wait budget (0 = 50ms)")
	shedTarget := flag.Duration("shedtarget", 0, "p99 target steering the load shedder (0 = 25ms, negative disables)")
	traceSample := flag.Int("tracesample", 64, "trace head-sampling period: retain one query in N per slot (0 disables)")
	slowLog := flag.Duration("slowlog", 20*time.Millisecond, "slow-query threshold: queries at or above are captured in full (0 disables)")
	flag.Parse()

	log.Printf("building corpus (%d docs, %d items)...", *docs, *items)
	s, err := newServer(serverConfig{
		docs: *docs, items: *items, meanLen: *meanLen, seed: *seed, timeout: *timeout,
		planner: *plannerMode,
		tier: serve.Config{
			Shards:        *shards,
			MaxConcurrent: *maxConc,
			MaxQueue:      *maxQueue,
			MaxQueueWait:  *queueWait,
			ShedTargetP99: *shedTarget,
			TraceSample:   *traceSample,
			SlowQuery:     *slowLog,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fesia.PublishStatsExpvar("fesia")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *load > 0 {
		log.Printf("starting %d load workers", *load)
		s.startLoad(ctx, *load, *delay)
	}

	servingMux := http.NewServeMux()
	s.registerServing(servingMux)
	serving := &http.Server{Addr: *addr, Handler: servingMux}
	go func() {
		if err := serving.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	var admin *http.Server
	if *adminAddr != "" {
		adminMux := http.NewServeMux()
		s.registerAdmin(adminMux)
		admin = &http.Server{Addr: *adminAddr, Handler: adminMux}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}
	traceInfo := "off"
	if tr := s.tier.Tracer(); tr != nil {
		traceInfo = fmt.Sprintf("sample=1/%d slow=%v", tr.SampleN(), tr.SlowThreshold())
	}
	log.Printf("serving on %s, admin on %s (backend %s, planner %s, %d shards, tracing %s)",
		*addr, *adminAddr, fesia.Backend(), fesia.ActivePlannerMode(), s.tier.NumShards(), traceInfo)

	<-ctx.Done()
	log.Printf("signal received; draining...")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := serving.Shutdown(sctx); err != nil {
		log.Printf("public listener shutdown: %v", err)
	}
	if err := s.tier.Shutdown(sctx); err != nil {
		log.Printf("tier shutdown: %v", err)
	}
	logFinalStats()
	if admin != nil {
		if err := admin.Shutdown(sctx); err != nil {
			log.Printf("admin listener shutdown: %v", err)
		}
	}
	log.Printf("shutdown complete")
}
