package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fesia/internal/serve"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{
		docs: 3_000, items: 6_000, meanLen: 25, seed: 7, timeout: 2 * time.Second,
		tier: serve.Config{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.tier.Shutdown(context.Background()) })
	return s
}

// TestServeMetricsSmoke drives load through the serving tier and scrapes
// /metrics from the ADMIN mux — the acceptance check that the observability
// pipeline (tier executors -> global sink -> Prometheus writer -> HTTP)
// shows live histograms, including the new serving-tier series.
func TestServeMetricsSmoke(t *testing.T) {
	s := testServer(t)
	s.runQueries(rand.New(rand.NewSource(1)), 128)

	mux := http.NewServeMux()
	s.registerAdmin(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET /metrics: Content-Type = %q, want text/plain exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`fesia_build_info{backend=`,
		`fesia_query_latency_seconds_bucket`,
		`fesia_kernel_dispatch_total{size_a=`,
		`fesia_serve_requests_total{outcome="admitted"}`,
		`fesia_serve_queue_depth`,
		`fesia_serve_swaps_total{outcome="ok"}`,
		`fesia_query_latency_seconds_bucket{strategy="serve"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}

// TestServeQueryEndpoint checks /query answers on the PUBLIC mux match the
// tier directly, and that malformed requests are rejected.
func TestServeQueryEndpoint(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	a, b := s.queryable[0], s.queryable[1]
	resp, err := http.Get(srv.URL + fmt.Sprintf("/query?items=%d,%d", a, b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
	var got struct {
		Count      int    `json:"count"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want, err := s.tier.QueryCount(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want {
		t.Errorf("/query count = %d, want %d", got.Count, want)
	}

	for _, bad := range []string{"/query", "/query?items=x", "/query?rand=99"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServingMuxHidesAdminSurface pins the listener split: nothing
// operational is reachable through the public mux.
func TestServingMuxHidesAdminSurface(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/admin/swap"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on public mux: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDeadlineHeader checks the X-Fesia-Deadline-Ms override: valid values
// are honored, invalid ones are a 400 before any query runs.
func TestDeadlineHeader(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	url := srv.URL + fmt.Sprintf("/query?items=%d", s.queryable[0])
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("X-Fesia-Deadline-Ms", "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid deadline header: status %d, want 200", resp.StatusCode)
	}

	for _, bad := range []string{"0", "-5", "x", "600001"} {
		req, _ := http.NewRequest("GET", url, nil)
		req.Header.Set("X-Fesia-Deadline-Ms", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline header %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStatusForError pins the tier-error -> HTTP mapping: overload and
// shutdown are retryable 503s, expired deadlines 504, everything else 500.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&serve.OverloadError{Reason: serve.ReasonShed}, http.StatusServiceUnavailable},
		{&serve.OverloadError{Reason: serve.ReasonQueueFull}, http.StatusServiceUnavailable},
		{serve.ErrShuttingDown, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusForError(c.err); got != c.want {
			t.Errorf("statusForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestAdminSwapEndpoint hot-swaps via the admin endpoint and checks the
// generation advances and queries keep answering.
func TestAdminSwapEndpoint(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerAdmin(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/admin/swap?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/swap: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/admin/swap?seed=9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /admin/swap: status %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 || s.tier.Generation() != 1 {
		t.Errorf("generation = %d / %d, want 1", got.Generation, s.tier.Generation())
	}
	if _, err := s.tier.QueryCount(context.Background(), s.queryable[0], s.queryable[1]); err != nil {
		t.Errorf("query after swap: %v", err)
	}

	// A swap from a missing snapshot file fails and leaves the tier serving.
	resp, err = http.Post(srv.URL+"/admin/swap?file=/nonexistent/corpus.fesia", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("POST /admin/swap bad file: status %d, want 500", resp.StatusCode)
	}
	if gen := s.tier.Generation(); gen != 1 {
		t.Errorf("failed swap moved generation to %d", gen)
	}
}
