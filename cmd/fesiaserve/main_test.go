package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fesia/internal/core"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{
		docs: 3_000, items: 6_000, meanLen: 25, seed: 7, timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeMetricsSmoke drives a slice of load through the server and scrapes
// /metrics once — the acceptance check that the whole observability pipeline
// (instrumented executors -> global sink -> Prometheus writer -> HTTP) shows
// live histograms.
func TestServeMetricsSmoke(t *testing.T) {
	s := testServer(t)
	s.runQueries(rand.New(rand.NewSource(1)), core.NewExecutor(), 128)

	mux := http.NewServeMux()
	s.register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET /metrics: Content-Type = %q, want text/plain exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`fesia_build_info{backend=`,
		`fesia_queries_total{strategy="merge"}`,
		`fesia_query_latency_seconds_bucket`,
		`fesia_query_latency_seconds_count`,
		`fesia_kernel_dispatch_total{size_a=`,
		`fesia_segment_pairs_total`,
		`fesia_batch_candidates_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}

// TestServeQueryEndpoint checks /query answers match the index directly.
func TestServeQueryEndpoint(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	a, b := s.queryable[0], s.queryable[1]
	resp, err := http.Get(srv.URL + fmt.Sprintf("/query?items=%d,%d", a, b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
	var got struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if want := s.ix.QueryCount(a, b); got.Count != want {
		t.Errorf("/query count = %d, want %d", got.Count, want)
	}

	for _, bad := range []string{"/query", "/query?items=x", "/query?rand=99"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
